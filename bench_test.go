// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus micro-benchmarks of the hot paths. Each experiment
// bench runs the full experiment (measurement sweeps, model training,
// evaluation) once per iteration and reports its headline numbers as
// custom metrics.
//
// Scale defaults to "small" so `go test -bench=. -benchmem` completes in
// minutes; set APICHECKER_BENCH_SCALE=medium|paper for the EXPERIMENTS.md
// record (the paper scale builds the full 50K-API universe).
package apichecker

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"apichecker/internal/cluster"
	"apichecker/internal/core"
	"apichecker/internal/dataset"
	"apichecker/internal/emulator"
	"apichecker/internal/experiments"
	"apichecker/internal/features"
	"apichecker/internal/framework"
	"apichecker/internal/hook"
	"apichecker/internal/lifecycle"
	"apichecker/internal/market"
	"apichecker/internal/ml"
	"apichecker/internal/modelstore"
	"apichecker/internal/monkey"
	"apichecker/internal/vetsvc"
)

var (
	benchOnce sync.Once
	benchEnv  *experiments.Env
	benchErr  error
)

func env(b *testing.B) *experiments.Env {
	b.Helper()
	benchOnce.Do(func() {
		name := os.Getenv("APICHECKER_BENCH_SCALE")
		if name == "" {
			name = "small"
		}
		scale, err := experiments.ScaleByName(name)
		if err != nil {
			benchErr = err
			return
		}
		benchEnv, benchErr = experiments.NewEnv(scale, 1)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchEnv
}

// out returns the stream experiment rows are printed to; verbose runs show
// them, quiet runs discard them.
func out() io.Writer {
	if testing.Verbose() {
		return os.Stdout
	}
	return io.Discard
}

func BenchmarkTable1(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		res, err := e.Table1(out())
		if err != nil {
			b.Fatal(err)
		}
		last := res.Rows[len(res.Rows)-1]
		b.ReportMetric(100*last.Precision, "apichecker-P%")
		b.ReportMetric(100*last.Recall, "apichecker-R%")
		b.ReportMetric(last.PerApp.Minutes(), "apichecker-min/app")
	}
}

func BenchmarkTable2(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		res, err := e.Table2(out())
		if err != nil {
			b.Fatal(err)
		}
		rf := res.Rows[len(res.Rows)-1]
		b.ReportMetric(100*rf.PrecisionKeys, "rf-keys-P%")
		b.ReportMetric(100*rf.RecallKeys, "rf-keys-R%")
	}
}

func BenchmarkFig1(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		res, err := e.Fig1(out())
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range res.Points {
			if p.Events == 5000 {
				b.ReportMetric(100*p.RAC, "rac5k%")
			}
		}
	}
}

func BenchmarkFig2(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		res, err := e.Fig2(out())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.CDF.Summary.Mean, "mean-Minvocations")
	}
}

func BenchmarkFig3(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		res, err := e.Fig3(out())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.TrackNone.Summary.Mean, "none-min")
		b.ReportMetric(res.TrackAll.Summary.Mean, "all-min")
	}
}

func BenchmarkFig4(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		res, err := e.Fig4(out())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.StrongPositive), "src>=0.2")
	}
}

func BenchmarkFig5(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		res, err := e.Fig5(out())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.NonTrivial), "setC")
	}
}

func BenchmarkFig6(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		res, err := e.Fig6(out())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.LinearFit.R2, "linR2")
		b.ReportMetric(res.LogFit.R2, "logR2")
	}
}

func BenchmarkFig7(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		res, err := e.Fig7(out())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.All.Recall, "all-R%")
	}
}

func BenchmarkFig8(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		res, err := e.Fig8(out())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Union), "keys")
		b.ReportMetric(float64(res.TotalPairwiseOverlaps), "overlaps")
	}
}

func BenchmarkFig9(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		res, err := e.Fig9(out())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.TrackKeys.Summary.Mean, "keys-min")
	}
}

func BenchmarkFig10(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		res, err := e.Fig10(out())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res.Rows {
			if r.Mode == features.ModeAPI {
				b.ReportMetric(100*r.F1, "api-F1%")
			}
		}
	}
}

func BenchmarkFig11(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		res, err := e.Fig11(out())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.Saving, "saving%")
		b.ReportMetric(res.Lightweight.Summary.Mean, "light-min")
	}
}

func BenchmarkFig12(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		res, err := e.Fig12(out(), 6)
		if err != nil {
			b.Fatal(err)
		}
		pMin, _, rMin, _ := res.Report.MinMaxPrecisionRecall()
		b.ReportMetric(100*pMin, "minP%")
		b.ReportMetric(100*rMin, "minR%")
	}
}

func BenchmarkFig13(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		res, err := e.Fig13(out())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.APIs), "apis-in-top20")
		b.ReportMetric(float64(res.Permissions), "perms-in-top20")
		b.ReportMetric(float64(res.Intents), "intents-in-top20")
	}
}

func BenchmarkFig14(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		res, err := e.Fig14(out(), 6)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Report.InitialKeyAPIs), "initial-keys")
	}
}

func BenchmarkFig15(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		res, err := e.Fig15(out())
		if err != nil {
			b.Fatal(err)
		}
		last := res.Points[len(res.Points)-1]
		b.ReportMetric(100*last.F1, "full-F1%")
	}
}

func BenchmarkFig16(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		res, err := e.Fig16(out())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Track150.Summary.Mean, "subset-min")
		b.ReportMetric(res.TrackKeys.Summary.Mean, "keys-min")
	}
}

// --- micro-benchmarks of the hot paths ---

// BenchmarkEmulatorRun measures one 5K-event emulation with the key APIs
// hooked (the per-app production scan path).
func BenchmarkEmulatorRun(b *testing.B) {
	e := env(b)
	reg, err := hook.NewRegistry(e.U, e.Selection.Keys)
	if err != nil {
		b.Fatal(err)
	}
	emu := emulator.New(emulator.LightweightEmulator, reg)
	p := e.Corpus.Program(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := emu.Run(p, monkey.ProductionConfig(int64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCorpusVectorize measures the full-corpus feature-extraction
// pass that backs every ML experiment.
func BenchmarkCorpusVectorize(b *testing.B) {
	e := env(b)
	ex, err := features.NewExtractor(e.U, e.Selection.Keys, features.ModeAPI)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Corpus.Vectorize(ex, emulator.GoogleEmulator, 5000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkForestTrain measures random-forest training on the deployed
// feature configuration.
func BenchmarkForestTrain(b *testing.B) {
	e := env(b)
	ex, err := features.NewExtractor(e.U, e.Selection.Keys, features.ModeAPI)
	if err != nil {
		b.Fatal(err)
	}
	d, err := e.Corpus.Vectorize(ex, emulator.GoogleEmulator, 5000)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rf := ml.NewRandomForest(ml.ForestConfig{Trees: 80, MaxDepth: 16, MinLeaf: 2, Seed: int64(i)})
		if err := rf.Train(d); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUsageCollection measures the §4.3 track-everything measurement
// pass over the corpus.
func BenchmarkUsageCollection(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := e.Corpus.CollectUsage(5000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKeyAPISelection measures the §4.4 selection strategy given
// collected usage statistics.
func BenchmarkKeyAPISelection(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sel := features.SelectKeyAPIs(e.U, e.Usage, features.DefaultSelectionConfig())
		if len(sel.Keys) == 0 {
			b.Fatal("no keys selected")
		}
	}
}

// BenchmarkAblationEncoding compares the deployed One-Hot encoding with
// the histogram (invocation-frequency) encoding the paper's §6 proposes as
// future work, on the same key-API tracking set.
func BenchmarkAblationEncoding(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		for _, enc := range []features.Encoding{features.EncodingOneHot, features.EncodingHistogram} {
			ex, err := features.NewExtractorWithEncoding(e.U, e.Selection.Keys, features.ModeAPI, enc)
			if err != nil {
				b.Fatal(err)
			}
			d, err := e.Corpus.Vectorize(ex, emulator.GoogleEmulator, 5000)
			if err != nil {
				b.Fatal(err)
			}
			res, err := ml.CrossValidate(func() ml.Classifier {
				return ml.NewRandomForest(ml.DefaultForestConfig(7))
			}, d, 5, 5)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(100*res.Confusion.F1(), enc.String()+"-F1%")
		}
	}
}

// BenchmarkAblationForestVsDNN isolates the paper's §1 design call: the
// forest matches the deep model's accuracy at a fraction of the training
// cost.
func BenchmarkAblationForestVsDNN(b *testing.B) {
	e := env(b)
	ex, err := features.NewExtractor(e.U, e.Selection.Keys, features.ModeAPI)
	if err != nil {
		b.Fatal(err)
	}
	d, err := e.Corpus.Vectorize(ex, emulator.GoogleEmulator, 5000)
	if err != nil {
		b.Fatal(err)
	}
	train, test := d.Split(0.7, 5)
	b.ResetTimer()
	labels := map[ml.ModelKind]string{ml.ModelRandomForest: "rf", ml.ModelDNN: "dnn"}
	for i := 0; i < b.N; i++ {
		for _, kind := range []ml.ModelKind{ml.ModelRandomForest, ml.ModelDNN} {
			c := ml.NewClassifier(kind, 7)
			m, trainTime, _, err := ml.TrainEval(c, train, test)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(100*m.F1(), labels[kind]+"-F1%")
			b.ReportMetric(trainTime.Seconds(), labels[kind]+"-train-s")
		}
	}
}

// BenchmarkTrainFromCorpus measures the end-to-end training pipeline with
// the run cache: one emulation pass serves both usage measurement and
// vectorization. The cache is invalidated each iteration so every run pays
// the full pass. Compare against BenchmarkTrainFromCorpusTwoPass.
func BenchmarkTrainFromCorpus(b *testing.B) {
	e := env(b)
	sub := dataset.FromApps(e.U, 11, e.Corpus.Apps[:min(600, e.Corpus.Len())])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sub.InvalidateRuns()
		_, rep, err := core.TrainFromCorpus(sub, core.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rep.EmulationRuns), "emu-runs")
	}
}

// BenchmarkTrainFromCorpusTwoPass is the pre-optimization training
// pipeline, reproduced faithfully: the measurement pass, a *serial*
// per-API Spearman sweep (SelectKeyAPIs now fans it out), a second corpus
// emulation under the selected keys on the deployment profile, and forest
// training. Compare with BenchmarkTrainFromCorpus for the PR's headline
// speedup.
func BenchmarkTrainFromCorpusTwoPass(b *testing.B) {
	e := env(b)
	sub := dataset.FromApps(e.U, 11, e.Corpus.Apps[:min(600, e.Corpus.Len())])
	sub.SetRunCaching(false)
	cfg := core.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runs0 := emulator.RunCount()
		usage, _, err := sub.CollectUsage(cfg.Events)
		if err != nil {
			b.Fatal(err)
		}
		sel := serialSelectKeyAPIs(e, usage, cfg.Selection)
		ex, err := features.NewExtractor(e.U, sel.Keys, cfg.Mode)
		if err != nil {
			b.Fatal(err)
		}
		d, err := sub.Vectorize(ex, cfg.Profile, cfg.Events)
		if err != nil {
			b.Fatal(err)
		}
		fc := cfg.Forest
		fc.Seed = cfg.Seed
		if err := ml.NewRandomForest(fc).Train(d); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(emulator.RunCount()-runs0), "emu-runs")
	}
}

// serialSelectKeyAPIs replicates the pre-PR selection strategy: the same
// four steps, with step 1's per-API correlation sweep done serially.
func serialSelectKeyAPIs(e *experiments.Env, usage *features.UsageStats, cfg features.SelectionConfig) *features.Selection {
	sel := &features.Selection{Config: cfg, SRC: make([]float64, e.U.NumAPIs())}
	for i := 0; i < e.U.NumAPIs(); i++ {
		id := framework.APIID(i)
		if e.U.API(id).Hidden {
			continue
		}
		src := usage.SRC(id)
		sel.SRC[i] = src
		if usage.UsageFraction(id) < cfg.SeldomFraction {
			continue
		}
		if src >= cfg.SRCThreshold || src <= -cfg.SRCThreshold {
			sel.SetC = append(sel.SetC, id)
		}
	}
	sel.SetP = e.U.RestrictedAPIs()
	sel.SetS = e.U.SensitiveAPIs()
	seen := make(map[framework.APIID]bool)
	for _, set := range [][]framework.APIID{sel.SetC, sel.SetP, sel.SetS} {
		for _, id := range set {
			if !seen[id] {
				seen[id] = true
				sel.Keys = append(sel.Keys, id)
			}
		}
	}
	sort.Slice(sel.Keys, func(i, j int) bool { return sel.Keys[i] < sel.Keys[j] })
	return sel
}

// benchMonth prepares a trained market plus one month of submissions for
// the review benchmarks. The verdict cache is disabled: the benchmark loop
// re-reviews the same month b.N times, and with memoization on, every
// iteration after the first would be answered from the cache — these
// benchmarks measure the emulation path.
func benchMonth(b *testing.B, lanes int) (*market.Market, []dataset.App) {
	b.Helper()
	e := env(b)
	sub := dataset.FromApps(e.U, 13, e.Corpus.Apps[:min(600, e.Corpus.Len())])
	ccfg := core.DefaultConfig()
	ccfg.VerdictCache = -1
	ck, _, err := core.TrainFromCorpus(sub, ccfg)
	if err != nil {
		b.Fatal(err)
	}
	mcfg := market.DefaultConfig()
	mcfg.Lanes = lanes
	m := market.New(ck, mcfg)
	m.SeedFingerprints(sub)
	monthCfg := dataset.DefaultConfig()
	monthCfg.Seed = 7919
	monthCfg.NumApps = 200
	month, err := dataset.Generate(e.U, monthCfg)
	if err != nil {
		b.Fatal(err)
	}
	return m, month.Apps
}

// BenchmarkRunYearMonth measures one month of market review with the ML
// scans fanned out over the production lane count (the RunYear inner loop).
// Compare against BenchmarkRunYearMonthSerial.
func BenchmarkRunYearMonth(b *testing.B) {
	m, apps := benchMonth(b, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats := market.MonthStats{Month: i + 1}
		if _, err := m.ReviewBatch(apps, &stats); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunYearMonthSerial is the pre-pool baseline: the same month
// reviewed one submission at a time.
func BenchmarkRunYearMonthSerial(b *testing.B) {
	m, apps := benchMonth(b, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats := market.MonthStats{Month: i + 1}
		for _, app := range apps {
			if _, err := m.Review(app, &stats); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkModelExportImport measures the §5.4 model-distribution path.
func BenchmarkModelExportImport(b *testing.B) {
	e := env(b)
	sub := dataset.FromApps(e.U, 3, e.Corpus.Apps[:min(600, e.Corpus.Len())])
	ck, _, err := core.TrainFromCorpus(sub, core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := ck.ExportBytes()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := core.ImportBytes(data, e.U); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(data))/1024, "model-KiB")
	}
}

// BenchmarkAPKBuildParse measures the archive round trip.
func BenchmarkAPKBuildParse(b *testing.B) {
	e := env(b)
	p := e.Corpus.Program(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := BuildAPK(p, e.U)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ParseAPK(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServiceThroughput measures batch vetting through the always-on
// service: bounded-queue admission, worker-pool lanes, and the
// deterministic ordered merge. Reports submissions vetted per wall-clock
// second. The verdict cache is disabled — the loop re-vets the same batch
// b.N times, and this benchmark measures the emulation path; see the
// Duplicates variants for the cache.
func BenchmarkServiceThroughput(b *testing.B) {
	e := env(b)
	ccfg := core.DefaultConfig()
	ccfg.VerdictCache = -1
	ck, _, err := core.TrainFromCorpus(e.Corpus, ccfg)
	if err != nil {
		b.Fatal(err)
	}
	n := e.Corpus.Len()
	if n > 200 {
		n = 200
	}
	subs := make([]core.Submission, n)
	for i := range subs {
		subs[i] = core.Submission{Program: e.Corpus.Program(i)}
	}
	svc := vetsvc.New(ck, vetsvc.Config{Workers: 8, QueueSize: 32})
	defer svc.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svc.VetBatch(context.Background(), subs); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	elapsed := b.Elapsed().Seconds()
	if elapsed > 0 {
		b.ReportMetric(float64(b.N*n)/elapsed, "submissions/s")
	}
}

// benchDuplicateService wires the duplicate-heavy serving workload: 200
// submissions drawn round-robin from 10 unique programs, vetted through an
// 8-lane service over a checker with the given verdict-cache capacity.
func benchDuplicateService(b *testing.B, verdictCache int) {
	b.Helper()
	e := env(b)
	ccfg := core.DefaultConfig()
	ccfg.VerdictCache = verdictCache
	ck, _, err := core.TrainFromCorpus(e.Corpus, ccfg)
	if err != nil {
		b.Fatal(err)
	}
	const uniques, total = 10, 200
	subs := make([]core.Submission, total)
	for i := range subs {
		subs[i] = core.Submission{Program: e.Corpus.Program(i % uniques)}
	}
	svc := vetsvc.New(ck, vetsvc.Config{Workers: 8, QueueSize: 32})
	defer svc.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svc.VetBatch(context.Background(), subs); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	elapsed := b.Elapsed().Seconds()
	if elapsed > 0 {
		b.ReportMetric(float64(b.N*total)/elapsed, "submissions/s")
	}
	m := svc.Metrics()
	b.ReportMetric(float64(m.CacheHits+m.CacheCoalesced), "cache-served")
	b.ReportMetric(float64(m.CacheMisses+m.CacheBypass), "emulated")
	// Live-heap gauge for the CI artifact: the cache's flat-entry bytes
	// (its measurable heap contribution) and the process heap at snapshot.
	b.ReportMetric(float64(m.CacheLiveBytes), "cache-live-bytes")
	b.ReportMetric(float64(m.HeapLiveBytes), "heap-live-bytes")
}

// BenchmarkServiceThroughputDuplicates is the serving path the verdict
// cache exists for: a duplicate-heavy batch (20x resubmission rate) where
// singleflight and digest memoization answer all but the first sighting of
// each archive. Compare with the NoCache variant for the dedupe speedup.
func BenchmarkServiceThroughputDuplicates(b *testing.B) {
	benchDuplicateService(b, 0) // default cache capacity
}

// BenchmarkServiceThroughputDuplicatesNoCache pays a full emulation for
// every duplicate — the pre-cache serving baseline on the same workload.
func BenchmarkServiceThroughputDuplicatesNoCache(b *testing.B) {
	benchDuplicateService(b, -1)
}

// BenchmarkQueueServing prices the queue/claim/execute decomposition with
// its durable intake journal on: the duplicate-heavy workload as raw
// archives, every admission journaled (CRC-framed append) and every ack
// settle-logged, lease heartbeats ticking during the vets. Compare with
// BenchmarkServiceThroughputDuplicates — the delta is the crash-safety
// premium on the serving path.
func BenchmarkQueueServing(b *testing.B) {
	e := env(b)
	ck, _, err := core.TrainFromCorpus(e.Corpus, core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	const uniques, total = 10, 200
	raws := make([][]byte, uniques)
	for i := range raws {
		raw, err := BuildAPK(e.Corpus.Program(i), e.U)
		if err != nil {
			b.Fatal(err)
		}
		raws[i] = raw
	}
	subs := make([]core.Submission, total)
	for i := range subs {
		subs[i] = core.Submission{Raw: raws[i%uniques]}
	}
	svc, err := vetsvc.Open(ck, vetsvc.Config{
		Workers:   8,
		QueueSize: 32,
		QueueDir:  b.TempDir(),
		LeaseTTL:  time.Minute,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer svc.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svc.VetBatch(context.Background(), subs); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	elapsed := b.Elapsed().Seconds()
	if elapsed > 0 {
		b.ReportMetric(float64(b.N*total)/elapsed, "submissions/s")
	}
	m := svc.Metrics()
	b.ReportMetric(float64(m.CacheHits+m.CacheCoalesced), "cache-served")
	b.ReportMetric(float64(m.QueueAcked), "queue-acked")
}

// BenchmarkClusterServing prices the distributed deployment: the same
// duplicate-heavy raw-archive workload as BenchmarkQueueServing, but the
// coordinator owns the queue with local lanes off and three worker nodes
// claim, vet, and ack every submission over real HTTP (loopback). The
// delta against BenchmarkQueueServing is the wire premium — JSON claim
// framing, base64 payload transport, lease round-trips — on top of the
// identical vet work.
func BenchmarkClusterServing(b *testing.B) {
	e := env(b)
	ck, _, err := core.TrainFromCorpus(e.Corpus, core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	const uniques, total = 10, 200
	raws := make([][]byte, uniques)
	for i := range raws {
		raw, err := BuildAPK(e.Corpus.Program(i), e.U)
		if err != nil {
			b.Fatal(err)
		}
		raws[i] = raw
	}
	subs := make([]core.Submission, total)
	for i := range subs {
		subs[i] = core.Submission{Raw: raws[i%uniques]}
	}
	svc, err := vetsvc.Open(ck, vetsvc.Config{
		QueueSize:         32,
		LeaseTTL:          time.Minute,
		DisableLocalLanes: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer svc.Close()
	coord := cluster.NewCoordinator(svc, cluster.CoordinatorConfig{
		PollSlice: 20 * time.Millisecond,
		StealAge:  100 * time.Millisecond,
	})
	mux := http.NewServeMux()
	coord.Mount(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()
	workers := make([]*cluster.Worker, 3)
	for i := range workers {
		workers[i], err = cluster.StartWorker(cluster.WorkerConfig{
			Coordinator: ts.URL,
			Node:        string(rune('a' + i)),
			Lanes:       4,
			PollWait:    250 * time.Millisecond,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	defer func() {
		for _, w := range workers {
			w.Stop()
		}
	}()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svc.VetBatch(context.Background(), subs); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	elapsed := b.Elapsed().Seconds()
	if elapsed > 0 {
		b.ReportMetric(float64(b.N*total)/elapsed, "submissions/s")
	}
	var claims, verdicts uint64
	for _, w := range workers {
		st := w.Stats()
		claims += st.Claims
		verdicts += st.Verdicts
	}
	b.ReportMetric(float64(claims), "remote-claims")
	b.ReportMetric(float64(verdicts), "remote-verdicts")
}

// BenchmarkServiceThroughputTiered serves a confident-heavy batch through
// a checker with the tiered triage pre-screen on (band [0.05, 0.95]):
// submissions the static permission model scores outside the band get a
// microsecond tier-1 verdict without emulation, in-band ones pay the full
// tier-2 pipeline. A flat twin prices the same batch all-emulated once
// before the timer, so the reported virtual-cost-reduction-x is the
// deterministic (virtual-clock) mean-cost saving of the tier split; CI
// folds the row into BENCH_serving.json next to the untiered benchmarks.
func BenchmarkServiceThroughputTiered(b *testing.B) {
	e := env(b)
	tcfg := core.DefaultConfig()
	tcfg.TriageLo, tcfg.TriageHi = 0.05, 0.95
	ck, _, err := core.TrainFromCorpus(e.Corpus, tcfg)
	if err != nil {
		b.Fatal(err)
	}
	n := e.Corpus.Len()
	if n > 200 {
		n = 200
	}
	subs := make([]core.Submission, n)
	for i := range subs {
		subs[i] = core.Submission{Program: e.Corpus.Program(i)}
	}

	// Price the batch all-emulated on a flat twin (same training, no band).
	flatCk, _, err := core.TrainFromCorpus(e.Corpus, core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	flatSvc := vetsvc.New(flatCk, vetsvc.Config{Workers: 8, QueueSize: 32})
	if _, err := flatSvc.VetBatch(context.Background(), subs); err != nil {
		b.Fatal(err)
	}
	flatMean := flatSvc.Metrics().ScanMean
	flatSvc.Close()

	svc := vetsvc.New(ck, vetsvc.Config{Workers: 8, QueueSize: 32})
	defer svc.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svc.VetBatch(context.Background(), subs); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	elapsed := b.Elapsed().Seconds()
	if elapsed > 0 {
		b.ReportMetric(float64(b.N*n)/elapsed, "submissions/s")
	}
	m := svc.Metrics()
	b.ReportMetric(float64(m.Tier1), "tier1")
	b.ReportMetric(float64(m.Tier2), "tier2")
	b.ReportMetric(m.ScanMean, "virtual-mean-scan-s")
	if m.ScanMean > 0 {
		b.ReportMetric(flatMean/m.ScanMean, "virtual-cost-reduction-x")
	}
}

// BenchmarkGatewayThroughput drives the same duplicate-heavy serving
// workload through the HTTP gateway over a real loopback socket: raw APK
// uploads, JSON verdict responses, and 16 concurrent clients. The delta
// against BenchmarkServiceThroughputDuplicates is the wire tax — HTTP
// parsing, digest admission, and response encoding.
func BenchmarkGatewayThroughput(b *testing.B) {
	e := env(b)
	ck, _, err := core.TrainFromCorpus(e.Corpus, core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	const uniques, total, clients = 10, 200, 16
	payloads := make([][]byte, uniques)
	for i := range payloads {
		payloads[i], err = BuildAPK(e.Corpus.Program(i), e.U)
		if err != nil {
			b.Fatal(err)
		}
	}
	svc := vetsvc.New(ck, vetsvc.Config{Workers: 8, QueueSize: 32})
	gw := NewGateway(svc, GatewayConfig{})
	serveErr := make(chan error, 1)
	go func() { serveErr <- gw.ListenAndServe("127.0.0.1:0") }()
	for i := 0; i < 200 && gw.Addr() == ""; i++ {
		time.Sleep(5 * time.Millisecond)
	}
	if gw.Addr() == "" {
		b.Fatal("gateway did not start listening")
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		gw.Shutdown(ctx)
	}()
	url := "http://" + gw.Addr() + "/v1/submissions?wait=2m"
	client := &http.Client{Timeout: 3 * time.Minute}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var next, failures atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < clients; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					j := int(next.Add(1)) - 1
					if j >= total {
						return
					}
					resp, err := client.Post(url, "application/vnd.android.package-archive",
						bytes.NewReader(payloads[j%uniques]))
					if err != nil {
						failures.Add(1)
						continue
					}
					var st SubmissionStatus
					err = json.NewDecoder(resp.Body).Decode(&st)
					resp.Body.Close()
					if err != nil || st.Status != "done" {
						failures.Add(1)
					}
				}
			}()
		}
		wg.Wait()
		if n := failures.Load(); n > 0 {
			b.Fatalf("%d gateway submissions failed", n)
		}
	}
	b.StopTimer()
	elapsed := b.Elapsed().Seconds()
	if elapsed > 0 {
		b.ReportMetric(float64(b.N*total)/elapsed, "submissions/s")
	}
}

// BenchmarkPipelineStages vets a mixed batch through the staged pipeline
// and reports each stage's virtual-latency profile from the checker's
// observability spine: <stage>-p50-vs / <stage>-p95-vs (virtual seconds)
// plus <stage>-runs. This is the per-stage record behind the service-level
// scan quantiles; CI folds it into BENCH_serving.json.
func BenchmarkPipelineStages(b *testing.B) {
	e := env(b)
	ck, _, err := core.TrainFromCorpus(e.Corpus, core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	const uniques, total = 20, 120
	subs := make([]core.Submission, total)
	for i := range subs {
		subs[i] = core.Submission{Program: e.Corpus.Program(i % uniques)}
	}
	svc := vetsvc.New(ck, vetsvc.Config{Workers: 8, QueueSize: 32})
	defer svc.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svc.VetBatch(context.Background(), subs); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	elapsed := b.Elapsed().Seconds()
	if elapsed > 0 {
		b.ReportMetric(float64(b.N*total)/elapsed, "submissions/s")
	}
	for _, st := range ck.StageStats() {
		b.ReportMetric(st.Dur.P50, st.Stage+"-p50-vs")
		b.ReportMetric(st.Dur.P95, st.Stage+"-p95-vs")
		b.ReportMetric(float64(st.Count), st.Stage+"-runs")
	}
}

// benchForestBlock trains a forest and synthesizes a 512-row inference
// block (clearly past the batch chunk size) for the inference benchmarks.
func benchForestBlock(b *testing.B) (*ml.RandomForest, []ml.Vector) {
	b.Helper()
	const rows, feats = 512, 160
	rng := newBenchRNG(17)
	d := ml.NewDataset(feats)
	for i := 0; i < rows; i++ {
		v := ml.NewVector(feats)
		for f := 0; f < feats; f++ {
			if rng.next()%100 < 12 {
				v.Set(f)
			}
		}
		d.Add(v, rng.next()%100 < 30)
	}
	rf := ml.NewRandomForest(ml.ForestConfig{Trees: 80, MaxDepth: 16, MinLeaf: 2, Seed: 5})
	if err := rf.Train(d); err != nil {
		b.Fatal(err)
	}
	xs := make([]ml.Vector, len(d.Examples))
	for i := range d.Examples {
		xs[i] = d.Examples[i].X
	}
	return rf, xs
}

// benchRNG is a tiny deterministic generator so the inference benchmarks
// need no corpus emulation to set up.
type benchRNG struct{ s uint64 }

func newBenchRNG(seed uint64) *benchRNG { return &benchRNG{s: seed} }

func (r *benchRNG) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}

// BenchmarkPredictBatch measures tree-major batch inference over a
// 512-row block (the ReviewBatch/Evaluate serving shape). Compare with
// BenchmarkPredictPerRow.
func BenchmarkPredictBatch(b *testing.B) {
	rf, xs := benchForestBlock(b)
	out := make([]float64, len(xs))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rf.ScoreBatch(xs, out)
	}
	b.ReportMetric(float64(len(xs)), "rows/op")
}

// BenchmarkPredictPerRow is the row-major baseline: one root-to-leaf walk
// per (row, tree) pair through the per-row Score path.
func BenchmarkPredictPerRow(b *testing.B) {
	rf, xs := benchForestBlock(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, x := range xs {
			rf.Score(x)
		}
	}
	b.ReportMetric(float64(len(xs)), "rows/op")
}

// BenchmarkLifecyclePromotion measures one full background-evolution
// round against a live serving checker: train a challenger on the
// refreshed corpus, shadow-score it against the champion on the held-out
// slice, persist it to the on-disk registry, and hot-swap it in. The
// promotion and generation counts land as custom metrics so CI folds the
// lifecycle record into BENCH_serving.json.
func BenchmarkLifecyclePromotion(b *testing.B) {
	e := env(b)
	ck, _, err := core.TrainFromCorpus(e.Corpus, core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	reg, err := modelstore.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	m := lifecycle.NewManager(ck, reg, lifecycle.GateConfig{
		MaxF1Drop: 1, MaxAUCDrop: 1, MinHoldout: 10,
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := m.Evolve(context.Background(), e.Corpus)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Promoted {
			b.Fatalf("round %d not promoted: %s", i, res.Shadow.Reason)
		}
	}
	b.StopTimer()
	st := m.State()
	b.ReportMetric(float64(st.Promotions), "promotions")
	b.ReportMetric(float64(ck.Generation().ID), "generation")
	b.ReportMetric(float64(st.LastShadow.Holdout), "holdout-apps")
}

// silence unused-import complaints if metrics change shape later
var _ = dataset.AllTrackableAPIs
