package apichecker

import (
	"bytes"
	"testing"
)

// The facade integration test: everything a downstream user would do in
// their first hour, through the public API only.
func TestPublicAPIEndToEnd(t *testing.T) {
	u, err := NewUniverse(3000, 21)
	if err != nil {
		t.Fatal(err)
	}
	corpus, err := NewCorpus(u, 900, 21)
	if err != nil {
		t.Fatal(err)
	}
	checker, report, err := Train(corpus, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if report.KeyAPIs == 0 || report.Features < report.KeyAPIs {
		t.Fatalf("report = %+v", report)
	}

	// Build and vet fresh apps through the archive path.
	gen := NewGenerator(u)
	benign := gen.Generate(Spec{
		PackageName: "com.pub.notes", Version: 1, Seed: 5001, Label: Benign,
	})
	evil := gen.Generate(Spec{
		PackageName: "com.pub.sms", Version: 1, Seed: 5002,
		Label: Malicious, Family: FamilySMSFraud,
	})
	for _, tc := range []struct {
		p    *Program
		want bool
	}{{benign, false}, {evil, true}} {
		data, err := BuildAPK(tc.p, u)
		if err != nil {
			t.Fatal(err)
		}
		parsed, err := ParseAPK(data)
		if err != nil {
			t.Fatal(err)
		}
		if parsed.PackageName() != tc.p.PackageName {
			t.Errorf("parsed package = %s", parsed.PackageName())
		}
		v, err := checker.VetAPK(data)
		if err != nil {
			t.Fatal(err)
		}
		if v.Malicious != tc.want {
			t.Errorf("%s: malicious = %v, want %v (score %f)",
				tc.p.PackageName, v.Malicious, tc.want, v.Score)
		}
	}

	// Market wrapping and review.
	m := NewMarket(checker, DefaultMarketConfig())
	m.SeedFingerprints(corpus)
	var reviewed int
	for _, app := range corpus.Apps[:50] {
		if _, err := m.Review(app, nil); err != nil {
			t.Fatal(err)
		}
		reviewed++
	}
	if reviewed != 50 {
		t.Fatal("reviews lost")
	}

	// Model distribution.
	var blob bytes.Buffer
	if err := checker.Export(&blob); err != nil {
		t.Fatal(err)
	}
	imported, err := ImportModel(&blob, u)
	if err != nil {
		t.Fatal(err)
	}
	v1, err := checker.VetProgram(evil)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := imported.VetProgram(evil)
	if err != nil {
		t.Fatal(err)
	}
	if v1.Malicious != v2.Malicious {
		t.Error("imported model disagrees with original")
	}
}

func TestPublicYearSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("year simulation in -short mode")
	}
	u, err := NewUniverse(3000, 33)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultYearConfig()
	cfg.Months = 2
	cfg.InitialApps = 400
	cfg.MonthlyApps = 120
	cfg.RetrainCap = 700
	rep, err := RunYear(u, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Months) != 2 {
		t.Fatalf("months = %d", len(rep.Months))
	}
}

func TestPaperUniverseSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("50K-API universe in -short mode")
	}
	u, err := PaperUniverse(1)
	if err != nil {
		t.Fatal(err)
	}
	if u.NumAPIs() != 50000 {
		t.Errorf("NumAPIs = %d", u.NumAPIs())
	}
}
