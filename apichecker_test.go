package apichecker

import (
	"bytes"
	"context"
	"errors"
	"testing"
)

// The facade integration test: everything a downstream user would do in
// their first hour, through the public API only.
func TestPublicAPIEndToEnd(t *testing.T) {
	u, err := NewUniverse(3000, 21)
	if err != nil {
		t.Fatal(err)
	}
	corpus, err := NewCorpus(u, 900, 21)
	if err != nil {
		t.Fatal(err)
	}
	checker, report, err := Train(corpus, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if report.KeyAPIs == 0 || report.Features < report.KeyAPIs {
		t.Fatalf("report = %+v", report)
	}

	// Build and vet fresh apps through the archive path.
	gen := NewGenerator(u)
	benign := gen.Generate(Spec{
		PackageName: "com.pub.notes", Version: 1, Seed: 5001, Label: Benign,
	})
	evil := gen.Generate(Spec{
		PackageName: "com.pub.sms", Version: 1, Seed: 5002,
		Label: Malicious, Family: FamilySMSFraud,
	})
	for _, tc := range []struct {
		p    *Program
		want bool
	}{{benign, false}, {evil, true}} {
		data, err := BuildAPK(tc.p, u)
		if err != nil {
			t.Fatal(err)
		}
		parsed, err := ParseAPK(data)
		if err != nil {
			t.Fatal(err)
		}
		if parsed.PackageName() != tc.p.PackageName {
			t.Errorf("parsed package = %s", parsed.PackageName())
		}
		v, err := checker.Vet(context.Background(), Submission{Raw: data})
		if err != nil {
			t.Fatal(err)
		}
		if v.Malicious != tc.want {
			t.Errorf("%s: malicious = %v, want %v (score %f)",
				tc.p.PackageName, v.Malicious, tc.want, v.Score)
		}
	}

	// Market wrapping and review.
	m := NewMarket(checker, DefaultMarketConfig())
	m.SeedFingerprints(corpus)
	var reviewed int
	for _, app := range corpus.Apps[:50] {
		if _, err := m.Review(app, nil); err != nil {
			t.Fatal(err)
		}
		reviewed++
	}
	if reviewed != 50 {
		t.Fatal("reviews lost")
	}

	// Model distribution.
	var blob bytes.Buffer
	if err := checker.Export(&blob); err != nil {
		t.Fatal(err)
	}
	imported, err := ImportModel(&blob, u)
	if err != nil {
		t.Fatal(err)
	}
	v1, err := checker.Vet(context.Background(), Submission{Program: evil})
	if err != nil {
		t.Fatal(err)
	}
	v2, err := imported.Vet(context.Background(), Submission{Program: evil})
	if err != nil {
		t.Fatal(err)
	}
	if v1.Malicious != v2.Malicious {
		t.Error("imported model disagrees with original")
	}
}

func TestPublicYearSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("year simulation in -short mode")
	}
	u, err := NewUniverse(3000, 33)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultYearConfig()
	cfg.Months = 2
	cfg.InitialApps = 400
	cfg.MonthlyApps = 120
	cfg.RetrainCap = 700
	rep, err := RunYear(u, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Months) != 2 {
		t.Fatalf("months = %d", len(rep.Months))
	}
}

func TestPaperUniverseSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("50K-API universe in -short mode")
	}
	u, err := PaperUniverse(1)
	if err != nil {
		t.Fatal(err)
	}
	if u.NumAPIs() != 50000 {
		t.Errorf("NumAPIs = %d", u.NumAPIs())
	}
}

// TestPublicVetService exercises the always-on service and the sentinel
// errors through the facade only.
func TestPublicVetService(t *testing.T) {
	u, err := NewUniverse(3000, 44)
	if err != nil {
		t.Fatal(err)
	}
	corpus, err := NewCorpus(u, 600, 44)
	if err != nil {
		t.Fatal(err)
	}
	checker, _, err := Train(corpus, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}

	if _, err := ParseAPK([]byte("garbage")); !errors.Is(err, ErrBadAPK) {
		t.Errorf("ParseAPK(garbage) = %v, want ErrBadAPK", err)
	}
	if _, err := checker.Vet(context.Background(), Submission{}); !errors.Is(err, ErrBadSubmission) {
		t.Errorf("Vet(empty submission) = %v, want ErrBadSubmission", err)
	}
	if !errors.Is(ErrDeadlineExceeded, context.DeadlineExceeded) {
		t.Error("ErrDeadlineExceeded must wrap context.DeadlineExceeded")
	}

	svc := NewVetService(checker, VetServiceConfig{Workers: 4, QueueSize: 8})
	defer svc.Close()
	var tickets []*VetTicket
	for i := 0; i < 8; i++ {
		tk, err := svc.SubmitWait(context.Background(), Submission{Program: corpus.Program(i)})
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	for i, tk := range tickets {
		v, err := tk.Wait(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if v.Package != corpus.Program(i).PackageName {
			t.Errorf("verdict %d package = %q", i, v.Package)
		}
	}
	m := svc.Metrics()
	if m.Accepted != 8 || m.Completed != 8 {
		t.Errorf("metrics = %+v", m)
	}
	svc.Close()
	if _, err := svc.SubmitWait(context.Background(), Submission{Program: corpus.Program(0)}); !errors.Is(err, ErrServiceClosed) {
		t.Errorf("submit after close = %v, want ErrServiceClosed", err)
	}
}
