// Command apichecker trains the vetting pipeline on a synthetic
// ground-truth corpus and vets APK files (e.g. those produced by apkgen).
//
// Usage:
//
//	apichecker -universe-apis 10000 -seed 1 -train-apps 2000 corpus/*.apk
//
// The universe parameters must match the apkgen run that produced the
// APKs. With no APK arguments it prints the training report and vets a
// small self-generated demo batch.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"apichecker"
	"apichecker/internal/analysislog"
)

func main() {
	var (
		apis      = flag.Int("universe-apis", 10000, "framework universe size")
		seed      = flag.Int64("seed", 1, "global random seed")
		trainApps = flag.Int("train-apps", 1500, "ground-truth corpus size for training")
		logPath   = flag.String("log", "", "write per-app analysis logs (JSONL) to this file")
	)
	flag.Parse()

	u, err := apichecker.NewUniverse(*apis, *seed)
	if err != nil {
		fail(err)
	}
	corpus, err := apichecker.NewCorpus(u, *trainApps, *seed+1000)
	if err != nil {
		fail(err)
	}
	fmt.Printf("training on %d ground-truth apps (%d malicious)...\n", corpus.Len(), corpus.Positives())
	start := time.Now()
	checker, rep, err := apichecker.Train(corpus, apichecker.DefaultConfig())
	if err != nil {
		fail(err)
	}
	fmt.Printf("trained in %s: %d key APIs (Set-C %d, Set-P %d, Set-S %d), %d features\n",
		time.Since(start).Round(time.Millisecond), rep.KeyAPIs, rep.SetC, rep.SetP, rep.SetS, rep.Features)

	if *logPath != "" {
		f, err := os.Create(*logPath)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		logWriter = analysislog.NewWriter(f)
		defer func() {
			if err := logWriter.Flush(); err != nil {
				fail(err)
			}
			fmt.Printf("wrote %d analysis-log records to %s\n", logWriter.Count(), *logPath)
		}()
	}

	files := flag.Args()
	if len(files) == 0 {
		fmt.Println("no APKs given; vetting a self-generated demo batch")
		demo, err := apichecker.NewCorpus(u, 8, *seed+2000)
		if err != nil {
			fail(err)
		}
		for i := 0; i < demo.Len(); i++ {
			data, err := apichecker.BuildAPK(demo.Program(i), u)
			if err != nil {
				fail(err)
			}
			vetOne(checker, fmt.Sprintf("demo:%s", demo.Apps[i].Spec.PackageName), data)
		}
		return
	}
	for _, path := range files {
		data, err := os.ReadFile(path)
		if err != nil {
			fail(err)
		}
		vetOne(checker, path, data)
	}
}

// logWriter, when non-nil, records every vetted app's analysis log.
var logWriter *analysislog.Writer

func vetOne(checker *apichecker.Checker, name string, data []byte) {
	v, run, err := checker.VetRun(context.Background(), apichecker.Submission{Raw: data})
	if err != nil {
		fail(fmt.Errorf("%s: %w", name, err))
	}
	if logWriter != nil {
		rec := analysislog.FromResult(v.Package, v.VersionCode, v.MD5, run, checker.Universe())
		if err := logWriter.Write(rec); err != nil {
			fail(err)
		}
	}
	verdict := "BENIGN"
	if v.Malicious {
		verdict = "MALICIOUS"
	}
	note := ""
	if v.FellBack {
		note = " [fell back to stock emulator]"
	}
	fmt.Printf("%-50s %-9s score=%+.3f scan=%s keyAPIs=%d md5=%s%s\n",
		name, verdict, v.Score, v.ScanTime.Round(time.Second), v.InvokedKeyAPIs, shortMD5(v.MD5), note)
}

func shortMD5(md5 string) string {
	if len(md5) > 12 {
		return md5[:12]
	}
	return md5
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "apichecker:", err)
	os.Exit(1)
}
