// Command vetworker is one remote vet-cluster worker node: it claims
// submissions from a coordinator (`tmarket -serve -listen -cluster`)
// over HTTP, runs the full local vet pipeline on each, heartbeats its
// leases during emulation, and reports verdicts back for first-wins
// recording. The node cold-starts its model from the coordinator's
// advertised generation and hot-swaps whenever a claim advertises a
// newer one — no model files need to be distributed out of band.
//
//	vetworker -coordinator http://localhost:8080 -node node-a
//
// The process exits 0 when the coordinator reports its queue drained or
// on SIGINT/SIGTERM (in-flight claims are nacked back for prompt
// re-issue; verdicts already computed are acked first).
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"apichecker"
)

func main() {
	var (
		coord = flag.String("coordinator", "", "coordinator base URL (e.g. http://localhost:8080); required")
		node  = flag.String("node", "", "stable node name (affinity + liveness identity); required")
		lanes = flag.Int("lanes", 0, "concurrent claim lanes (0 = 4)")
		poll  = flag.Duration("poll", 10*time.Second, "claim long-poll budget per request")
		hb    = flag.Duration("heartbeat", 0, "lease heartbeat period (0 = derive from the lease TTL, negative = off)")
		vcap  = flag.Int("vcache", 0, "node-local verdict-cache capacity (0 = artifact default, negative = disabled)")
		quiet = flag.Bool("quiet", false, "suppress the per-vet progress lines")
	)
	flag.Parse()
	if *coord == "" || *node == "" {
		fmt.Fprintln(os.Stderr, "vetworker: -coordinator and -node are required")
		flag.Usage()
		os.Exit(2)
	}

	cfg := apichecker.ClusterWorkerConfig{
		Coordinator:    *coord,
		Node:           *node,
		Lanes:          *lanes,
		PollWait:       *poll,
		HeartbeatEvery: *hb,
	}
	if *vcap != 0 {
		cap := *vcap
		cfg.Configure = func(c apichecker.Config) apichecker.Config {
			c.VerdictCache = cap
			return c
		}
	}
	if !*quiet {
		cfg.OnVet = func(seq int64, v *apichecker.Verdict, err error) {
			switch {
			case err != nil:
				fmt.Printf("vet seq=%-5d err=%v\n", seq, err)
			case v != nil:
				fmt.Printf("vet seq=%-5d pkg=%-24s malicious=%-5v score=%.3f gen=%d\n",
					seq, v.Package, v.Malicious, v.Score, v.Generation)
			}
		}
	}

	w, err := apichecker.StartClusterWorker(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vetworker:", err)
		os.Exit(1)
	}
	fmt.Printf("vetworker %s claiming from %s\n", *node, *coord)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("received %s; stopping\n", s)
		w.Stop()
	case <-w.Done():
		fmt.Println("coordinator drained; exiting")
	}

	st := w.Stats()
	fmt.Printf("node %s: %d claims, %d verdicts, %d nacks, %d lease-lost, %d model pulls, %d swaps\n",
		*node, st.Claims, st.Verdicts, st.Nacks, st.LeaseLost, st.ModelPulls, st.ModelSwaps)
}
