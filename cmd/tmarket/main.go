// Command tmarket simulates months of market deployment: initial training
// on ground-truth data, monthly submission review through the full
// pipeline (fingerprint consensus → APICHECKER → manual workflows), SDK
// evolution, and monthly retraining (§5.2-§5.3).
//
// Usage:
//
//	tmarket -months 12 -universe-apis 12000 -initial 900 -monthly 250
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"apichecker"
)

func main() {
	var (
		apis    = flag.Int("universe-apis", 10000, "framework universe size")
		seed    = flag.Int64("seed", 1, "global random seed")
		months  = flag.Int("months", 12, "months to simulate")
		initial = flag.Int("initial", 900, "initial ground-truth corpus size")
		monthly = flag.Int("monthly", 250, "submissions per month")
		sdk     = flag.Int("sdk-every", 4, "SDK release cadence in months (0 = never)")
	)
	flag.Parse()

	u, err := apichecker.NewUniverse(*apis, *seed)
	if err != nil {
		fail(err)
	}
	cfg := apichecker.DefaultYearConfig()
	cfg.Seed = *seed
	cfg.Months = *months
	cfg.InitialApps = *initial
	cfg.MonthlyApps = *monthly
	cfg.SDKEveryMonths = *sdk
	cfg.RetrainCap = *initial + 5**monthly

	fmt.Printf("simulating %d months (universe %d APIs, initial corpus %d, %d submissions/month)\n\n",
		cfg.Months, *apis, cfg.InitialApps, cfg.MonthlyApps)
	start := time.Now()
	rep, err := apichecker.RunYear(u, cfg)
	if err != nil {
		fail(err)
	}

	fmt.Printf("%6s %10s %8s %8s %8s %9s %10s %9s\n",
		"Month", "Precision", "Recall", "Known", "Flagged", "Fast/Full", "Reports", "KeyAPIs")
	var manualTotal float64
	for _, m := range rep.Months {
		fmt.Printf("%6d %9.1f%% %7.1f%% %8d %8d %5d/%-4d %10d %9d\n",
			m.Month, 100*m.Precision(), 100*m.Recall(),
			m.RejectedKnown, m.Flagged, m.FastTracked, m.ManualFull, m.UserReports, m.KeyAPIs)
		manualTotal += m.ManualMinutes
	}
	pMin, pMax, rMin, rMax := rep.MinMaxPrecisionRecall()
	fmt.Printf("\nsimulated in %s\n", time.Since(start).Round(time.Millisecond))
	fmt.Printf("precision band %.1f%%-%.1f%%, recall band %.1f%%-%.1f%%\n",
		100*pMin, 100*pMax, 100*rMin, 100*rMax)
	fmt.Printf("key-API set: %d initially, %d-%d over the run\n",
		rep.InitialKeyAPIs, minKeys(rep), maxKeys(rep))
	fmt.Printf("total manual-analysis effort: %.0f analyst-hours\n", manualTotal/60)
}

func minKeys(rep *apichecker.YearReport) int {
	v := rep.Months[0].KeyAPIs
	for _, m := range rep.Months {
		if m.KeyAPIs < v {
			v = m.KeyAPIs
		}
	}
	return v
}

func maxKeys(rep *apichecker.YearReport) int {
	v := rep.Months[0].KeyAPIs
	for _, m := range rep.Months {
		if m.KeyAPIs > v {
			v = m.KeyAPIs
		}
	}
	return v
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "tmarket:", err)
	os.Exit(1)
}
