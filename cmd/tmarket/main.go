// Command tmarket simulates months of market deployment: initial training
// on ground-truth data, monthly submission review through the full
// pipeline (fingerprint consensus → APICHECKER → manual workflows), SDK
// evolution, and monthly retraining (§5.2-§5.3).
//
// Usage:
//
//	tmarket -months 12 -universe-apis 12000 -initial 900 -monthly 250
//
// With -serve, tmarket instead runs one submission batch through the
// always-on vetting service (bounded queue, worker-pool lanes, deadlines)
// and reports the service metrics — the online deployment shape of §5.2.
//
// With -model-dir, the serving model lives in a versioned on-disk registry:
// -snapshot trains and persists a generation, -serve cold-starts from the
// registry's current generation (training one only when the registry is
// empty), and -evolve retrains in the background mid-batch and hot-swaps
// the challenger in when it passes the promotion gates (§5.3):
//
//	tmarket -model-dir ./models -snapshot
//	tmarket -model-dir ./models -serve -evolve
//
// With -serve -listen, tmarket becomes the actual market frontend: the
// vetting service is exposed over HTTP (submission API, /metrics,
// per-submission SSE traces) until SIGINT/SIGTERM, which drains
// gracefully — admissions stop, in-flight submissions finish, the persist
// log flushes:
//
//	tmarket -serve -listen localhost:8080
//
// Every serve-related flag is a thin shim over one apichecker.ServeConfig;
// see that type for the knob inventory.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // -pprof registers the profiling handlers
	"os"
	"os/signal"
	"sort"
	"sync"
	"syscall"
	"time"

	"apichecker"
)

func main() {
	var (
		apis    = flag.Int("universe-apis", 10000, "framework universe size")
		seed    = flag.Int64("seed", 1, "global random seed")
		months  = flag.Int("months", 12, "months to simulate")
		initial = flag.Int("initial", 900, "initial ground-truth corpus size")
		monthly = flag.Int("monthly", 250, "submissions per month")
		sdk     = flag.Int("sdk-every", 4, "SDK release cadence in months (0 = never)")

		serve    = flag.Bool("serve", false, "run the vetting service (one submission batch, or a network frontend with -listen) instead of the year simulation")
		dup      = flag.Int("dup", 1, "submit each -serve app this many times (duplicate-heavy workloads exercise the verdict cache)")
		snapshot = flag.Bool("snapshot", false, "train a model, persist it to -model-dir, and exit")
		tband    = flag.String("triage-band", "", `tier-1 triage uncertainty band "lo,hi" (e.g. 0.05,0.95): submissions the static pre-screen scores outside the band skip emulation entirely (-serve and -snapshot)`)
	)
	// The serve-related flags are a thin shim over one ServeConfig.
	scfg := apichecker.DefaultServeConfig()
	flag.IntVar(&scfg.Workers, "workers", 0, "service lanes (0 = one per emulator slot)")
	flag.IntVar(&scfg.Queue, "queue", 0, "service queue depth (0 = 4x workers)")
	flag.DurationVar(&scfg.Deadline, "deadline", 0, "per-submission vet deadline (0 = none)")
	flag.StringVar(&scfg.QueueDir, "queue-dir", "", "journal accepted submissions to this directory and replay unsettled ones on restart (-serve only)")
	flag.DurationVar(&scfg.LeaseTTL, "lease-ttl", 0, "reclaim a claimed submission after this long without worker progress (0 = never)")
	flag.IntVar(&scfg.VerdictCache, "vcache", 0, "verdict-cache capacity on the -serve path (0 = default, negative = disabled)")
	flag.StringVar(&scfg.PersistDir, "vcache-persist", "", "persist the verdict cache to this directory and warm-start it on the next run (-serve only)")
	flag.BoolVar(&scfg.Trace, "trace", false, "stream per-submission pipeline spans and print the per-stage latency table (-serve only)")
	flag.StringVar(&scfg.ModelDir, "model-dir", "", "versioned model registry directory; -serve cold-starts from its current generation")
	flag.BoolVar(&scfg.Evolve, "evolve", false, "retrain in the background during the -serve batch and hot-swap on gated promotion (requires -model-dir)")
	flag.StringVar(&scfg.Listen, "listen", "", "serve the HTTP gateway on this address until SIGINT/SIGTERM (-serve only)")
	flag.StringVar(&scfg.PprofAddr, "pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	flag.DurationVar(&scfg.DrainTimeout, "drain-timeout", scfg.DrainTimeout, "graceful-shutdown budget for in-flight submissions (-listen only)")
	flag.BoolVar(&scfg.Cluster, "cluster", false, "run as a vet-cluster coordinator: local lanes off, remote vetworker nodes claim submissions over the gateway (requires -listen)")
	flag.Parse()

	if scfg.PprofAddr != "" {
		go func() {
			// DefaultServeMux carries the pprof handlers via the blank import.
			if err := http.ListenAndServe(scfg.PprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "tmarket: pprof:", err)
			}
		}()
		fmt.Printf("pprof listening on http://%s/debug/pprof/\n", scfg.PprofAddr)
	}

	if (*snapshot || scfg.Evolve) && scfg.ModelDir == "" {
		fail(fmt.Errorf("-snapshot and -evolve require -model-dir"))
	}
	if scfg.Cluster && (!*serve || scfg.Listen == "") {
		fail(fmt.Errorf("-cluster requires -serve -listen (worker nodes claim over the gateway)"))
	}
	band, err := parseBand(*tband)
	if err != nil {
		fail(err)
	}
	u, err := apichecker.NewUniverse(*apis, *seed)
	if err != nil {
		fail(err)
	}
	if *snapshot {
		if err := runSnapshot(u, *seed, *initial, scfg.ModelDir, band); err != nil {
			fail(err)
		}
		return
	}
	if *serve {
		if err := runService(u, *seed, *initial, *monthly, *dup, scfg, band); err != nil {
			fail(err)
		}
		return
	}
	if *tband != "" {
		fmt.Fprintln(os.Stderr, "tmarket: -triage-band only applies with -serve or -snapshot")
	}
	if scfg.Trace {
		fmt.Fprintln(os.Stderr, "tmarket: -trace only applies with -serve")
	}
	if scfg.PersistDir != "" {
		fmt.Fprintln(os.Stderr, "tmarket: -vcache-persist only applies with -serve")
	}
	if scfg.Evolve {
		fmt.Fprintln(os.Stderr, "tmarket: -evolve only applies with -serve")
	}
	if scfg.Listen != "" {
		fmt.Fprintln(os.Stderr, "tmarket: -listen only applies with -serve")
	}
	cfg := apichecker.DefaultYearConfig()
	cfg.Seed = *seed
	cfg.Months = *months
	cfg.InitialApps = *initial
	cfg.MonthlyApps = *monthly
	cfg.SDKEveryMonths = *sdk
	cfg.RetrainCap = *initial + 5**monthly

	fmt.Printf("simulating %d months (universe %d APIs, initial corpus %d, %d submissions/month)\n\n",
		cfg.Months, *apis, cfg.InitialApps, cfg.MonthlyApps)
	start := time.Now()
	rep, err := apichecker.RunYear(u, cfg)
	if err != nil {
		fail(err)
	}

	fmt.Printf("%6s %10s %8s %8s %8s %9s %10s %9s\n",
		"Month", "Precision", "Recall", "Known", "Flagged", "Fast/Full", "Reports", "KeyAPIs")
	var manualTotal float64
	for _, m := range rep.Months {
		fmt.Printf("%6d %9.1f%% %7.1f%% %8d %8d %5d/%-4d %10d %9d\n",
			m.Month, 100*m.Precision(), 100*m.Recall(),
			m.RejectedKnown, m.Flagged, m.FastTracked, m.ManualFull, m.UserReports, m.KeyAPIs)
		manualTotal += m.ManualMinutes
	}
	pMin, pMax, rMin, rMax := rep.MinMaxPrecisionRecall()
	fmt.Printf("\nsimulated in %s\n", time.Since(start).Round(time.Millisecond))
	fmt.Printf("precision band %.1f%%-%.1f%%, recall band %.1f%%-%.1f%%\n",
		100*pMin, 100*pMax, 100*rMin, 100*rMax)
	fmt.Printf("key-API set: %d initially, %d-%d over the run\n",
		rep.InitialKeyAPIs, minKeys(rep), maxKeys(rep))
	fmt.Printf("total manual-analysis effort: %.0f analyst-hours\n", manualTotal/60)
}

// triageBand is a parsed -triage-band flag; Set false means the flag was
// absent and the trained default (or the artifact's recorded band) rules.
type triageBand struct {
	Lo, Hi float64
	Set    bool
}

// parseBand parses the -triage-band "lo,hi" syntax. Validation of the
// values themselves (0 <= lo <= hi <= 1) happens in the checker.
func parseBand(s string) (triageBand, error) {
	if s == "" {
		return triageBand{}, nil
	}
	var b triageBand
	if _, err := fmt.Sscanf(s, "%f,%f", &b.Lo, &b.Hi); err != nil {
		return triageBand{}, fmt.Errorf(`-triage-band %q: want "lo,hi" (e.g. 0.05,0.95)`, s)
	}
	b.Set = true
	return b, nil
}

// runSnapshot is the -snapshot path: train once and persist the model to
// the registry as the current generation.
func runSnapshot(u *apichecker.Universe, seed int64, initial int, modelDir string, band triageBand) error {
	training, err := apichecker.NewCorpus(u, initial, seed)
	if err != nil {
		return err
	}
	ccfg := apichecker.DefaultConfig()
	if band.Set {
		ccfg.TriageLo, ccfg.TriageHi = band.Lo, band.Hi
	}
	checker, rep, err := apichecker.Train(training, ccfg)
	if err != nil {
		return err
	}
	reg, err := apichecker.OpenModelRegistry(modelDir)
	if err != nil {
		return err
	}
	mgr := apichecker.NewLifecycleManager(checker, reg, apichecker.DefaultGateConfig())
	dig, err := mgr.Snapshot("tmarket -snapshot")
	if err != nil {
		return err
	}
	fmt.Printf("trained on %d apps (%d key APIs)\n", initial, rep.KeyAPIs)
	fmt.Printf("snapshotted generation %s to %s\n", shortDigest(dig), modelDir)
	return nil
}

// runService is the -serve path: obtain a model (cold-started from the
// registry when ModelDir has one, trained otherwise), then either vet one
// batch of submissions through the always-on service and print its
// metrics, or — with Listen set — expose the service over HTTP until a
// shutdown signal drains it. With Trace, the checker's obs spine streams
// one line per completed pipeline stage and the per-stage latency table
// follows the metrics. With Evolve, a background runner retrains
// mid-batch and hot-swaps on promotion.
func runService(u *apichecker.Universe, seed int64, initial, monthly, dup int, scfg apichecker.ServeConfig, band triageBand) error {
	var (
		checker *apichecker.Checker
		mgr     *apichecker.LifecycleManager
	)
	if scfg.ModelDir != "" {
		reg, err := apichecker.OpenModelRegistry(scfg.ModelDir)
		if err != nil {
			return err
		}
		cold, man, err := apichecker.ColdStart(reg)
		switch {
		case err == nil:
			checker = cold
			fmt.Printf("cold-started generation %s from %s (created %s)\n",
				shortDigest(man.Digest), scfg.ModelDir, man.CreatedAt.Format(time.RFC3339))
			mgr = apichecker.NewLifecycleManager(checker, reg, apichecker.DefaultGateConfig())
		case errors.Is(err, apichecker.ErrNoCurrentModel):
			// Empty registry: train a first generation and seed it.
			ck, rep, err := trainChecker(u, seed, initial, scfg.VerdictCache, band)
			if err != nil {
				return err
			}
			checker = ck
			mgr = apichecker.NewLifecycleManager(checker, reg, apichecker.DefaultGateConfig())
			dig, err := mgr.Snapshot("tmarket -serve initial")
			if err != nil {
				return err
			}
			fmt.Printf("trained on %d apps (%d key APIs); snapshotted generation %s to %s\n",
				initial, rep.KeyAPIs, shortDigest(dig), scfg.ModelDir)
		default:
			return err
		}
	} else {
		ck, rep, err := trainChecker(u, seed, initial, scfg.VerdictCache, band)
		if err != nil {
			return err
		}
		checker = ck
		fmt.Printf("trained on %d apps (%d key APIs); starting vetting service\n",
			initial, rep.KeyAPIs)
	}
	if lo, hi := checker.TriageBand(); band.Set && (band.Lo != lo || band.Hi != hi) {
		// Override the trained (or artifact-recorded) band. A band change
		// reshapes verdicts, so this is a model swap: it must land before
		// the persist tier attaches or warm-start entries would be stale.
		if _, err := checker.SetTriageBand(band.Lo, band.Hi); err != nil {
			return err
		}
	}
	if lo, hi := checker.TriageBand(); (lo > 0 || hi < 1) && checker.Parts().Triage != nil {
		fmt.Printf("tiered triage on: band [%g, %g] falls through to emulation, outside short-circuits\n", lo, hi)
	}
	if scfg.PersistDir != "" {
		// Attached after the checker exists (covers the cold-start path,
		// where the registry instantiates it), before any vet runs: a
		// snapshot recorded under the same model warm-starts the cache.
		if err := checker.AttachPersist(scfg.PersistDir); err != nil {
			return err
		}
		defer checker.ClosePersist()
		if ps := checker.PersistStats(); ps.Restored > 0 || ps.Skipped > 0 {
			fmt.Printf("warm-started verdict cache from %s: %d restored, %d skipped\n",
				scfg.PersistDir, ps.Restored, ps.Skipped)
		}
	}
	if scfg.Trace {
		var mu sync.Mutex
		checker.Obs().AddSink(apichecker.ObsSinkFunc(func(ev apichecker.ObsEvent) {
			if ev.Kind != apichecker.ObsSpan {
				return
			}
			mu.Lock()
			defer mu.Unlock()
			fmt.Printf("trace seq=%-5d stage=%-12s pkg=%-24s dur=%8.1fs", ev.Trace, ev.Name, ev.Package, ev.Dur.Seconds())
			if ev.Note != "" {
				fmt.Printf(" note=%s", ev.Note)
			}
			if ev.Err != nil {
				fmt.Printf(" err=%q", ev.Err)
			}
			fmt.Println()
		}))
	}

	svc, err := apichecker.OpenVetService(checker, scfg.ServiceConfig())
	if err != nil {
		return fmt.Errorf("tmarket: opening vet service: %w", err)
	}
	defer svc.Close()
	if scfg.QueueDir != "" {
		m := svc.Metrics()
		fmt.Printf("durable intake journal at %s", scfg.QueueDir)
		if m.Replayed > 0 {
			fmt.Printf(" (replayed %d unsettled submissions)", m.Replayed)
		}
		fmt.Println()
	}

	if scfg.Listen != "" {
		return serveGateway(svc, scfg)
	}

	// Corpora are generated over the serving checker's universe so a
	// cold-started model vets programs from the framework it was trained
	// against (the registry replays the universe bit-identically).
	batch, err := apichecker.NewCorpus(checker.Universe(), monthly, seed+101)
	if err != nil {
		return err
	}
	if dup < 1 {
		dup = 1
	}
	subs := make([]apichecker.Submission, 0, batch.Len()*dup)
	for r := 0; r < dup; r++ {
		for i := 0; i < batch.Len(); i++ {
			subs = append(subs, apichecker.Submission{Program: batch.Program(i)})
		}
	}

	// With evolve, retrain in the background while the batch is being
	// vetted: promotion hot-swaps the serving model mid-stream.
	var evolveDone chan *apichecker.EvolveResult
	if scfg.Evolve {
		refreshed, err := apichecker.NewCorpus(checker.Universe(), initial+monthly, seed+202)
		if err != nil {
			return err
		}
		evolveDone = make(chan *apichecker.EvolveResult, 1)
		runner := apichecker.StartEvolveRunner(mgr, apichecker.EvolveRunnerConfig{
			Corpus: func(context.Context) (*apichecker.Corpus, error) { return refreshed, nil },
			OnResult: func(res *apichecker.EvolveResult, err error) {
				if err != nil {
					fmt.Fprintln(os.Stderr, "tmarket: evolution round:", err)
				}
				evolveDone <- res
			},
		})
		defer runner.Stop()
		runner.Trigger()
		fmt.Printf("background evolution started on %d refreshed apps\n", refreshed.Len())
	}

	start := time.Now()
	verdicts, err := svc.VetBatch(context.Background(), subs)
	if err != nil {
		return err
	}

	if evolveDone != nil {
		res := <-evolveDone
		if res != nil {
			if res.Promoted {
				fmt.Printf("evolution promoted generation %d (%s): challenger F1 %.3f vs champion %.3f on %d held-out apps\n",
					res.Generation.ID, shortDigest(res.Digest),
					res.Shadow.Challenger.F1, res.Shadow.Champion.F1, res.Shadow.Holdout)
			} else {
				fmt.Printf("evolution rejected the challenger: %s\n", res.Shadow.Reason)
			}
		}
	}
	flagged := 0
	for _, v := range verdicts {
		if v.Malicious {
			flagged++
		}
	}

	m := svc.Metrics()
	cfg := svc.Config()
	fmt.Printf("\nvetted %d submissions in %s (%d lanes, queue %d)\n",
		m.Completed, time.Since(start).Round(time.Millisecond), cfg.Workers, cfg.QueueSize)
	fmt.Printf("  flagged malicious: %d\n", flagged)
	fmt.Printf("  timeouts %d, canceled %d, failed %d\n", m.Timeouts, m.Canceled, m.Failed)
	fmt.Printf("  queue: %d acked, %d reclaims, %d replayed, %d dead-lettered; lease age p95 %.2fs\n",
		m.QueueAcked, m.Reclaims, m.Replayed, m.DeadLettered, m.LeaseAge.P95)
	fmt.Printf("  reliability: %d crashes across %d submissions, %d fallback re-runs\n",
		m.Crashes, m.CrashedSubmissions, m.Fallbacks)
	engines := make([]string, 0, len(m.EngineRuns))
	for engine := range m.EngineRuns {
		engines = append(engines, engine)
	}
	sort.Strings(engines)
	for _, engine := range engines {
		fmt.Printf("  engine %-22s %4d final runs\n", engine, m.EngineRuns[engine])
	}
	fmt.Printf("  verdict cache: %d hits, %d misses, %d coalesced, %d bypassed\n",
		m.CacheHits, m.CacheMisses, m.CacheCoalesced, m.CacheBypass)
	fmt.Printf("  cache memory: %d live entries, %s of flat entries; process heap %s\n",
		m.CacheEntries, fmtBytes(uint64(m.CacheLiveBytes)), fmtBytes(m.HeapLiveBytes))
	if m.Persist.Enabled {
		fmt.Printf("  persist tier: %d warm-start hits, %d misses; %d appends (%d failed), %d compactions (%d failed), %d resets\n",
			m.Persist.Restored, m.Persist.Skipped, m.Persist.Appends, m.Persist.AppendErrors,
			m.Persist.Compactions, m.Persist.CompactErrors, m.Persist.Resets)
	}
	if m.Tier1 > 0 {
		fmt.Printf("  tier mix: %d tier-1 (static triage, mean %.0fµs), %d tier-2 (emulated, mean %.1fs)\n",
			m.Tier1, m.Tier1Scan.Mean*1e6, m.Tier2, m.Tier2Scan.Mean)
		if m.ScanMean > 0 && m.Tier2Scan.Mean > m.ScanMean {
			fmt.Printf("  triage saves %.1fx on mean virtual scan cost (%.2fs vs %.1fs all-emulated)\n",
				m.Tier2Scan.Mean/m.ScanMean, m.ScanMean, m.Tier2Scan.Mean)
		}
	}
	if m.MissScan.Count > 0 {
		fmt.Printf("  emulated scans   (n=%4d): mean %.1fs  p50 %.1fs  p95 %.1fs  p99 %.1fs\n",
			m.MissScan.Count, m.MissScan.Mean, m.MissScan.P50, m.MissScan.P95, m.MissScan.P99)
	}
	if m.HitScan.Count > 0 {
		fmt.Printf("  cache-served     (n=%4d): mean %.1fs  p50 %.1fs  p95 %.1fs  p99 %.1fs (virtual cost, served instantly)\n",
			m.HitScan.Count, m.HitScan.Mean, m.HitScan.P50, m.HitScan.P95, m.HitScan.P99)
	}
	fmt.Printf("  scan latency (virtual): mean %.1fs  p50 %.1fs  p95 %.1fs  p99 %.1fs\n",
		m.ScanMean, m.ScanP50, m.ScanP95, m.ScanP99)
	fmt.Printf("  model: generation %d", m.ModelGeneration)
	if m.ModelDigest != "" {
		fmt.Printf(" (%s)", shortDigest(m.ModelDigest))
	}
	fmt.Printf(", %d hot-swaps\n", m.ModelSwaps)
	if mgr != nil {
		st := mgr.State()
		if !st.LastPromotion.IsZero() {
			fmt.Printf("  last promotion: %s\n", st.LastPromotion.Format(time.RFC3339))
		}
		if sh := st.LastShadow; sh != nil {
			fmt.Printf("  last shadow eval: challenger F1 %.3f / AUC %.3f, champion F1 %.3f / AUC %.3f (n=%d)\n",
				sh.Challenger.F1, sh.Challenger.AUC, sh.Champion.F1, sh.Champion.AUC, sh.Holdout)
		}
	}
	if scfg.Trace {
		fmt.Printf("\n  pipeline stages (virtual seconds):\n")
		fmt.Printf("  %-14s %6s %6s %9s %9s %9s %9s\n",
			"stage", "count", "errors", "mean", "p50", "p95", "p99")
		for _, st := range checker.StageStats() {
			fmt.Printf("  %-14s %6d %6d %9.3f %9.3f %9.3f %9.3f\n",
				st.Stage, st.Count, st.Errors, st.Dur.Mean, st.Dur.P50, st.Dur.P95, st.Dur.P99)
		}
	}
	return nil
}

// serveGateway is the -serve -listen path: expose the vetting service
// over HTTP and block until SIGINT/SIGTERM, then drain gracefully —
// admissions stop (503), in-flight submissions get DrainTimeout to
// finish, the persist log flushes, and the listener closes. With
// Cluster, the gateway also mounts the vet-cluster coordinator so
// remote vetworker nodes do the vetting.
func serveGateway(svc *apichecker.VetService, scfg apichecker.ServeConfig) error {
	gcfg := scfg.GatewayConfig()
	if scfg.Cluster {
		ccfg := apichecker.ClusterCoordinatorConfig{}
		if scfg.ModelDir != "" {
			reg, err := apichecker.OpenModelRegistry(scfg.ModelDir)
			if err != nil {
				return err
			}
			ccfg.Registry = reg
		}
		gcfg.Cluster = apichecker.NewClusterCoordinator(svc, ccfg)
		fmt.Println("cluster coordinator on: local lanes off, vetting via remote vetworker nodes")
	}
	gw := apichecker.NewGateway(svc, gcfg)
	serveErr := make(chan error, 1)
	go func() {
		err := gw.ListenAndServe(scfg.Listen)
		if errors.Is(err, http.ErrServerClosed) {
			err = nil
		}
		serveErr <- err
	}()
	// Give the listener a beat to bind so the printed address is real.
	for i := 0; i < 100 && gw.Addr() == ""; i++ {
		select {
		case err := <-serveErr:
			return fmt.Errorf("tmarket: gateway listen on %s: %w", scfg.Listen, err)
		case <-time.After(10 * time.Millisecond):
		}
	}
	fmt.Printf("gateway listening on http://%s (POST /v1/submissions, /metrics, /healthz)\n", gw.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("received %s; draining (budget %s)\n", s, scfg.EffectiveDrainTimeout())
	case err := <-serveErr:
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), scfg.EffectiveDrainTimeout())
	defer cancel()
	if err := gw.Shutdown(ctx); err != nil {
		return fmt.Errorf("tmarket: gateway shutdown: %w", err)
	}
	m := svc.Metrics()
	fmt.Printf("drained: %d completed, %d timeouts, %d drained, %d canceled, %d failed\n",
		m.Completed, m.Timeouts, m.Drained, m.Canceled, m.Failed)
	return <-serveErr
}

// trainChecker trains a fresh serving checker on an initial corpus.
func trainChecker(u *apichecker.Universe, seed int64, initial, vcap int, band triageBand) (*apichecker.Checker, *apichecker.TrainReport, error) {
	training, err := apichecker.NewCorpus(u, initial, seed)
	if err != nil {
		return nil, nil, err
	}
	ccfg := apichecker.DefaultConfig()
	ccfg.VerdictCache = vcap
	if band.Set {
		ccfg.TriageLo, ccfg.TriageHi = band.Lo, band.Hi
	}
	return apichecker.Train(training, ccfg)
}

// fmtBytes renders a byte count with a binary-unit suffix.
func fmtBytes(n uint64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}

// shortDigest abbreviates a registry digest for display.
func shortDigest(d string) string {
	if len(d) > 12 {
		return d[:12]
	}
	return d
}

func minKeys(rep *apichecker.YearReport) int {
	v := rep.Months[0].KeyAPIs
	for _, m := range rep.Months {
		if m.KeyAPIs < v {
			v = m.KeyAPIs
		}
	}
	return v
}

func maxKeys(rep *apichecker.YearReport) int {
	v := rep.Months[0].KeyAPIs
	for _, m := range rep.Months {
		if m.KeyAPIs > v {
			v = m.KeyAPIs
		}
	}
	return v
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "tmarket:", err)
	os.Exit(1)
}
