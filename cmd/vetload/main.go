// Command vetload is a wrk-style concurrent load harness for the HTTP
// gateway: it drives real APK uploads over real sockets and reports
// throughput and wall-clock latency quantiles — the serving-path numbers
// the in-process benchmarks cannot see (HTTP parsing, JSON encoding,
// socket scheduling).
//
// Two modes:
//
//	vetload -n 400 -c 16                  # self-serve: train, listen on loopback, load
//	vetload -addr host:port -n 400 -c 16  # drive an already-running gateway
//
// Self-serve mode trains a small checker, starts the vetting service and
// gateway on a loopback listener, and then loads it — one command for CI.
// Each request POSTs one APK with ?wait= so the response carries the
// verdict; 429 backpressure answers are retried after the server's
// Retry-After hint and counted. With -json, a summary row is folded into
// the given benchmark-artifact file (BENCH_serving.json shape: one
// top-level key per scenario).
package main

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"apichecker"
)

func main() {
	var (
		addr    = flag.String("addr", "", "gateway address (host:port); empty = self-serve on loopback")
		n       = flag.Int("n", 400, "total submissions to drive")
		c       = flag.Int("c", 16, "concurrent clients")
		apps    = flag.Int("apps", 0, "distinct apps in the workload (0 = n/4, duplicates exercise the verdict cache)")
		wait    = flag.Duration("wait", 2*time.Minute, "per-request ?wait= verdict budget")
		apis    = flag.Int("universe-apis", 6000, "self-serve universe size")
		train   = flag.Int("train-apps", 900, "self-serve training-corpus size")
		seed    = flag.Int64("seed", 7, "workload seed")
		workers = flag.Int("workers", 8, "self-serve service lanes")
		queue   = flag.Int("queue", 0, "self-serve service queue depth (0 = 4x workers)")
		qdir    = flag.String("queue-dir", "", "self-serve durable intake journal directory (replays unsettled submissions on restart)")
		jsonOut = flag.String("json", "", "fold a summary row into this benchmark JSON file")
		tband   = flag.String("triage-band", "", `self-serve triage band "lo,hi": confident submissions short-circuit at tier 1 without emulation`)
	)
	flag.Parse()
	if *apps <= 0 {
		*apps = max(1, *n/4)
	}
	var bandLo, bandHi float64
	if *tband != "" {
		if _, err := fmt.Sscanf(*tband, "%f,%f", &bandLo, &bandHi); err != nil {
			fail(fmt.Errorf(`-triage-band %q: want "lo,hi" (e.g. 0.05,0.95)`, *tband))
		}
	}

	u, err := apichecker.NewUniverse(*apis, *seed)
	if err != nil {
		fail(err)
	}
	target := *addr
	var shutdown func()
	if target == "" {
		target, shutdown, err = selfServe(u, *seed, *train, *workers, *queue, *qdir, bandLo, bandHi)
		if err != nil {
			fail(err)
		}
		defer shutdown()
		fmt.Printf("self-serve gateway on %s (%d lanes)\n", target, *workers)
	}

	// Build the APK payloads up front so the measured loop is pure
	// serving-path work.
	batch, err := apichecker.NewCorpus(u, *apps, *seed+11)
	if err != nil {
		fail(err)
	}
	payloads := make([][]byte, batch.Len())
	for i := 0; i < batch.Len(); i++ {
		payloads[i], err = apichecker.BuildAPK(batch.Program(i), u)
		if err != nil {
			fail(err)
		}
	}
	fmt.Printf("driving %d submissions (%d distinct apps) with %d clients\n", *n, *apps, *c)

	res := drive(target, payloads, *n, *c, *wait)
	fmt.Printf("\n%d ok, %d failed, %d backpressure retries in %s\n",
		res.OK, res.Failed, res.Retries429, time.Duration(res.WallNanos).Round(time.Millisecond))
	fmt.Printf("throughput: %.1f submissions/s\n", res.Throughput)
	fmt.Printf("latency: p50 %.1fms  p95 %.1fms  p99 %.1fms\n",
		res.P50Millis, res.P95Millis, res.P99Millis)
	fmt.Printf("verdicts: %d malicious, %d cache-served\n", res.Malicious, res.CacheServed)
	fmt.Printf("verdict fingerprint: %.16s (%d distinct, %d conflicts)\n",
		res.VerdictFingerprint, *apps, res.VerdictConflicts)
	if res.Tier1 > 0 {
		fmt.Printf("tier mix: %d tier-1 (static triage), %d tier-2 (emulated)\n", res.Tier1, res.Tier2)
	}

	if *jsonOut != "" {
		if err := foldJSON(*jsonOut, res); err != nil {
			fail(err)
		}
		fmt.Printf("folded row %q into %s\n", "vetload", *jsonOut)
	}
	if res.Failed > 0 {
		os.Exit(1)
	}
}

// result is the summary row folded into the benchmark artifact.
type result struct {
	Submissions int     `json:"submissions"`
	Clients     int     `json:"clients"`
	OK          int64   `json:"ok"`
	Failed      int64   `json:"failed"`
	Retries429  int64   `json:"retries_429"`
	WallNanos   int64   `json:"wall_ns"`
	Throughput  float64 `json:"throughput_per_s"`
	P50Millis   float64 `json:"p50_ms"`
	P95Millis   float64 `json:"p95_ms"`
	P99Millis   float64 `json:"p99_ms"`
	Malicious   int64   `json:"malicious"`
	CacheServed int64   `json:"cache_served"`
	Tier1       int64   `json:"tier1"`
	Tier2       int64   `json:"tier2"`

	// VerdictFingerprint is an order-independent digest of the verdict
	// set: sha256 over the sorted unique "md5:sha256(verdictJSON)" lines.
	// Two runs over the same workload and model — serial, concurrent, or
	// spread across a vet cluster — must produce the same fingerprint;
	// CI compares it against a serial baseline to prove bit-identity.
	VerdictFingerprint string `json:"verdict_fingerprint"`
	// VerdictConflicts counts submissions whose verdict differed from an
	// earlier verdict for the same content — always 0 when the serving
	// side is deterministic.
	VerdictConflicts int64 `json:"verdict_conflicts"`
}

// drive runs the concurrent load loop against the gateway at addr.
func drive(addr string, payloads [][]byte, n, clients int, wait time.Duration) result {
	url := "http://" + addr + "/v1/submissions?wait=" + wait.String()
	var (
		next      atomic.Int64
		ok        atomic.Int64
		failed    atomic.Int64
		retries   atomic.Int64
		malicious atomic.Int64
		served    atomic.Int64
		tier1     atomic.Int64
		tier2     atomic.Int64
		mu        sync.Mutex
		lats      []float64
		fps       = map[string]string{}
		conflicts int64
	)
	client := &http.Client{Timeout: wait + 30*time.Second}
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				lat, st, err := submitOne(client, url, payloads[i%len(payloads)], &retries)
				if err != nil || st.Status != "done" {
					failed.Add(1)
					if err != nil {
						fmt.Fprintln(os.Stderr, "vetload:", err)
					} else {
						fmt.Fprintf(os.Stderr, "vetload: submission %s: status %s (%s)\n", st.ID, st.Status, st.Error)
					}
					continue
				}
				ok.Add(1)
				if st.Verdict != nil && st.Verdict.Malicious {
					malicious.Add(1)
				}
				if st.Verdict != nil {
					if st.Verdict.Tier == 1 {
						tier1.Add(1)
					} else {
						tier2.Add(1)
					}
				}
				if st.Outcome == "hit" || st.Outcome == "coalesced" {
					served.Add(1)
				}
				mu.Lock()
				lats = append(lats, lat.Seconds()*1000)
				if st.Verdict != nil {
					vj, _ := json.Marshal(st.Verdict)
					h := fmt.Sprintf("%x", sha256.Sum256(vj))
					if prev, seen := fps[st.Verdict.MD5]; seen && prev != h {
						conflicts++
					} else {
						fps[st.Verdict.MD5] = h
					}
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	// Fold the per-content verdict hashes into one order-independent
	// fingerprint.
	lines := make([]string, 0, len(fps))
	for md5, h := range fps {
		lines = append(lines, md5+":"+h)
	}
	sort.Strings(lines)
	fph := sha256.New()
	for _, l := range lines {
		fph.Write([]byte(l))
		fph.Write([]byte{'\n'})
	}

	sort.Float64s(lats)
	q := func(p float64) float64 {
		if len(lats) == 0 {
			return 0
		}
		idx := int(p*float64(len(lats))+0.5) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(lats) {
			idx = len(lats) - 1
		}
		return lats[idx]
	}
	return result{
		Submissions: n,
		Clients:     clients,
		OK:          ok.Load(),
		Failed:      failed.Load(),
		Retries429:  retries.Load(),
		WallNanos:   int64(wall),
		Throughput:  float64(ok.Load()) / wall.Seconds(),
		P50Millis:   q(0.50),
		P95Millis:   q(0.95),
		P99Millis:   q(0.99),
		Malicious:   malicious.Load(),
		CacheServed: served.Load(),
		Tier1:       tier1.Load(),
		Tier2:       tier2.Load(),

		VerdictFingerprint: fmt.Sprintf("%x", fph.Sum(nil)),
		VerdictConflicts:   conflicts,
	}
}

// submitOne POSTs one APK and decodes the submission resource, retrying
// 429 backpressure answers per Retry-After.
func submitOne(client *http.Client, url string, apk []byte, retries *atomic.Int64) (time.Duration, apichecker.SubmissionStatus, error) {
	start := time.Now()
	for {
		resp, err := client.Post(url, "application/vnd.android.package-archive", bytes.NewReader(apk))
		if err != nil {
			return 0, apichecker.SubmissionStatus{}, err
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return 0, apichecker.SubmissionStatus{}, err
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			retries.Add(1)
			backoff := time.Second
			if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && ra > 0 {
				backoff = time.Duration(ra) * time.Second
			}
			time.Sleep(backoff)
			continue
		}
		var st apichecker.SubmissionStatus
		if err := json.Unmarshal(body, &st); err != nil {
			return 0, st, fmt.Errorf("decode %s response (%d): %w", url, resp.StatusCode, err)
		}
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
			return 0, st, fmt.Errorf("submission rejected: %d %s", resp.StatusCode, st.Error)
		}
		return time.Since(start), st, nil
	}
}

// selfServe trains a checker and brings up a loopback gateway over it.
func selfServe(u *apichecker.Universe, seed int64, train, workers, queue int, queueDir string, bandLo, bandHi float64) (addr string, shutdown func(), err error) {
	corpus, err := apichecker.NewCorpus(u, train, seed)
	if err != nil {
		return "", nil, err
	}
	ccfg := apichecker.DefaultConfig()
	ccfg.TriageLo, ccfg.TriageHi = bandLo, bandHi
	checker, _, err := apichecker.Train(corpus, ccfg)
	if err != nil {
		return "", nil, err
	}
	scfg := apichecker.DefaultServeConfig()
	scfg.Workers = workers
	scfg.Queue = queue
	scfg.QueueDir = queueDir
	svc, err := apichecker.OpenVetService(checker, scfg.ServiceConfig())
	if err != nil {
		return "", nil, err
	}
	gw := apichecker.NewGateway(svc, scfg.GatewayConfig())
	serveErr := make(chan error, 1)
	go func() { serveErr <- gw.ListenAndServe("127.0.0.1:0") }()
	for i := 0; i < 200 && gw.Addr() == ""; i++ {
		select {
		case err := <-serveErr:
			return "", nil, err
		default:
			time.Sleep(5 * time.Millisecond)
		}
	}
	if gw.Addr() == "" {
		return "", nil, fmt.Errorf("gateway did not start listening")
	}
	return gw.Addr(), func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		gw.Shutdown(ctx)
	}, nil
}

// foldJSON merges the summary row into the benchmark artifact file,
// preserving any rows other tools wrote.
func foldJSON(path string, res result) error {
	rows := map[string]json.RawMessage{}
	if data, err := os.ReadFile(path); err == nil && len(data) > 0 {
		if err := json.Unmarshal(data, &rows); err != nil {
			return fmt.Errorf("existing %s is not a JSON object: %w", path, err)
		}
	}
	row, err := json.Marshal(res)
	if err != nil {
		return err
	}
	rows["vetload"] = row
	out, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "vetload:", err)
	os.Exit(1)
}
