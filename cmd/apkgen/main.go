// Command apkgen generates a labelled corpus of synthetic APK files.
//
// Usage:
//
//	apkgen -out ./corpus -n 50 -universe-apis 10000 -seed 1
//
// It writes <package>-<version>.apk archives plus labels.csv with the
// ground truth. The universe parameters must match the apichecker command
// vetting these APKs (both sides resolve API/permission/intent names
// against the same generated framework).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"apichecker"
)

func main() {
	var (
		out  = flag.String("out", "corpus", "output directory")
		n    = flag.Int("n", 20, "number of apps to generate")
		apis = flag.Int("universe-apis", 10000, "framework universe size")
		seed = flag.Int64("seed", 1, "global random seed")
	)
	flag.Parse()

	u, err := apichecker.NewUniverse(*apis, *seed)
	if err != nil {
		fail(err)
	}
	corpus, err := apichecker.NewCorpus(u, *n, *seed+1)
	if err != nil {
		fail(err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fail(err)
	}
	labels, err := os.Create(filepath.Join(*out, "labels.csv"))
	if err != nil {
		fail(err)
	}
	defer labels.Close()
	fmt.Fprintln(labels, "file,package,version,label,family_or_category")

	for i := 0; i < corpus.Len(); i++ {
		p := corpus.Program(i)
		data, err := apichecker.BuildAPK(p, u)
		if err != nil {
			fail(err)
		}
		name := fmt.Sprintf("%s-%d.apk", p.PackageName, p.Version)
		if err := os.WriteFile(filepath.Join(*out, name), data, 0o644); err != nil {
			fail(err)
		}
		app := corpus.Apps[i]
		detail := app.Spec.Category.String()
		if app.Label == apichecker.Malicious {
			detail = app.Spec.Family.String()
		}
		fmt.Fprintf(labels, "%s,%s,%d,%s,%s\n", name, p.PackageName, p.Version, app.Label, detail)
	}
	fmt.Printf("wrote %d APKs + labels.csv to %s (universe: %d APIs, seed %d)\n",
		corpus.Len(), *out, *apis, *seed)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "apkgen:", err)
	os.Exit(1)
}
