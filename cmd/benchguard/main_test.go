package main

import (
	"strings"
	"testing"
)

func jsonStream(outputs ...string) string {
	var b strings.Builder
	for _, o := range outputs {
		b.WriteString(`{"Action":"output","Package":"p","Output":"` + o + `\n"}` + "\n")
	}
	return b.String()
}

func TestParseAllocsJSONStream(t *testing.T) {
	in := jsonStream(
		"BenchmarkServiceThroughputDuplicates-8",
		"    1000   52341 ns/op   1024 B/op   12 allocs/op",
	)
	got, err := parseAllocs(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := got.lookup("BenchmarkServiceThroughputDuplicates"); !ok || v != 12 {
		t.Fatalf("suffix-stripped lookup = %v, %v; want 12, true", v, ok)
	}
	if v, ok := got.lookup("BenchmarkServiceThroughputDuplicates-8"); !ok || v != 12 {
		t.Fatalf("exact lookup = %v, %v; want 12, true", v, ok)
	}
}

func TestParseAllocsInterleavedOutput(t *testing.T) {
	// A log print (or GC note) lands between the benchmark's name line and
	// its result line — the shape -json streams produce when the benchmark
	// body writes to stderr. The result must still attach to the name.
	in := jsonStream(
		"BenchmarkServiceThroughput-8",
		"vetsvc: cache warmed, 4096 entries",
		"    500  104682 ns/op   2048 B/op   24 allocs/op",
	)
	got, err := parseAllocs(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := got.lookup("BenchmarkServiceThroughput"); !ok || v != 24 {
		t.Fatalf("interleaved output orphaned the result: got %v, %v", v, ok)
	}
}

func TestParseAllocsNumericTailedSubBenchmark(t *testing.T) {
	// Run with GOMAXPROCS=1: go test appends no -cpu suffix, and the
	// sub-benchmark path legitimately ends in a number. The exact name
	// must stay addressable, not be renamed to .../batch.
	in := "BenchmarkVet/batch-64     200  900 ns/op  3 allocs/op\n"
	got, err := parseAllocs(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := got.lookup("BenchmarkVet/batch-64"); !ok || v != 3 {
		t.Fatalf("exact numeric-tailed name lost: got %v, %v", v, ok)
	}
}

func TestParseAllocsPlainText(t *testing.T) {
	in := "BenchmarkFoo-16    1000  100 ns/op  7 allocs/op\nok   pkg 1.2s\n"
	got, err := parseAllocs(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := got.lookup("BenchmarkFoo"); !ok || v != 7 {
		t.Fatalf("plain-text parse: got %v, %v", v, ok)
	}
}
