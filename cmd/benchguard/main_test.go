package main

import (
	"strings"
	"testing"
)

func jsonStream(outputs ...string) string {
	var b strings.Builder
	for _, o := range outputs {
		b.WriteString(`{"Action":"output","Package":"p","Output":"` + o + `\n"}` + "\n")
	}
	return b.String()
}

func TestParseAllocsJSONStream(t *testing.T) {
	in := jsonStream(
		"BenchmarkServiceThroughputDuplicates-8",
		"    1000   52341 ns/op   1024 B/op   12 allocs/op",
	)
	got, err := parseAllocs(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := got.lookup("BenchmarkServiceThroughputDuplicates"); !ok || v != 12 {
		t.Fatalf("suffix-stripped lookup = %v, %v; want 12, true", v, ok)
	}
	if v, ok := got.lookup("BenchmarkServiceThroughputDuplicates-8"); !ok || v != 12 {
		t.Fatalf("exact lookup = %v, %v; want 12, true", v, ok)
	}
}

func TestParseAllocsInterleavedOutput(t *testing.T) {
	// A log print (or GC note) lands between the benchmark's name line and
	// its result line — the shape -json streams produce when the benchmark
	// body writes to stderr. The result must still attach to the name.
	in := jsonStream(
		"BenchmarkServiceThroughput-8",
		"vetsvc: cache warmed, 4096 entries",
		"    500  104682 ns/op   2048 B/op   24 allocs/op",
	)
	got, err := parseAllocs(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := got.lookup("BenchmarkServiceThroughput"); !ok || v != 24 {
		t.Fatalf("interleaved output orphaned the result: got %v, %v", v, ok)
	}
}

func TestParseAllocsNumericTailedSubBenchmark(t *testing.T) {
	// Run with GOMAXPROCS=1: go test appends no -cpu suffix, and the
	// sub-benchmark path legitimately ends in a number. The exact name
	// must stay addressable, not be renamed to .../batch.
	in := "BenchmarkVet/batch-64     200  900 ns/op  3 allocs/op\n"
	got, err := parseAllocs(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := got.lookup("BenchmarkVet/batch-64"); !ok || v != 3 {
		t.Fatalf("exact numeric-tailed name lost: got %v, %v", v, ok)
	}
}

func TestParseAllocsPlainText(t *testing.T) {
	in := "BenchmarkFoo-16    1000  100 ns/op  7 allocs/op\nok   pkg 1.2s\n"
	got, err := parseAllocs(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := got.lookup("BenchmarkFoo"); !ok || v != 7 {
		t.Fatalf("plain-text parse: got %v, %v", v, ok)
	}
}

func TestParseInputSummaryArtifact(t *testing.T) {
	// The vetload summary-artifact shape flattens to dotted rows; string
	// fields are skipped, numeric ones (including floats) kept.
	in := `{
  "vetload": {
    "submissions": 120,
    "failed": 0,
    "throughput_per_s": 812.5,
    "tier1": 96,
    "note": "not a number"
  }
}`
	got := measurements{exact: map[string]float64{}, trimmed: map[string]float64{}}
	if err := parseInput(strings.NewReader(in), got); err != nil {
		t.Fatal(err)
	}
	for name, want := range map[string]float64{
		"vetload.submissions":      120,
		"vetload.failed":           0,
		"vetload.throughput_per_s": 812.5,
		"vetload.tier1":            96,
	} {
		if v, ok := got.lookup(name); !ok || v != want {
			t.Errorf("lookup(%q) = %v, %v; want %v, true", name, v, ok, want)
		}
	}
	if _, ok := got.lookup("vetload.note"); ok {
		t.Error("non-numeric summary field surfaced as a measurement")
	}
}

func TestParseInputMergesFormats(t *testing.T) {
	// One measurement set accumulates across a -json bench stream and a
	// summary artifact — the multi-file CI invocation.
	got := measurements{exact: map[string]float64{}, trimmed: map[string]float64{}}
	bench := jsonStream(
		"BenchmarkServiceThroughputTiered-8",
		"    1   1000 ns/op   42 allocs/op",
	)
	if err := parseInput(strings.NewReader(bench), got); err != nil {
		t.Fatal(err)
	}
	if err := parseInput(strings.NewReader(`{"vetload": {"failed": 0}}`), got); err != nil {
		t.Fatal(err)
	}
	if v, ok := got.lookup("BenchmarkServiceThroughputTiered"); !ok || v != 42 {
		t.Fatalf("bench row lost in merge: %v, %v", v, ok)
	}
	if v, ok := got.lookup("vetload.failed"); !ok || v != 0 {
		t.Fatalf("summary row lost in merge: %v, %v", v, ok)
	}
}

func TestParseInputStreamNotMistakenForSummary(t *testing.T) {
	// A go test -json stream is many top-level objects; it must fall
	// through to the benchmark parser, not flatten as a summary.
	in := jsonStream(
		"BenchmarkFoo-8",
		"    1   10 ns/op   3 allocs/op",
	)
	got := measurements{exact: map[string]float64{}, trimmed: map[string]float64{}}
	if err := parseInput(strings.NewReader(in), got); err != nil {
		t.Fatal(err)
	}
	if v, ok := got.lookup("BenchmarkFoo"); !ok || v != 3 {
		t.Fatalf("stream misparsed: %v, %v", v, ok)
	}
}
