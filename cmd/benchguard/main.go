// Command benchguard fails CI when a serving benchmark's allocs/op grows
// past a tolerated fraction of its committed baseline. It reads the same
// `go test -json -bench` stream CI already records as BENCH_serving.json
// (plain `go test -bench` text also works), so the guard adds no extra
// benchmark run.
//
// Usage:
//
//	benchguard -baseline BENCH_baseline.json [-max-growth 0.20] BENCH_serving.json [BENCH_vetload.json ...]
//
// Several input files merge into one measurement set. A file holding a
// single JSON object (the vetload summary-artifact shape: one top-level
// key per scenario, numeric fields inside) is flattened into
// "<scenario>.<field>" measurements, so a baseline can pin e.g.
// "vetload.failed": 0 next to the allocs/op rows.
//
// The baseline maps benchmark names (sub-benchmark paths) to allocs/op.
// A baseline key matches either the name exactly as the run printed it or
// the name with its -GOMAXPROCS suffix stripped — record baselines without
// the suffix so they are host-shape independent; the exact form exists so
// a sub-benchmark whose path legitimately ends in -<number> (e.g.
// .../batch-64) can still be pinned unambiguously. Every benchmark listed
// in the baseline must appear in the input; benchmarks absent from the
// baseline are ignored, so adding a benchmark does not break the guard
// until a baseline is recorded for it. Shrinking allocs/op never fails —
// refresh the baseline to ratchet the bound down.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

func main() {
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "committed allocs/op baseline (JSON: benchmark name -> allocs/op)")
	maxGrowth := flag.Float64("max-growth", 0.20, "tolerated fractional allocs/op growth over baseline")
	flag.Parse()

	baseline, err := readBaseline(*baselinePath)
	if err != nil {
		fatal(err)
	}

	got := measurements{exact: map[string]float64{}, trimmed: map[string]float64{}}
	if flag.NArg() == 0 {
		if err := parseInput(os.Stdin, got); err != nil {
			fatal(err)
		}
	}
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		err = parseInput(f, got)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
	}

	failed := false
	for name, base := range baseline {
		allocs, ok := got.lookup(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "benchguard: FAIL %s: in baseline but missing from benchmark output\n", name)
			failed = true
			continue
		}
		limit := base * (1 + *maxGrowth)
		verdict := "ok  "
		if allocs > limit {
			verdict = "FAIL"
			failed = true
		}
		fmt.Printf("benchguard: %s %s: %.0f (baseline %.0f, limit %.0f)\n",
			verdict, name, allocs, base, limit)
	}
	if failed {
		fmt.Fprintln(os.Stderr, "benchguard: allocs/op regression — fix the allocation, or re-record BENCH_baseline.json if the growth is intended")
		os.Exit(1)
	}
}

func readBaseline(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	m := map[string]float64{}
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(m) == 0 {
		return nil, fmt.Errorf("%s: empty baseline", path)
	}
	return m, nil
}

// measurements holds benchmark-name -> allocs/op under two key forms: the
// name exactly as the run printed it, and with a trailing -<number>
// stripped (the -GOMAXPROCS suffix). Stripping is a heuristic — a
// sub-benchmark path can legitimately end in -64 — so the exact form is
// kept authoritative and consulted first.
type measurements struct {
	exact   map[string]float64
	trimmed map[string]float64
}

func (m measurements) lookup(name string) (float64, bool) {
	if v, ok := m.exact[name]; ok {
		return v, true
	}
	v, ok := m.trimmed[name]
	return v, ok
}

func (m measurements) merge(other measurements) {
	for k, v := range other.exact {
		m.exact[k] = v
	}
	for k, v := range other.trimmed {
		m.trimmed[k] = v
	}
}

// parseInput reads one input into the measurement set, auto-detecting the
// format: a file that is a single JSON object is a summary artifact and
// flattens to "<scenario>.<field>" rows; anything else is benchmark
// output (plain text or a `go test -json` stream).
func parseInput(r io.Reader, into measurements) error {
	data, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	if rows, ok := parseSummary(data); ok {
		for name, v := range rows {
			into.exact[name] = v
		}
		return nil
	}
	got, err := parseAllocs(bytes.NewReader(data))
	if err != nil {
		return err
	}
	into.merge(got)
	return nil
}

// parseSummary flattens a summary-artifact object (scenario -> row of
// numeric fields) into dotted measurement names. A `go test -json` stream
// is many top-level objects, so whole-file unmarshalling rejects it here
// and it falls through to the benchmark parser.
func parseSummary(data []byte) (map[string]float64, bool) {
	var doc map[string]map[string]any
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	if dec.Decode(&doc) != nil || dec.More() || len(doc) == 0 {
		return nil, false
	}
	out := map[string]float64{}
	for scenario, row := range doc {
		for field, val := range row {
			num, ok := val.(json.Number)
			if !ok {
				continue
			}
			if v, err := num.Float64(); err == nil {
				out[scenario+"."+field] = v
			}
		}
	}
	return out, true
}

// parseAllocs extracts allocs/op measurements from benchmark output,
// transparently unwrapping `go test -json` event lines.
func parseAllocs(r io.Reader) (measurements, error) {
	got := measurements{exact: map[string]float64{}, trimmed: map[string]float64{}}
	// In -json streams the benchmark name and its result arrive as
	// separate output events ("BenchmarkFoo-8\n", then "  1\t... allocs/op");
	// pending carries the name across to the result line. Plain text keeps
	// both on one line, handled inline.
	pending := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "{") {
			var ev struct{ Output string }
			if json.Unmarshal([]byte(line), &ev) != nil || ev.Output == "" {
				continue
			}
			line = strings.TrimSuffix(ev.Output, "\n")
		}
		f := strings.Fields(line)
		if len(f) == 0 {
			continue
		}
		name := ""
		switch {
		case strings.HasPrefix(f[0], "Benchmark") && f[0] != "Benchmark":
			name = f[0]
			if len(f) == 1 {
				pending = name
				continue
			}
		case pending != "" && isResultLine(f):
			// Only a measurement line consumes the pending name: arbitrary
			// output interleaved between a benchmark's name line and its
			// result line (a log print, a GC note) must not eat the name
			// and orphan the result that follows.
			name, pending = pending, ""
			f = append([]string{name}, f...)
		default:
			continue
		}
		for i := 2; i+1 < len(f); i++ {
			if f[i+1] != "allocs/op" {
				continue
			}
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				return measurements{}, fmt.Errorf("bad allocs/op in %q: %w", line, err)
			}
			got.exact[name] = v
			if tn := trimCPUSuffix(name); tn != name {
				got.trimmed[tn] = v
			}
		}
	}
	return got, sc.Err()
}

// isResultLine reports whether a fields-split line carries benchmark
// measurements (the `<value> <unit>` pairs go test emits after the
// iteration count).
func isResultLine(f []string) bool {
	for _, tok := range f {
		switch tok {
		case "ns/op", "allocs/op", "B/op", "MB/s":
			return true
		}
	}
	return false
}

// trimCPUSuffix drops a trailing -<number> (the -GOMAXPROCS suffix go test
// appends to benchmark names), so baselines recorded without it are
// host-shape independent.
func trimCPUSuffix(name string) string {
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchguard:", err)
	os.Exit(1)
}
