// Command benchguard fails CI when a serving benchmark's allocs/op grows
// past a tolerated fraction of its committed baseline. It reads the same
// `go test -json -bench` stream CI already records as BENCH_serving.json
// (plain `go test -bench` text also works), so the guard adds no extra
// benchmark run.
//
// Usage:
//
//	benchguard -baseline BENCH_baseline.json [-max-growth 0.20] BENCH_serving.json
//
// The baseline maps benchmark names (sub-benchmark paths) to allocs/op.
// A baseline key matches either the name exactly as the run printed it or
// the name with its -GOMAXPROCS suffix stripped — record baselines without
// the suffix so they are host-shape independent; the exact form exists so
// a sub-benchmark whose path legitimately ends in -<number> (e.g.
// .../batch-64) can still be pinned unambiguously. Every benchmark listed
// in the baseline must appear in the input; benchmarks absent from the
// baseline are ignored, so adding a benchmark does not break the guard
// until a baseline is recorded for it. Shrinking allocs/op never fails —
// refresh the baseline to ratchet the bound down.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

func main() {
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "committed allocs/op baseline (JSON: benchmark name -> allocs/op)")
	maxGrowth := flag.Float64("max-growth", 0.20, "tolerated fractional allocs/op growth over baseline")
	flag.Parse()

	baseline, err := readBaseline(*baselinePath)
	if err != nil {
		fatal(err)
	}

	in := io.Reader(os.Stdin)
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	got, err := parseAllocs(in)
	if err != nil {
		fatal(err)
	}

	failed := false
	for name, base := range baseline {
		allocs, ok := got.lookup(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "benchguard: FAIL %s: in baseline but missing from benchmark output\n", name)
			failed = true
			continue
		}
		limit := base * (1 + *maxGrowth)
		verdict := "ok  "
		if allocs > limit {
			verdict = "FAIL"
			failed = true
		}
		fmt.Printf("benchguard: %s %s: %.0f allocs/op (baseline %.0f, limit %.0f)\n",
			verdict, name, allocs, base, limit)
	}
	if failed {
		fmt.Fprintln(os.Stderr, "benchguard: allocs/op regression — fix the allocation, or re-record BENCH_baseline.json if the growth is intended")
		os.Exit(1)
	}
}

func readBaseline(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	m := map[string]float64{}
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(m) == 0 {
		return nil, fmt.Errorf("%s: empty baseline", path)
	}
	return m, nil
}

// measurements holds benchmark-name -> allocs/op under two key forms: the
// name exactly as the run printed it, and with a trailing -<number>
// stripped (the -GOMAXPROCS suffix). Stripping is a heuristic — a
// sub-benchmark path can legitimately end in -64 — so the exact form is
// kept authoritative and consulted first.
type measurements struct {
	exact   map[string]float64
	trimmed map[string]float64
}

func (m measurements) lookup(name string) (float64, bool) {
	if v, ok := m.exact[name]; ok {
		return v, true
	}
	v, ok := m.trimmed[name]
	return v, ok
}

// parseAllocs extracts allocs/op measurements from benchmark output,
// transparently unwrapping `go test -json` event lines.
func parseAllocs(r io.Reader) (measurements, error) {
	got := measurements{exact: map[string]float64{}, trimmed: map[string]float64{}}
	// In -json streams the benchmark name and its result arrive as
	// separate output events ("BenchmarkFoo-8\n", then "  1\t... allocs/op");
	// pending carries the name across to the result line. Plain text keeps
	// both on one line, handled inline.
	pending := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "{") {
			var ev struct{ Output string }
			if json.Unmarshal([]byte(line), &ev) != nil || ev.Output == "" {
				continue
			}
			line = strings.TrimSuffix(ev.Output, "\n")
		}
		f := strings.Fields(line)
		if len(f) == 0 {
			continue
		}
		name := ""
		switch {
		case strings.HasPrefix(f[0], "Benchmark") && f[0] != "Benchmark":
			name = f[0]
			if len(f) == 1 {
				pending = name
				continue
			}
		case pending != "" && isResultLine(f):
			// Only a measurement line consumes the pending name: arbitrary
			// output interleaved between a benchmark's name line and its
			// result line (a log print, a GC note) must not eat the name
			// and orphan the result that follows.
			name, pending = pending, ""
			f = append([]string{name}, f...)
		default:
			continue
		}
		for i := 2; i+1 < len(f); i++ {
			if f[i+1] != "allocs/op" {
				continue
			}
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				return measurements{}, fmt.Errorf("bad allocs/op in %q: %w", line, err)
			}
			got.exact[name] = v
			if tn := trimCPUSuffix(name); tn != name {
				got.trimmed[tn] = v
			}
		}
	}
	return got, sc.Err()
}

// isResultLine reports whether a fields-split line carries benchmark
// measurements (the `<value> <unit>` pairs go test emits after the
// iteration count).
func isResultLine(f []string) bool {
	for _, tok := range f {
		switch tok {
		case "ns/op", "allocs/op", "B/op", "MB/s":
			return true
		}
	}
	return false
}

// trimCPUSuffix drops a trailing -<number> (the -GOMAXPROCS suffix go test
// appends to benchmark names), so baselines recorded without it are
// host-shape independent.
func trimCPUSuffix(name string) string {
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchguard:", err)
	os.Exit(1)
}
