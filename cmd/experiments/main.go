// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -exp table2            # one experiment
//	experiments -exp all               # everything
//	experiments -exp fig12 -scale medium -seed 7
//
// Scales: small (seconds), medium (default, ~minutes), paper (50K-API
// universe, the EXPERIMENTS.md record).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"apichecker/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "experiment id (table1, table2, fig1..fig16) or 'all'")
		scale = flag.String("scale", "medium", "environment scale: small | medium | paper")
		seed  = flag.Int64("seed", 1, "global random seed")
	)
	flag.Parse()

	sc, err := experiments.ScaleByName(*scale)
	if err != nil {
		fail(err)
	}
	fmt.Printf("# preparing %s-scale environment (universe %d APIs, corpus %d apps)...\n",
		sc.Name, sc.UniverseAPIs, sc.Apps)
	start := time.Now()
	env, err := experiments.NewEnv(sc, *seed)
	if err != nil {
		fail(err)
	}
	fmt.Printf("# environment ready in %s: %d key APIs selected (C=%d P=%d S=%d)\n\n",
		time.Since(start).Round(time.Millisecond), len(env.Selection.Keys),
		len(env.Selection.SetC), len(env.Selection.SetP), len(env.Selection.SetS))

	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		fmt.Printf("== %s ==\n", strings.ToUpper(id))
		t0 := time.Now()
		if err := experiments.Run(env, id, os.Stdout); err != nil {
			fail(err)
		}
		fmt.Printf("   (%s)\n\n", time.Since(t0).Round(time.Millisecond))
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
