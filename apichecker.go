// Package apichecker is a faithful, self-contained reproduction of
// APICHECKER, the market-scale ML-powered Android malware detection system
// of "Experiences of Landing Machine Learning onto Market-Scale Mobile
// Malware Detection" (EuroSys 2020).
//
// The package is the public facade over the implementation:
//
//   - a synthetic Android framework universe (~50K APIs with permissions,
//     intents, hidden APIs and a dependency graph),
//   - an APK substrate (manifest + dex + behaviour programs),
//   - a dynamic-analysis engine (emulator profiles with a calibrated
//     virtual clock, Xposed-style hooking, Monkey UI exercising),
//   - a from-scratch ML library (the nine classifiers of Table 2),
//   - the APICHECKER pipeline (key-API selection, A+P+I features, random
//     forest, monthly model evolution),
//   - a T-Market simulation (antivirus consensus, FP/FN workflows), and
//   - an experiment harness regenerating every table and figure of the
//     paper's evaluation.
//
// Quickstart:
//
//	u, _ := apichecker.NewUniverse(10000, 1)
//	corpus, _ := apichecker.NewCorpus(u, 2000, 1)
//	checker, report, _ := apichecker.Train(corpus, apichecker.DefaultConfig())
//	verdict, _ := checker.Vet(ctx, apichecker.Submission{Raw: apkBytes})
//
// For always-on operation, wrap the checker in a vetting service with
// bounded-queue backpressure, per-submission deadlines, and metrics:
//
//	svc := apichecker.NewVetService(checker, apichecker.DefaultVetServiceConfig())
//	defer svc.Close()
//	ticket, _ := svc.Submit(ctx, apichecker.Submission{Raw: apkBytes})
//	verdict, _ := ticket.Wait(ctx)
//
// For the §5.3 model-evolution loop, persist trained models to a versioned
// on-disk registry and retrain in the background with gated promotion:
//
//	reg, _ := apichecker.OpenModelRegistry(dir)
//	mgr := apichecker.NewLifecycleManager(checker, reg, apichecker.DefaultGateConfig())
//	mgr.Snapshot("initial")                  // persist the serving model
//	checker, _, _ = apichecker.ColdStart(reg) // later: restart from disk
//	res, _ := mgr.Evolve(ctx, refreshed)      // retrain, shadow-score, hot-swap
//
// See the examples/ directory for runnable scenarios and DESIGN.md for the
// system inventory.
package apichecker

import (
	"io"

	"apichecker/internal/apk"
	"apichecker/internal/behavior"
	"apichecker/internal/cluster"
	"apichecker/internal/core"
	"apichecker/internal/dataset"
	"apichecker/internal/emulator"
	"apichecker/internal/features"
	"apichecker/internal/framework"
	"apichecker/internal/gateway"
	"apichecker/internal/lifecycle"
	"apichecker/internal/market"
	"apichecker/internal/ml"
	"apichecker/internal/modelstore"
	"apichecker/internal/obs"
	"apichecker/internal/pipeline"
	"apichecker/internal/vcache"
	"apichecker/internal/vetsvc"
)

// Re-exported core types. The aliases form the supported API surface; the
// internal packages behind them are implementation detail.
type (
	// Universe is the Android framework API surface.
	Universe = framework.Universe
	// UniverseConfig controls universe generation.
	UniverseConfig = framework.Config

	// Corpus is a labelled ground-truth app population.
	Corpus = dataset.Corpus
	// CorpusConfig controls corpus generation.
	CorpusConfig = dataset.Config
	// App is one corpus entry.
	App = dataset.App

	// Program is the executable semantics of one app.
	Program = behavior.Program
	// Generator derives programs from specs.
	Generator = behavior.Generator
	// Spec identifies one app to generate.
	Spec = behavior.Spec

	// Checker is the trained vetting pipeline.
	Checker = core.Checker
	// Config is the deployment configuration.
	Config = core.Config
	// TrainReport summarizes a training round.
	TrainReport = core.TrainReport
	// Verdict is the outcome of vetting one submission.
	Verdict = core.Verdict
	// Submission is one vetting request for Checker.Vet; exactly one of
	// Raw, Parsed, or Program must be set.
	Submission = core.Submission

	// VetService is the always-on submission-vetting service: a bounded
	// queue feeding a deterministic worker pool.
	VetService = vetsvc.Service
	// VetServiceConfig tunes the service's lanes, queue, and deadlines.
	VetServiceConfig = vetsvc.Config
	// VetMetrics is a service observability snapshot.
	VetMetrics = vetsvc.Metrics
	// VetTicket tracks one async submission through the service.
	VetTicket = vetsvc.Ticket
	// VetEvent is one structured service event (see VetServiceConfig.OnEvent).
	VetEvent = vetsvc.Event

	// Gateway is the wire-facing HTTP frontend over a vetting service:
	// submission API, Prometheus /metrics, SSE trace streams, graceful
	// drain. Construct with NewGateway.
	Gateway = gateway.Server
	// GatewayConfig tunes one gateway instance.
	GatewayConfig = gateway.Config
	// ServeConfig bundles every serving-deployment knob (service sizing,
	// cache tiers, model registry, network frontend) into one struct;
	// frontends parse flags into it (see cmd/tmarket, examples/service).
	ServeConfig = gateway.ServeConfig
	// SubmissionStatus is the gateway's JSON resource for one submission.
	SubmissionStatus = gateway.SubmissionStatus

	// ClusterCoordinator turns a gateway deployment into the head of a
	// vet cluster: it mounts the workqueue's claim protocol on the
	// gateway mux so remote worker nodes claim submissions over HTTP,
	// heartbeat their leases, and report verdicts for first-wins
	// recording. Construct with NewClusterCoordinator and pass through
	// GatewayConfig.Cluster.
	ClusterCoordinator = cluster.Coordinator
	// ClusterCoordinatorConfig tunes fleet liveness, long-polling, and
	// affinity routing.
	ClusterCoordinatorConfig = cluster.CoordinatorConfig
	// ClusterWorker is one remote worker node: claim loops running the
	// full local vet pipeline against a checker cold-started from the
	// coordinator's advertised model generation. Construct with
	// StartClusterWorker.
	ClusterWorker = cluster.Worker
	// ClusterWorkerConfig tunes one worker node.
	ClusterWorkerConfig = cluster.WorkerConfig
	// ClusterWorkerStats is a node activity snapshot.
	ClusterWorkerStats = cluster.WorkerStats
	// RemoteVerdict is one node-reported vet result as the coordinator
	// recorded it (CoordinatorConfig.OnVerdict).
	RemoteVerdict = cluster.RemoteVerdict

	// APK is a parsed package.
	APK = apk.APK

	// VerdictCacheStats snapshots the checker's digest-keyed verdict
	// cache (Checker.CacheStats).
	VerdictCacheStats = vcache.Stats

	// StageStats is one vet-pipeline stage's aggregate span view: count,
	// errors, and virtual-latency quantiles (Checker.StageStats).
	StageStats = obs.StageStats
	// LatencySummary is a deterministic latency digest — mean plus
	// nearest-rank p50/p95/p99 over the virtual clock.
	LatencySummary = obs.Summary
	// ObsCollector is one observability namespace: per-stage span
	// aggregates, named counters and distributions, and a sink fan-out
	// (Checker.Obs, VetService.Obs).
	ObsCollector = obs.Collector
	// ObsEvent is one structured observability record: a pipeline stage
	// span or a service lifecycle event.
	ObsEvent = obs.Event
	// ObsKind classifies observability events (ObsSpan, ObsService).
	ObsKind = obs.Kind
	// ObsSink receives every event emitted through a collector.
	ObsSink = obs.Sink
	// ObsSinkFunc adapts a function to ObsSink.
	ObsSinkFunc = obs.SinkFunc
	// VetOutcome reports how a submission was answered: emulated
	// (VetMiss/VetBypass) or served from the verdict cache
	// (VetHit/VetCoalesced). Returned by Checker.VetOutcome.
	VetOutcome = vcache.Outcome

	// GenerationInfo identifies the model generation currently serving
	// vets (Checker.Generation); Verdict.Generation attributes each
	// verdict to the generation that produced it.
	GenerationInfo = core.GenerationInfo

	// ModelRegistry is the versioned on-disk store of model generations:
	// content-addressed artifacts plus manifests plus a current pointer.
	ModelRegistry = modelstore.Registry
	// ModelArtifact is one deterministic, self-contained model encoding.
	ModelArtifact = modelstore.Artifact
	// ModelManifest is a registry entry's provenance record.
	ModelManifest = modelstore.Manifest
	// ModelQuality is the shadow-evaluation scorecard stored with a
	// promoted generation.
	ModelQuality = modelstore.Quality

	// LifecycleManager drives snapshot, cold-start, gated evolution,
	// hot-swap promotion, and rollback over one checker and registry.
	LifecycleManager = lifecycle.Manager
	// GateConfig sets the promotion quality gates.
	GateConfig = lifecycle.GateConfig
	// ShadowReport compares challenger vs champion on the held-out slice.
	ShadowReport = lifecycle.ShadowReport
	// EvolveResult is one evolution round's outcome.
	EvolveResult = lifecycle.EvolveResult
	// LifecycleState is a manager observability snapshot.
	LifecycleState = lifecycle.State
	// EvolveRunner retrains in the background, off the serving path.
	EvolveRunner = lifecycle.Runner
	// EvolveRunnerConfig shapes the background runner.
	EvolveRunnerConfig = lifecycle.RunnerConfig

	// Market simulates T-Market's review process.
	Market = market.Market
	// MarketConfig tunes the market simulation.
	MarketConfig = market.Config
	// YearConfig drives the 12-month deployment simulation.
	YearConfig = market.YearConfig
	// YearReport is the deployment simulation outcome.
	YearReport = market.YearReport

	// Profile describes an emulation engine.
	Profile = emulator.Profile

	// Selection is a key-API selection outcome.
	Selection = features.Selection
	// FeatureMode selects the feature families (A/P/I combinations).
	FeatureMode = features.Mode

	// Confusion is a binary confusion matrix with P/R/F1 accessors.
	Confusion = ml.Confusion
)

// Label values for ground-truth classes.
const (
	Benign    = behavior.Benign
	Malicious = behavior.Malicious
)

// Family and Category classify apps in the synthetic corpus.
type (
	// Family is a malware family.
	Family = behavior.Family
	// Category is a benign app-store category.
	Category = behavior.Category
)

// Malware families.
const (
	FamilySMSFraud         = behavior.FamilySMSFraud
	FamilySpyware          = behavior.FamilySpyware
	FamilyRansomware       = behavior.FamilyRansomware
	FamilyOverlay          = behavior.FamilyOverlay
	FamilyRootExploit      = behavior.FamilyRootExploit
	FamilyUpdateAttack     = behavior.FamilyUpdateAttack
	FamilyAdFraud          = behavior.FamilyAdFraud
	FamilyReflectionEvader = behavior.FamilyReflectionEvader
	FamilyIntentEvader     = behavior.FamilyIntentEvader
	FamilyLowProfile       = behavior.FamilyLowProfile
)

// Feature combinations (Fig. 10). ModeAPI is the deployed configuration.
const (
	ModeA   = features.ModeA
	ModeP   = features.ModeP
	ModeI   = features.ModeI
	ModeAP  = features.ModeAP
	ModeAI  = features.ModeAI
	ModePI  = features.ModePI
	ModeAPI = features.ModeAPI
)

// Vet outcomes (see Checker.VetOutcome): how a submission was answered.
const (
	// VetBypass: the verdict cache was disabled or the payload carried no
	// digest; the submission paid a full emulation.
	VetBypass = vcache.OutcomeBypass
	// VetMiss: first sighting of these bytes this model generation; the
	// submission paid a full emulation and primed the cache.
	VetMiss = vcache.OutcomeMiss
	// VetHit: answered from the digest-keyed verdict cache.
	VetHit = vcache.OutcomeHit
	// VetCoalesced: deduplicated onto a concurrent identical submission's
	// in-flight emulation (singleflight).
	VetCoalesced = vcache.OutcomeCoalesced
)

// Observability event kinds.
const (
	// ObsSpan: one pipeline stage finished for one submission.
	ObsSpan = obs.KindSpan
	// ObsService: a serving-layer lifecycle event.
	ObsService = obs.KindService
)

// Vet-pipeline stage names, in chain order. StageStats entries and
// FailedVetStage report these.
const (
	StageAdmit       = pipeline.StageAdmit
	StageCacheLookup = pipeline.StageCacheLookup
	StageTriage      = pipeline.StageTriage
	StageDecode      = pipeline.StageDecode
	StageEmulate     = pipeline.StageEmulate
	StageExtract     = pipeline.StageExtract
	StageInfer       = pipeline.StageInfer
	StageCacheStore  = pipeline.StageCacheStore
)

// FailedVetStage reports which pipeline stage a vet error died in (e.g.
// StageEmulate for a deadline that expired mid-emulation), if the error
// came out of the vet pipeline.
func FailedVetStage(err error) (string, bool) { return pipeline.FailedStage(err) }

// Review outcomes of the market simulation.
const (
	Published               = market.Published
	RejectedFingerprint     = market.RejectedFingerprint
	RejectedML              = market.RejectedML
	PublishedAfterComplaint = market.PublishedAfterComplaint
	QuarantinedAfterReport  = market.QuarantinedAfterReport
)

// Emulation engine profiles (§4.2, §5.1).
var (
	GoogleEmulator      = emulator.GoogleEmulator
	LightweightEmulator = emulator.LightweightEmulator
	RealDevice          = emulator.RealDevice
)

// Typed sentinel errors of the vetting pipeline; match with errors.Is.
var (
	// ErrBadAPK: the submitted archive failed to parse.
	ErrBadAPK = apk.ErrBadAPK
	// ErrBadSubmission: the Submission payload is not exactly one of
	// Raw/Parsed/Program.
	ErrBadSubmission = core.ErrBadSubmission
	// ErrUniverseMismatch: an imported model was trained over a different
	// framework universe.
	ErrUniverseMismatch = core.ErrUniverseMismatch
	// ErrQueueFull: the vetting service's bounded queue rejected the
	// submission (explicit backpressure).
	ErrQueueFull = vetsvc.ErrQueueFull
	// ErrServiceClosed: the vetting service has shut down.
	ErrServiceClosed = vetsvc.ErrClosed
	// ErrServiceDraining: the vetting service is shutting down gracefully;
	// in-flight submissions aborted by a hard drain wrap this (the gateway
	// maps it to 503).
	ErrServiceDraining = vetsvc.ErrDraining
	// ErrSubmissionPoisoned: a submission exhausted its claim attempts
	// (repeated worker panics or expired leases) and was dead-lettered;
	// its ticket fails with an error wrapping this.
	ErrSubmissionPoisoned = vetsvc.ErrPoisoned
	// ErrRawSubmissionOnly: a coordinator-mode service (cluster
	// deployments) rejected a submission with no raw archive bytes —
	// only raw payloads can travel to remote worker nodes.
	ErrRawSubmissionOnly = vetsvc.ErrRawOnly
	// ErrDeadlineExceeded: the per-submission vet deadline expired; wraps
	// context.DeadlineExceeded.
	ErrDeadlineExceeded = core.ErrDeadlineExceeded

	// ErrGateFailed: an evolution round's challenger failed the promotion
	// quality gates; the champion keeps serving.
	ErrGateFailed = lifecycle.ErrGateFailed
	// ErrModelNotFound: the registry has no generation with that digest.
	ErrModelNotFound = modelstore.ErrNotFound
	// ErrNoCurrentModel: the registry has no current generation to
	// cold-start from.
	ErrNoCurrentModel = modelstore.ErrNoCurrent
	// ErrCorruptModel: a stored artifact or manifest failed validation.
	ErrCorruptModel = modelstore.ErrCorruptArtifact
)

// NewUniverse generates a framework universe with numAPIs APIs. Use
// PaperUniverse for the full 50K-API surface.
func NewUniverse(numAPIs int, seed int64) (*Universe, error) {
	cfg := framework.TestConfig(numAPIs)
	cfg.Seed = seed
	return framework.Generate(cfg)
}

// PaperUniverse generates the paper-scale 50K-API universe.
func PaperUniverse(seed int64) (*Universe, error) {
	cfg := framework.DefaultConfig()
	cfg.Seed = seed
	return framework.Generate(cfg)
}

// NewCorpus generates a labelled corpus of numApps apps over the universe
// with the T-Market class mix (§4.1).
func NewCorpus(u *Universe, numApps int, seed int64) (*Corpus, error) {
	cfg := dataset.DefaultConfig()
	cfg.Seed = seed
	cfg.NumApps = numApps
	return dataset.Generate(u, cfg)
}

// DefaultConfig is the production deployment configuration from the paper:
// 5K Monkey events, A+P+I features, the lightweight engine, and a random
// forest.
func DefaultConfig() Config { return core.DefaultConfig() }

// Train builds a Checker from a labelled corpus: measure API usage, select
// the key APIs (Set-C ∪ Set-P ∪ Set-S), extract A+P+I features, train the
// forest (§4, §5).
func Train(c *Corpus, cfg Config) (*Checker, *TrainReport, error) {
	return core.TrainFromCorpus(c, cfg)
}

// BuildAPK serializes a behaviour program into an APK archive.
func BuildAPK(p *Program, u *Universe) ([]byte, error) { return apk.Build(p, u) }

// ParseAPK opens an APK archive.
func ParseAPK(data []byte) (*APK, error) { return apk.Parse(data) }

// NewGenerator builds a program generator bound to a universe.
func NewGenerator(u *Universe) *Generator { return behavior.NewGenerator(u) }

// NewMarket wraps a trained checker in a simulated T-Market.
func NewMarket(ck *Checker, cfg MarketConfig) *Market { return market.New(ck, cfg) }

// DefaultMarketConfig matches the paper's review-process description.
func DefaultMarketConfig() MarketConfig { return market.DefaultConfig() }

// RunYear simulates month-by-month deployment with monthly retraining
// (§5.3, Figs. 12/14).
func RunYear(u *Universe, cfg YearConfig) (*YearReport, error) { return market.RunYear(u, cfg) }

// DefaultYearConfig returns a laptop-scale deployment year.
func DefaultYearConfig() YearConfig { return market.DefaultYearConfig() }

// NewVetService wraps a trained checker in the always-on vetting service:
// bounded-queue admission with explicit backpressure, a worker pool running
// vets under per-submission deadlines, and crash/fallback/latency metrics.
// Verdicts are bit-identical to a serial Vet loop over the same admission
// order. Close the service to drain and release its lanes.
func NewVetService(ck *Checker, cfg VetServiceConfig) *VetService {
	return vetsvc.New(ck, cfg)
}

// OpenVetService is NewVetService with the durable intake tier surfaced:
// with cfg.QueueDir set it opens the submission journal there and replays
// every submission a previous life accepted but never settled, so a
// kill-and-restart loses nothing. Journal I/O failures return an error
// instead of panicking.
func OpenVetService(ck *Checker, cfg VetServiceConfig) (*VetService, error) {
	return vetsvc.Open(ck, cfg)
}

// DefaultVetServiceConfig sizes the service for the production deployment:
// one lane per emulator slot and a 4x-deep queue.
func DefaultVetServiceConfig() VetServiceConfig { return vetsvc.DefaultConfig() }

// NewGateway fronts a vetting service with the HTTP serving surface:
// POST /v1/submissions (+ poll and blocking ?wait=), GET /metrics
// (Prometheus text exposition of every obs metric), per-submission SSE
// trace streams, and /healthz. Shut down with Gateway.Shutdown to drain
// gracefully.
func NewGateway(svc *VetService, cfg GatewayConfig) *Gateway { return gateway.New(svc, cfg) }

// DefaultServeConfig is the recommended serving deployment shape.
func DefaultServeConfig() ServeConfig { return gateway.DefaultServeConfig() }

// NewClusterCoordinator builds the head of a vet cluster over a
// coordinator-mode vetting service (VetServiceConfig.DisableLocalLanes).
// Mount it on the gateway by passing it through GatewayConfig.Cluster.
func NewClusterCoordinator(svc *VetService, cfg ClusterCoordinatorConfig) *ClusterCoordinator {
	return cluster.NewCoordinator(svc, cfg)
}

// StartClusterWorker launches one remote worker node against a
// coordinator's base URL. The node cold-starts its checker from the
// coordinator's advertised model generation, claims and vets
// submissions until the coordinator drains or Stop is called, and
// hot-swaps whenever a claim advertises a newer generation.
func StartClusterWorker(cfg ClusterWorkerConfig) (*ClusterWorker, error) {
	return cluster.StartWorker(cfg)
}

// WriteObsMetrics writes the Prometheus text exposition of every counter,
// gauge, distribution, and stage aggregate the collectors hold — the same
// generic exporter behind the gateway's /metrics.
func WriteObsMetrics(w io.Writer, namespace string, cols ...*ObsCollector) error {
	return gateway.WriteMetrics(w, namespace, cols...)
}

// ImportModel loads a model exported with Checker.Export into a Checker
// bound to the (matching) universe — the §5.4 distribution path by which
// large markets share trained models with smaller ones.
func ImportModel(r io.Reader, u *Universe) (*Checker, error) { return core.Import(r, u) }

// OpenModelRegistry opens (or creates) a versioned model registry rooted
// at dir.
func OpenModelRegistry(dir string) (*ModelRegistry, error) { return modelstore.Open(dir) }

// NewLifecycleManager binds a serving checker to a registry under the
// given promotion gates.
func NewLifecycleManager(ck *Checker, reg *ModelRegistry, gates GateConfig) *LifecycleManager {
	return lifecycle.NewManager(ck, reg, gates)
}

// DefaultGateConfig is the conservative promotion policy: a challenger may
// not drop F1 or AUC by more than 5 points against the champion on the
// held-out slice.
func DefaultGateConfig() GateConfig { return lifecycle.DefaultGateConfig() }

// ColdStart builds a serving checker from the registry's current
// generation — the restart path: no retraining, bit-identical verdicts to
// the process that snapshotted the model.
func ColdStart(reg *ModelRegistry) (*Checker, ModelManifest, error) {
	return lifecycle.ColdStart(reg)
}

// StartEvolveRunner launches the background evolution runner: rounds train
// off the serving path and promote via atomic hot-swap.
func StartEvolveRunner(m *LifecycleManager, cfg EvolveRunnerConfig) *EvolveRunner {
	return lifecycle.StartRunner(m, cfg)
}
