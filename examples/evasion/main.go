// Evasion: the adversary's perspective of §4.5. Malware can bypass key-API
// hooks with Java reflection into hidden APIs or by delegating actions to
// other apps via intents — but it cannot avoid requesting the backing
// permissions or registering the broadcasts it needs. This example trains
// two checkers, one with API-only features and one with the deployed
// A+P+I combination, and vets a batch of evasive malware with both.
package main

import (
	"context"
	"fmt"
	"log"

	"apichecker"
)

func main() {
	u, err := apichecker.NewUniverse(6000, 4)
	if err != nil {
		log.Fatal(err)
	}
	corpus, err := apichecker.NewCorpus(u, 1500, 4)
	if err != nil {
		log.Fatal(err)
	}

	apiOnly := apichecker.DefaultConfig()
	apiOnly.Mode = apichecker.ModeA
	ckA, _, err := apichecker.Train(corpus, apiOnly)
	if err != nil {
		log.Fatal(err)
	}
	ckAPI, _, err := apichecker.Train(corpus, apichecker.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	gen := apichecker.NewGenerator(u)
	families := []apichecker.Family{
		apichecker.FamilyReflectionEvader,
		apichecker.FamilyIntentEvader,
		apichecker.FamilySpyware, // non-evasive control group
	}
	fmt.Printf("%-20s %14s %14s\n", "Family", "A-only catch", "A+P+I catch")
	for _, fam := range families {
		const n = 60
		caughtA, caughtAPI := 0, 0
		for seed := int64(0); seed < n; seed++ {
			p := gen.Generate(apichecker.Spec{
				PackageName: "com.evasion.sample", Version: 1, Seed: 90000 + seed,
				Label: apichecker.Malicious, Family: fam,
			})
			vA, err := ckA.Vet(context.Background(), apichecker.Submission{Program: p})
			if err != nil {
				log.Fatal(err)
			}
			vAPI, err := ckAPI.Vet(context.Background(), apichecker.Submission{Program: p})
			if err != nil {
				log.Fatal(err)
			}
			if vA.Malicious {
				caughtA++
			}
			if vAPI.Malicious {
				caughtAPI++
			}
		}
		fmt.Printf("%-20s %12d/%d %12d/%d\n", fam, caughtA, n, caughtAPI, n)
	}
	fmt.Println("\nthe auxiliary P and I features recover the evaders that pure API")
	fmt.Println("tracking misses (§4.5: recall 93.7% -> 96.7% in the paper).")
}
