// Evolution: the model lifecycle behind §5.3's monthly retraining, run
// end-to-end against the versioned on-disk registry — train, snapshot,
// cold-start a fresh serving process from disk, serve under load, retrain
// in the background with gated promotion and an atomic hot-swap, roll back
// to the previous generation, and list the registry's lineage.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"apichecker"
)

func main() {
	// 1. Train an initial model and persist it as the root generation.
	u, err := apichecker.NewUniverse(6000, 3)
	if err != nil {
		log.Fatal(err)
	}
	corpus, err := apichecker.NewCorpus(u, 600, 3)
	if err != nil {
		log.Fatal(err)
	}
	trainer, report, err := apichecker.Train(corpus, apichecker.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	dir, err := os.MkdirTemp("", "apichecker-registry-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	reg, err := apichecker.OpenModelRegistry(dir)
	if err != nil {
		log.Fatal(err)
	}
	root, err := apichecker.NewLifecycleManager(trainer, reg, apichecker.DefaultGateConfig()).
		Snapshot("initial model")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained on %d apps (%d key APIs), snapshotted as %s\n",
		corpus.Len(), report.KeyAPIs, root[:12])

	// 2. Cold-start a serving process from nothing but the registry: the
	// artifact replays the framework universe and model bit-identically.
	checker, manifest, err := apichecker.ColdStart(reg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cold-started generation %d from digest %s\n",
		checker.Generation().ID, manifest.Digest[:12])

	svc := apichecker.NewVetService(checker, apichecker.VetServiceConfig{Workers: 4})
	defer svc.Close()

	batch, err := apichecker.NewCorpus(checker.Universe(), 120, 77)
	if err != nil {
		log.Fatal(err)
	}
	subs := make([]apichecker.Submission, batch.Len())
	for i := range subs {
		subs[i] = apichecker.Submission{Program: batch.Program(i)}
	}
	verdicts, err := svc.VetBatch(context.Background(), subs)
	if err != nil {
		log.Fatal(err)
	}
	flagged := 0
	for _, v := range verdicts {
		if v.Malicious {
			flagged++
		}
	}
	fmt.Printf("served %d submissions on generation %d (%d flagged)\n\n",
		len(verdicts), verdicts[0].Generation, flagged)

	// 3. A month passes: retrain on the refreshed corpus in the
	// background. The challenger shadow-scores against the champion on a
	// held-out slice; promotion is an atomic hot-swap — in-flight vets
	// finish on the generation they started on.
	mgr := apichecker.NewLifecycleManager(checker, reg, apichecker.DefaultGateConfig())
	refreshed, err := apichecker.NewCorpus(checker.Universe(), 700, 4)
	if err != nil {
		log.Fatal(err)
	}
	done := make(chan *apichecker.EvolveResult, 1)
	runner := apichecker.StartEvolveRunner(mgr, apichecker.EvolveRunnerConfig{
		Corpus: func(context.Context) (*apichecker.Corpus, error) { return refreshed, nil },
		OnResult: func(res *apichecker.EvolveResult, err error) {
			if err != nil {
				log.Fatal(err)
			}
			done <- res
		},
	})
	runner.Trigger()

	// The service keeps answering while the challenger trains.
	if _, err := svc.VetBatch(context.Background(), subs); err != nil {
		log.Fatal(err)
	}
	res := <-done
	runner.Stop()
	if !res.Promoted {
		log.Fatalf("challenger rejected: %s", res.Shadow.Reason)
	}
	fmt.Printf("promoted generation %d (%s)\n", res.Generation.ID, res.Digest[:12])
	fmt.Printf("  shadow eval on %d held-out apps: challenger F1 %.3f / AUC %.3f vs champion F1 %.3f / AUC %.3f\n",
		res.Shadow.Holdout, res.Shadow.Challenger.F1, res.Shadow.Challenger.AUC,
		res.Shadow.Champion.F1, res.Shadow.Champion.AUC)

	after, err := svc.VetBatch(context.Background(), subs[:8])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("service now answers on generation %d\n\n", after[0].Generation)

	// 4. The new model misbehaves in production? Rollback is explicit:
	// restore the prior generation from the registry (another hot-swap —
	// the verdict cache epoch advances, nothing is retrained).
	gen, err := mgr.Rollback(root)
	if err != nil {
		log.Fatal(err)
	}
	rolled, err := svc.VetBatch(context.Background(), subs[:8])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rolled back to %s; serving generation %d again\n\n", gen.Digest[:12], rolled[0].Generation)

	// 5. The registry keeps the full lineage on disk.
	entries, err := reg.List()
	if err != nil {
		log.Fatal(err)
	}
	current, err := reg.CurrentDigest()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("registry lineage:")
	for _, m := range entries {
		marker := " "
		if m.Digest == current {
			marker = "*"
		}
		parent := "-"
		if m.Parent != "" {
			parent = m.Parent[:12]
		}
		fmt.Printf("  %s %s  parent %-12s  %s\n", marker, m.Digest[:12], parent, m.Note)
	}
	st := mgr.State()
	fmt.Printf("\nlifecycle: %d trains, %d promotions, %d rejections, %d rollbacks\n",
		st.Trains, st.Promotions, st.Rejections, st.Rollbacks)
}
