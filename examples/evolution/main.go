// Evolution: run the month-by-month deployment loop of §5.3 — monthly
// submissions, accumulated market labels, periodic SDK releases adding new
// framework APIs, and monthly retraining with fresh key-API selection.
// This is the workflow behind Figures 12 and 14.
package main

import (
	"fmt"
	"log"

	"apichecker"
)

func main() {
	u, err := apichecker.NewUniverse(6000, 3)
	if err != nil {
		log.Fatal(err)
	}
	cfg := apichecker.DefaultYearConfig()
	cfg.Months = 6
	cfg.InitialApps = 900
	cfg.MonthlyApps = 220
	cfg.SDKEveryMonths = 3

	fmt.Printf("simulating %d months of deployment (initial corpus %d apps, %d submissions/month)\n\n",
		cfg.Months, cfg.InitialApps, cfg.MonthlyApps)
	report, err := apichecker.RunYear(u, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%6s %10s %8s %9s %9s %8s\n", "Month", "Precision", "Recall", "Flagged", "KeyAPIs", "Manual")
	for _, m := range report.Months {
		fmt.Printf("%6d %9.1f%% %7.1f%% %9d %9d %7.0fm\n",
			m.Month, 100*m.Precision(), 100*m.Recall(), m.Flagged, m.KeyAPIs, m.ManualMinutes)
	}
	pMin, pMax, rMin, rMax := report.MinMaxPrecisionRecall()
	fmt.Printf("\nprecision band %.1f%%-%.1f%%, recall band %.1f%%-%.1f%% (initial key set: %d APIs)\n",
		100*pMin, 100*pMax, 100*rMin, 100*rMax, report.InitialKeyAPIs)
	fmt.Println("the key-API count drifts a few entries per month while detection quality stays level —")
	fmt.Println("the paper's Fig. 14 observes 425-432 keys over a year at 50K-API scale.")
}
