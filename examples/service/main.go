// Service: run APICHECKER as an always-on vetting service — the paper's
// deployment shape (§5.2: an online pipeline continuously absorbing
// developer submissions) rather than a one-shot batch. A bounded queue
// applies explicit backpressure to a bursty submitter, a worker pool vets
// under per-submission deadlines, and the metrics snapshot reports the
// crash/fallback accounting and scan-latency quantiles of §5.1-§5.2.
//
// The deployment knobs live in one apichecker.ServeConfig — the same
// struct `tmarket -serve` parses its flags into — and the example ends by
// printing the Prometheus exposition a gateway's /metrics would serve
// for this exact service.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"strings"
	"time"

	"apichecker"
)

func main() {
	u, err := apichecker.NewUniverse(6000, 3)
	if err != nil {
		log.Fatal(err)
	}
	training, err := apichecker.NewCorpus(u, 1200, 3)
	if err != nil {
		log.Fatal(err)
	}
	checker, _, err := apichecker.Train(training, apichecker.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// Today's submissions arrive as a burst far faster than the lanes
	// drain them.
	burst, err := apichecker.NewCorpus(u, 400, 91)
	if err != nil {
		log.Fatal(err)
	}

	// One ServeConfig carries the deployment shape end to end; the
	// service layer derives its own config from it.
	scfg := apichecker.DefaultServeConfig()
	scfg.Workers = 8
	scfg.Queue = 16
	// Per-submission wall-clock budget; expiries surface as
	// ErrDeadlineExceeded and are counted in the metrics.
	scfg.Deadline = 2 * time.Minute

	svc := apichecker.NewVetService(checker, scfg.ServiceConfig())
	defer svc.Close()

	ctx := context.Background()
	var (
		tickets   []*apichecker.VetTicket
		retries   int
		malicious int
	)
	for i := 0; i < burst.Len(); i++ {
		sub := apichecker.Submission{Program: burst.Program(i)}
		for {
			tk, err := svc.Submit(ctx, sub)
			if errors.Is(err, apichecker.ErrQueueFull) {
				// Explicit backpressure: the submitter waits for a
				// slot instead of the service buffering unboundedly.
				retries++
				tk, err = svc.SubmitWait(ctx, sub)
			}
			if err != nil {
				log.Fatal(err)
			}
			tickets = append(tickets, tk)
			break
		}
	}
	for _, tk := range tickets {
		v, err := tk.Wait(ctx)
		if err != nil {
			log.Fatal(err)
		}
		if v.Malicious {
			malicious++
		}
	}

	m := svc.Metrics()
	fmt.Printf("vetted %d submissions on %d lanes (queue 16)\n",
		m.Completed, 8)
	fmt.Printf("  backpressure: %d queue-full rejections, all retried\n", m.Rejected)
	fmt.Printf("  flagged malicious: %d\n", malicious)
	fmt.Printf("  reliability: %d crashes across %d submissions, %d fallback re-runs\n",
		m.Crashes, m.CrashedSubmissions, m.Fallbacks)
	for engine, n := range m.EngineRuns {
		fmt.Printf("  engine %-22s %4d final runs\n", engine, n)
	}
	fmt.Printf("  scan latency (virtual): mean %.1fs  p50 %.1fs  p95 %.1fs  p99 %.1fs\n",
		m.ScanMean, m.ScanP50, m.ScanP95, m.ScanP99)

	// The checker's observability spine breaks the same latency down by
	// pipeline stage — the per-stage view behind the service quantiles.
	fmt.Println("  pipeline stages (virtual seconds):")
	for _, st := range checker.StageStats() {
		fmt.Printf("    %-14s n=%-4d p50 %8.3f  p95 %8.3f  p99 %8.3f\n",
			st.Stage, st.Count, st.Dur.P50, st.Dur.P95, st.Dur.P99)
	}
	if retries != int(m.Rejected) {
		log.Fatalf("retry accounting mismatch: %d retries vs %d rejections", retries, m.Rejected)
	}

	// The same numbers, as the gateway's /metrics would expose them: the
	// generic Prometheus exposition over the checker's and service's obs
	// collectors (a few representative lines).
	var prom strings.Builder
	if err := apichecker.WriteObsMetrics(&prom, "apichecker", checker.Obs(), svc.Obs()); err != nil {
		log.Fatal(err)
	}
	fmt.Println("  /metrics exposition (excerpt):")
	shown := 0
	for _, line := range strings.Split(prom.String(), "\n") {
		if strings.HasPrefix(line, "apichecker_svc_") && !strings.HasPrefix(line, "# ") && shown < 6 {
			fmt.Printf("    %s\n", line)
			shown++
		}
	}
}
