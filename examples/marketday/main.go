// Marketday: simulate one review day at a T-Market-style app store — a
// queue of submissions flows through fingerprint checking, the APICHECKER
// scan, and the manual-review workflows, on a single 16-emulator server
// (§5.2: ~10K apps/day at 1.3 min/app in the paper).
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"apichecker"
)

func main() {
	u, err := apichecker.NewUniverse(6000, 2)
	if err != nil {
		log.Fatal(err)
	}
	training, err := apichecker.NewCorpus(u, 1500, 2)
	if err != nil {
		log.Fatal(err)
	}
	checker, _, err := apichecker.Train(training, apichecker.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	market := apichecker.NewMarket(checker, apichecker.DefaultMarketConfig())
	market.SeedFingerprints(training)

	// Today's submission queue.
	day, err := apichecker.NewCorpus(u, 600, 77)
	if err != nil {
		log.Fatal(err)
	}

	var (
		published, rejectedAV, rejectedML int
		complaints, reports               int
		scanTotal                         time.Duration
		manualMinutes                     float64
	)
	for _, app := range day.Apps {
		res, err := market.Review(app, nil)
		if err != nil {
			log.Fatal(err)
		}
		manualMinutes += res.ManualMinutes
		switch res.Outcome {
		case apichecker.Published:
			published++
		case apichecker.RejectedFingerprint:
			rejectedAV++
		case apichecker.RejectedML:
			rejectedML++
		case apichecker.PublishedAfterComplaint:
			published++
			complaints++
		case apichecker.QuarantinedAfterReport:
			reports++
		}
	}
	// Per-app scan time on the production engine, for capacity math.
	gen := apichecker.NewGenerator(u)
	for i := 0; i < 50; i++ {
		v, err := checker.Vet(context.Background(), apichecker.Submission{Program: gen.Generate(day.Apps[i].Spec)})
		if err != nil {
			log.Fatal(err)
		}
		scanTotal += v.ScanTime
	}
	meanScan := scanTotal / 50

	fmt.Printf("review day: %d submissions\n", day.Len())
	fmt.Printf("  published:               %d\n", published)
	fmt.Printf("  rejected (fingerprint):  %d\n", rejectedAV)
	fmt.Printf("  rejected (APICHECKER):   %d\n", rejectedML)
	fmt.Printf("  developer complaints:    %d (false positives resolved)\n", complaints)
	fmt.Printf("  user reports:            %d (false negatives quarantined)\n", reports)
	fmt.Printf("  manual effort:           %.0f analyst-minutes\n", manualMinutes)
	fmt.Printf("  mean scan time:          %s/app on the lightweight engine\n", meanScan.Round(time.Second))
	fmt.Printf("  => one 16-emulator server vets ~%d apps/day\n",
		int(24*time.Hour/meanScan)*16)
}
