// Quickstart: generate a framework universe and a ground-truth corpus,
// train APICHECKER, then vet one benign and one malicious APK end to end
// (build the archive, parse it, emulate it, classify it).
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"apichecker"
)

func main() {
	// A mid-size framework universe (use apichecker.PaperUniverse for
	// the full 50K-API surface).
	u, err := apichecker.NewUniverse(6000, 1)
	if err != nil {
		log.Fatal(err)
	}

	// Ground-truth training data with the T-Market class mix.
	corpus, err := apichecker.NewCorpus(u, 1500, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corpus: %d apps, %d malicious\n", corpus.Len(), corpus.Positives())

	start := time.Now()
	checker, report, err := apichecker.Train(corpus, apichecker.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained in %s: %d key APIs (Set-C=%d Set-P=%d Set-S=%d), %d features\n",
		time.Since(start).Round(time.Millisecond),
		report.KeyAPIs, report.SetC, report.SetP, report.SetS, report.Features)

	// Build two fresh APKs the checker has never seen.
	gen := apichecker.NewGenerator(u)
	benign := gen.Generate(apichecker.Spec{
		PackageName: "com.example.notes", Version: 3, Seed: 4242,
		Label: apichecker.Benign,
	})
	spyware := gen.Generate(apichecker.Spec{
		PackageName: "com.example.flashlight", Version: 1, Seed: 1337,
		Label: apichecker.Malicious, Family: apichecker.FamilySpyware,
	})

	for _, p := range []*apichecker.Program{benign, spyware} {
		data, err := apichecker.BuildAPK(p, u)
		if err != nil {
			log.Fatal(err)
		}
		verdict, err := checker.Vet(context.Background(), apichecker.Submission{Raw: data})
		if err != nil {
			log.Fatal(err)
		}
		label := "BENIGN"
		if verdict.Malicious {
			label = "MALICIOUS"
		}
		fmt.Printf("%-28s -> %-9s score=%+.3f scan=%s (%d key APIs observed, apk %d KiB)\n",
			verdict.Package, label, verdict.Score,
			verdict.ScanTime.Round(time.Second), verdict.InvokedKeyAPIs, len(data)/1024)
	}
}
