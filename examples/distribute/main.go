// Distribute: the §5.4 model-distribution story. A large market trains
// APICHECKER on its ground-truth corpus, exports the model (key-API
// selection + trained forest), and a smaller market imports it to vet
// submissions without owning any training data or spending any training
// compute.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"time"

	"apichecker"
)

func main() {
	u, err := apichecker.NewUniverse(6000, 8)
	if err != nil {
		log.Fatal(err)
	}

	// The large market: owns ground truth, trains, exports.
	groundTruth, err := apichecker.NewCorpus(u, 1500, 8)
	if err != nil {
		log.Fatal(err)
	}
	big, report, err := apichecker.Train(groundTruth, apichecker.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	var model bytes.Buffer
	if err := big.Export(&model); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("large market: trained on %d apps (%d key APIs), exported model: %d KiB\n",
		groundTruth.Len(), report.KeyAPIs, model.Len()/1024)

	// The small market: imports and vets. It needs only the model blob
	// and the same framework universe (SDK level).
	small, err := apichecker.ImportModel(&model, u)
	if err != nil {
		log.Fatal(err)
	}
	day, err := apichecker.NewCorpus(u, 300, 99)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	correct, flagged := 0, 0
	for i := 0; i < day.Len(); i++ {
		v, err := small.Vet(context.Background(), apichecker.Submission{Program: day.Program(i)})
		if err != nil {
			log.Fatal(err)
		}
		if v.Malicious {
			flagged++
		}
		if v.Malicious == (day.Apps[i].Label == apichecker.Malicious) {
			correct++
		}
	}
	fmt.Printf("small market: vetted %d submissions in %s (flagged %d, accuracy %.1f%%)\n",
		day.Len(), time.Since(start).Round(time.Millisecond),
		flagged, 100*float64(correct)/float64(day.Len()))
	fmt.Println("zero training data, zero training compute on the small market's side.")
}
