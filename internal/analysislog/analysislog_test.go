package analysislog

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"apichecker/internal/behavior"
	"apichecker/internal/emulator"
	"apichecker/internal/framework"
	"apichecker/internal/hook"
	"apichecker/internal/monkey"
)

var (
	testU   = framework.MustGenerate(framework.TestConfig(3000))
	testGen = behavior.NewGenerator(testU)
)

func sampleRecord(t *testing.T, seed int64) *Record {
	t.Helper()
	reg := hook.MustNewRegistry(testU, testU.DesignedKeyAPIs())
	emu := emulator.New(emulator.GoogleEmulator, reg)
	p := testGen.Generate(behavior.Spec{
		PackageName: "com.log.app", Version: 2, Seed: seed,
		Label: behavior.Malicious, Family: behavior.FamilySMSFraud,
	})
	res, err := emu.Run(p, monkey.ProductionConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	return FromResult(p.PackageName, p.Version, "00ff", res, testU)
}

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	var want []*Record
	for seed := int64(0); seed < 5; seed++ {
		rec := sampleRecord(t, seed)
		want = append(want, rec)
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 5 {
		t.Errorf("count = %d", w.Count())
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("records = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Package != want[i].Package ||
			got[i].TotalInvocations != want[i].TotalInvocations ||
			len(got[i].Invocations) != len(want[i].Invocations) ||
			got[i].ScanTime() != want[i].ScanTime() {
			t.Errorf("record %d mismatch:\ngot  %+v\nwant %+v", i, got[i], want[i])
		}
	}
}

func TestRecordContent(t *testing.T) {
	rec := sampleRecord(t, 3)
	if rec.Version != FormatVersion || rec.Package != "com.log.app" || rec.Events != 5000 {
		t.Errorf("record header: %+v", rec)
	}
	if rec.TotalInvocations == 0 || rec.Intercepted == 0 || len(rec.Invocations) == 0 {
		t.Error("record lost invocation data")
	}
	for _, inv := range rec.Invocations {
		if inv.API == "" || inv.Count == 0 {
			t.Errorf("invalid invocation %+v", inv)
		}
		if !strings.Contains(inv.API, ".") {
			t.Errorf("API name %q not fully qualified", inv.API)
		}
	}
	if rec.RAC <= 0 || rec.RAC > 1 {
		t.Errorf("RAC = %f", rec.RAC)
	}
}

func TestReaderRejectsBadInput(t *testing.T) {
	if _, err := ReadAll(strings.NewReader("{broken json\n")); err == nil {
		t.Error("broken JSON accepted")
	}
	if _, err := ReadAll(strings.NewReader(`{"v":99,"package":"a"}` + "\n")); err == nil {
		t.Error("wrong version accepted")
	}
	if _, err := ReadAll(strings.NewReader(`{"v":1}` + "\n")); err == nil {
		t.Error("record without package accepted")
	}
	// Blank lines are tolerated.
	recs, err := ReadAll(strings.NewReader("\n\n"))
	if err != nil || len(recs) != 0 {
		t.Errorf("blank stream: %v %d", err, len(recs))
	}
}

func TestReaderEOF(t *testing.T) {
	r := NewReader(strings.NewReader(""))
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("err = %v, want EOF", err)
	}
}
