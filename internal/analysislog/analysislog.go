// Package analysislog serializes per-app dynamic-analysis records — the
// "analysis logs" the paper promises to release alongside the key-API list.
//
// One record captures everything a single vetting run observed: app
// identity, the tracked-API invocations with counts and sampled
// parameters, sent intents, reached activities, coverage, and timing. The
// format is JSON Lines: one self-contained record per line, so multi-
// million-app logs stream and grep cleanly.
package analysislog

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"apichecker/internal/emulator"
	"apichecker/internal/framework"
)

// FormatVersion guards record compatibility.
const FormatVersion = 1

// Invocation is one tracked API's aggregate.
type Invocation struct {
	API    string   `json:"api"`
	Count  uint64   `json:"count"`
	Params []string `json:"params,omitempty"`
}

// Record is one app's analysis log entry.
type Record struct {
	Version int `json:"v"`

	Package     string `json:"package"`
	VersionCode int    `json:"version_code"`
	MD5         string `json:"md5,omitempty"`

	Engine   string  `json:"engine"`
	Events   int     `json:"events"`
	RAC      float64 `json:"rac"`
	FellBack bool    `json:"fell_back,omitempty"`
	Crashed  int     `json:"crashed,omitempty"`

	ScanMillis       int64  `json:"scan_ms"`
	TotalInvocations uint64 `json:"total_invocations"`
	Intercepted      uint64 `json:"intercepted"`

	Invocations []Invocation `json:"invocations,omitempty"`
	SentIntents []string     `json:"sent_intents,omitempty"`
	Activities  []string     `json:"activities,omitempty"`
}

// FromResult builds a record from one emulation result.
func FromResult(pkg string, versionCode int, md5 string, res *emulator.Result, u *framework.Universe) *Record {
	rec := &Record{
		Version:          FormatVersion,
		Package:          pkg,
		VersionCode:      versionCode,
		MD5:              md5,
		Engine:           res.Profile,
		Events:           res.Events,
		RAC:              res.RAC,
		FellBack:         res.FellBack,
		Crashed:          res.Crashed,
		ScanMillis:       res.VirtualTime.Milliseconds(),
		TotalInvocations: res.Log.TotalInvocations,
		Intercepted:      res.Log.Intercepted,
		Activities:       append([]string(nil), res.Log.ReachedActivities...),
	}
	for _, inv := range res.Log.Invocations() {
		rec.Invocations = append(rec.Invocations, Invocation{
			API:    u.API(inv.API).Name,
			Count:  inv.Count,
			Params: append([]string(nil), inv.Params...),
		})
	}
	for _, id := range res.Log.SentIntents() {
		rec.SentIntents = append(rec.SentIntents, u.Intent(id).Name)
	}
	return rec
}

// ScanTime returns the scan duration.
func (r *Record) ScanTime() time.Duration { return time.Duration(r.ScanMillis) * time.Millisecond }

// Writer appends records to a JSONL stream.
type Writer struct {
	w   *bufio.Writer
	enc *json.Encoder
	n   int
}

// NewWriter wraps an io.Writer.
func NewWriter(w io.Writer) *Writer {
	bw := bufio.NewWriter(w)
	return &Writer{w: bw, enc: json.NewEncoder(bw)}
}

// Write appends one record.
func (w *Writer) Write(rec *Record) error {
	if rec.Version == 0 {
		rec.Version = FormatVersion
	}
	if err := w.enc.Encode(rec); err != nil {
		return fmt.Errorf("analysislog: write: %w", err)
	}
	w.n++
	return nil
}

// Count returns records written.
func (w *Writer) Count() int { return w.n }

// Flush drains buffered output.
func (w *Writer) Flush() error { return w.w.Flush() }

// Reader streams records from a JSONL stream.
type Reader struct {
	sc   *bufio.Scanner
	line int
}

// NewReader wraps an io.Reader.
func NewReader(r io.Reader) *Reader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	return &Reader{sc: sc}
}

// Next returns the next record, or io.EOF.
func (r *Reader) Next() (*Record, error) {
	for r.sc.Scan() {
		r.line++
		line := r.sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			return nil, fmt.Errorf("analysislog: line %d: %w", r.line, err)
		}
		if rec.Version != FormatVersion {
			return nil, fmt.Errorf("analysislog: line %d: format version %d, want %d",
				r.line, rec.Version, FormatVersion)
		}
		if rec.Package == "" {
			return nil, fmt.Errorf("analysislog: line %d: record without package", r.line)
		}
		return &rec, nil
	}
	if err := r.sc.Err(); err != nil {
		return nil, fmt.Errorf("analysislog: %w", err)
	}
	return nil, io.EOF
}

// ReadAll drains a stream.
func ReadAll(rd io.Reader) ([]*Record, error) {
	r := NewReader(rd)
	var out []*Record
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
}
