package analysislog

import (
	"bytes"
	"testing"
)

// FuzzReader hardens the JSONL reader: arbitrary input must never panic,
// and any stream that parses must round-trip.
func FuzzReader(f *testing.F) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write(&Record{Package: "a.b", VersionCode: 1, Engine: "e", Events: 10}); err != nil {
		f.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("{}\n"))
	f.Add([]byte("\n\n\n"))
	f.Add([]byte(`{"v":1,"package":"x"}` + "\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := ReadAll(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		w := NewWriter(&out)
		for _, rec := range recs {
			if rec.Package == "" {
				t.Fatal("reader accepted a record without package")
			}
			if err := w.Write(rec); err != nil {
				t.Fatalf("accepted record fails to re-encode: %v", err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		recs2, err := ReadAll(bytes.NewReader(out.Bytes()))
		if err != nil || len(recs2) != len(recs) {
			t.Fatalf("round trip: %v (%d vs %d)", err, len(recs2), len(recs))
		}
	})
}
