package features

import (
	"fmt"

	"apichecker/internal/framework"
	"apichecker/internal/hook"
	"apichecker/internal/ml"
)

// Encoding selects how tracked-API observations become bits.
//
// The deployed system uses One-Hot ("invoked at least once"), which §6
// notes can lose information such as invocation frequency. EncodingHistogram
// is the paper's proposed future-work alternative: each API maps to a
// thermometer-coded magnitude bucket, so the classifier can distinguish an
// app that calls sendTextMessage once from one that calls it ten thousand
// times.
type Encoding uint8

const (
	// EncodingOneHot is the deployed bit-per-API encoding.
	EncodingOneHot Encoding = iota
	// EncodingHistogram thermometer-codes log-scaled invocation counts:
	// bit k set when count >= histogramThresholds[k].
	EncodingHistogram
)

func (e Encoding) String() string {
	switch e {
	case EncodingOneHot:
		return "one-hot"
	case EncodingHistogram:
		return "histogram"
	}
	return fmt.Sprintf("Encoding(%d)", uint8(e))
}

// histogramThresholds are the bucket lower bounds (invocation counts).
// Thermometer coding keeps Hamming/Jaccard distances monotone in count
// magnitude.
var histogramThresholds = [4]uint64{1, 32, 1024, 32768}

// HistogramBits is the per-API width of the histogram encoding.
const HistogramBits = len(histogramThresholds)

// NewExtractorWithEncoding is NewExtractor with an explicit encoding.
func NewExtractorWithEncoding(u *framework.Universe, tracked []framework.APIID, mode Mode, enc Encoding) (*Extractor, error) {
	if enc != EncodingOneHot && enc != EncodingHistogram {
		return nil, fmt.Errorf("features: unknown encoding %v", enc)
	}
	e, err := NewExtractor(u, tracked, mode)
	if err != nil {
		return nil, err
	}
	if enc == EncodingHistogram && mode&ModeA != 0 {
		// Re-layout: API features widen to HistogramBits each.
		shift := len(e.tracked) * (HistogramBits - 1)
		e.permBase += shift
		e.intentBase += shift
		e.total += shift
	}
	e.encoding = enc
	return e, nil
}

// Encoding returns the extractor's encoding.
func (e *Extractor) Encoding() Encoding { return e.encoding }

// apiBits fills the API-feature region of v for one log.
func (e *Extractor) apiBits(log *hook.Log, v ml.Vector) {
	invs := log.Invocations()
	if e.encoding == EncodingOneHot {
		for i := range invs {
			if int(invs[i].API) >= len(e.apiSlot) {
				continue // API newer than the extractor's universe
			}
			if slot := e.apiSlot[invs[i].API]; slot != 0 {
				v.Set(int(slot - 1))
			}
		}
		return
	}
	for i := range invs {
		if int(invs[i].API) >= len(e.apiSlot) {
			continue
		}
		slot := e.apiSlot[invs[i].API]
		if slot == 0 {
			continue
		}
		base := int(slot-1) * HistogramBits
		for k, threshold := range histogramThresholds {
			if invs[i].Count >= threshold {
				v.Set(base + k)
			}
		}
	}
}
