package features

import (
	"strings"
	"testing"

	"apichecker/internal/framework"
	"apichecker/internal/hook"
	"apichecker/internal/manifest"
)

var testU = framework.MustGenerate(framework.TestConfig(3000))

// fabricatedUsage builds usage stats with known correlation structure:
// APIs in hot are used by everyone, APIs in malOnly only by malware.
func fabricatedUsage(numApps, positives int, malOnly, hot []framework.APIID) *UsageStats {
	u := NewUsageStats(testU.NumAPIs(), numApps, positives)
	for _, id := range malOnly {
		for i := 0; i < positives; i++ {
			u.Observe(id, float64(10+i%7), true)
		}
	}
	for _, id := range hot {
		for i := 0; i < numApps; i++ {
			u.Observe(id, float64(1000+i%13), i < positives)
		}
	}
	return u
}

func visible(n int) []framework.APIID {
	var out []framework.APIID
	for _, a := range testU.APIs() {
		if !a.Hidden && a.Permission == framework.NoPermission && a.Category == framework.CategoryNone {
			out = append(out, a.ID)
			if len(out) == n {
				break
			}
		}
	}
	return out
}

func TestSRCAndSelection(t *testing.T) {
	ids := visible(6)
	malOnly, hot := ids[:3], ids[3:]
	usage := fabricatedUsage(1000, 100, malOnly, hot)

	for _, id := range malOnly {
		if src := usage.SRC(id); src < 0.5 {
			t.Errorf("malware-only API %d SRC = %.3f, want strongly positive", id, src)
		}
	}
	for _, id := range hot {
		src := usage.SRC(id)
		if src < -0.2 || src > 0.2 {
			t.Errorf("uniform hot API %d SRC = %.3f, want near 0", id, src)
		}
	}

	sel := SelectKeyAPIs(testU, usage, DefaultSelectionConfig())
	inC := idSet(sel.SetC)
	for _, id := range malOnly {
		if !inC[id] {
			t.Errorf("malware-only API %d missing from Set-C", id)
		}
	}
	for _, id := range hot {
		if inC[id] {
			t.Errorf("uncorrelated hot API %d selected into Set-C", id)
		}
	}
	// Structural sets come from the universe.
	if len(sel.SetP) != len(testU.RestrictedAPIs()) {
		t.Errorf("SetP = %d, want %d", len(sel.SetP), len(testU.RestrictedAPIs()))
	}
	if len(sel.SetS) != len(testU.SensitiveAPIs()) {
		t.Errorf("SetS = %d, want %d", len(sel.SetS), len(testU.SensitiveAPIs()))
	}
	// Union is sorted and deduplicated.
	for i := 1; i < len(sel.Keys); i++ {
		if sel.Keys[i] <= sel.Keys[i-1] {
			t.Fatal("Keys not sorted/unique")
		}
	}
	wantMax := len(sel.SetC) + len(sel.SetP) + len(sel.SetS)
	if len(sel.Keys) > wantMax {
		t.Errorf("Keys = %d > sum of sets %d", len(sel.Keys), wantMax)
	}
}

func TestSeldomExclusion(t *testing.T) {
	ids := visible(1)
	usage := NewUsageStats(testU.NumAPIs(), 10000, 1000)
	// Used by 3 apps (0.03%), all malicious: perfectly correlated but
	// seldom.
	for i := 0; i < 3; i++ {
		usage.Observe(ids[0], 5, true)
	}
	sel := SelectKeyAPIs(testU, usage, DefaultSelectionConfig())
	for _, id := range sel.SetC {
		if id == ids[0] {
			t.Error("seldom-invoked API selected into Set-C")
		}
	}
}

func TestTopCorrelated(t *testing.T) {
	ids := visible(6)
	usage := fabricatedUsage(1000, 100, ids[:3], ids[3:])
	top := TopCorrelated(testU, usage, 3, DefaultSelectionConfig())
	if len(top) != 3 {
		t.Fatalf("top = %v", top)
	}
	want := idSet(ids[:3])
	for _, id := range top {
		if !want[id] {
			t.Errorf("top-correlated contains %d, want one of %v", id, ids[:3])
		}
	}
	// Requesting more than available clamps.
	all := TopCorrelated(testU, usage, 10000, DefaultSelectionConfig())
	if len(all) != 6 {
		t.Errorf("clamped top = %d, want 6 (only 6 APIs ever used)", len(all))
	}
}

func TestOverlapsAccounting(t *testing.T) {
	sel := &Selection{
		SetC: []framework.APIID{1, 2, 3},
		SetP: []framework.APIID{3, 4},
		SetS: []framework.APIID{2, 5},
	}
	cp, cs, ps, cps := sel.Overlaps()
	if cp != 1 || cs != 1 || ps != 0 || cps != 0 {
		t.Errorf("overlaps = %d %d %d %d", cp, cs, ps, cps)
	}
}

func TestExtractorLayoutAndVector(t *testing.T) {
	tracked := visible(5)
	ex, err := NewExtractor(testU, tracked, ModeAPI)
	if err != nil {
		t.Fatal(err)
	}
	wantWidth := 5 + len(testU.Permissions()) + len(testU.Intents())
	if ex.NumFeatures() != wantWidth {
		t.Errorf("NumFeatures = %d, want %d", ex.NumFeatures(), wantWidth)
	}

	reg := hook.MustNewRegistry(testU, tracked)
	log := hook.NewLog(reg)
	log.Observe(tracked[1], 4)
	log.Observe(tracked[3], 1)
	log.ObserveIntent(2, 1)

	man := manifest.New("com.x.y", 1)
	man.AddPermission(testU.Permission(0).Name)
	man.Application.Receivers = []manifest.Receiver{{
		Name: "com.x.y.R",
		Filters: []manifest.IntentFilter{{Actions: []manifest.Action{
			{Name: testU.Intent(5).Name},
		}}},
	}}

	v, err := ex.Vector(log, man)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Get(1) || !v.Get(3) || v.Get(0) || v.Get(2) || v.Get(4) {
		t.Error("API bits wrong")
	}
	if !v.Get(5 + 0) {
		t.Error("permission bit missing")
	}
	intentBase := 5 + len(testU.Permissions())
	if !v.Get(intentBase+2) || !v.Get(intentBase+5) {
		t.Error("intent bits missing (runtime send + receiver filter)")
	}
	if got := v.Ones(); got != 5 {
		t.Errorf("total bits = %d, want 5", got)
	}
}

func TestExtractorModes(t *testing.T) {
	tracked := visible(4)
	for _, mode := range []Mode{ModeA, ModeP, ModeI, ModeAP, ModeAI, ModePI, ModeAPI} {
		ex, err := NewExtractor(testU, tracked, mode)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		want := 0
		if mode&ModeA != 0 {
			want += 4
		}
		if mode&ModeP != 0 {
			want += len(testU.Permissions())
		}
		if mode&ModeI != 0 {
			want += len(testU.Intents())
		}
		if ex.NumFeatures() != want {
			t.Errorf("%v: width %d, want %d", mode, ex.NumFeatures(), want)
		}
		if ex.Mode().String() == "" {
			t.Errorf("%v: empty mode name", mode)
		}
	}
	if _, err := NewExtractor(testU, tracked, 0); err == nil {
		t.Error("empty mode accepted")
	}
	if _, err := NewExtractor(testU, append(tracked, tracked[0]), ModeA); err == nil {
		t.Error("duplicate tracked API accepted")
	}
}

func TestFeatureNames(t *testing.T) {
	id, ok := testU.LookupAPI("android.telephony.SmsManager.sendTextMessage")
	if !ok {
		t.Fatal("anchor missing")
	}
	ex, err := NewExtractor(testU, []framework.APIID{id}, ModeAPI)
	if err != nil {
		t.Fatal(err)
	}
	if got := ex.FeatureName(0); got != "API: SmsManager_sendTextMessage" {
		t.Errorf("API feature name = %q", got)
	}
	permName := ex.FeatureName(1 + int(mustPerm(t, "android.permission.SEND_SMS")))
	if permName != "Permission: SEND_SMS" {
		t.Errorf("permission feature name = %q", permName)
	}
	intentIdx := 1 + len(testU.Permissions()) + int(mustIntent(t, "android.net.wifi.STATE_CHANGE"))
	if got := ex.FeatureName(intentIdx); got != "Intent: wifi.STATE_CHANGE" {
		t.Errorf("intent feature name = %q", got)
	}
}

func mustPerm(t *testing.T, name string) framework.PermissionID {
	t.Helper()
	id, ok := testU.LookupPermission(name)
	if !ok {
		t.Fatalf("permission %s missing", name)
	}
	return id
}

func mustIntent(t *testing.T, name string) framework.IntentID {
	t.Helper()
	id, ok := testU.LookupIntent(name)
	if !ok {
		t.Fatalf("intent %s missing", name)
	}
	return id
}

func TestVectorNilInputs(t *testing.T) {
	ex, err := NewExtractor(testU, visible(2), ModeA)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Vector(nil, manifest.New("a.b", 1)); err == nil {
		t.Error("nil log accepted")
	}
	reg := hook.MustNewRegistry(testU, visible(2))
	if _, err := ex.Vector(hook.NewLog(reg), nil); err == nil {
		t.Error("nil manifest accepted")
	}
}

func TestShortNames(t *testing.T) {
	if got := shortAPIName("a.b.C.d"); got != "C_d" {
		t.Errorf("shortAPIName = %q", got)
	}
	if got := shortAPIName("nodots"); got != "nodots" {
		t.Errorf("shortAPIName = %q", got)
	}
	if got := shortIntentName("android.intent.action.BOOT_COMPLETED"); !strings.HasSuffix(got, "BOOT_COMPLETED") {
		t.Errorf("shortIntentName = %q", got)
	}
}
