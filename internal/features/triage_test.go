package features

import (
	"testing"

	"apichecker/internal/manifest"
	"apichecker/internal/ml"
)

// triageManifest fabricates a manifest requesting the first two universe
// permissions (one twice, exercising dedupe) and declaring a receiver for
// the first universe intent action.
func triageManifest() *manifest.Manifest {
	m := manifest.New("com.triage.test", 1)
	p0 := testU.Permission(0).Name
	p1 := testU.Permission(1).Name
	m.Permissions = []manifest.UsesPerm{{Name: p0}, {Name: p1}, {Name: p0}, {Name: "com.fake.NOPE"}}
	m.Application.Receivers = []manifest.Receiver{{
		Name: "com.triage.test.Recv",
		Filters: []manifest.IntentFilter{{Actions: []manifest.Action{
			{Name: testU.Intent(0).Name},
		}}},
	}}
	return m
}

func TestTriageExtractorLayout(t *testing.T) {
	e, err := NewTriageExtractor(testU)
	if err != nil {
		t.Fatal(err)
	}
	wantWidth := len(testU.Permissions()) + len(testU.Intents())
	if e.NumFeatures() != wantWidth {
		t.Fatalf("NumFeatures = %d, want %d (permissions+intents)", e.NumFeatures(), wantWidth)
	}
	if e.Mode() != ModePI {
		t.Errorf("Mode = %v, want P+I", e.Mode())
	}

	v, err := e.ManifestVectorInto(triageManifest(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Get(0) || !v.Get(1) {
		t.Error("requested permission bits not set")
	}
	if got := v.Ones(); got != 3 {
		t.Errorf("set bits = %d, want 3 (two permissions + one intent; duplicates and unknowns dropped)", got)
	}
	intentBit := len(testU.Permissions()) + int(mustIntent(t, testU.Intent(0).Name))
	if !v.Get(intentBit) {
		t.Errorf("receiver intent bit %d not set", intentBit)
	}
}

// TestManifestVectorIntoReusesScratch: serving-path storage recycling —
// a wide-enough dst is filled in place, so steady-state triage scoring
// allocates nothing.
func TestManifestVectorIntoReusesScratch(t *testing.T) {
	e, err := NewTriageExtractor(testU)
	if err != nil {
		t.Fatal(err)
	}
	scratch := make(ml.Vector, (e.NumFeatures()+63)/64)
	for i := range scratch {
		scratch[i] = ^uint64(0) // stale bits must be cleared
	}
	v, err := e.ManifestVectorInto(triageManifest(), scratch)
	if err != nil {
		t.Fatal(err)
	}
	if &v[0] != &scratch[0] {
		t.Error("wide-enough dst was not reused")
	}
	fresh, err := e.ManifestVectorInto(triageManifest(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fresh {
		if v[i] != fresh[i] {
			t.Fatalf("recycled vector word %d differs from fresh fill", i)
		}
	}
}

func TestManifestVectorIntoRejects(t *testing.T) {
	e, err := NewTriageExtractor(testU)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.ManifestVectorInto(nil, nil); err == nil {
		t.Error("accepted nil manifest")
	}
	full, err := NewExtractor(testU, visible(4), ModeAPI)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := full.ManifestVectorInto(triageManifest(), nil); err == nil {
		t.Error("A-family extractor accepted a manifest-only fill")
	}
}
