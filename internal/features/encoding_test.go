package features

import (
	"strings"
	"testing"

	"apichecker/internal/framework"
	"apichecker/internal/hook"
	"apichecker/internal/manifest"
)

func TestHistogramExtractorLayout(t *testing.T) {
	tracked := visible(3)
	ex, err := NewExtractorWithEncoding(testU, tracked, ModeAPI, EncodingHistogram)
	if err != nil {
		t.Fatal(err)
	}
	want := 3*HistogramBits + len(testU.Permissions()) + len(testU.Intents())
	if ex.NumFeatures() != want {
		t.Fatalf("NumFeatures = %d, want %d", ex.NumFeatures(), want)
	}
	if ex.Encoding() != EncodingHistogram {
		t.Error("encoding not recorded")
	}
	// One-hot path unchanged through the new constructor.
	oh, err := NewExtractorWithEncoding(testU, tracked, ModeAPI, EncodingOneHot)
	if err != nil {
		t.Fatal(err)
	}
	if oh.NumFeatures() != 3+len(testU.Permissions())+len(testU.Intents()) {
		t.Errorf("one-hot width = %d", oh.NumFeatures())
	}
	if _, err := NewExtractorWithEncoding(testU, tracked, ModeAPI, Encoding(9)); err == nil {
		t.Error("bogus encoding accepted")
	}
}

func TestHistogramThermometerBits(t *testing.T) {
	tracked := visible(2)
	ex, err := NewExtractorWithEncoding(testU, tracked, ModeA, EncodingHistogram)
	if err != nil {
		t.Fatal(err)
	}
	reg := hook.MustNewRegistry(testU, tracked)
	log := hook.NewLog(reg)
	log.Observe(tracked[0], 5)     // crosses thresholds 1, 32? no: only >=1
	log.Observe(tracked[1], 50000) // crosses all four

	man := manifest.New("c.d", 1)
	v, err := ex.Vector(log, man)
	if err != nil {
		t.Fatal(err)
	}
	// API 0 (5 invocations): only the >=1 bit.
	if !v.Get(0) || v.Get(1) || v.Get(2) || v.Get(3) {
		t.Errorf("API0 bits wrong")
	}
	// API 1 (50K invocations): all bits (thermometer monotone).
	for k := 0; k < HistogramBits; k++ {
		if !v.Get(HistogramBits + k) {
			t.Errorf("API1 bit %d clear", k)
		}
	}
	// Thermometer property: a set bit implies all lower bits set.
	for api := 0; api < 2; api++ {
		for k := HistogramBits - 1; k > 0; k-- {
			if v.Get(api*HistogramBits+k) && !v.Get(api*HistogramBits+k-1) {
				t.Errorf("thermometer violated at api %d bit %d", api, k)
			}
		}
	}
}

func TestHistogramFeatureNames(t *testing.T) {
	id, ok := testU.LookupAPI("android.telephony.SmsManager.sendTextMessage")
	if !ok {
		t.Fatal("anchor missing")
	}
	ex, err := NewExtractorWithEncoding(testU, []framework.APIID{id}, ModeA, EncodingHistogram)
	if err != nil {
		t.Fatal(err)
	}
	name := ex.FeatureName(1)
	if !strings.Contains(name, "SmsManager_sendTextMessage") || !strings.Contains(name, ">=") {
		t.Errorf("histogram feature name = %q", name)
	}
}

func TestEncodingStrings(t *testing.T) {
	if EncodingOneHot.String() != "one-hot" || EncodingHistogram.String() != "histogram" {
		t.Error("encoding names wrong")
	}
}
