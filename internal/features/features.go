// Package features implements APICHECKER's feature construction: the
// principled key-API selection of §4.4 (Set-C from measured Spearman rank
// correlations, Set-P from the permission map, Set-S from sensitive-
// operation categories, unioned into the ~426 key APIs) and the One-Hot
// feature extraction of §4.2/§4.5 (tracked-API bits optionally augmented
// with requested-permission and used-intent bits).
package features

import (
	"fmt"
	"sort"

	"apichecker/internal/framework"
	"apichecker/internal/hook"
	"apichecker/internal/manifest"
	"apichecker/internal/ml"
	"apichecker/internal/parallel"
	"apichecker/internal/stats"
)

// UsageStats are the corpus-wide dynamic-analysis statistics feature
// selection consumes: for every API, the non-zero per-app invocation
// counts with their ground-truth labels.
type UsageStats struct {
	NumApps   int
	Positives int // malicious apps

	// PerAPI is indexed by APIID.
	PerAPI []APIUsage
}

// APIUsage is the sparse invocation-count column of one API.
type APIUsage struct {
	Counts []float32 // non-zero per-app totals
	Labels []bool    // ground-truth label of each counting app
}

// UsedBy returns how many apps invoked the API.
func (a *APIUsage) UsedBy() int { return len(a.Counts) }

// NewUsageStats allocates stats for a universe size.
func NewUsageStats(numAPIs, numApps, positives int) *UsageStats {
	return &UsageStats{NumApps: numApps, Positives: positives, PerAPI: make([]APIUsage, numAPIs)}
}

// Reserve pre-sizes an API's usage column for n observations, so a bulk
// fill appends without growth copies.
func (u *UsageStats) Reserve(id framework.APIID, n int) {
	au := &u.PerAPI[id]
	if cap(au.Counts) < n {
		counts := make([]float32, len(au.Counts), n)
		copy(counts, au.Counts)
		labels := make([]bool, len(au.Labels), n)
		copy(labels, au.Labels)
		au.Counts, au.Labels = counts, labels
	}
}

// Observe records one app's total count for one API.
func (u *UsageStats) Observe(id framework.APIID, count float64, malicious bool) {
	au := &u.PerAPI[id]
	au.Counts = append(au.Counts, float32(count))
	au.Labels = append(au.Labels, malicious)
}

// SRC computes the Spearman rank correlation between the API's usage and
// app malice across the corpus (§4.3). Usage enters as the One-Hot
// indicator the classifier consumes (invoked at least once): rank
// correlation on raw counts would be diluted by count jitter among the
// apps that do invoke the API, which carries no malice information.
func (u *UsageStats) SRC(id framework.APIID) float64 {
	au := &u.PerAPI[id]
	if len(au.Counts) == 0 {
		return 0
	}
	// Rank by presence/absence: the indicator form skips the rank sort.
	return stats.SpearmanSparseIndicator(au.Labels, u.NumApps, u.Positives)
}

// UsageFraction returns the fraction of apps invoking the API.
func (u *UsageStats) UsageFraction(id framework.APIID) float64 {
	if u.NumApps == 0 {
		return 0
	}
	return float64(u.PerAPI[id].UsedBy()) / float64(u.NumApps)
}

// SelectionConfig tunes the §4.4 strategy.
type SelectionConfig struct {
	// SRCThreshold is the non-trivial-correlation bar (paper: 0.2).
	SRCThreshold float64
	// SeldomFraction: APIs used by fewer apps than this fraction are
	// "seldom invoked" and excluded from Set-C (paper: 0.1%).
	SeldomFraction float64
}

// DefaultSelectionConfig matches the paper.
func DefaultSelectionConfig() SelectionConfig {
	return SelectionConfig{SRCThreshold: 0.2, SeldomFraction: 0.001}
}

// Selection is the outcome of the four-step key-API strategy.
type Selection struct {
	Config SelectionConfig

	SetC []framework.APIID // statistically correlated (step 1)
	SetP []framework.APIID // restrictive permissions (step 2)
	SetS []framework.APIID // sensitive operations (step 3)
	Keys []framework.APIID // union (step 4), sorted

	// SRC is the measured correlation per API (indexed by APIID).
	SRC []float64
}

// Overlaps returns |C∩P|, |C∩S|, |P∩S| and the size of the triple
// intersection (Fig. 8's Venn accounting).
func (s *Selection) Overlaps() (cp, cs, ps, cps int) {
	inC := idSet(s.SetC)
	inP := idSet(s.SetP)
	inS := idSet(s.SetS)
	for id := range inC {
		if inP[id] {
			cp++
		}
		if inS[id] {
			cs++
		}
		if inP[id] && inS[id] {
			cps++
		}
	}
	for id := range inP {
		if inS[id] {
			ps++
		}
	}
	return cp, cs, ps, cps
}

func idSet(ids []framework.APIID) map[framework.APIID]bool {
	m := make(map[framework.APIID]bool, len(ids))
	for _, id := range ids {
		m[id] = true
	}
	return m
}

// SelectKeyAPIs runs the four-step strategy against measured usage stats.
func SelectKeyAPIs(u *framework.Universe, usage *UsageStats, cfg SelectionConfig) *Selection {
	sel := &Selection{Config: cfg, SRC: make([]float64, u.NumAPIs())}

	// Step 1 — Set-C: non-trivial |SRC|, excluding seldom-invoked APIs
	// (rare features invite over-fitting; §4.3). Hidden APIs cannot be
	// hooked and are never candidates. The per-API sweep is embarrassingly
	// parallel (each rank correlation reads one usage column and writes
	// one slot); membership is collected serially afterwards so Set-C
	// order never depends on scheduling.
	inC := make([]bool, u.NumAPIs())
	parallel.Run(u.NumAPIs(), 0, func(i int) {
		id := framework.APIID(i)
		if u.API(id).Hidden {
			return
		}
		src := usage.SRC(id)
		sel.SRC[i] = src
		if usage.UsageFraction(id) < cfg.SeldomFraction {
			return
		}
		if src >= cfg.SRCThreshold || src <= -cfg.SRCThreshold {
			inC[i] = true
		}
	})
	for i := range inC {
		if inC[i] {
			sel.SetC = append(sel.SetC, framework.APIID(i))
		}
	}

	// Step 2 — Set-P: the permission map (Axplorer/PScout stand-in).
	sel.SetP = u.RestrictedAPIs()

	// Step 3 — Set-S: sensitive-operation APIs.
	sel.SetS = u.SensitiveAPIs()

	// Step 4 — union.
	seen := make(map[framework.APIID]bool)
	for _, set := range [][]framework.APIID{sel.SetC, sel.SetP, sel.SetS} {
		for _, id := range set {
			if !seen[id] {
				seen[id] = true
				sel.Keys = append(sel.Keys, id)
			}
		}
	}
	sort.Slice(sel.Keys, func(i, j int) bool { return sel.Keys[i] < sel.Keys[j] })
	return sel
}

// TopCorrelated returns the n non-seldom APIs with the largest |SRC|,
// descending (the "top-n correlated" tracking sets of Figs. 5-7).
func TopCorrelated(u *framework.Universe, usage *UsageStats, n int, cfg SelectionConfig) []framework.APIID {
	type cand struct {
		id  framework.APIID
		abs float64
	}
	var cands []cand
	for i := 0; i < u.NumAPIs(); i++ {
		id := framework.APIID(i)
		if u.API(id).Hidden || usage.UsageFraction(id) < cfg.SeldomFraction {
			continue
		}
		src := usage.SRC(id)
		abs := src
		if abs < 0 {
			abs = -abs
		}
		cands = append(cands, cand{id, abs})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].abs != cands[j].abs {
			return cands[i].abs > cands[j].abs
		}
		return cands[i].id < cands[j].id
	})
	if n > len(cands) {
		n = len(cands)
	}
	out := make([]framework.APIID, n)
	for i := 0; i < n; i++ {
		out[i] = cands[i].id
	}
	return out
}

// Mode selects which feature families the vector carries (Fig. 10's A, P,
// I combinations).
type Mode uint8

const (
	// ModeA: tracked-API bits only.
	ModeA Mode = 1 << iota
	// ModeP: requested-permission bits.
	ModeP
	// ModeI: used-intent bits (receiver filters ∪ runtime sends).
	ModeI

	// ModeAPI is the deployed combination (A+P+I).
	ModeAPI = ModeA | ModeP | ModeI
	// ModeAP is A+P.
	ModeAP = ModeA | ModeP
	// ModeAI is A+I.
	ModeAI = ModeA | ModeI
	// ModePI is P+I.
	ModePI = ModeP | ModeI
)

func (m Mode) String() string {
	switch m {
	case ModeA:
		return "A"
	case ModeP:
		return "P"
	case ModeI:
		return "I"
	case ModeAP:
		return "A+P"
	case ModeAI:
		return "A+I"
	case ModePI:
		return "P+I"
	case ModeAPI:
		return "A+P+I"
	}
	return fmt.Sprintf("Mode(%d)", uint8(m))
}

// Extractor turns one app's dynamic log and manifest into a One-Hot
// feature vector with a fixed layout: [tracked APIs][permissions][intents]
// (families absent from the mode are omitted).
type Extractor struct {
	u        *framework.Universe
	mode     Mode
	encoding Encoding

	tracked []framework.APIID
	// apiSlot maps APIID to feature index+1 (0 = untracked), dense so the
	// projection path pays an array read per logged invocation, not a map
	// lookup.
	apiSlot []int32

	permBase   int
	intentBase int
	total      int
}

// NewExtractor builds an extractor over the tracked APIs for a mode.
func NewExtractor(u *framework.Universe, tracked []framework.APIID, mode Mode) (*Extractor, error) {
	if mode&ModeAPI == 0 {
		return nil, fmt.Errorf("features: mode %v selects no feature family", mode)
	}
	e := &Extractor{u: u, mode: mode, apiSlot: make([]int32, u.NumAPIs())}
	if mode&ModeA != 0 {
		e.tracked = append([]framework.APIID(nil), tracked...)
		sort.Slice(e.tracked, func(i, j int) bool { return e.tracked[i] < e.tracked[j] })
		for i, id := range e.tracked {
			if id < 0 || int(id) >= u.NumAPIs() {
				return nil, fmt.Errorf("features: tracked API %d out of range", id)
			}
			if e.apiSlot[id] != 0 {
				return nil, fmt.Errorf("features: duplicate tracked API %d", id)
			}
			e.apiSlot[id] = int32(i + 1)
		}
	}
	e.permBase = len(e.tracked)
	if mode&ModeP != 0 {
		e.intentBase = e.permBase + len(u.Permissions())
	} else {
		e.intentBase = e.permBase
	}
	e.total = e.intentBase
	if mode&ModeI != 0 {
		e.total += len(u.Intents())
	}
	if e.total == 0 {
		return nil, fmt.Errorf("features: empty feature space")
	}
	return e, nil
}

// NumFeatures returns the vector width.
func (e *Extractor) NumFeatures() int { return e.total }

// Mode returns the extractor's mode.
func (e *Extractor) Mode() Mode { return e.mode }

// TrackedAPIs returns the API feature order.
func (e *Extractor) TrackedAPIs() []framework.APIID { return e.tracked }

// Vector builds the feature vector for one analyzed app.
func (e *Extractor) Vector(log *hook.Log, man *manifest.Manifest) (ml.Vector, error) {
	return e.VectorInto(log, man, nil)
}

// VectorInto is Vector reusing dst's backing storage when it is wide
// enough (zeroing it first); otherwise a fresh vector is allocated. The
// serving pipeline recycles each vet context's vector scratch through
// here, so steady-state extraction allocates nothing. The returned vector
// aliases dst on reuse — callers that retain vectors must copy.
func (e *Extractor) VectorInto(log *hook.Log, man *manifest.Manifest, dst ml.Vector) (ml.Vector, error) {
	if log == nil || man == nil {
		return nil, fmt.Errorf("features: nil log or manifest")
	}
	return e.fill(log, man, dst), nil
}

// NewTriageExtractor builds the tier-1 static pre-screen extractor: the
// manifest-only feature families (requested permissions + receiver intent
// filters, layout [permissions][intents]) with no tracked APIs. Its
// vectors come from ManifestVectorInto, so the triage path never needs a
// dynamic log — or the emulation that produces one.
func NewTriageExtractor(u *framework.Universe) (*Extractor, error) {
	return NewExtractor(u, nil, ModePI)
}

// ManifestVectorInto builds the feature vector from the manifest alone,
// reusing dst's storage like VectorInto. It is only valid for extractors
// without the A family (there is no log to fill API bits from) — the
// triage extractor's scoring path. Intent bits carry the receiver filter
// actions only: runtime intent sends are a dynamic observation, which
// tier-1 by definition does not have, and the triage model is trained on
// exactly this manifest-only view so serving and training agree bit for
// bit.
func (e *Extractor) ManifestVectorInto(man *manifest.Manifest, dst ml.Vector) (ml.Vector, error) {
	if man == nil {
		return nil, fmt.Errorf("features: nil manifest")
	}
	if e.mode&ModeA != 0 {
		return nil, fmt.Errorf("features: mode %v needs a dynamic log; manifest-only vectors require a P/I-only extractor", e.mode)
	}
	v := dst
	if words := (e.total + 63) / 64; cap(v) >= words {
		v = v[:words]
		clear(v)
	} else {
		v = ml.NewVector(e.total)
	}
	if e.mode&ModeP != 0 {
		for _, name := range man.PermissionNames() {
			if id, ok := e.u.LookupPermission(name); ok {
				v.Set(e.permBase + int(id))
			}
		}
	}
	if e.mode&ModeI != 0 {
		for _, name := range man.ReceiverActions() {
			if id, ok := e.u.LookupIntent(name); ok {
				v.Set(e.intentBase + int(id))
			}
		}
	}
	return v, nil
}

// VectorFromFullLog projects the feature vector from a log recorded under
// a *wider* tracked set than the extractor's — typically the §4.3
// measurement pass, which tracks every hookable API. Because the emulation
// itself is registry-independent (the registry only filters what the hook
// layer records), a full-tracking log is an exact superset of any key-API
// log under the same profile and Monkey seed, so projecting it yields the
// same vector a dedicated re-emulation would — without paying for one.
//
// The log's registry must track every API the extractor tracks; otherwise
// API bits could be silently missing and an error is returned.
func (e *Extractor) VectorFromFullLog(log *hook.Log, man *manifest.Manifest) (ml.Vector, error) {
	if log == nil || man == nil {
		return nil, fmt.Errorf("features: nil log or manifest")
	}
	if err := e.CanProjectFrom(log.Registry()); err != nil {
		return nil, err
	}
	return e.fill(log, man, nil), nil
}

// CanProjectFrom reports whether logs recorded under reg cover every API
// this extractor tracks, i.e. VectorFromFullLog projection is exact. Corpus
// passes share one registry across all apps, so callers validating up front
// can project each log with plain Vector.
func (e *Extractor) CanProjectFrom(reg *hook.Registry) error {
	for _, id := range e.tracked {
		if !reg.Tracks(id) {
			return fmt.Errorf("features: log registry does not track API %d; cannot project", id)
		}
	}
	return nil
}

// fill is the shared vector construction; apiBits ignores logged APIs
// outside the tracked set, so it projects wider logs correctly. dst is
// recycled storage to fill (zeroed first) when wide enough, nil to
// allocate.
func (e *Extractor) fill(log *hook.Log, man *manifest.Manifest, dst ml.Vector) ml.Vector {
	v := dst
	if words := (e.total + 63) / 64; cap(v) >= words {
		v = v[:words]
		clear(v)
	} else {
		v = ml.NewVector(e.total)
	}
	if e.mode&ModeA != 0 {
		e.apiBits(log, v)
	}
	if e.mode&ModeP != 0 {
		for _, name := range man.PermissionNames() {
			if id, ok := e.u.LookupPermission(name); ok {
				v.Set(e.permBase + int(id))
			}
		}
	}
	if e.mode&ModeI != 0 {
		for _, name := range man.ReceiverActions() {
			if id, ok := e.u.LookupIntent(name); ok {
				v.Set(e.intentBase + int(id))
			}
		}
		for _, id := range log.SentIntents() {
			v.Set(e.intentBase + int(id))
		}
	}
	return v
}

// FeatureName labels feature index i for reporting (Fig. 13 uses
// "API:"/"Permission:"/"Intent:" prefixes).
func (e *Extractor) FeatureName(i int) string {
	switch {
	case i < e.permBase:
		if e.encoding == EncodingHistogram {
			api := e.tracked[i/HistogramBits]
			return fmt.Sprintf("API: %s >= %d", shortAPIName(e.u.API(api).Name),
				histogramThresholds[i%HistogramBits])
		}
		return "API: " + shortAPIName(e.u.API(e.tracked[i]).Name)
	case i < e.intentBase:
		return "Permission: " + shortPermName(e.u.Permission(framework.PermissionID(i-e.permBase)).Name)
	case i < e.total:
		return "Intent: " + shortIntentName(e.u.Intent(framework.IntentID(i-e.intentBase)).Name)
	}
	return fmt.Sprintf("feature-%d", i)
}

// shortAPIName renders Class_method aliases like the paper
// (SmsManager_sendTextMessage).
func shortAPIName(full string) string {
	lastDot := -1
	prevDot := -1
	for i := 0; i < len(full); i++ {
		if full[i] == '.' {
			prevDot = lastDot
			lastDot = i
		}
	}
	if prevDot < 0 {
		return full
	}
	return full[prevDot+1:lastDot] + "_" + full[lastDot+1:]
}

func shortPermName(full string) string {
	const prefix = "android.permission."
	if len(full) > len(prefix) && full[:len(prefix)] == prefix {
		return full[len(prefix):]
	}
	return full
}

func shortIntentName(full string) string {
	lastDot := -1
	for i := 0; i < len(full); i++ {
		if full[i] == '.' {
			lastDot = i
		}
	}
	if lastDot < 0 {
		return full
	}
	// Keep a middle qualifier for the well-known system actions, like
	// "wifi.STATE_CHANGE" in Fig. 13.
	start := 0
	for i := lastDot - 1; i >= 0; i-- {
		if full[i] == '.' {
			start = i + 1
			break
		}
	}
	return full[start:]
}
