package features

import (
	"testing"

	"apichecker/internal/framework"
)

// serialSetC recomputes step 1 of the selection strategy with a plain
// serial loop — the reference the parallel sweep inside SelectKeyAPIs must
// reproduce exactly, SRC slot for SRC slot and member for member.
func serialSetC(u *framework.Universe, usage *UsageStats, cfg SelectionConfig) ([]framework.APIID, []float64) {
	var setC []framework.APIID
	src := make([]float64, u.NumAPIs())
	for i := 0; i < u.NumAPIs(); i++ {
		id := framework.APIID(i)
		if u.API(id).Hidden {
			continue
		}
		s := usage.SRC(id)
		src[i] = s
		if usage.UsageFraction(id) < cfg.SeldomFraction {
			continue
		}
		if s >= cfg.SRCThreshold || s <= -cfg.SRCThreshold {
			setC = append(setC, id)
		}
	}
	return setC, src
}

// TestParallelSweepMatchesSerial: parallelizing the per-API Spearman sweep
// must not change the selection — same Set-C in the same (APIID) order,
// same recorded SRC values bit for bit.
func TestParallelSweepMatchesSerial(t *testing.T) {
	ids := visible(8)
	usage := fabricatedUsage(2000, 180, ids[:4], ids[4:])
	cfg := DefaultSelectionConfig()

	wantC, wantSRC := serialSetC(testU, usage, cfg)
	for trial := 0; trial < 5; trial++ { // rerun to shake out scheduling luck
		sel := SelectKeyAPIs(testU, usage, cfg)
		if len(sel.SetC) != len(wantC) {
			t.Fatalf("trial %d: Set-C size %d, serial reference %d", trial, len(sel.SetC), len(wantC))
		}
		for i := range wantC {
			if sel.SetC[i] != wantC[i] {
				t.Fatalf("trial %d: Set-C[%d] = %d, serial reference %d", trial, i, sel.SetC[i], wantC[i])
			}
		}
		for i := range wantSRC {
			if sel.SRC[i] != wantSRC[i] {
				t.Fatalf("trial %d: SRC[%d] = %v, serial reference %v", trial, i, sel.SRC[i], wantSRC[i])
			}
		}
	}
}
