package stats

import (
	"fmt"
	"sort"
)

// Summary describes a sample distribution (the Min/Mean/Median/Max boxes
// the paper annotates on its CDF figures).
type Summary struct {
	N      int
	Min    float64
	Max    float64
	Mean   float64
	Median float64
}

// Summarize computes a Summary; the zero Summary for empty input.
func Summarize(values []float64) Summary {
	if len(values) == 0 {
		return Summary{}
	}
	s := Summary{N: len(values), Min: values[0], Max: values[0]}
	sum := 0.0
	for _, v := range values {
		sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = sum / float64(len(values))
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.2f mean=%.2f median=%.2f max=%.2f",
		s.N, s.Min, s.Mean, s.Median, s.Max)
}

// Percentile returns the p-th percentile (0-100) by nearest-rank.
func Percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(p/100*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	X float64
	P float64
}

// CDF returns the empirical CDF sampled at up to points positions (evenly
// spaced ranks), always including the extremes.
func CDF(values []float64, points int) []CDFPoint {
	if len(values) == 0 || points <= 0 {
		return nil
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	if points > len(sorted) {
		points = len(sorted)
	}
	out := make([]CDFPoint, 0, points)
	for i := 0; i < points; i++ {
		rank := i * (len(sorted) - 1) / max(points-1, 1)
		out = append(out, CDFPoint{
			X: sorted[rank],
			P: float64(rank+1) / float64(len(sorted)),
		})
	}
	return out
}
