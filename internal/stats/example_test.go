package stats_test

import (
	"fmt"

	"apichecker/internal/stats"
)

// ExampleSpearmanSparse computes the SRC of an API whose invocation
// pattern concentrates in malware without materializing the dense
// per-app vectors: 40 of 10,000 apps invoke it, all malicious.
func ExampleSpearmanSparse() {
	values := make([]float64, 40)
	labels := make([]bool, 40)
	for i := range values {
		values[i] = float64(1000 + i) // invocation counts
		labels[i] = true
	}
	src := stats.SpearmanSparse(values, labels, 10000, 770)
	fmt.Printf("SRC = %.2f (non-trivial at |SRC| >= 0.2)\n", src)
	// Output:
	// SRC = 0.22 (non-trivial at |SRC| >= 0.2)
}

// ExampleFitLog fits the saturating tail of the tracking-cost curve.
func ExampleFitLog() {
	x := []float64{1000, 5000, 10000, 25000, 50000}
	y := make([]float64, len(x))
	for i, v := range x {
		y[i] = 6.4*ln(v) - 43.36 // the paper's Eq. 1 third segment
	}
	fit := stats.FitLog(x, y)
	fmt.Printf("t = %.1f*ln(n) + %.1f, R2 = %.2f\n", fit.A, fit.B, fit.R2)
	// Output:
	// t = 6.4*ln(n) + -43.4, R2 = 1.00
}

func ln(v float64) float64 {
	// tiny helper to keep the example self-contained
	lo, hi := 0.0, 64.0
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		if exp(mid) < v {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

func exp(x float64) float64 {
	term, sum := 1.0, 1.0
	for i := 1; i < 60; i++ {
		term *= x / float64(i)
		sum += term
	}
	return sum
}
