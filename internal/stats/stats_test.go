package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestRanks(t *testing.T) {
	got := Ranks([]float64{10, 20, 20, 5})
	want := []float64{2, 3.5, 3.5, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Ranks[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSpearmanPerfect(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{10, 20, 30, 40, 50}
	if got := Spearman(x, y); !almost(got, 1, 1e-12) {
		t.Errorf("Spearman = %f, want 1", got)
	}
	rev := []float64{50, 40, 30, 20, 10}
	if got := Spearman(x, rev); !almost(got, -1, 1e-12) {
		t.Errorf("Spearman = %f, want -1", got)
	}
	if got := Spearman(x, []float64{7, 7, 7, 7, 7}); got != 0 {
		t.Errorf("Spearman constant = %f", got)
	}
}

func TestSpearmanMonotoneInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := make([]float64, 100)
	y := make([]float64, 100)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = x[i] + 0.5*rng.NormFloat64()
	}
	base := Spearman(x, y)
	// Monotone transform of x must not change rank correlation.
	tx := make([]float64, len(x))
	for i := range x {
		tx[i] = math.Exp(x[i])
	}
	if got := Spearman(tx, y); !almost(got, base, 1e-12) {
		t.Errorf("Spearman not rank-invariant: %f vs %f", got, base)
	}
}

// SpearmanSparse must agree with the dense implementation.
func TestSpearmanSparseAgreesWithDense(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		total := 50 + rng.Intn(200)
		x := make([]float64, total)
		y := make([]float64, total)
		totalPos := 0
		var nzV []float64
		var nzL []bool
		for i := 0; i < total; i++ {
			if rng.Float64() < 0.3 {
				x[i] = float64(1 + rng.Intn(5))
			}
			lbl := rng.Float64() < 0.25
			if lbl {
				y[i] = 1
				totalPos++
			}
			if x[i] != 0 {
				nzV = append(nzV, x[i])
				nzL = append(nzL, lbl)
			}
		}
		dense := Spearman(x, y)
		sparse := SpearmanSparse(nzV, nzL, total, totalPos)
		return almost(dense, sparse, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSpearmanSparseEdgeCases(t *testing.T) {
	if got := SpearmanSparse(nil, nil, 0, 0); got != 0 {
		t.Errorf("empty = %f", got)
	}
	if got := SpearmanSparse(nil, nil, 100, 10); got != 0 {
		t.Errorf("all-zero variable = %f", got)
	}
	// Variable present only in positives: strong positive correlation.
	vals := []float64{1, 1, 1, 1, 1}
	labels := []bool{true, true, true, true, true}
	got := SpearmanSparse(vals, labels, 100, 10)
	if got <= 0.3 {
		t.Errorf("positive-only feature SRC = %f, want strongly positive", got)
	}
}

func TestFitLinear(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2.1, 4.0, 6.1, 7.9, 10.1}
	fit := FitLinear(x, y)
	if !almost(fit.A, 2, 0.1) || !almost(fit.B, 0, 0.3) {
		t.Errorf("fit = %+v", fit)
	}
	if fit.R2 < 0.99 {
		t.Errorf("R2 = %f", fit.R2)
	}
}

func TestFitPower(t *testing.T) {
	x := make([]float64, 20)
	y := make([]float64, 20)
	for i := range x {
		x[i] = float64(i + 1)
		y[i] = 3 * math.Pow(x[i], 1.7)
	}
	fit := FitPower(x, y)
	if !almost(fit.A, 3, 0.05) || !almost(fit.B, 1.7, 0.02) || fit.R2 < 0.999 {
		t.Errorf("power fit = %+v", fit)
	}
}

func TestFitLog(t *testing.T) {
	x := make([]float64, 30)
	y := make([]float64, 30)
	for i := range x {
		x[i] = float64(i + 1)
		y[i] = 6.4*math.Log(x[i]) - 43.36
	}
	fit := FitLog(x, y)
	if !almost(fit.A, 6.4, 0.01) || !almost(fit.B, -43.36, 0.05) || fit.R2 < 0.999 {
		t.Errorf("log fit = %+v", fit)
	}
}

func TestFitDegenerate(t *testing.T) {
	if fit := FitLinear(nil, nil); fit.A != 0 || fit.B != 0 {
		t.Errorf("empty fit = %+v", fit)
	}
	fit := FitLinear([]float64{3, 3, 3}, []float64{1, 2, 3})
	if fit.A != 0 {
		t.Errorf("constant-x fit slope = %f", fit.A)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.N != 4 || s.Min != 1 || s.Max != 4 || s.Mean != 2.5 || s.Median != 2.5 {
		t.Errorf("summary = %+v", s)
	}
	odd := Summarize([]float64{5, 1, 3})
	if odd.Median != 3 {
		t.Errorf("odd median = %f", odd.Median)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Errorf("empty summary = %+v", z)
	}
}

func TestPercentile(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := Percentile(vals, 50); got != 5 {
		t.Errorf("P50 = %f", got)
	}
	if got := Percentile(vals, 0); got != 1 {
		t.Errorf("P0 = %f", got)
	}
	if got := Percentile(vals, 100); got != 10 {
		t.Errorf("P100 = %f", got)
	}
}

func TestCDF(t *testing.T) {
	vals := []float64{3, 1, 2, 5, 4}
	pts := CDF(vals, 5)
	if len(pts) != 5 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].X != 1 || pts[len(pts)-1].X != 5 {
		t.Errorf("extremes = %v ... %v", pts[0], pts[len(pts)-1])
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].X < pts[i-1].X || pts[i].P < pts[i-1].P {
			t.Fatal("CDF not monotone")
		}
	}
	if pts[len(pts)-1].P != 1 {
		t.Errorf("final P = %f", pts[len(pts)-1].P)
	}
	if CDF(nil, 5) != nil {
		t.Error("empty CDF not nil")
	}
}

func TestSpearmanSparseIndicatorBitIdentical(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		total := 20 + rng.Intn(300)
		totalPos := rng.Intn(total + 1)
		m := rng.Intn(total + 1)
		labels := make([]bool, m)
		ones := make([]float64, m)
		for i := range labels {
			labels[i] = rng.Float64() < 0.3
			ones[i] = 1
		}
		general := SpearmanSparse(ones, labels, total, totalPos)
		fast := SpearmanSparseIndicator(labels, total, totalPos)
		// Bit-identical, not merely close: the indicator form performs
		// the same floating-point operations in the same order.
		return general == fast
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
