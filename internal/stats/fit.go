package stats

import "math"

// Fit is a fitted curve with its goodness.
type Fit struct {
	// A and B parameterize the model (see the fit functions).
	A, B float64
	// R2 is the coefficient of determination against the input data.
	R2 float64
}

// rSquared computes R² of predictions against observations.
func rSquared(y []float64, pred func(i int) float64) float64 {
	n := len(y)
	if n == 0 {
		return 0
	}
	mean := 0.0
	for _, v := range y {
		mean += v
	}
	mean /= float64(n)
	var ssRes, ssTot float64
	for i, v := range y {
		d := v - pred(i)
		ssRes += d * d
		dt := v - mean
		ssTot += dt * dt
	}
	if ssTot == 0 {
		return 1
	}
	return 1 - ssRes/ssTot
}

// FitLinear fits y = A*x + B by least squares.
func FitLinear(x, y []float64) Fit {
	n := float64(len(x))
	if n == 0 {
		return Fit{}
	}
	var sx, sy, sxx, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return Fit{B: sy / n, R2: rSquared(y, func(int) float64 { return sy / n })}
	}
	a := (n*sxy - sx*sy) / den
	b := (sy - a*sx) / n
	return Fit{A: a, B: b, R2: rSquared(y, func(i int) float64 { return a*x[i] + b })}
}

// FitPower fits y = A * x^B (log-log linear regression); requires positive
// data, non-positive points are skipped for the regression but still count
// toward R².
func FitPower(x, y []float64) Fit {
	var lx, ly []float64
	for i := range x {
		if x[i] > 0 && y[i] > 0 {
			lx = append(lx, math.Log(x[i]))
			ly = append(ly, math.Log(y[i]))
		}
	}
	lin := FitLinear(lx, ly)
	a := math.Exp(lin.B)
	b := lin.A
	return Fit{A: a, B: b, R2: rSquared(y, func(i int) float64 {
		if x[i] <= 0 {
			return 0
		}
		return a * math.Pow(x[i], b)
	})}
}

// FitLog fits y = A*ln(x) + B; requires positive x.
func FitLog(x, y []float64) Fit {
	lx := make([]float64, 0, len(x))
	ly := make([]float64, 0, len(y))
	for i := range x {
		if x[i] > 0 {
			lx = append(lx, math.Log(x[i]))
			ly = append(ly, y[i])
		}
	}
	lin := FitLinear(lx, ly)
	return Fit{A: lin.A, B: lin.B, R2: rSquared(y, func(i int) float64 {
		if x[i] <= 0 {
			return lin.B
		}
		return lin.A*math.Log(x[i]) + lin.B
	})}
}
