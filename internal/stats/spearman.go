// Package stats provides the statistical machinery behind the paper's
// measurement study: Spearman rank correlation with tie handling (the SRC
// feature-selection statistic of §4.3), least-squares curve fitting with R²
// (Fig. 6's tri-modal fit), and distribution summaries (the CDF figures).
package stats

import (
	"math"
	"sort"
)

// Ranks assigns average ranks (1-based) to the values, averaging ties.
func Ranks(values []float64) []float64 {
	n := len(values)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return values[idx[a]] < values[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && values[idx[j+1]] == values[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// Pearson computes the Pearson correlation coefficient; 0 when either side
// is constant.
func Pearson(x, y []float64) float64 {
	n := len(x)
	if n == 0 || n != len(y) {
		return 0
	}
	var sx, sy float64
	for i := 0; i < n; i++ {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/float64(n), sy/float64(n)
	var cov, vx, vy float64
	for i := 0; i < n; i++ {
		dx, dy := x[i]-mx, y[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

// Spearman computes the rank correlation with average-rank tie handling
// (the SRC of §4.3, the paper's [30]).
func Spearman(x, y []float64) float64 {
	return Pearson(Ranks(x), Ranks(y))
}

// SpearmanSparse computes Spearman between a mostly-zero non-negative
// variable and a binary label without materializing the dense vectors.
//
// nonzero holds the variable's non-zero values with their labels; total is
// the population size and totalPos the number of positive labels overall
// (zeros' labels are inferred). This is the fast path for computing SRC of
// one API's invocation counts across the whole corpus: most apps never
// invoke a given API.
func SpearmanSparse(nonzeroValues []float64, nonzeroLabels []bool, total, totalPos int) float64 {
	m := len(nonzeroValues)
	if m > total || total == 0 {
		return 0
	}
	zeros := total - m
	// Ranks of the variable: zeros tie at the bottom with average rank
	// (zeros+1)/2; non-zeros ranked above them.
	zeroRank := float64(zeros+1) / 2

	idx := make([]int, m)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return nonzeroValues[idx[a]] < nonzeroValues[idx[b]] })
	xr := make([]float64, m) // ranks of non-zero entries
	for i := 0; i < m; {
		j := i
		for j+1 < m && nonzeroValues[idx[j+1]] == nonzeroValues[idx[i]] {
			j++
		}
		avg := float64(zeros) + float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			xr[idx[k]] = avg
		}
		i = j + 1
	}

	// Label ranks: negatives tie, positives tie.
	neg := total - totalPos
	negRank := float64(neg+1) / 2
	posRank := float64(neg) + float64(totalPos+1)/2

	// Means of both rank vectors are (total+1)/2 exactly.
	mean := float64(total+1) / 2

	posNonzero := 0
	var cov, vx float64
	for i := 0; i < m; i++ {
		dx := xr[i] - mean
		var dy float64
		if nonzeroLabels[i] {
			dy = posRank - mean
			posNonzero++
		} else {
			dy = negRank - mean
		}
		cov += dx * dy
		vx += dx * dx
	}
	// Zero entries: dx is constant; labels split between pos and neg.
	posZero := totalPos - posNonzero
	negZero := zeros - posZero
	if posZero < 0 || negZero < 0 {
		return 0
	}
	dxz := zeroRank - mean
	cov += dxz * (float64(posZero)*(posRank-mean) + float64(negZero)*(negRank-mean))
	vx += float64(zeros) * dxz * dxz

	vy := float64(totalPos)*(posRank-mean)*(posRank-mean) + float64(neg)*(negRank-mean)*(negRank-mean)
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

// SpearmanSparseIndicator is SpearmanSparse for an indicator variable:
// every non-zero value is 1, so all non-zeros tie at a single rank and no
// sorting or rank vectors are needed. It performs the same floating-point
// operations in the same order as SpearmanSparse over an all-ones value
// vector, so results are bit-identical — only the sort and two slice
// allocations per call disappear. This is the hot path of the §4.3
// selection sweep, which ranks every API by presence/absence.
func SpearmanSparseIndicator(nonzeroLabels []bool, total, totalPos int) float64 {
	m := len(nonzeroLabels)
	if m > total || total == 0 {
		return 0
	}
	zeros := total - m
	zeroRank := float64(zeros+1) / 2
	// The single tie group spans positions 0..m-1 above the zeros.
	avg := float64(zeros) + float64(m-1)/2 + 1

	neg := total - totalPos
	negRank := float64(neg+1) / 2
	posRank := float64(neg) + float64(totalPos+1)/2
	mean := float64(total+1) / 2

	posNonzero := 0
	var cov, vx float64
	dx := avg - mean
	for _, l := range nonzeroLabels {
		var dy float64
		if l {
			dy = posRank - mean
			posNonzero++
		} else {
			dy = negRank - mean
		}
		cov += dx * dy
		vx += dx * dx
	}
	posZero := totalPos - posNonzero
	negZero := zeros - posZero
	if posZero < 0 || negZero < 0 {
		return 0
	}
	dxz := zeroRank - mean
	cov += dxz * (float64(posZero)*(posRank-mean) + float64(negZero)*(negRank-mean))
	vx += float64(zeros) * dxz * dxz

	vy := float64(totalPos)*(posRank-mean)*(posRank-mean) + float64(neg)*(negRank-mean)*(negRank-mean)
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}
