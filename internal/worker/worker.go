// Package worker is the claiming executor of the vetting cluster
// protocol: a pool of lanes that loop claim → execute → ack against a
// workqueue.Queue. The pool owns the lease discipline — heartbeats
// ticking while a long emulation runs, panic isolation so one poisoned
// submission nacks its lease instead of killing the process, and
// lease-loss propagation into the claim's context — while the Do callback
// owns what a claim *means* (vetsvc binds it to the staged vet pipeline).
//
// The split is the ROADMAP cluster shape rehearsed in-process; package
// cluster is the landed network half — its coordinator puts the queue
// behind the gateway's claim routes and its worker nodes run this same
// claim → execute → ack discipline over HTTP, with identical lease
// semantics (heartbeats, ErrLeaseLost cancellation, first-wins
// verdicts).
package worker

import (
	"context"
	"fmt"

	"time"

	"apichecker/internal/parallel"
	"apichecker/internal/workqueue"
)

// Config tunes one pool.
type Config struct {
	// Lanes is the claim-loop count; <= 0 selects 1.
	Lanes int

	// Do executes one claim. The context is canceled (with cause
	// workqueue.ErrLeaseLost) if the lease is lost mid-execution — the
	// item has been reclaimed and another lane owns it, so the callback
	// should abandon its work. Do may consult the lease (Item, Valid) but
	// must not settle it: the pool acks on return and nacks on panic.
	Do func(ctx context.Context, l *workqueue.Lease)

	// HeartbeatEvery, when positive, extends the lease on that period
	// while Do runs — the liveness signal that keeps a slow emulation's
	// lease from expiring. Zero disables heartbeats (a stalled lane's
	// lease then expires on the queue's TTL, which is what reclaim drills
	// want).
	HeartbeatEvery time.Duration

	// OnPanic, when set, observes each recovered Do panic after its lease
	// has been nacked.
	OnPanic func(it workqueue.Item, v any)
}

// Pool is a running set of claim lanes. Construct with Start; the pool
// runs until the queue's claims drain (Shutdown) or fail (Close), then
// Done closes.
type Pool struct {
	q    *workqueue.Queue
	cfg  Config
	done chan struct{}
}

// Start launches the lanes over q.
func Start(q *workqueue.Queue, cfg Config) *Pool {
	if cfg.Lanes <= 0 {
		cfg.Lanes = 1
	}
	p := &Pool{q: q, cfg: cfg, done: make(chan struct{})}
	go func() {
		parallel.Run(cfg.Lanes, cfg.Lanes, func(int) { p.lane() })
		close(p.done)
	}()
	return p
}

// Done is closed once every lane has exited (the queue reported drained
// or closed).
func (p *Pool) Done() <-chan struct{} { return p.done }

// Wait blocks until every lane has exited.
func (p *Pool) Wait() { <-p.done }

// lane is one claim loop: it runs until Claim reports the queue drained
// or closed. Claims use a background context on purpose — a service-level
// hard drain cancels the *vets* (through Do's context plumbing), not the
// claim loop, so aborted items still settle their leases.
func (p *Pool) lane() {
	for {
		l, err := p.q.Claim(context.Background())
		if err != nil {
			return
		}
		p.execute(l)
	}
}

// execute runs one claim under the lease discipline: heartbeats while Do
// runs, nack on panic, ack on return. An ack that fails with ErrLeaseLost
// means the item was reclaimed mid-run and settled elsewhere — the
// first-wins verdict record upstream suppresses the duplicate report, so
// the loss is dropped here.
func (p *Pool) execute(l *workqueue.Lease) {
	ctx, cancel := context.WithCancelCause(context.Background())
	stop := p.startHeartbeat(l, cancel)
	panicked := runIsolated(ctx, l, p.cfg.Do)
	stop()
	cancel(nil)
	if panicked != nil {
		if _, err := l.Nack(fmt.Errorf("worker: claim for seq %d panicked: %v", l.Item().Seq, panicked)); err == nil {
			if p.cfg.OnPanic != nil {
				p.cfg.OnPanic(l.Item(), panicked)
			}
		}
		return
	}
	l.Ack()
}

// runIsolated invokes Do with per-claim panic isolation, returning the
// recovered value (nil on a clean return).
func runIsolated(ctx context.Context, l *workqueue.Lease, do func(context.Context, *workqueue.Lease)) (panicked any) {
	defer func() { panicked = recover() }()
	do(ctx, l)
	return nil
}

// startHeartbeat extends the lease every HeartbeatEvery while the claim
// runs; if the lease is lost anyway (expired between beats, or the queue
// closed), it cancels the claim context with cause ErrLeaseLost so the
// vet aborts instead of burning a lane on a result nobody will accept.
// The returned stop joins the heartbeat goroutine.
func (p *Pool) startHeartbeat(l *workqueue.Lease, cancel context.CancelCauseFunc) (stop func()) {
	if p.cfg.HeartbeatEvery <= 0 {
		return func() {}
	}
	stopped := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(p.cfg.HeartbeatEvery)
		defer t.Stop()
		for {
			select {
			case <-stopped:
				return
			case <-t.C:
				if err := l.Heartbeat(); err != nil {
					cancel(workqueue.ErrLeaseLost)
					return
				}
			}
		}
	}()
	return func() {
		close(stopped)
		<-finished
	}
}
