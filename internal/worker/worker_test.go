package worker

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"apichecker/internal/workqueue"
)

// newQueue builds a queue, failing the test on error.
func newQueue(t *testing.T, cfg workqueue.Config) *workqueue.Queue {
	t.Helper()
	q, _, err := workqueue.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// enqueue admits one item through the slot protocol.
func enqueue(t *testing.T, q *workqueue.Queue, it workqueue.Item) int64 {
	t.Helper()
	if !q.TryAcquire() {
		t.Fatal("queue full")
	}
	seq, err := q.Enqueue(it)
	if err != nil {
		t.Fatal(err)
	}
	return seq
}

// waitDone waits for the pool to drain or fails the test.
func waitDone(t *testing.T, p *Pool) {
	t.Helper()
	select {
	case <-p.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("pool did not drain")
	}
}

func TestPoolExecutesAndAcksEveryClaim(t *testing.T) {
	q := newQueue(t, workqueue.Config{Capacity: 8})
	var (
		mu   sync.Mutex
		seen []int64
	)
	p := Start(q, Config{Lanes: 3, Do: func(_ context.Context, l *workqueue.Lease) {
		mu.Lock()
		seen = append(seen, l.Item().Seq)
		mu.Unlock()
	}})
	for i := 0; i < 6; i++ {
		enqueue(t, q, workqueue.Item{})
	}
	q.Shutdown()
	waitDone(t, p)

	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 6 {
		t.Fatalf("executed %d claims, want 6", len(seen))
	}
	if st := q.Stats(); st.Acked != 6 || st.Nacked != 0 || st.Depth != 0 || st.Leased != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPanicIsolationNacksToDeadLetter(t *testing.T) {
	var (
		deadMu sync.Mutex
		dead   []workqueue.Item
	)
	q := newQueue(t, workqueue.Config{Capacity: 8, MaxAttempts: 2, OnDead: func(it workqueue.Item, _ error) {
		deadMu.Lock()
		dead = append(dead, it)
		deadMu.Unlock()
	}})
	var (
		mu       sync.Mutex
		panics   int
		executed = map[int64]int{}
	)
	poison := enqueue(t, q, workqueue.Item{Key: "poison"})
	enqueue(t, q, workqueue.Item{Key: "fine"})
	p := Start(q, Config{
		Lanes: 1,
		Do: func(_ context.Context, l *workqueue.Lease) {
			mu.Lock()
			executed[l.Item().Seq]++
			mu.Unlock()
			if l.Item().Seq == poison {
				panic("poisoned archive")
			}
		},
		OnPanic: func(workqueue.Item, any) {
			mu.Lock()
			panics++
			mu.Unlock()
		},
	})
	q.Shutdown()
	waitDone(t, p) // the pool survived both panics: lanes still drained

	mu.Lock()
	defer mu.Unlock()
	deadMu.Lock()
	defer deadMu.Unlock()
	if executed[poison] != 2 {
		t.Fatalf("poison executed %d times, want MaxAttempts=2", executed[poison])
	}
	if panics != 2 {
		t.Fatalf("OnPanic fired %d times, want 2", panics)
	}
	if len(dead) != 1 || dead[0].Seq != poison {
		t.Fatalf("dead letters = %+v, want seq %d", dead, poison)
	}
	if st := q.Stats(); st.Acked != 1 || st.Nacked != 2 || st.DeadLettered != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestHeartbeatKeepsSlowClaimAlive(t *testing.T) {
	q := newQueue(t, workqueue.Config{Capacity: 4, LeaseTTL: 100 * time.Millisecond})
	enqueue(t, q, workqueue.Item{})
	p := Start(q, Config{
		Lanes:          2,
		HeartbeatEvery: 25 * time.Millisecond,
		Do: func(ctx context.Context, _ *workqueue.Lease) {
			// Several TTLs long; only heartbeats keep the lease.
			select {
			case <-time.After(400 * time.Millisecond):
			case <-ctx.Done():
				t.Errorf("claim context canceled: %v", context.Cause(ctx))
			}
		},
	})
	q.Shutdown()
	waitDone(t, p)
	if st := q.Stats(); st.Acked != 1 || st.Reclaimed != 0 {
		t.Fatalf("stats = %+v, want 1 ack and no reclaims", st)
	}
}

func TestLeaseLossCancelsClaimContext(t *testing.T) {
	q := newQueue(t, workqueue.Config{Capacity: 4, LeaseTTL: 50 * time.Millisecond, MaxAttempts: 5})
	enqueue(t, q, workqueue.Item{})
	var (
		mu     sync.Mutex
		causes []error
		runs   int
	)
	// Heartbeats slower than the TTL: the first claim's lease expires
	// before its first beat, a second lane reclaims it, and the stalled
	// claim's context must cancel with ErrLeaseLost.
	p := Start(q, Config{
		Lanes:          2,
		HeartbeatEvery: 200 * time.Millisecond,
		Do: func(ctx context.Context, _ *workqueue.Lease) {
			mu.Lock()
			runs++
			first := runs == 1
			mu.Unlock()
			if !first {
				return // re-issued claim finishes promptly
			}
			select {
			case <-ctx.Done():
				mu.Lock()
				causes = append(causes, context.Cause(ctx))
				mu.Unlock()
			case <-time.After(5 * time.Second):
				t.Error("stalled claim was never canceled")
			}
		},
	})
	q.Shutdown()
	waitDone(t, p)

	mu.Lock()
	defer mu.Unlock()
	if len(causes) != 1 || !errors.Is(causes[0], workqueue.ErrLeaseLost) {
		t.Fatalf("cancel causes = %v, want [ErrLeaseLost]", causes)
	}
	if st := q.Stats(); st.Reclaimed != 1 || st.Acked != 1 {
		t.Fatalf("stats = %+v, want 1 reclaim and exactly 1 ack", st)
	}
}
