package inspector

import (
	"testing"

	"apichecker/internal/behavior"
	"apichecker/internal/dataset"
	"apichecker/internal/emulator"
	"apichecker/internal/framework"
	"apichecker/internal/hook"
	"apichecker/internal/manifest"
	"apichecker/internal/monkey"
)

var testU = framework.MustGenerate(framework.TestConfig(3000))

func mustAPI(t *testing.T, name string) framework.APIID {
	t.Helper()
	id, ok := testU.LookupAPI(name)
	if !ok {
		t.Fatalf("API %s missing", name)
	}
	return id
}

func TestRuleValidation(t *testing.T) {
	if _, err := New(testU, []Rule{{Name: ""}}); err == nil {
		t.Error("empty-name rule accepted")
	}
	if _, err := New(testU, []Rule{{Name: "r"}}); err == nil {
		t.Error("match-everything rule accepted")
	}
	if _, err := New(testU, []Rule{{Name: "r", AllOf: []framework.APIID{1}}}); err != nil {
		t.Errorf("valid rule rejected: %v", err)
	}
}

func TestExpertRulesBuild(t *testing.T) {
	rules := ExpertRules(testU)
	if len(rules) < 6 {
		t.Fatalf("expert rules = %d, want a substantial set", len(rules))
	}
	ins, err := New(testU, rules)
	if err != nil {
		t.Fatal(err)
	}
	if len(ins.RequiredAPIs()) == 0 {
		t.Error("no required APIs")
	}
	// Required APIs must all be hookable.
	if _, err := hook.NewRegistry(testU, ins.RequiredAPIs()); err != nil {
		t.Errorf("required APIs not hookable: %v", err)
	}
}

func TestMatchAllOfAndIntents(t *testing.T) {
	sms := mustAPI(t, "android.telephony.SmsManager.sendTextMessage")
	recvIntent, ok := testU.LookupIntent("android.provider.Telephony.SMS_RECEIVED")
	if !ok {
		t.Fatal("intent missing")
	}
	ins, err := New(testU, ExpertRules(testU))
	if err != nil {
		t.Fatal(err)
	}
	reg := hook.MustNewRegistry(testU, ins.RequiredAPIs())
	log := hook.NewLog(reg)
	log.Observe(sms, 3)

	man := manifest.New("a.b", 1)
	man.Application.Receivers = []manifest.Receiver{{
		Name: "a.b.R",
		Filters: []manifest.IntentFilter{{Actions: []manifest.Action{
			{Name: testU.Intent(recvIntent).Name},
		}}},
	}}
	findings := ins.Inspect(log, man)
	found := false
	for _, f := range findings {
		if f.Rule == "premium-sms-fraud" {
			found = true
			if f.Severity != SeverityMalicious || len(f.Evidence) == 0 {
				t.Errorf("finding = %+v", f)
			}
		}
	}
	if !found {
		t.Error("premium-sms-fraud not matched")
	}
	if Verdict(findings) != SeverityMalicious {
		t.Errorf("verdict = %v", Verdict(findings))
	}
	// Without the receiver, no match.
	clean := ins.Inspect(log, manifest.New("a.b", 1))
	for _, f := range clean {
		if f.Rule == "premium-sms-fraud" {
			t.Error("rule matched without the intent")
		}
	}
}

func TestOrderedMatching(t *testing.T) {
	imei := mustAPI(t, "android.telephony.TelephonyManager.getDeviceId")
	conn := mustAPI(t, "java.net.HttpURLConnection.connect")
	ins, err := New(testU, []Rule{{
		Name: "seq", Severity: SeveritySuspicious,
		Ordered: []framework.APIID{imei, conn},
	}})
	if err != nil {
		t.Fatal(err)
	}
	reg := hook.MustNewRegistry(testU, []framework.APIID{imei, conn})

	// Right order: identity first, network second.
	log := hook.NewLog(reg)
	log.Observe(imei, 1)
	log.Observe(conn, 1)
	if got := ins.Inspect(log, manifest.New("a.b", 1)); len(got) != 1 {
		t.Errorf("ordered match failed: %v", got)
	}

	// Wrong order: network first.
	log2 := hook.NewLog(reg)
	log2.Observe(conn, 1)
	log2.Observe(imei, 1)
	if got := ins.Inspect(log2, manifest.New("a.b", 1)); len(got) != 0 {
		t.Errorf("reverse order matched: %v", got)
	}
}

func TestVerdictSeverity(t *testing.T) {
	if Verdict(nil) != SeverityInfo {
		t.Error("empty verdict not info")
	}
	fs := []Finding{{Severity: SeverityInfo}, {Severity: SeveritySuspicious}}
	if Verdict(fs) != SeveritySuspicious {
		t.Error("verdict not max severity")
	}
}

// TestInspectorOnCorpus: the rule set must flag a meaningful share of
// malware while staying quiet on most benign apps — and clearly trail the
// ML pipeline (the reason APICHECKER exists).
func TestInspectorOnCorpus(t *testing.T) {
	ins, err := New(testU, ExpertRules(testU))
	if err != nil {
		t.Fatal(err)
	}
	reg := hook.MustNewRegistry(testU, ins.RequiredAPIs())
	emu := emulator.New(emulator.GoogleEmulator, reg)

	cfg := dataset.DefaultConfig()
	cfg.NumApps = 600
	corpus, err := dataset.Generate(testU, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var tp, fp, tn, fn int
	for i := 0; i < corpus.Len(); i++ {
		p := corpus.Program(i)
		res, err := emu.Run(p, monkey.ProductionConfig(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		man, err := p.Manifest(testU)
		if err != nil {
			t.Fatal(err)
		}
		flagged := Verdict(ins.Inspect(res.Log, man)) >= SeveritySuspicious
		truth := corpus.Apps[i].Label == behavior.Malicious
		switch {
		case flagged && truth:
			tp++
		case flagged && !truth:
			fp++
		case !flagged && !truth:
			tn++
		default:
			fn++
		}
	}
	recall := float64(tp) / float64(tp+fn)
	benignFlagRate := float64(fp) / float64(fp+tn)
	t.Logf("expert rules: recall %.2f, benign flag rate %.3f (tp=%d fp=%d tn=%d fn=%d)",
		recall, benignFlagRate, tp, fp, tn, fn)
	if recall < 0.3 {
		t.Errorf("expert rules recall %.2f too low to be a credible 2014 baseline", recall)
	}
	if recall > 0.95 {
		t.Errorf("expert rules recall %.2f implausibly high — rules should lag novel malware", recall)
	}
	if benignFlagRate > 0.25 {
		t.Errorf("benign flag rate %.3f too noisy", benignFlagRate)
	}
}
