package inspector

import "apichecker/internal/framework"

// ExpertRules builds the 2014-era T-Market rule set against a universe,
// anchored on the well-known API/permission/intent names (§2: rules encode
// analysts' intuition that certain invocation patterns imply threats).
// Rules referencing names absent from the universe are skipped, so the set
// degrades gracefully on small test universes.
func ExpertRules(u *framework.Universe) []Rule {
	api := func(name string) (framework.APIID, bool) { return u.LookupAPI(name) }
	perm := func(name string) (framework.PermissionID, bool) { return u.LookupPermission(name) }
	intent := func(name string) (framework.IntentID, bool) { return u.LookupIntent(name) }

	var rules []Rule
	add := func(r Rule, ok bool) {
		if ok {
			rules = append(rules, r)
		}
	}

	// Premium-SMS fraud: sends texts while intercepting carrier replies.
	if sms, ok1 := api("android.telephony.SmsManager.sendTextMessage"); ok1 {
		if recv, ok2 := intent("android.provider.Telephony.SMS_RECEIVED"); ok2 {
			add(Rule{
				Name:        "premium-sms-fraud",
				Description: "sends SMS and intercepts incoming SMS broadcasts",
				Severity:    SeverityMalicious,
				AllOf:       []framework.APIID{sms},
				Intents:     []framework.IntentID{recv},
			}, true)
		}
		if multi, ok2 := api("android.telephony.SmsManager.sendMultipartTextMessage"); ok2 {
			add(Rule{
				Name:        "sms-burst",
				Description: "uses both single and multipart SMS send APIs",
				Severity:    SeveritySuspicious,
				AllOf:       []framework.APIID{sms, multi},
			}, true)
		}
	}

	// Device-identity harvesting followed by network exfiltration, in
	// that order.
	imei, okIMEI := api("android.telephony.TelephonyManager.getDeviceId")
	mac, okMAC := api("android.net.wifi.WifiInfo.getMacAddress")
	conn, okConn := api("java.net.HttpURLConnection.connect")
	if okIMEI && okConn {
		add(Rule{
			Name:        "identity-exfiltration",
			Description: "reads device identity then opens a network connection",
			Severity:    SeveritySuspicious,
			Ordered:     []framework.APIID{imei, conn},
		}, true)
	}
	if okMAC && okConn {
		add(Rule{
			Name:        "mac-exfiltration",
			Description: "reads MAC address then opens a network connection",
			Severity:    SeveritySuspicious,
			Ordered:     []framework.APIID{mac, conn},
		}, true)
	}

	// Ransomware: crypto plus device-admin lock.
	if cipher, ok1 := api("javax.crypto.Cipher.doFinal"); ok1 {
		if lock, ok2 := api("android.app.admin.DevicePolicyManager.lockNow"); ok2 {
			add(Rule{
				Name:        "crypto-locker",
				Description: "encrypts data and locks the device",
				Severity:    SeverityMalicious,
				AllOf:       []framework.APIID{cipher, lock},
			}, true)
		}
	}

	// Overlay attack: draws system windows while watching running tasks.
	if addView, ok1 := api("android.view.WindowManager.addView"); ok1 {
		if tasks, ok2 := api("android.app.ActivityManager.getRunningTasks"); ok2 {
			if alert, ok3 := perm("android.permission.SYSTEM_ALERT_WINDOW"); ok3 {
				add(Rule{
					Name:        "overlay-hijack",
					Description: "system overlay plus foreground-task probing",
					Severity:    SeverityMalicious,
					AllOf:       []framework.APIID{addView, tasks},
					Permissions: []framework.PermissionID{alert},
				}, true)
			}
		}
	}

	// Privilege escalation: shell execution of any flavour.
	if exec, ok1 := api("java.lang.Runtime.exec"); ok1 {
		pb, ok2 := api("java.lang.ProcessBuilder.start")
		anyOf := []framework.APIID{exec}
		if ok2 {
			anyOf = append(anyOf, pb)
		}
		add(Rule{
			Name:        "shell-execution",
			Description: "executes shell commands",
			Severity:    SeveritySuspicious,
			AnyOf:       anyOf,
		}, true)
	}

	// Update attack: dynamic code loading plus boot persistence.
	if loader, ok1 := api("dalvik.system.DexClassLoader.loadClass"); ok1 {
		if boot, ok2 := intent("android.intent.action.BOOT_COMPLETED"); ok2 {
			add(Rule{
				Name:        "dynamic-payload-persistence",
				Description: "loads code at runtime and persists across reboots",
				Severity:    SeverityMalicious,
				AllOf:       []framework.APIID{loader},
				Intents:     []framework.IntentID{boot},
			}, true)
		}
	}

	// Admin hijack: device-admin activation broadcast registration.
	if admin, ok := intent("android.app.action.DEVICE_ADMIN_ENABLED"); ok {
		if bind, ok2 := perm("android.permission.BIND_DEVICE_ADMIN"); ok2 {
			add(Rule{
				Name:        "device-admin-grab",
				Description: "registers for device-admin activation with the bind permission",
				Severity:    SeveritySuspicious,
				Permissions: []framework.PermissionID{bind},
				Intents:     []framework.IntentID{admin},
			}, true)
		}
	}

	// Contact scraping into the network.
	if contacts, ok1 := api("android.content.ContentResolver.query"); ok1 && okConn {
		if readC, ok2 := perm("android.permission.READ_CONTACTS"); ok2 {
			add(Rule{
				Name:        "contact-scraper",
				Description: "queries contacts and talks to the network",
				Severity:    SeveritySuspicious,
				Ordered:     []framework.APIID{contacts, conn},
				Permissions: []framework.PermissionID{readC},
			}, true)
		}
	}

	return rules
}
