// Package inspector implements T-Market's pre-ML "expert-informed API
// inspection" (§2): security analysts curate rules over invocation
// patterns — combinations and orders of selected APIs, optionally
// conditioned on requested permissions — whose presence implies a threat.
//
// APICHECKER was built to replace this step because rule curation does not
// scale and rules lag novel malware; the inspector therefore doubles as
// the "T-Market 2014" comparison row in the regenerated Table 1. It is
// also still useful in production as an explainable second opinion: each
// finding names the rule and the evidence.
package inspector

import (
	"fmt"
	"sort"

	"apichecker/internal/framework"
	"apichecker/internal/hook"
	"apichecker/internal/manifest"
)

// Severity grades a finding.
type Severity uint8

const (
	// SeverityInfo findings are informational.
	SeverityInfo Severity = iota
	// SeveritySuspicious findings warrant review.
	SeveritySuspicious
	// SeverityMalicious findings reject the submission by themselves.
	SeverityMalicious
)

func (s Severity) String() string {
	switch s {
	case SeverityInfo:
		return "info"
	case SeveritySuspicious:
		return "suspicious"
	case SeverityMalicious:
		return "malicious"
	}
	return fmt.Sprintf("Severity(%d)", uint8(s))
}

// Rule is one expert-curated invocation pattern.
type Rule struct {
	Name        string
	Description string
	Severity    Severity

	// AllOf: every API must have been invoked.
	AllOf []framework.APIID
	// AnyOf: at least one must have been invoked (ignored when empty).
	AnyOf []framework.APIID
	// Ordered: the APIs must have been *first observed* in this order
	// (the paper's "orders" of invocations). Ignored when empty.
	Ordered []framework.APIID
	// Permissions that must be requested in the manifest.
	Permissions []framework.PermissionID
	// Intents that must be registered or sent.
	Intents []framework.IntentID
}

// Validate checks the rule is well-formed.
func (r *Rule) Validate() error {
	if r.Name == "" {
		return fmt.Errorf("inspector: rule with empty name")
	}
	if len(r.AllOf)+len(r.AnyOf)+len(r.Ordered)+len(r.Permissions)+len(r.Intents) == 0 {
		return fmt.Errorf("inspector: rule %s matches everything", r.Name)
	}
	return nil
}

// Finding is one matched rule with its evidence.
type Finding struct {
	Rule     string
	Severity Severity
	Evidence []string
}

// Inspector evaluates a rule set against dynamic-analysis output.
type Inspector struct {
	u     *framework.Universe
	rules []Rule
}

// New builds an inspector; all rules must validate.
func New(u *framework.Universe, rules []Rule) (*Inspector, error) {
	for i := range rules {
		if err := rules[i].Validate(); err != nil {
			return nil, err
		}
	}
	return &Inspector{u: u, rules: rules}, nil
}

// Rules returns the rule set.
func (ins *Inspector) Rules() []Rule { return ins.rules }

// Inspect evaluates every rule against one app's hook log and manifest.
func (ins *Inspector) Inspect(log *hook.Log, man *manifest.Manifest) []Finding {
	var out []Finding
	invoked := make(map[framework.APIID]bool)
	firstSeen := make(map[framework.APIID]int)
	for i, id := range log.InvokedAPIs() {
		invoked[id] = true
		firstSeen[id] = i
	}
	perms := make(map[framework.PermissionID]bool)
	if man != nil {
		for _, name := range man.PermissionNames() {
			if id, ok := ins.u.LookupPermission(name); ok {
				perms[id] = true
			}
		}
	}
	intents := make(map[framework.IntentID]bool)
	for _, id := range log.SentIntents() {
		intents[id] = true
	}
	if man != nil {
		for _, name := range man.ReceiverActions() {
			if id, ok := ins.u.LookupIntent(name); ok {
				intents[id] = true
			}
		}
	}

	for i := range ins.rules {
		if f, ok := ins.match(&ins.rules[i], invoked, firstSeen, perms, intents); ok {
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Severity != out[j].Severity {
			return out[i].Severity > out[j].Severity
		}
		return out[i].Rule < out[j].Rule
	})
	return out
}

func (ins *Inspector) match(r *Rule, invoked map[framework.APIID]bool,
	firstSeen map[framework.APIID]int,
	perms map[framework.PermissionID]bool,
	intents map[framework.IntentID]bool) (Finding, bool) {

	f := Finding{Rule: r.Name, Severity: r.Severity}
	for _, id := range r.AllOf {
		if !invoked[id] {
			return f, false
		}
		f.Evidence = append(f.Evidence, "api:"+ins.u.API(id).Name)
	}
	if len(r.AnyOf) > 0 {
		hit := false
		for _, id := range r.AnyOf {
			if invoked[id] {
				hit = true
				f.Evidence = append(f.Evidence, "api:"+ins.u.API(id).Name)
				break
			}
		}
		if !hit {
			return f, false
		}
	}
	if len(r.Ordered) > 0 {
		prev := -1
		for _, id := range r.Ordered {
			pos, ok := firstSeen[id]
			if !ok || pos < prev {
				return f, false
			}
			prev = pos
			f.Evidence = append(f.Evidence, "seq:"+ins.u.API(id).Name)
		}
	}
	for _, id := range r.Permissions {
		if !perms[id] {
			return f, false
		}
		f.Evidence = append(f.Evidence, "perm:"+ins.u.Permission(id).Name)
	}
	for _, id := range r.Intents {
		if !intents[id] {
			return f, false
		}
		f.Evidence = append(f.Evidence, "intent:"+ins.u.Intent(id).Name)
	}
	return f, true
}

// Verdict reduces findings to a review decision: any malicious finding
// rejects; suspicious findings flag for manual review.
func Verdict(findings []Finding) Severity {
	worst := SeverityInfo
	for _, f := range findings {
		if f.Severity > worst {
			worst = f.Severity
		}
	}
	return worst
}

// RequiredAPIs returns the distinct APIs across the rule set — the set an
// inspection deployment must hook.
func (ins *Inspector) RequiredAPIs() []framework.APIID {
	seen := make(map[framework.APIID]bool)
	var out []framework.APIID
	add := func(ids []framework.APIID) {
		for _, id := range ids {
			if !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
	}
	for i := range ins.rules {
		add(ins.rules[i].AllOf)
		add(ins.rules[i].AnyOf)
		add(ins.rules[i].Ordered)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
