// Package framework models the Android framework API surface that
// APICHECKER selects features from: a universe of ~50K framework APIs,
// the permissions that protect some of them, and the intent actions apps
// exchange over Binder.
//
// The real Android SDK is not available to a pure-Go reproduction, so the
// universe is generated deterministically from a seed. Its *shape* follows
// the measurements reported in the paper (EuroSys'20, §4): a heavily skewed
// invocation-popularity distribution, a small population of APIs whose use
// correlates with malice, ~112 APIs guarded by restrictive (dangerous or
// signature) permissions, ~70 APIs performing sensitive operations in five
// categories, and a dependency graph in which ~9.6% of all APIs are
// internally implemented on top of the key APIs.
package framework

import "fmt"

// APIID indexes an API inside a Universe. IDs are dense, stable for a given
// (seed, config) pair, and usable as feature indices.
type APIID int32

// NoAPI is the sentinel for "no API".
const NoAPI APIID = -1

// PermissionID indexes a Permission inside a Universe.
type PermissionID int32

// NoPermission marks APIs that need no permission.
const NoPermission PermissionID = -1

// IntentID indexes an intent action inside a Universe.
type IntentID int32

// ProtectionLevel mirrors Android's permission protection levels (§4.4
// step 2). Dangerous- and signature-level permissions are "restrictive":
// APIs they guard form Set-P.
type ProtectionLevel uint8

const (
	// ProtectionNormal is granted automatically at install time.
	ProtectionNormal ProtectionLevel = iota
	// ProtectionDangerous guards sensitive user data (SMS, camera,
	// location, ...) and requires an explicit user grant.
	ProtectionDangerous
	// ProtectionSignature is only granted to apps signed with the
	// platform key.
	ProtectionSignature
)

// Restrictive reports whether the level is dangerous or signature, i.e.
// whether APIs guarded by it belong in Set-P.
func (l ProtectionLevel) Restrictive() bool {
	return l == ProtectionDangerous || l == ProtectionSignature
}

func (l ProtectionLevel) String() string {
	switch l {
	case ProtectionNormal:
		return "normal"
	case ProtectionDangerous:
		return "dangerous"
	case ProtectionSignature:
		return "signature"
	}
	return fmt.Sprintf("ProtectionLevel(%d)", uint8(l))
}

// SensitiveCategory classifies APIs that perform the five kinds of
// sensitive operations the paper identifies for Set-S (§4.4 step 3).
type SensitiveCategory uint8

const (
	// CategoryNone marks APIs with no sensitive-operation role.
	CategoryNone SensitiveCategory = iota
	// CategoryPrivilegeEscalation covers shell-command execution and
	// similar privilege-escalation surfaces.
	CategoryPrivilegeEscalation
	// CategoryDataStore covers database operations and file read/write
	// commonly used in privacy-leakage attacks.
	CategoryDataStore
	// CategoryWindowOverlay covers window/overlay creation used in
	// Activity-hijacking and cloak-and-dagger attacks.
	CategoryWindowOverlay
	// CategoryCrypto covers cryptographic operations used by ransomware.
	CategoryCrypto
	// CategoryDynamicCode covers dynamic code loading used in update
	// attacks.
	CategoryDynamicCode
)

// NumSensitiveCategories counts the non-None categories.
const NumSensitiveCategories = 5

func (c SensitiveCategory) String() string {
	switch c {
	case CategoryNone:
		return "none"
	case CategoryPrivilegeEscalation:
		return "privilege-escalation"
	case CategoryDataStore:
		return "data-store"
	case CategoryWindowOverlay:
		return "window-overlay"
	case CategoryCrypto:
		return "crypto"
	case CategoryDynamicCode:
		return "dynamic-code"
	}
	return fmt.Sprintf("SensitiveCategory(%d)", uint8(c))
}

// CorpusRole is a corpus-shaping hint consumed ONLY by the synthetic
// behaviour generator (internal/behavior and internal/dataset). It encodes
// which statistical population an API belongs to so that the generated
// corpus reproduces the paper's measured SRC spectrum (Figs. 4-5).
//
// Detection code (internal/features, internal/ml, internal/core) must never
// read this field: the detector only sees invocation logs, manifests and
// labels, exactly like the real system.
type CorpusRole uint8

const (
	// RoleNeutral APIs are invoked independently of malice.
	RoleNeutral CorpusRole = iota
	// RoleMaliceSignal APIs are invoked preferentially by malware;
	// they are the population from which Set-C's positive-SRC
	// (~247 APIs) emerges.
	RoleMaliceSignal
	// RoleBenignNiche APIs are rare APIs used by small slices of benign
	// apps only; they produce the ~2.5K seldom-invoked negative-SRC tail.
	RoleBenignNiche
	// RoleBenignCommon APIs are ubiquitous operations (file I/O, UI)
	// invoked by nearly every benign app and slightly less uniformly by
	// malware; the 13 frequent negative-SRC APIs come from here.
	RoleBenignCommon
)

func (r CorpusRole) String() string {
	switch r {
	case RoleNeutral:
		return "neutral"
	case RoleMaliceSignal:
		return "malice-signal"
	case RoleBenignNiche:
		return "benign-niche"
	case RoleBenignCommon:
		return "benign-common"
	}
	return fmt.Sprintf("CorpusRole(%d)", uint8(r))
}

// API is one framework API (a method on a framework class).
type API struct {
	ID   APIID
	Name string // fully qualified, e.g. "android.telephony.SmsManager.sendTextMessage"

	// Permission is the permission required to invoke the API, or
	// NoPermission. APIs guarded by a restrictive permission form Set-P.
	Permission PermissionID

	// Category is the sensitive-operation category (Set-S), if any.
	Category SensitiveCategory

	// Hidden marks internal/hidden APIs that are not part of the public
	// SDK and can only be reached via Java reflection (§4.5). Hidden
	// APIs cannot be hooked by name-based API tracking.
	Hidden bool

	// Level is the SDK level at which the API was introduced. The
	// universe starts at level 1; SDK evolution (§5.3) appends APIs with
	// higher levels.
	Level int

	// Popularity is the relative invocation rate of the API across the
	// app population (arbitrary units; see internal/behavior for how it
	// becomes invocation counts). The distribution is heavily skewed:
	// a few hundred hot APIs carry ~90% of all invocation volume.
	Popularity float64

	// Role is a corpus-shaping hint for the synthetic generator only.
	// See CorpusRole.
	Role CorpusRole

	// BenignRate and MaliceRate are corpus-shaping hints for the
	// synthetic generator only: the probability that a benign
	// (respectively malicious) app invokes this API at least once during
	// a full UI exploration. Together with Popularity they are calibrated
	// so that the corpus-wide statistics (SRC spectrum, invocation-volume
	// distribution, hook-overhead curves) match the paper's measurements.
	// Like Role, they must never be read by detection code.
	BenignRate float64
	MaliceRate float64
}

// Permission is one Android permission.
type Permission struct {
	ID    PermissionID
	Name  string // e.g. "android.permission.SEND_SMS"
	Level ProtectionLevel
}

// Intent is one intent action (Android's Binder-based IPC vocabulary).
type Intent struct {
	ID   IntentID
	Name string // e.g. "android.provider.Telephony.SMS_RECEIVED"

	// System marks broadcast actions originated by the system
	// (BOOT_COMPLETED, SMS_RECEIVED, ...); monitoring them is a classic
	// malware trait (§5.2).
	System bool
}
