package framework

import "math/rand"

// EvolutionReport summarizes one SDK release applied via Evolve.
type EvolutionReport struct {
	Level         int // the new SDK level
	NewAPIs       int
	NewSignal     int // new APIs malware will gravitate to
	NewRestricted int // new APIs guarded by restrictive permissions
	NewSensitive  int // new APIs in sensitive categories
}

// Evolve advances the universe by one SDK level, appending new framework
// APIs the way periodic Android SDK releases do (§5.3). Most additions are
// neutral; a few open new restricted/sensitive surface, and occasionally a
// new API becomes a malware magnet (a new RoleMaliceSignal member), which is
// what makes the key-API set drift between retraining rounds (Fig. 14).
//
// Existing APIIDs remain valid; new APIs get fresh ids at the tail.
func (u *Universe) Evolve(seed int64) EvolutionReport {
	rng := rand.New(rand.NewSource(seed ^ int64(u.level)*0x9e3779b9))
	u.history = append(u.history, seed)
	u.level++
	rep := EvolutionReport{Level: u.level}

	newAPIs := 60 + rng.Intn(120)
	// Scale additions down for test-sized universes.
	if u.cfg.NumAPIs < 20000 {
		newAPIs = 10 + rng.Intn(20)
	}
	for i := 0; i < newAPIs; i++ {
		a := API{
			Name:       u.uniqueName(rng),
			Permission: NoPermission,
			Role:       RoleNeutral,
			Popularity: float64(neutralPopMin) + rng.Float64()*float64(neutralPopMax-neutralPopMin),
		}
		rate := 0.001 + 0.03*rng.Float64()
		a.BenignRate, a.MaliceRate = rate, rate
		switch r := rng.Float64(); {
		case r < 0.03:
			// A new API that malware adopts quickly.
			a.Role = RoleMaliceSignal
			a.Popularity = signalPopularity * lognorm(rng, 0.7)
			a.BenignRate = 0.004 + 0.02*rng.Float64()
			a.MaliceRate = 0.30 + 0.40*rng.Float64()
			rep.NewSignal++
		case r < 0.08:
			a.Permission = u.randomRestrictivePermission(rng)
			a.Popularity = guardPopularity * lognorm(rng, 0.6)
			a.BenignRate = 0.04 + 0.04*rng.Float64()
			a.MaliceRate = 0.08 + 0.08*rng.Float64()
			rep.NewRestricted++
		case r < 0.11:
			a.Category = SensitiveCategory(1 + rng.Intn(NumSensitiveCategories))
			a.Popularity = guardPopularity * lognorm(rng, 0.6)
			a.BenignRate = 0.04 + 0.04*rng.Float64()
			a.MaliceRate = 0.08 + 0.08*rng.Float64()
			rep.NewSensitive++
		}
		a.ID = APIID(len(u.apis))
		a.Level = u.level
		u.apis = append(u.apis, a)
		u.byName[a.Name] = a.ID
		rep.NewAPIs++
	}

	// New APIs occasionally wrap existing key surface internally.
	keys := u.DesignedKeyAPIs()
	if len(keys) > 0 {
		for i := 0; i < rep.NewAPIs/10; i++ {
			id := APIID(len(u.apis) - 1 - rng.Intn(rep.NewAPIs))
			if _, dup := u.implementedVia[id]; dup {
				continue
			}
			u.implementedVia[id] = []APIID{keys[rng.Intn(len(keys))]}
		}
	}
	return rep
}
