package framework

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func testUniverse(t *testing.T) *Universe {
	t.Helper()
	u, err := Generate(TestConfig(3000))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return u
}

func TestGenerateCounts(t *testing.T) {
	cfg := TestConfig(3000)
	u := testUniverse(t)
	if got := u.NumAPIs(); got != cfg.NumAPIs {
		t.Errorf("NumAPIs = %d, want %d", got, cfg.NumAPIs)
	}
	if got := len(u.Permissions()); got != cfg.NumPermissions {
		t.Errorf("permissions = %d, want %d", got, cfg.NumPermissions)
	}
	if got := len(u.Intents()); got != cfg.NumIntents {
		t.Errorf("intents = %d, want %d", got, cfg.NumIntents)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := TestConfig(2000)
	u1 := MustGenerate(cfg)
	u2 := MustGenerate(cfg)
	if u1.NumAPIs() != u2.NumAPIs() {
		t.Fatalf("sizes differ: %d vs %d", u1.NumAPIs(), u2.NumAPIs())
	}
	for i := 0; i < u1.NumAPIs(); i++ {
		a, b := u1.API(APIID(i)), u2.API(APIID(i))
		if *a != *b {
			t.Fatalf("API %d differs:\n%+v\n%+v", i, a, b)
		}
	}
}

func TestGenerateSeedChangesUniverse(t *testing.T) {
	cfg := TestConfig(2000)
	u1 := MustGenerate(cfg)
	cfg.Seed = 99
	u2 := MustGenerate(cfg)
	diff := 0
	for i := 0; i < u1.NumAPIs(); i++ {
		if u1.API(APIID(i)).Name != u2.API(APIID(i)).Name {
			diff++
		}
	}
	if diff == 0 {
		t.Error("different seeds produced identical universes")
	}
}

func TestWellKnownAPIsPresent(t *testing.T) {
	u := testUniverse(t)
	for _, wk := range wellKnownAPIs {
		id, ok := u.LookupAPI(wk.Name)
		if !ok {
			t.Errorf("well-known API %q missing", wk.Name)
			continue
		}
		a := u.API(id)
		if wk.Permission != "" {
			pid, ok := u.LookupPermission(wk.Permission)
			if !ok || a.Permission != pid {
				t.Errorf("%s: permission = %v, want %q", wk.Name, a.Permission, wk.Permission)
			}
		}
	}
	// The paper's headline example must be hot-path resolvable.
	if _, ok := u.LookupAPI("android.telephony.SmsManager.sendTextMessage"); !ok {
		t.Error("sendTextMessage anchor missing")
	}
}

func TestUniqueNames(t *testing.T) {
	u := testUniverse(t)
	seen := make(map[string]APIID, u.NumAPIs())
	for _, a := range u.APIs() {
		if prev, dup := seen[a.Name]; dup {
			t.Fatalf("duplicate API name %q (ids %d, %d)", a.Name, prev, a.ID)
		}
		seen[a.Name] = a.ID
	}
}

func TestRestrictedAPIs(t *testing.T) {
	cfg := TestConfig(3000)
	u := testUniverse(t)
	restricted := u.RestrictedAPIs()
	// Well-known anchors add a handful beyond the configured quota.
	if len(restricted) < cfg.RestrictedAPICount {
		t.Errorf("restricted APIs = %d, want >= %d", len(restricted), cfg.RestrictedAPICount)
	}
	for _, id := range restricted {
		a := u.API(id)
		if a.Hidden {
			t.Errorf("restricted API %d is hidden", id)
		}
		if a.Permission == NoPermission || !u.Permission(a.Permission).Level.Restrictive() {
			t.Errorf("API %d in RestrictedAPIs but not restrictively guarded", id)
		}
	}
}

func TestSensitiveAPIs(t *testing.T) {
	cfg := TestConfig(3000)
	u := testUniverse(t)
	sens := u.SensitiveAPIs()
	if len(sens) < cfg.SensitiveAPICount {
		t.Errorf("sensitive APIs = %d, want >= %d", len(sens), cfg.SensitiveAPICount)
	}
	categories := make(map[SensitiveCategory]int)
	for _, id := range sens {
		a := u.API(id)
		if a.Category == CategoryNone {
			t.Errorf("API %d in SensitiveAPIs with CategoryNone", id)
		}
		categories[a.Category]++
	}
	if len(categories) != NumSensitiveCategories {
		t.Errorf("sensitive categories represented = %d, want %d", len(categories), NumSensitiveCategories)
	}
}

func TestHiddenAPIsRequirePermission(t *testing.T) {
	u := testUniverse(t)
	hidden := u.HiddenAPIs()
	if len(hidden) == 0 {
		t.Fatal("no hidden APIs generated")
	}
	for _, id := range hidden {
		a := u.API(id)
		if a.Permission == NoPermission {
			t.Errorf("hidden API %d has no guarding permission", id)
		}
	}
}

func TestDesignedKeyAPIsSortedUnique(t *testing.T) {
	u := testUniverse(t)
	keys := u.DesignedKeyAPIs()
	if len(keys) == 0 {
		t.Fatal("no designed key APIs")
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] <= keys[i-1] {
			t.Fatalf("keys not sorted/unique at %d: %d <= %d", i, keys[i], keys[i-1])
		}
	}
	for _, k := range keys {
		if u.API(k).Hidden {
			t.Errorf("designed key %d is hidden", k)
		}
	}
}

func TestCoverageClosure(t *testing.T) {
	cfg := TestConfig(3000)
	u := testUniverse(t)
	keys := u.DesignedKeyAPIs()
	closure := u.CoverageClosure(keys)
	if len(closure) < len(keys)+cfg.DependentAPICount/2 {
		t.Errorf("closure = %d, want >= keys(%d) + ~dependents(%d)", len(closure), len(keys), cfg.DependentAPICount)
	}
	// Closure of nothing is nothing.
	if got := u.CoverageClosure(nil); len(got) != 0 {
		t.Errorf("closure(nil) = %d entries, want 0", len(got))
	}
	// Every closure member is a key or depends on one.
	inKeys := make(map[APIID]bool)
	for _, k := range keys {
		inKeys[k] = true
	}
	for _, id := range closure {
		if inKeys[id] {
			continue
		}
		hit := false
		for _, d := range u.ImplementedVia(id) {
			if inKeys[d] {
				hit = true
				break
			}
		}
		if !hit {
			t.Fatalf("closure member %d neither key nor dependent", id)
		}
	}
}

func TestPaperScaleClosureFraction(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale universe in -short mode")
	}
	u := MustGenerate(DefaultConfig())
	keys := u.DesignedKeyAPIs()
	closure := u.CoverageClosure(keys)
	frac := float64(len(closure)) / float64(u.NumAPIs())
	// Paper §5.4: 426 keys + 4,816 dependents = 5,242 ≈ 10.5% of 50K.
	if frac < 0.08 || frac > 0.13 {
		t.Errorf("closure fraction = %.3f, want ≈ 0.105", frac)
	}
}

func TestEvolve(t *testing.T) {
	u := testUniverse(t)
	before := u.NumAPIs()
	level := u.Level()
	rep := u.Evolve(7)
	if rep.Level != level+1 || u.Level() != level+1 {
		t.Errorf("level after Evolve = %d, want %d", u.Level(), level+1)
	}
	if rep.NewAPIs <= 0 || u.NumAPIs() != before+rep.NewAPIs {
		t.Errorf("NewAPIs = %d, NumAPIs %d -> %d", rep.NewAPIs, before, u.NumAPIs())
	}
	for i := before; i < u.NumAPIs(); i++ {
		if got := u.API(APIID(i)).Level; got != rep.Level {
			t.Errorf("new API %d level = %d, want %d", i, got, rep.Level)
		}
	}
}

func TestEvolveDeterministic(t *testing.T) {
	u1 := MustGenerate(TestConfig(2000))
	u2 := MustGenerate(TestConfig(2000))
	r1 := u1.Evolve(42)
	r2 := u2.Evolve(42)
	if r1 != r2 {
		t.Errorf("Evolve reports differ: %+v vs %+v", r1, r2)
	}
	if u1.NumAPIs() != u2.NumAPIs() {
		t.Errorf("sizes differ after Evolve: %d vs %d", u1.NumAPIs(), u2.NumAPIs())
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.NumAPIs = 100 },
		func(c *Config) { c.NumPermissions = 1 },
		func(c *Config) { c.NumIntents = 1 },
		func(c *Config) { c.SignalRestrictedOverlap = c.RestrictedAPICount + 1 },
		func(c *Config) { c.SignalSensitiveOverlap = c.SensitiveAPICount + 1 },
		func(c *Config) { c.NegativeCommonCnt = c.BenignCommonCount + 1 },
		func(c *Config) { c.BenignNicheCount = c.NumAPIs },
	}
	for i, mutate := range bad {
		cfg := TestConfig(2000)
		mutate(&cfg)
		if _, err := Generate(cfg); err == nil {
			t.Errorf("case %d: Generate accepted invalid config", i)
		}
	}
}

func TestProtectionLevelStrings(t *testing.T) {
	cases := map[ProtectionLevel]string{
		ProtectionNormal:    "normal",
		ProtectionDangerous: "dangerous",
		ProtectionSignature: "signature",
	}
	for l, want := range cases {
		if got := l.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", l, got, want)
		}
	}
	if !ProtectionDangerous.Restrictive() || !ProtectionSignature.Restrictive() || ProtectionNormal.Restrictive() {
		t.Error("Restrictive() misclassifies levels")
	}
}

func TestCategoryAndRoleStrings(t *testing.T) {
	for c := CategoryNone; c <= CategoryDynamicCode; c++ {
		if s := c.String(); strings.HasPrefix(s, "SensitiveCategory(") {
			t.Errorf("category %d has no name", c)
		}
	}
	for r := RoleNeutral; r <= RoleBenignCommon; r++ {
		if s := r.String(); strings.HasPrefix(s, "CorpusRole(") {
			t.Errorf("role %d has no name", r)
		}
	}
}

func TestSyntheticNamesLookAndroid(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		name := syntheticAPIName(rng)
		if strings.Count(name, ".") < 2 {
			t.Fatalf("API name %q not fully qualified", name)
		}
		if p := syntheticPermissionName(rng, i); !strings.HasPrefix(p, "android.permission.") {
			t.Fatalf("permission name %q lacks prefix", p)
		}
		if in := syntheticIntentName(rng, i); !strings.HasPrefix(in, "android.intent.action.") {
			t.Fatalf("intent name %q lacks prefix", in)
		}
	}
}

// Property: lookups round-trip for every generated entity.
func TestLookupRoundTrip(t *testing.T) {
	u := testUniverse(t)
	f := func(raw uint16) bool {
		id := APIID(int(raw) % u.NumAPIs())
		got, ok := u.LookupAPI(u.API(id).Name)
		return ok && got == id
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(raw uint16) bool {
		id := PermissionID(int(raw) % len(u.Permissions()))
		got, ok := u.LookupPermission(u.Permission(id).Name)
		return ok && got == id
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
	h := func(raw uint16) bool {
		id := IntentID(int(raw) % len(u.Intents()))
		got, ok := u.LookupIntent(u.Intent(id).Name)
		return ok && got == id
	}
	if err := quick.Check(h, nil); err != nil {
		t.Error(err)
	}
}

// Property: rates are probabilities and popularity is positive for every
// API, including after evolution.
func TestAPIFieldInvariants(t *testing.T) {
	u := testUniverse(t)
	u.Evolve(11)
	for _, a := range u.APIs() {
		if a.BenignRate < 0 || a.BenignRate > 1 || a.MaliceRate < 0 || a.MaliceRate > 1 {
			t.Fatalf("API %d rates out of range: %+v", a.ID, a)
		}
		if a.Popularity <= 0 {
			t.Fatalf("API %d popularity = %f", a.ID, a.Popularity)
		}
	}
}
