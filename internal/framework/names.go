package framework

import (
	"fmt"
	"math/rand"
)

// Name banks used to synthesize realistic fully-qualified API names.
// The well-known entries below anchor the universe: the paper's top-Gini
// features (Fig. 13) and Set-S exemplars appear verbatim, so experiment
// output reads like the paper's.

// wellKnownAPIs are seeded first, in order, so their APIIDs are stable.
// Each is tagged with the permission that guards it (by name, or "" for
// none) and a sensitive category.
var wellKnownAPIs = []struct {
	Name       string
	Permission string
	Category   SensitiveCategory
	Role       CorpusRole
}{
	{"android.telephony.SmsManager.sendTextMessage", "android.permission.SEND_SMS", CategoryNone, RoleMaliceSignal},
	{"android.telephony.TelephonyManager.getLine1Number", "android.permission.READ_PHONE_STATE", CategoryNone, RoleMaliceSignal},
	{"android.net.wifi.WifiInfo.getMacAddress", "android.permission.ACCESS_WIFI_STATE", CategoryNone, RoleMaliceSignal},
	{"android.view.View.setBackgroundColor", "", CategoryWindowOverlay, RoleMaliceSignal},
	{"android.database.sqlite.SQLiteDatabase.insertWithOnConflict", "", CategoryDataStore, RoleMaliceSignal},
	{"java.net.HttpURLConnection.connect", "android.permission.INTERNET", CategoryNone, RoleMaliceSignal},
	{"android.app.ActivityManager.getRunningTasks", "android.permission.GET_TASKS", CategoryNone, RoleMaliceSignal},
	{"java.lang.Runtime.exec", "", CategoryPrivilegeEscalation, RoleMaliceSignal},
	{"dalvik.system.DexClassLoader.loadClass", "", CategoryDynamicCode, RoleMaliceSignal},
	{"javax.crypto.Cipher.doFinal", "", CategoryCrypto, RoleMaliceSignal},
	{"android.view.WindowManager.addView", "android.permission.SYSTEM_ALERT_WINDOW", CategoryWindowOverlay, RoleMaliceSignal},
	{"android.telephony.SmsManager.sendDataMessage", "android.permission.SEND_SMS", CategoryNone, RoleMaliceSignal},
	{"android.telephony.TelephonyManager.getDeviceId", "android.permission.READ_PHONE_STATE", CategoryNone, RoleMaliceSignal},
	{"android.location.LocationManager.getLastKnownLocation", "android.permission.ACCESS_FINE_LOCATION", CategoryNone, RoleMaliceSignal},
	{"android.media.AudioRecord.startRecording", "android.permission.RECORD_AUDIO", CategoryNone, RoleMaliceSignal},
	{"android.hardware.Camera.open", "android.permission.CAMERA", CategoryNone, RoleMaliceSignal},
	{"android.content.ContentResolver.query", "android.permission.READ_CONTACTS", CategoryDataStore, RoleMaliceSignal},
	{"java.io.FileOutputStream.write", "", CategoryDataStore, RoleBenignCommon},
	{"java.io.FileInputStream.read", "", CategoryDataStore, RoleBenignCommon},
	{"android.content.SharedPreferences$Editor.commit", "", CategoryNone, RoleBenignCommon},
	{"android.os.Handler.sendMessage", "", CategoryNone, RoleBenignCommon},
	{"android.view.LayoutInflater.inflate", "", CategoryNone, RoleBenignCommon},
	{"android.app.Activity.findViewById", "", CategoryNone, RoleBenignCommon},
	{"android.widget.TextView.setText", "", CategoryNone, RoleBenignCommon},
	{"android.content.Context.getSystemService", "", CategoryNone, RoleBenignCommon},
	{"java.lang.StringBuilder.append", "", CategoryNone, RoleBenignCommon},
	{"android.util.Log.d", "", CategoryNone, RoleBenignCommon},
	{"android.os.Bundle.getString", "", CategoryNone, RoleBenignCommon},
	{"android.content.Intent.putExtra", "", CategoryNone, RoleBenignCommon},
	{"android.app.Activity.startActivity", "", CategoryNone, RoleBenignCommon},
	{"android.webkit.WebView.loadUrl", "android.permission.INTERNET", CategoryNone, RoleNeutral},
	{"android.net.ConnectivityManager.getActiveNetworkInfo", "android.permission.ACCESS_NETWORK_STATE", CategoryNone, RoleMaliceSignal},
	{"android.telephony.SmsManager.sendMultipartTextMessage", "android.permission.SEND_SMS", CategoryNone, RoleMaliceSignal},
	{"android.accounts.AccountManager.getAccounts", "android.permission.GET_ACCOUNTS", CategoryNone, RoleMaliceSignal},
	{"android.app.admin.DevicePolicyManager.lockNow", "android.permission.BIND_DEVICE_ADMIN", CategoryNone, RoleMaliceSignal},
	{"dalvik.system.PathClassLoader.findLibrary", "", CategoryDynamicCode, RoleMaliceSignal},
	{"javax.crypto.KeyGenerator.generateKey", "", CategoryCrypto, RoleMaliceSignal},
	{"java.lang.ProcessBuilder.start", "", CategoryPrivilegeEscalation, RoleMaliceSignal},
	{"android.content.pm.PackageManager.getInstalledApplications", "", CategoryNone, RoleMaliceSignal},
	{"android.content.pm.PackageManager.getInstalledPackages", "", CategoryNone, RoleMaliceSignal},
}

// wellKnownPermissions is the anchor set of permission names. Entries
// appear in the paper's Fig. 13 and Set-P discussion. More synthetic
// permissions are appended after these.
var wellKnownPermissions = []struct {
	Name  string
	Level ProtectionLevel
}{
	{"android.permission.SEND_SMS", ProtectionDangerous},
	{"android.permission.RECEIVE_SMS", ProtectionDangerous},
	{"android.permission.READ_SMS", ProtectionDangerous},
	{"android.permission.RECEIVE_MMS", ProtectionDangerous},
	{"android.permission.RECEIVE_WAP_PUSH", ProtectionDangerous},
	{"android.permission.READ_PHONE_STATE", ProtectionDangerous},
	{"android.permission.CALL_PHONE", ProtectionDangerous},
	{"android.permission.READ_CONTACTS", ProtectionDangerous},
	{"android.permission.WRITE_CONTACTS", ProtectionDangerous},
	{"android.permission.ACCESS_FINE_LOCATION", ProtectionDangerous},
	{"android.permission.ACCESS_COARSE_LOCATION", ProtectionDangerous},
	{"android.permission.RECORD_AUDIO", ProtectionDangerous},
	{"android.permission.CAMERA", ProtectionDangerous},
	{"android.permission.READ_CALENDAR", ProtectionDangerous},
	{"android.permission.WRITE_CALENDAR", ProtectionDangerous},
	{"android.permission.READ_CALL_LOG", ProtectionDangerous},
	{"android.permission.WRITE_CALL_LOG", ProtectionDangerous},
	{"android.permission.GET_ACCOUNTS", ProtectionDangerous},
	{"android.permission.READ_EXTERNAL_STORAGE", ProtectionDangerous},
	{"android.permission.WRITE_EXTERNAL_STORAGE", ProtectionDangerous},
	{"android.permission.SYSTEM_ALERT_WINDOW", ProtectionSignature},
	{"android.permission.WRITE_SETTINGS", ProtectionSignature},
	{"android.permission.INSTALL_PACKAGES", ProtectionSignature},
	{"android.permission.DELETE_PACKAGES", ProtectionSignature},
	{"android.permission.BIND_DEVICE_ADMIN", ProtectionSignature},
	{"android.permission.READ_LOGS", ProtectionSignature},
	{"android.permission.GET_TASKS", ProtectionSignature},
	{"android.permission.REBOOT", ProtectionSignature},
	{"android.permission.RECEIVE_BOOT_COMPLETED", ProtectionNormal},
	{"android.permission.ACCESS_NETWORK_STATE", ProtectionNormal},
	{"android.permission.ACCESS_WIFI_STATE", ProtectionNormal},
	{"android.permission.CHANGE_WIFI_STATE", ProtectionNormal},
	{"android.permission.INTERNET", ProtectionNormal},
	{"android.permission.VIBRATE", ProtectionNormal},
	{"android.permission.WAKE_LOCK", ProtectionNormal},
	{"android.permission.NFC", ProtectionNormal},
	{"android.permission.BLUETOOTH", ProtectionNormal},
	{"android.permission.SET_WALLPAPER", ProtectionNormal},
	{"android.permission.EXPAND_STATUS_BAR", ProtectionNormal},
	{"android.permission.FLASHLIGHT", ProtectionNormal},
}

// wellKnownIntents anchors the intent-action vocabulary (Fig. 13 names
// included).
var wellKnownIntents = []struct {
	Name   string
	System bool
}{
	{"android.provider.Telephony.SMS_RECEIVED", true},
	{"android.net.wifi.STATE_CHANGE", true},
	{"android.app.action.DEVICE_ADMIN_ENABLED", true},
	{"android.bluetooth.adapter.action.STATE_CHANGED", true},
	{"android.intent.action.ACTION_BATTERY_OKAY", true},
	{"android.intent.action.BOOT_COMPLETED", true},
	{"android.intent.action.PACKAGE_ADDED", true},
	{"android.intent.action.PACKAGE_REMOVED", true},
	{"android.intent.action.USER_PRESENT", true},
	{"android.intent.action.NEW_OUTGOING_CALL", true},
	{"android.intent.action.PHONE_STATE", true},
	{"android.net.conn.CONNECTIVITY_CHANGE", true},
	{"android.intent.action.AIRPLANE_MODE", true},
	{"android.intent.action.BATTERY_LOW", true},
	{"android.intent.action.SCREEN_ON", true},
	{"android.intent.action.SCREEN_OFF", true},
	{"android.intent.action.MAIN", false},
	{"android.intent.action.VIEW", false},
	{"android.intent.action.SEND", false},
	{"android.intent.action.DIAL", false},
	{"android.intent.action.CALL", false},
	{"android.intent.action.EDIT", false},
	{"android.intent.action.PICK", false},
	{"android.intent.action.GET_CONTENT", false},
	{"android.media.action.IMAGE_CAPTURE", false},
	{"android.intent.action.INSTALL_PACKAGE", false},
	{"android.intent.action.UNINSTALL_PACKAGE", false},
	{"android.settings.SETTINGS", false},
}

// synthetic name material: combined to create the long tail of the 50K-API
// universe with plausible Android spellings.
var (
	packageBank = []string{
		"android.app", "android.content", "android.content.pm", "android.content.res",
		"android.database", "android.database.sqlite", "android.graphics",
		"android.graphics.drawable", "android.hardware", "android.hardware.camera2",
		"android.location", "android.media", "android.net", "android.net.wifi",
		"android.nfc", "android.os", "android.preference", "android.provider",
		"android.telephony", "android.text", "android.util", "android.view",
		"android.view.animation", "android.webkit", "android.widget",
		"android.accounts", "android.animation", "android.bluetooth",
		"android.speech", "android.security", "android.print", "android.transition",
		"java.io", "java.lang", "java.lang.reflect", "java.net", "java.nio",
		"java.security", "java.text", "java.util", "java.util.concurrent",
		"java.util.zip", "javax.crypto", "javax.net.ssl", "org.json",
		"org.xml.sax", "org.w3c.dom", "dalvik.system",
	}
	classBank = []string{
		"Manager", "Service", "Provider", "Helper", "Adapter", "Controller",
		"Session", "Layout", "View", "Dialog", "Loader", "Monitor", "Record",
		"Request", "Response", "Parser", "Builder", "Channel", "Client",
		"Config", "Cursor", "Device", "Engine", "Event", "Factory", "Filter",
		"Handler", "Info", "Item", "Listener", "Metrics", "Notification",
		"Policy", "Profile", "Queue", "Registry", "Scheduler", "Settings",
		"State", "Stats", "Storage", "Stream", "Task", "Token", "Tracker",
		"Transport", "Window", "Wrapper",
	}
	classPrefixBank = []string{
		"Activity", "Audio", "Backup", "Battery", "Bitmap", "Bluetooth",
		"Broadcast", "Camera", "Clipboard", "Connectivity", "Contact",
		"Content", "Display", "Download", "Gesture", "Input", "Key",
		"Location", "Media", "Message", "Network", "Package", "Power",
		"Print", "Search", "Sensor", "Sms", "Storage", "Sync", "System",
		"Telephony", "Text", "Usage", "Usb", "User", "Vibrator", "Wallpaper",
		"WebView", "Wifi", "Widget",
	}
	verbBank = []string{
		"get", "set", "query", "update", "create", "open", "close", "start",
		"stop", "register", "unregister", "request", "release", "bind",
		"unbind", "send", "receive", "read", "write", "load", "save", "add",
		"remove", "clear", "enable", "disable", "notify", "dispatch",
		"resolve", "schedule", "cancel", "acquire", "obtain", "apply",
		"commit", "fetch", "peek", "poll", "post", "scan",
	}
	nounBank = []string{
		"State", "Info", "Config", "Data", "Value", "List", "Count", "Id",
		"Name", "Type", "Mode", "Flag", "Status", "Event", "Property",
		"Option", "Setting", "Buffer", "Cache", "Entry", "Extra", "Field",
		"Handle", "Index", "Label", "Level", "Limit", "Params", "Path",
		"Policy", "Priority", "Range", "Result", "Rate", "Scope", "Session",
		"Size", "Source", "Target", "Ticket", "Timeout", "Token", "Uri",
		"Version", "Window", "Bounds", "Metrics", "Snapshot",
	}
)

// syntheticAPIName builds a plausible fully-qualified API name. Collisions
// are disambiguated by the caller.
func syntheticAPIName(rng *rand.Rand) string {
	pkg := packageBank[rng.Intn(len(packageBank))]
	class := classPrefixBank[rng.Intn(len(classPrefixBank))] + classBank[rng.Intn(len(classBank))]
	method := verbBank[rng.Intn(len(verbBank))] + nounBank[rng.Intn(len(nounBank))]
	return pkg + "." + class + "." + method
}

// syntheticPermissionName builds a plausible permission name.
func syntheticPermissionName(rng *rand.Rand, i int) string {
	v := verbBank[rng.Intn(len(verbBank))]
	n := nounBank[rng.Intn(len(nounBank))]
	return fmt.Sprintf("android.permission.%s_%s_%d", upper(v), upper(n), i)
}

// syntheticIntentName builds a plausible intent-action name.
func syntheticIntentName(rng *rand.Rand, i int) string {
	n := nounBank[rng.Intn(len(nounBank))]
	v := verbBank[rng.Intn(len(verbBank))]
	return fmt.Sprintf("android.intent.action.%s_%s_%d", upper(n), upper(v), i)
}

func upper(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'a' && c <= 'z' {
			b[i] = c - 'a' + 'A'
		}
	}
	return string(b)
}
