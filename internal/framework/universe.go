package framework

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Config controls universe generation. The zero value is not valid; start
// from DefaultConfig or TestConfig.
type Config struct {
	Seed int64

	// NumAPIs is the total size of the framework API surface
	// (the paper's ">50,000 APIs"; default 50,000).
	NumAPIs int
	// NumPermissions is the size of the permission vocabulary.
	NumPermissions int
	// NumIntents is the size of the intent-action vocabulary.
	NumIntents int

	// Population sizes. See CorpusRole for what each population is.
	MaliceSignalCount int // target for emergent positive-SRC APIs (paper: 247)
	BenignCommonCount int // hot, ubiquitous APIs (file I/O, UI, ...)
	NegativeCommonCnt int // hot APIs with strongly suppressed malware use (paper: 13)
	SharedHeavyCount  int // heavily used by both classes, sub-threshold |SRC|
	BenignNicheCount  int // seldom-invoked, benign-only tail (paper: ~2,536)

	// Structural feature sets.
	RestrictedAPICount      int // APIs guarded by restrictive permissions (Set-P, paper: 112)
	SensitiveAPICount       int // APIs in the 5 sensitive categories (Set-S, paper: 70)
	SignalRestrictedOverlap int // Set-C ∩ Set-P (paper: 12)
	SignalSensitiveOverlap  int // Set-C ∩ Set-S (paper: 4)

	// HiddenFraction of the neutral tail is internal/hidden (reflection
	// only).
	HiddenFraction float64

	// DependentAPICount is how many non-key APIs are internally
	// implemented on top of key APIs (paper §5.4: 4,816, i.e. the 426
	// keys cover 10.5% of the surface transitively).
	DependentAPICount int

	// BaseLevel is the SDK level of the initial universe (paper scanned
	// level 27).
	BaseLevel int
}

// DefaultConfig returns the paper-scale universe configuration.
func DefaultConfig() Config {
	return Config{
		Seed:                    1,
		NumAPIs:                 50000,
		NumPermissions:          200,
		NumIntents:              120,
		MaliceSignalCount:       247,
		BenignCommonCount:       300,
		NegativeCommonCnt:       13,
		SharedHeavyCount:        200,
		BenignNicheCount:        2536,
		RestrictedAPICount:      112,
		SensitiveAPICount:       70,
		SignalRestrictedOverlap: 12,
		SignalSensitiveOverlap:  4,
		HiddenFraction:          0.05,
		DependentAPICount:       4816,
		BaseLevel:               27,
	}
}

// TestConfig returns a proportionally scaled-down universe for fast tests.
// numAPIs should be >= 1000 to keep all populations non-degenerate.
func TestConfig(numAPIs int) Config {
	c := DefaultConfig()
	f := float64(numAPIs) / float64(c.NumAPIs)
	scale := func(n, min int) int {
		v := int(math.Round(float64(n) * f))
		if v < min {
			v = min
		}
		return v
	}
	c.NumAPIs = numAPIs
	c.NumPermissions = scale(c.NumPermissions, len(wellKnownPermissions))
	c.NumIntents = scale(c.NumIntents, len(wellKnownIntents))
	c.MaliceSignalCount = scale(c.MaliceSignalCount, 40)
	c.BenignCommonCount = scale(c.BenignCommonCount, 30)
	c.NegativeCommonCnt = scale(c.NegativeCommonCnt, 4)
	c.SharedHeavyCount = scale(c.SharedHeavyCount, 20)
	c.BenignNicheCount = scale(c.BenignNicheCount, 60)
	c.RestrictedAPICount = scale(c.RestrictedAPICount, 20)
	c.SensitiveAPICount = scale(c.SensitiveAPICount, 15)
	c.SignalRestrictedOverlap = scale(c.SignalRestrictedOverlap, 2)
	c.SignalSensitiveOverlap = scale(c.SignalSensitiveOverlap, 1)
	c.DependentAPICount = scale(c.DependentAPICount, 100)
	return c
}

func (c Config) validate() error {
	switch {
	case c.NumAPIs < 500:
		return fmt.Errorf("framework: NumAPIs %d too small (need >= 500)", c.NumAPIs)
	case c.NumPermissions < len(wellKnownPermissions):
		return fmt.Errorf("framework: NumPermissions %d < %d well-known", c.NumPermissions, len(wellKnownPermissions))
	case c.NumIntents < len(wellKnownIntents):
		return fmt.Errorf("framework: NumIntents %d < %d well-known", c.NumIntents, len(wellKnownIntents))
	case c.SignalRestrictedOverlap > c.RestrictedAPICount:
		return errors.New("framework: SignalRestrictedOverlap > RestrictedAPICount")
	case c.SignalSensitiveOverlap > c.SensitiveAPICount:
		return errors.New("framework: SignalSensitiveOverlap > SensitiveAPICount")
	case c.NegativeCommonCnt > c.BenignCommonCount:
		return errors.New("framework: NegativeCommonCnt > BenignCommonCount")
	}
	special := c.MaliceSignalCount + c.BenignCommonCount + c.SharedHeavyCount +
		c.BenignNicheCount + c.RestrictedAPICount + c.SensitiveAPICount
	if special > c.NumAPIs/2 {
		return fmt.Errorf("framework: special populations (%d) exceed half the universe (%d)", special, c.NumAPIs)
	}
	return nil
}

// Universe is a generated framework API surface. It is immutable after
// generation except through Evolve, which appends APIs.
type Universe struct {
	cfg     Config
	apis    []API
	perms   []Permission
	intents []Intent

	byName       map[string]APIID
	permByName   map[string]PermissionID
	intentByName map[string]IntentID

	// implementedVia maps a dependent API to the designed-key APIs its
	// internal implementation calls.
	implementedVia map[APIID][]APIID

	level int // current (latest) SDK level

	// history records the seed of every Evolve applied since generation,
	// in order. Generation plus evolution are both deterministic, so
	// (cfg, history) fully identifies the universe — Rebuild replays them
	// to reconstruct it bit-identically (the model-artifact cold-start
	// path relies on this).
	history []int64
}

// Generate builds a universe deterministically from cfg.
func Generate(cfg Config) (*Universe, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	u := &Universe{
		cfg:            cfg,
		byName:         make(map[string]APIID, cfg.NumAPIs),
		permByName:     make(map[string]PermissionID, cfg.NumPermissions),
		intentByName:   make(map[string]IntentID, cfg.NumIntents),
		implementedVia: make(map[APIID][]APIID),
		level:          cfg.BaseLevel,
	}
	u.genPermissions(rng)
	u.genIntents(rng)
	u.genAPIs(rng)
	u.genDependencies(rng)
	return u, nil
}

// Rebuild reconstructs a universe from its generation config and Evolve
// seed history: Generate(cfg), then replay each recorded SDK release in
// order. Both steps are deterministic, so the result is bit-identical to
// the universe that recorded the history — API ids, names, rates, levels,
// and dependency edges all match. This is how a model artifact cold-starts
// without the original process.
func Rebuild(cfg Config, history []int64) (*Universe, error) {
	u, err := Generate(cfg)
	if err != nil {
		return nil, err
	}
	for _, seed := range history {
		u.Evolve(seed)
	}
	return u, nil
}

// MustGenerate is Generate but panics on config errors; intended for tests
// and examples with known-good configs.
func MustGenerate(cfg Config) *Universe {
	u, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return u
}

func (u *Universe) genPermissions(rng *rand.Rand) {
	for _, wp := range wellKnownPermissions {
		u.addPermission(wp.Name, wp.Level)
	}
	for i := len(u.perms); i < u.cfg.NumPermissions; i++ {
		name := syntheticPermissionName(rng, i)
		for _, dup := u.permByName[name]; dup; _, dup = u.permByName[name] {
			name = syntheticPermissionName(rng, i+rng.Intn(1<<20))
		}
		// Long-tail synthetic permissions: mostly normal, some
		// restrictive so that Set-P's permission map has depth.
		level := ProtectionNormal
		switch r := rng.Float64(); {
		case r < 0.15:
			level = ProtectionDangerous
		case r < 0.25:
			level = ProtectionSignature
		}
		u.addPermission(name, level)
	}
}

func (u *Universe) addPermission(name string, level ProtectionLevel) PermissionID {
	id := PermissionID(len(u.perms))
	u.perms = append(u.perms, Permission{ID: id, Name: name, Level: level})
	u.permByName[name] = id
	return id
}

func (u *Universe) genIntents(rng *rand.Rand) {
	for _, wi := range wellKnownIntents {
		u.addIntent(wi.Name, wi.System)
	}
	for i := len(u.intents); i < u.cfg.NumIntents; i++ {
		name := syntheticIntentName(rng, i)
		for _, dup := u.intentByName[name]; dup; _, dup = u.intentByName[name] {
			name = syntheticIntentName(rng, i+rng.Intn(1<<20))
		}
		u.addIntent(name, rng.Float64() < 0.4)
	}
}

func (u *Universe) addIntent(name string, system bool) IntentID {
	id := IntentID(len(u.intents))
	u.intents = append(u.intents, Intent{ID: id, Name: name, System: system})
	u.intentByName[name] = id
	return id
}

// Population rate/popularity constants. Rates are P(app invokes the API at
// least once during a full exploration) by class; popularity is the mean
// invocation count when invoked, per 5K Monkey events. Calibrated against
// §4.2-§4.3: mean total volume ≈ 42.3M invocations/app, hot APIs carrying
// ~90% of volume, the 426-key subset ~4% of volume, and the designed SRC
// spectrum of Figs. 4-5.
const (
	hotPopularity    = 87000 // benign-common APIs
	sharedPopularity = 57000 // shared-heavy APIs
	signalPopularity = 5000  // malice-signal APIs
	guardPopularity  = 3000  // Set-P / Set-S APIs outside Set-C
	neutralPopMin    = 400
	neutralPopMax    = 2400
	nichePopularity  = 300
)

func (u *Universe) genAPIs(rng *rand.Rand) {
	cfg := u.cfg
	// Remaining quota per designed population; well-known APIs consume
	// quota first so their IDs stay stable and recognizable.
	signalLeft := cfg.MaliceSignalCount
	hotLeft := cfg.BenignCommonCount
	sharedLeft := cfg.SharedHeavyCount
	nicheLeft := cfg.BenignNicheCount
	restrictedLeft := cfg.RestrictedAPICount
	sensitiveLeft := cfg.SensitiveAPICount
	sigRestrictedLeft := cfg.SignalRestrictedOverlap
	sigSensitiveLeft := cfg.SignalSensitiveOverlap
	negativeHotLeft := cfg.NegativeCommonCnt

	addAPI := func(a API) APIID {
		a.ID = APIID(len(u.apis))
		a.Level = cfg.BaseLevel
		u.apis = append(u.apis, a)
		u.byName[a.Name] = a.ID
		return a.ID
	}

	// 1. Well-known anchors.
	for _, wk := range wellKnownAPIs {
		a := API{Name: wk.Name, Permission: NoPermission, Category: wk.Category, Role: wk.Role}
		if wk.Permission != "" {
			a.Permission = u.permByName[wk.Permission]
		}
		switch wk.Role {
		case RoleMaliceSignal:
			signalLeft--
			a.Popularity = signalPopularity * lognorm(rng, 0.7)
			a.BenignRate = 0.005 + 0.03*rng.Float64()
			a.MaliceRate = 0.35 + 0.45*rng.Float64()
			if a.Permission != NoPermission && u.perms[a.Permission].Level.Restrictive() {
				restrictedLeft--
				sigRestrictedLeft--
			}
			if a.Category != CategoryNone {
				sensitiveLeft--
				sigSensitiveLeft--
			}
		case RoleBenignCommon:
			hotLeft--
			a.Popularity = hotPopularity * lognorm(rng, 0.4)
			a.BenignRate = 0.99
			a.MaliceRate = 0.95
			if a.Category != CategoryNone {
				// Hot data-store anchors (file I/O) are common
				// operations, not Set-S members: the paper's
				// Set-S comes from less ubiquitous APIs.
				a.Category = CategoryNone
			}
		default:
			a.Popularity = float64(neutralPopMin) + rng.Float64()*float64(neutralPopMax-neutralPopMin)
			a.BenignRate = 0.05 + 0.15*rng.Float64()
			a.MaliceRate = a.BenignRate
		}
		addAPI(a)
	}

	// 2. Remaining malice-signal APIs, including the designed Set-P and
	// Set-S overlaps.
	for i := 0; i < signalLeft; i++ {
		a := API{
			Name:       u.uniqueName(rng),
			Permission: NoPermission,
			Role:       RoleMaliceSignal,
			Popularity: signalPopularity * lognorm(rng, 0.7),
			// Malware usage rates are spread so that the emergent
			// SRC spectrum spans ~0.2-0.6 (Fig. 4): family
			// structure in internal/behavior concentrates these.
			BenignRate: 0.004 + 0.04*rng.Float64(),
			MaliceRate: 0.30 + 0.50*rng.Float64(),
		}
		if sigRestrictedLeft > 0 {
			a.Permission = u.randomRestrictivePermission(rng)
			sigRestrictedLeft--
			restrictedLeft--
		} else if sigSensitiveLeft > 0 {
			a.Category = SensitiveCategory(1 + rng.Intn(NumSensitiveCategories))
			sigSensitiveLeft--
			sensitiveLeft--
		}
		addAPI(a)
	}

	// 3. Set-P-only APIs: guarded by restrictive permissions. Their
	// *invocation* correlation with malice stays below the Set-C
	// threshold (the paper's Fig. 8 finds only 12 of 112 in Set-C);
	// malware's permission footprint comes from manifest requests, not
	// from invoking these APIs more often.
	for i := 0; i < restrictedLeft; i++ {
		addAPI(API{
			Name:       u.uniqueName(rng),
			Permission: u.randomRestrictivePermission(rng),
			Role:       RoleNeutral,
			Popularity: guardPopularity * lognorm(rng, 0.6),
			BenignRate: 0.05 + 0.04*rng.Float64(),
			MaliceRate: 0.08 + 0.08*rng.Float64(),
		})
	}

	// 4. Set-S-only APIs: sensitive operations, same sub-threshold
	// invocation signal.
	for i := 0; i < sensitiveLeft; i++ {
		addAPI(API{
			Name:       u.uniqueName(rng),
			Permission: NoPermission,
			Category:   SensitiveCategory(1 + i%NumSensitiveCategories),
			Role:       RoleNeutral,
			Popularity: guardPopularity * lognorm(rng, 0.6),
			BenignRate: 0.05 + 0.04*rng.Float64(),
			MaliceRate: 0.08 + 0.08*rng.Float64(),
		})
	}

	// 5. Hot benign-common APIs. The first negativeHotLeft of them have
	// strongly suppressed malware use (the paper's 13 frequent APIs with
	// SRC <= -0.2); the rest are mildly suppressed.
	for i := 0; i < hotLeft; i++ {
		a := API{
			Name:       u.uniqueName(rng),
			Permission: NoPermission,
			Role:       RoleBenignCommon,
			Popularity: hotPopularity * lognorm(rng, 0.4),
			BenignRate: 0.985 + 0.014*rng.Float64(),
		}
		if negativeHotLeft > 0 {
			// Strongly suppressed among malware: the paper's 13
			// frequent APIs with SRC <= -0.2 (malware skips the
			// benign UI/file plumbing these serve).
			a.MaliceRate = 0.70 + 0.08*rng.Float64()
			negativeHotLeft--
		} else {
			a.MaliceRate = 0.94 + 0.03*rng.Float64()
		}
		addAPI(a)
	}

	// 6. Shared-heavy APIs: heavy invocation by both classes, |SRC| just
	// below the selection threshold. They produce Fig. 6's super-linear
	// cost segment when they enroll into the tracked set.
	for i := 0; i < sharedLeft; i++ {
		addAPI(API{
			Name:       u.uniqueName(rng),
			Permission: NoPermission,
			Role:       RoleNeutral,
			Popularity: sharedPopularity * lognorm(rng, 0.3),
			BenignRate: 0.88 + 0.06*rng.Float64(),
			MaliceRate: 0.68 + 0.08*rng.Float64(),
		})
	}

	// 7. Benign-niche tail: seldom invoked (by < 0.1% of apps), benign
	// only.
	for i := 0; i < nicheLeft; i++ {
		addAPI(API{
			Name:       u.uniqueName(rng),
			Permission: NoPermission,
			Role:       RoleBenignNiche,
			Popularity: nichePopularity * lognorm(rng, 0.5),
			BenignRate: 0.0002 + 0.0008*rng.Float64(),
			MaliceRate: 0,
		})
	}

	// 8. Neutral filler up to NumAPIs; a HiddenFraction slice is
	// internal/hidden (reachable only via reflection).
	for len(u.apis) < cfg.NumAPIs {
		rate := 0.001 + 0.05*math.Pow(rng.Float64(), 2)
		a := API{
			Name:       u.uniqueName(rng),
			Permission: NoPermission,
			Role:       RoleNeutral,
			Popularity: float64(neutralPopMin) + rng.Float64()*float64(neutralPopMax-neutralPopMin),
			BenignRate: rate,
			MaliceRate: rate,
			Hidden:     rng.Float64() < cfg.HiddenFraction,
		}
		if a.Hidden {
			// Hidden APIs mirror a sensitive surface: invoking
			// them via reflection still requires the guarding
			// permission (§4.5: permissions are prerequisites that
			// cannot be bypassed).
			a.Permission = u.randomRestrictivePermission(rng)
			a.BenignRate = 0.0005
			a.MaliceRate = 0.02
		}
		addAPI(a)
	}
}

// genDependencies wires the "implemented via" graph: DependentAPICount
// non-key APIs internally call 1-3 designed-key APIs each.
func (u *Universe) genDependencies(rng *rand.Rand) {
	keys := u.DesignedKeyAPIs()
	if len(keys) == 0 {
		return
	}
	keySet := make(map[APIID]bool, len(keys))
	for _, k := range keys {
		keySet[k] = true
	}
	want := u.cfg.DependentAPICount
	for want > 0 {
		id := APIID(rng.Intn(len(u.apis)))
		if keySet[id] || u.apis[id].Hidden {
			continue
		}
		if _, dup := u.implementedVia[id]; dup {
			continue
		}
		n := 1 + rng.Intn(3)
		deps := make([]APIID, 0, n)
		for len(deps) < n {
			k := keys[rng.Intn(len(keys))]
			if !containsID(deps, k) {
				deps = append(deps, k)
			}
		}
		u.implementedVia[id] = deps
		want--
	}
}

func containsID(s []APIID, id APIID) bool {
	for _, v := range s {
		if v == id {
			return true
		}
	}
	return false
}

func (u *Universe) uniqueName(rng *rand.Rand) string {
	for {
		name := syntheticAPIName(rng)
		if _, dup := u.byName[name]; !dup {
			return name
		}
		// Disambiguate collisions with an overload-style suffix.
		for i := 2; ; i++ {
			cand := fmt.Sprintf("%s%d", name, i)
			if _, dup := u.byName[cand]; !dup {
				return cand
			}
		}
	}
}

func (u *Universe) randomRestrictivePermission(rng *rand.Rand) PermissionID {
	for {
		id := PermissionID(rng.Intn(len(u.perms)))
		if u.perms[id].Level.Restrictive() {
			return id
		}
	}
}

// lognorm returns a lognormal multiplier with median 1 and the given sigma.
func lognorm(rng *rand.Rand, sigma float64) float64 {
	return math.Exp(rng.NormFloat64() * sigma)
}

// --- accessors ---

// Config returns the generation config.
func (u *Universe) Config() Config { return u.cfg }

// NumAPIs returns the current number of APIs (grows under Evolve).
func (u *Universe) NumAPIs() int { return len(u.apis) }

// API returns the API with the given id. It panics on out-of-range ids.
func (u *Universe) API(id APIID) *API { return &u.apis[id] }

// APIs returns the full API slice. Callers must not modify it.
func (u *Universe) APIs() []API { return u.apis }

// Permissions returns the permission table. Callers must not modify it.
func (u *Universe) Permissions() []Permission { return u.perms }

// Permission returns the permission with the given id.
func (u *Universe) Permission(id PermissionID) *Permission { return &u.perms[id] }

// Intents returns the intent table. Callers must not modify it.
func (u *Universe) Intents() []Intent { return u.intents }

// Intent returns the intent with the given id.
func (u *Universe) Intent(id IntentID) *Intent { return &u.intents[id] }

// Level returns the latest SDK level present in the universe.
func (u *Universe) Level() int { return u.level }

// EvolveHistory returns the seeds of every SDK release applied via Evolve
// since generation, in order (a copy). Together with Config it fully
// identifies the universe; see Rebuild.
func (u *Universe) EvolveHistory() []int64 {
	return append([]int64(nil), u.history...)
}

// LookupAPI resolves a fully-qualified API name.
func (u *Universe) LookupAPI(name string) (APIID, bool) {
	id, ok := u.byName[name]
	return id, ok
}

// LookupPermission resolves a permission name.
func (u *Universe) LookupPermission(name string) (PermissionID, bool) {
	id, ok := u.permByName[name]
	return id, ok
}

// LookupIntent resolves an intent-action name.
func (u *Universe) LookupIntent(name string) (IntentID, bool) {
	id, ok := u.intentByName[name]
	return id, ok
}

// RestrictedAPIs returns the non-hidden APIs guarded by dangerous or
// signature permissions — the raw material of Set-P (an Axplorer/PScout
// style permission map).
func (u *Universe) RestrictedAPIs() []APIID {
	var out []APIID
	for i := range u.apis {
		a := &u.apis[i]
		if a.Hidden || a.Permission == NoPermission {
			continue
		}
		if u.perms[a.Permission].Level.Restrictive() {
			out = append(out, a.ID)
		}
	}
	return out
}

// SensitiveAPIs returns the non-hidden APIs tagged with a sensitive
// operation category — the raw material of Set-S.
func (u *Universe) SensitiveAPIs() []APIID {
	var out []APIID
	for i := range u.apis {
		a := &u.apis[i]
		if !a.Hidden && a.Category != CategoryNone {
			out = append(out, a.ID)
		}
	}
	return out
}

// HiddenAPIs returns the internal/hidden APIs (reflection-only surface).
func (u *Universe) HiddenAPIs() []APIID {
	var out []APIID
	for i := range u.apis {
		if u.apis[i].Hidden {
			out = append(out, u.apis[i].ID)
		}
	}
	return out
}

// DesignedKeyAPIs returns the generator's designed key populations
// (malice-signal ∪ restricted ∪ sensitive, hidden excluded). It exists for
// corpus construction and for tests that check the emergent Set-C recovers
// the designed signal; detection code selects its own keys from data.
func (u *Universe) DesignedKeyAPIs() []APIID {
	seen := make(map[APIID]bool)
	var out []APIID
	add := func(id APIID) {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	for i := range u.apis {
		if u.apis[i].Role == RoleMaliceSignal && !u.apis[i].Hidden {
			add(u.apis[i].ID)
		}
	}
	for _, id := range u.RestrictedAPIs() {
		add(id)
	}
	for _, id := range u.SensitiveAPIs() {
		add(id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ImplementedVia returns the designed-key APIs the given API's internal
// implementation calls, or nil.
func (u *Universe) ImplementedVia(id APIID) []APIID { return u.implementedVia[id] }

// CoverageClosure returns every API that is one of keys or whose internal
// implementation depends on one of keys (§5.4's 426 → 5,242 expansion).
func (u *Universe) CoverageClosure(keys []APIID) []APIID {
	inKeys := make(map[APIID]bool, len(keys))
	for _, k := range keys {
		inKeys[k] = true
	}
	var out []APIID
	for _, k := range keys {
		out = append(out, k)
	}
	for id, deps := range u.implementedVia {
		if inKeys[id] {
			continue
		}
		for _, d := range deps {
			if inKeys[d] {
				out = append(out, id)
				break
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
