// Package lifecycle is the model-evolution control plane over a serving
// checker (§5.3's monthly retraining, made a first-class subsystem): it
// snapshots the serving generation into a modelstore registry, cold-starts
// a checker from the latest good generation, retrains challengers off the
// serving path, shadow-scores them against the champion on a held-out
// slice through the existing pipeline stages, and promotes only when the
// quality gates pass — as a single atomic hot-swap (core.Checker.SwapModel)
// that in-flight vets never observe mid-change. Explicit Rollback restores
// any prior generation the registry holds.
//
// Every step books onto the checker's obs spine: lifecycle.train,
// lifecycle.shadow, lifecycle.promote spans; lifecycle.trains,
// lifecycle.promotions, lifecycle.rejections, lifecycle.rollbacks
// counters; and the model.generation gauge core maintains at each swap.
package lifecycle

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"time"

	"apichecker/internal/behavior"
	"apichecker/internal/core"
	"apichecker/internal/dataset"
	"apichecker/internal/ml"
	"apichecker/internal/modelstore"
	"apichecker/internal/obs"
)

// ErrGateFailed marks an evolution whose challenger did not clear the
// promotion gates; the champion keeps serving and the registry is
// untouched. Evolve reports it through EvolveResult, not as an error —
// a rejected challenger is a normal outcome, not a failure.
var ErrGateFailed = errors.New("lifecycle: challenger failed promotion gates")

// GateConfig is the promotion quality bar: the challenger is promoted
// only when its held-out F1 and AUC are within the configured drop of the
// champion's (negative drops demand improvement), measured over at least
// MinHoldout apps.
type GateConfig struct {
	// MaxF1Drop is how much held-out F1 the challenger may lose versus
	// the champion and still promote.
	MaxF1Drop float64
	// MaxAUCDrop is the same bar for ROC AUC.
	MaxAUCDrop float64
	// MinHoldout is the smallest held-out slice the shadow evaluation
	// may gate on.
	MinHoldout int
	// HoldoutFraction is the slice of the corpus held out of challenger
	// training for the shadow evaluation (default 0.2).
	HoldoutFraction float64
}

// DefaultGateConfig tolerates small regressions (retraining on a shifted
// app mix wobbles the metrics) but blocks real quality losses.
func DefaultGateConfig() GateConfig {
	return GateConfig{MaxF1Drop: 0.05, MaxAUCDrop: 0.05, MinHoldout: 30, HoldoutFraction: 0.2}
}

// ShadowReport is one champion-vs-challenger evaluation on the held-out
// slice, scored through the full vet pipeline of each.
type ShadowReport struct {
	Holdout int

	Champion   Scorecard
	Challenger Scorecard

	// F1Drop and AUCDrop are champion minus challenger (positive =
	// challenger worse).
	F1Drop  float64
	AUCDrop float64

	Pass   bool
	Reason string // why the gates failed, empty on pass
}

// Scorecard is one model's held-out quality.
type Scorecard struct {
	Precision float64
	Recall    float64
	F1        float64
	AUC       float64
}

// EvolveResult is one background-evolution round.
type EvolveResult struct {
	Promoted bool
	// Digest is the stored challenger artifact's digest when promoted
	// (empty on rejection — a rejected challenger is never stored).
	Digest string
	// Generation is the serving generation after the round.
	Generation core.GenerationInfo
	Report     *core.TrainReport
	Shadow     ShadowReport
}

// State is the lifecycle view tmarket surfaces: the serving generation,
// its registry digest, and the evolution history counters.
type State struct {
	Generation    core.GenerationInfo
	CurrentDigest string
	LastPromotion time.Time
	LastShadow    *ShadowReport

	Trains     uint64
	Promotions uint64
	Rejections uint64
	Rollbacks  uint64
}

// Manager drives one checker's model lifecycle against one registry.
// Evolve/Rollback/Snapshot serialize on an internal mutex (one evolution
// at a time); the serving path never blocks on any of them.
type Manager struct {
	ck    *core.Checker
	reg   *modelstore.Registry
	gates GateConfig

	mu            sync.Mutex
	currentDigest string
	lastPromotion time.Time
	lastShadow    *ShadowReport
}

// NewManager wires a manager over a serving checker and an open registry.
func NewManager(ck *core.Checker, reg *modelstore.Registry, gates GateConfig) *Manager {
	if gates.HoldoutFraction <= 0 || gates.HoldoutFraction >= 1 {
		gates.HoldoutFraction = DefaultGateConfig().HoldoutFraction
	}
	return &Manager{ck: ck, reg: reg, gates: gates, currentDigest: ck.Generation().Digest}
}

// Checker returns the serving checker.
func (m *Manager) Checker() *core.Checker { return m.ck }

// Registry returns the backing registry.
func (m *Manager) Registry() *modelstore.Registry { return m.reg }

// Snapshot persists the serving generation to the registry and marks it
// current — the cold-start anchor a fresh tmarket restores from.
func (m *Manager) Snapshot(note string) (string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	a, err := modelstore.Snapshot(m.ck)
	if err != nil {
		return "", err
	}
	dig, err := m.reg.Put(a, modelstore.Manifest{Note: note, Parent: m.currentDigest})
	if err != nil {
		return "", err
	}
	if err := m.reg.SetCurrent(dig); err != nil {
		return "", err
	}
	m.currentDigest = dig
	return dig, nil
}

// ColdStart restores a serving checker from the registry's current
// generation. Verdicts are bit-identical to the checker that snapshotted
// it: the universe is replayed from its recorded generation, and Monkey
// seeds derive from submission content.
func ColdStart(reg *modelstore.Registry) (*core.Checker, modelstore.Manifest, error) {
	a, man, err := reg.Current()
	if err != nil {
		return nil, modelstore.Manifest{}, err
	}
	ck, err := a.Instantiate()
	if err != nil {
		return nil, modelstore.Manifest{}, err
	}
	return ck, man, nil
}

// AdoptArtifact hot-swaps an artifact's generation into a running
// checker — the worker-node half of generation propagation: a node that
// learns (from a claim response) that its coordinator serves a newer
// generation pulls the artifact and adopts it through the same SwapModel
// path a local promotion takes. The triage band rides the artifact
// (Cfg.TriageLo/TriageHi from its TRI1 section), so a band change
// propagates with the generation it shipped under; adopting a changed
// band republishes once more via SetTriageBand, advancing the node's
// local generation counter twice — harmless, since verdict identity
// derives from content and the model digest, not the local swap count.
func AdoptArtifact(ck *core.Checker, a *modelstore.Artifact) (core.GenerationInfo, error) {
	parts, err := a.Parts()
	if err != nil {
		return core.GenerationInfo{}, err
	}
	gen, err := ck.SwapModel(parts)
	if err != nil {
		return core.GenerationInfo{}, err
	}
	cfg := ck.Config()
	curLo, curHi := normBand(cfg.TriageLo, cfg.TriageHi)
	artLo, artHi := normBand(a.Cfg.TriageLo, a.Cfg.TriageHi)
	if curLo != artLo || curHi != artHi {
		return ck.SetTriageBand(a.Cfg.TriageLo, a.Cfg.TriageHi)
	}
	return gen, nil
}

// normBand maps the zero band to the trivial [0, 1] band (the same
// normalization SetTriageBand applies) so band equality compares
// semantics, not spellings.
func normBand(lo, hi float64) (float64, float64) {
	if lo == 0 && hi == 0 {
		return 0, 1
	}
	return lo, hi
}

// Evolve is one background-evolution round: split the refreshed corpus
// into train/holdout, train a challenger off the serving path, shadow-
// score challenger vs champion on the holdout through each one's vet
// pipeline, and promote the challenger — registry write, CURRENT flip,
// atomic hot-swap — only if the quality gates pass. A rejected challenger
// leaves the champion serving and the registry untouched.
//
// The corpus must be bound to the serving checker's universe.
func (m *Manager) Evolve(ctx context.Context, c *dataset.Corpus) (*EvolveResult, error) {
	m.mu.Lock()
	defer m.mu.Unlock()

	col := m.ck.Obs()
	trainApps, holdoutIdx := splitCorpus(c, m.gates)
	if len(holdoutIdx) < m.gates.MinHoldout {
		return nil, fmt.Errorf("lifecycle: holdout %d below gate minimum %d", len(holdoutIdx), m.gates.MinHoldout)
	}
	trainCorpus := dataset.FromApps(c.Universe(), c.Config().Seed, trainApps)

	// Train the challenger as a complete standalone checker: its shadow
	// vets run through the same pipeline stages production verdicts do,
	// on its own farm — nothing touches the serving path.
	start := time.Now()
	challenger, rep, err := core.TrainFromCorpus(trainCorpus, m.ck.Config())
	dur := time.Since(start)
	col.Counter("lifecycle.trains").Inc()
	emitSpan(col, "lifecycle.train", dur, fmt.Sprintf("corpus=%d", trainCorpus.Len()), err)
	if err != nil {
		return nil, fmt.Errorf("lifecycle: train challenger: %w", err)
	}

	start = time.Now()
	shadow, err := m.shadowEval(ctx, challenger, c, holdoutIdx)
	emitSpan(col, "lifecycle.shadow", time.Since(start),
		fmt.Sprintf("holdout=%d pass=%t", shadow.Holdout, shadow.Pass), err)
	if err != nil {
		return nil, err
	}
	m.lastShadow = &shadow

	res := &EvolveResult{Report: rep, Shadow: shadow}
	if !shadow.Pass {
		col.Counter("lifecycle.rejections").Inc()
		res.Generation = m.ck.Generation()
		return res, nil
	}

	// Promotion: store the artifact, flip CURRENT, hot-swap. The swap is
	// last, so a crash between registry write and swap leaves a registry
	// that simply cold-starts into the (gated, good) challenger.
	start = time.Now()
	parts := challenger.Parts()
	a, err := modelstore.FromParts(parts, m.ck.Config())
	if err != nil {
		return nil, err
	}
	dig, err := m.reg.Put(a, modelstore.Manifest{
		Parent:            m.currentDigest,
		CorpusFingerprint: Fingerprint(c),
		TrainReport:       rep,
		Note:              "promoted",
		Quality: &modelstore.Quality{
			Precision: shadow.Challenger.Precision,
			Recall:    shadow.Challenger.Recall,
			F1:        shadow.Challenger.F1,
			AUC:       shadow.Challenger.AUC,
			Holdout:   shadow.Holdout,
		},
	})
	if err != nil {
		return nil, err
	}
	if err := m.reg.SetCurrent(dig); err != nil {
		return nil, err
	}
	parts.Digest = dig
	gen, err := m.ck.SwapModel(parts)
	emitSpan(col, "lifecycle.promote", time.Since(start), shortDigest(dig), err)
	if err != nil {
		return nil, fmt.Errorf("lifecycle: promote: %w", err)
	}
	col.Counter("lifecycle.promotions").Inc()
	m.currentDigest = dig
	m.lastPromotion = time.Now()
	res.Promoted = true
	res.Digest = dig
	res.Generation = gen
	return res, nil
}

// Rollback restores a prior generation from the registry: the artifact is
// re-instantiated, hot-swapped into the serving path (bumping the verdict-
// cache epoch exactly once, like any swap), and marked current.
func (m *Manager) Rollback(digest string) (core.GenerationInfo, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	col := m.ck.Obs()
	a, _, err := m.reg.Load(digest)
	if err != nil {
		return core.GenerationInfo{}, err
	}
	parts, err := a.Parts()
	if err != nil {
		return core.GenerationInfo{}, err
	}
	start := time.Now()
	gen, err := m.ck.SwapModel(parts)
	emitSpan(col, "lifecycle.rollback", time.Since(start), shortDigest(digest), err)
	if err != nil {
		return core.GenerationInfo{}, fmt.Errorf("lifecycle: rollback: %w", err)
	}
	if err := m.reg.SetCurrent(digest); err != nil {
		return core.GenerationInfo{}, err
	}
	col.Counter("lifecycle.rollbacks").Inc()
	m.currentDigest = digest
	m.lastPromotion = time.Now()
	return gen, nil
}

// State snapshots the lifecycle for metrics/trace surfaces.
func (m *Manager) State() State {
	m.mu.Lock()
	defer m.mu.Unlock()
	col := m.ck.Obs()
	return State{
		Generation:    m.ck.Generation(),
		CurrentDigest: m.currentDigest,
		LastPromotion: m.lastPromotion,
		LastShadow:    m.lastShadow,
		Trains:        col.Counter("lifecycle.trains").Load(),
		Promotions:    col.Counter("lifecycle.promotions").Load(),
		Rejections:    col.Counter("lifecycle.rejections").Load(),
		Rollbacks:     col.Counter("lifecycle.rollbacks").Load(),
	}
}

// shadowEval vets every held-out app through both checkers' pipelines and
// scores the gates.
func (m *Manager) shadowEval(ctx context.Context, challenger *core.Checker,
	c *dataset.Corpus, holdoutIdx []int) (ShadowReport, error) {
	labels := make([]bool, len(holdoutIdx))
	champScores := make([]float64, len(holdoutIdx))
	challScores := make([]float64, len(holdoutIdx))
	var champConf, challConf ml.Confusion

	for i, idx := range holdoutIdx {
		labels[i] = c.Apps[idx].Label == behavior.Malicious
		sub := core.Submission{Program: c.Program(idx)}

		cv, err := m.ck.Vet(ctx, sub)
		if err != nil {
			return ShadowReport{}, fmt.Errorf("lifecycle: shadow champion vet: %w", err)
		}
		nv, err := challenger.Vet(ctx, sub)
		if err != nil {
			return ShadowReport{}, fmt.Errorf("lifecycle: shadow challenger vet: %w", err)
		}
		champScores[i], challScores[i] = cv.Score, nv.Score
		champConf.Observe(cv.Malicious, labels[i])
		challConf.Observe(nv.Malicious, labels[i])
	}

	rep := ShadowReport{
		Holdout: len(holdoutIdx),
		Champion: Scorecard{
			Precision: champConf.Precision(), Recall: champConf.Recall(),
			F1: champConf.F1(), AUC: ml.AUCScores(champScores, labels),
		},
		Challenger: Scorecard{
			Precision: challConf.Precision(), Recall: challConf.Recall(),
			F1: challConf.F1(), AUC: ml.AUCScores(challScores, labels),
		},
	}
	rep.F1Drop = rep.Champion.F1 - rep.Challenger.F1
	rep.AUCDrop = rep.Champion.AUC - rep.Challenger.AUC
	switch {
	case rep.Holdout < m.gates.MinHoldout:
		rep.Reason = fmt.Sprintf("holdout %d < %d", rep.Holdout, m.gates.MinHoldout)
	case rep.F1Drop > m.gates.MaxF1Drop:
		rep.Reason = fmt.Sprintf("F1 drop %.4f exceeds %.4f", rep.F1Drop, m.gates.MaxF1Drop)
	case rep.AUCDrop > m.gates.MaxAUCDrop:
		rep.Reason = fmt.Sprintf("AUC drop %.4f exceeds %.4f", rep.AUCDrop, m.gates.MaxAUCDrop)
	default:
		rep.Pass = true
	}
	return rep, nil
}

// splitCorpus deals every k-th app to the holdout (stride split:
// deterministic, label-mix preserving for the generators' interleaved
// label layout). Train apps are returned directly; holdout apps as corpus
// indices so the shadow evaluation reuses the corpus's own programs.
func splitCorpus(c *dataset.Corpus, gates GateConfig) (train []dataset.App, holdoutIdx []int) {
	k := int(1 / gates.HoldoutFraction)
	if k < 2 {
		k = 2
	}
	for i, app := range c.Apps {
		if i%k == k-1 {
			holdoutIdx = append(holdoutIdx, i)
		} else {
			train = append(train, app)
		}
	}
	return train, holdoutIdx
}

// Fingerprint identifies a labelled corpus: sha256 over every app's
// canonical program encoding and label, so a registry manifest records
// exactly which data trained the generation.
func Fingerprint(c *dataset.Corpus) string {
	h := sha256.New()
	for i := range c.Apps {
		p := c.Program(i)
		if data, err := p.Encode(); err == nil {
			h.Write(data)
		}
		if c.Apps[i].Label == behavior.Malicious {
			h.Write([]byte{1})
		} else {
			h.Write([]byte{0})
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// emitSpan books one lifecycle phase span on the obs spine.
func emitSpan(col *obs.Collector, name string, dur time.Duration, note string, err error) {
	col.Emit(obs.Event{Kind: obs.KindSpan, Name: name, Dur: dur, Note: note, Err: err})
}

func shortDigest(d string) string {
	if len(d) > 12 {
		return d[:12]
	}
	return d
}
