package lifecycle

import (
	"context"
	"reflect"
	"testing"

	"apichecker/internal/core"
	"apichecker/internal/dataset"
	"apichecker/internal/framework"
	"apichecker/internal/modelstore"
)

// tieredChecker trains a checker with a non-trivial triage band so a
// slice of submissions short-circuits at tier 1.
func tieredChecker(t *testing.T, apps int) (*core.Checker, *dataset.Corpus) {
	t.Helper()
	u := framework.MustGenerate(framework.TestConfig(3000))
	dcfg := dataset.DefaultConfig()
	dcfg.NumApps = apps
	corpus, err := dataset.Generate(u, dcfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.TriageLo, cfg.TriageHi = 0.05, 0.95
	ck, _, err := core.TrainFromCorpus(corpus, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ck, corpus
}

// tierCounts tallies verdict tiers.
func tierCounts(vs []*core.Verdict) (tier1, tier2 int) {
	for _, v := range vs {
		switch v.Tier {
		case 1:
			tier1++
		default:
			tier2++
		}
	}
	return tier1, tier2
}

// vetIdxs vets the corpus programs at the given indices.
func vetIdxs(t *testing.T, ck *core.Checker, c *dataset.Corpus, idxs []int) []*core.Verdict {
	t.Helper()
	out := make([]*core.Verdict, len(idxs))
	for i, idx := range idxs {
		v, err := ck.Vet(context.Background(), core.Submission{Program: c.Program(idx)})
		if err != nil {
			t.Fatal(err)
		}
		out[i] = v
	}
	return out
}

// TestTriageSurvivesLifecycle: the tier-1 model and its band ride the
// full lifecycle loop — snapshot, cold start, challenger promotion, and
// rollback — and keep short-circuiting identically at every hop.
func TestTriageSurvivesLifecycle(t *testing.T) {
	ck, corpus := tieredChecker(t, 260)
	reg, err := modelstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(ck, reg, GateConfig{MaxF1Drop: 1, MaxAUCDrop: 1, MinHoldout: 20})
	root, err := m.Snapshot("tiered root")
	if err != nil {
		t.Fatal(err)
	}

	// Scan for a tier-mixed probe set: with a wide band most submissions
	// short-circuit, so in-band (tier-2) probes are rare and must be found.
	scan := vetAll(t, ck, corpus, corpus.Len())
	var idxs []int
	var n1, n2 int
	for i, v := range scan {
		if v.Tier == 1 && n1 < 12 {
			idxs, n1 = append(idxs, i), n1+1
		}
		if v.Tier == 2 && n2 < 12 {
			idxs, n2 = append(idxs, i), n2+1
		}
	}
	if n1 == 0 || n2 == 0 {
		t.Fatalf("corpus not tier-mixed under band [0.05, 0.95]: %d tier-1, %d tier-2", n1, n2)
	}
	rootVerdicts := vetIdxs(t, ck, corpus, idxs)
	t1, t2 := tierCounts(rootVerdicts)

	// Cold start: the restored checker carries the triage model and band
	// from the artifact's triage section and answers bit-identically.
	cold, _, err := ColdStart(reg)
	if err != nil {
		t.Fatal(err)
	}
	if lo, hi := cold.TriageBand(); lo != 0.05 || hi != 0.95 {
		t.Fatalf("cold-start triage band [%v, %v], want [0.05, 0.95]", lo, hi)
	}
	coldCorpus := refreshedCorpus(t, cold.Universe(), corpus.Len(), corpus.Config().Seed)
	coldVerdicts := vetIdxs(t, cold, coldCorpus, idxs)
	for i := range rootVerdicts {
		if !reflect.DeepEqual(rootVerdicts[i], coldVerdicts[i]) {
			t.Fatalf("verdict %d diverges after cold start:\n got %+v\nwant %+v",
				i, coldVerdicts[i], rootVerdicts[i])
		}
	}

	// Promotion: the challenger retrains with its own triage model; the
	// promoted generation keeps the band and keeps short-circuiting.
	res, err := m.Evolve(context.Background(), refreshedCorpus(t, ck.Universe(), 300, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Promoted {
		t.Fatalf("permissive gates did not promote: %+v", res.Shadow)
	}
	if lo, hi := ck.TriageBand(); lo != 0.05 || hi != 0.95 {
		t.Fatalf("promotion dropped the triage band: [%v, %v]", lo, hi)
	}
	promoted := vetIdxs(t, ck, corpus, idxs)
	p1, _ := tierCounts(promoted)
	if p1 == 0 {
		t.Fatal("promoted generation never short-circuits: challenger lost its triage model")
	}
	for _, v := range promoted {
		if v.Generation != res.Generation.ID {
			t.Fatalf("post-promotion verdict generation %d, want %d", v.Generation, res.Generation.ID)
		}
	}

	// The promoted artifact in the registry carries the triage section:
	// instantiating it reproduces the serving verdicts.
	a, _, err := reg.Current()
	if err != nil {
		t.Fatal(err)
	}
	if a.Triage == nil {
		t.Fatal("promoted artifact has no triage model")
	}
	reck, err := a.Instantiate()
	if err != nil {
		t.Fatal(err)
	}
	reCorpus := refreshedCorpus(t, reck.Universe(), corpus.Len(), corpus.Config().Seed)
	reVerdicts := vetIdxs(t, reck, reCorpus, idxs)
	if !sameVerdictsModuloGeneration(promoted, reVerdicts) {
		t.Fatal("registry replica of the promoted generation diverges from the serving checker")
	}

	// Rollback: the root generation's triage behaviour comes back exactly
	// — same tier split, same verdicts modulo the generation counter.
	if _, err := m.Rollback(root); err != nil {
		t.Fatal(err)
	}
	if lo, hi := ck.TriageBand(); lo != 0.05 || hi != 0.95 {
		t.Fatalf("rollback dropped the triage band: [%v, %v]", lo, hi)
	}
	restored := vetIdxs(t, ck, corpus, idxs)
	if !sameVerdictsModuloGeneration(rootVerdicts, restored) {
		t.Fatal("rollback did not restore the root generation's tiered verdicts")
	}
	r1, r2 := tierCounts(restored)
	if r1 != t1 || r2 != t2 {
		t.Fatalf("rollback tier split %d/%d, want the root's %d/%d", r1, r2, t1, t2)
	}
}
