package lifecycle

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"apichecker/internal/behavior"
	"apichecker/internal/core"
	"apichecker/internal/dataset"
	"apichecker/internal/framework"
	"apichecker/internal/modelstore"
)

// trainedChecker trains a small serving checker over a fresh universe.
func trainedChecker(t *testing.T, apps int) (*core.Checker, *dataset.Corpus) {
	t.Helper()
	u := framework.MustGenerate(framework.TestConfig(3000))
	dcfg := dataset.DefaultConfig()
	dcfg.NumApps = apps
	corpus, err := dataset.Generate(u, dcfg)
	if err != nil {
		t.Fatal(err)
	}
	ck, _, err := core.TrainFromCorpus(corpus, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return ck, corpus
}

// refreshedCorpus builds a second labelled corpus over the same universe
// (the "original dataset plus newly labelled submissions" of §5.3).
func refreshedCorpus(t *testing.T, u *framework.Universe, apps int, seed int64) *dataset.Corpus {
	t.Helper()
	dcfg := dataset.DefaultConfig()
	dcfg.NumApps = apps
	dcfg.Seed = seed
	c, err := dataset.Generate(u, dcfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// vetAll vets the first n corpus programs and returns the verdicts.
func vetAll(t *testing.T, ck *core.Checker, c *dataset.Corpus, n int) []*core.Verdict {
	t.Helper()
	out := make([]*core.Verdict, n)
	for i := 0; i < n; i++ {
		v, err := ck.Vet(context.Background(), core.Submission{Program: c.Program(i)})
		if err != nil {
			t.Fatal(err)
		}
		out[i] = v
	}
	return out
}

// sameVerdictsModuloGeneration compares verdicts field by field ignoring
// Generation (two checkers serving the same model report their own swap
// counters).
func sameVerdictsModuloGeneration(a, b []*core.Verdict) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		x, y := *a[i], *b[i]
		x.Generation, y.Generation = 0, 0
		if !reflect.DeepEqual(x, y) {
			return false
		}
	}
	return true
}

// TestSnapshotColdStartBitIdentical: a checker restored from the on-disk
// registry produces bit-identical verdicts to the one that snapshotted it.
func TestSnapshotColdStartBitIdentical(t *testing.T) {
	ck, corpus := trainedChecker(t, 260)
	reg, err := modelstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(ck, reg, DefaultGateConfig())
	dig, err := m.Snapshot("initial")
	if err != nil {
		t.Fatal(err)
	}

	cold, man, err := ColdStart(reg)
	if err != nil {
		t.Fatal(err)
	}
	if man.Digest != dig {
		t.Fatalf("cold-start manifest digest %q, want %q", man.Digest, dig)
	}
	if g := cold.Generation(); g.Digest != dig {
		t.Fatalf("cold-start generation digest %q, want %q", g.Digest, dig)
	}

	want := vetAll(t, ck, corpus, 24)
	// The cold checker has its own (replayed) universe; regenerate the
	// same programs over it to prove the replay is bit-identical too.
	coldCorpus := refreshedCorpus(t, cold.Universe(), corpus.Len(), corpus.Config().Seed)
	got := vetAll(t, cold, coldCorpus, 24)
	for i := range want {
		if !reflect.DeepEqual(want[i], got[i]) {
			t.Fatalf("verdict %d diverges after cold start:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}
}

// TestEvolvePromotes: a passing challenger is stored, marked current, and
// hot-swapped in; the registry records lineage and quality.
func TestEvolvePromotes(t *testing.T) {
	ck, _ := trainedChecker(t, 260)
	reg, err := modelstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(ck, reg, GateConfig{MaxF1Drop: 1, MaxAUCDrop: 1, MinHoldout: 20})
	root, err := m.Snapshot("initial")
	if err != nil {
		t.Fatal(err)
	}

	c2 := refreshedCorpus(t, ck.Universe(), 300, 2)
	res, err := m.Evolve(context.Background(), c2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Promoted || res.Digest == "" {
		t.Fatalf("permissive gates did not promote: %+v", res.Shadow)
	}
	if res.Generation.ID != 2 || ck.Generation().ID != 2 {
		t.Fatalf("serving generation = %d, want 2", ck.Generation().ID)
	}
	if ck.Generation().Digest != res.Digest {
		t.Fatalf("serving digest %q != promoted %q", ck.Generation().Digest, res.Digest)
	}

	cur, err := reg.CurrentDigest()
	if err != nil || cur != res.Digest {
		t.Fatalf("registry current = %q, %v; want %q", cur, err, res.Digest)
	}
	man, err := reg.Manifest(res.Digest)
	if err != nil {
		t.Fatal(err)
	}
	if man.Parent != root {
		t.Fatalf("promoted manifest parent %q, want %q", man.Parent, root)
	}
	if man.Quality == nil || man.TrainReport == nil || man.CorpusFingerprint == "" {
		t.Fatalf("promoted manifest missing provenance: %+v", man)
	}
	if man.CorpusFingerprint != Fingerprint(c2) {
		t.Fatal("corpus fingerprint does not identify the training corpus")
	}

	st := m.State()
	if st.Promotions != 1 || st.Trains != 1 || st.Rejections != 0 {
		t.Fatalf("state counters: %+v", st)
	}
	if st.LastShadow == nil || !st.LastShadow.Pass {
		t.Fatalf("state shadow report: %+v", st.LastShadow)
	}
}

// TestEvolveGateRejects: an impossible gate leaves the champion serving
// and the registry untouched.
func TestEvolveGateRejects(t *testing.T) {
	ck, corpus := trainedChecker(t, 260)
	reg, err := modelstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Demanding the challenger beat the champion's F1 by 2 is impossible
	// (F1 ≤ 1), so every challenger is rejected.
	m := NewManager(ck, reg, GateConfig{MaxF1Drop: -2, MaxAUCDrop: 1, MinHoldout: 20})
	root, err := m.Snapshot("initial")
	if err != nil {
		t.Fatal(err)
	}
	before := vetAll(t, ck, corpus, 12)
	epoch0 := ck.CacheStats().Epoch

	res, err := m.Evolve(context.Background(), refreshedCorpus(t, ck.Universe(), 300, 2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Promoted {
		t.Fatal("impossible gate promoted a challenger")
	}
	if res.Shadow.Pass || res.Shadow.Reason == "" {
		t.Fatalf("shadow report should explain the rejection: %+v", res.Shadow)
	}

	// Champion untouched: same generation, same verdicts, no epoch bump.
	// (An in-memory-trained generation carries no digest; identity is the ID
	// plus the manager's tracked current digest.)
	if g := ck.Generation(); g.ID != 1 {
		t.Fatalf("champion disturbed by rejection: %+v", g)
	}
	if st := m.State(); st.CurrentDigest != root {
		t.Fatalf("manager current digest %q after rejection, want %q", st.CurrentDigest, root)
	}
	if e := ck.CacheStats().Epoch; e != epoch0 {
		t.Fatalf("cache epoch bumped %d times by a rejected challenger", e-epoch0)
	}
	after := vetAll(t, ck, corpus, 12)
	for i := range before {
		if !reflect.DeepEqual(before[i], after[i]) {
			t.Fatalf("verdict %d changed across a rejected evolution", i)
		}
	}

	// Registry untouched: still exactly the root generation, still current.
	list, err := reg.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].Digest != root {
		t.Fatalf("registry grew on rejection: %+v", list)
	}
	if cur, _ := reg.CurrentDigest(); cur != root {
		t.Fatalf("registry current moved to %q on rejection", cur)
	}
	if st := m.State(); st.Rejections != 1 || st.Promotions != 0 {
		t.Fatalf("state counters: %+v", st)
	}
}

// TestRollback: restoring a prior generation brings back its exact
// verdicts, flips CURRENT, and bumps the cache epoch exactly once.
func TestRollback(t *testing.T) {
	ck, corpus := trainedChecker(t, 260)
	reg, err := modelstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(ck, reg, GateConfig{MaxF1Drop: 1, MaxAUCDrop: 1, MinHoldout: 20})
	root, err := m.Snapshot("initial")
	if err != nil {
		t.Fatal(err)
	}
	rootVerdicts := vetAll(t, ck, corpus, 12)

	res, err := m.Evolve(context.Background(), refreshedCorpus(t, ck.Universe(), 300, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Promoted {
		t.Fatalf("setup: promotion failed: %+v", res.Shadow)
	}
	promoted := vetAll(t, ck, corpus, 12)
	if sameVerdictsModuloGeneration(rootVerdicts, promoted) {
		t.Log("note: promoted model scored the probe set identically; rollback still verified via digests")
	}

	epoch1 := ck.CacheStats().Epoch
	gen, err := m.Rollback(root)
	if err != nil {
		t.Fatal(err)
	}
	if gen.ID != 3 || gen.Digest != root {
		t.Fatalf("rollback generation: %+v", gen)
	}
	if e := ck.CacheStats().Epoch; e != epoch1+1 {
		t.Fatalf("rollback bumped the epoch %d times, want exactly 1", e-epoch1)
	}
	if cur, _ := reg.CurrentDigest(); cur != root {
		t.Fatalf("registry current %q after rollback, want %q", cur, root)
	}

	restored := vetAll(t, ck, corpus, 12)
	if !sameVerdictsModuloGeneration(rootVerdicts, restored) {
		t.Fatal("rollback did not restore the prior generation's verdicts")
	}
	for _, v := range restored {
		if v.Generation != 3 {
			t.Fatalf("post-rollback verdict generation %d, want 3", v.Generation)
		}
	}
	if st := m.State(); st.Rollbacks != 1 {
		t.Fatalf("state counters: %+v", st)
	}

	// Rolling back to an unknown digest is a typed registry error.
	if _, err := m.Rollback("deadbeef"); !errors.Is(err, modelstore.ErrNotFound) {
		t.Fatalf("rollback to unknown digest: %v", err)
	}
}

// TestFingerprintDistinguishesCorpora: the fingerprint identifies content,
// not identity.
func TestFingerprintDistinguishesCorpora(t *testing.T) {
	u := framework.MustGenerate(framework.TestConfig(3000))
	c1 := refreshedCorpus(t, u, 60, 1)
	c1b := refreshedCorpus(t, u, 60, 1)
	c2 := refreshedCorpus(t, u, 60, 2)
	if Fingerprint(c1) != Fingerprint(c1b) {
		t.Fatal("identical corpora fingerprint differently")
	}
	if Fingerprint(c1) == Fingerprint(c2) {
		t.Fatal("different corpora share a fingerprint")
	}
	if len(c1.Apps) == 0 || c1.Apps[0].Label != c1b.Apps[0].Label {
		t.Fatal("corpus regeneration is not deterministic")
	}
	_ = behavior.Malicious
}
