package lifecycle

import (
	"context"
	"sync"
	"time"

	"apichecker/internal/dataset"
)

// RunnerConfig shapes the background evolution runner.
type RunnerConfig struct {
	// Corpus produces the refreshed labelled corpus for a retraining
	// round (the original dataset plus newly labelled submissions).
	// Required.
	Corpus func(ctx context.Context) (*dataset.Corpus, error)

	// Interval triggers a round on a timer (§5.3's monthly cadence);
	// 0 retrains only on explicit Trigger calls.
	Interval time.Duration

	// OnResult observes each round's outcome (may be nil). Called from
	// the runner goroutine; err is non-nil when the round itself failed
	// (a gated rejection is a result, not an error).
	OnResult func(res *EvolveResult, err error)
}

// Runner retrains in the background, off the serving path: rounds run in
// one dedicated goroutine, promotion is the manager's atomic hot-swap, and
// the serving checker never blocks on any of it. Trigger requests coalesce
// — a trigger during a running round schedules at most one follow-up.
type Runner struct {
	m   *Manager
	cfg RunnerConfig

	trigger chan struct{}
	stop    chan struct{}
	done    sync.WaitGroup
}

// StartRunner launches the background runner over a manager.
func StartRunner(m *Manager, cfg RunnerConfig) *Runner {
	r := &Runner{
		m:       m,
		cfg:     cfg,
		trigger: make(chan struct{}, 1),
		stop:    make(chan struct{}),
	}
	r.done.Add(1)
	go r.loop()
	return r
}

// Trigger requests an evolution round; it never blocks. Multiple triggers
// while a round runs coalesce into one follow-up round.
func (r *Runner) Trigger() {
	select {
	case r.trigger <- struct{}{}:
	default:
	}
}

// Stop shuts the runner down and waits for any in-flight round to finish.
// The serving checker is unaffected.
func (r *Runner) Stop() {
	close(r.stop)
	r.done.Wait()
}

func (r *Runner) loop() {
	defer r.done.Done()
	var tick <-chan time.Time
	if r.cfg.Interval > 0 {
		t := time.NewTicker(r.cfg.Interval)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-r.stop:
			return
		case <-r.trigger:
		case <-tick:
		}
		r.round()
	}
}

// round runs one evolution, bounded by a context that Stop cancels so
// shutdown does not wait out a long training.
func (r *Runner) round() {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		select {
		case <-r.stop:
			cancel()
		case <-ctx.Done():
		}
	}()

	c, err := r.cfg.Corpus(ctx)
	if err != nil {
		if r.cfg.OnResult != nil {
			r.cfg.OnResult(nil, err)
		}
		return
	}
	res, err := r.m.Evolve(ctx, c)
	if r.cfg.OnResult != nil {
		r.cfg.OnResult(res, err)
	}
}
