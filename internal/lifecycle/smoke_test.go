package lifecycle

import (
	"context"
	"reflect"
	"testing"
	"time"

	"apichecker/internal/core"
	"apichecker/internal/dataset"
	"apichecker/internal/modelstore"
	"apichecker/internal/vetsvc"
)

// TestLifecycleSmoke is the full lifecycle path CI exercises by name:
// train → snapshot → cold-load from disk → serve through the vetting
// service → background retrain → hot-swap → verdicts stay consistent.
func TestLifecycleSmoke(t *testing.T) {
	// Train an initial champion and snapshot it to a registry directory.
	ck, corpus := trainedChecker(t, 260)
	dir := t.TempDir()
	reg, err := modelstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	seed := NewManager(ck, reg, DefaultGateConfig())
	dig, err := seed.Snapshot("initial")
	if err != nil {
		t.Fatal(err)
	}

	// Cold-start a fresh serving process from nothing but the directory.
	cold, man, err := ColdStart(reg)
	if err != nil {
		t.Fatal(err)
	}
	if man.Digest != dig || cold.Generation().Digest != dig {
		t.Fatalf("cold start loaded %q, want %q", cold.Generation().Digest, dig)
	}

	// Serve through the vetting service; verdicts must match the original
	// trainer bit-for-bit.
	svc := vetsvc.New(cold, vetsvc.Config{Workers: 4})
	defer svc.Close()

	coldCorpus := refreshedCorpus(t, cold.Universe(), corpus.Len(), corpus.Config().Seed)
	subs := make([]core.Submission, 16)
	for i := range subs {
		subs[i] = core.Submission{Program: coldCorpus.Program(i)}
	}
	served, err := svc.VetBatch(context.Background(), subs)
	if err != nil {
		t.Fatal(err)
	}
	direct := vetAll(t, ck, corpus, len(subs))
	for i := range served {
		if !reflect.DeepEqual(served[i], direct[i]) {
			t.Fatalf("served verdict %d diverges from the training process", i)
		}
	}

	// Background retrain on a refreshed corpus while the service keeps
	// serving; the runner hot-swaps the promoted challenger in.
	m := NewManager(cold, reg, GateConfig{MaxF1Drop: 1, MaxAUCDrop: 1, MinHoldout: 20})
	results := make(chan *EvolveResult, 1)
	r := StartRunner(m, RunnerConfig{
		Corpus: func(context.Context) (*dataset.Corpus, error) {
			return refreshedCorpus(t, cold.Universe(), 300, 2), nil
		},
		OnResult: func(res *EvolveResult, err error) {
			if err != nil {
				t.Errorf("background round failed: %v", err)
			}
			results <- res
		},
	})
	defer r.Stop()

	// Keep vetting through the swap window.
	stopServe := make(chan struct{})
	serveDone := make(chan struct{})
	go func() {
		defer close(serveDone)
		for i := 0; ; i = (i + 1) % coldCorpus.Len() {
			select {
			case <-stopServe:
				return
			default:
			}
			tk, err := svc.SubmitWait(context.Background(), core.Submission{Program: coldCorpus.Program(i)})
			if err != nil {
				t.Errorf("submit during swap: %v", err)
				return
			}
			if _, err := tk.Wait(context.Background()); err != nil {
				t.Errorf("vet during swap: %v", err)
				return
			}
		}
	}()

	r.Trigger()
	var res *EvolveResult
	select {
	case res = <-results:
	case <-time.After(2 * time.Minute):
		t.Fatal("background evolution did not complete")
	}
	close(stopServe)
	<-serveDone
	if res == nil || !res.Promoted {
		t.Fatalf("background round did not promote: %+v", res)
	}

	// The service now serves generation 2; verdicts are deterministic and
	// attributed to the promoted generation.
	if g := cold.Generation(); g.ID != 2 || g.Digest != res.Digest {
		t.Fatalf("serving generation after swap: %+v", g)
	}
	v1, err := svc.VetBatch(context.Background(), subs)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := svc.VetBatch(context.Background(), subs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range v1 {
		if v1[i].Generation != 2 {
			t.Fatalf("post-swap verdict %d pinned to generation %d", i, v1[i].Generation)
		}
		if !reflect.DeepEqual(v1[i], v2[i]) {
			t.Fatalf("post-swap verdict %d not deterministic", i)
		}
	}

	// The registry now cold-starts straight into the promoted generation.
	cold2, man2, err := ColdStart(reg)
	if err != nil {
		t.Fatal(err)
	}
	if man2.Digest != res.Digest || man2.Parent != dig {
		t.Fatalf("registry lineage after promotion: %+v", man2)
	}
	c2 := refreshedCorpus(t, cold2.Universe(), coldCorpus.Len(), coldCorpus.Config().Seed)
	for i := 0; i < 8; i++ {
		v, err := cold2.Vet(context.Background(), core.Submission{Program: c2.Program(i)})
		if err != nil {
			t.Fatal(err)
		}
		w := *v1[i]
		got := *v
		// The restarted process numbers its generations from 1.
		got.Generation, w.Generation = 0, 0
		if !reflect.DeepEqual(got, w) {
			t.Fatalf("restart after promotion diverges on verdict %d", i)
		}
	}

	if st := m.State(); st.Promotions != 1 || st.Generation.ID != 2 {
		t.Fatalf("lifecycle state after smoke: %+v", st)
	}
}

// TestRunnerCoalescesAndStops: triggers during a round coalesce, a failing
// corpus source surfaces through OnResult, and Stop cancels promptly.
func TestRunnerStopWithoutRounds(t *testing.T) {
	ck, _ := trainedChecker(t, 260)
	reg, err := modelstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(ck, reg, DefaultGateConfig())
	r := StartRunner(m, RunnerConfig{
		Corpus: func(context.Context) (*dataset.Corpus, error) {
			t.Error("idle runner ran a round")
			return nil, nil
		},
	})
	// No trigger, no interval: Stop must return without running a round.
	done := make(chan struct{})
	go func() { r.Stop(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("runner did not stop")
	}
}
