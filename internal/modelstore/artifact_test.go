package modelstore

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"apichecker/internal/core"
	"apichecker/internal/emulator"
	"apichecker/internal/features"
	"apichecker/internal/framework"
	"apichecker/internal/ml"
)

// randomArtifact builds a structurally rich artifact with randomized
// contents: the codec must round-trip whatever the fields hold, not just
// the defaults.
func randomArtifact(t *testing.T, seed int64) *Artifact {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))

	ucfg := framework.TestConfig(2000 + rng.Intn(3000))
	ucfg.Seed = rng.Int63n(1 << 30)
	ucfg.HiddenFraction = rng.Float64()

	cfg := core.DefaultConfig()
	cfg.Events = 1000 + rng.Intn(9000)
	cfg.Seed = rng.Int63n(1 << 30)
	cfg.VerdictCache = rng.Intn(512) - 1
	cfg.Lanes = rng.Intn(8)
	if rng.Intn(2) == 0 {
		cfg.Profile = emulator.GoogleEmulator
	} else {
		cfg.Profile = emulator.LightweightEmulator // carries a Fallback pointer
	}
	cfg.Forest.Trees = 4 + rng.Intn(12)

	nKeys := 5 + rng.Intn(40)
	sel := features.Selection{Config: features.DefaultSelectionConfig()}
	for i := 0; i < nKeys; i++ {
		id := framework.APIID(rng.Intn(5000))
		sel.Keys = append(sel.Keys, id)
		switch rng.Intn(3) {
		case 0:
			sel.SetC = append(sel.SetC, id)
		case 1:
			sel.SetP = append(sel.SetP, id)
		default:
			sel.SetS = append(sel.SetS, id)
		}
	}
	sel.SRC = make([]float64, rng.Intn(100))
	for i := range sel.SRC {
		sel.SRC[i] = rng.NormFloat64()
	}

	nf := 24 + rng.Intn(40)
	d := ml.NewDataset(nf)
	for i := 0; i < 100; i++ {
		x := ml.NewVector(nf)
		y := rng.Float64() < 0.4
		for f := 0; f < nf; f++ {
			p := 0.15
			if y && f%3 == 0 {
				p = 0.7
			}
			if rng.Float64() < p {
				x.Set(f)
			}
		}
		d.Add(x, y)
	}
	fc := ml.ForestConfig{Trees: 8, MaxDepth: 7, MinLeaf: 1, Seed: seed}
	forest := ml.NewRandomForest(fc)
	if err := forest.Train(d); err != nil {
		t.Fatal(err)
	}

	var seeds []int64
	for i := 0; i < rng.Intn(4); i++ {
		seeds = append(seeds, rng.Int63n(1<<30))
	}
	return &Artifact{
		UniverseCfg: ucfg,
		EvolveSeeds: seeds,
		Cfg:         cfg,
		Selection:   sel,
		Forest:      forest,
	}
}

// randomVectors builds scoring inputs matching the forest's feature space.
func randomVectors(rng *rand.Rand, n, features int) []ml.Vector {
	xs := make([]ml.Vector, n)
	for i := range xs {
		x := ml.NewVector(features)
		for f := 0; f < features; f++ {
			if rng.Intn(3) == 0 {
				x.Set(f)
			}
		}
		xs[i] = x
	}
	return xs
}

// TestArtifactRoundTripProperty is the serialization property test:
// across randomized artifacts, encode is deterministic and canonical
// (decode→encode reproduces the bytes), digests are stable, and the
// decoded forest scores bit-identically to the original.
func TestArtifactRoundTripProperty(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		a := randomArtifact(t, seed)
		enc, err := a.Encode()
		if err != nil {
			t.Fatal(err)
		}
		enc2, err := a.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("seed %d: repeated encode differs", seed)
		}

		dec, err := Decode(enc)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		re, err := dec.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, re) {
			t.Fatalf("seed %d: decode→encode not canonical", seed)
		}
		d1, err := a.Digest()
		if err != nil {
			t.Fatal(err)
		}
		d2, err := dec.Digest()
		if err != nil {
			t.Fatal(err)
		}
		if d1 != d2 {
			t.Fatalf("seed %d: digest changed across round trip", seed)
		}

		if dec.UniverseCfg != a.UniverseCfg || dec.Cfg.Events != a.Cfg.Events ||
			dec.Cfg.Profile.Name != a.Cfg.Profile.Name ||
			len(dec.Selection.Keys) != len(a.Selection.Keys) {
			t.Fatalf("seed %d: decoded fields diverge", seed)
		}
		if a.Cfg.Profile.Fallback != nil {
			if dec.Cfg.Profile.Fallback == nil ||
				dec.Cfg.Profile.Fallback.Name != a.Cfg.Profile.Fallback.Name {
				t.Fatalf("seed %d: fallback profile lost", seed)
			}
		}

		rng := rand.New(rand.NewSource(seed * 977))
		xs := randomVectors(rng, 64, 24)
		want := a.Forest.ScoreBatch(xs, nil)
		got := dec.Forest.ScoreBatch(xs, nil)
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("seed %d row %d: decoded forest score %v != %v", seed, i, got[i], want[i])
			}
		}
	}
}

// isTyped reports the error wraps one of the package's decode sentinels.
func isTyped(err error) bool {
	return errors.Is(err, ErrFormat) || errors.Is(err, ErrTruncated) ||
		errors.Is(err, ErrCorruptArtifact)
}

// TestArtifactTruncatedAndCorrupt: every truncation point and every
// single-byte corruption either decodes (a flipped float bit can be
// valid) or fails with a typed error — never a panic, never an untyped
// error.
func TestArtifactTruncatedAndCorrupt(t *testing.T) {
	a := randomArtifact(t, 42)
	enc, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}

	for cut := 0; cut < len(enc); cut += 11 {
		if _, err := Decode(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded successfully", cut)
		} else if !isTyped(err) {
			t.Fatalf("truncation at %d: untyped error %v", cut, err)
		}
	}

	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 400; trial++ {
		bad := append([]byte(nil), enc...)
		i := rng.Intn(len(bad))
		bad[i] ^= byte(1 + rng.Intn(255))
		if _, err := Decode(bad); err != nil && !isTyped(err) {
			t.Fatalf("corruption at byte %d: untyped error %v", i, err)
		}
	}

	// Not an artifact at all.
	if _, err := Decode([]byte("definitely not a model artifact")); !errors.Is(err, ErrFormat) {
		t.Fatalf("bad magic: %v", err)
	}
	if _, err := Decode(nil); !errors.Is(err, ErrTruncated) {
		t.Fatalf("empty payload: %v", err)
	}
}
