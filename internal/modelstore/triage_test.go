package modelstore

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"apichecker/internal/ml"
)

// withTriage attaches a trained tier-1 linear model and a non-trivial
// uncertainty band to an artifact.
func withTriage(t *testing.T, a *Artifact, seed int64) *Artifact {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	nf := 16 + rng.Intn(24)
	d := ml.NewDataset(nf)
	for i := 0; i < 80; i++ {
		x := ml.NewVector(nf)
		y := i%3 == 0
		for f := 0; f < nf; f++ {
			p := 0.1
			if y && f%2 == 0 {
				p = 0.6
			}
			if rng.Float64() < p {
				x.Set(f)
			}
		}
		d.Add(x, y)
	}
	tri, err := ml.TrainLinear(d, ml.DefaultLinearConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	a.Triage = tri
	a.Cfg.TriageLo, a.Cfg.TriageHi = 0.1, 0.9
	return a
}

// TestArtifactTriageRoundTrip: artifacts carrying the optional triage
// section encode deterministically and canonically; the decoded triage
// model scores bit-identically and the band survives in Cfg.
func TestArtifactTriageRoundTrip(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		a := withTriage(t, randomArtifact(t, seed), seed*31)
		enc, err := a.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Contains(enc, []byte(triageMagic)) {
			t.Fatalf("seed %d: encoded tiered artifact has no triage section", seed)
		}
		dec, err := Decode(enc)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if dec.Triage == nil {
			t.Fatalf("seed %d: triage model lost in round trip", seed)
		}
		if dec.Cfg.TriageLo != a.Cfg.TriageLo || dec.Cfg.TriageHi != a.Cfg.TriageHi {
			t.Fatalf("seed %d: band [%v, %v] decoded as [%v, %v]", seed,
				a.Cfg.TriageLo, a.Cfg.TriageHi, dec.Cfg.TriageLo, dec.Cfg.TriageHi)
		}
		re, err := dec.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, re) {
			t.Fatalf("seed %d: decode→encode not canonical with triage section", seed)
		}

		rng := rand.New(rand.NewSource(seed * 131))
		for _, x := range randomVectors(rng, 32, a.Triage.NumFeatures()) {
			if got, want := dec.Triage.Score(x), a.Triage.Score(x); got != want {
				t.Fatalf("seed %d: decoded triage score %v != %v", seed, got, want)
			}
		}
	}
}

// TestArtifactTriageBackwardCompat: the band fields are excluded from the
// reflect-walked Cfg encoding, so a triage-less artifact's bytes — and
// therefore its digest — are identical to the pre-tier format whatever the
// band says; and such artifacts decode with a nil triage model.
func TestArtifactTriageBackwardCompat(t *testing.T) {
	a := randomArtifact(t, 9)
	plain, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(plain, []byte(triageMagic)) {
		t.Fatal("triage-less artifact grew a triage section")
	}

	banded := randomArtifact(t, 9)
	banded.Cfg.TriageLo, banded.Cfg.TriageHi = 0.2, 0.8
	enc, err := banded.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain, enc) {
		t.Fatal("band fields leaked into the Cfg walk: triage-less encodings differ")
	}

	dec, err := Decode(plain)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Triage != nil || dec.Cfg.TriageLo != 0 || dec.Cfg.TriageHi != 0 {
		t.Fatalf("pre-tier artifact decoded with triage state: %v [%v, %v]",
			dec.Triage, dec.Cfg.TriageLo, dec.Cfg.TriageHi)
	}
}

// TestArtifactTriageCorrupt: damage in and around the triage section —
// truncations, garbage trailers, a lying section length — fails with a
// typed error, never a panic. (A truncation exactly at the end of the
// forest is indistinguishable from a valid pre-tier artifact, which is the
// price of an optional trailing section; content addressing catches it.)
func TestArtifactTriageCorrupt(t *testing.T) {
	a := withTriage(t, randomArtifact(t, 21), 77)
	enc, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	secStart := bytes.Index(enc, []byte(triageMagic))
	if secStart < 0 {
		t.Fatal("no triage section")
	}

	for cut := secStart + 1; cut < len(enc); cut++ {
		dec, err := Decode(enc[:cut])
		if err == nil {
			t.Fatalf("truncation at %d decoded successfully (%v)", cut, dec.Triage)
		}
		if !isTyped(err) {
			t.Fatalf("truncation at %d: untyped error %v", cut, err)
		}
	}

	// Garbage where the section magic should be.
	bad := append([]byte(nil), enc...)
	copy(bad[secStart:], "JUNK")
	if _, err := Decode(bad); !errors.Is(err, ErrCorruptArtifact) {
		t.Fatalf("bad section magic: %v", err)
	}

	// A section length that disagrees with the remaining bytes.
	bad = append([]byte(nil), enc...)
	bad[secStart+len(triageMagic)] ^= 0xFF
	if _, err := Decode(bad); !isTyped(err) {
		t.Fatalf("lying section length: %v", err)
	}

	// Random corruption anywhere in the section: typed error or a clean
	// decode (float bit flips are legal), never a panic.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 300; trial++ {
		bad := append([]byte(nil), enc...)
		i := secStart + rng.Intn(len(bad)-secStart)
		bad[i] ^= byte(1 + rng.Intn(255))
		if _, err := Decode(bad); err != nil && !isTyped(err) {
			t.Fatalf("corruption at byte %d: untyped error %v", i, err)
		}
	}
}
