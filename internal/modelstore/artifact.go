// Package modelstore is the model-lifecycle persistence layer: versioned,
// content-addressed model artifacts and an on-disk registry of
// generations.
//
// An Artifact is everything a market needs to cold-start a vetting
// checker bit-identically: the universe generation config plus the
// recorded Evolve seed history (the universe itself is never serialized —
// Generate and Evolve are deterministic, so replaying the seeds rebuilds
// it exactly), the deployment config, the key-API selection, and the
// trained forest. The encoding is deterministic hand-laid-out
// little-endian binary — the same parts always produce the same bytes —
// so artifacts are content-addressed by their sha256 digest, and a
// round-tripped checker produces bit-identical verdicts.
//
// The Registry stores artifacts under <dir>/gens/<digest>.apkmodel with a
// JSON manifest (<digest>.json) recording lineage (parent digest), the
// corpus fingerprint, the train report, and shadow-evaluation quality
// metrics; <dir>/CURRENT names the serving generation so a restarted
// tmarket can cold-start from the latest good model. All writes are
// atomic (temp file + rename).
package modelstore

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"math"
	"reflect"

	"apichecker/internal/core"
	"apichecker/internal/features"
	"apichecker/internal/framework"
	"apichecker/internal/ml"
)

// Typed decode failures. Decoding never panics: corrupt or truncated
// payloads — at any byte — surface as errors wrapping one of these.
var (
	// ErrFormat marks a payload that is not a model artifact at all (bad
	// magic) or one written by an incompatible format version.
	ErrFormat = errors.New("modelstore: not a model artifact (bad magic or version)")
	// ErrTruncated marks a structurally valid prefix that ends early.
	ErrTruncated = errors.New("modelstore: truncated artifact")
	// ErrCorruptArtifact marks a payload that fails structural validation
	// (impossible counts, trailing garbage, an invalid embedded forest).
	ErrCorruptArtifact = errors.New("modelstore: corrupt artifact")
)

// artifactMagic opens every artifact; artifactVersion guards layout
// changes. triageMagic opens the optional trailing triage section —
// presence-gated rather than version-gated, so artifacts with and without
// it coexist under version 1.
const (
	artifactMagic   = "APKMODEL"
	artifactVersion = 1
	triageMagic     = "TRI1"
)

// maxCount bounds decoded element counts so a corrupt length prefix
// cannot trigger a huge allocation before its bounds check fails.
const maxCount = 1 << 26

// Artifact is one complete, self-contained model generation.
type Artifact struct {
	// UniverseCfg and EvolveSeeds reconstruct the framework universe:
	// Generate(UniverseCfg) then Evolve(seed) per recorded seed, which is
	// bit-identical to the universe the model was trained on.
	UniverseCfg framework.Config
	EvolveSeeds []int64

	// Cfg is the deployment configuration the checker runs under.
	Cfg core.Config

	// Selection is the key-API selection the extractor and hook registry
	// are built over.
	Selection features.Selection

	// Forest is the trained classifier.
	Forest *ml.RandomForest

	// Triage is the optional tier-1 manifest-only linear scorer; nil for
	// artifacts written before the tier existed (they decode unchanged —
	// the triage section is a trailing optional extension, not a layout
	// change). When present it is encoded together with the uncertainty
	// band from Cfg.TriageLo/TriageHi, which are excluded from the
	// reflect-walked Cfg encoding (tagged artifact:"-") precisely so old
	// digests stay stable.
	Triage *ml.Linear
}

// Snapshot captures a checker's serving generation as an artifact.
func Snapshot(ck *core.Checker) (*Artifact, error) {
	parts := ck.Parts()
	if parts.Model == nil || !parts.Model.Trained() {
		return nil, fmt.Errorf("modelstore: checker has no trained model")
	}
	return &Artifact{
		UniverseCfg: parts.Universe.Config(),
		EvolveSeeds: parts.Universe.EvolveHistory(),
		Cfg:         ck.Config(),
		Selection:   *parts.Selection,
		Forest:      parts.Model,
		Triage:      parts.Triage,
	}, nil
}

// FromParts assembles an artifact from explicit trained parts and the
// deployment config (the lifecycle trainer's path, where the parts exist
// before any checker serves them).
func FromParts(parts core.ModelParts, cfg core.Config) (*Artifact, error) {
	if parts.Universe == nil || parts.Selection == nil || parts.Model == nil {
		return nil, fmt.Errorf("modelstore: incomplete model parts")
	}
	return &Artifact{
		UniverseCfg: parts.Universe.Config(),
		EvolveSeeds: parts.Universe.EvolveHistory(),
		Cfg:         cfg,
		Selection:   *parts.Selection,
		Forest:      parts.Model,
		Triage:      parts.Triage,
	}, nil
}

// Encode serializes the artifact deterministically: encoding the same
// artifact twice yields identical bytes, and Decode(Encode(a)) re-encodes
// to the same bytes — the property content addressing rests on.
func (a *Artifact) Encode() ([]byte, error) {
	if a.Forest == nil {
		return nil, fmt.Errorf("modelstore: artifact has no forest")
	}
	buf := append([]byte(nil), artifactMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, artifactVersion)
	var err error
	if buf, err = appendValue(buf, reflect.ValueOf(a.UniverseCfg)); err != nil {
		return nil, err
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(a.EvolveSeeds)))
	for _, s := range a.EvolveSeeds {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(s))
	}
	if buf, err = appendValue(buf, reflect.ValueOf(a.Cfg)); err != nil {
		return nil, err
	}
	if buf, err = appendValue(buf, reflect.ValueOf(a.Selection)); err != nil {
		return nil, err
	}
	forest, err := a.Forest.AppendBinary(nil)
	if err != nil {
		return nil, fmt.Errorf("modelstore: %w", err)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(forest)))
	buf = append(buf, forest...)
	if a.Triage != nil {
		// Optional trailing triage section: magic, section length, the
		// uncertainty band (which is excluded from the Cfg walk), then the
		// linear model. Written only when a triage model exists, so
		// triage-less artifacts are byte-identical to the pre-tier format.
		sec := binary.LittleEndian.AppendUint64(nil, math.Float64bits(a.Cfg.TriageLo))
		sec = binary.LittleEndian.AppendUint64(sec, math.Float64bits(a.Cfg.TriageHi))
		sec = a.Triage.AppendBinary(sec)
		buf = append(buf, triageMagic...)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(sec)))
		buf = append(buf, sec...)
	}
	return buf, nil
}

// Digest returns the artifact's content address: hex sha256 of its
// canonical encoding.
func (a *Artifact) Digest() (string, error) {
	data, err := a.Encode()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// Decode parses an encoded artifact. The whole payload must be consumed —
// trailing bytes are corruption, not slack. Failures wrap ErrFormat,
// ErrTruncated, or ErrCorruptArtifact and never panic.
func Decode(data []byte) (*Artifact, error) {
	if len(data) < len(artifactMagic)+4 {
		return nil, fmt.Errorf("%w: %d bytes", ErrTruncated, len(data))
	}
	if string(data[:len(artifactMagic)]) != artifactMagic {
		return nil, ErrFormat
	}
	if v := binary.LittleEndian.Uint32(data[len(artifactMagic):]); v != artifactVersion {
		return nil, fmt.Errorf("%w: format version %d, want %d", ErrFormat, v, artifactVersion)
	}
	r := &reader{data: data, off: len(artifactMagic) + 4}

	a := &Artifact{}
	if err := readValue(r, reflect.ValueOf(&a.UniverseCfg).Elem()); err != nil {
		return nil, err
	}
	nSeeds, err := r.u32()
	if err != nil {
		return nil, err
	}
	if nSeeds > maxCount {
		return nil, fmt.Errorf("%w: %d evolve seeds", ErrCorruptArtifact, nSeeds)
	}
	a.EvolveSeeds = make([]int64, nSeeds)
	for i := range a.EvolveSeeds {
		v, err := r.u64()
		if err != nil {
			return nil, err
		}
		a.EvolveSeeds[i] = int64(v)
	}
	if err := readValue(r, reflect.ValueOf(&a.Cfg).Elem()); err != nil {
		return nil, err
	}
	if err := readValue(r, reflect.ValueOf(&a.Selection).Elem()); err != nil {
		return nil, err
	}
	fLen, err := r.u32()
	if err != nil {
		return nil, err
	}
	if int(fLen) > len(r.data)-r.off {
		return nil, fmt.Errorf("%w: forest section claims %d bytes, %d remain",
			ErrCorruptArtifact, fLen, len(r.data)-r.off)
	}
	forest, n, err := ml.DecodeForestBinary(r.data[r.off : r.off+int(fLen)])
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptArtifact, err)
	}
	if n != int(fLen) {
		return nil, fmt.Errorf("%w: forest decoded %d of %d bytes", ErrCorruptArtifact, n, fLen)
	}
	a.Forest = forest
	r.off += n
	if r.off == len(r.data) {
		return a, nil // pre-triage artifact: nothing follows the forest
	}
	// Whatever follows the forest must be exactly one triage section;
	// trailing bytes are still corruption, not slack.
	magic, err := r.bytes(len(triageMagic))
	if err != nil || string(magic) != triageMagic {
		return nil, fmt.Errorf("%w: trailing bytes are not a triage section", ErrCorruptArtifact)
	}
	tLen, err := r.u32()
	if err != nil {
		return nil, err
	}
	if int(tLen) != len(r.data)-r.off {
		return nil, fmt.Errorf("%w: triage section claims %d bytes, %d remain",
			ErrCorruptArtifact, tLen, len(r.data)-r.off)
	}
	loBits, err := r.u64()
	if err != nil {
		return nil, err
	}
	hiBits, err := r.u64()
	if err != nil {
		return nil, err
	}
	a.Cfg.TriageLo = math.Float64frombits(loBits)
	a.Cfg.TriageHi = math.Float64frombits(hiBits)
	triage, n, err := ml.DecodeLinearBinary(r.data[r.off:])
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptArtifact, err)
	}
	if r.off+n != len(r.data) {
		return nil, fmt.Errorf("%w: triage model decoded %d of %d bytes", ErrCorruptArtifact, n, len(r.data)-r.off)
	}
	a.Triage = triage
	return a, nil
}

// Parts reconstructs the trained parts: the universe is rebuilt by
// replaying the recorded generation (deterministic, so bit-identical to
// the training universe), and the extractor is rebuilt over the selection.
// The returned parts carry the artifact's digest, so a checker assembled
// from them is attributable to this artifact.
func (a *Artifact) Parts() (core.ModelParts, error) {
	u, err := framework.Rebuild(a.UniverseCfg, a.EvolveSeeds)
	if err != nil {
		return core.ModelParts{}, fmt.Errorf("modelstore: rebuild universe: %w", err)
	}
	sel := a.Selection
	ex, err := features.NewExtractor(u, sel.Keys, a.Cfg.Mode)
	if err != nil {
		return core.ModelParts{}, fmt.Errorf("modelstore: rebuild extractor: %w", err)
	}
	dig, err := a.Digest()
	if err != nil {
		return core.ModelParts{}, err
	}
	return core.ModelParts{
		Universe:  u,
		Selection: &sel,
		Extractor: ex,
		Model:     a.Forest,
		Digest:    dig,
		Triage:    a.Triage,
	}, nil
}

// Instantiate cold-starts a serving checker from the artifact. Verdicts
// are bit-identical to the checker the artifact snapshotted — same
// universe, same keys, same forest, and content-derived Monkey seeds.
func (a *Artifact) Instantiate() (*core.Checker, error) {
	parts, err := a.Parts()
	if err != nil {
		return nil, err
	}
	return core.NewFromParts(parts, a.Cfg)
}

// appendValue deterministically encodes a value by walking its type:
// struct fields in declaration order, integers as little-endian u64,
// floats as IEEE bit patterns, strings and slices length-prefixed,
// pointers as a presence byte plus the element. Walking the type (rather
// than hand-listing fields per struct) keeps the codec in lockstep with
// the config structs it serializes — a new field changes the encoding,
// which changes digests, which is exactly what content addressing wants.
func appendValue(buf []byte, v reflect.Value) ([]byte, error) {
	switch v.Kind() {
	case reflect.Bool:
		b := byte(0)
		if v.Bool() {
			b = 1
		}
		return append(buf, b), nil
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return binary.LittleEndian.AppendUint64(buf, uint64(v.Int())), nil
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		return binary.LittleEndian.AppendUint64(buf, v.Uint()), nil
	case reflect.Float32, reflect.Float64:
		return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.Float())), nil
	case reflect.String:
		s := v.String()
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
		return append(buf, s...), nil
	case reflect.Slice:
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v.Len()))
		var err error
		for i := 0; i < v.Len(); i++ {
			if buf, err = appendValue(buf, v.Index(i)); err != nil {
				return nil, err
			}
		}
		return buf, nil
	case reflect.Pointer:
		if v.IsNil() {
			return append(buf, 0), nil
		}
		return appendValue(append(buf, 1), v.Elem())
	case reflect.Struct:
		var err error
		for i := 0; i < v.NumField(); i++ {
			// artifact:"-" excludes a field from the walk — used by fields
			// that travel in a dedicated optional section instead, so adding
			// them does not change the digests of existing artifacts.
			if v.Type().Field(i).Tag.Get("artifact") == "-" {
				continue
			}
			if buf, err = appendValue(buf, v.Field(i)); err != nil {
				return nil, err
			}
		}
		return buf, nil
	default:
		return nil, fmt.Errorf("modelstore: cannot encode %s", v.Type())
	}
}

// readValue decodes into a settable value, mirroring appendValue exactly.
func readValue(r *reader, v reflect.Value) error {
	switch v.Kind() {
	case reflect.Bool:
		b, err := r.byte()
		if err != nil {
			return err
		}
		if b > 1 {
			return fmt.Errorf("%w: bool byte %d", ErrCorruptArtifact, b)
		}
		v.SetBool(b == 1)
		return nil
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		n, err := r.u64()
		if err != nil {
			return err
		}
		if v.OverflowInt(int64(n)) {
			return fmt.Errorf("%w: %d overflows %s", ErrCorruptArtifact, int64(n), v.Type())
		}
		v.SetInt(int64(n))
		return nil
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		n, err := r.u64()
		if err != nil {
			return err
		}
		if v.OverflowUint(n) {
			return fmt.Errorf("%w: %d overflows %s", ErrCorruptArtifact, n, v.Type())
		}
		v.SetUint(n)
		return nil
	case reflect.Float32, reflect.Float64:
		bits, err := r.u64()
		if err != nil {
			return err
		}
		v.SetFloat(math.Float64frombits(bits))
		return nil
	case reflect.String:
		n, err := r.u32()
		if err != nil {
			return err
		}
		if n > maxCount {
			return fmt.Errorf("%w: string of %d bytes", ErrCorruptArtifact, n)
		}
		b, err := r.bytes(int(n))
		if err != nil {
			return err
		}
		v.SetString(string(b))
		return nil
	case reflect.Slice:
		n, err := r.u32()
		if err != nil {
			return err
		}
		if n > maxCount {
			return fmt.Errorf("%w: slice of %d elements", ErrCorruptArtifact, n)
		}
		s := reflect.MakeSlice(v.Type(), int(n), int(n))
		for i := 0; i < int(n); i++ {
			if err := readValue(r, s.Index(i)); err != nil {
				return err
			}
		}
		v.Set(s)
		return nil
	case reflect.Pointer:
		b, err := r.byte()
		if err != nil {
			return err
		}
		switch b {
		case 0:
			v.SetZero()
			return nil
		case 1:
			p := reflect.New(v.Type().Elem())
			if err := readValue(r, p.Elem()); err != nil {
				return err
			}
			v.Set(p)
			return nil
		default:
			return fmt.Errorf("%w: pointer presence byte %d", ErrCorruptArtifact, b)
		}
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			if v.Type().Field(i).Tag.Get("artifact") == "-" {
				continue
			}
			if err := readValue(r, v.Field(i)); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("modelstore: cannot decode %s", v.Type())
	}
}

// reader is a bounds-checked little-endian cursor; reads past the end
// report ErrTruncated.
type reader struct {
	data []byte
	off  int
}

func (r *reader) bytes(n int) ([]byte, error) {
	if r.off+n > len(r.data) {
		return nil, fmt.Errorf("%w: at byte %d", ErrTruncated, r.off)
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *reader) byte() (byte, error) {
	b, err := r.bytes(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (r *reader) u32() (uint32, error) {
	b, err := r.bytes(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (r *reader) u64() (uint64, error) {
	b, err := r.bytes(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}
