package modelstore

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestRegistryPutCurrentList(t *testing.T) {
	r, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.CurrentDigest(); !errors.Is(err, ErrNoCurrent) {
		t.Fatalf("fresh registry current: %v", err)
	}

	a1 := randomArtifact(t, 1)
	d1, err := r.Put(a1, Manifest{Note: "initial", CreatedAt: time.Unix(100, 0).UTC()})
	if err != nil {
		t.Fatal(err)
	}
	a2 := randomArtifact(t, 2)
	d2, err := r.Put(a2, Manifest{
		Parent:            d1,
		Note:              "promoted",
		CreatedAt:         time.Unix(200, 0).UTC(),
		CorpusFingerprint: "fp-2",
		Quality:           &Quality{Precision: 0.98, Recall: 0.96, F1: 0.97, AUC: 0.99, Holdout: 120},
	})
	if err != nil {
		t.Fatal(err)
	}
	if d1 == d2 {
		t.Fatal("distinct artifacts share a digest")
	}

	if err := r.SetCurrent(d2); err != nil {
		t.Fatal(err)
	}
	cur, err := r.CurrentDigest()
	if err != nil || cur != d2 {
		t.Fatalf("current = %q, %v; want %q", cur, err, d2)
	}

	got, m, err := r.Current()
	if err != nil {
		t.Fatal(err)
	}
	gd, err := got.Digest()
	if err != nil || gd != d2 {
		t.Fatalf("loaded current digest %q, %v", gd, err)
	}
	if m.Parent != d1 || m.Quality == nil || m.Quality.Holdout != 120 {
		t.Fatalf("manifest round trip: %+v", m)
	}

	list, err := r.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 || list[0].Digest != d1 || list[1].Digest != d2 {
		t.Fatalf("list = %+v", list)
	}

	// Unknown digests are typed errors.
	if err := r.SetCurrent("deadbeef"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("SetCurrent unknown: %v", err)
	}
	if _, _, err := r.Load("deadbeef"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Load unknown: %v", err)
	}
}

func TestRegistryCorruptEntries(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	dig, err := r.Put(randomArtifact(t, 3), Manifest{})
	if err != nil {
		t.Fatal(err)
	}

	// Corrupt manifest JSON: typed error, no panic.
	if err := os.WriteFile(filepath.Join(dir, "gens", dig+".json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Manifest(dig); !errors.Is(err, ErrCorruptArtifact) {
		t.Fatalf("corrupt manifest: %v", err)
	}

	// Truncated artifact file: typed error through Load.
	path := filepath.Join(dir, "gens", dig+".apkmodel")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Load(dig); !isTyped(err) {
		t.Fatalf("truncated artifact file: %v", err)
	}
}
