package modelstore

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"apichecker/internal/core"
)

// Registry errors.
var (
	// ErrNotFound marks a digest the registry does not hold.
	ErrNotFound = errors.New("modelstore: generation not found")
	// ErrNoCurrent marks a registry with no serving generation recorded
	// (a fresh model dir before the first snapshot).
	ErrNoCurrent = errors.New("modelstore: no current generation")
)

// Quality is the shadow-evaluation scorecard recorded with a generation:
// how the model performed on the held-out slice it was gated on.
type Quality struct {
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
	F1        float64 `json:"f1"`
	AUC       float64 `json:"auc"`
	// Holdout is how many held-out apps the metrics were computed over.
	Holdout int `json:"holdout"`
}

// Manifest is the registry's sidecar record for one generation: lineage,
// provenance, and quality. The artifact itself is content-addressed; the
// manifest is everything about it that is not the model.
type Manifest struct {
	// Digest is the artifact's content address (hex sha256 of its
	// encoding).
	Digest string `json:"digest"`
	// Parent is the digest of the generation this one was evolved from;
	// empty for a root generation.
	Parent string `json:"parent,omitempty"`
	// CreatedAt is when the generation was stored.
	CreatedAt time.Time `json:"created_at"`
	// CorpusFingerprint identifies the labelled corpus the generation was
	// trained on.
	CorpusFingerprint string `json:"corpus_fingerprint,omitempty"`
	// TrainReport is the training round's accounting.
	TrainReport *core.TrainReport `json:"train_report,omitempty"`
	// Quality is the shadow-evaluation scorecard; nil when the generation
	// was stored without one (e.g. the initial snapshot).
	Quality *Quality `json:"quality,omitempty"`
	// Note is free-form provenance ("initial snapshot", "promoted",
	// "rollback target", ...).
	Note string `json:"note,omitempty"`
}

// Registry is an on-disk store of model generations:
//
//	<dir>/gens/<digest>.apkmodel   the encoded artifact
//	<dir>/gens/<digest>.json       its manifest
//	<dir>/CURRENT                  digest of the serving generation
//
// Every write is atomic (temp file + rename in the same directory), so a
// crash mid-write never leaves a half-visible generation, and CURRENT
// always names a fully stored artifact.
type Registry struct {
	dir string
}

// Open opens (creating if needed) a registry rooted at dir.
func Open(dir string) (*Registry, error) {
	if dir == "" {
		return nil, fmt.Errorf("modelstore: empty registry dir")
	}
	if err := os.MkdirAll(filepath.Join(dir, "gens"), 0o755); err != nil {
		return nil, fmt.Errorf("modelstore: %w", err)
	}
	return &Registry{dir: dir}, nil
}

// Dir returns the registry root.
func (r *Registry) Dir() string { return r.dir }

func (r *Registry) artifactPath(digest string) string {
	return filepath.Join(r.dir, "gens", digest+".apkmodel")
}

func (r *Registry) manifestPath(digest string) string {
	return filepath.Join(r.dir, "gens", digest+".json")
}

// Put stores an artifact and its manifest, returning the artifact's
// digest. The manifest's Digest and CreatedAt are filled in; storing a
// digest the registry already holds just refreshes the manifest.
func (r *Registry) Put(a *Artifact, m Manifest) (string, error) {
	data, err := a.Encode()
	if err != nil {
		return "", err
	}
	dig, err := a.Digest()
	if err != nil {
		return "", err
	}
	m.Digest = dig
	if m.CreatedAt.IsZero() {
		m.CreatedAt = time.Now().UTC()
	}
	mdata, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return "", fmt.Errorf("modelstore: manifest: %w", err)
	}
	if err := atomicWrite(r.artifactPath(dig), data); err != nil {
		return "", err
	}
	if err := atomicWrite(r.manifestPath(dig), append(mdata, '\n')); err != nil {
		return "", err
	}
	return dig, nil
}

// SetCurrent marks a stored generation as the serving one. The digest
// must already be in the registry.
func (r *Registry) SetCurrent(digest string) error {
	if _, err := os.Stat(r.artifactPath(digest)); err != nil {
		return fmt.Errorf("%w: %s", ErrNotFound, digest)
	}
	return atomicWrite(filepath.Join(r.dir, "CURRENT"), []byte(digest+"\n"))
}

// CurrentDigest returns the serving generation's digest, or ErrNoCurrent.
func (r *Registry) CurrentDigest() (string, error) {
	data, err := os.ReadFile(filepath.Join(r.dir, "CURRENT"))
	if errors.Is(err, os.ErrNotExist) {
		return "", ErrNoCurrent
	}
	if err != nil {
		return "", fmt.Errorf("modelstore: %w", err)
	}
	dig := strings.TrimSpace(string(data))
	if dig == "" {
		return "", ErrNoCurrent
	}
	return dig, nil
}

// Load returns a stored generation's artifact and manifest by digest.
func (r *Registry) Load(digest string) (*Artifact, Manifest, error) {
	data, err := os.ReadFile(r.artifactPath(digest))
	if errors.Is(err, os.ErrNotExist) {
		return nil, Manifest{}, fmt.Errorf("%w: %s", ErrNotFound, digest)
	}
	if err != nil {
		return nil, Manifest{}, fmt.Errorf("modelstore: %w", err)
	}
	a, err := Decode(data)
	if err != nil {
		return nil, Manifest{}, err
	}
	m, err := r.Manifest(digest)
	if err != nil {
		return nil, Manifest{}, err
	}
	return a, m, nil
}

// ArtifactBytes returns a stored generation's raw encoded artifact by
// digest — the model-distribution read path: a coordinator serves these
// bytes verbatim over GET /v1/model/{digest}, and the content address
// lets the puller verify integrity without trusting the transport.
func (r *Registry) ArtifactBytes(digest string) ([]byte, error) {
	data, err := os.ReadFile(r.artifactPath(digest))
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, digest)
	}
	if err != nil {
		return nil, fmt.Errorf("modelstore: %w", err)
	}
	return data, nil
}

// Manifest returns a stored generation's manifest by digest.
func (r *Registry) Manifest(digest string) (Manifest, error) {
	data, err := os.ReadFile(r.manifestPath(digest))
	if errors.Is(err, os.ErrNotExist) {
		return Manifest{}, fmt.Errorf("%w: %s", ErrNotFound, digest)
	}
	if err != nil {
		return Manifest{}, fmt.Errorf("modelstore: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return Manifest{}, fmt.Errorf("%w: manifest for %s: %v", ErrCorruptArtifact, digest, err)
	}
	return m, nil
}

// Current loads the serving generation.
func (r *Registry) Current() (*Artifact, Manifest, error) {
	dig, err := r.CurrentDigest()
	if err != nil {
		return nil, Manifest{}, err
	}
	return r.Load(dig)
}

// List returns every stored generation's manifest, oldest first (ties
// broken by digest so the order is stable).
func (r *Registry) List() ([]Manifest, error) {
	ents, err := os.ReadDir(filepath.Join(r.dir, "gens"))
	if err != nil {
		return nil, fmt.Errorf("modelstore: %w", err)
	}
	var out []Manifest
	for _, e := range ents {
		name := e.Name()
		if !strings.HasSuffix(name, ".json") {
			continue
		}
		m, err := r.Manifest(strings.TrimSuffix(name, ".json"))
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].CreatedAt.Equal(out[j].CreatedAt) {
			return out[i].CreatedAt.Before(out[j].CreatedAt)
		}
		return out[i].Digest < out[j].Digest
	})
	return out, nil
}

// atomicWrite writes data to path via a temp file + rename in the same
// directory, so readers never observe a partial file.
func atomicWrite(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("modelstore: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("modelstore: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("modelstore: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("modelstore: %w", err)
	}
	return nil
}
