package gateway

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"apichecker/internal/obs"
)

var updateGolden = flag.Bool("update", false, "rewrite the Prometheus exposition golden file")

// TestPrometheusGolden locks the exposition format byte for byte:
// lexical metric ordering, TYPE lines, label escaping, quantile labels,
// and _sum/_count rows. Regenerate with `go test ./internal/gateway
// -run TestPrometheusGolden -update` after an intentional format change.
func TestPrometheusGolden(t *testing.T) {
	colA := obs.NewCollector()
	colA.Counter("svc.accepted").Add(42)
	colA.Counter("svc.cache.hits").Add(7)
	colA.Counter("triage.hit").Add(5)
	colA.Counter("triage.band").Add(2)
	colA.Gauge("svc.heap.live_bytes").Set(123456)
	// The workqueue layer's gauges, counters, and lease-age distribution
	// ride the same collector and export like everything else.
	colA.Gauge("svc.queue.depth").Set(5)
	colA.Gauge("svc.queue.leases").Set(2)
	colA.Counter("svc.queue.enqueued").Add(49)
	colA.Counter("svc.queue.acked").Add(41)
	colA.Counter("svc.queue.reclaimed").Add(1)
	colA.Counter("svc.queue.replayed").Add(3)
	la := colA.Distribution("svc.queue.lease_age")
	for _, v := range []float64{0.5, 1.25, 30} {
		la.Observe(v)
	}
	d := colA.Distribution("svc.scan.all")
	for _, v := range []float64{1.5, 2.25, 3, 80.5} {
		d.Observe(v)
	}
	t1 := colA.Distribution("svc.scan.tier1")
	t1.Observe(0.000075)
	colA.Emit(obs.Event{Kind: obs.KindSpan, Name: "admit", Trace: 1})
	colA.Emit(obs.Event{Kind: obs.KindSpan, Name: "cache.lookup", Trace: 1, Note: "miss"})
	colA.Emit(obs.Event{Kind: obs.KindSpan, Name: "triage", Trace: 1, Dur: 75 * time.Microsecond, Note: "hit"})
	colA.Emit(obs.Event{Kind: obs.KindSpan, Name: "emulate", Trace: 1, Dur: 90 * time.Second})
	colA.Emit(obs.Event{Kind: obs.KindSpan, Name: "emulate", Trace: 2, Err: os.ErrDeadlineExceeded})
	// Exotic stage name exercises label escaping.
	colA.Emit(obs.Event{Kind: obs.KindSpan, Name: `weird"stage\name`, Trace: 3})

	colB := obs.NewCollector()
	colB.Counter("gw.submissions.accepted").Add(3)
	// Same counter name on a second collector sums into one row.
	colB.Counter("svc.accepted").Add(8)

	var b strings.Builder
	if err := WriteMetrics(&b, "apichecker", colA, colB); err != nil {
		t.Fatal(err)
	}
	got := b.String()

	golden := filepath.Join("testdata", "metrics.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if got != string(want) {
		t.Errorf("exposition diverged from golden file (run with -update if intentional)\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestMetricNameSanitization pins the dotted-name mapping.
func TestMetricNameSanitization(t *testing.T) {
	cases := map[string]string{
		"svc.cache.hits": "apichecker_svc_cache_hits",
		"model.swaps":    "apichecker_model_swaps",
		"weird-name/x":   "apichecker_weird_name_x",
	}
	for in, want := range cases {
		if got := metricName("apichecker", in); got != want {
			t.Errorf("metricName(%q) = %q, want %q", in, got, want)
		}
	}
}
