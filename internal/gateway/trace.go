// GET /v1/submissions/{id}/trace — a livelog-style Server-Sent Events
// stream of one submission's per-stage pipeline spans. Spans already
// emitted replay immediately in pipeline order; for an in-flight
// submission the stream then tails live spans as the obs sink routes
// them, and every stream terminates with one "done" event carrying the
// final submission resource. A completed submission therefore yields a
// pure replay — the client cannot tell (and needn't care) whether it
// subscribed before or after the vet ran.

package gateway

import (
	"encoding/json"
	"fmt"
	"net/http"

	"apichecker/internal/obs"
)

// traceSpan is the JSON payload of one "span" SSE event.
type traceSpan struct {
	Seq   int64  `json:"seq"`
	Stage string `json:"stage"`
	// Pkg is the submission's package name, best effort.
	Pkg string `json:"pkg,omitempty"`
	// DurSeconds is the stage's virtual-clock duration in seconds.
	DurSeconds float64 `json:"dur_seconds"`
	// Note carries the stage-specific outcome detail (cache outcome,
	// engine name).
	Note  string `json:"note,omitempty"`
	Error string `json:"error,omitempty"`
}

// handleTrace streams the submission's span log as SSE.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	rec := s.lookup(r.PathValue("id"))
	if rec == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown submission id"})
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: "response writer does not support streaming"})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	s.col.Counter("gw.trace.streams").Inc()

	replay, live, finished := rec.subscribe()
	if live != nil {
		defer rec.unsubscribe(live)
	}
	for _, ev := range replay {
		writeSSE(w, "span", spanOf(ev))
	}
	flusher.Flush()
	for !finished {
		select {
		case ev := <-live:
			writeSSE(w, "span", spanOf(ev))
			flusher.Flush()
		case <-rec.done:
			// Drain spans that raced with completion, then terminate.
			for {
				select {
				case ev := <-live:
					writeSSE(w, "span", spanOf(ev))
				default:
					finished = true
				}
				if finished {
					break
				}
			}
		case <-r.Context().Done():
			return
		}
	}
	st, _ := rec.status()
	writeSSE(w, "done", st)
	flusher.Flush()
}

// spanOf maps one obs span event to its SSE payload.
func spanOf(ev obs.Event) traceSpan {
	sp := traceSpan{
		Seq:        ev.Trace,
		Stage:      ev.Name,
		Pkg:        ev.Package,
		DurSeconds: ev.Dur.Seconds(),
		Note:       ev.Note,
	}
	if ev.Err != nil {
		sp.Error = ev.Err.Error()
	}
	return sp
}

// writeSSE writes one SSE frame ("event:" + single-line "data:" JSON).
func writeSSE(w http.ResponseWriter, event string, payload any) {
	data, err := json.Marshal(payload)
	if err != nil {
		data = []byte(`{"error":"marshal failure"}`)
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
}
