package gateway

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"apichecker/internal/core"
	"apichecker/internal/dataset"
	"apichecker/internal/vetsvc"
)

// tieredFixture runs a gateway over a checker trained with a non-trivial
// triage band.
func tieredFixture(t *testing.T) (*gatewayFixture, *dataset.Corpus) {
	t.Helper()
	dcfg := dataset.DefaultConfig()
	dcfg.NumApps = 200
	corpus, err := dataset.Generate(testU, dcfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.TriageLo, cfg.TriageHi = 0.05, 0.95
	ck, _, err := core.TrainFromCorpus(corpus, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return newFixtureWith(t, ck, vetsvc.Config{Workers: 4, QueueSize: 32}, Config{}), corpus
}

// TestGatewayVerdictTier: the verdict tier survives the HTTP round trip —
// POST /v1/submissions then poll — as a literal "Tier" field in the wire
// JSON, matching the in-process verdict; and the triage stage's counters
// and spans surface in the Prometheus exposition.
func TestGatewayVerdictTier(t *testing.T) {
	fx, corpus := tieredFixture(t)

	sawTier := map[int]bool{}
	for i := 0; i < 40 && (!sawTier[1] || !sawTier[2]); i++ {
		data := buildAPK(t, corpus, i)
		want, err := fx.ck.Vet(context.Background(), core.Submission{Raw: data})
		if err != nil {
			t.Fatal(err)
		}

		st, resp := postAPK(t, fx.ts.URL, "?wait=30s", data)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("app %d: submit status %d (%s)", i, resp.StatusCode, st.Error)
		}
		if st.Verdict == nil || st.Verdict.Tier != want.Tier {
			t.Fatalf("app %d: HTTP verdict tier %+v, want %d", i, st.Verdict, want.Tier)
		}

		// Poll raw JSON: the wire field itself, not just the decoded struct.
		pollResp, err := http.Get(fx.ts.URL + "/v1/submissions/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(pollResp.Body)
		pollResp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		var wire struct {
			Verdict map[string]json.RawMessage
		}
		if err := json.Unmarshal(body, &wire); err != nil {
			t.Fatalf("app %d: poll body: %v", i, err)
		}
		raw, ok := wire.Verdict["Tier"]
		if !ok {
			t.Fatalf("app %d: poll JSON verdict has no Tier field: %s", i, body)
		}
		var tier int
		if err := json.Unmarshal(raw, &tier); err != nil || tier != want.Tier {
			t.Fatalf("app %d: wire tier %s (%v), want %d", i, raw, err, want.Tier)
		}
		sawTier[want.Tier] = true
	}
	if !sawTier[1] || !sawTier[2] {
		t.Fatalf("probe set not tier-mixed: %v", sawTier)
	}

	// The triage stage's activity is visible in /metrics: hit/band counters
	// and the stage span aggregate.
	mresp, err := http.Get(fx.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	expo, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(expo)
	for _, want := range []string{
		"apichecker_triage_hit_total",
		"apichecker_triage_band_total",
		`apichecker_stage_spans_total{stage="triage"}`,
		"apichecker_svc_tier1_total",
		"apichecker_svc_tier2_total",
		`apichecker_svc_scan_tier1{quantile="0.99"}`,
		`apichecker_svc_scan_tier2{quantile="0.99"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("%s missing from /metrics exposition", want)
		}
	}
}
