package gateway

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"apichecker/internal/apk"
	"apichecker/internal/core"
	"apichecker/internal/dataset"
	"apichecker/internal/framework"
	"apichecker/internal/vetsvc"
)

var testU = framework.MustGenerate(framework.TestConfig(3000))

// trainedChecker builds an independent trained checker; training is
// deterministic, so two calls yield behaviourally identical checkers
// with independent vet-sequence counters.
func trainedChecker(t *testing.T) (*core.Checker, *dataset.Corpus) {
	t.Helper()
	cfg := dataset.DefaultConfig()
	cfg.NumApps = 500
	corpus, err := dataset.Generate(testU, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ck, _, err := core.TrainFromCorpus(corpus, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return ck, corpus
}

// gatewayFixture is one running HTTP gateway over a fresh service.
type gatewayFixture struct {
	ck  *core.Checker
	svc *vetsvc.Service
	gw  *Server
	ts  *httptest.Server
}

func newFixture(t *testing.T, scfg vetsvc.Config, gcfg Config) *gatewayFixture {
	t.Helper()
	ck, _ := trainedChecker(t)
	return newFixtureWith(t, ck, scfg, gcfg)
}

func newFixtureWith(t *testing.T, ck *core.Checker, scfg vetsvc.Config, gcfg Config) *gatewayFixture {
	t.Helper()
	svc := vetsvc.New(ck, scfg)
	gw := New(svc, gcfg)
	ts := httptest.NewServer(gw)
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return &gatewayFixture{ck: ck, svc: svc, gw: gw, ts: ts}
}

// buildAPK serializes corpus program i into archive bytes.
func buildAPK(t *testing.T, corpus *dataset.Corpus, i int) []byte {
	t.Helper()
	data, err := apk.Build(corpus.Program(i), testU)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// postAPK submits one archive and decodes the response.
func postAPK(t *testing.T, base, query string, data []byte) (SubmissionStatus, *http.Response) {
	t.Helper()
	resp, err := http.Post(base+"/v1/submissions"+query, "application/octet-stream", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st SubmissionStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode response (status %d): %v", resp.StatusCode, err)
	}
	return st, resp
}

// TestGatewayEquivalence is the acceptance contract: a submission vetted
// through the HTTP gateway yields a verdict bit-identical to the
// in-process Vet path for the same bytes.
func TestGatewayEquivalence(t *testing.T) {
	ckHTTP, corpus := trainedChecker(t)
	ckLocal, _ := trainedChecker(t)
	fx := newFixtureWith(t, ckHTTP, vetsvc.Config{Workers: 4, QueueSize: 16}, Config{})

	for i := 0; i < 5; i++ {
		data := buildAPK(t, corpus, i)
		want, err := ckLocal.Vet(context.Background(), core.Submission{Raw: data})
		if err != nil {
			t.Fatal(err)
		}
		st, resp := postAPK(t, fx.ts.URL, "?wait=30s", data)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("app %d: status %d (%s), want 200", i, resp.StatusCode, st.Error)
		}
		if st.ID != apk.Digest(data) {
			t.Errorf("app %d: submission id %q is not the content digest", i, st.ID)
		}
		if st.Verdict == nil {
			t.Fatalf("app %d: done response carries no verdict", i)
		}
		if *st.Verdict != *want {
			t.Errorf("app %d: HTTP verdict diverged from in-process Vet:\nhttp:  %+v\nlocal: %+v",
				i, *st.Verdict, *want)
		}
	}
}

// TestGatewaySubmitPollTrace drives concurrent submit/poll/trace clients
// against one gateway (this test is the -race workout) and checks the
// trace stream replays the full span chain.
func TestGatewaySubmitPollTrace(t *testing.T) {
	ck, corpus := trainedChecker(t)
	fx := newFixtureWith(t, ck, vetsvc.Config{Workers: 4, QueueSize: 32}, Config{})

	const n = 12
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			data := buildAPK(t, corpus, i)
			st, resp := postAPK(t, fx.ts.URL, "", data)
			if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("app %d: submit status %d", i, resp.StatusCode)
				return
			}
			// Poll until settled, then stream the trace (pure replay).
			deadline := time.Now().Add(30 * time.Second)
			for {
				got, resp := getStatus(t, fx.ts.URL, st.ID, "")
				if resp.StatusCode == http.StatusOK {
					st = got
					break
				}
				if time.Now().After(deadline) {
					errs <- fmt.Errorf("app %d: still %s at deadline", i, got.Status)
					return
				}
				time.Sleep(5 * time.Millisecond)
			}
			if st.Verdict == nil {
				errs <- fmt.Errorf("app %d: done without verdict", i)
				return
			}
			stages, done, err := readTrace(fx.ts.URL, st.ID)
			if err != nil {
				errs <- fmt.Errorf("app %d: trace: %w", i, err)
				return
			}
			if !done {
				errs <- fmt.Errorf("app %d: trace stream ended without done event", i)
				return
			}
			for _, want := range []string{"admit", "cache.lookup", "decode", "emulate", "extract", "infer"} {
				if !stages[want] {
					errs <- fmt.Errorf("app %d: trace replay missing stage %s (got %v)", i, want, stages)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Byte-identical resubmission joins the existing record: same ID, no
	// new vet.
	data := buildAPK(t, corpus, 0)
	st1, _ := postAPK(t, fx.ts.URL, "?wait=30s", data)
	accepted := fx.gw.Obs().Counter("gw.submissions.accepted").Load()
	st2, _ := postAPK(t, fx.ts.URL, "?wait=30s", data)
	if st1.ID != st2.ID {
		t.Errorf("resubmission changed id: %s vs %s", st1.ID, st2.ID)
	}
	if got := fx.gw.Obs().Counter("gw.submissions.accepted").Load(); got != accepted {
		t.Errorf("resubmission started a new vet (accepted %d -> %d)", accepted, got)
	}
}

// getStatus polls one submission.
func getStatus(t *testing.T, base, id, query string) (SubmissionStatus, *http.Response) {
	t.Helper()
	resp, err := http.Get(base + "/v1/submissions/" + id + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st SubmissionStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode poll response (status %d): %v", resp.StatusCode, err)
	}
	return st, resp
}

// readTrace consumes one SSE trace stream to completion, returning the
// set of span stages seen and whether the terminal done event arrived.
func readTrace(base, id string) (stages map[string]bool, done bool, err error) {
	resp, err := http.Get(base + "/v1/submissions/" + id + "/trace")
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		return nil, false, fmt.Errorf("content-type %q", ct)
	}
	stages = map[string]bool{}
	var event string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			payload := strings.TrimPrefix(line, "data: ")
			switch event {
			case "span":
				var sp traceSpan
				if err := json.Unmarshal([]byte(payload), &sp); err != nil {
					return stages, false, err
				}
				stages[sp.Stage] = true
			case "done":
				return stages, true, nil
			}
		}
	}
	return stages, false, sc.Err()
}

// TestGatewayBackpressure429: a full service queue maps to 429 with a
// Retry-After hint, and the archive is not admitted.
func TestGatewayBackpressure429(t *testing.T) {
	ck, corpus := trainedChecker(t)
	gate := make(chan struct{})
	var gateOnce sync.Once
	release := func() { gateOnce.Do(func() { close(gate) }) }
	defer release()
	svc := vetsvc.New(ck, vetsvc.Config{
		Workers:   1,
		QueueSize: 1,
		OnEvent: func(ev vetsvc.Event) {
			if ev.Type == vetsvc.EventStarted {
				<-gate
			}
		},
	})
	gw := New(svc, Config{})
	ts := httptest.NewServer(gw)
	t.Cleanup(func() {
		ts.Close()
		release()
		svc.Close()
	})

	// Head submission stalls the only lane; the second fills the queue.
	if _, resp := postAPK(t, ts.URL, "", buildAPK(t, corpus, 0)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("head submit status %d", resp.StatusCode)
	}
	deadline := time.Now().Add(10 * time.Second)
	for svc.Metrics().InFlight == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never picked up the head submission")
		}
		time.Sleep(time.Millisecond)
	}
	if _, resp := postAPK(t, ts.URL, "", buildAPK(t, corpus, 1)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("queue-filling submit status %d", resp.StatusCode)
	}

	st, resp := postAPK(t, ts.URL, "", buildAPK(t, corpus, 2))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submit into full queue: status %d (%s), want 429", resp.StatusCode, st.Error)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response carries no Retry-After hint")
	}
	// The rejected archive left no record behind.
	if _, resp := getStatus(t, ts.URL, apk.Digest(buildAPK(t, corpus, 2)), ""); resp.StatusCode != http.StatusNotFound {
		t.Errorf("rejected submission left a record (poll status %d)", resp.StatusCode)
	}
}

// TestGatewayDrainDuringInflight: Shutdown stops admissions immediately
// (503), and a hard drain propagates ErrDraining into the in-flight
// submission's record.
func TestGatewayDrainDuringInflight(t *testing.T) {
	ck, corpus := trainedChecker(t)
	gate := make(chan struct{})
	var gateOnce sync.Once
	release := func() { gateOnce.Do(func() { close(gate) }) }
	defer release()
	svc := vetsvc.New(ck, vetsvc.Config{
		Workers:   1,
		QueueSize: 4,
		OnEvent: func(ev vetsvc.Event) {
			if ev.Type == vetsvc.EventStarted {
				<-gate
			}
		},
	})
	gw := New(svc, Config{})
	ts := httptest.NewServer(gw)
	t.Cleanup(ts.Close)

	data := buildAPK(t, corpus, 0)
	st, resp := postAPK(t, ts.URL, "", data)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	deadline := time.Now().Add(10 * time.Second)
	for svc.Metrics().InFlight == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never picked up the submission")
		}
		time.Sleep(time.Millisecond)
	}

	// Shutdown with a short budget: the stalled submission cannot finish,
	// so the drain hard-cancels it with ErrDraining.
	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
		defer cancel()
		shutdownDone <- gw.Shutdown(ctx)
	}()

	// Admissions stop immediately, before the drain resolves.
	drainDeadline := time.Now().Add(10 * time.Second)
	for {
		_, resp := postAPK(t, ts.URL, "", buildAPK(t, corpus, 1))
		if resp.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(drainDeadline) {
			t.Fatalf("draining gateway still admits (status %d)", resp.StatusCode)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if resp, err := http.Get(ts.URL + "/healthz"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("draining /healthz status %d, want 503", resp.StatusCode)
		}
	}

	// Let the hard-cancel fire (timer-driven), then release the lane so
	// the canceled vet unwinds.
	time.Sleep(1 * time.Second)
	release()
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	got, resp := getStatus(t, ts.URL, st.ID, "")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("drained submission poll status %d (%+v), want 503", resp.StatusCode, got)
	}
	if got.Status != "failed" || !strings.Contains(got.Error, "draining") {
		t.Errorf("drained submission = %+v, want failed with draining error", got)
	}
	if m := svc.Metrics(); m.Drained != 1 {
		t.Errorf("metrics.Drained = %d, want 1", m.Drained)
	}
}

// TestGatewayRejectsGarbage: non-zip bodies 400, oversize bodies 413,
// malformed zips fail the vet with 422.
func TestGatewayRejectsGarbage(t *testing.T) {
	fx := newFixture(t, vetsvc.Config{Workers: 2, QueueSize: 8}, Config{MaxUploadBytes: 1 << 20})

	if st, resp := postAPK(t, fx.ts.URL, "", []byte("definitely not a zip")); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage body: status %d (%+v), want 400", resp.StatusCode, st)
	}
	big := make([]byte, 2<<20)
	big[0], big[1] = 'P', 'K'
	if st, resp := postAPK(t, fx.ts.URL, "", big); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversize body: status %d (%+v), want 413", resp.StatusCode, st)
	}
	// Valid zip magic, invalid archive: admitted, then fails decode.
	if st, resp := postAPK(t, fx.ts.URL, "?wait=30s", []byte{'P', 'K', 3, 4, 9, 9}); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("truncated zip: status %d (%+v), want 422", resp.StatusCode, st)
	}
	if _, resp := getStatus(t, fx.ts.URL, "nonexistent", ""); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown id: status %d, want 404", resp.StatusCode)
	}
}

// TestMetricsExposesEverything: every counter, gauge, and distribution
// on the checker's, service's, and gateway's collectors appears in the
// /metrics exposition — with no per-metric code in the exporter.
func TestMetricsExposesEverything(t *testing.T) {
	ck, corpus := trainedChecker(t)
	fx := newFixtureWith(t, ck, vetsvc.Config{Workers: 2, QueueSize: 8}, Config{})

	st, resp := postAPK(t, fx.ts.URL, "?wait=30s", buildAPK(t, corpus, 0))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit status %d (%s)", resp.StatusCode, st.Error)
	}
	fx.svc.Metrics() // publishes the heap gauge

	mresp, err := http.Get(fx.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	body, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if ct := mresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content-type %q", ct)
	}
	text := string(body)
	for _, col := range []struct {
		name string
		c    interface {
			Counters() map[string]uint64
			Gauges() map[string]int64
		}
	}{{"checker", fx.ck.Obs()}, {"service", fx.svc.Obs()}, {"gateway", fx.gw.Obs()}} {
		for name := range col.c.Counters() {
			if !strings.Contains(text, metricName("apichecker", name)+"_total") {
				t.Errorf("%s counter %q missing from /metrics", col.name, name)
			}
		}
		for name := range col.c.Gauges() {
			if !strings.Contains(text, metricName("apichecker", name)) {
				t.Errorf("%s gauge %q missing from /metrics", col.name, name)
			}
		}
	}
	for name := range fx.svc.Obs().Distributions() {
		if !strings.Contains(text, metricName("apichecker", name)+`{quantile="0.99"}`) {
			t.Errorf("distribution %q missing quantile rows in /metrics", name)
		}
	}
	// Stage aggregates ride along with stage labels.
	if !strings.Contains(text, `apichecker_stage_spans_total{stage="emulate"}`) {
		t.Error("stage span counters missing from /metrics")
	}
}
