// Package gateway is the wire-facing market frontend: an HTTP server over
// the always-on vetting service, turning the in-process Vet path into what
// the paper actually operates at T-Market — an always-on endpoint absorbing
// ~10k developer submissions a day over the network (§5.1-§5.2).
//
// The surface is four endpoints plus health:
//
//   - POST /v1/submissions — submit raw APK bytes (bounded read; the
//     apk package's zip-bomb gate vets the declared uncompressed size
//     during decode). Returns a submission ID backed by the content
//     digest, so byte-identical resubmissions map to the same resource
//     and ride the checker's verdict cache. Backpressure is explicit:
//     a full service queue maps to 429 with Retry-After, a draining
//     service to 503, a per-submission deadline expiry to 504.
//   - GET /v1/submissions/{id} — poll the submission; ?wait=<dur> blocks
//     until the verdict (or the wait budget) instead.
//   - GET /v1/submissions/{id}/trace — a livelog-style SSE stream of the
//     submission's per-stage pipeline spans: completed spans replay
//     first, in-flight ones stream as the pipeline emits them.
//   - GET /metrics — Prometheus text exposition derived generically from
//     the obs collectors (checker, service, gateway): every counter,
//     gauge, distribution, and stage aggregate is exported with zero
//     per-metric registration code.
//
// Shutdown drains gracefully: admissions stop (503), in-flight
// submissions finish (hard-cancelled with vetsvc.ErrDraining when the
// drain deadline expires), the persist log is flushed, and only then does
// the HTTP listener close.
package gateway

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"apichecker/internal/apk"
	"apichecker/internal/core"
	"apichecker/internal/obs"
	"apichecker/internal/pipeline"
	"apichecker/internal/vetsvc"
)

// Config tunes one gateway instance. The zero value selects production
// defaults.
type Config struct {
	// MaxUploadBytes bounds the request body of POST /v1/submissions
	// (the wire-size gate in front of apk.Parse's decoded-size gate);
	// <= 0 selects apk.MaxDecodedBytes.
	MaxUploadBytes int64

	// MaxRecords bounds the submission-record registry. When exceeded,
	// the oldest completed records are evicted (their verdicts remain in
	// the verdict cache; re-POSTing the same bytes re-answers from it).
	// <= 0 selects 4096.
	MaxRecords int

	// MaxWait caps the ?wait= blocking budget a client may request;
	// <= 0 selects 2 minutes.
	MaxWait time.Duration

	// RetryAfter is the floor of the backoff hint returned with 429
	// responses; <= 0 selects 1 second. The actual hint is live: the
	// service's drain estimate (queue depth + in-flight leases over the
	// lane throughput), clamped below by this.
	RetryAfter time.Duration

	// Cluster, when set, mounts the vet-cluster coordinator's wire
	// protocol (claim/heartbeat/ack/nack + model pulls) on this gateway's
	// mux and folds its fleet view into /healthz. The concrete type is
	// *cluster.Coordinator; the interface keeps the gateway ignorant of
	// the cluster package (cluster sits below the gateway in the import
	// graph, never the reverse).
	Cluster ClusterCoordinator
}

// ClusterCoordinator is the slice of the vet-cluster coordinator the
// gateway needs: route registration and the live-fleet gauge.
type ClusterCoordinator interface {
	Mount(mux *http.ServeMux)
	LiveNodes() int
}

// withDefaults clamps out-of-range values.
func (c Config) withDefaults() Config {
	if c.MaxUploadBytes <= 0 {
		c.MaxUploadBytes = apk.MaxDecodedBytes
	}
	if c.MaxRecords <= 0 {
		c.MaxRecords = 4096
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 2 * time.Minute
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// Server is a running gateway over one vetting service. Construct with
// New; it implements http.Handler.
type Server struct {
	cfg Config
	svc *vetsvc.Service
	ck  *core.Checker
	mux *http.ServeMux

	// col is the gateway's own observability namespace (gw.* counters);
	// it is exported by /metrics alongside the checker's and service's.
	col *obs.Collector

	// regMu guards the two record indexes and the eviction order.
	regMu sync.RWMutex
	byID  map[string]*record
	bySeq map[int64]*record
	order []*record

	draining atomic.Bool

	httpMu   sync.Mutex
	httpSrv  *http.Server
	listener net.Listener
}

// record tracks one submission from admission to verdict, plus its span
// log and any live trace subscribers.
type record struct {
	id      string
	seq     int64
	created time.Time

	mu    sync.Mutex
	spans []obs.Event
	subs  []chan obs.Event

	// ticket is the service-side view of the submission (nil only while
	// the record is being admitted, under regMu); its state machine
	// (queued → claimed → done/failed) backs the status resource.
	ticket *vetsvc.Ticket

	done    chan struct{} // closed when the ticket settles
	verdict *core.Verdict
	vetErr  error
}

// New builds a gateway over a running vetting service. The server routes
// pipeline spans from the checker's obs collector to per-submission trace
// streams; register it before traffic flows.
func New(svc *vetsvc.Service, cfg Config) *Server {
	s := &Server{
		cfg:   cfg.withDefaults(),
		svc:   svc,
		ck:    svc.Checker(),
		col:   obs.NewCollector(),
		byID:  make(map[string]*record),
		bySeq: make(map[int64]*record),
	}
	s.ck.Obs().AddSink(obs.SinkFunc(s.routeSpan))
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/submissions", s.handleSubmit)
	mux.HandleFunc("GET /v1/submissions/{id}", s.handlePoll)
	mux.HandleFunc("GET /v1/submissions/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	if s.cfg.Cluster != nil {
		s.cfg.Cluster.Mount(mux)
	}
	s.mux = mux
	return s
}

// Obs returns the gateway's own observability collector (gw.* counters).
func (s *Server) Obs() *obs.Collector { return s.col }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Serve runs an HTTP server for the gateway on l until Shutdown. It
// returns the error from http.Server.Serve (http.ErrServerClosed after a
// clean Shutdown).
func (s *Server) Serve(l net.Listener) error {
	srv := &http.Server{Handler: s}
	s.httpMu.Lock()
	s.httpSrv, s.listener = srv, l
	s.httpMu.Unlock()
	return srv.Serve(l)
}

// ListenAndServe is Serve on a fresh TCP listener.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Addr returns the listener address once Serve is running ("" before).
func (s *Server) Addr() string {
	s.httpMu.Lock()
	defer s.httpMu.Unlock()
	if s.listener == nil {
		return ""
	}
	return s.listener.Addr().String()
}

// Shutdown drains the gateway gracefully: new submissions are rejected
// with 503 immediately, the vetting service drains (in-flight submissions
// finish; when ctx expires first they are hard-cancelled with
// vetsvc.ErrDraining), the verdict persist log is flushed, and finally
// the HTTP listener closes. Safe to call without Serve (drains the
// service and persist tier only).
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.svc.Drain(ctx)
	err := s.ck.ClosePersist()
	s.httpMu.Lock()
	srv := s.httpSrv
	s.httpMu.Unlock()
	if srv != nil {
		if herr := srv.Shutdown(ctx); herr != nil && err == nil {
			err = herr
		}
	}
	return err
}

// routeSpan is the obs sink fanning checker pipeline spans out to the
// submission records that subscribed to them. Called synchronously from
// vetting goroutines: one RLock and an append.
func (s *Server) routeSpan(ev obs.Event) {
	if ev.Kind != obs.KindSpan {
		return
	}
	s.regMu.RLock()
	rec := s.bySeq[ev.Trace]
	s.regMu.RUnlock()
	if rec != nil {
		rec.addSpan(ev)
	}
}

// addSpan appends one span to the record's log and pushes it to live
// trace subscribers (non-blocking: a stalled subscriber misses events
// rather than stalling the pipeline).
func (r *record) addSpan(ev obs.Event) {
	r.mu.Lock()
	r.spans = append(r.spans, ev)
	subs := r.subs
	r.mu.Unlock()
	for _, ch := range subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// subscribe snapshots the replayable spans and, if the submission is
// still in flight, registers a live channel for the rest.
func (r *record) subscribe() (replay []obs.Event, live chan obs.Event, finished bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	replay = append([]obs.Event(nil), r.spans...)
	select {
	case <-r.done:
		return replay, nil, true
	default:
	}
	live = make(chan obs.Event, 64)
	r.subs = append(r.subs, live)
	return replay, live, false
}

// unsubscribe removes a live trace channel.
func (r *record) unsubscribe(ch chan obs.Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, c := range r.subs {
		if c == ch {
			r.subs = append(r.subs[:i], r.subs[i+1:]...)
			return
		}
	}
}

// complete settles the record with the ticket's outcome.
func (r *record) complete(v *core.Verdict, err error) {
	r.mu.Lock()
	r.verdict, r.vetErr = v, err
	r.subs = nil
	r.mu.Unlock()
	close(r.done)
}

// isDone reports whether the submission has settled.
func (r *record) isDone() bool {
	select {
	case <-r.done:
		return true
	default:
		return false
	}
}

// SubmissionStatus is the JSON resource for one submission.
type SubmissionStatus struct {
	ID  string `json:"id"`
	Seq int64  `json:"seq"`
	// Status is the submission's position in the serving state machine:
	// queued | claimed | done | failed.
	Status string `json:"status"`
	// Outcome reports how a settled verdict was served (miss | hit |
	// coalesced | bypass), from the cache-lookup span.
	Outcome string        `json:"outcome,omitempty"`
	Verdict *core.Verdict `json:"verdict,omitempty"`
	Error   string        `json:"error,omitempty"`
	// Stage attributes a failure to the pipeline stage it died in.
	Stage string `json:"stage,omitempty"`
}

// errorBody is the JSON error envelope for non-submission failures.
type errorBody struct {
	Error string `json:"error"`
}

// status snapshots the record as its JSON resource plus the HTTP status
// code the snapshot maps to (202 in flight; 200 done; typed failures per
// the backpressure table: 504 deadline, 503 drain, 422 bad archive, 500
// otherwise).
func (r *record) status() (SubmissionStatus, int) {
	st := SubmissionStatus{ID: r.id, Seq: r.seq}
	if !r.isDone() {
		// The ticket's state machine is authoritative for the in-flight
		// half; a ticket that has settled while the record is still
		// completing reads as claimed until the verdict lands.
		st.Status = "queued"
		if r.ticket != nil {
			if ts := r.ticket.State(); ts == "claimed" || ts == "done" || ts == "failed" {
				st.Status = "claimed"
			}
		}
		return st, http.StatusAccepted
	}
	r.mu.Lock()
	v, err := r.verdict, r.vetErr
	for _, ev := range r.spans {
		if ev.Name == pipeline.StageCacheLookup && ev.Note != "" {
			st.Outcome = ev.Note
		}
	}
	r.mu.Unlock()
	if err == nil {
		st.Status = "done"
		st.Verdict = v
		return st, http.StatusOK
	}
	st.Status = "failed"
	st.Error = err.Error()
	if stage, ok := pipeline.FailedStage(err); ok {
		st.Stage = stage
	}
	switch {
	case errors.Is(err, core.ErrDeadlineExceeded):
		return st, http.StatusGatewayTimeout
	case errors.Is(err, vetsvc.ErrDraining) || errors.Is(err, vetsvc.ErrClosed):
		return st, http.StatusServiceUnavailable
	case errors.Is(err, apk.ErrBadAPK) || errors.Is(err, core.ErrBadSubmission):
		return st, http.StatusUnprocessableEntity
	default:
		return st, http.StatusInternalServerError
	}
}

// handleSubmit is POST /v1/submissions: read the archive (bounded),
// digest it, admit it to the vetting service (or join the existing
// record for these bytes), and answer with the submission resource.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.col.Counter("gw.rejected.draining").Inc()
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: vetsvc.ErrDraining.Error()})
		return
	}
	wait, ok := s.parseWait(w, r)
	if !ok {
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes)
	data, err := io.ReadAll(body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.col.Counter("gw.rejected.oversize").Inc()
			writeJSON(w, http.StatusRequestEntityTooLarge, errorBody{
				Error: fmt.Sprintf("archive exceeds the %d-byte upload bound", s.cfg.MaxUploadBytes)})
			return
		}
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "reading request body: " + err.Error()})
		return
	}
	// Cheap wire gate: a submission that is not even a zip container is
	// rejected synchronously; the apk package's decoded-size (zip-bomb)
	// gate and full validation run in the pipeline's decode stage.
	if len(data) < 4 || data[0] != 'P' || data[1] != 'K' {
		s.col.Counter("gw.rejected.notzip").Inc()
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "request body is not a zip archive"})
		return
	}
	id := apk.Digest(data)

	rec, err := s.admit(id, data)
	if err != nil {
		switch {
		case errors.Is(err, vetsvc.ErrQueueFull):
			s.col.Counter("gw.rejected.backpressure").Inc()
			w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
			writeJSON(w, http.StatusTooManyRequests, errorBody{Error: err.Error()})
		case errors.Is(err, vetsvc.ErrDraining) || errors.Is(err, vetsvc.ErrClosed):
			s.col.Counter("gw.rejected.draining").Inc()
			writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
		default:
			writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		}
		return
	}
	s.respond(w, r, rec, wait)
}

// retryAfterSeconds turns live queue pressure into the 429 backoff hint:
// the service's drain estimate (how long the current backlog needs to
// clear the lanes), floored by the configured RetryAfter, in whole
// seconds rounded up.
func (s *Server) retryAfterSeconds() int {
	retry := s.svc.DrainEstimate()
	if retry < s.cfg.RetryAfter {
		retry = s.cfg.RetryAfter
	}
	return int((retry + time.Second - 1) / time.Second)
}

// admit finds or creates the record for one content digest. Creation
// reserves the vet sequence number up front and registers the record
// under it before the service can start the vet, so the trace stream
// never misses a span.
func (s *Server) admit(id string, data []byte) (*record, error) {
	s.regMu.Lock()
	defer s.regMu.Unlock()
	if rec, ok := s.byID[id]; ok {
		// Byte-identical resubmission: same resource, no new vet — the
		// digest is the submission ID (and the verdict-cache key).
		s.col.Counter("gw.submissions.joined").Inc()
		return rec, nil
	}
	seq := s.ck.ReserveVetSeqs(1)
	rec := &record{id: id, seq: seq, created: time.Now(), done: make(chan struct{})}
	s.byID[id] = rec
	s.bySeq[seq] = rec
	ticket, err := s.svc.Submit(context.Background(), core.Submission{Raw: data, Seq: seq, Digest: id})
	if err != nil {
		delete(s.byID, id)
		delete(s.bySeq, seq)
		return nil, err
	}
	rec.ticket = ticket
	s.order = append(s.order, rec)
	s.evictLocked()
	s.col.Counter("gw.submissions.accepted").Inc()
	go s.settle(rec, ticket)
	return rec, nil
}

// settle waits for the ticket and completes the record.
func (s *Server) settle(rec *record, t *vetsvc.Ticket) {
	v, err := t.Wait(context.Background())
	rec.complete(v, err)
	s.regMu.Lock()
	delete(s.bySeq, rec.seq)
	s.regMu.Unlock()
	s.col.Counter("gw.submissions.settled").Inc()
}

// evictLocked bounds the record registry: oldest completed records go
// first; in-flight records are never evicted (they are bounded by the
// service queue anyway). Caller holds regMu.
func (s *Server) evictLocked() {
	for len(s.byID) > s.cfg.MaxRecords {
		evicted := false
		for i, rec := range s.order {
			if rec.isDone() {
				s.order = append(s.order[:i], s.order[i+1:]...)
				delete(s.byID, rec.id)
				s.col.Counter("gw.records.evicted").Inc()
				evicted = true
				break
			}
		}
		if !evicted {
			return
		}
	}
}

// parseWait reads the optional ?wait= blocking budget; on a malformed
// value it answers 400 and reports !ok.
func (s *Server) parseWait(w http.ResponseWriter, r *http.Request) (time.Duration, bool) {
	raw := r.URL.Query().Get("wait")
	if raw == "" {
		return 0, true
	}
	d, err := time.ParseDuration(raw)
	if err != nil || d < 0 {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "wait must be a non-negative Go duration (e.g. 30s)"})
		return 0, false
	}
	if d > s.cfg.MaxWait {
		d = s.cfg.MaxWait
	}
	return d, true
}

// respond writes the submission resource, blocking up to wait for the
// verdict first.
func (s *Server) respond(w http.ResponseWriter, r *http.Request, rec *record, wait time.Duration) {
	if wait > 0 && !rec.isDone() {
		timer := time.NewTimer(wait)
		defer timer.Stop()
		select {
		case <-rec.done:
		case <-timer.C:
		case <-r.Context().Done():
			return
		}
	}
	st, code := rec.status()
	writeJSON(w, code, st)
}

// handlePoll is GET /v1/submissions/{id} (+ the blocking ?wait= form).
func (s *Server) handlePoll(w http.ResponseWriter, r *http.Request) {
	wait, ok := s.parseWait(w, r)
	if !ok {
		return
	}
	rec := s.lookup(r.PathValue("id"))
	if rec == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown submission id"})
		return
	}
	s.respond(w, r, rec, wait)
}

// lookup resolves a submission ID.
func (s *Server) lookup(id string) *record {
	s.regMu.RLock()
	defer s.regMu.RUnlock()
	return s.byID[id]
}

// handleHealthz reports liveness plus the serving model generation and
// the live load picture (queue depth, in-flight leases, and — when this
// gateway fronts a vet cluster — the live worker-node count); a draining
// gateway answers 503 so load balancers stop routing to it.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	gen := s.ck.Generation()
	qs := s.svc.QueueStats()
	body := map[string]any{
		"status":      "ok",
		"generation":  gen.ID,
		"model":       gen.Digest,
		"queue_depth": qs.Depth,
		"leases":      qs.Leased,
	}
	if s.cfg.Cluster != nil {
		body["nodes"] = s.cfg.Cluster.LiveNodes()
	}
	code := http.StatusOK
	if s.draining.Load() {
		body["status"] = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, body)
}

// handleMetrics is GET /metrics: the Prometheus text exposition over the
// checker's, service's, and gateway's obs collectors. Everything those
// collectors hold is exported generically — a counter or distribution
// added anywhere in the system shows up here with no gateway change.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	WriteMetrics(w, "apichecker", s.ck.Obs(), s.svc.Obs(), s.col)
}

// writeJSON writes one JSON response.
func writeJSON(w http.ResponseWriter, code int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(body)
}
