// Prometheus text exposition derived generically from obs collectors.
//
// The exporter names no metric: it iterates the collectors' counter,
// gauge, distribution, and stage-aggregate snapshots, so a counter added
// anywhere in the system (core, vetsvc, gateway) is exported the moment
// it first increments — zero per-metric registration code, which is the
// point. The format is the Prometheus text exposition v0.0.4 subset:
// counters as <name>_total, gauges plain, distributions and stage
// latencies as summaries (quantile labels + _sum/_count).
//
// Output is deterministic: metric names sort lexically within each
// family, stages keep pipeline (first-seen) order, and floats render via
// strconv 'g' with full round-trip precision — locked by a golden file.

package gateway

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"apichecker/internal/obs"
)

// WriteMetrics writes the Prometheus text exposition of every metric the
// collectors hold, under the ns name prefix. Counters with the same name
// on several collectors sum; gauges, distributions, and stage aggregates
// are first-collector-wins (namespaces are disjoint in practice: core.*,
// svc.*, gw.*).
func WriteMetrics(w io.Writer, ns string, cols ...*obs.Collector) error {
	counters := map[string]uint64{}
	gauges := map[string]int64{}
	dists := map[string]obs.Summary{}
	var stages []obs.StageStats
	seenStage := map[string]bool{}
	for _, col := range cols {
		if col == nil {
			continue
		}
		for name, v := range col.Counters() {
			counters[name] += v
		}
		for name, v := range col.Gauges() {
			if _, ok := gauges[name]; !ok {
				gauges[name] = v
			}
		}
		for name, s := range col.Distributions() {
			if _, ok := dists[name]; !ok {
				dists[name] = s
			}
		}
		for _, st := range col.StageStats() {
			if !seenStage[st.Stage] {
				seenStage[st.Stage] = true
				stages = append(stages, st)
			}
		}
	}

	var b strings.Builder
	for _, name := range sortedKeys(counters) {
		m := metricName(ns, name) + "_total"
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", m, m, counters[name])
	}
	for _, name := range sortedKeys(gauges) {
		m := metricName(ns, name)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %d\n", m, m, gauges[name])
	}
	for _, name := range sortedKeys(dists) {
		writeSummary(&b, metricName(ns, name), "", dists[name])
	}
	if len(stages) > 0 {
		spans := metricName(ns, "stage.spans") + "_total"
		errs := metricName(ns, "stage.errors") + "_total"
		fmt.Fprintf(&b, "# TYPE %s counter\n", spans)
		for _, st := range stages {
			fmt.Fprintf(&b, "%s{stage=\"%s\"} %d\n", spans, escapeLabel(st.Stage), st.Count)
		}
		fmt.Fprintf(&b, "# TYPE %s counter\n", errs)
		for _, st := range stages {
			fmt.Fprintf(&b, "%s{stage=\"%s\"} %d\n", errs, escapeLabel(st.Stage), st.Errors)
		}
		dur := metricName(ns, "stage.duration.vseconds")
		fmt.Fprintf(&b, "# TYPE %s summary\n", dur)
		for _, st := range stages {
			writeSummaryRows(&b, dur, `stage="`+escapeLabel(st.Stage)+`"`, st.Dur)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeSummary writes one distribution as a Prometheus summary with its
// TYPE header.
func writeSummary(b *strings.Builder, m, labels string, s obs.Summary) {
	fmt.Fprintf(b, "# TYPE %s summary\n", m)
	writeSummaryRows(b, m, labels, s)
}

// writeSummaryRows writes the quantile/_sum/_count rows of one summary.
// labels is either empty or a pre-escaped `k="v"` list without braces.
func writeSummaryRows(b *strings.Builder, m, labels string, s obs.Summary) {
	q := func(quant string) string {
		if labels == "" {
			return m + `{quantile="` + quant + `"}`
		}
		return m + "{" + labels + `,quantile="` + quant + `"}`
	}
	suffix := func(sfx string) string {
		if labels == "" {
			return m + sfx
		}
		return m + sfx + "{" + labels + "}"
	}
	fmt.Fprintf(b, "%s %s\n", q("0.5"), formatFloat(s.P50))
	fmt.Fprintf(b, "%s %s\n", q("0.95"), formatFloat(s.P95))
	fmt.Fprintf(b, "%s %s\n", q("0.99"), formatFloat(s.P99))
	fmt.Fprintf(b, "%s %s\n", suffix("_sum"), formatFloat(s.Mean*float64(s.Count)))
	fmt.Fprintf(b, "%s %d\n", suffix("_count"), s.Count)
}

// metricName maps a dotted obs name into the Prometheus namespace:
// "svc.cache.hits" under ns "apichecker" becomes
// "apichecker_svc_cache_hits". Characters outside [a-zA-Z0-9_] become
// underscores.
func metricName(ns, name string) string {
	var b strings.Builder
	b.Grow(len(ns) + 1 + len(name))
	b.WriteString(ns)
	b.WriteByte('_')
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// escapeLabel escapes a label value per the exposition format
// (backslash, double quote, newline).
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// formatFloat renders a sample value with round-trip precision.
func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// sortedKeys returns the map's keys in lexical order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
