// ServeConfig is the one knob bundle for the serving deployment shape.
// It replaces the sprawl of per-flag plumbing that grew around `tmarket
// -serve` (-workers, -queue, -deadline, -vcache, -vcache-persist,
// -model-dir, -evolve, -trace, -pprof, …): frontends parse their flags
// into this struct and hand it over; the struct knows how to derive the
// per-layer configs (vetsvc.Config, gateway.Config) from itself.

package gateway

import (
	"time"

	"apichecker/internal/vetsvc"
)

// ServeConfig bundles every knob of the serving deployment shape: the
// vetting service's sizing, the checker's verdict-cache tiers, the model
// registry, and the network frontend. The zero value is a sane
// in-process deployment (production lane count, no network listener);
// DefaultServeConfig adds the recommended operational defaults.
type ServeConfig struct {
	// Workers is the emulator-lane count (paper: 16 per server);
	// <= 0 selects one lane per emulator slot.
	Workers int

	// Queue bounds submissions waiting for a lane; <= 0 selects
	// 4×Workers.
	Queue int

	// Deadline, when positive, bounds each submission's wall-clock
	// residence from admission.
	Deadline time.Duration

	// QueueDir, when set, journals raw-archive submissions to a durable
	// intake log in this directory: a killed server replays every
	// accepted-but-unsettled submission on the next start.
	QueueDir string

	// LeaseTTL, when positive, bounds how long a claimed submission may
	// go without progress before its lease expires and the queue re-issues
	// it to another lane; 0 disables lease expiry.
	LeaseTTL time.Duration

	// VerdictCache is the verdict-cache capacity (0 = default capacity,
	// negative = disabled).
	VerdictCache int

	// PersistDir, when set, persists the verdict cache to this directory
	// and warm-starts it on the next run.
	PersistDir string

	// ModelDir, when set, is the versioned model-registry directory; the
	// serving checker cold-starts from its current generation.
	ModelDir string

	// Evolve retrains in the background while serving and hot-swaps the
	// challenger in on gated promotion (requires ModelDir).
	Evolve bool

	// Trace streams per-submission pipeline spans to stdout.
	Trace bool

	// Listen, when set, serves the HTTP gateway on this address
	// (host:port); empty keeps the deployment in-process.
	Listen string

	// PprofAddr, when set, serves net/http/pprof on this address.
	PprofAddr string

	// MaxUploadBytes bounds gateway upload bodies; <= 0 selects the apk
	// decoded-size bound.
	MaxUploadBytes int64

	// DrainTimeout bounds graceful shutdown: in-flight submissions get
	// this long to finish before the drain hard-cancels them with
	// vetsvc.ErrDraining. <= 0 selects 30 seconds.
	DrainTimeout time.Duration

	// Cluster runs this deployment as a vet-cluster coordinator: local
	// emulator lanes are disabled and every admitted submission is vetted
	// by remote worker nodes claiming over the gateway's cluster routes
	// (requires Listen; the frontend builds the cluster.Coordinator and
	// passes it through Config.Cluster).
	Cluster bool
}

// DefaultServeConfig is the recommended operational configuration.
func DefaultServeConfig() ServeConfig {
	return ServeConfig{DrainTimeout: 30 * time.Second}
}

// ServiceConfig derives the vetting-service layer's config.
func (c ServeConfig) ServiceConfig() vetsvc.Config {
	return vetsvc.Config{
		Workers:           c.Workers,
		QueueSize:         c.Queue,
		Deadline:          c.Deadline,
		QueueDir:          c.QueueDir,
		LeaseTTL:          c.LeaseTTL,
		DisableLocalLanes: c.Cluster,
	}
}

// GatewayConfig derives the HTTP-frontend layer's config.
func (c ServeConfig) GatewayConfig() Config {
	return Config{MaxUploadBytes: c.MaxUploadBytes}
}

// EffectiveDrainTimeout resolves the drain budget default.
func (c ServeConfig) EffectiveDrainTimeout() time.Duration {
	if c.DrainTimeout <= 0 {
		return 30 * time.Second
	}
	return c.DrainTimeout
}
