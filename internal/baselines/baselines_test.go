package baselines

import (
	"testing"
	"time"

	"apichecker/internal/behavior"
	"apichecker/internal/dataset"
	"apichecker/internal/framework"
	"apichecker/internal/ml"
)

var testU = framework.MustGenerate(framework.TestConfig(3000))

func corpora(t *testing.T) (*dataset.Corpus, []dataset.App) {
	t.Helper()
	// Baseline papers train on malware-enriched corpora (DroidMat,
	// DroidAPIMiner, etc. used datasets with 15-50% malware); an
	// enriched training mix keeps their kNN neighbourhoods populated at
	// test scale. Evaluation uses the natural market mix.
	trainCfg := dataset.DefaultConfig()
	trainCfg.NumApps = 500
	trainCfg.MaliciousFraction = 0.3
	train, err := dataset.Generate(testU, trainCfg)
	if err != nil {
		t.Fatal(err)
	}
	testCfg := dataset.DefaultConfig()
	testCfg.NumApps = 220
	testCfg.Seed = 99
	testSet, err := dataset.Generate(testU, testCfg)
	if err != nil {
		t.Fatal(err)
	}
	return train, testSet.Apps
}

func evaluate(t *testing.T, b Baseline, train *dataset.Corpus, test []dataset.App) (ml.Confusion, time.Duration) {
	t.Helper()
	if err := b.Fit(train); err != nil {
		t.Fatalf("%s: Fit: %v", b.Name(), err)
	}
	gen := train.Generator()
	var m ml.Confusion
	var total time.Duration
	for _, app := range test {
		got, dt, err := b.Classify(gen, app)
		if err != nil {
			t.Fatalf("%s: Classify: %v", b.Name(), err)
		}
		m.Observe(got, app.Label == behavior.Malicious)
		total += dt
	}
	return m, total / time.Duration(len(test))
}

func TestStaticBaselinesDetectButTrailAPIChecker(t *testing.T) {
	train, test := corpora(t)
	for _, b := range []Baseline{NewSharma(), NewDroidAPIMiner(), NewDroidMat()} {
		m, perApp := evaluate(t, b, train, test)
		if b.Method() != "static" {
			t.Errorf("%s method = %s", b.Name(), b.Method())
		}
		if b.NumAPIs() == 0 {
			t.Errorf("%s selected no APIs", b.Name())
		}
		if m.F1() < 0.5 {
			t.Errorf("%s F1 = %.3f (%v), want a working detector", b.Name(), m.F1(), m)
		}
		// Static detectors must not reach the paper's dynamic band on
		// this corpus (evaders + payloads are invisible to them).
		if m.Recall() > 0.97 {
			t.Errorf("%s recall = %.3f — static pipeline should miss evasive families", b.Name(), m.Recall())
		}
		if perApp > time.Minute {
			t.Errorf("%s per-app static time = %v", b.Name(), perApp)
		}
	}
}

func TestStaticMissesUpdateAttacks(t *testing.T) {
	train, _ := corpora(t)
	b := NewDroidAPIMiner()
	if err := b.Fit(train); err != nil {
		t.Fatal(err)
	}
	gen := train.Generator()
	caught, total := 0, 0
	for seed := int64(0); seed < 60; seed++ {
		app := dataset.App{Spec: behavior.Spec{
			PackageName: "com.update.atk", Version: 2, Seed: seed + 9000,
			Label: behavior.Malicious, Family: behavior.FamilyUpdateAttack,
		}, Label: behavior.Malicious}
		got, _, err := b.Classify(gen, app)
		if err != nil {
			t.Fatal(err)
		}
		total++
		if got {
			caught++
		}
	}
	if caught*2 > total {
		t.Errorf("static baseline caught %d/%d update attacks; payloads should be largely invisible", caught, total)
	}
}

func TestDynamicBaselines(t *testing.T) {
	if testing.Short() {
		t.Skip("dynamic baselines in -short mode")
	}
	train, test := corpora(t)
	for _, b := range []Baseline{NewYang(), NewDroidDolphin()} {
		m, perApp := evaluate(t, b, train, test[:100])
		if b.Method() != "dynamic" {
			t.Errorf("%s method = %s", b.Name(), b.Method())
		}
		if n := b.NumAPIs(); n == 0 || n > 30 {
			t.Errorf("%s tracks %d APIs, want a narrow set", b.Name(), n)
		}
		if m.F1() < 0.4 {
			t.Errorf("%s F1 = %.3f (%v)", b.Name(), m.F1(), m)
		}
		// The defining cost: a quarter hour per app, not ~1 minute.
		if perApp < 10*time.Minute || perApp > 30*time.Minute {
			t.Errorf("%s per-app time = %v, want ≈ 17-18 min", b.Name(), perApp)
		}
	}
}

func TestClassifyBeforeFitErrors(t *testing.T) {
	gen := behavior.NewGenerator(testU)
	app := dataset.App{Spec: behavior.Spec{PackageName: "a.b", Version: 1, Seed: 1}}
	for _, b := range All() {
		if _, _, err := b.Classify(gen, app); err == nil {
			t.Errorf("%s classified before Fit", b.Name())
		}
	}
}
