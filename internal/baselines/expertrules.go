package baselines

import (
	"fmt"
	"time"

	"apichecker/internal/behavior"
	"apichecker/internal/dataset"
	"apichecker/internal/emulator"
	"apichecker/internal/hook"
	"apichecker/internal/inspector"
	"apichecker/internal/monkey"
)

// expertRules adapts T-Market's 2014 expert-informed API inspection (§2)
// as a comparison row: no learning, just curated invocation-pattern rules
// over a dynamically hooked rule-API set.
type expertRules struct {
	ins *inspector.Inspector
	emu *emulator.Emulator
	seq int64
}

// NewExpertRules builds the 2014-process row.
func NewExpertRules() Baseline { return &expertRules{} }

func (b *expertRules) Name() string   { return "T-Market 2014" }
func (b *expertRules) Method() string { return "dynamic" }
func (b *expertRules) NumAPIs() int {
	if b.ins == nil {
		return 0
	}
	return len(b.ins.RequiredAPIs())
}

// Fit builds the rule set against the corpus's universe; there is nothing
// to train — that is precisely the 2014 process's limitation.
func (b *expertRules) Fit(c *dataset.Corpus) error {
	ins, err := inspector.New(c.Universe(), inspector.ExpertRules(c.Universe()))
	if err != nil {
		return err
	}
	reg, err := hook.NewRegistry(c.Universe(), ins.RequiredAPIs())
	if err != nil {
		return err
	}
	b.ins = ins
	b.emu = emulator.New(emulator.GoogleEmulator, reg)
	return nil
}

func (b *expertRules) Classify(gen *behavior.Generator, app dataset.App) (bool, time.Duration, error) {
	if b.ins == nil {
		return false, 0, fmt.Errorf("baselines: expert rules not fitted")
	}
	p := gen.Generate(app.Spec)
	b.seq++
	res, err := b.emu.Run(p, monkey.ProductionConfig(app.Spec.Seed^b.seq))
	if err != nil {
		return false, 0, err
	}
	man, err := p.Manifest(gen.Universe())
	if err != nil {
		return false, 0, err
	}
	verdict := inspector.Verdict(b.ins.Inspect(res.Log, man))
	return verdict >= inspector.SeveritySuspicious, res.VirtualTime, nil
}
