// Package baselines implements representative prior malware detectors in
// the spirit of Table 1's comparison rows, sharing APICHECKER's substrates
// (static analysis, the emulator, the ML library) so the comparison is
// apples-to-apples:
//
//   - Sharma et al.: static, ~35 correlation-selected APIs, Naive Bayes +
//     kNN combination.
//   - DroidAPIMiner: static, top-169 frequency-ranked APIs, kNN.
//   - DroidMat: static, manifest permissions + API calls, kNN.
//   - Yang et al.: dynamic, 19 permission-restricted APIs, SVM, ~18 min
//     of emulation per app.
//   - DroidDolphin: dynamic, 25 sensitive-operation APIs, SVM, ~17 min of
//     emulation per app.
//
// Static pipelines are blind to reflection targets and dynamically loaded
// payloads; the narrow dynamic pipelines trade enormous emulation budgets
// for thin feature views. Both limitations show up in the regenerated
// table exactly as the paper argues.
package baselines

import (
	"fmt"
	"sort"
	"time"

	"apichecker/internal/apk"
	"apichecker/internal/behavior"
	"apichecker/internal/dataset"
	"apichecker/internal/emulator"
	"apichecker/internal/framework"
	"apichecker/internal/hook"
	"apichecker/internal/ml"
	"apichecker/internal/monkey"
	"apichecker/internal/staticanalysis"
)

// Baseline is one comparison detector.
type Baseline interface {
	// Name is the Table-1 row label.
	Name() string
	// Method describes the analysis style ("static" / "dynamic").
	Method() string
	// NumAPIs is the size of the API feature set.
	NumAPIs() int
	// Fit trains the detector on a labelled corpus.
	Fit(c *dataset.Corpus) error
	// Classify vets one app, returning the verdict and the per-app
	// analysis time on the virtual clock.
	Classify(gen *behavior.Generator, app dataset.App) (bool, time.Duration, error)
}

// --- static baselines ---

// staticBaseline shares the static-pipeline mechanics.
type staticBaseline struct {
	name    string
	numAPIs int
	usePerm bool
	// perAppTime is the paper-reported static scan cost.
	perAppTime time.Duration
	pick       func(c *dataset.Corpus, reports []*staticanalysis.Report) []framework.APIID

	u       *framework.Universe
	apis    []framework.APIID
	apiIdx  map[framework.APIID]int
	model   ml.Classifier
	factory func(numFeatures int) ml.Classifier
}

func (b *staticBaseline) Name() string   { return b.name }
func (b *staticBaseline) Method() string { return "static" }
func (b *staticBaseline) NumAPIs() int   { return len(b.apis) }

// staticReport derives the static view of an app without materializing a
// zip archive.
func staticReport(gen *behavior.Generator, app dataset.App) (*staticanalysis.Report, error) {
	u := gen.Universe()
	p := gen.Generate(app.Spec)
	man, err := p.Manifest(u)
	if err != nil {
		return nil, err
	}
	d, err := p.Dex(u)
	if err != nil {
		return nil, err
	}
	return staticanalysis.Analyze(&apk.APK{Manifest: man, Dex: d}, u)
}

func (b *staticBaseline) vector(r *staticanalysis.Report) ml.Vector {
	width := len(b.apis)
	if b.usePerm {
		width += len(b.u.Permissions())
	}
	v := ml.NewVector(width)
	for _, id := range r.DirectAPIs {
		if idx, ok := b.apiIdx[id]; ok {
			v.Set(idx)
		}
	}
	if b.usePerm {
		for _, id := range r.Permissions {
			v.Set(len(b.apis) + int(id))
		}
	}
	return v
}

func (b *staticBaseline) Fit(c *dataset.Corpus) error {
	b.u = c.Universe()
	gen := c.Generator()
	reports := make([]*staticanalysis.Report, c.Len())
	for i := range c.Apps {
		r, err := staticReport(gen, c.Apps[i])
		if err != nil {
			return fmt.Errorf("baselines: %s: %w", b.name, err)
		}
		reports[i] = r
	}
	b.apis = b.pick(c, reports)
	b.apiIdx = make(map[framework.APIID]int, len(b.apis))
	for i, id := range b.apis {
		b.apiIdx[id] = i
	}
	width := len(b.apis)
	if b.usePerm {
		width += len(b.u.Permissions())
	}
	d := ml.NewDataset(width)
	for i, r := range reports {
		if err := d.Add(b.vector(r), c.Apps[i].Label == behavior.Malicious); err != nil {
			return err
		}
	}
	b.model = b.factory(width)
	return b.model.Train(d)
}

func (b *staticBaseline) Classify(gen *behavior.Generator, app dataset.App) (bool, time.Duration, error) {
	if b.model == nil {
		return false, 0, fmt.Errorf("baselines: %s not fitted", b.name)
	}
	r, err := staticReport(gen, app)
	if err != nil {
		return false, 0, err
	}
	return b.model.Predict(b.vector(r)), b.perAppTime, nil
}

// topStaticAPIs ranks APIs by a per-app usage statistic over the static
// reports.
func topStaticAPIs(c *dataset.Corpus, reports []*staticanalysis.Report, n int,
	score func(usedByMal, usedByBen, nMal, nBen int) float64) []framework.APIID {

	mal := make(map[framework.APIID]int)
	ben := make(map[framework.APIID]int)
	nMal := 0
	for i, r := range reports {
		malicious := c.Apps[i].Label == behavior.Malicious
		if malicious {
			nMal++
		}
		for _, id := range r.DirectAPIs {
			if malicious {
				mal[id]++
			} else {
				ben[id]++
			}
		}
	}
	type cand struct {
		id framework.APIID
		s  float64
	}
	var cands []cand
	seen := make(map[framework.APIID]bool)
	for _, m := range []map[framework.APIID]int{mal, ben} {
		for id := range m {
			if !seen[id] {
				seen[id] = true
				cands = append(cands, cand{id, score(mal[id], ben[id], nMal, c.Len()-nMal)})
			}
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].s != cands[j].s {
			return cands[i].s > cands[j].s
		}
		return cands[i].id < cands[j].id
	})
	if n > len(cands) {
		n = len(cands)
	}
	out := make([]framework.APIID, n)
	for i := range out {
		out[i] = cands[i].id
	}
	return out
}

// NewSharma builds the Sharma et al. row: 35 malice-correlated APIs,
// NB+kNN vote.
func NewSharma() Baseline {
	return &staticBaseline{
		name:       "Sharma et al.",
		perAppTime: 12 * time.Second,
		pick: func(c *dataset.Corpus, reports []*staticanalysis.Report) []framework.APIID {
			return topStaticAPIs(c, reports, 35, func(um, ub, nm, nb int) float64 {
				return float64(um)/float64(nm+1) - float64(ub)/float64(nb+1)
			})
		},
		factory: func(int) ml.Classifier {
			return &votingPair{a: ml.NewNaiveBayes(), b: ml.NewKNN(ml.KNNConfig{K: 5})}
		},
	}
}

// NewDroidAPIMiner builds the DroidAPIMiner row: top-169 frequency APIs,
// kNN.
func NewDroidAPIMiner() Baseline {
	return &staticBaseline{
		name:       "DroidAPIMiner",
		perAppTime: 25 * time.Second,
		pick: func(c *dataset.Corpus, reports []*staticanalysis.Report) []framework.APIID {
			return topStaticAPIs(c, reports, 169, func(um, ub, nm, nb int) float64 {
				// Frequency differential à la DroidAPIMiner.
				return float64(um)/float64(nm+1) - float64(ub)/float64(nb+1)
			})
		},
		factory: func(int) ml.Classifier { return ml.NewKNN(ml.KNNConfig{K: 5}) },
	}
}

// NewDroidMat builds the DroidMat row: manifest permissions plus API
// calls, kNN.
func NewDroidMat() Baseline {
	return &staticBaseline{
		name:       "DroidMat",
		usePerm:    true,
		perAppTime: 15 * time.Second,
		pick: func(c *dataset.Corpus, reports []*staticanalysis.Report) []framework.APIID {
			return topStaticAPIs(c, reports, 120, func(um, ub, nm, nb int) float64 {
				// Malware-frequency ranking, discounting APIs
				// ubiquitous among benign apps.
				return float64(um)/float64(nm+1) - 0.8*float64(ub)/float64(nb+1)
			})
		},
		factory: func(int) ml.Classifier { return ml.NewKNN(ml.KNNConfig{K: 5}) },
	}
}

// votingPair predicts malicious when either member does (boosting recall
// the way Sharma et al. combine NB and kNN).
type votingPair struct {
	a, b ml.Classifier
}

func (v *votingPair) Name() string { return v.a.Name() + "+" + v.b.Name() }
func (v *votingPair) Train(d *ml.Dataset) error {
	if err := v.a.Train(d); err != nil {
		return err
	}
	return v.b.Train(d)
}
func (v *votingPair) Predict(x ml.Vector) bool { return v.a.Predict(x) || v.b.Predict(x) }

// --- dynamic baselines ---

// dynamicBaseline runs a narrow tracked set for a long emulation budget.
type dynamicBaseline struct {
	name   string
	events int
	pickN  int
	filter func(u *framework.Universe, a *framework.API) bool

	u     *framework.Universe
	reg   *hook.Registry
	emu   *emulator.Emulator
	model ml.Classifier
	seq   int64
}

func (b *dynamicBaseline) Name() string   { return b.name }
func (b *dynamicBaseline) Method() string { return "dynamic" }
func (b *dynamicBaseline) NumAPIs() int {
	if b.reg == nil {
		return 0
	}
	return b.reg.Size()
}

func (b *dynamicBaseline) Fit(c *dataset.Corpus) error {
	b.u = c.Universe()
	var tracked []framework.APIID
	for i := range b.u.APIs() {
		a := &b.u.APIs()[i]
		if a.Hidden || !b.filter(b.u, a) {
			continue
		}
		tracked = append(tracked, a.ID)
		if len(tracked) == b.pickN {
			break
		}
	}
	reg, err := hook.NewRegistry(b.u, tracked)
	if err != nil {
		return err
	}
	b.reg = reg
	b.emu = emulator.New(emulator.GoogleEmulator, reg)

	d := ml.NewDataset(reg.Size())
	gen := c.Generator()
	for i := range c.Apps {
		v, _, err := b.observe(gen, c.Apps[i])
		if err != nil {
			return err
		}
		if err := d.Add(v, c.Apps[i].Label == behavior.Malicious); err != nil {
			return err
		}
	}
	b.model = ml.NewSVM(ml.SVMConfig{C: 1, Gamma: 0.05, Epochs: 8, Seed: 3})
	return b.model.Train(d)
}

func (b *dynamicBaseline) observe(gen *behavior.Generator, app dataset.App) (ml.Vector, time.Duration, error) {
	p := gen.Generate(app.Spec)
	b.seq++
	mk := monkey.ProductionConfig(app.Spec.Seed ^ b.seq)
	mk.Events = b.events
	res, err := b.emu.Run(p, mk)
	if err != nil {
		return nil, 0, err
	}
	v := ml.NewVector(b.reg.Size())
	for i, id := range b.reg.TrackedAPIs() {
		if res.Log.Invocation(id) != nil {
			v.Set(i)
		}
	}
	return v, res.VirtualTime, nil
}

func (b *dynamicBaseline) Classify(gen *behavior.Generator, app dataset.App) (bool, time.Duration, error) {
	if b.model == nil {
		return false, 0, fmt.Errorf("baselines: %s not fitted", b.name)
	}
	v, t, err := b.observe(gen, app)
	if err != nil {
		return false, 0, err
	}
	return b.model.Predict(v), t, nil
}

// NewYang builds the Yang et al. row: 19 APIs restricted by three special
// permission groups, SVM, ~18 minutes of emulation per app.
func NewYang() Baseline {
	return &dynamicBaseline{
		name:   "Yang et al.",
		events: 42000, // ≈ 18 min at the Google engine's event cost
		pickN:  19,
		filter: func(u *framework.Universe, a *framework.API) bool {
			return a.Permission != framework.NoPermission &&
				u.Permission(a.Permission).Level.Restrictive()
		},
	}
}

// NewDroidDolphin builds the DroidDolphin row: 25 sensitive-operation
// APIs, SVM, ~17 minutes of emulation per app.
func NewDroidDolphin() Baseline {
	return &dynamicBaseline{
		name:   "DroidDolphin",
		events: 40000,
		pickN:  25,
		filter: func(u *framework.Universe, a *framework.API) bool {
			return a.Category != framework.CategoryNone
		},
	}
}

// All returns the implemented Table-1 comparison rows.
func All() []Baseline {
	return []Baseline{
		NewExpertRules(),
		NewSharma(), NewDroidAPIMiner(), NewDroidMat(),
		NewYang(), NewDroidDolphin(),
	}
}
