// Package experiments regenerates every table and figure of the paper's
// evaluation (Table 1, Table 2, Figures 1-16) against the synthetic
// substrate. Each experiment prints the same rows/series the paper
// reports and returns a structured result for tests and benchmarks.
//
// Absolute values depend on corpus scale; the reproduction target is the
// *shape*: who wins, by what rough factor, and where the knees fall. See
// EXPERIMENTS.md for the paper-vs-measured record.
package experiments

import (
	"fmt"
	"io"
	"time"

	"apichecker/internal/dataset"
	"apichecker/internal/emulator"
	"apichecker/internal/features"
	"apichecker/internal/framework"
	"apichecker/internal/ml"
)

// Scale sizes an experiment environment.
type Scale struct {
	Name         string
	UniverseAPIs int
	Apps         int
	Events       int
}

// Predefined scales. Small keeps the full suite under a minute; Medium is
// the default benchmark scale; Paper uses the full 50K-API universe.
var (
	ScaleSmall  = Scale{Name: "small", UniverseAPIs: 3000, Apps: 800, Events: 5000}
	ScaleMedium = Scale{Name: "medium", UniverseAPIs: 12000, Apps: 2200, Events: 5000}
	ScalePaper  = Scale{Name: "paper", UniverseAPIs: 50000, Apps: 5000, Events: 5000}
)

// ScaleByName resolves a scale name.
func ScaleByName(name string) (Scale, error) {
	switch name {
	case "small":
		return ScaleSmall, nil
	case "medium":
		return ScaleMedium, nil
	case "paper":
		return ScalePaper, nil
	}
	return Scale{}, fmt.Errorf("experiments: unknown scale %q (small|medium|paper)", name)
}

// Env is a prepared experiment environment: universe, corpus, and the
// expensive track-everything measurement pass, shared across experiments.
type Env struct {
	Scale  Scale
	Seed   int64
	U      *framework.Universe
	Corpus *dataset.Corpus

	// Usage and Runs come from the §4.3 measurement pass (hardened
	// Google engine, all APIs tracked).
	Usage *features.UsageStats
	Runs  []dataset.AppRun

	// Selection is the §4.4 outcome on this corpus.
	Selection *features.Selection

	// cached deployed-configuration model (A+P+I over keys).
	cachedForest    *ml.RandomForest
	cachedExtractor *features.Extractor

	// cached year-simulation reports, keyed by month count.
	cachedDeploy map[int]*DeployResult
}

// frameworkClone regenerates a fresh universe with the same config (the
// deployment simulation mutates its universe via Evolve).
func frameworkClone(cfg framework.Config, seed int64) (*framework.Universe, error) {
	cfg.Seed = seed
	return framework.Generate(cfg)
}

// NewEnv builds an environment, running the measurement pass once.
func NewEnv(scale Scale, seed int64) (*Env, error) {
	var ucfg framework.Config
	if scale.UniverseAPIs >= 50000 {
		ucfg = framework.DefaultConfig()
	} else {
		ucfg = framework.TestConfig(scale.UniverseAPIs)
	}
	ucfg.Seed = seed
	u, err := framework.Generate(ucfg)
	if err != nil {
		return nil, err
	}
	ccfg := dataset.DefaultConfig()
	ccfg.Seed = seed + 1
	ccfg.NumApps = scale.Apps
	corpus, err := dataset.Generate(u, ccfg)
	if err != nil {
		return nil, err
	}
	usage, runs, err := corpus.CollectUsage(scale.Events)
	if err != nil {
		return nil, err
	}
	sel := features.SelectKeyAPIs(u, usage, features.DefaultSelectionConfig())
	return &Env{Scale: scale, Seed: seed, U: u, Corpus: corpus, Usage: usage, Runs: runs, Selection: sel}, nil
}

// subCorpus builds a corpus view over a slice of the apps.
func (e *Env) subCorpus(seed int64, from, to int) *dataset.Corpus {
	return dataset.FromApps(e.U, seed, e.Corpus.Apps[from:to])
}

// timesOf extracts minutes from runs.
func timesOf(runs []dataset.AppRun) []float64 {
	out := make([]float64, len(runs))
	for i := range runs {
		out[i] = runs[i].Time.Minutes()
	}
	return out
}

// meanDuration averages run times.
func meanDuration(runs []dataset.AppRun) time.Duration {
	if len(runs) == 0 {
		return 0
	}
	var total time.Duration
	for i := range runs {
		total += runs[i].Time
	}
	return total / time.Duration(len(runs))
}

// googleProfile is the study engine; lightProfile the production engine.
var (
	googleProfile = emulator.GoogleEmulator
	lightProfile  = emulator.LightweightEmulator
)

// fprintf writes formatted output, ignoring the writer's error (the
// writers here are stdout or test buffers).
func fprintf(w io.Writer, format string, args ...any) {
	if w != nil {
		fmt.Fprintf(w, format, args...)
	}
}
