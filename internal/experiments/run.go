package experiments

import (
	"fmt"
	"io"
	"sort"
)

// Runner executes one named experiment against an environment, printing
// the paper-style rows/series to w.
type Runner func(e *Env, w io.Writer) error

// registry maps experiment ids (table1, table2, fig1..fig16) to runners.
var registry = map[string]Runner{
	"table1": func(e *Env, w io.Writer) error { _, err := e.Table1(w); return err },
	"table2": func(e *Env, w io.Writer) error { _, err := e.Table2(w); return err },
	"fig1":   func(e *Env, w io.Writer) error { _, err := e.Fig1(w); return err },
	"fig2":   func(e *Env, w io.Writer) error { _, err := e.Fig2(w); return err },
	"fig3":   func(e *Env, w io.Writer) error { _, err := e.Fig3(w); return err },
	"fig4":   func(e *Env, w io.Writer) error { _, err := e.Fig4(w); return err },
	"fig5":   func(e *Env, w io.Writer) error { _, err := e.Fig5(w); return err },
	"fig6":   func(e *Env, w io.Writer) error { _, err := e.Fig6(w); return err },
	"fig7":   func(e *Env, w io.Writer) error { _, err := e.Fig7(w); return err },
	"fig8":   func(e *Env, w io.Writer) error { _, err := e.Fig8(w); return err },
	"fig9":   func(e *Env, w io.Writer) error { _, err := e.Fig9(w); return err },
	"fig10":  func(e *Env, w io.Writer) error { _, err := e.Fig10(w); return err },
	"fig11":  func(e *Env, w io.Writer) error { _, err := e.Fig11(w); return err },
	"fig12":  func(e *Env, w io.Writer) error { _, err := e.Fig12(w, 12); return err },
	"fig13":  func(e *Env, w io.Writer) error { _, err := e.Fig13(w); return err },
	"fig14":  func(e *Env, w io.Writer) error { _, err := e.Fig14(w, 12); return err },
	"fig15":  func(e *Env, w io.Writer) error { _, err := e.Fig15(w); return err },
	"fig16":  func(e *Env, w io.Writer) error { _, err := e.Fig16(w); return err },
	// authenticity is §4.2's controlled three-environment experiment
	// (stock 86.6% vs hardened 98.6% vs real device).
	"authenticity": func(e *Env, w io.Writer) error { _, err := e.Authenticity(w); return err },
}

// IDs returns the known experiment ids, sorted.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment by id.
func Run(e *Env, id string, w io.Writer) error {
	r, ok := registry[id]
	if !ok {
		return fmt.Errorf("experiments: unknown id %q (known: %v)", id, IDs())
	}
	return r(e, w)
}
