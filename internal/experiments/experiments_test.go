package experiments

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"apichecker/internal/ml"
)

var (
	envOnce sync.Once
	envVal  *Env
	envErr  error
)

func testEnv(t *testing.T) *Env {
	t.Helper()
	envOnce.Do(func() {
		envVal, envErr = NewEnv(ScaleSmall, 1)
	})
	if envErr != nil {
		t.Fatal(envErr)
	}
	return envVal
}

func TestTable1Shape(t *testing.T) {
	e := testEnv(t)
	var buf bytes.Buffer
	res, err := e.Table1(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 7 {
		t.Fatalf("rows = %d, want 6 baselines + APICHECKER", len(res.Rows))
	}
	last := res.Rows[len(res.Rows)-1]
	if last.Name != "APICHECKER" {
		t.Fatalf("last row = %s", last.Name)
	}
	// APICHECKER must have the best F1 and be far faster than the
	// dynamic baselines.
	f1 := func(r Table1Row) float64 {
		if r.Precision+r.Recall == 0 {
			return 0
		}
		return 2 * r.Precision * r.Recall / (r.Precision + r.Recall)
	}
	for _, r := range res.Rows[:len(res.Rows)-1] {
		if f1(r) > f1(last) {
			t.Errorf("%s F1 %.3f beats APICHECKER %.3f", r.Name, f1(r), f1(last))
		}
		if r.Method == "dynamic" && r.PerApp <= last.PerApp {
			t.Errorf("%s per-app %v not above APICHECKER %v", r.Name, r.PerApp, last.PerApp)
		}
		// The long-budget dynamic detectors pay an order of magnitude
		// more emulation time.
		if (r.Name == "Yang et al." || r.Name == "DroidDolphin") && r.PerApp < 5*last.PerApp {
			t.Errorf("%s per-app %v not ≫ APICHECKER %v", r.Name, r.PerApp, last.PerApp)
		}
	}
	if !strings.Contains(buf.String(), "APICHECKER") {
		t.Error("printed table lacks APICHECKER row")
	}
}

func TestTable2Shape(t *testing.T) {
	e := testEnv(t)
	res, err := e.Table2(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 9 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	byModel := map[string]Table2Row{}
	for _, r := range res.Rows {
		byModel[r.Model] = r
	}
	rf := byModel["Random Forest"]
	nb := byModel["Naive Bayes"]
	svm := byModel["SVM"]
	// RF is the quality pick (Table 2's row ordering).
	for name, r := range byModel {
		if name == "Random Forest" {
			continue
		}
		if r.PrecisionKeys > rf.PrecisionKeys+0.03 && r.RecallKeys > rf.RecallKeys+0.03 {
			t.Errorf("%s clearly beats RF on keys (%.3f/%.3f vs %.3f/%.3f)",
				name, r.PrecisionKeys, r.RecallKeys, rf.PrecisionKeys, rf.RecallKeys)
		}
	}
	// Cost ordering at this scale: NB cheapest of the serious models;
	// wide features cost more than keys for RF. (The paper's SVM-
	// dominates-everything ordering is a corpus-*size* effect — see
	// TestSVMScalesQuadratically.)
	if nb.TimeKeys > rf.TimeKeys {
		t.Errorf("NB (%v) slower than RF (%v) on keys", nb.TimeKeys, rf.TimeKeys)
	}
	if svm.TimeAll <= 0 || svm.TimeKeys <= 0 {
		t.Error("SVM times not recorded")
	}
	if rf.TimeAll < rf.TimeKeys {
		t.Errorf("RF all-API training (%v) cheaper than keys (%v)", rf.TimeAll, rf.TimeKeys)
	}
	// Keys beat the full feature space for RF (over-fitting, §4.3).
	if rf.RecallKeys+0.005 < rf.RecallAll {
		t.Errorf("RF recall: keys %.3f < all %.3f — key selection should win", rf.RecallKeys, rf.RecallAll)
	}
}

func TestFig1Shape(t *testing.T) {
	e := testEnv(t)
	res, err := e.Fig1(nil)
	if err != nil {
		t.Fatal(err)
	}
	pts := res.Points
	if len(pts) < 5 {
		t.Fatal("too few points")
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].RAC+1e-9 < pts[i-1].RAC {
			t.Errorf("RAC not monotone at %d events: %.3f < %.3f", pts[i].Events, pts[i].RAC, pts[i-1].RAC)
		}
		if pts[i].MeanTime <= pts[i-1].MeanTime {
			t.Errorf("time not increasing at %d events", pts[i].Events)
		}
	}
	// Saturation: the last doubling of events buys little RAC.
	gainEarly := pts[3].RAC - pts[0].RAC
	gainLate := pts[len(pts)-1].RAC - pts[len(pts)-2].RAC
	if gainLate > gainEarly {
		t.Errorf("RAC not saturating: late gain %.3f > early gain %.3f", gainLate, gainEarly)
	}
	// 5K events land near the paper's 76.5%.
	var rac5k float64
	for _, p := range pts {
		if p.Events == 5000 {
			rac5k = p.RAC
		}
	}
	if rac5k < 0.68 || rac5k > 0.85 {
		t.Errorf("RAC(5K) = %.3f, want ≈ 0.765", rac5k)
	}
}

func TestFig2And3Shape(t *testing.T) {
	e := testEnv(t)
	f2, err := e.Fig2(nil)
	if err != nil {
		t.Fatal(err)
	}
	s := f2.CDF.Summary
	if !(s.Min < s.Median && s.Median < s.Max) || s.Min <= 0 {
		t.Errorf("implausible invocation distribution: %+v", s)
	}
	f3, err := e.Fig3(nil)
	if err != nil {
		t.Fatal(err)
	}
	ratio := f3.TrackAll.Summary.Mean / f3.TrackNone.Summary.Mean
	// Paper: 53.6 / 2.1 ≈ 25x at 50K APIs; the ratio scales with
	// universe size (hook volume is universe-proportional).
	if ratio < 3 {
		t.Errorf("track-all/none ratio = %.1f, want clearly > 3 even at small scale", ratio)
	}
	if f3.TrackNone.Summary.Mean < 1.5 || f3.TrackNone.Summary.Mean > 2.9 {
		t.Errorf("untracked mean = %.2f min, want ≈ 2.1", f3.TrackNone.Summary.Mean)
	}
}

func TestFig4And5Shape(t *testing.T) {
	e := testEnv(t)
	f4, err := e.Fig4(nil)
	if err != nil {
		t.Fatal(err)
	}
	if f4.StrongPositive == 0 {
		t.Error("no strongly positive APIs")
	}
	if f4.MaxSRC < 0.2 || f4.MinSRC > -0.05 {
		t.Errorf("SRC range [%.3f, %.3f] lacks spread", f4.MinSRC, f4.MaxSRC)
	}
	// Descending order.
	for i := 1; i < len(f4.SRCsDescending); i++ {
		if f4.SRCsDescending[i] > f4.SRCsDescending[i-1] {
			t.Fatal("fig4 not sorted")
		}
	}
	f5, err := e.Fig5(nil)
	if err != nil {
		t.Fatal(err)
	}
	if f5.NonTrivial == 0 || f5.NonTrivial != len(e.Selection.SetC) {
		t.Errorf("fig5 non-trivial = %d, Set-C = %d", f5.NonTrivial, len(e.Selection.SetC))
	}
}

func TestFig6Shape(t *testing.T) {
	e := testEnv(t)
	res, err := e.Fig6(nil)
	if err != nil {
		t.Fatal(err)
	}
	pts := res.Points
	if len(pts) < 8 {
		t.Fatalf("too few points: %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].MeanTime < pts[i-1].MeanTime {
			t.Errorf("time decreased at n=%d", pts[i].TrackedAPIs)
		}
	}
	// Shape properties that survive down-scaling: cost rises
	// substantially overall; the steepest per-API stretch happens while
	// the heavy (hot/shared) APIs enroll — i.e. in the middle ranks,
	// not in the final tail — and the tail saturates.
	slope := func(a, b Fig6Point) float64 {
		return (b.MeanTime.Minutes() - a.MeanTime.Minutes()) / float64(b.TrackedAPIs-a.TrackedAPIs)
	}
	first, last := pts[0], pts[len(pts)-1]
	if last.MeanTime.Minutes() < 2*first.MeanTime.Minutes() {
		t.Errorf("tracking everything (%.1f min) not ≫ tracking few (%.1f min)",
			last.MeanTime.Minutes(), first.MeanTime.Minutes())
	}
	maxSlope, maxAt := 0.0, 0
	for i := 1; i < len(pts); i++ {
		if s := slope(pts[i-1], pts[i]); s > maxSlope {
			maxSlope, maxAt = s, pts[i].TrackedAPIs
		}
	}
	if maxAt > e.U.NumAPIs()/10 {
		t.Errorf("steepest stretch at n=%d, want within the correlated head", maxAt)
	}
	tailSlope := slope(pts[len(pts)-2], last)
	if tailSlope > maxSlope/4 {
		t.Errorf("tail slope %.5f not saturating vs max %.5f", tailSlope, maxSlope)
	}
	// Segment fits stay reported; head and tail must fit well.
	if res.LinearFit.R2 < 0.7 || res.LogFit.R2 < 0.7 {
		t.Errorf("fits poor: lin R2=%.3f pow R2=%.3f log R2=%.3f",
			res.LinearFit.R2, res.PowerFit.R2, res.LogFit.R2)
	}
}

func TestFig7Shape(t *testing.T) {
	e := testEnv(t)
	res, err := e.Fig7(nil)
	if err != nil {
		t.Fatal(err)
	}
	best := 0.0
	for _, p := range res.Points {
		if f := f1of(p.Precision, p.Recall); f > best {
			best = f
		}
	}
	allF1 := f1of(res.All.Precision, res.All.Recall)
	if best < allF1 {
		t.Errorf("no top-n configuration (best %.3f) beats tracking all (%.3f): over-fitting shape missing", best, allF1)
	}
}

func f1of(p, r float64) float64 {
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

func TestFig8Shape(t *testing.T) {
	e := testEnv(t)
	res, err := e.Fig8(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Inclusion-exclusion: |C∪P∪S| = Σ|sets| − Σ|pairwise| + |triple|.
	if res.Union != res.SetC+res.SetP+res.SetS-(res.CP+res.CS+res.PS)+res.CPS {
		t.Errorf("Venn accounting inconsistent: %+v", res)
	}
	// Overlaps stay well below the union (the paper: 16 of 426; the
	// small-scale universe over-represents the fixed well-known anchor
	// APIs, which carry most designed overlap).
	if res.TotalPairwiseOverlaps*2 > res.Union {
		t.Errorf("overlaps %d too large for union %d", res.TotalPairwiseOverlaps, res.Union)
	}
}

func TestFig9And16Shape(t *testing.T) {
	e := testEnv(t)
	f9, err := e.Fig9(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !(f9.TrackNone.Summary.Mean < f9.TrackKeys.Summary.Mean) {
		t.Errorf("keys (%.2f) not slower than none (%.2f)", f9.TrackKeys.Summary.Mean, f9.TrackNone.Summary.Mean)
	}
	f16, err := e.Fig16(nil)
	if err != nil {
		t.Fatal(err)
	}
	a, b, c := f16.TrackNone.Summary.Mean, f16.Track150.Summary.Mean, f16.TrackKeys.Summary.Mean
	if !(a < b && b < c) {
		t.Errorf("fig16 ordering broken: none=%.2f top=%.2f keys=%.2f", a, b, c)
	}
}

func TestFig10Shape(t *testing.T) {
	e := testEnv(t)
	res, err := e.Fig10(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	byMode := map[string]Fig10Row{}
	for _, r := range res.Rows {
		byMode[r.Mode.String()] = r
	}
	// At small scale the A-vs-A+P+I gap sits inside CV noise (the
	// medium/paper-scale runs in EXPERIMENTS.md show the clean +3-4
	// point F1 gain); require only that the full combination does not
	// lose ground.
	if byMode["A+P+I"].F1+0.02 < byMode["A"].F1 {
		t.Errorf("A+P+I (%.3f) worse than A (%.3f)", byMode["A+P+I"].F1, byMode["A"].F1)
	}
	if byMode["A+P"].Recall+0.02 < byMode["A"].Recall {
		t.Errorf("A+P recall (%.3f) below A (%.3f)", byMode["A+P"].Recall, byMode["A"].Recall)
	}
	// P+I alone is a sound detector (§4.5).
	if byMode["P+I"].F1 < 0.6 {
		t.Errorf("P+I F1 = %.3f, want sound performance", byMode["P+I"].F1)
	}
}

func TestFig11Shape(t *testing.T) {
	e := testEnv(t)
	res, err := e.Fig11(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Saving < 0.55 || res.Saving > 0.85 {
		t.Errorf("saving = %.2f, want ≈ 0.70", res.Saving)
	}
	if res.FellBack > len(e.Corpus.Apps)/33 {
		t.Errorf("fallbacks = %d of %d, want < ~3%%", res.FellBack, len(e.Corpus.Apps))
	}
}

func TestFig13Shape(t *testing.T) {
	e := testEnv(t)
	res, err := e.Fig13(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Top) != 20 {
		t.Fatalf("top features = %d", len(res.Top))
	}
	// All three feature families appear in the top 20 (paper: 7/8/5).
	if res.APIs == 0 || res.Permissions == 0 || res.Intents == 0 {
		t.Errorf("family mix = %d/%d/%d, want all three represented", res.APIs, res.Permissions, res.Intents)
	}
	for i := 1; i < len(res.Top); i++ {
		if res.Top[i].Importance > res.Top[i-1].Importance {
			t.Fatal("importance not descending")
		}
	}
}

func TestFig15Shape(t *testing.T) {
	e := testEnv(t)
	res, err := e.Fig15(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) < 3 {
		t.Fatalf("points = %d", len(res.Points))
	}
	last := res.Points[len(res.Points)-1]
	// Tracking fewer important keys costs much less time while keeping
	// F1 close (§5.4).
	mid := res.Points[len(res.Points)/2]
	if mid.MeanTime >= last.MeanTime {
		t.Errorf("subset time %v not below full-key time %v", mid.MeanTime, last.MeanTime)
	}
	if mid.F1 < last.F1-0.08 {
		t.Errorf("subset F1 %.3f collapsed vs full %.3f", mid.F1, last.F1)
	}
}

func TestDeployShape(t *testing.T) {
	if testing.Short() {
		t.Skip("deployment simulation in -short mode")
	}
	e := testEnv(t)
	res, err := e.Fig12(nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Report.Months) != 3 {
		t.Fatalf("months = %d", len(res.Report.Months))
	}
	pMin, _, rMin, _ := res.Report.MinMaxPrecisionRecall()
	if pMin < 0.7 || rMin < 0.45 {
		t.Errorf("deployment stats degraded: p=%.3f r=%.3f", pMin, rMin)
	}
	// Fig14 reuses the cached report.
	res2, err := e.Fig14(nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res2 != res {
		t.Error("deployment report not cached")
	}
	for _, m := range res2.Report.Months {
		if m.KeyAPIs == 0 {
			t.Error("missing key-API count")
		}
	}
}

func TestRunDispatcher(t *testing.T) {
	e := testEnv(t)
	var buf bytes.Buffer
	if err := Run(e, "fig8", &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 8") {
		t.Errorf("output = %q", buf.String())
	}
	if err := Run(e, "nope", &buf); err == nil {
		t.Error("unknown id accepted")
	}
	if len(IDs()) != 19 {
		t.Errorf("IDs = %d, want 19", len(IDs()))
	}
}

// TestAuthenticityShape reproduces §4.2's controlled experiment: hardening
// closes most of the stock emulator's behaviour gap, up to the apps that
// need live sensors.
func TestAuthenticityShape(t *testing.T) {
	e := testEnv(t)
	res, err := e.Authenticity(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sample == 0 {
		t.Fatal("empty sample")
	}
	// Paper: 86.6% stock vs 98.6% hardened.
	if res.StockFraction < 0.75 || res.StockFraction > 0.95 {
		t.Errorf("stock fraction = %.3f, want ≈ 0.866", res.StockFraction)
	}
	if res.HardenedFraction < 0.96 {
		t.Errorf("hardened fraction = %.3f, want ≈ 0.986", res.HardenedFraction)
	}
	if res.HardenedFraction <= res.StockFraction {
		t.Error("hardening did not close the gap")
	}
	// The hardened residual is bounded by the sensor-limited apps.
	misses := res.Sample - res.HardenedMatches
	if misses > res.SensorLimited {
		t.Errorf("hardened misses %d exceed sensor-limited apps %d", misses, res.SensorLimited)
	}
}

func TestScaleByName(t *testing.T) {
	for _, name := range []string{"small", "medium", "paper"} {
		s, err := ScaleByName(name)
		if err != nil || s.Apps == 0 {
			t.Errorf("%s: %v %+v", name, err, s)
		}
	}
	if _, err := ScaleByName("huge"); err == nil {
		t.Error("unknown scale accepted")
	}
}

// keep ml import used even if assertions change
var _ = ml.Confusion{}
