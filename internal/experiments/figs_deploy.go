package experiments

import (
	"io"

	"apichecker/internal/market"
)

// DeployResult covers the year-long deployment figures: monthly precision
// and recall (Fig. 12) and the key-API count evolution (Fig. 14).
type DeployResult struct {
	Report *market.YearReport
}

// Deploy runs the month-by-month market simulation once per month count;
// Fig12 and Fig14 are two views of the cached report.
func (e *Env) Deploy(months int) (*DeployResult, error) {
	if cached, ok := e.cachedDeploy[months]; ok {
		return cached, nil
	}
	cfg := market.DefaultYearConfig()
	cfg.Seed = e.Seed + 71
	cfg.Months = months
	cfg.InitialApps = min(900, e.Corpus.Len())
	cfg.MonthlyApps = min(250, e.Corpus.Len()/3)
	cfg.RetrainCap = cfg.InitialApps + 5*cfg.MonthlyApps
	// The year simulation evolves the universe; run it on a private copy
	// so the rest of the experiment suite stays comparable.
	ucfg := e.U.Config()
	u, err := frameworkClone(ucfg, e.Seed)
	if err != nil {
		return nil, err
	}
	rep, err := market.RunYear(u, cfg)
	if err != nil {
		return nil, err
	}
	res := &DeployResult{Report: rep}
	if e.cachedDeploy == nil {
		e.cachedDeploy = make(map[int]*DeployResult)
	}
	e.cachedDeploy[months] = res
	return res, nil
}

// Fig12 prints the monthly online precision/recall series.
func (e *Env) Fig12(w io.Writer, months int) (*DeployResult, error) {
	res, err := e.Deploy(months)
	if err != nil {
		return nil, err
	}
	fprintf(w, "Figure 12: online precision/recall over %d months\n", months)
	fprintf(w, "%6s %10s %8s %8s %10s\n", "Month", "Precision", "Recall", "Flagged", "Scan(min)")
	for _, m := range res.Report.Months {
		fprintf(w, "%6d %9.1f%% %7.1f%% %8d %10.2f\n",
			m.Month, 100*m.Precision(), 100*m.Recall(), m.Flagged, m.MeanScanMinute)
	}
	pMin, pMax, rMin, rMax := res.Report.MinMaxPrecisionRecall()
	fprintf(w, "  precision: %.1f%%-%.1f%% | recall: %.1f%%-%.1f%%\n",
		100*pMin, 100*pMax, 100*rMin, 100*rMax)
	return res, nil
}

// Fig14 prints the key-API count evolution series.
func (e *Env) Fig14(w io.Writer, months int) (*DeployResult, error) {
	res, err := e.Deploy(months)
	if err != nil {
		return nil, err
	}
	fprintf(w, "Figure 14: key-API count over %d months (initial %d)\n",
		months, res.Report.InitialKeyAPIs)
	for _, m := range res.Report.Months {
		fprintf(w, "  month %2d: %d key APIs\n", m.Month, m.KeyAPIs)
	}
	return res, nil
}
