package experiments

import (
	"context"
	"io"
	"time"

	"apichecker/internal/baselines"
	"apichecker/internal/behavior"
	"apichecker/internal/core"
	"apichecker/internal/dataset"
	"apichecker/internal/features"
	"apichecker/internal/framework"
	"apichecker/internal/ml"
)

// Table1Row is one detector row of Table 1.
type Table1Row struct {
	Name      string
	Method    string
	PerApp    time.Duration
	NumAPIs   int
	Precision float64
	Recall    float64
}

// Table1Result is the regenerated Table 1.
type Table1Result struct {
	Rows []Table1Row
}

// Table1 compares the implemented baseline detectors against APICHECKER:
// per-app analysis time, API-set size, and detection quality on a common
// held-out slice with the natural market mix.
func (e *Env) Table1(w io.Writer) (*Table1Result, error) {
	// Baselines train on a malware-enriched corpus (as their original
	// papers did); everything evaluates on the same natural-mix slice.
	enrichedCfg := dataset.DefaultConfig()
	enrichedCfg.Seed = e.Seed + 17
	enrichedCfg.NumApps = min(600, e.Corpus.Len()*2/3)
	enrichedCfg.MaliciousFraction = 0.3
	enriched, err := dataset.Generate(e.U, enrichedCfg)
	if err != nil {
		return nil, err
	}
	testApps := e.Corpus.Apps[:min(400, e.Corpus.Len()/2)]
	gen := enriched.Generator()

	res := &Table1Result{}
	for _, b := range baselines.All() {
		if err := b.Fit(enriched); err != nil {
			return nil, err
		}
		var m ml.Confusion
		var total time.Duration
		for _, app := range testApps {
			got, dt, err := b.Classify(gen, app)
			if err != nil {
				return nil, err
			}
			m.Observe(got, app.Label == behavior.Malicious)
			total += dt
		}
		res.Rows = append(res.Rows, Table1Row{
			Name:      b.Name(),
			Method:    b.Method(),
			PerApp:    total / time.Duration(len(testApps)),
			NumAPIs:   b.NumAPIs(),
			Precision: m.Precision(),
			Recall:    m.Recall(),
		})
	}

	// APICHECKER row: trained on its own full-size natural-mix corpus
	// (the production system trains at market scale), evaluated on the
	// same test slice.
	trainCfg := dataset.DefaultConfig()
	trainCfg.Seed = e.Seed + 19
	trainCfg.NumApps = e.Corpus.Len()
	trainCorpus, err := dataset.Generate(e.U, trainCfg)
	if err != nil {
		return nil, err
	}
	ck, _, err := core.TrainFromCorpus(trainCorpus, core.DefaultConfig())
	if err != nil {
		return nil, err
	}
	ckGen := trainCorpus.Generator()
	var m ml.Confusion
	var total time.Duration
	for _, app := range testApps {
		v, err := ck.Vet(context.Background(), core.Submission{Program: ckGen.Generate(app.Spec)})
		if err != nil {
			return nil, err
		}
		m.Observe(v.Malicious, app.Label == behavior.Malicious)
		total += v.ScanTime
	}
	res.Rows = append(res.Rows, Table1Row{
		Name:      "APICHECKER",
		Method:    "dynamic",
		PerApp:    total / time.Duration(len(testApps)),
		NumAPIs:   len(ck.Selection().Keys),
		Precision: m.Precision(),
		Recall:    m.Recall(),
	})

	fprintf(w, "Table 1: detector comparison (test slice: %d apps, natural mix)\n", len(testApps))
	fprintf(w, "%-16s %-8s %12s %8s %10s %8s\n", "Detector", "Method", "Time/App", "#APIs", "Precision", "Recall")
	for _, r := range res.Rows {
		fprintf(w, "%-16s %-8s %12s %8d %9.1f%% %7.1f%%\n",
			r.Name, r.Method, r.PerApp.Round(time.Second), r.NumAPIs, 100*r.Precision, 100*r.Recall)
	}
	return res, nil
}

// Table2Row is one classifier row of Table 2.
type Table2Row struct {
	Model string

	// All-APIs configuration (the paper's 50K column).
	PrecisionAll float64
	RecallAll    float64
	TimeAll      time.Duration

	// Key-APIs configuration (the paper's 426 column).
	PrecisionKeys float64
	RecallKeys    float64
	TimeKeys      time.Duration
}

// Table2Result is the regenerated Table 2.
type Table2Result struct {
	NumAll  int // tracked APIs in the "all" configuration
	NumKeys int
	Rows    []Table2Row
}

// Table2 evaluates the nine classifiers with API-only features, tracking
// everything vs tracking the selected keys. Times are real wall-clock
// model-fitting times on this machine (kNN's cost shows up at prediction;
// its reported time includes evaluation, as noted in EXPERIMENTS.md).
func (e *Env) Table2(w io.Writer) (*Table2Result, error) {
	all := dataset.AllTrackableAPIs(e.U)
	keys := e.Selection.Keys

	build := func(tracked []framework.APIID) (*ml.Dataset, error) {
		ex, err := features.NewExtractor(e.U, tracked, features.ModeA)
		if err != nil {
			return nil, err
		}
		return e.Corpus.Vectorize(ex, googleProfile, e.Scale.Events)
	}
	dAll, err := build(all)
	if err != nil {
		return nil, err
	}
	dKeys, err := build(keys)
	if err != nil {
		return nil, err
	}

	res := &Table2Result{NumAll: len(all), NumKeys: len(keys)}
	for _, kind := range ml.AllModelKinds {
		row := Table2Row{Model: kind.String()}
		for _, cfg := range []struct {
			d    *ml.Dataset
			p, r *float64
			t    *time.Duration
		}{
			{dAll, &row.PrecisionAll, &row.RecallAll, &row.TimeAll},
			{dKeys, &row.PrecisionKeys, &row.RecallKeys, &row.TimeKeys},
		} {
			train, test := cfg.d.Split(0.7, e.Seed+5)
			c := ml.NewClassifier(kind, e.Seed+7)
			m, trainTime, evalTime, err := ml.TrainEval(c, train, test)
			if err != nil {
				return nil, err
			}
			*cfg.p = m.Precision()
			*cfg.r = m.Recall()
			*cfg.t = trainTime
			if kind == ml.ModelKNN {
				*cfg.t = trainTime + evalTime
			}
		}
		res.Rows = append(res.Rows, row)
	}

	fprintf(w, "Table 2: classifiers with %d vs %d tracked APIs\n", res.NumAll, res.NumKeys)
	fprintf(w, "%-20s %22s %22s %26s\n", "Model", "Precision (all/keys)", "Recall (all/keys)", "Training time (all/keys)")
	for _, r := range res.Rows {
		fprintf(w, "%-20s %9.1f%% / %8.1f%% %9.1f%% / %8.1f%% %12s / %11s\n",
			r.Model, 100*r.PrecisionAll, 100*r.PrecisionKeys,
			100*r.RecallAll, 100*r.RecallKeys,
			r.TimeAll.Round(time.Millisecond), r.TimeKeys.Round(time.Millisecond))
	}
	return res, nil
}
