package experiments

import (
	"io"

	"apichecker/internal/dataset"
	"apichecker/internal/emulator"
	"apichecker/internal/hook"
	"apichecker/internal/monkey"
)

// AuthenticityResult is the §4.2 controlled experiment: run an unbiased
// corpus sample on the stock emulator, the hardened emulator, and a real
// device, and count how many apps invoke the same number of distinct APIs
// as on the real device (paper: 86.6% stock, 98.6% hardened; the residual
// 1.4% needs live sensor data no emulator can synthesize).
type AuthenticityResult struct {
	Sample int

	// StockMatches / HardenedMatches count apps whose distinct-API
	// footprint equals the real-device run.
	StockMatches    int
	HardenedMatches int

	StockFraction    float64
	HardenedFraction float64

	// SensorLimited counts apps in the sample needing real sensors.
	SensorLimited int
}

// Authenticity runs the three-environment comparison on a corpus sample.
func (e *Env) Authenticity(w io.Writer) (*AuthenticityResult, error) {
	reg, err := hook.NewRegistry(e.U, dataset.AllTrackableAPIs(e.U))
	if err != nil {
		return nil, err
	}
	stock := emulator.New(emulator.StockGoogleEmulator, reg)
	hardened := emulator.New(emulator.GoogleEmulator, reg)
	device := emulator.New(emulator.RealDevice, reg)

	// The paper samples an unbiased 1% of the corpus; we take up to 500
	// apps for tighter fractions at laptop scale.
	n := e.Corpus.Len()
	if n > 500 {
		n = 500
	}
	res := &AuthenticityResult{Sample: n}
	for i := 0; i < n; i++ {
		p := e.Corpus.Program(i)
		if p.RequiresRealSensors {
			res.SensorLimited++
		}
		mk := monkey.ProductionConfig(int64(i) * 11)
		mk.Events = e.Scale.Events
		rStock, err := stock.Run(p, mk)
		if err != nil {
			return nil, err
		}
		rHard, err := hardened.Run(p, mk)
		if err != nil {
			return nil, err
		}
		rReal, err := device.Run(p, mk)
		if err != nil {
			return nil, err
		}
		if rStock.Log.DistinctInvoked() == rReal.Log.DistinctInvoked() {
			res.StockMatches++
		}
		if rHard.Log.DistinctInvoked() == rReal.Log.DistinctInvoked() {
			res.HardenedMatches++
		}
	}
	res.StockFraction = float64(res.StockMatches) / float64(n)
	res.HardenedFraction = float64(res.HardenedMatches) / float64(n)

	fprintf(w, "Authenticity (§4.2): apps matching the real-device API footprint (%d-app sample)\n", n)
	fprintf(w, "  stock emulator:    %.1f%%\n", 100*res.StockFraction)
	fprintf(w, "  hardened emulator: %.1f%%\n", 100*res.HardenedFraction)
	fprintf(w, "  sensor-limited apps in sample: %d (%.1f%%)\n",
		res.SensorLimited, 100*float64(res.SensorLimited)/float64(n))
	return res, nil
}
