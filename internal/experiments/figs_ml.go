package experiments

import (
	"io"
	"sort"
	"time"

	"apichecker/internal/features"
	"apichecker/internal/framework"
	"apichecker/internal/ml"
)

// Fig7Point is one tracking-set size of Figure 7.
type Fig7Point struct {
	TrackedAPIs int
	Precision   float64
	Recall      float64
}

// Fig7Result is precision/recall vs top-n correlated tracking sets.
type Fig7Result struct {
	Points []Fig7Point
	// All is the track-everything configuration (the over-fitting end).
	All Fig7Point
}

// Fig7 shows that strategically tracking fewer APIs beats tracking all of
// them (§4.3's counter-intuitive over-fitting result), using the random
// forest throughout.
func (e *Env) Fig7(w io.Writer) (*Fig7Result, error) {
	scaled := func(n int) int {
		v := e.U.NumAPIs() * n / 50000
		if v < 10 {
			v = 10
		}
		return v
	}
	ns := []int{scaled(100), scaled(200), scaled(400), scaled(490), scaled(600), scaled(800), scaled(1000), scaled(10000)}
	res := &Fig7Result{}
	seen := map[int]bool{}
	for _, n := range ns {
		if seen[n] {
			continue
		}
		seen[n] = true
		p, r, err := e.forestQuality(featuresTop(e, n), features.ModeA)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, Fig7Point{TrackedAPIs: n, Precision: p, Recall: r})
	}
	var all []framework.APIID
	for i := 0; i < e.U.NumAPIs(); i++ {
		if !e.U.API(framework.APIID(i)).Hidden {
			all = append(all, framework.APIID(i))
		}
	}
	p, r, err := e.forestQuality(all, features.ModeA)
	if err != nil {
		return nil, err
	}
	res.All = Fig7Point{TrackedAPIs: len(all), Precision: p, Recall: r}

	fprintf(w, "Figure 7: precision/recall vs top-n correlated tracked APIs (random forest)\n")
	fprintf(w, "%10s %10s %8s\n", "n", "Precision", "Recall")
	for _, pt := range res.Points {
		fprintf(w, "%10d %9.1f%% %7.1f%%\n", pt.TrackedAPIs, 100*pt.Precision, 100*pt.Recall)
	}
	fprintf(w, "%10d %9.1f%% %7.1f%%  <- all APIs (over-fitting)\n",
		res.All.TrackedAPIs, 100*res.All.Precision, 100*res.All.Recall)
	return res, nil
}

// forestQuality trains/evaluates an RF on a tracked set and feature mode
// with a fixed 70/30 split.
func (e *Env) forestQuality(tracked []framework.APIID, mode features.Mode) (precision, recall float64, err error) {
	ex, err := features.NewExtractor(e.U, tracked, mode)
	if err != nil {
		return 0, 0, err
	}
	d, err := e.Corpus.Vectorize(ex, googleProfile, e.Scale.Events)
	if err != nil {
		return 0, 0, err
	}
	train, test := d.Split(0.7, e.Seed+5)
	rf := ml.NewRandomForest(ml.DefaultForestConfig(e.Seed + 7))
	m, _, _, err := ml.TrainEval(rf, train, test)
	if err != nil {
		return 0, 0, err
	}
	return m.Precision(), m.Recall(), nil
}

// Fig10Row is one feature combination of Figure 10.
type Fig10Row struct {
	Mode      features.Mode
	Precision float64
	Recall    float64
	F1        float64
}

// Fig10Result compares the auxiliary-feature combinations.
type Fig10Result struct {
	Rows []Fig10Row
}

// Fig10 evaluates A, A+P, A+I, P+I and A+P+I over the key APIs (§4.5:
// hidden features lift recall from 93.7% to 96.7%).
func (e *Env) Fig10(w io.Writer) (*Fig10Result, error) {
	res := &Fig10Result{}
	for _, mode := range []features.Mode{features.ModeA, features.ModeAP, features.ModeAI, features.ModePI, features.ModeAPI} {
		tracked := e.Selection.Keys
		if mode == features.ModePI {
			tracked = nil // P+I uses no API features at all
		}
		ex, err := features.NewExtractor(e.U, tracked, mode)
		if err != nil {
			return nil, err
		}
		d, err := e.Corpus.Vectorize(ex, googleProfile, e.Scale.Events)
		if err != nil {
			return nil, err
		}
		cv, err := ml.CrossValidate(func() ml.Classifier {
			return ml.NewRandomForest(ml.DefaultForestConfig(e.Seed + 7))
		}, d, 5, e.Seed+5)
		if err != nil {
			return nil, err
		}
		m := cv.Confusion
		res.Rows = append(res.Rows, Fig10Row{Mode: mode, Precision: m.Precision(), Recall: m.Recall(), F1: m.F1()})
	}
	fprintf(w, "Figure 10: auxiliary features (A: %d key APIs, P: permissions, I: intents)\n", len(e.Selection.Keys))
	fprintf(w, "%8s %10s %8s %8s\n", "Features", "Precision", "Recall", "F1")
	for _, r := range res.Rows {
		fprintf(w, "%8s %9.1f%% %7.1f%% %7.1f%%\n", r.Mode, 100*r.Precision, 100*r.Recall, 100*r.F1)
	}
	return res, nil
}

// keyForest lazily trains the deployed-configuration forest (A+P+I over
// the key APIs) and caches it with its extractor.
func (e *Env) keyForest() (*ml.RandomForest, *features.Extractor, error) {
	if e.cachedForest != nil {
		return e.cachedForest, e.cachedExtractor, nil
	}
	ex, err := features.NewExtractor(e.U, e.Selection.Keys, features.ModeAPI)
	if err != nil {
		return nil, nil, err
	}
	d, err := e.Corpus.Vectorize(ex, googleProfile, e.Scale.Events)
	if err != nil {
		return nil, nil, err
	}
	rf := ml.NewRandomForest(ml.DefaultForestConfig(e.Seed + 13))
	if err := rf.Train(d); err != nil {
		return nil, nil, err
	}
	e.cachedForest, e.cachedExtractor = rf, ex
	return rf, ex, nil
}

// topImportantKeys returns the k key APIs with the highest Gini importance
// in the deployed model.
func (e *Env) topImportantKeys(k int) ([]framework.APIID, error) {
	rf, ex, err := e.keyForest()
	if err != nil {
		return nil, err
	}
	imp := rf.Importance()
	type cand struct {
		id framework.APIID
		v  float64
	}
	tracked := ex.TrackedAPIs()
	cands := make([]cand, len(tracked))
	for i, id := range tracked {
		cands[i] = cand{id, imp[i]} // API features occupy the first indexes
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].v != cands[j].v {
			return cands[i].v > cands[j].v
		}
		return cands[i].id < cands[j].id
	})
	if k > len(cands) {
		k = len(cands)
	}
	out := make([]framework.APIID, k)
	for i := 0; i < k; i++ {
		out[i] = cands[i].id
	}
	return out, nil
}

// Fig13Feature is one ranked feature of Figure 13.
type Fig13Feature struct {
	Name       string
	Importance float64
}

// Fig13Result is the top-feature ranking.
type Fig13Result struct {
	Top []Fig13Feature

	// Family mix of the top 20: APIs / permissions / intents.
	APIs, Permissions, Intents int
}

// Fig13 ranks the deployed model's features by Gini importance (the paper
// finds 7 APIs, 8 permissions and 5 intents in the top 20).
func (e *Env) Fig13(w io.Writer) (*Fig13Result, error) {
	rf, ex, err := e.keyForest()
	if err != nil {
		return nil, err
	}
	imp := rf.Importance()
	type cand struct {
		idx int
		v   float64
	}
	cands := make([]cand, len(imp))
	for i, v := range imp {
		cands[i] = cand{i, v}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].v != cands[j].v {
			return cands[i].v > cands[j].v
		}
		return cands[i].idx < cands[j].idx
	})
	res := &Fig13Result{}
	numAPIs := len(ex.TrackedAPIs())
	permEnd := numAPIs + len(e.U.Permissions())
	for i := 0; i < 20 && i < len(cands); i++ {
		name := ex.FeatureName(cands[i].idx)
		res.Top = append(res.Top, Fig13Feature{Name: name, Importance: cands[i].v})
		switch {
		case cands[i].idx < numAPIs:
			res.APIs++
		case cands[i].idx < permEnd:
			res.Permissions++
		default:
			res.Intents++
		}
	}
	fprintf(w, "Figure 13: top-20 features by Gini importance (%d APIs, %d permissions, %d intents)\n",
		res.APIs, res.Permissions, res.Intents)
	for _, f := range res.Top {
		fprintf(w, "  %-55s %.4f\n", f.Name, f.Importance)
	}
	return res, nil
}

// Fig15Point is one top-k configuration of Figure 15.
type Fig15Point struct {
	TopK     int
	F1       float64
	MeanTime time.Duration
}

// Fig15Result sweeps tracking only the top-k Gini-important key APIs.
type Fig15Result struct {
	Points []Fig15Point
}

// Fig15 trades detection accuracy against analysis time over the
// importance ranking (§5.4: the top ~150 keys nearly match all 426 at a
// fraction of the time).
func (e *Env) Fig15(w io.Writer) (*Fig15Result, error) {
	total := len(e.Selection.Keys)
	ks := []int{total / 16, total / 8, total / 4, total * 150 / 426, total / 2, total}
	sub := e.subCorpus(e.Seed+43, 0, min(250, e.Corpus.Len()))
	res := &Fig15Result{}
	seen := map[int]bool{}
	for _, k := range ks {
		if k < 2 || seen[k] {
			continue
		}
		seen[k] = true
		top, err := e.topImportantKeys(k)
		if err != nil {
			return nil, err
		}
		ex, err := features.NewExtractor(e.U, top, features.ModeAPI)
		if err != nil {
			return nil, err
		}
		d, err := e.Corpus.Vectorize(ex, googleProfile, e.Scale.Events)
		if err != nil {
			return nil, err
		}
		train, test := d.Split(0.7, e.Seed+5)
		rf := ml.NewRandomForest(ml.DefaultForestConfig(e.Seed + 7))
		m, _, _, err := ml.TrainEval(rf, train, test)
		if err != nil {
			return nil, err
		}
		runs, err := sub.RunTimes(top, googleProfile, e.Scale.Events)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, Fig15Point{TopK: k, F1: m.F1(), MeanTime: meanDuration(runs)})
	}
	fprintf(w, "Figure 15: F1 and analysis time vs top-k important key APIs (of %d)\n", total)
	fprintf(w, "%8s %8s %12s\n", "k", "F1", "MeanTime")
	for _, p := range res.Points {
		fprintf(w, "%8d %7.1f%% %12s\n", p.TopK, 100*p.F1, p.MeanTime.Round(time.Second))
	}
	return res, nil
}
