package experiments

import (
	"io"
	"time"

	"apichecker/internal/dataset"
	"apichecker/internal/framework"
	"apichecker/internal/stats"
)

// Fig1Point is one x-position of Figure 1.
type Fig1Point struct {
	Events   int
	RAC      float64
	MeanTime time.Duration
}

// Fig1Result is the Monkey-volume sweep.
type Fig1Result struct {
	Points []Fig1Point
}

// Fig1 sweeps the number of Monkey events and reports mean RAC and mean
// emulation time (no API tracking), reproducing the §4.2 trade-off that
// justifies the 5K-event production setting.
func (e *Env) Fig1(w io.Writer) (*Fig1Result, error) {
	sub := e.subCorpus(e.Seed+31, 0, min(150, e.Corpus.Len()))
	res := &Fig1Result{}
	for _, events := range []int{500, 1000, 2000, 5000, 10000, 20000, 50000, 100000} {
		runs, err := sub.RunTimes(nil, googleProfile, events)
		if err != nil {
			return nil, err
		}
		rac := 0.0
		for i := range runs {
			rac += runs[i].RAC
		}
		res.Points = append(res.Points, Fig1Point{
			Events:   events,
			RAC:      rac / float64(len(runs)),
			MeanTime: meanDuration(runs),
		})
	}
	fprintf(w, "Figure 1: Monkey events vs RAC and emulation time (%d apps)\n", sub.Len())
	fprintf(w, "%10s %8s %14s\n", "Events", "RAC", "MeanTime")
	for _, p := range res.Points {
		fprintf(w, "%10d %7.1f%% %14s\n", p.Events, 100*p.RAC, p.MeanTime.Round(time.Second))
	}
	return res, nil
}

// CDFResult is a generic CDF-figure result.
type CDFResult struct {
	Label   string
	Summary stats.Summary
	Points  []stats.CDFPoint
}

// Fig2Result is the invocation-volume CDF.
type Fig2Result struct {
	// Millions of API invocations per app emulation.
	CDF CDFResult
}

// Fig2 reports the distribution of per-app API invocation volume during a
// 5K-event emulation (paper: min 15.8M, mean 42.3M, median 39.7M, max
// 64.6M — scaled here by universe size).
func (e *Env) Fig2(w io.Writer) (*Fig2Result, error) {
	vals := make([]float64, len(e.Runs))
	for i := range e.Runs {
		vals[i] = float64(e.Runs[i].TotalInvocations) / 1e6
	}
	res := &Fig2Result{CDF: CDFResult{
		Label:   "API invocations (millions)",
		Summary: stats.Summarize(vals),
		Points:  stats.CDF(vals, 20),
	}}
	fprintf(w, "Figure 2: CDF of per-app API invocations (millions)\n  %s\n", res.CDF.Summary)
	return res, nil
}

// Fig3Result compares emulation-time distributions with no tracking vs
// tracking every API.
type Fig3Result struct {
	TrackNone CDFResult
	TrackAll  CDFResult
}

// Fig3 reproduces the headline overhead gap: tracking all APIs multiplies
// emulation time by ~25x (2.1 → 53.6 minutes in the paper).
func (e *Env) Fig3(w io.Writer) (*Fig3Result, error) {
	none, err := e.Corpus.RunTimes(nil, googleProfile, e.Scale.Events)
	if err != nil {
		return nil, err
	}
	res := &Fig3Result{
		TrackNone: cdfOf("track no API (min)", none),
		TrackAll:  cdfOf("track all APIs (min)", e.Runs),
	}
	fprintf(w, "Figure 3: emulation time, tracking all APIs vs none\n")
	fprintf(w, "  none: %s\n  all:  %s\n", res.TrackNone.Summary, res.TrackAll.Summary)
	return res, nil
}

func cdfOf(label string, runs []dataset.AppRun) CDFResult {
	vals := timesOf(runs)
	return CDFResult{Label: label, Summary: stats.Summarize(vals), Points: stats.CDF(vals, 20)}
}

// Fig6Point is one tracked-set size of Figure 6.
type Fig6Point struct {
	TrackedAPIs int
	MeanTime    time.Duration
}

// Fig6Result is the analysis-time curve over top-n correlated tracking
// sets, with the tri-modal fit of Eq. 1.
type Fig6Result struct {
	Points []Fig6Point

	// Segment fits: linear on [1, kneeA), power on [kneeA, kneeB],
	// logarithmic beyond (the paper's knees are 800 and 1K at 50K-API
	// scale; knees scale with the universe).
	KneeA, KneeB int
	LinearFit    stats.Fit
	PowerFit     stats.Fit
	LogFit       stats.Fit
}

// Fig6 sweeps tracking the top-n |SRC|-ranked APIs and fits the tri-modal
// time model (§4.3 Eq. 1).
func (e *Env) Fig6(w io.Writer) (*Fig6Result, error) {
	// Knees follow the corpus structure rather than fixed ranks: the
	// first segment covers the strongly correlated head (≈ Set-C), the
	// second the heavily-shared APIs that enroll right below it (the
	// paper's 800/1K knees at 50K-API scale), the third the long
	// low-frequency tail.
	kneeA := len(e.Selection.SetC)
	if kneeA < 20 {
		kneeA = 20
	}
	kneeB := kneeA + max(10, e.U.NumAPIs()*200/50000)
	var ns []int
	for _, frac := range []float64{0.1, 0.25, 0.5, 0.75, 1.0} {
		ns = append(ns, max(1, int(float64(kneeA)*frac)))
	}
	for _, frac := range []float64{0.25, 0.5, 0.75, 1.0} {
		ns = append(ns, kneeA+max(1, int(float64(kneeB-kneeA)*frac)))
	}
	total := e.U.NumAPIs()
	for _, frac := range []float64{0.05, 0.1, 0.2, 0.4, 0.7, 1.0} {
		n := kneeB + int(float64(total-kneeB)*frac)
		ns = append(ns, n)
	}

	sub := e.subCorpus(e.Seed+37, 0, min(250, e.Corpus.Len()))
	cfg := e.Selection.Config
	res := &Fig6Result{KneeA: kneeA, KneeB: kneeB}
	seen := map[int]bool{}
	for _, n := range ns {
		if seen[n] {
			continue
		}
		seen[n] = true
		tracked := topCorrelatedPadded(e, n)
		runs, err := sub.RunTimes(tracked, googleProfile, e.Scale.Events)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, Fig6Point{TrackedAPIs: len(tracked), MeanTime: meanDuration(runs)})
	}
	_ = cfg

	var xa, ya, xb, yb, xc, yc []float64
	for _, p := range res.Points {
		x, y := float64(p.TrackedAPIs), p.MeanTime.Minutes()
		switch {
		case p.TrackedAPIs < kneeA:
			xa = append(xa, x)
			ya = append(ya, y)
		case p.TrackedAPIs <= kneeB:
			xb = append(xb, x)
			yb = append(yb, y)
		default:
			xc = append(xc, x)
			yc = append(yc, y)
		}
	}
	res.LinearFit = stats.FitLinear(xa, ya)
	res.PowerFit = stats.FitPower(xb, yb)
	res.LogFit = stats.FitLog(xc, yc)

	fprintf(w, "Figure 6: analysis time vs top-n correlated tracked APIs (knees %d/%d)\n", kneeA, kneeB)
	fprintf(w, "%10s %12s\n", "n", "MeanTime")
	for _, p := range res.Points {
		fprintf(w, "%10d %12s\n", p.TrackedAPIs, p.MeanTime.Round(time.Second))
	}
	fprintf(w, "  fit: linear R2=%.3f | power R2=%.3f | log R2=%.3f\n",
		res.LinearFit.R2, res.PowerFit.R2, res.LogFit.R2)
	return res, nil
}

// topCorrelatedPadded returns the top-n |SRC| APIs, padding with never-
// invoked APIs once the ranked list is exhausted (tracking them costs
// nothing, matching the flat tail of Fig. 6).
func topCorrelatedPadded(e *Env, n int) []framework.APIID {
	top := featuresTop(e, n)
	if len(top) >= n {
		return top
	}
	seen := make(map[framework.APIID]bool, len(top))
	for _, id := range top {
		seen[id] = true
	}
	for i := 0; i < e.U.NumAPIs() && len(top) < n; i++ {
		id := framework.APIID(i)
		if !seen[id] && !e.U.API(id).Hidden {
			top = append(top, id)
		}
	}
	return top
}

// Fig9Result is the key-API tracking time CDF.
type Fig9Result struct {
	TrackNone CDFResult
	TrackKeys CDFResult
}

// Fig9 reports emulation time when tracking only the selected key APIs on
// the study engine (paper: mean 4.3 min vs 2.1 untracked and 53.6 full).
func (e *Env) Fig9(w io.Writer) (*Fig9Result, error) {
	none, err := e.Corpus.RunTimes(nil, googleProfile, e.Scale.Events)
	if err != nil {
		return nil, err
	}
	keys, err := e.Corpus.RunTimes(e.Selection.Keys, googleProfile, e.Scale.Events)
	if err != nil {
		return nil, err
	}
	res := &Fig9Result{
		TrackNone: cdfOf("track no API (min)", none),
		TrackKeys: cdfOf("track key APIs (min)", keys),
	}
	fprintf(w, "Figure 9: emulation time tracking the %d key APIs\n", len(e.Selection.Keys))
	fprintf(w, "  none: %s\n  keys: %s\n", res.TrackNone.Summary, res.TrackKeys.Summary)
	return res, nil
}

// Fig11Result compares the engines.
type Fig11Result struct {
	Google      CDFResult
	Lightweight CDFResult
	Saving      float64 // fraction of time saved by the lightweight engine
	FellBack    int
}

// Fig11 reproduces the §5.1 engine comparison: the Android-x86 + binary
// translation engine saves ~70% of per-app analysis time at equal tracked
// sets, with <1% of apps falling back.
func (e *Env) Fig11(w io.Writer) (*Fig11Result, error) {
	google, err := e.Corpus.RunTimes(e.Selection.Keys, googleProfile, e.Scale.Events)
	if err != nil {
		return nil, err
	}
	light, err := e.Corpus.RunTimes(e.Selection.Keys, lightProfile, e.Scale.Events)
	if err != nil {
		return nil, err
	}
	res := &Fig11Result{
		Google:      cdfOf("google emulator (min)", google),
		Lightweight: cdfOf("lightweight emulator (min)", light),
	}
	var tg, tl time.Duration
	for i := range google {
		tg += google[i].Time
		tl += light[i].Time
		if light[i].FellBack {
			res.FellBack++
		}
	}
	res.Saving = 1 - float64(tl)/float64(tg)
	fprintf(w, "Figure 11: Google vs lightweight emulator (tracking %d keys)\n", len(e.Selection.Keys))
	fprintf(w, "  google:      %s\n  lightweight: %s\n", res.Google.Summary, res.Lightweight.Summary)
	fprintf(w, "  time saving: %.0f%%, fallbacks: %d/%d\n", 100*res.Saving, res.FellBack, len(light))
	return res, nil
}

// Fig16Result compares tracked-set sizes on the study engine.
type Fig16Result struct {
	TrackNone CDFResult
	Track150  CDFResult
	TrackKeys CDFResult
	N150      int
}

// Fig16 reports the time CDFs tracking nothing, the top Gini-important
// subset (~150 of 426 in the paper), and all key APIs (§5.4's further-
// reduction discussion).
func (e *Env) Fig16(w io.Writer) (*Fig16Result, error) {
	n150 := len(e.Selection.Keys) * 150 / 426
	if n150 < 5 {
		n150 = min(5, len(e.Selection.Keys))
	}
	topKeys, err := e.topImportantKeys(n150)
	if err != nil {
		return nil, err
	}
	none, err := e.Corpus.RunTimes(nil, googleProfile, e.Scale.Events)
	if err != nil {
		return nil, err
	}
	some, err := e.Corpus.RunTimes(topKeys, googleProfile, e.Scale.Events)
	if err != nil {
		return nil, err
	}
	keys, err := e.Corpus.RunTimes(e.Selection.Keys, googleProfile, e.Scale.Events)
	if err != nil {
		return nil, err
	}
	res := &Fig16Result{
		TrackNone: cdfOf("none (min)", none),
		Track150:  cdfOf("top-important keys (min)", some),
		TrackKeys: cdfOf("all keys (min)", keys),
		N150:      len(topKeys),
	}
	fprintf(w, "Figure 16: emulation time tracking none / %d / %d APIs\n", len(topKeys), len(e.Selection.Keys))
	fprintf(w, "  none: %s\n  %4d: %s\n  %4d: %s\n",
		res.TrackNone.Summary, len(topKeys), res.Track150.Summary, len(e.Selection.Keys), res.TrackKeys.Summary)
	return res, nil
}
