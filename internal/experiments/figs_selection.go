package experiments

import (
	"io"
	"sort"

	"apichecker/internal/features"
	"apichecker/internal/framework"
)

// featuresTop ranks the top-n not-seldom APIs by |SRC|.
func featuresTop(e *Env, n int) []framework.APIID {
	return features.TopCorrelated(e.U, e.Usage, n, e.Selection.Config)
}

// Fig4Result is the full SRC spectrum.
type Fig4Result struct {
	// SRCsDescending is the measured SRC of every non-hidden API, sorted
	// descending (Fig. 4's curve).
	SRCsDescending []float64

	// Counts at the paper's thresholds.
	StrongPositive int // SRC >= +0.2
	StrongNegative int // SRC <= -0.2
	MaxSRC, MinSRC float64
}

// Fig4 ranks all APIs by SRC (§4.3: 247 APIs above +0.2; a negative tail
// dominated by seldom-invoked APIs).
func (e *Env) Fig4(w io.Writer) (*Fig4Result, error) {
	res := &Fig4Result{}
	for i := 0; i < e.U.NumAPIs(); i++ {
		id := framework.APIID(i)
		if e.U.API(id).Hidden {
			continue
		}
		src := e.Selection.SRC[i]
		res.SRCsDescending = append(res.SRCsDescending, src)
		if src >= 0.2 {
			res.StrongPositive++
		}
		if src <= -0.2 {
			res.StrongNegative++
		}
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(res.SRCsDescending)))
	if len(res.SRCsDescending) > 0 {
		res.MaxSRC = res.SRCsDescending[0]
		res.MinSRC = res.SRCsDescending[len(res.SRCsDescending)-1]
	}
	fprintf(w, "Figure 4: SRC ranking of %d APIs\n", len(res.SRCsDescending))
	fprintf(w, "  SRC >= +0.2: %d APIs | SRC <= -0.2: %d APIs | range [%.3f, %.3f]\n",
		res.StrongPositive, res.StrongNegative, res.MinSRC, res.MaxSRC)
	for _, rank := range []int{0, 9, 49, 99, 199, 499, 999} {
		if rank < len(res.SRCsDescending) {
			fprintf(w, "  rank %5d: SRC = %+.3f\n", rank+1, res.SRCsDescending[rank])
		}
	}
	return res, nil
}

// Fig5Result is the |SRC| ranking of not-seldom APIs.
type Fig5Result struct {
	AbsSRCDescending []float64
	NonTrivial       int // |SRC| >= threshold among not-seldom APIs (Set-C size)
}

// Fig5 ranks the not-seldom-invoked APIs by |SRC| (the paper's top-1K
// view; 260 non-trivial).
func (e *Env) Fig5(w io.Writer) (*Fig5Result, error) {
	cfg := e.Selection.Config
	res := &Fig5Result{}
	for i := 0; i < e.U.NumAPIs(); i++ {
		id := framework.APIID(i)
		if e.U.API(id).Hidden || e.Usage.UsageFraction(id) < cfg.SeldomFraction {
			continue
		}
		abs := e.Selection.SRC[i]
		if abs < 0 {
			abs = -abs
		}
		res.AbsSRCDescending = append(res.AbsSRCDescending, abs)
		if abs >= cfg.SRCThreshold {
			res.NonTrivial++
		}
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(res.AbsSRCDescending)))
	limit := e.U.NumAPIs() * 1000 / 50000 // the paper plots the top 1K of 50K
	if limit < 10 {
		limit = 10
	}
	if limit < len(res.AbsSRCDescending) {
		res.AbsSRCDescending = res.AbsSRCDescending[:limit]
	}
	fprintf(w, "Figure 5: top-%d not-seldom APIs by |SRC| — %d non-trivial (Set-C)\n",
		len(res.AbsSRCDescending), res.NonTrivial)
	for _, rank := range []int{0, len(res.AbsSRCDescending) / 4, len(res.AbsSRCDescending) / 2, len(res.AbsSRCDescending) - 1} {
		if rank >= 0 && rank < len(res.AbsSRCDescending) {
			fprintf(w, "  rank %4d: |SRC| = %.3f\n", rank+1, res.AbsSRCDescending[rank])
		}
	}
	return res, nil
}

// Fig8Result is the Venn accounting of the three key-API sets.
type Fig8Result struct {
	SetC, SetP, SetS      int
	CP, CS, PS, CPS       int
	Union                 int
	TotalPairwiseOverlaps int
}

// Fig8 reports the set sizes and overlaps behind the 426-key union (the
// paper: 260 + 112 + 70 with only 16 overlapping APIs).
func (e *Env) Fig8(w io.Writer) (*Fig8Result, error) {
	cp, cs, ps, cps := e.Selection.Overlaps()
	res := &Fig8Result{
		SetC: len(e.Selection.SetC),
		SetP: len(e.Selection.SetP),
		SetS: len(e.Selection.SetS),
		CP:   cp, CS: cs, PS: ps, CPS: cps,
		Union:                 len(e.Selection.Keys),
		TotalPairwiseOverlaps: cp + cs + ps - 2*cps,
	}
	fprintf(w, "Figure 8: key-API sets — C=%d P=%d S=%d, overlaps C∩P=%d C∩S=%d P∩S=%d (triple %d), union=%d\n",
		res.SetC, res.SetP, res.SetS, res.CP, res.CS, res.PS, res.CPS, res.Union)
	return res, nil
}
