package cluster

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"apichecker/internal/core"
	"apichecker/internal/modelstore"
	"apichecker/internal/obs"
	"apichecker/internal/vetsvc"
	"apichecker/internal/workqueue"
)

// CoordinatorConfig tunes the cluster's queue-owning side.
type CoordinatorConfig struct {
	// NodeTTL is the worker-node liveness window: a node unseen for
	// longer drops out of the affinity set and the live count; <= 0
	// selects 15s.
	NodeTTL time.Duration

	// MaxPoll caps a claim request's long-poll budget; <= 0 selects 30s.
	MaxPoll time.Duration

	// PollSlice is how often a blocked claim re-evaluates node liveness
	// and affinity (each slice is one bounded ClaimWhere); <= 0 selects
	// 250ms. Tests shrink it.
	PollSlice time.Duration

	// StealAge is the anti-starvation bound: a pending item older than
	// this is claimable by any node, affinity notwithstanding (its owner
	// is slow, dead, or drowning); <= 0 selects NodeTTL.
	StealAge time.Duration

	// Registry, when set, serves older generations' artifact bytes for
	// GET /v1/model/{digest} misses (the in-memory window holds only the
	// last few snapshots).
	Registry *modelstore.Registry

	// OnVerdict, when set, observes every remote verdict report as it
	// lands (after first-wins recording). Called synchronously from the
	// ack handler: keep it fast.
	OnVerdict func(RemoteVerdict)
}

// RemoteVerdict is one worker-node verdict report, as observed by the
// coordinator.
type RemoteVerdict struct {
	Node        string
	Seq         int64
	ModelDigest string // the generation the node vetted under
	Verdict     *core.Verdict
	Err         string
	// Recorded: this report settled the first-wins verdict record (false
	// for reclaim-raced duplicates).
	Recorded bool
}

// Coordinator owns the durable queue side of the cluster: it mounts the
// claim protocol on the gateway mux, tracks worker-node liveness, routes
// claims by digest affinity, and serves model artifacts so nodes always
// vet on the advertised generation. Construct with NewCoordinator over a
// running vetsvc.Service (normally one opened in coordinator mode,
// vetsvc.Config.DisableLocalLanes; local lanes and remote nodes can also
// share a queue — first-wins records absorb the overlap).
type Coordinator struct {
	svc *vetsvc.Service
	ck  *core.Checker
	q   *workqueue.Queue
	cfg CoordinatorConfig

	// nodes is the worker registry, by node name; liveness is lastSeen
	// within NodeTTL.
	nodesMu sync.Mutex
	nodes   map[string]*nodeState

	// leases maps seq → the wire-lease view of an outstanding remote
	// claim. A re-issued claim overwrites by seq; stale entries (node
	// death) are pruned on the claim path. Never hold leaseMu across
	// queue calls.
	leaseMu sync.Mutex
	leases  map[int64]*remoteLease

	// model memoizes the serving generation's encoded artifact, keyed by
	// the checker's generation ID: SetTriageBand republishes the same
	// parts under the same artifact digest, but a fresh snapshot is the
	// only digest source that always matches what the checker serves.
	modelMu     sync.Mutex
	modelGen    uint64
	modelDigest string
	models      map[string][]byte
	modelOrder  []string

	nodesGauge                       *obs.Gauge
	claims, acks, nacks, lost, pulls *obs.Counter
}

// nodeState is one worker node's registry entry.
type nodeState struct {
	lastSeen time.Time
	claims   uint64
	leaseAge *obs.Distribution // wall seconds per settled remote lease
}

// remoteLease pairs a queue lease with the node holding it.
type remoteLease struct {
	l        *workqueue.Lease
	node     string
	leasedAt time.Time
}

// modelWindow bounds the in-memory digest → artifact map (current
// generation plus a few predecessors, so a node pulling the digest a
// just-superseded claim advertised still succeeds without a registry).
const modelWindow = 4

// NewCoordinator builds a coordinator over a running service. Cluster
// metrics (cluster.nodes, cluster.claims/acks/nacks/reclaims, per-node
// cluster.lease_age.<node> distributions) register on the service's obs
// collector, so they flow into GET /metrics with no exporter changes.
func NewCoordinator(svc *vetsvc.Service, cfg CoordinatorConfig) *Coordinator {
	if cfg.NodeTTL <= 0 {
		cfg.NodeTTL = 15 * time.Second
	}
	if cfg.MaxPoll <= 0 {
		cfg.MaxPoll = 30 * time.Second
	}
	if cfg.PollSlice <= 0 {
		cfg.PollSlice = 250 * time.Millisecond
	}
	if cfg.StealAge <= 0 {
		cfg.StealAge = cfg.NodeTTL
	}
	col := svc.Obs()
	return &Coordinator{
		svc:        svc,
		ck:         svc.Checker(),
		q:          svc.Queue(),
		cfg:        cfg,
		nodes:      make(map[string]*nodeState),
		leases:     make(map[int64]*remoteLease),
		models:     make(map[string][]byte),
		nodesGauge: col.Gauge("cluster.nodes"),
		claims:     col.Counter("cluster.claims"),
		acks:       col.Counter("cluster.acks"),
		nacks:      col.Counter("cluster.nacks"),
		lost:       col.Counter("cluster.reclaims"),
		pulls:      col.Counter("cluster.model_pulls"),
	}
}

// Mount registers the claim protocol and the model endpoint on mux.
func (c *Coordinator) Mount(mux *http.ServeMux) {
	mux.HandleFunc("POST "+PathClaim, c.handleClaim)
	mux.HandleFunc("POST "+PathHeartbeat, c.handleHeartbeat)
	mux.HandleFunc("POST "+PathAck, c.handleAck)
	mux.HandleFunc("POST "+PathNack, c.handleNack)
	mux.HandleFunc("GET "+PathModel+"{digest}", c.handleModel)
}

// LiveNodes reports how many worker nodes are within their liveness
// window right now (the healthz surface).
func (c *Coordinator) LiveNodes() int { return len(c.liveNodes()) }

// touch books one sighting of node and refreshes the live gauge.
func (c *Coordinator) touch(node string) {
	now := time.Now()
	c.nodesMu.Lock()
	ns := c.nodes[node]
	if ns == nil {
		ns = &nodeState{leaseAge: c.svc.Obs().Distribution("cluster.lease_age." + node)}
		c.nodes[node] = ns
	}
	ns.lastSeen = now
	live := 0
	for name, st := range c.nodes {
		if now.Sub(st.lastSeen) > c.cfg.NodeTTL {
			// Expired registry entries are dropped; the node's obs
			// distribution survives on the collector and resumes if the
			// node returns.
			delete(c.nodes, name)
			continue
		}
		live++
	}
	c.nodesGauge.Set(int64(live))
	c.nodesMu.Unlock()
}

// liveNodes snapshots the live node names, sorted for deterministic
// affinity.
func (c *Coordinator) liveNodes() []string {
	now := time.Now()
	c.nodesMu.Lock()
	out := make([]string, 0, len(c.nodes))
	for name, st := range c.nodes {
		if now.Sub(st.lastSeen) <= c.cfg.NodeTTL {
			out = append(out, name)
		}
	}
	c.nodesMu.Unlock()
	sort.Strings(out)
	return out
}

// affinityOwner picks the live node whose verdict cache most likely
// holds key: rendezvous (highest-random-weight) hashing over the live
// node set, so repeat submissions route to the same node while a
// membership change only reshuffles the keys the lost node owned.
func affinityOwner(key string, live []string) string {
	best, bestH := "", uint64(0)
	for _, n := range live {
		h := rendezvousHash(key, n)
		if best == "" || h > bestH || (h == bestH && n < best) {
			best, bestH = n, h
		}
	}
	return best
}

// rendezvousHash is FNV-1a over key ∥ 0x00 ∥ node.
func rendezvousHash(key, node string) uint64 {
	const offset, prime = uint64(14695981039346656037), uint64(1099511628211)
	h := offset
	for i := 0; i < len(key); i++ {
		h = (h ^ uint64(key[i])) * prime
	}
	h = (h ^ 0) * prime
	for i := 0; i < len(node); i++ {
		h = (h ^ uint64(node[i])) * prime
	}
	return h
}

// handleClaim is POST /v1/cluster/claim: long-poll for the lowest-seq
// pending item this node may take. The poll is sliced so node liveness
// and affinity are re-evaluated every PollSlice; 204 means nothing
// became claimable within the budget (the worker just re-polls).
func (c *Coordinator) handleClaim(w http.ResponseWriter, r *http.Request) {
	var req claimRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Node == "" {
		httpError(w, http.StatusBadRequest, "claim requires a node name")
		return
	}
	c.touch(req.Node)
	c.pruneLeases()

	budget := time.Duration(req.WaitMS) * time.Millisecond
	if budget <= 0 || budget > c.cfg.MaxPoll {
		budget = c.cfg.MaxPoll
	}
	deadline := time.Now().Add(budget)
	for {
		live := c.liveNodes()
		now := time.Now()
		accept := func(it workqueue.Item) bool {
			if it.Payload == nil {
				// Memory-only submissions cannot ship; local lanes (if
				// any) own them.
				return false
			}
			if it.Key == "" || len(live) <= 1 {
				return true
			}
			if now.Sub(it.EnqueuedAt) >= c.cfg.StealAge {
				return true
			}
			return affinityOwner(it.Key, live) == req.Node
		}
		slice := c.cfg.PollSlice
		if rem := time.Until(deadline); rem < slice {
			slice = rem
		}
		if slice <= 0 {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		sctx, cancel := context.WithTimeout(r.Context(), slice)
		l, err := c.q.ClaimWhere(sctx, accept)
		cancel()
		switch {
		case err == nil:
			c.respondClaim(w, req.Node, l)
			return
		case errors.Is(err, workqueue.ErrDrained):
			writeJSON(w, http.StatusOK, claimResponse{Drained: true})
			return
		case errors.Is(err, workqueue.ErrClosed):
			httpError(w, http.StatusServiceUnavailable, err.Error())
			return
		case r.Context().Err() != nil:
			// Client went away; the slice context aborted with it.
			return
		}
		// Slice expired: refresh liveness and try again within the budget.
	}
}

// respondClaim registers the wire lease and writes the claim response.
func (c *Coordinator) respondClaim(w http.ResponseWriter, node string, l *workqueue.Lease) {
	it := l.Item()
	digest, gen, err := c.currentModel()
	if err != nil {
		// Without an advertisable model the claim cannot proceed; return
		// the item for another attempt rather than stranding the lease.
		l.Nack(fmt.Errorf("cluster: model snapshot: %w", err))
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	c.svc.MarkStarted(it.Seq)
	c.leaseMu.Lock()
	c.leases[it.Seq] = &remoteLease{l: l, node: node, leasedAt: time.Now()}
	c.leaseMu.Unlock()
	c.nodesMu.Lock()
	if ns := c.nodes[node]; ns != nil {
		ns.claims++
	}
	c.nodesMu.Unlock()
	c.claims.Inc()

	resp := claimResponse{
		Seq:         it.Seq,
		Key:         it.Key,
		Payload:     it.Payload,
		Attempts:    it.Attempts,
		Token:       l.Token(),
		LeaseTTLMS:  c.q.LeaseTTL().Milliseconds(),
		ModelDigest: digest,
		Generation:  gen,
	}
	if dl := c.svc.ClaimDeadline(it); !dl.IsZero() {
		resp.DeadlineUnixNano = dl.UnixNano()
	}
	writeJSON(w, http.StatusOK, resp)
}

// takeLease resolves and removes the wire lease for (seq, token); nil
// when unknown or token-mismatched (reclaimed and possibly re-issued).
func (c *Coordinator) takeLease(seq int64, token uint64) *remoteLease {
	c.leaseMu.Lock()
	defer c.leaseMu.Unlock()
	rl := c.leases[seq]
	if rl == nil || rl.l.Token() != token {
		return nil
	}
	delete(c.leases, seq)
	return rl
}

// pruneLeases drops wire-lease entries whose queue lease has been
// reclaimed out from under the node (death mid-emulation). A re-issued
// claim overwrites its seq's entry anyway; pruning catches the tail —
// items dead-lettered or still pending — so the registry cannot leak.
func (c *Coordinator) pruneLeases() {
	c.leaseMu.Lock()
	defer c.leaseMu.Unlock()
	for seq, rl := range c.leases {
		if !rl.l.Valid() {
			delete(c.leases, seq)
			c.lost.Inc()
		}
	}
}

// handleHeartbeat is POST /v1/cluster/heartbeat: extend the lease one
// TTL. 410 tells the node its lease is gone and the vet must be
// abandoned. The 200 body carries the current model digest — a free
// generation-propagation signal mid-emulation.
func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req leaseRequest
	if !decodeBody(w, r, &req) {
		return
	}
	c.touch(req.Node)
	c.leaseMu.Lock()
	rl := c.leases[req.Seq]
	ok := rl != nil && rl.l.Token() == req.Token && rl.node == req.Node
	c.leaseMu.Unlock()
	if !ok {
		httpError(w, http.StatusGone, workqueue.ErrLeaseLost.Error())
		return
	}
	if err := rl.l.Heartbeat(); err != nil {
		c.leaseMu.Lock()
		delete(c.leases, req.Seq)
		c.leaseMu.Unlock()
		c.lost.Inc()
		httpError(w, http.StatusGone, err.Error())
		return
	}
	digest, _, _ := c.currentModel()
	writeJSON(w, http.StatusOK, heartbeatResponse{ModelDigest: digest})
}

// handleAck is POST /v1/cluster/ack: record the verdict (first-wins),
// then settle the lease. Record-before-ack mirrors the local lanes,
// where settleRecord runs in the claim body and the pool's Ack may fail
// afterwards: a verdict computed under a lost lease is still the right
// verdict for those bytes.
func (c *Coordinator) handleAck(w http.ResponseWriter, r *http.Request) {
	var req ackRequest
	if !decodeBody(w, r, &req) {
		return
	}
	c.touch(req.Node)
	vetErr := remoteError(req.Error, req.ErrorKind)
	recorded := c.svc.ReportRemote(req.Seq, req.Verdict, parseOutcome(req.Outcome), vetErr, time.Duration(req.WallNS))

	// A missing wire lease means the queue reclaimed it (and the prune or
	// reclaim path already counted the loss); only a loss discovered here
	// — the lease looked live but Ack found it gone — bumps the counter.
	leaseLost := true
	if rl := c.takeLease(req.Seq, req.Token); rl != nil {
		err := rl.l.Ack()
		leaseLost = errors.Is(err, workqueue.ErrLeaseLost)
		if leaseLost {
			c.lost.Inc()
		}
		c.observeLease(rl)
	}
	c.acks.Inc()
	if c.cfg.OnVerdict != nil {
		c.cfg.OnVerdict(RemoteVerdict{
			Node:        req.Node,
			Seq:         req.Seq,
			ModelDigest: req.ModelDigest,
			Verdict:     req.Verdict,
			Err:         req.Error,
			Recorded:    recorded,
		})
	}
	writeJSON(w, http.StatusOK, ackResponse{Recorded: recorded, LeaseLost: leaseLost})
}

// handleNack is POST /v1/cluster/nack: return the claim for another
// attempt (or dead-letter it when attempts are exhausted).
func (c *Coordinator) handleNack(w http.ResponseWriter, r *http.Request) {
	var req leaseRequest
	if !decodeBody(w, r, &req) {
		return
	}
	c.touch(req.Node)
	rl := c.takeLease(req.Seq, req.Token)
	if rl == nil {
		httpError(w, http.StatusGone, workqueue.ErrLeaseLost.Error())
		return
	}
	cause := fmt.Errorf("cluster: node %s: %s", req.Node, req.Cause)
	requeued, err := rl.l.Nack(cause)
	c.observeLease(rl)
	c.nacks.Inc()
	if errors.Is(err, workqueue.ErrLeaseLost) {
		c.lost.Inc()
		httpError(w, http.StatusGone, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, ackResponse{Requeued: requeued})
}

// observeLease books the settled lease's age into the node's
// distribution.
func (c *Coordinator) observeLease(rl *remoteLease) {
	c.nodesMu.Lock()
	ns := c.nodes[rl.node]
	c.nodesMu.Unlock()
	if ns != nil {
		ns.leaseAge.Observe(time.Since(rl.leasedAt).Seconds())
	}
}

// handleModel is GET /v1/model/{digest}: the content-addressed artifact
// bytes, from the in-memory snapshot window or the registry.
func (c *Coordinator) handleModel(w http.ResponseWriter, r *http.Request) {
	digest := r.PathValue("digest")
	c.modelMu.Lock()
	data := c.models[digest]
	c.modelMu.Unlock()
	if data == nil && c.cfg.Registry != nil {
		if b, err := c.cfg.Registry.ArtifactBytes(digest); err == nil {
			data = b
		}
	}
	if data == nil {
		httpError(w, http.StatusNotFound, "unknown model digest: "+digest)
		return
	}
	c.pulls.Inc()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(data)
}

// currentModel resolves the serving generation's artifact digest,
// snapshotting and memoizing by generation ID. Snapshotting (not the
// checker's recorded digest) is the source of truth: a generation
// trained in-process has no recorded digest, and a runtime band override
// (SetTriageBand) re-encodes into a new digest even though the recorded
// one wouldn't change — either way the advertised digest always matches
// exactly what the checker serves.
func (c *Coordinator) currentModel() (digest string, gen uint64, err error) {
	g := c.ck.Generation()
	c.modelMu.Lock()
	defer c.modelMu.Unlock()
	if c.modelDigest != "" && c.modelGen == g.ID {
		return c.modelDigest, g.ID, nil
	}
	a, err := modelstore.Snapshot(c.ck)
	if err != nil {
		return "", 0, err
	}
	data, err := a.Encode()
	if err != nil {
		return "", 0, err
	}
	sum := sha256.Sum256(data)
	dig := hex.EncodeToString(sum[:])
	c.modelGen, c.modelDigest = g.ID, dig
	if _, ok := c.models[dig]; !ok {
		c.models[dig] = data
		c.modelOrder = append(c.modelOrder, dig)
		for len(c.modelOrder) > modelWindow {
			delete(c.models, c.modelOrder[0])
			c.modelOrder = c.modelOrder[1:]
		}
	}
	return dig, g.ID, nil
}

// decodeBody decodes a JSON request body, answering 400 on failure.
func decodeBody(w http.ResponseWriter, r *http.Request, into any) bool {
	if err := json.NewDecoder(r.Body).Decode(into); err != nil {
		httpError(w, http.StatusBadRequest, "decoding request body: "+err.Error())
		return false
	}
	return true
}

// httpError writes a JSON error envelope.
func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

// writeJSON writes one JSON response.
func writeJSON(w http.ResponseWriter, code int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(body)
}
