// Package cluster is the multi-node half of the vet-cluster protocol:
// the network layer that turns the in-process queue/claim/execute
// decomposition (internal/workqueue + internal/worker) into the fleet
// the paper actually operates — one coordinator owning the durable
// submission queue, N worker nodes claiming work over HTTP, and lease
// heartbeats making node death just another reclaim (the
// taskcluster-worker shape).
//
// The wire protocol is four POSTs plus one GET, mounted on the
// coordinator's gateway mux:
//
//   - POST /v1/cluster/claim — long-poll for the lowest-seq pending
//     submission this node may take (digest-affinity routing: repeat
//     submissions land on the node whose verdict cache already holds
//     them). The response carries the raw archive bytes, the lease
//     token + TTL, and the coordinator's current model digest.
//   - POST /v1/cluster/heartbeat — extend the lease mid-emulation;
//     410 means the lease was reclaimed and the node must abandon the
//     vet (workqueue.ErrLeaseLost semantics, over the wire).
//   - POST /v1/cluster/ack — report the verdict. The coordinator
//     settles the first-wins verdict record before settling the lease,
//     exactly like a local lane: a verdict computed under a lost lease
//     is still correct (content determinism) and is absorbed by
//     first-wins, never double-booked.
//   - POST /v1/cluster/nack — return the claim for another attempt
//     (node shutting down, model pull failed).
//   - GET /v1/model/{digest} — the encoded APKMODEL artifact, content-
//     addressed, so a stale node hot-swaps to the advertised generation
//     before vetting. No node ever serves a stale generation.
//
// Bit-identity discipline: verdicts derive from submission content
// alone, the coordinator pins sequence numbers at admission, and the
// first-wins record absorbs at-least-once delivery — so N remote nodes
// produce exactly the verdict set one serial Vet loop would.
package cluster

import (
	"context"
	"errors"
	"fmt"

	"apichecker/internal/core"
	"apichecker/internal/vcache"
)

// Wire paths. PathModel is a prefix; the digest is the final segment.
const (
	PathClaim     = "/v1/cluster/claim"
	PathHeartbeat = "/v1/cluster/heartbeat"
	PathAck       = "/v1/cluster/ack"
	PathNack      = "/v1/cluster/nack"
	PathModel     = "/v1/model/"
)

// claimRequest asks for one unit of work.
type claimRequest struct {
	// Node is the worker node's stable name — its affinity and liveness
	// identity. Required.
	Node string `json:"node"`
	// WaitMS is the long-poll budget in milliseconds; the coordinator
	// answers 204 when nothing became claimable within it (capped by the
	// coordinator's MaxPoll).
	WaitMS int64 `json:"wait_ms"`
}

// claimResponse is one leased submission (or the drained signal).
type claimResponse struct {
	// Drained reports that the coordinator's queue has settled everything
	// and will never hand out work again; lanes exit.
	Drained bool `json:"drained,omitempty"`

	Seq      int64  `json:"seq"`
	Key      string `json:"key,omitempty"` // content digest
	Payload  []byte `json:"payload"`       // raw archive bytes (base64 on the wire)
	Attempts int    `json:"attempts"`

	// Token is the lease token; every heartbeat/ack/nack must echo it.
	Token uint64 `json:"token"`
	// LeaseTTLMS is the lease TTL in milliseconds (0: never expires).
	LeaseTTLMS int64 `json:"lease_ttl_ms"`
	// DeadlineUnixNano is the submission's absolute vet deadline
	// (0: unbounded).
	DeadlineUnixNano int64 `json:"deadline_unix_nano,omitempty"`

	// ModelDigest is the coordinator's current serving generation — the
	// artifact the node must be running before it vets this claim.
	ModelDigest string `json:"model_digest"`
	// Generation is the coordinator's generation swap counter (logging
	// aid; verdict identity rides the digest).
	Generation uint64 `json:"generation"`
}

// leaseRequest is the heartbeat/nack body.
type leaseRequest struct {
	Node  string `json:"node"`
	Seq   int64  `json:"seq"`
	Token uint64 `json:"token"`
	// Cause is the nack reason (nack only).
	Cause string `json:"cause,omitempty"`
}

// heartbeatResponse acknowledges a live lease and rides the current
// model digest along — a free propagation signal mid-emulation.
type heartbeatResponse struct {
	ModelDigest string `json:"model_digest"`
}

// ackRequest reports one completed vet.
type ackRequest struct {
	Node  string `json:"node"`
	Seq   int64  `json:"seq"`
	Token uint64 `json:"token"`

	// ModelDigest is the generation the node vetted under — the
	// propagation audit trail.
	ModelDigest string `json:"model_digest"`

	// Outcome is how the node's verdict cache served the vet
	// (bypass|miss|hit|coalesced).
	Outcome string `json:"outcome"`
	// WallNS is the node-side wall-clock vet cost in nanoseconds.
	WallNS int64 `json:"wall_ns"`

	// Verdict is the result (nil when the vet failed).
	Verdict *core.Verdict `json:"verdict,omitempty"`
	// Error and ErrorKind report a failed vet; ErrorKind "deadline" maps
	// back to core.ErrDeadlineExceeded so coordinator-side accounting and
	// gateway status codes survive the wire.
	Error     string `json:"error,omitempty"`
	ErrorKind string `json:"error_kind,omitempty"`
}

// ackResponse reports what the coordinator did with the report.
type ackResponse struct {
	// Recorded: this report settled the verdict record (first-wins).
	Recorded bool `json:"recorded"`
	// LeaseLost: the lease had already been reclaimed; the record (if
	// Recorded) was settled anyway — the verdict is correct regardless of
	// who held the lease.
	LeaseLost bool `json:"lease_lost,omitempty"`
	// Requeued (nack only): the item went back for another attempt.
	Requeued bool `json:"requeued,omitempty"`
}

// errorKind classifies a vet error for the wire.
func errorKind(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, core.ErrDeadlineExceeded) || errors.Is(err, context.DeadlineExceeded):
		return "deadline"
	default:
		return ""
	}
}

// parseOutcome maps the wire outcome back to the vcache enum; unknown
// strings read as bypass (the conservative bucket).
func parseOutcome(s string) vcache.Outcome {
	switch s {
	case "miss":
		return vcache.OutcomeMiss
	case "hit":
		return vcache.OutcomeHit
	case "coalesced":
		return vcache.OutcomeCoalesced
	default:
		return vcache.OutcomeBypass
	}
}

// remoteError reconstructs a typed error from the wire form.
func remoteError(msg, kind string) error {
	if msg == "" {
		return nil
	}
	if kind == "deadline" {
		return fmt.Errorf("%s: %w", msg, core.ErrDeadlineExceeded)
	}
	return fmt.Errorf("cluster: remote vet: %s", msg)
}
