package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"apichecker/internal/core"
	"apichecker/internal/lifecycle"
	"apichecker/internal/modelstore"
	"apichecker/internal/workqueue"
)

// WorkerConfig tunes one worker node.
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL (http://host:port).
	// Required.
	Coordinator string

	// Node is this node's stable name — its affinity and liveness
	// identity across the fleet. Required, and must be unique per node.
	Node string

	// Lanes is the concurrent claim-loop count; <= 0 selects 4.
	Lanes int

	// PollWait is the long-poll budget sent with each claim request;
	// <= 0 selects 10s.
	PollWait time.Duration

	// HeartbeatEvery tunes the mid-vet lease heartbeat: 0 derives it from
	// the claim's lease TTL (TTL/3), positive sets the period, negative
	// disables heartbeats (lease-expiry drills).
	HeartbeatEvery time.Duration

	// Client is the HTTP client; nil builds one with no overall timeout
	// (claim requests long-poll; the per-request context bounds them).
	Client *http.Client

	// Configure, when set, overrides the artifact's deployment config at
	// node cold-start (e.g. disable the local verdict cache). Later
	// generation swaps keep the node-local overrides: SwapModel preserves
	// the running config except the artifact-carried triage band.
	Configure func(core.Config) core.Config

	// OnVet, when set, observes every completed vet before it is acked.
	OnVet func(seq int64, v *core.Verdict, err error)
}

// WorkerStats is a point-in-time activity snapshot for one node.
type WorkerStats struct {
	Claims     uint64 // claims taken
	Verdicts   uint64 // vets completed and reported
	Nacks      uint64 // claims returned (model failure, shutdown)
	LeaseLost  uint64 // vets abandoned mid-emulation (heartbeat got 410)
	ModelPulls uint64 // artifacts fetched over the wire
	ModelSwaps uint64 // hot-swaps adopted after cold-start
}

// Worker is one running worker node: Lanes concurrent claim loops over
// the coordinator's wire protocol, each running the full local vet
// pipeline on a checker cold-started (and hot-swapped) from the
// coordinator's advertised model generation. Construct with StartWorker;
// Stop cancels the lanes, Wait blocks until they exit (coordinator
// drained or stopped).
type Worker struct {
	cfg    WorkerConfig
	client *http.Client

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	done   chan struct{}

	// modelMu serializes model management: the first lane to see a new
	// digest pulls and swaps while the others wait, so no lane ever vets
	// on a stale generation once a claim advertised a newer one.
	modelMu sync.Mutex
	ck      *core.Checker
	digest  string

	claims, verdicts, nacks, leaseLost, pulls, swaps atomic.Uint64
}

// StartWorker launches a worker node and returns immediately; lanes run
// until Stop, a fatal configuration error, or the coordinator reports
// its queue drained.
func StartWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.Coordinator == "" {
		return nil, fmt.Errorf("cluster: worker requires a coordinator URL")
	}
	if cfg.Node == "" {
		return nil, fmt.Errorf("cluster: worker requires a node name")
	}
	if cfg.Lanes <= 0 {
		cfg.Lanes = 4
	}
	if cfg.PollWait <= 0 {
		cfg.PollWait = 10 * time.Second
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	w := &Worker{
		cfg:    cfg,
		client: client,
		done:   make(chan struct{}),
	}
	w.ctx, w.cancel = context.WithCancel(context.Background())
	w.wg.Add(cfg.Lanes)
	for i := 0; i < cfg.Lanes; i++ {
		go w.lane()
	}
	go func() {
		w.wg.Wait()
		close(w.done)
	}()
	return w, nil
}

// Stop cancels the lanes and waits for them to exit. In-flight vets are
// cancelled at the next emulation boundary and their claims nacked back
// to the coordinator for prompt re-issue (a SIGKILL skips the nack; the
// lease TTL reclaims instead).
func (w *Worker) Stop() {
	w.cancel()
	w.wg.Wait()
}

// Wait blocks until every lane has exited (Stop, or the coordinator
// drained).
func (w *Worker) Wait() { <-w.done }

// Done is closed when every lane has exited.
func (w *Worker) Done() <-chan struct{} { return w.done }

// Stats snapshots node activity.
func (w *Worker) Stats() WorkerStats {
	return WorkerStats{
		Claims:     w.claims.Load(),
		Verdicts:   w.verdicts.Load(),
		Nacks:      w.nacks.Load(),
		LeaseLost:  w.leaseLost.Load(),
		ModelPulls: w.pulls.Load(),
		ModelSwaps: w.swaps.Load(),
	}
}

// Checker returns the node's serving checker (nil before the first
// claim cold-starts it).
func (w *Worker) Checker() *core.Checker {
	w.modelMu.Lock()
	defer w.modelMu.Unlock()
	return w.ck
}

// ModelDigest returns the generation digest the node currently serves
// ("" before cold-start).
func (w *Worker) ModelDigest() string {
	w.modelMu.Lock()
	defer w.modelMu.Unlock()
	return w.digest
}

// lane is one claim loop: claim → ensure model → vet → report.
func (w *Worker) lane() {
	defer w.wg.Done()
	for w.ctx.Err() == nil {
		cl, err := w.claim()
		if err != nil {
			if w.ctx.Err() != nil {
				return
			}
			// Transient coordinator trouble (restart, network): back off
			// and re-poll rather than dying.
			select {
			case <-time.After(200 * time.Millisecond):
			case <-w.ctx.Done():
				return
			}
			continue
		}
		if cl == nil {
			continue // poll budget expired empty-handed
		}
		if cl.Drained {
			return
		}
		w.claims.Add(1)
		ck, err := w.ensureModel(cl.ModelDigest)
		if err != nil {
			w.nack(cl, fmt.Sprintf("model %.12s: %v", cl.ModelDigest, err))
			continue
		}
		w.execute(ck, cl)
	}
}

// execute runs one claimed submission through the local vet pipeline,
// heartbeating during emulation; lease loss cancels the vet context with
// cause workqueue.ErrLeaseLost, mirroring the in-process worker pool.
func (w *Worker) execute(ck *core.Checker, cl *claimResponse) {
	vctx, vcancel := context.WithCancelCause(w.ctx)
	defer vcancel(nil)
	jctx := context.Context(vctx)
	if cl.DeadlineUnixNano > 0 {
		dctx, dcancel := context.WithDeadline(jctx, time.Unix(0, cl.DeadlineUnixNano))
		defer dcancel()
		jctx = dctx
	}
	hb := w.cfg.HeartbeatEvery
	if hb == 0 && cl.LeaseTTLMS > 0 {
		hb = time.Duration(cl.LeaseTTLMS) * time.Millisecond / 3
	}
	stopHB := func() {}
	if hb > 0 {
		stopHB = w.startHeartbeat(cl, vcancel, hb)
	}

	sub := core.Submission{Raw: cl.Payload, Seq: cl.Seq, Digest: cl.Key}
	t0 := time.Now()
	v, out, err := ck.VetOutcome(jctx, sub)
	wall := time.Since(t0)
	stopHB()

	if err != nil && errors.Is(err, context.Canceled) {
		if errors.Is(context.Cause(vctx), workqueue.ErrLeaseLost) {
			// Reclaimed mid-vet: the re-issued claim (on another node)
			// reports the verdict; this half is abandoned unreported.
			w.leaseLost.Add(1)
			return
		}
		if w.ctx.Err() != nil {
			// Node shutdown: hand the claim back for prompt re-issue.
			w.nack(cl, "worker stopping")
			return
		}
	}
	w.verdicts.Add(1)
	if w.cfg.OnVet != nil {
		w.cfg.OnVet(cl.Seq, v, err)
	}
	w.ack(cl, v, out.String(), err, wall)
}

// startHeartbeat extends the lease every period until stopped; a 410
// from the coordinator cancels the vet with cause ErrLeaseLost.
// Transport errors do not cancel — a transient partition must not kill a
// healthy emulation; if the lease really expired, the next beat's 410 or
// the ack's first-wins absorption handles it.
func (w *Worker) startHeartbeat(cl *claimResponse, cancel context.CancelCauseFunc, every time.Duration) func() {
	stop := make(chan struct{})
	go func() {
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-w.ctx.Done():
				return
			case <-t.C:
				lost, err := w.heartbeat(cl)
				if err == nil && lost {
					cancel(workqueue.ErrLeaseLost)
					return
				}
			}
		}
	}()
	return func() { close(stop) }
}

// claim long-polls the coordinator for work; (nil, nil) means the poll
// came back empty (204).
func (w *Worker) claim() (*claimResponse, error) {
	body := claimRequest{Node: w.cfg.Node, WaitMS: w.cfg.PollWait.Milliseconds()}
	// The request context allows one extra PollWait beyond the server's
	// budget so a healthy long-poll is never cut off by the client side.
	ctx, cancel := context.WithTimeout(w.ctx, 2*w.cfg.PollWait+5*time.Second)
	defer cancel()
	resp, err := w.post(ctx, PathClaim, body)
	if err != nil {
		return nil, err
	}
	defer drainClose(resp)
	switch resp.StatusCode {
	case http.StatusOK:
		var cl claimResponse
		if err := json.NewDecoder(resp.Body).Decode(&cl); err != nil {
			return nil, fmt.Errorf("cluster: decoding claim: %w", err)
		}
		return &cl, nil
	case http.StatusNoContent:
		return nil, nil
	default:
		return nil, httpStatusError("claim", resp)
	}
}

// heartbeat reports (lost, transport error).
func (w *Worker) heartbeat(cl *claimResponse) (bool, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	resp, err := w.post(ctx, PathHeartbeat, leaseRequest{Node: w.cfg.Node, Seq: cl.Seq, Token: cl.Token})
	if err != nil {
		return false, err
	}
	defer drainClose(resp)
	switch resp.StatusCode {
	case http.StatusOK:
		return false, nil
	case http.StatusGone:
		return true, nil
	default:
		return false, httpStatusError("heartbeat", resp)
	}
}

// ack reports one vet result. Failures are logged into the nack counter
// only implicitly: a lost ack is absorbed upstream by the lease TTL and
// first-wins recording, so there is nothing useful to retry here.
func (w *Worker) ack(cl *claimResponse, v *core.Verdict, outcome string, vetErr error, wall time.Duration) {
	req := ackRequest{
		Node:        w.cfg.Node,
		Seq:         cl.Seq,
		Token:       cl.Token,
		ModelDigest: cl.ModelDigest,
		Outcome:     outcome,
		WallNS:      wall.Nanoseconds(),
		Verdict:     v,
	}
	if vetErr != nil {
		req.Error, req.ErrorKind = vetErr.Error(), errorKind(vetErr)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if resp, err := w.post(ctx, PathAck, req); err == nil {
		drainClose(resp)
	}
}

// nack returns a claim for another attempt.
func (w *Worker) nack(cl *claimResponse, cause string) {
	w.nacks.Add(1)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if resp, err := w.post(ctx, PathNack, leaseRequest{Node: w.cfg.Node, Seq: cl.Seq, Token: cl.Token, Cause: cause}); err == nil {
		drainClose(resp)
	}
}

// ensureModel returns a checker serving exactly digest, pulling and
// adopting the artifact when the node is stale. Serialized: during a
// generation swap every lane converges before any of them vets — no node
// ever serves a stale generation.
func (w *Worker) ensureModel(digest string) (*core.Checker, error) {
	w.modelMu.Lock()
	defer w.modelMu.Unlock()
	if w.ck != nil && w.digest == digest {
		return w.ck, nil
	}
	data, err := w.fetchModel(digest)
	if err != nil {
		return nil, err
	}
	a, err := modelstore.Decode(data)
	if err != nil {
		return nil, err
	}
	if got, err := a.Digest(); err != nil {
		return nil, err
	} else if got != digest {
		return nil, fmt.Errorf("cluster: model integrity: got %.12s want %.12s", got, digest)
	}
	if w.ck == nil {
		cfg := a.Cfg
		if w.cfg.Configure != nil {
			cfg = w.cfg.Configure(cfg)
		}
		parts, err := a.Parts()
		if err != nil {
			return nil, err
		}
		ck, err := core.NewFromParts(parts, cfg)
		if err != nil {
			return nil, err
		}
		w.ck = ck
	} else {
		if _, err := lifecycle.AdoptArtifact(w.ck, a); err != nil {
			return nil, err
		}
		w.swaps.Add(1)
	}
	w.digest = digest
	return w.ck, nil
}

// fetchModel pulls an artifact's bytes by digest.
func (w *Worker) fetchModel(digest string) ([]byte, error) {
	ctx, cancel := context.WithTimeout(w.ctx, time.Minute)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.cfg.Coordinator+PathModel+digest, nil)
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	resp, err := w.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("cluster: fetching model: %w", err)
	}
	defer drainClose(resp)
	if resp.StatusCode != http.StatusOK {
		return nil, httpStatusError("model fetch", resp)
	}
	w.pulls.Add(1)
	return io.ReadAll(resp.Body)
}

// post sends one JSON request.
func (w *Worker) post(ctx context.Context, path string, body any) (*http.Response, error) {
	data, err := json.Marshal(body)
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.cfg.Coordinator+path, bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("cluster: %s: %w", path, err)
	}
	return resp, nil
}

// httpStatusError turns a non-2xx response into an error carrying the
// body's error envelope (truncated).
func httpStatusError(op string, resp *http.Response) error {
	b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	return fmt.Errorf("cluster: %s: %s: %s", op, resp.Status, bytes.TrimSpace(b))
}

// drainClose releases a response so the connection can be reused.
func drainClose(resp *http.Response) {
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}
