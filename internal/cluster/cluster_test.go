// Tests live in an external package so they can stand up the real
// gateway (gateway imports cluster's coordinator through its Config;
// cluster must never import gateway).
package cluster_test

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"apichecker/internal/apk"
	"apichecker/internal/cluster"
	"apichecker/internal/core"
	"apichecker/internal/dataset"
	"apichecker/internal/framework"
	"apichecker/internal/gateway"
	"apichecker/internal/modelstore"
	"apichecker/internal/vetsvc"
)

var testU = framework.MustGenerate(framework.TestConfig(3000))

// trainedArtifact trains one checker and snapshots it; every stack in a
// test (serial baseline, coordinator, worker nodes) instantiates from
// this single artifact so model content — and therefore verdicts — are
// identical by construction.
func trainedArtifact(t *testing.T) (*modelstore.Artifact, *dataset.Corpus) {
	t.Helper()
	cfg := dataset.DefaultConfig()
	cfg.NumApps = 400
	corpus, err := dataset.Generate(testU, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ck, _, err := core.TrainFromCorpus(corpus, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	a, err := modelstore.Snapshot(ck)
	if err != nil {
		t.Fatal(err)
	}
	return a, corpus
}

// instantiate builds a fresh checker from the artifact under cfg
// (generation 1, exactly like a worker node's cold start).
func instantiate(t *testing.T, a *modelstore.Artifact, cfg core.Config) *core.Checker {
	t.Helper()
	parts, err := a.Parts()
	if err != nil {
		t.Fatal(err)
	}
	ck, err := core.NewFromParts(parts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ck
}

// rawSubs builds n raw-APK submissions (with duplicates when n exceeds
// distinct) — the only payload shape that can travel to remote nodes.
func rawSubs(t *testing.T, corpus *dataset.Corpus, distinct, n int) []core.Submission {
	t.Helper()
	raws := make([][]byte, distinct)
	for i := range raws {
		var err error
		raws[i], err = apk.Build(corpus.Program(i), testU)
		if err != nil {
			t.Fatal(err)
		}
	}
	subs := make([]core.Submission, n)
	for i := range subs {
		subs[i] = core.Submission{Raw: raws[i%distinct]}
	}
	return subs
}

// clusterStack is one running coordinator + N worker nodes over an
// httptest server.
type clusterStack struct {
	svc     *vetsvc.Service
	coord   *cluster.Coordinator
	ts      *httptest.Server
	workers []*cluster.Worker
}

func startStack(t *testing.T, svc *vetsvc.Service, ccfg cluster.CoordinatorConfig, nodes int, wcfg cluster.WorkerConfig) *clusterStack {
	t.Helper()
	if ccfg.PollSlice == 0 {
		ccfg.PollSlice = 10 * time.Millisecond
	}
	if ccfg.StealAge == 0 {
		ccfg.StealAge = 150 * time.Millisecond
	}
	coord := cluster.NewCoordinator(svc, ccfg)
	mux := http.NewServeMux()
	coord.Mount(mux)
	ts := httptest.NewServer(mux)
	st := &clusterStack{svc: svc, coord: coord, ts: ts}
	for i := 0; i < nodes; i++ {
		cfg := wcfg
		cfg.Coordinator = ts.URL
		cfg.Node = fmt.Sprintf("node-%d", i)
		if cfg.Lanes == 0 {
			cfg.Lanes = 2
		}
		if cfg.PollWait == 0 {
			cfg.PollWait = 250 * time.Millisecond
		}
		w, err := cluster.StartWorker(cfg)
		if err != nil {
			t.Fatal(err)
		}
		st.workers = append(st.workers, w)
	}
	t.Cleanup(st.stop)
	return st
}

// stop tears the stack down: workers first (their in-flight polls abort
// with the worker context), then the service, then the listener.
func (st *clusterStack) stop() {
	for _, w := range st.workers {
		w.Stop()
	}
	st.svc.Close()
	st.ts.Close()
}

// artifactDigest replicates the coordinator's advertised digest: sha256
// over the deterministic encoding of a snapshot of the serving checker.
func artifactDigest(t *testing.T, ck *core.Checker) string {
	t.Helper()
	a, err := modelstore.Snapshot(ck)
	if err != nil {
		t.Fatal(err)
	}
	data, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// TestClusterMatchesSerialVet is the acceptance contract: N remote
// worker nodes claiming over the wire produce verdicts bit-identical to
// one serial Vet loop, across the cache × triage deployment matrix.
func TestClusterMatchesSerialVet(t *testing.T) {
	base, corpus := trainedArtifact(t)
	const distinct, total, nodes = 18, 36, 3

	for _, tc := range []struct {
		name   string
		cache  bool
		triage bool
	}{
		{"cache-on/triage-off", true, false},
		{"cache-off/triage-off", false, false},
		{"cache-on/triage-on", true, true},
		{"cache-off/triage-on", false, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			// One deployment config for every checker in this case; the
			// band travels inside the artifact the coordinator advertises,
			// the cache knob through the worker's Configure hook.
			cfg := base.Cfg
			if !tc.cache {
				cfg.VerdictCache = -1
			}
			if tc.triage {
				cfg.TriageLo, cfg.TriageHi = 0.05, 0.95
			} else {
				cfg.TriageLo, cfg.TriageHi = 0, 0
			}

			subs := rawSubs(t, corpus, distinct, total)
			ckSerial := instantiate(t, base, cfg)
			serial := make([]*core.Verdict, len(subs))
			for i, sub := range subs {
				v, err := ckSerial.Vet(context.Background(), sub)
				if err != nil {
					t.Fatal(err)
				}
				serial[i] = v
			}

			ckCoord := instantiate(t, base, cfg)
			svc, err := vetsvc.Open(ckCoord, vetsvc.Config{
				QueueSize:         total,
				DisableLocalLanes: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			cache := tc.cache
			startStack(t, svc, cluster.CoordinatorConfig{}, nodes, cluster.WorkerConfig{
				Configure: func(c core.Config) core.Config {
					if !cache {
						c.VerdictCache = -1
					}
					return c
				},
			})

			got, err := svc.VetBatch(context.Background(), subs)
			if err != nil {
				t.Fatal(err)
			}
			for i := range serial {
				if *got[i] != *serial[i] {
					t.Fatalf("%s: submission %d: cluster %+v vs serial %+v",
						tc.name, i, *got[i], *serial[i])
				}
			}
		})
	}
}

// zombieClaim takes one claim over the wire as a node that will never
// heartbeat, ack, or nack — a worker killed mid-emulation.
func zombieClaim(t *testing.T, baseURL string) (seq int64) {
	t.Helper()
	body, _ := json.Marshal(map[string]any{"node": "zombie", "wait_ms": 2000})
	resp, err := http.Post(baseURL+cluster.PathClaim, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("zombie claim: status %d", resp.StatusCode)
	}
	var cl struct {
		Seq     int64  `json:"seq"`
		Token   uint64 `json:"token"`
		Payload []byte `json:"payload"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&cl); err != nil {
		t.Fatal(err)
	}
	if len(cl.Payload) == 0 {
		t.Fatal("zombie claim carried no payload")
	}
	return cl.Seq
}

// TestClusterReclaimsDeadNode kills a node holding a lease mid-emulation
// (a wire claim that never heartbeats again): the lease expires, the
// queue re-issues the submission to a live node, and the verdict lands
// exactly once, bit-identical to serial — the at-least-once lease plus
// first-wins record contract, over the wire.
func TestClusterReclaimsDeadNode(t *testing.T) {
	base, corpus := trainedArtifact(t)
	const total = 8
	cfg := base.Cfg
	subs := rawSubs(t, corpus, total, total)

	ckSerial := instantiate(t, base, cfg)
	serial := make([]*core.Verdict, len(subs))
	for i, sub := range subs {
		v, err := ckSerial.Vet(context.Background(), sub)
		if err != nil {
			t.Fatal(err)
		}
		serial[i] = v
	}

	ckCoord := instantiate(t, base, cfg)
	svc, err := vetsvc.Open(ckCoord, vetsvc.Config{
		QueueSize:         total,
		LeaseTTL:          300 * time.Millisecond,
		DisableLocalLanes: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	var (
		mu       sync.Mutex
		recorded = map[int64]int{}
	)
	ccfg := cluster.CoordinatorConfig{
		NodeTTL:  time.Second,
		StealAge: 100 * time.Millisecond,
		OnVerdict: func(rv cluster.RemoteVerdict) {
			if rv.Recorded {
				mu.Lock()
				recorded[rv.Seq]++
				mu.Unlock()
			}
		},
	}

	// Bring up the coordinator with zero real workers, let the zombie
	// claim the first submission, then start the live fleet.
	st := startStack(t, svc, ccfg, 0, cluster.WorkerConfig{})
	tickets := make([]*vetsvc.Ticket, len(subs))
	for i, sub := range subs {
		tk, err := svc.Submit(context.Background(), sub)
		if err != nil {
			t.Fatal(err)
		}
		tickets[i] = tk
	}
	deadSeq := zombieClaim(t, st.ts.URL)

	wcfg := cluster.WorkerConfig{Coordinator: st.ts.URL, Node: "live-0", Lanes: 2, PollWait: 250 * time.Millisecond}
	w, err := cluster.StartWorker(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	st.workers = append(st.workers, w)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i, tk := range tickets {
		v, err := tk.Wait(ctx)
		if err != nil {
			t.Fatalf("submission %d (seq %d): %v", i, tk.Seq(), err)
		}
		if *v != *serial[i] {
			t.Fatalf("submission %d: cluster %+v vs serial %+v", i, *v, *serial[i])
		}
	}

	if qs := svc.QueueStats(); qs.Reclaimed == 0 {
		t.Fatal("dead node's lease was never reclaimed")
	}
	mu.Lock()
	defer mu.Unlock()
	if n := recorded[deadSeq]; n != 1 {
		t.Fatalf("dead node's submission recorded %d times, want exactly 1", n)
	}
	for seq, n := range recorded {
		if n != 1 {
			t.Fatalf("seq %d recorded %d times, want exactly 1", seq, n)
		}
	}
}

// TestClusterModelPropagation promotes a new model generation mid-run
// and verifies every subsequent verdict, from every node, was vetted
// under — and reports — the new generation's digest.
func TestClusterModelPropagation(t *testing.T) {
	base, corpus := trainedArtifact(t)
	cfg := base.Cfg
	ckCoord := instantiate(t, base, cfg)
	oldDigest := artifactDigest(t, ckCoord)

	svc, err := vetsvc.Open(ckCoord, vetsvc.Config{QueueSize: 32, DisableLocalLanes: true})
	if err != nil {
		t.Fatal(err)
	}
	var (
		mu      sync.Mutex
		reports []cluster.RemoteVerdict
	)
	ccfg := cluster.CoordinatorConfig{OnVerdict: func(rv cluster.RemoteVerdict) {
		mu.Lock()
		reports = append(reports, rv)
		mu.Unlock()
	}}
	st := startStack(t, svc, ccfg, 3, cluster.WorkerConfig{})

	subs := rawSubs(t, corpus, 20, 20)
	if _, err := svc.VetBatch(context.Background(), subs[:10]); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	firstWave := len(reports)
	for _, rv := range reports {
		if rv.ModelDigest != oldDigest {
			t.Fatalf("pre-promotion verdict from %s under digest %.12s, want %.12s",
				rv.Node, rv.ModelDigest, oldDigest)
		}
	}
	mu.Unlock()

	// Promote: a band change is a model swap in this system (it reshapes
	// verdicts), advancing the generation and re-encoding the artifact
	// under a new content digest.
	if _, err := ckCoord.SetTriageBand(0.05, 0.95); err != nil {
		t.Fatal(err)
	}
	newDigest := artifactDigest(t, ckCoord)
	if newDigest == oldDigest {
		t.Fatal("promotion did not change the artifact digest")
	}

	if _, err := svc.VetBatch(context.Background(), subs[10:]); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(reports) <= firstWave {
		t.Fatal("no post-promotion verdicts landed")
	}
	for _, rv := range reports[firstWave:] {
		if rv.ModelDigest != newDigest {
			t.Fatalf("post-promotion verdict from %s under digest %.12s, want %.12s",
				rv.Node, rv.ModelDigest, newDigest)
		}
	}
	swaps := uint64(0)
	for _, w := range st.workers {
		swaps += w.Stats().ModelSwaps
		if d := w.ModelDigest(); d != "" && d != newDigest {
			t.Fatalf("node still serving digest %.12s after promotion", d)
		}
	}
	if swaps == 0 {
		t.Fatal("no node hot-swapped to the promoted generation")
	}
}

// TestHealthzClusterFields verifies the extended /healthz surface: queue
// depth, in-flight leases, and the live worker-node count.
func TestHealthzClusterFields(t *testing.T) {
	base, corpus := trainedArtifact(t)
	ckCoord := instantiate(t, base, base.Cfg)
	svc, err := vetsvc.Open(ckCoord, vetsvc.Config{QueueSize: 8, DisableLocalLanes: true})
	if err != nil {
		t.Fatal(err)
	}
	// The queued submissions are never vetted (no worker fleet here), so
	// a full Close would wait forever for the drain; bound it instead.
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		svc.Drain(ctx)
	}()
	coord := cluster.NewCoordinator(svc, cluster.CoordinatorConfig{PollSlice: 10 * time.Millisecond})
	gw := gateway.New(svc, gateway.Config{Cluster: coord})
	ts := httptest.NewServer(gw)
	defer ts.Close()

	subs := rawSubs(t, corpus, 3, 3)
	for _, sub := range subs {
		if _, err := svc.Submit(context.Background(), sub); err != nil {
			t.Fatal(err)
		}
	}

	readHealth := func() map[string]any {
		t.Helper()
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return body
	}

	h := readHealth()
	if got := h["queue_depth"]; got != float64(3) {
		t.Fatalf("queue_depth = %v, want 3", got)
	}
	if got := h["leases"]; got != float64(0) {
		t.Fatalf("leases = %v, want 0", got)
	}
	if got := h["nodes"]; got != float64(0) {
		t.Fatalf("nodes = %v, want 0", got)
	}

	// One wire claim: the claiming node is live and holds one lease.
	zombieClaim(t, ts.URL)
	h = readHealth()
	if got := h["queue_depth"]; got != float64(2) {
		t.Fatalf("after claim: queue_depth = %v, want 2", got)
	}
	if got := h["leases"]; got != float64(1) {
		t.Fatalf("after claim: leases = %v, want 1", got)
	}
	if got := h["nodes"]; got != float64(1) {
		t.Fatalf("after claim: nodes = %v, want 1", got)
	}
}
