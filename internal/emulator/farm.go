package emulator

import (
	"context"
	"fmt"
	"time"

	"apichecker/internal/behavior"
	"apichecker/internal/monkey"
	"apichecker/internal/parallel"
)

// Farm models the production deployment unit (§4.2, §5.1): one commodity
// x86 server (5×4-core Xeon) running Lanes emulator instances concurrently
// (16 in production; the remaining 4 cores schedule, monitor and log).
//
// The farm is also the serving path's lane gate: RunContext takes a free
// lane slot for the duration of one emulation and is guaranteed to return
// it — including when the bounding context is cancelled mid-run — so a
// pipeline abandoning a vet can never leak an emulator.
type Farm struct {
	emu   *Emulator
	lanes int

	// slots carries one token per free lane; RunContext takes one per
	// emulation and always returns it.
	slots chan struct{}
}

// ProductionLanes is the deployed per-server emulator count.
const ProductionLanes = 16

// NewFarm builds a farm over an emulator with the given parallel lanes.
func NewFarm(e *Emulator, lanes int) (*Farm, error) {
	if lanes <= 0 {
		return nil, fmt.Errorf("emulator: farm lanes %d must be positive", lanes)
	}
	f := &Farm{emu: e, lanes: lanes, slots: make(chan struct{}, lanes)}
	for i := 0; i < lanes; i++ {
		f.slots <- struct{}{}
	}
	return f, nil
}

// Lanes returns the farm's emulator-slot count.
func (f *Farm) Lanes() int { return f.lanes }

// FreeLanes returns how many lanes are idle right now.
func (f *Farm) FreeLanes() int { return len(f.slots) }

// Emulator returns the engine the lanes run.
func (f *Farm) Emulator() *Emulator { return f.emu }

// RunContext emulates one program on a farm lane: it blocks for a free
// slot (or the context's end), runs, and returns the slot whatever
// happened — completion, crash fallback, or mid-run cancellation. A run
// that completes is bit-identical to Emulator.Run: the slot gate consumes
// no randomness. A free slot is taken even when the context has already
// expired, so the error surfaced for a pre-expired context is the
// engine's own abort (identical to the ungated path).
func (f *Farm) RunContext(ctx context.Context, p *behavior.Program, mk monkey.Config) (*Result, error) {
	select {
	case <-f.slots:
	default:
		select {
		case <-f.slots:
		case <-ctx.Done():
			return nil, fmt.Errorf("emulator: %s: lane wait aborted: %w", p.PackageName, ctx.Err())
		}
	}
	defer func() { f.slots <- struct{}{} }()
	return f.emu.RunContext(ctx, p, mk)
}

// FarmResult aggregates a batch run.
type FarmResult struct {
	Results []*Result

	// Makespan is the virtual wall time to drain the queue with Lanes
	// parallel emulators (FIFO dispatch to the first free lane).
	Makespan time.Duration

	// TotalCPU is the summed per-app virtual analysis time.
	TotalCPU time.Duration
}

// MeanPerApp returns the mean virtual analysis time per app.
func (fr *FarmResult) MeanPerApp() time.Duration {
	if len(fr.Results) == 0 {
		return 0
	}
	return fr.TotalCPU / time.Duration(len(fr.Results))
}

// RunAll vets a queue of programs. Per-app Monkey seeds derive from the
// base config's seed and the queue position, so results are independent of
// host scheduling.
func (f *Farm) RunAll(programs []*behavior.Program, mkBase monkey.Config) (*FarmResult, error) {
	results := make([]*Result, len(programs))
	errs := make([]error, len(programs))

	parallel.Run(len(programs), 0, func(i int) {
		mk := mkBase
		mk.Seed = mkBase.Seed + int64(i)*0x9e37
		results[i], errs[i] = f.emu.Run(programs[i], mk)
	})

	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("emulator: farm app %d (%s): %w", i, programs[i].PackageName, err)
		}
	}

	// FIFO lane simulation for the virtual makespan.
	lanes := make([]time.Duration, f.lanes)
	var total time.Duration
	for _, res := range results {
		li := 0
		for j := 1; j < len(lanes); j++ {
			if lanes[j] < lanes[li] {
				li = j
			}
		}
		lanes[li] += res.VirtualTime
		total += res.VirtualTime
	}
	makespan := time.Duration(0)
	for _, t := range lanes {
		if t > makespan {
			makespan = t
		}
	}
	return &FarmResult{Results: results, Makespan: makespan, TotalCPU: total}, nil
}

// DailyCapacity estimates how many apps one server can vet per day given a
// mean per-app time (the paper's headline: ~10K/day at 1.3 min/app on 16
// lanes).
func DailyCapacity(meanPerApp time.Duration, lanes int) int {
	if meanPerApp <= 0 || lanes <= 0 {
		return 0
	}
	return int(int64(24*time.Hour)/int64(meanPerApp)) * lanes
}
