package emulator

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"apichecker/internal/behavior"
)

// TestRunContextCompletesIdenticalToRun: the cancellation checks consume
// no randomness, so a run that completes under a live context is
// bit-identical to the context-free path.
func TestRunContextCompletesIdenticalToRun(t *testing.T) {
	for _, prof := range []Profile{GoogleEmulator, LightweightEmulator} {
		e := New(prof, registryAll(t))
		p := prog(11, behavior.Malicious, behavior.FamilyRansomware)
		plain, err := e.Run(p, mk(5))
		if err != nil {
			t.Fatal(err)
		}
		ctxed, err := e.RunContext(context.Background(), p, mk(5))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(plain, ctxed) {
			t.Errorf("%s: RunContext diverged from Run", prof.Name)
		}
	}
}

func TestRunContextExpiredDeadline(t *testing.T) {
	e := New(GoogleEmulator, registryAll(t))
	p := prog(12, behavior.Benign, behavior.FamilyNone)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.RunContext(ctx, p, mk(1)); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext(canceled) = %v, want context.Canceled", err)
	}

	dctx, dcancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer dcancel()
	<-dctx.Done()
	if _, err := e.RunContext(dctx, p, mk(1)); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("RunContext(expired) = %v, want context.DeadlineExceeded", err)
	}
}

// TestRunContextFallbackAborts: incompatible apps re-run on the fallback
// engine, and the re-run honors the same context.
func TestRunContextFallbackAborts(t *testing.T) {
	e := New(LightweightEmulator, registryAll(t))
	// A crash-prone program that trips the incompatibility threshold.
	var p *behavior.Program
	for seed := int64(0); seed < 4000; seed++ {
		cand := prog(seed, behavior.Benign, behavior.FamilyNone)
		if cand.CrashBias > incompatibleThreshold {
			p = cand
			break
		}
	}
	if p == nil {
		t.Skip("no incompatible program found in seed range")
	}

	res, err := e.RunContext(context.Background(), p, mk(2))
	if err != nil {
		t.Fatal(err)
	}
	if !res.FellBack || res.Profile != GoogleEmulator.Name {
		t.Fatalf("fallback run = {FellBack: %v, Profile: %q}, want stock re-run",
			res.FellBack, res.Profile)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.RunContext(ctx, p, mk(2)); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled fallback = %v, want context.Canceled", err)
	}
}
