package emulator

import (
	"testing"

	"apichecker/internal/behavior"
	"apichecker/internal/monkey"
)

// Coverage-guided exploration (§6 future work) must raise RAC at the same
// event budget, without changing the event count or the invocation model.
func TestCoverageStrategyImprovesRAC(t *testing.T) {
	reg := registryNone(t)
	e := New(GoogleEmulator, reg)
	var racRandom, racCoverage float64
	const n = 80
	for seed := int64(0); seed < n; seed++ {
		p := prog(seed, behavior.Benign, behavior.FamilyNone)
		random := monkey.ProductionConfig(seed)
		coverage := random
		coverage.Strategy = monkey.StrategyCoverage

		r1, err := e.Run(p, random)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := e.Run(p, coverage)
		if err != nil {
			t.Fatal(err)
		}
		racRandom += r1.RAC
		racCoverage += r2.RAC
		if r1.Events != r2.Events {
			t.Fatal("strategies used different event budgets")
		}
	}
	racRandom /= n
	racCoverage /= n
	if racCoverage <= racRandom+0.01 {
		t.Errorf("coverage RAC %.3f not above random %.3f", racCoverage, racRandom)
	}
	// Unreachable activities (login walls) stay unreachable: the gain is
	// bounded.
	if racCoverage > 0.95 {
		t.Errorf("coverage RAC %.3f implausibly near total", racCoverage)
	}
}

func TestStrategyStrings(t *testing.T) {
	if monkey.StrategyRandom.String() != "random" || monkey.StrategyCoverage.String() != "coverage-guided" {
		t.Error("strategy names wrong")
	}
}
