package emulator

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"sync/atomic"
	"time"

	"apichecker/internal/behavior"
	"apichecker/internal/framework"
	"apichecker/internal/hook"
	"apichecker/internal/monkey"
)

// incompatibleThreshold: apps whose lightweight-engine crash bias exceeds
// this are deterministically incompatible with the x86 port (< 1% of apps)
// and fall back to the Google engine (§5.1).
const incompatibleThreshold = 0.0195

// Emulator runs programs under one profile with one hook registry.
type Emulator struct {
	profile Profile
	reg     *hook.Registry

	// fallback is the pre-built engine incompatible apps re-run on.
	// Building it once at construction keeps Run free of registry
	// mutation (hardening installs callbacks), so emulations can fan out
	// over parallel lanes safely.
	fallback *Emulator
}

// New builds an emulator. When the profile is hardened, anti-detection
// tampering callbacks are installed on the identity-revealing APIs the
// registry happens to track (§4.2's fourth improvement).
func New(profile Profile, reg *hook.Registry) *Emulator {
	e := &Emulator{profile: profile, reg: reg}
	if profile.CompatRisk && profile.Fallback != nil {
		e.fallback = New(*profile.Fallback, reg)
	}
	if profile.Hardened {
		u := reg.Universe()
		for _, name := range []string{
			"android.content.pm.PackageManager.getInstalledApplications",
			"android.content.pm.PackageManager.getInstalledPackages",
			"android.telephony.TelephonyManager.getDeviceId",
			"android.net.wifi.WifiInfo.getMacAddress",
		} {
			if id, ok := u.LookupAPI(name); ok && reg.Tracks(id) {
				// Installing on our own registry cannot fail for
				// a tracked id.
				_ = reg.OnInvoke(id, func(inv *hook.Invocation) { inv.Tampered = true })
			}
		}
	}
	return e
}

// Profile returns the emulator's profile.
func (e *Emulator) Profile() Profile { return e.profile }

// Registry returns the hook registry in use.
func (e *Emulator) Registry() *hook.Registry { return e.reg }

// Result is the outcome of emulating one app.
type Result struct {
	Log *hook.Log

	// VirtualTime is the simulated wall-clock analysis time, including
	// crash retries and fallback re-runs.
	VirtualTime time.Duration

	// Events is the number of Monkey events injected.
	Events int

	// RAC is the Referred Activity Coverage achieved (§4.2).
	RAC float64

	// ReachedActivities / ReferencedActivities are RAC's numerator and
	// denominator.
	ReachedActivities    int
	ReferencedActivities int

	// Detected reports whether the app's emulator-detection probes
	// succeeded (and, if it suppresses, its payload stayed quiet).
	Detected bool

	// Suppressed reports that malicious-payload activities were muted.
	Suppressed bool

	// Crashed counts transient crashes (each costs a retry).
	Crashed int

	// FellBack reports that the app was incompatible with this engine
	// and was re-run on the fallback profile.
	FellBack bool

	// Profile names the engine that produced the final log.
	Profile string
}

// runCount totals emulations process-wide; see RunCount.
var runCount atomic.Int64

// RunCount returns the process-wide number of emulations performed so
// far. A fallback re-run counts as a second emulation (it costs one).
// Tests and benchmarks diff this counter to assert how many corpus passes
// a pipeline really paid for.
func RunCount() int64 { return runCount.Load() }

// Run emulates the program: install, exercise with the Monkey, record the
// hook log, uninstall. The virtual clock advances per event and per
// intercepted invocation.
func (e *Emulator) Run(p *behavior.Program, mk monkey.Config) (*Result, error) {
	return e.RunContext(context.Background(), p, mk)
}

// RunContext is Run under a context: cancellation is checked where the real
// control plane can actually abandon a run — before install, before a
// fallback re-run, at each crash-restart, and at every activity's
// event-batch boundary inside the Monkey loop — so a deadline stops an
// emulation mid-run instead of after it. The returned error wraps
// ctx.Err(), so errors.Is(err, context.DeadlineExceeded) identifies
// timeouts. A run that completes is bit-identical to Run: the checks
// consume no randomness.
func (e *Emulator) RunContext(ctx context.Context, p *behavior.Program, mk monkey.Config) (*Result, error) {
	runCount.Add(1)
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("emulator: %w", err)
	}
	if err := mk.Validate(); err != nil {
		return nil, fmt.Errorf("emulator: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return nil, e.aborted(p, err)
	}

	// Incompatible apps abort early and re-run on the fallback engine.
	if e.fallback != nil && p.CrashBias > incompatibleThreshold {
		res, err := e.fallback.RunContext(ctx, p, mk)
		if err != nil {
			return nil, err
		}
		// The aborted attempt still cost a partial run before the
		// SystemServer exception report arrived.
		res.VirtualTime += time.Duration(float64(e.profile.PerEvent) * float64(mk.Events) * 0.3)
		res.FellBack = true
		return res, nil
	}

	rng := rand.New(rand.NewSource(p.Seed ^ int64(mk.Seed)<<1 ^ 0x5ca1ab1e))
	log := hook.NewLog(e.reg)
	res := &Result{Log: log, Events: mk.Events, Profile: e.profile.Name}

	// Transient crashes on risky engines: detect, restart, continue
	// (crash detection + restart is what keeps the engine reliable). Each
	// restart is a natural abandonment point.
	retryCost := 0.0
	if e.profile.CompatRisk {
		for rng.Float64() < p.CrashBias {
			res.Crashed++
			retryCost += 0.4
			if err := ctx.Err(); err != nil {
				return nil, e.aborted(p, err)
			}
			if res.Crashed >= 3 {
				break
			}
		}
	}

	// Emulator detection: which probes does this environment fail?
	failed := e.failedProbes(mk)
	res.Detected = p.EmulatorChecks&failed != 0
	res.Suppressed = res.Detected && p.SuppressOnEmulator

	// Activity discovery times (in events), driven by the Monkey's
	// exploration intensity.
	type active struct {
		ab    *behavior.ActivityBehavior
		start float64 // event index at discovery
	}
	var actives []active
	referenced := 0
	reached := 0
	events := float64(mk.Events)
	for i := range p.Activities {
		ab := &p.Activities[i]
		if !ab.Referenced {
			continue
		}
		referenced++
		if ab.ReachRate <= 0 {
			continue
		}
		rate := ab.ReachRate
		// Coverage-guided exploration (§6) re-targets stuck input
		// streams, sharply accelerating discovery of the slow
		// activities; already-easy screens gain little.
		if mk.Strategy == monkey.StrategyCoverage && rate < 0.5 {
			rate *= monkey.CoverageBoost
		}
		start := 0.0
		if i > 0 {
			start = rng.ExpFloat64() * 1000 / rate
		}
		if start < events {
			reached++
			log.ObserveActivity(ab.Name)
			actives = append(actives, active{ab, start})
		}
	}
	res.ReferencedActivities = referenced
	res.ReachedActivities = reached
	if referenced > 0 {
		res.RAC = float64(reached) / float64(referenced)
	}

	// Dynamic payload joins after its download-and-load delay, unless
	// the app went quiet.
	if p.Payload != nil && !res.Suppressed {
		delay := 200 + rng.ExpFloat64()*300
		if delay < events {
			for i := range p.Payload.Activities {
				actives = append(actives, active{&p.Payload.Activities[i], delay})
			}
		}
	}

	// Execute: each active activity emits its behaviour over its active
	// window. One activity's emission is one batch of Monkey events, so
	// the boundary between activities is where an aborted run stops.
	u := e.reg.Universe()
	for _, ac := range actives {
		if err := ctx.Err(); err != nil {
			return nil, e.aborted(p, err)
		}
		ab := ac.ab
		if res.Suppressed && ab.MaliciousPayload {
			continue
		}
		if p.RequiresRealSensors && !e.profile.RealDevice && sensorGated(ab.Name) {
			continue // needs live sensor data no emulator can provide
		}
		window := (events - ac.start) / 1000.0
		for _, r := range ab.Direct {
			count := poissonCount(rng, r.Rate*window)
			if count == 0 {
				continue
			}
			api := u.API(r.API)
			log.Observe(r.API, count, sampleParam(rng, api))
		}
		for _, r := range ab.Reflection {
			// Reflection bypasses method hooks: invocations run,
			// are counted, but are never intercepted.
			count := poissonCount(rng, r.Rate*window)
			log.TotalInvocations += count
		}
		for _, in := range ab.SendIntents {
			log.ObserveIntent(in, 1+uint64(poissonCount(rng, 1.5*window)))
		}
	}

	// Virtual clock: per-app speed is a stable property of the app.
	speed := appSpeed(p, e.profile)
	base := float64(e.profile.PerEvent) * events * speed
	hookCost := float64(e.profile.PerHook) * float64(log.Intercepted)
	res.VirtualTime = time.Duration(base*(1+retryCost) + hookCost)
	log.Seal()
	return res, nil
}

// aborted wraps a context error for an abandoned run.
func (e *Emulator) aborted(p *behavior.Program, err error) error {
	return fmt.Errorf("emulator: %s: run aborted: %w", p.PackageName, err)
}

// failedProbes returns the probe bitmask this environment fails (i.e. the
// probes that would detect it).
func (e *Emulator) failedProbes(mk monkey.Config) uint8 {
	if e.profile.RealDevice {
		return 0
	}
	var failed uint8
	if !e.profile.Hardened {
		failed |= behavior.CheckBuildProps | behavior.CheckSensors
		if e.reg.Size() > 0 {
			failed |= behavior.CheckHookArtifacts
		}
	}
	if !mk.Realistic() {
		failed |= behavior.CheckInputTiming
	}
	return failed
}

// appSpeed derives the app's stable speed multiplier on a profile.
func appSpeed(p *behavior.Program, prof Profile) float64 {
	rng := rand.New(rand.NewSource(p.Seed * 0x9e3779b9))
	s := math.Exp(rng.NormFloat64() * prof.SpeedSigma)
	if s < prof.SpeedMin {
		s = prof.SpeedMin
	}
	if s > prof.SpeedMax {
		s = prof.SpeedMax
	}
	return s
}

// sensorGated deterministically marks ~30% of an app's activities as
// requiring live sensor input.
func sensorGated(name string) bool {
	var h uint32 = 2166136261
	for i := 0; i < len(name); i++ {
		h = (h ^ uint32(name[i])) * 16777619
	}
	return h%100 < 30
}

// sampleParam fabricates a plausible recorded parameter for an invocation.
func sampleParam(rng *rand.Rand, api *framework.API) string {
	switch rng.Intn(4) {
	case 0:
		return "arg=" + api.Name[max(0, len(api.Name)-12):]
	case 1:
		// strconv, not Sprintf: this runs per recorded invocation and the
		// Sprintf boxing dominated the emulation-path allocation profile.
		// Output stays byte-identical ("%x" == FormatInt base 16).
		return "flags=0x" + strconv.FormatInt(int64(rng.Intn(1<<12)), 16)
	case 2:
		return "uid=" + strconv.Itoa(10000+rng.Intn(500))
	default:
		return "ctx=app"
	}
}

// poissonCount samples a Poisson variate as uint64 (Knuth for small means,
// normal approximation above).
func poissonCount(rng *rand.Rand, lambda float64) uint64 {
	if lambda <= 0 {
		return 0
	}
	if lambda < 30 {
		l := math.Exp(-lambda)
		k := 0
		p := 1.0
		for {
			p *= rng.Float64()
			if p <= l {
				return uint64(k)
			}
			k++
		}
	}
	v := lambda + math.Sqrt(lambda)*rng.NormFloat64()
	if v < 0 {
		return 0
	}
	return uint64(math.Round(v))
}
