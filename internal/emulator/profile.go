// Package emulator is the app-execution substrate: a discrete-event model
// of running an Android app under instrumentation, with a virtual clock
// calibrated to the paper's measured timing distributions.
//
// Two emulation engines exist (§4.2, §5.1):
//
//   - Google: the stock QEMU-based full-system emulator. Faithful but
//     slow — it pays full ARM system emulation on every instruction.
//   - Lightweight: Android-x86 with Intel Houdini ARM→x86 binary
//     translation, running one emulator per core on an x86 server. It cuts
//     per-app analysis time by ~70% but a small population of apps is
//     incompatible and falls back to the Google engine.
//
// Orthogonally, an engine can be hardened (§4.2's four improvements:
// realistic device identity, human-paced inputs, sensor-trace replay, and
// hidden hooking artifacts), which defeats emulator-detection probes, and
// there is a RealDevice profile used as the authenticity baseline.
package emulator

import "time"

// Profile describes one execution environment.
type Profile struct {
	Name string

	// PerEvent is the median cost of executing one Monkey event
	// (includes app think time). Calibrated so 5K events ≈ 2.1 min on
	// the Google engine with no tracking (Fig. 3).
	PerEvent time.Duration

	// PerHook is the interception overhead per tracked API invocation.
	// Calibrated so tracking all 50K APIs ≈ 53.6 min mean (Fig. 3).
	PerHook time.Duration

	// SpeedSigma is the lognormal sigma of per-app speed variation.
	SpeedSigma float64

	// SpeedMin/SpeedMax clamp the per-app speed multiplier (the paper's
	// CDFs have finite support: 0.57-5.8 min with no tracking).
	SpeedMin, SpeedMax float64

	// Hardened engines defeat build-prop, sensor and hook-artifact
	// probes (input-timing resistance additionally needs a realistic
	// Monkey configuration).
	Hardened bool

	// RealDevice marks the physical-phone baseline: no emulation to
	// detect, live sensors available.
	RealDevice bool

	// CompatRisk marks engines whose OS port + binary translation can
	// fail on some apps (the lightweight engine; §5.1 reports < 1%).
	CompatRisk bool

	// Fallback is the engine incompatible apps are re-run on.
	Fallback *Profile
}

// Timing calibration (see DESIGN.md §2): the Google engine's measured
// means are 2.1 min for 5K untracked events and 53.6 min when tracking all
// 50K APIs over a mean of 42.3M invocations — i.e. ~25.2 ms/event and
// ~73 µs/interception. The lightweight engine saves ~70% of both.
var (
	// GoogleEmulator is the stock QEMU-based engine, hardened as
	// deployed in the collaborative study (§4.2).
	GoogleEmulator = Profile{
		Name:       "google-emulator",
		PerEvent:   25200 * time.Microsecond,
		PerHook:    73 * time.Microsecond,
		SpeedSigma: 0.42,
		SpeedMin:   0.27,
		SpeedMax:   2.76,
		Hardened:   true,
	}

	// StockGoogleEmulator is the same engine before the four hardening
	// improvements; used only in the authenticity experiment (§4.2).
	StockGoogleEmulator = Profile{
		Name:       "google-emulator-stock",
		PerEvent:   25200 * time.Microsecond,
		PerHook:    73 * time.Microsecond,
		SpeedSigma: 0.42,
		SpeedMin:   0.27,
		SpeedMax:   2.76,
		Hardened:   false,
	}

	// LightweightEmulator is the Android-x86 + Houdini engine (§5.1).
	LightweightEmulator = Profile{
		Name:       "lightweight-x86",
		PerEvent:   7560 * time.Microsecond,
		PerHook:    22 * time.Microsecond,
		SpeedSigma: 0.42,
		SpeedMin:   0.27,
		SpeedMax:   2.76,
		Hardened:   true,
		CompatRisk: true,
		Fallback:   &GoogleEmulator,
	}

	// RealDevice is the Nexus-6 style physical baseline.
	RealDevice = Profile{
		Name:       "real-device",
		PerEvent:   20000 * time.Microsecond,
		PerHook:    60 * time.Microsecond,
		SpeedSigma: 0.42,
		SpeedMin:   0.27,
		SpeedMax:   2.76,
		Hardened:   true, // nothing to detect
		RealDevice: true,
	}
)
