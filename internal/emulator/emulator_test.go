package emulator

import (
	"testing"
	"time"

	"apichecker/internal/behavior"
	"apichecker/internal/framework"
	"apichecker/internal/hook"
	"apichecker/internal/monkey"
)

var (
	testU   = framework.MustGenerate(framework.TestConfig(3000))
	testGen = behavior.NewGenerator(testU)
)

func prog(seed int64, label behavior.Label, fam behavior.Family) *behavior.Program {
	return testGen.Generate(behavior.Spec{
		PackageName: "com.emu.test", Version: 1, Seed: seed,
		Label: label, Family: fam, Category: behavior.CategoryGame,
	})
}

func registryAll(t *testing.T) *hook.Registry {
	t.Helper()
	var ids []framework.APIID
	for _, a := range testU.APIs() {
		if !a.Hidden {
			ids = append(ids, a.ID)
		}
	}
	return hook.MustNewRegistry(testU, ids)
}

func registryNone(t *testing.T) *hook.Registry {
	t.Helper()
	return hook.MustNewRegistry(testU, nil)
}

func mk(seed int64) monkey.Config { return monkey.ProductionConfig(seed) }

func TestRunDeterministic(t *testing.T) {
	e := New(GoogleEmulator, registryAll(t))
	p := prog(1, behavior.Benign, behavior.FamilyNone)
	r1, err := e.Run(p, mk(9))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.Run(p, mk(9))
	if err != nil {
		t.Fatal(err)
	}
	if r1.VirtualTime != r2.VirtualTime || r1.Log.TotalInvocations != r2.Log.TotalInvocations {
		t.Errorf("same run differs: %v/%d vs %v/%d",
			r1.VirtualTime, r1.Log.TotalInvocations, r2.VirtualTime, r2.Log.TotalInvocations)
	}
}

func TestTrackingCostsTime(t *testing.T) {
	p := prog(2, behavior.Benign, behavior.FamilyNone)
	none, err := New(GoogleEmulator, registryNone(t)).Run(p, mk(1))
	if err != nil {
		t.Fatal(err)
	}
	all, err := New(GoogleEmulator, registryAll(t)).Run(p, mk(1))
	if err != nil {
		t.Fatal(err)
	}
	if none.Log.Intercepted != 0 {
		t.Errorf("untracked run intercepted %d invocations", none.Log.Intercepted)
	}
	if all.Log.Intercepted == 0 {
		t.Fatal("tracked run intercepted nothing")
	}
	if all.VirtualTime <= none.VirtualTime {
		t.Errorf("tracking all APIs (%v) not slower than none (%v)", all.VirtualTime, none.VirtualTime)
	}
	// Total invocation volume must not depend on the tracked set.
	if all.Log.TotalInvocations != none.Log.TotalInvocations {
		t.Errorf("total invocations depend on tracking: %d vs %d",
			all.Log.TotalInvocations, none.Log.TotalInvocations)
	}
}

func TestLightweightFasterThanGoogle(t *testing.T) {
	reg := registryAll(t)
	var google, light time.Duration
	for seed := int64(0); seed < 20; seed++ {
		p := prog(seed, behavior.Benign, behavior.FamilyNone)
		g, err := New(GoogleEmulator, reg).Run(p, mk(seed))
		if err != nil {
			t.Fatal(err)
		}
		l, err := New(LightweightEmulator, reg).Run(p, mk(seed))
		if err != nil {
			t.Fatal(err)
		}
		google += g.VirtualTime
		light += l.VirtualTime
	}
	saving := 1 - float64(light)/float64(google)
	// §5.1: ~70% reduction.
	if saving < 0.5 || saving > 0.85 {
		t.Errorf("lightweight saving = %.2f, want ≈ 0.7", saving)
	}
}

func TestIncompatibleAppFallsBack(t *testing.T) {
	reg := registryNone(t)
	found := false
	for seed := int64(0); seed < 400 && !found; seed++ {
		p := prog(seed, behavior.Benign, behavior.FamilyNone)
		if p.CrashBias <= incompatibleThreshold {
			continue
		}
		found = true
		res, err := New(LightweightEmulator, reg).Run(p, mk(seed))
		if err != nil {
			t.Fatal(err)
		}
		if !res.FellBack {
			t.Error("incompatible app did not fall back")
		}
		if res.Profile != GoogleEmulator.Name {
			t.Errorf("fallback profile = %s", res.Profile)
		}
	}
	if !found {
		t.Skip("no incompatible app in seed range")
	}
}

func TestEmulatorDetectionMatrix(t *testing.T) {
	reg := registryAll(t)
	// Find a malicious program that runs probes and suppresses.
	var p *behavior.Program
	for seed := int64(0); seed < 200; seed++ {
		c := prog(seed, behavior.Malicious, behavior.FamilySpyware)
		if c.EmulatorChecks != 0 && c.SuppressOnEmulator && !c.RequiresRealSensors {
			p = c
			break
		}
	}
	if p == nil {
		t.Fatal("no probing program found")
	}

	stock, err := New(StockGoogleEmulator, reg).Run(p, mk(3))
	if err != nil {
		t.Fatal(err)
	}
	hardened, err := New(GoogleEmulator, reg).Run(p, mk(3))
	if err != nil {
		t.Fatal(err)
	}
	real, err := New(RealDevice, reg).Run(p, mk(3))
	if err != nil {
		t.Fatal(err)
	}
	if !stock.Detected || !stock.Suppressed {
		t.Error("stock emulator not detected by probing app")
	}
	if hardened.Detected {
		t.Error("hardened emulator detected despite hardening")
	}
	if real.Detected {
		t.Error("real device detected as emulator")
	}
	// Suppression hides behaviour: the stock run must see fewer distinct
	// APIs than the real device.
	if stock.Log.DistinctInvoked() >= real.Log.DistinctInvoked() {
		t.Errorf("suppressed run saw %d distinct APIs, real device %d",
			stock.Log.DistinctInvoked(), real.Log.DistinctInvoked())
	}
	// The hardened emulator matches the real device.
	if hardened.Log.DistinctInvoked() != real.Log.DistinctInvoked() {
		t.Errorf("hardened emulator saw %d distinct APIs, real device %d",
			hardened.Log.DistinctInvoked(), real.Log.DistinctInvoked())
	}
}

func TestUnrealisticMonkeyTriggersTimingProbe(t *testing.T) {
	reg := registryAll(t)
	var p *behavior.Program
	for seed := int64(0); seed < 300; seed++ {
		c := prog(seed, behavior.Malicious, behavior.FamilyOverlay)
		if c.EmulatorChecks&behavior.CheckInputTiming != 0 {
			p = c
			break
		}
	}
	if p == nil {
		t.Fatal("no timing-probing program found")
	}
	fast := monkey.Config{Events: 5000, ThrottleMs: 0, PctTouch: 0.99, Seed: 1}
	res, err := New(GoogleEmulator, reg).Run(p, fast)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Detected {
		t.Error("machine-gun Monkey not detected by timing probe")
	}
}

func TestRACIncreasesWithEvents(t *testing.T) {
	reg := registryNone(t)
	e := New(GoogleEmulator, reg)
	var rac5k, rac100k float64
	const n = 60
	for seed := int64(0); seed < n; seed++ {
		p := prog(seed, behavior.Benign, behavior.FamilyNone)
		small, err := e.Run(p, monkey.Config{Events: 5000, ThrottleMs: 500, PctTouch: 0.65, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		big, err := e.Run(p, monkey.Config{Events: 100000, ThrottleMs: 500, PctTouch: 0.65, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		rac5k += small.RAC
		rac100k += big.RAC
	}
	rac5k /= n
	rac100k /= n
	// §4.2: ≈76.5% at 5K events, ≈86% at 100K.
	if rac5k < 0.68 || rac5k > 0.85 {
		t.Errorf("RAC(5K) = %.3f, want ≈ 0.765", rac5k)
	}
	if rac100k <= rac5k || rac100k < 0.8 || rac100k > 0.93 {
		t.Errorf("RAC(100K) = %.3f (5K = %.3f), want ≈ 0.86", rac100k, rac5k)
	}
}

func TestVirtualTimeNearPaperBase(t *testing.T) {
	reg := registryNone(t)
	e := New(GoogleEmulator, reg)
	var total time.Duration
	const n = 120
	for seed := int64(0); seed < n; seed++ {
		p := prog(seed, behavior.Benign, behavior.FamilyNone)
		res, err := e.Run(p, mk(seed))
		if err != nil {
			t.Fatal(err)
		}
		total += res.VirtualTime
	}
	mean := (total / n).Minutes()
	// Fig. 3: mean 2.1 min with no tracking.
	if mean < 1.6 || mean > 2.8 {
		t.Errorf("mean untracked time = %.2f min, want ≈ 2.1", mean)
	}
}

func TestHardenedTampersIdentityAPIs(t *testing.T) {
	id, ok := testU.LookupAPI("android.net.wifi.WifiInfo.getMacAddress")
	if !ok {
		t.Fatal("anchor API missing")
	}
	reg := hook.MustNewRegistry(testU, []framework.APIID{id})
	e := New(GoogleEmulator, reg)
	// Find a program invoking the API.
	for seed := int64(0); seed < 500; seed++ {
		p := prog(seed, behavior.Malicious, behavior.FamilySpyware)
		res, err := e.Run(p, mk(seed))
		if err != nil {
			t.Fatal(err)
		}
		if inv := res.Log.Invocation(id); inv != nil {
			if !inv.Tampered {
				t.Error("identity API result not tampered on hardened engine")
			}
			return
		}
	}
	t.Skip("no program invoked the anchor API")
}

func TestFarmRunAll(t *testing.T) {
	reg := registryNone(t)
	e := New(GoogleEmulator, reg)
	farm, err := NewFarm(e, 4)
	if err != nil {
		t.Fatal(err)
	}
	var programs []*behavior.Program
	for seed := int64(0); seed < 12; seed++ {
		programs = append(programs, prog(seed, behavior.Benign, behavior.FamilyNone))
	}
	fr, err := farm.RunAll(programs, mk(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(fr.Results) != len(programs) {
		t.Fatalf("results = %d, want %d", len(fr.Results), len(programs))
	}
	if fr.Makespan <= 0 || fr.TotalCPU < fr.Makespan {
		t.Errorf("makespan %v, total %v inconsistent", fr.Makespan, fr.TotalCPU)
	}
	if fr.Makespan > fr.TotalCPU/2 {
		t.Errorf("4-lane makespan %v barely parallel vs total %v", fr.Makespan, fr.TotalCPU)
	}
	if fr.MeanPerApp() <= 0 {
		t.Error("MeanPerApp not positive")
	}
}

func TestFarmRejectsBadLanes(t *testing.T) {
	if _, err := NewFarm(New(GoogleEmulator, registryNone(t)), 0); err == nil {
		t.Error("NewFarm accepted 0 lanes")
	}
}

func TestDailyCapacity(t *testing.T) {
	// 1.3 min/app on 16 lanes ≈ 17.7K/day; the paper vets ~10K/day.
	got := DailyCapacity(78*time.Second, 16)
	if got < 10000 || got > 20000 {
		t.Errorf("DailyCapacity = %d, want 10K-20K band", got)
	}
	if DailyCapacity(0, 16) != 0 || DailyCapacity(time.Minute, 0) != 0 {
		t.Error("degenerate inputs should yield 0")
	}
}

func TestRunRejectsInvalidInputs(t *testing.T) {
	e := New(GoogleEmulator, registryNone(t))
	p := prog(1, behavior.Benign, behavior.FamilyNone)
	if _, err := e.Run(p, monkey.Config{Events: 0}); err == nil {
		t.Error("Run accepted invalid monkey config")
	}
	bad := *p
	bad.Activities = nil
	if _, err := e.Run(&bad, mk(1)); err == nil {
		t.Error("Run accepted invalid program")
	}
}
