package emulator

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"

	"apichecker/internal/behavior"
)

// TestFarmRunContextMatchesEmulator: the lane gate consumes no randomness,
// so a gated run is bit-identical to the bare engine.
func TestFarmRunContextMatchesEmulator(t *testing.T) {
	e := New(GoogleEmulator, registryAll(t))
	f, err := NewFarm(e, 2)
	if err != nil {
		t.Fatal(err)
	}
	p := prog(21, behavior.Malicious, behavior.FamilySpyware)

	plain, err := e.Run(p, mk(7))
	if err != nil {
		t.Fatal(err)
	}
	gated, err := f.RunContext(context.Background(), p, mk(7))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, gated) {
		t.Error("farm-gated run diverged from bare engine run")
	}
	if f.FreeLanes() != f.Lanes() {
		t.Errorf("FreeLanes() = %d after completion, want %d", f.FreeLanes(), f.Lanes())
	}
}

// TestFarmSlotReturnedOnAbort: a run aborted by its context — before or
// after taking a lane — must return the slot. A leaked slot would
// eventually wedge every serving lane behind cancelled submissions.
func TestFarmSlotReturnedOnAbort(t *testing.T) {
	e := New(GoogleEmulator, registryAll(t))
	f, err := NewFarm(e, 1)
	if err != nil {
		t.Fatal(err)
	}
	p := prog(22, behavior.Benign, behavior.FamilyNone)

	// Pre-expired context with a free lane: the slot is taken anyway, so
	// the surfaced error is the engine's own abort (identical to the
	// ungated path), and the slot comes back.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := f.RunContext(ctx, p, mk(1)); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext(canceled, free lane) = %v, want context.Canceled", err)
	}
	if f.FreeLanes() != 1 {
		t.Fatalf("FreeLanes() = %d after canceled run, want 1", f.FreeLanes())
	}

	// All lanes busy: a canceled waiter aborts the lane wait without
	// consuming the slot the busy run will return.
	<-f.slots
	if _, err := f.RunContext(ctx, p, mk(1)); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext(canceled, no lane) = %v, want context.Canceled", err)
	}
	if f.FreeLanes() != 0 {
		t.Fatalf("aborted lane wait consumed a slot: FreeLanes() = %d", f.FreeLanes())
	}
	f.slots <- struct{}{}
	if f.FreeLanes() != 1 {
		t.Fatalf("FreeLanes() = %d, want 1", f.FreeLanes())
	}
}

// TestFarmConcurrentCancellationNoLeak hammers a small farm with a mix of
// live and cancelled contexts; every slot must be back afterwards and a
// fresh run must still succeed. Run under -race in CI.
func TestFarmConcurrentCancellationNoLeak(t *testing.T) {
	e := New(GoogleEmulator, registryAll(t))
	f, err := NewFarm(e, 3)
	if err != nil {
		t.Fatal(err)
	}
	canceled, cancel := context.WithCancel(context.Background())
	cancel()

	var wg sync.WaitGroup
	for i := 0; i < 48; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx := context.Background()
			if i%2 == 0 {
				ctx = canceled
			}
			p := prog(int64(100+i), behavior.Benign, behavior.FamilyNone)
			_, err := f.RunContext(ctx, p, mk(int64(i)))
			if i%2 == 0 && err == nil {
				t.Errorf("run %d: canceled context succeeded", i)
			}
			if i%2 == 1 && err != nil {
				t.Errorf("run %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()

	if f.FreeLanes() != f.Lanes() {
		t.Fatalf("FreeLanes() = %d after churn, want %d", f.FreeLanes(), f.Lanes())
	}
	if _, err := f.RunContext(context.Background(), prog(23, behavior.Benign, behavior.FamilyNone), mk(4)); err != nil {
		t.Fatalf("fresh run after churn: %v", err)
	}
}
