// Package obs is the observability spine of the vetting system: one
// lightweight structured event/trace layer every other package books its
// accounting through, instead of each growing a bespoke counter set.
//
// Three primitives cover the system's needs:
//
//   - Event: a structured record — a completed pipeline-stage span
//     (KindSpan, with a virtual-clock duration) or a service lifecycle
//     event (KindService: accepted, rejected, started, done). Events fan
//     out to registered Sinks; span events are additionally aggregated
//     into per-stage counters and latency distributions.
//   - Counter: a named monotonic counter handle. Handles are cheap
//     atomics; packages hold them directly, so their legacy snapshot
//     types (vcache.Stats, vetsvc.Metrics) remain thin views over obs
//     data rather than parallel bookkeeping.
//   - Distribution: a named latency sample set with deterministic
//     nearest-rank quantiles over the virtual clock, so p50/p95/p99 are
//     host-speed independent and bit-stable across runs.
//
// A Collector owns one namespace of stages, counters, and distributions.
// The Checker carries one for the vet pipeline; each vetting service
// carries its own for admission/completion accounting (so a rebuilt
// service starts from zero, as its Metrics always have).
package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Kind classifies events.
type Kind uint8

const (
	// KindSpan: one pipeline stage finished for one submission. Dur is
	// the stage's virtual-clock duration.
	KindSpan Kind = iota
	// KindService: a serving-layer lifecycle event (admission decision,
	// start, completion).
	KindService
)

func (k Kind) String() string {
	switch k {
	case KindSpan:
		return "span"
	case KindService:
		return "service"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Event is one structured observability record.
type Event struct {
	Kind Kind
	// Name is the stage name (KindSpan) or lifecycle event name
	// (KindService: "accepted", "rejected", "started", "done").
	Name string
	// Trace identifies the submission: its vet sequence number (0 when
	// none was reserved, e.g. a rejected admission).
	Trace int64
	// Package is the submission's package name, best effort.
	Package string
	// Dur is the span's virtual-clock duration (zero for bookkeeping
	// stages and service events without one).
	Dur time.Duration
	// Note carries a stage-specific outcome detail: the cache outcome on
	// a lookup span, the engine name on an emulate span.
	Note string
	// Err is the failure that ended the stage or submission, nil on
	// success.
	Err error
}

// Sink receives every event emitted through a collector. Emit is called
// synchronously from vetting goroutines: implementations must be fast and
// must not call back into the emitting component.
type Sink interface {
	Emit(Event)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Event)

// Emit implements Sink.
func (f SinkFunc) Emit(ev Event) { f(ev) }

// Counter is a named monotonic counter handle obtained from a Collector.
type Counter struct {
	n atomic.Uint64
}

// Add increments the counter by d.
func (c *Counter) Add(d uint64) { c.n.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n.Add(1) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.n.Load() }

// Gauge is a named point-in-time value handle obtained from a Collector.
// Unlike a Counter it can move in both directions (or be set outright) —
// the current model generation, queue depths, and similar instantaneous
// state live here.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by d (negative d moves it down).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Distribution is a named sample set in virtual-clock seconds.
type Distribution struct {
	mu      sync.Mutex
	samples []float64
}

// Observe appends one sample.
func (d *Distribution) Observe(v float64) {
	d.mu.Lock()
	d.samples = append(d.samples, v)
	d.mu.Unlock()
}

// Snapshot copies the samples recorded so far.
func (d *Distribution) Snapshot() []float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]float64(nil), d.samples...)
}

// Summary summarizes the samples recorded so far.
func (d *Distribution) Summary() Summary { return Summarize(d.Snapshot()) }

// Summary is a deterministic latency digest: mean plus nearest-rank
// quantiles, in virtual-clock seconds.
type Summary struct {
	Count uint64
	Mean  float64
	P50   float64
	P95   float64
	P99   float64
}

// Summarize digests one sample set. The slice is sorted in place; pass a
// copy if the order matters to the caller.
func Summarize(samples []float64) Summary {
	if len(samples) == 0 {
		return Summary{}
	}
	var sum float64
	for _, v := range samples {
		sum += v
	}
	sort.Float64s(samples)
	return Summary{
		Count: uint64(len(samples)),
		Mean:  sum / float64(len(samples)),
		P50:   Quantile(samples, 0.50),
		P95:   Quantile(samples, 0.95),
		P99:   Quantile(samples, 0.99),
	}
}

// Quantile is the nearest-rank quantile of a sorted sample.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(q*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// stageAgg accumulates one stage's spans.
type stageAgg struct {
	count   uint64
	errors  uint64
	samples []float64 // virtual seconds
}

// StageStats is one stage's aggregate view: how many submissions passed
// through it, how many died in it, and its virtual-latency digest.
type StageStats struct {
	Stage  string
	Count  uint64
	Errors uint64
	Dur    Summary
}

// Collector is one observability namespace: per-stage span aggregates,
// named counters, named distributions, and a sink fan-out. Safe for
// concurrent use. Construct with NewCollector.
type Collector struct {
	mu     sync.Mutex
	stages map[string]*stageAgg
	order  []string // stage names in first-seen order (pipeline order)

	cmu      sync.Mutex
	counters map[string]*Counter

	gmu    sync.Mutex
	gauges map[string]*Gauge

	dmu   sync.Mutex
	dists map[string]*Distribution

	smu   sync.RWMutex
	sinks []Sink
}

// NewCollector builds an empty collector.
func NewCollector() *Collector {
	return &Collector{
		stages:   make(map[string]*stageAgg),
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		dists:    make(map[string]*Distribution),
	}
}

// AddSink registers a sink for every subsequent event.
func (c *Collector) AddSink(s Sink) {
	if s == nil {
		return
	}
	c.smu.Lock()
	c.sinks = append(c.sinks, s)
	c.smu.Unlock()
}

// Emit records one event: span events are aggregated into per-stage
// stats, and every event fans out to the registered sinks in
// registration order.
func (c *Collector) Emit(ev Event) {
	if ev.Kind == KindSpan {
		c.mu.Lock()
		agg, ok := c.stages[ev.Name]
		if !ok {
			agg = &stageAgg{}
			c.stages[ev.Name] = agg
			c.order = append(c.order, ev.Name)
		}
		agg.count++
		if ev.Err != nil {
			agg.errors++
		} else {
			agg.samples = append(agg.samples, ev.Dur.Seconds())
		}
		c.mu.Unlock()
	}
	c.smu.RLock()
	sinks := c.sinks
	c.smu.RUnlock()
	for _, s := range sinks {
		s.Emit(ev)
	}
}

// StageStats snapshots the per-stage aggregates in first-seen (pipeline)
// order. Durations summarize successful spans only; Errors counts the
// spans that ended in failure.
func (c *Collector) StageStats() []StageStats {
	c.mu.Lock()
	out := make([]StageStats, 0, len(c.order))
	type raw struct {
		name          string
		count, errors uint64
		samples       []float64
	}
	raws := make([]raw, 0, len(c.order))
	for _, name := range c.order {
		agg := c.stages[name]
		raws = append(raws, raw{name, agg.count, agg.errors,
			append([]float64(nil), agg.samples...)})
	}
	c.mu.Unlock()
	for _, r := range raws {
		out = append(out, StageStats{
			Stage:  r.name,
			Count:  r.count,
			Errors: r.errors,
			Dur:    Summarize(r.samples),
		})
	}
	return out
}

// Counter returns the named counter handle, creating it on first use.
// The handle stays valid for the collector's lifetime, so hot paths
// resolve it once and increment lock-free.
func (c *Collector) Counter(name string) *Counter {
	c.cmu.Lock()
	defer c.cmu.Unlock()
	ctr, ok := c.counters[name]
	if !ok {
		ctr = &Counter{}
		c.counters[name] = ctr
	}
	return ctr
}

// Counters snapshots every named counter's current value.
func (c *Collector) Counters() map[string]uint64 {
	c.cmu.Lock()
	defer c.cmu.Unlock()
	out := make(map[string]uint64, len(c.counters))
	for name, ctr := range c.counters {
		out[name] = ctr.Load()
	}
	return out
}

// Gauge returns the named gauge handle, creating it on first use. Like
// counter handles, gauge handles stay valid for the collector's lifetime.
func (c *Collector) Gauge(name string) *Gauge {
	c.gmu.Lock()
	defer c.gmu.Unlock()
	g, ok := c.gauges[name]
	if !ok {
		g = &Gauge{}
		c.gauges[name] = g
	}
	return g
}

// Gauges snapshots every named gauge's current value.
func (c *Collector) Gauges() map[string]int64 {
	c.gmu.Lock()
	defer c.gmu.Unlock()
	out := make(map[string]int64, len(c.gauges))
	for name, g := range c.gauges {
		out[name] = g.Load()
	}
	return out
}

// Distribution returns the named distribution, creating it on first use.
func (c *Collector) Distribution(name string) *Distribution {
	c.dmu.Lock()
	defer c.dmu.Unlock()
	d, ok := c.dists[name]
	if !ok {
		d = &Distribution{}
		c.dists[name] = d
	}
	return d
}

// Distributions snapshots every named distribution's summary. Generic
// exporters (the gateway's Prometheus exposition) iterate this instead of
// naming distributions one by one, so a new distribution is exported the
// moment any package observes into it.
func (c *Collector) Distributions() map[string]Summary {
	c.dmu.Lock()
	names := make([]string, 0, len(c.dists))
	dists := make([]*Distribution, 0, len(c.dists))
	for name, d := range c.dists {
		names = append(names, name)
		dists = append(dists, d)
	}
	c.dmu.Unlock()
	out := make(map[string]Summary, len(names))
	for i, d := range dists {
		out[names[i]] = d.Summary()
	}
	return out
}
