package obs

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestQuantileNearestRank(t *testing.T) {
	s := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	for _, tc := range []struct {
		q    float64
		want float64
	}{{0.5, 5}, {0.95, 10}, {0.99, 10}, {0, 1}, {1, 10}} {
		if got := Quantile(s, tc.q); got != tc.want {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Errorf("Quantile(nil) = %v, want 0", got)
	}
}

func TestSummarize(t *testing.T) {
	// Mean is computed before the in-place sort; quantiles after.
	s := Summarize([]float64{3, 1, 2, 4})
	if s.Count != 4 || s.Mean != 2.5 || s.P50 != 2 || s.P95 != 4 || s.P99 != 4 {
		t.Fatalf("Summarize = %+v", s)
	}
	if z := Summarize(nil); z != (Summary{}) {
		t.Fatalf("Summarize(nil) = %+v, want zero", z)
	}
}

func TestSpanAggregation(t *testing.T) {
	c := NewCollector()
	c.Emit(Event{Kind: KindSpan, Name: "emulate", Trace: 1, Dur: 2 * time.Second})
	c.Emit(Event{Kind: KindSpan, Name: "emulate", Trace: 2, Dur: 4 * time.Second})
	c.Emit(Event{Kind: KindSpan, Name: "infer", Trace: 1, Dur: time.Second})
	c.Emit(Event{Kind: KindSpan, Name: "emulate", Trace: 3, Err: errors.New("boom")})

	st := c.StageStats()
	if len(st) != 2 {
		t.Fatalf("stages = %d, want 2", len(st))
	}
	// First-seen order is pipeline order.
	if st[0].Stage != "emulate" || st[1].Stage != "infer" {
		t.Fatalf("stage order = %q, %q", st[0].Stage, st[1].Stage)
	}
	em := st[0]
	if em.Count != 3 || em.Errors != 1 {
		t.Fatalf("emulate agg = %+v", em)
	}
	// Errored spans carry no duration sample.
	if em.Dur.Count != 2 || em.Dur.Mean != 3 || em.Dur.P50 != 2 {
		t.Fatalf("emulate dur = %+v", em.Dur)
	}
}

func TestCountersAndDistributions(t *testing.T) {
	c := NewCollector()
	h := c.Counter("vcache.hits")
	h.Inc()
	h.Add(2)
	if c.Counter("vcache.hits") != h {
		t.Fatal("Counter must return a stable handle per name")
	}
	if got := c.Counters()["vcache.hits"]; got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}

	d := c.Distribution("scan.miss")
	d.Observe(1)
	d.Observe(3)
	if s := d.Summary(); s.Count != 2 || s.Mean != 2 {
		t.Fatalf("distribution summary = %+v", s)
	}
	// Summary must not disturb the stored samples.
	if got := d.Snapshot(); len(got) != 2 || got[0] != 1 {
		t.Fatalf("snapshot = %v", got)
	}
}

func TestSinkFanOutAndConcurrency(t *testing.T) {
	c := NewCollector()
	var mu sync.Mutex
	var got []Event
	c.AddSink(SinkFunc(func(ev Event) {
		mu.Lock()
		got = append(got, ev)
		mu.Unlock()
	}))

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				c.Emit(Event{Kind: KindSpan, Name: "emulate", Trace: int64(i)})
				c.Counter("n").Inc()
				c.Distribution("d").Observe(1)
			}
		}(i)
	}
	wg.Wait()

	mu.Lock()
	n := len(got)
	mu.Unlock()
	if n != 400 {
		t.Fatalf("sink saw %d events, want 400", n)
	}
	if c.Counter("n").Load() != 400 {
		t.Fatalf("counter = %d", c.Counter("n").Load())
	}
	if st := c.StageStats(); st[0].Count != 400 {
		t.Fatalf("stage count = %d", st[0].Count)
	}
}
