// Package manifest models AndroidManifest.xml: the APK configuration file
// that declares the package identity, the requested permissions, and the
// app's components (activities, services, broadcast receivers) with their
// intent filters.
//
// APICHECKER reads two things from the manifest: the requested permissions
// (the "P" auxiliary feature, §4.5) and the declared activities (the
// denominator material for Referred Activity Coverage, §4.2). Receiver
// intent filters contribute to the "I" auxiliary feature.
package manifest

import (
	"encoding/xml"
	"fmt"
)

// Manifest is the parsed AndroidManifest.xml.
type Manifest struct {
	XMLName     xml.Name    `xml:"manifest"`
	Package     string      `xml:"package,attr"`
	VersionCode int         `xml:"versionCode,attr"`
	VersionName string      `xml:"versionName,attr"`
	MinSDK      int         `xml:"uses-sdk>minSdkVersion"`
	TargetSDK   int         `xml:"uses-sdk>targetSdkVersion"`
	Permissions []UsesPerm  `xml:"uses-permission"`
	Application Application `xml:"application"`
}

// UsesPerm is one <uses-permission> entry.
type UsesPerm struct {
	Name string `xml:"name,attr"`
}

// Application holds the component declarations.
type Application struct {
	Label      string     `xml:"label,attr"`
	Activities []Activity `xml:"activity"`
	Services   []Service  `xml:"service"`
	Receivers  []Receiver `xml:"receiver"`
}

// Activity is one declared <activity>.
type Activity struct {
	Name     string         `xml:"name,attr"`
	Exported bool           `xml:"exported,attr"`
	Filters  []IntentFilter `xml:"intent-filter"`
}

// Service is one declared <service>.
type Service struct {
	Name string `xml:"name,attr"`
}

// Receiver is one declared broadcast <receiver>.
type Receiver struct {
	Name    string         `xml:"name,attr"`
	Filters []IntentFilter `xml:"intent-filter"`
}

// IntentFilter declares the intent actions a component responds to.
type IntentFilter struct {
	Actions []Action `xml:"action"`
}

// Action is one <action> inside an intent filter.
type Action struct {
	Name string `xml:"name,attr"`
}

// New returns a minimal valid manifest for the given package.
func New(pkg string, versionCode int) *Manifest {
	return &Manifest{
		Package:     pkg,
		VersionCode: versionCode,
		VersionName: fmt.Sprintf("%d.0", versionCode),
		MinSDK:      19,
		TargetSDK:   27,
	}
}

// PermissionNames returns the requested permission names in declaration
// order, deduplicated on first occurrence: a manifest may carry repeated
// <uses-permission> entries (hand-edited or merged manifests do), and the
// install-time semantics grant each permission once, so downstream
// consumers — universe resolution, static triage features, privilege
// scoring — must never see a permission twice.
func (m *Manifest) PermissionNames() []string {
	out := make([]string, 0, len(m.Permissions))
	seen := make(map[string]bool, len(m.Permissions))
	for _, p := range m.Permissions {
		if !seen[p.Name] {
			seen[p.Name] = true
			out = append(out, p.Name)
		}
	}
	return out
}

// RequestsPermission reports whether the manifest requests the named
// permission.
func (m *Manifest) RequestsPermission(name string) bool {
	for _, p := range m.Permissions {
		if p.Name == name {
			return true
		}
	}
	return false
}

// AddPermission appends a <uses-permission> entry if not already present.
func (m *Manifest) AddPermission(name string) {
	if !m.RequestsPermission(name) {
		m.Permissions = append(m.Permissions, UsesPerm{Name: name})
	}
}

// ActivityNames returns the declared activity names.
func (m *Manifest) ActivityNames() []string {
	out := make([]string, len(m.Application.Activities))
	for i, a := range m.Application.Activities {
		out[i] = a.Name
	}
	return out
}

// ReceiverActions returns the union of intent actions declared across all
// receiver intent filters (metadata input to the "I" feature).
func (m *Manifest) ReceiverActions() []string {
	var out []string
	seen := make(map[string]bool)
	for _, r := range m.Application.Receivers {
		for _, f := range r.Filters {
			for _, a := range f.Actions {
				if !seen[a.Name] {
					seen[a.Name] = true
					out = append(out, a.Name)
				}
			}
		}
	}
	return out
}

// Validate checks structural invariants.
func (m *Manifest) Validate() error {
	if m.Package == "" {
		return fmt.Errorf("manifest: empty package name")
	}
	if m.VersionCode <= 0 {
		return fmt.Errorf("manifest: package %s: versionCode %d must be positive", m.Package, m.VersionCode)
	}
	seen := make(map[string]bool)
	for _, a := range m.Application.Activities {
		if a.Name == "" {
			return fmt.Errorf("manifest: package %s: activity with empty name", m.Package)
		}
		if seen[a.Name] {
			return fmt.Errorf("manifest: package %s: duplicate activity %s", m.Package, a.Name)
		}
		seen[a.Name] = true
	}
	return nil
}

// Encode serializes the manifest to XML.
func (m *Manifest) Encode() ([]byte, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	b, err := xml.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("manifest: encode %s: %w", m.Package, err)
	}
	return append([]byte(xml.Header), b...), nil
}

// Decode parses an AndroidManifest.xml document.
func Decode(data []byte) (*Manifest, error) {
	var m Manifest
	if err := xml.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("manifest: decode: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}
