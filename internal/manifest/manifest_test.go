package manifest

import (
	"strings"
	"testing"
	"testing/quick"
)

func sample() *Manifest {
	m := New("com.example.demo", 3)
	m.AddPermission("android.permission.INTERNET")
	m.AddPermission("android.permission.SEND_SMS")
	m.Application.Label = "Demo"
	m.Application.Activities = []Activity{
		{Name: "com.example.demo.MainActivity", Exported: true,
			Filters: []IntentFilter{{Actions: []Action{{Name: "android.intent.action.MAIN"}}}}},
		{Name: "com.example.demo.SettingsActivity"},
	}
	m.Application.Services = []Service{{Name: "com.example.demo.SyncService"}}
	m.Application.Receivers = []Receiver{
		{Name: "com.example.demo.BootReceiver",
			Filters: []IntentFilter{{Actions: []Action{
				{Name: "android.intent.action.BOOT_COMPLETED"},
				{Name: "android.provider.Telephony.SMS_RECEIVED"},
			}}}},
		{Name: "com.example.demo.NetReceiver",
			Filters: []IntentFilter{{Actions: []Action{
				{Name: "android.provider.Telephony.SMS_RECEIVED"},
			}}}},
	}
	return m
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	m := sample()
	data, err := m.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if !strings.Contains(string(data), "<manifest") {
		t.Fatalf("missing root element:\n%s", data)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Package != m.Package || got.VersionCode != m.VersionCode {
		t.Errorf("identity mismatch: got %s/%d", got.Package, got.VersionCode)
	}
	if len(got.Permissions) != 2 || !got.RequestsPermission("android.permission.SEND_SMS") {
		t.Errorf("permissions lost: %+v", got.Permissions)
	}
	if len(got.Application.Activities) != 2 || got.Application.Activities[0].Name != "com.example.demo.MainActivity" {
		t.Errorf("activities lost: %+v", got.Application.Activities)
	}
	if !got.Application.Activities[0].Exported || got.Application.Activities[1].Exported {
		t.Error("exported flags lost")
	}
	if len(got.Application.Receivers) != 2 {
		t.Errorf("receivers lost: %+v", got.Application.Receivers)
	}
}

func TestReceiverActionsDeduplicated(t *testing.T) {
	m := sample()
	got := m.ReceiverActions()
	want := []string{"android.intent.action.BOOT_COMPLETED", "android.provider.Telephony.SMS_RECEIVED"}
	if len(got) != len(want) {
		t.Fatalf("ReceiverActions = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("ReceiverActions[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestPermissionNamesDeduplicated: repeated <uses-permission> entries (as
// decoded from a hand-edited or merged manifest, which AddPermission never
// produces) collapse to one name each, preserving first-occurrence order.
func TestPermissionNamesDeduplicated(t *testing.T) {
	m := New("a.b.c", 1)
	m.Permissions = []UsesPerm{
		{Name: "android.permission.SEND_SMS"},
		{Name: "android.permission.INTERNET"},
		{Name: "android.permission.SEND_SMS"},
		{Name: "android.permission.CAMERA"},
		{Name: "android.permission.INTERNET"},
	}
	got := m.PermissionNames()
	want := []string{"android.permission.SEND_SMS", "android.permission.INTERNET", "android.permission.CAMERA"}
	if len(got) != len(want) {
		t.Fatalf("PermissionNames = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("PermissionNames[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestPermissionNamesEmpty: a manifest with no permission requests yields
// an empty (but non-nil-safe-to-range) slice.
func TestPermissionNamesEmpty(t *testing.T) {
	if got := New("a.b.c", 1).PermissionNames(); len(got) != 0 {
		t.Errorf("PermissionNames on empty manifest = %v", got)
	}
}

func TestAddPermissionIdempotent(t *testing.T) {
	m := New("a.b.c", 1)
	m.AddPermission("android.permission.CAMERA")
	m.AddPermission("android.permission.CAMERA")
	if len(m.Permissions) != 1 {
		t.Errorf("permissions = %d, want 1", len(m.Permissions))
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Manifest)
	}{
		{"empty package", func(m *Manifest) { m.Package = "" }},
		{"bad version", func(m *Manifest) { m.VersionCode = 0 }},
		{"empty activity name", func(m *Manifest) {
			m.Application.Activities = append(m.Application.Activities, Activity{})
		}},
		{"duplicate activity", func(m *Manifest) {
			m.Application.Activities = append(m.Application.Activities, m.Application.Activities[0])
		}},
	}
	for _, tc := range cases {
		m := sample()
		tc.mutate(m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid manifest", tc.name)
		}
		if _, err := m.Encode(); err == nil {
			t.Errorf("%s: Encode accepted invalid manifest", tc.name)
		}
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, err := Decode([]byte("not xml at all <<<")); err == nil {
		t.Error("Decode accepted garbage")
	}
	if _, err := Decode([]byte("<manifest></manifest>")); err == nil {
		t.Error("Decode accepted manifest without package")
	}
}

// Property: any manifest built from printable identifiers round-trips.
func TestQuickRoundTrip(t *testing.T) {
	f := func(pkgSuffix uint32, version uint8, nPerms, nActs uint8) bool {
		m := New("com.q.p"+itoa(pkgSuffix), int(version)+1)
		for i := 0; i < int(nPerms%8); i++ {
			m.AddPermission("android.permission.P_" + itoa(uint32(i)))
		}
		for i := 0; i < int(nActs%6); i++ {
			m.Application.Activities = append(m.Application.Activities,
				Activity{Name: m.Package + ".A" + itoa(uint32(i))})
		}
		data, err := m.Encode()
		if err != nil {
			return false
		}
		got, err := Decode(data)
		if err != nil {
			return false
		}
		return got.Package == m.Package &&
			len(got.Permissions) == len(m.Permissions) &&
			len(got.Application.Activities) == len(m.Application.Activities)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func itoa(v uint32) string {
	const digits = "0123456789"
	if v == 0 {
		return "0"
	}
	var b [10]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = digits[v%10]
		v /= 10
	}
	return string(b[i:])
}
