package behavior

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"apichecker/internal/framework"
)

var testU = framework.MustGenerate(framework.TestConfig(3000))

func testGen() *Generator { return NewGenerator(testU) }

func benignSpec(seed int64) Spec {
	return Spec{PackageName: "com.good.app", Version: 1, Seed: seed,
		Label: Benign, Category: CategoryTool}
}

func maliciousSpec(seed int64, f Family) Spec {
	return Spec{PackageName: "com.evil.app", Version: 1, Seed: seed,
		Label: Malicious, Family: f}
}

func TestGenerateDeterministic(t *testing.T) {
	g := testGen()
	p1 := g.Generate(benignSpec(42))
	p2 := g.Generate(benignSpec(42))
	b1, err := p1.Encode()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := p2.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Error("same spec produced different programs")
	}
	p3 := g.Generate(benignSpec(43))
	b3, _ := p3.Encode()
	if string(b1) == string(b3) {
		t.Error("different seeds produced identical programs")
	}
}

func TestEncodeStripsGroundTruth(t *testing.T) {
	g := testGen()
	p := g.Generate(maliciousSpec(7, FamilySpyware))
	data, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Label != Benign || got.Family != FamilyNone || got.Category != CategoryGame {
		t.Errorf("ground truth leaked into serialized program: label=%v family=%v category=%v",
			got.Label, got.Family, got.Category)
	}
	if got.PackageName != p.PackageName || len(got.Activities) != len(p.Activities) {
		t.Error("behavioural payload lost in round trip")
	}
}

func TestValidateCatchesBrokenPrograms(t *testing.T) {
	g := testGen()
	cases := []struct {
		name   string
		mutate func(*Program)
	}{
		{"empty package", func(p *Program) { p.PackageName = "" }},
		{"zero version", func(p *Program) { p.Version = 0 }},
		{"no activities", func(p *Program) { p.Activities = nil }},
		{"unreachable launcher", func(p *Program) { p.Activities[0].ReachRate = 0 }},
		{"duplicate activity", func(p *Program) { p.Activities[1].Name = p.Activities[0].Name }},
		{"negative rate", func(p *Program) {
			p.Activities[0].Direct = append(p.Activities[0].Direct, APIRate{API: 1, Rate: -1})
		}},
		{"crash bias", func(p *Program) { p.CrashBias = 1.5 }},
	}
	for _, tc := range cases {
		p := g.Generate(benignSpec(1))
		tc.mutate(p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate accepted broken program", tc.name)
		}
	}
}

// signalFootprint counts direct invocations of malice-signal APIs.
func signalFootprint(p *Program) int {
	n := 0
	for i := range p.Activities {
		for _, r := range p.Activities[i].Direct {
			if testU.API(r.API).Role == framework.RoleMaliceSignal {
				n++
			}
		}
	}
	return n
}

func TestMalwareUsesMoreSignalAPIs(t *testing.T) {
	g := testGen()
	benignTotal, malTotal := 0, 0
	for seed := int64(0); seed < 40; seed++ {
		benignTotal += signalFootprint(g.Generate(benignSpec(seed)))
		fam := Family(1 + seed%NumFamilies)
		if fam == FamilyLowProfile || fam == FamilyReflectionEvader || fam == FamilyIntentEvader {
			fam = FamilySpyware
		}
		malTotal += signalFootprint(g.Generate(maliciousSpec(seed, fam)))
	}
	if malTotal < benignTotal*4 {
		t.Errorf("signal footprint: malware %d vs benign %d, want clear separation", malTotal, benignTotal)
	}
}

func TestLowProfileFamilyIsQuiet(t *testing.T) {
	g := testGen()
	normal, quiet := 0, 0
	for seed := int64(0); seed < 30; seed++ {
		normal += signalFootprint(g.Generate(maliciousSpec(seed, FamilySpyware)))
		quiet += signalFootprint(g.Generate(maliciousSpec(seed, FamilyLowProfile)))
	}
	if quiet*3 > normal {
		t.Errorf("low-profile footprint %d not clearly below normal %d", quiet, normal)
	}
}

func TestReflectionEvaderHidesAPIs(t *testing.T) {
	g := testGen()
	refl := 0
	for seed := int64(0); seed < 20; seed++ {
		p := g.Generate(maliciousSpec(seed, FamilyReflectionEvader))
		for i := range p.Activities {
			refl += len(p.Activities[i].Reflection)
			for _, r := range p.Activities[i].Reflection {
				if !testU.API(r.API).Hidden {
					t.Fatalf("reflection target %d is not a hidden API", r.API)
				}
			}
		}
	}
	if refl == 0 {
		t.Error("reflection evader produced no reflection calls")
	}
}

func TestIntentEvaderDelegates(t *testing.T) {
	g := testGen()
	sent := 0
	for seed := int64(0); seed < 20; seed++ {
		p := g.Generate(maliciousSpec(seed, FamilyIntentEvader))
		for i := range p.Activities {
			sent += len(p.Activities[i].SendIntents)
		}
	}
	if sent == 0 {
		t.Error("intent evader sends no intents")
	}
}

func TestUpdateAttackHasPayload(t *testing.T) {
	g := testGen()
	found := false
	for seed := int64(0); seed < 10; seed++ {
		p := g.Generate(maliciousSpec(seed, FamilyUpdateAttack))
		if p.Payload == nil || len(p.Payload.Activities) == 0 {
			t.Fatal("update-attack program lacks payload")
		}
		for _, a := range p.Payload.Activities {
			if len(a.Direct) > 0 {
				found = true
			}
		}
		// The payload's APIs must not leak into the static dex.
		d, err := p.Dex(testU)
		if err != nil {
			t.Fatal(err)
		}
		if !d.LoadsDynamicCode() {
			t.Error("update-attack dex lacks load-dex marker")
		}
		refs := make(map[string]bool)
		for _, name := range d.DirectAPIRefs() {
			refs[name] = true
		}
		for _, a := range p.Payload.Activities {
			for _, r := range a.Direct {
				if refs[testU.API(r.API).Name] {
					t.Errorf("payload API %s visible in static dex", testU.API(r.API).Name)
				}
			}
		}
	}
	if !found {
		t.Error("no update-attack payload carried any APIs")
	}
}

func TestManifestDerivation(t *testing.T) {
	g := testGen()
	p := g.Generate(maliciousSpec(3, FamilySMSFraud))
	m, err := p.Manifest(testU)
	if err != nil {
		t.Fatal(err)
	}
	if m.Package != p.PackageName || m.VersionCode != p.Version {
		t.Errorf("manifest identity %s/%d", m.Package, m.VersionCode)
	}
	if len(m.Application.Activities) != len(p.Activities) {
		t.Errorf("declared activities = %d, want %d", len(m.Application.Activities), len(p.Activities))
	}
	if len(m.Permissions) != len(p.Permissions) {
		t.Errorf("permissions = %d, want %d", len(m.Permissions), len(p.Permissions))
	}
	for _, perm := range p.Permissions {
		if !m.RequestsPermission(testU.Permission(perm).Name) {
			t.Errorf("permission %s missing from manifest", testU.Permission(perm).Name)
		}
	}
	if len(p.ReceiverIntents) > 0 && len(m.ReceiverActions()) != len(p.ReceiverIntents) {
		t.Errorf("receiver actions = %d, want %d", len(m.ReceiverActions()), len(p.ReceiverIntents))
	}
}

func TestDexReflectsReferencedActivitiesOnly(t *testing.T) {
	g := testGen()
	for seed := int64(0); seed < 10; seed++ {
		p := g.Generate(benignSpec(seed))
		d, err := p.Dex(testU)
		if err != nil {
			t.Fatal(err)
		}
		classNames := make(map[string]bool)
		for _, c := range d.Classes {
			if c.IsActivity {
				classNames[c.Name] = true
			}
		}
		for i := range p.Activities {
			a := &p.Activities[i]
			if a.Referenced && !classNames[a.Name] {
				t.Errorf("referenced activity %s missing from dex", a.Name)
			}
			if !a.Referenced && classNames[a.Name] {
				t.Errorf("unreferenced activity %s present in dex", a.Name)
			}
		}
	}
}

func TestReferencedFractionNearPaper(t *testing.T) {
	g := testGen()
	declared, referenced := 0, 0
	for seed := int64(0); seed < 300; seed++ {
		p := g.Generate(benignSpec(seed))
		declared += len(p.Activities)
		referenced += p.ReferencedActivityCount()
	}
	frac := float64(referenced) / float64(declared)
	// Paper §4.2: on average 88% of specified activities are referenced.
	if frac < 0.83 || frac < 0 || frac > 0.94 {
		t.Errorf("referenced fraction = %.3f, want ≈ 0.88", frac)
	}
}

func TestPermissionsCoverReflectionTargets(t *testing.T) {
	g := testGen()
	for seed := int64(0); seed < 20; seed++ {
		p := g.Generate(maliciousSpec(seed, FamilyReflectionEvader))
		perms := make(map[framework.PermissionID]bool)
		for _, id := range p.Permissions {
			perms[id] = true
		}
		for i := range p.Activities {
			for _, r := range p.Activities[i].Reflection {
				need := testU.API(r.API).Permission
				if need != framework.NoPermission && !perms[need] {
					t.Fatalf("seed %d: hidden API %d used without its permission", seed, r.API)
				}
			}
		}
	}
}

func TestBinomialMatchesMean(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []struct {
		n int
		p float64
	}{{10, 0.5}, {1000, 0.001}, {1000, 0.999}, {5000, 0.3}, {50, 0.02}}
	for _, tc := range cases {
		sum := 0
		const trials = 2000
		for i := 0; i < trials; i++ {
			k := binomial(rng, tc.n, tc.p)
			if k < 0 || k > tc.n {
				t.Fatalf("binomial(%d,%f) = %d out of range", tc.n, tc.p, k)
			}
			sum += k
		}
		mean := float64(sum) / trials
		want := float64(tc.n) * tc.p
		sd := math.Sqrt(float64(tc.n)*tc.p*(1-tc.p)/trials) + 0.05
		if math.Abs(mean-want) > 6*sd+0.02*want {
			t.Errorf("binomial(%d,%f) mean = %.2f, want ≈ %.2f", tc.n, tc.p, mean, want)
		}
	}
}

func TestPoissonMatchesMean(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, lambda := range []float64{0.5, 5, 50, 500} {
		sum := 0
		const trials = 2000
		for i := 0; i < trials; i++ {
			sum += poisson(rng, lambda)
		}
		mean := float64(sum) / trials
		if math.Abs(mean-lambda) > 6*math.Sqrt(lambda/trials)+0.02*lambda {
			t.Errorf("poisson(%f) mean = %.2f", lambda, mean)
		}
	}
}

func TestPickDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(nRaw, kRaw uint8) bool {
		n := int(nRaw%100) + 1
		k := int(kRaw) % (n + 5)
		got := pickDistinct(rng, n, k)
		wantLen := k
		if k > n {
			wantLen = n
		}
		if len(got) != wantLen {
			return false
		}
		seen := make(map[int]bool)
		for _, v := range got {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEmulatorCheckPrevalence(t *testing.T) {
	g := testGen()
	const n = 400
	benignChecks, malChecks := 0, 0
	for seed := int64(0); seed < n; seed++ {
		if g.Generate(benignSpec(seed)).EmulatorChecks != 0 {
			benignChecks++
		}
		if g.Generate(maliciousSpec(seed, Family(1+seed%NumFamilies))).EmulatorChecks != 0 {
			malChecks++
		}
	}
	if frac := float64(benignChecks) / n; frac > 0.16 {
		t.Errorf("benign check prevalence %.3f too high", frac)
	}
	if frac := float64(malChecks) / n; frac < 0.4 {
		t.Errorf("malware check prevalence %.3f too low", frac)
	}
}
