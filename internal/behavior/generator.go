package behavior

import (
	"fmt"
	"math/rand"
	"sort"

	"apichecker/internal/framework"
)

// Tuning constants for program generation. Calibrated so that corpus-level
// statistics match §4.2-§4.3 (see internal/experiments for the
// measurements).
const (
	// exactRateThreshold: APIs whose class rate is at least this are
	// sampled with an exact per-API Bernoulli draw; colder APIs go
	// through bucketed binomial sampling.
	exactRateThreshold = 0.15

	// rateJitterSigma spreads per-app invocation counts (lognormal).
	rateJitterSigma = 0.35

	// appVolumeSigma spreads whole-app invocation volume.
	appVolumeSigma = 0.18

	// familyAffineMult boosts a malware family's affine signal APIs;
	// familyOtherMult damps the rest. Commodity signal APIs (shared by
	// all families) keep their base rate.
	familyAffineMult = 2.0
	familyOtherMult  = 0.55

	// categoryBoostMult raises a benign category's characteristic
	// guarded APIs (the source of false-positive pressure).
	categoryBoostMult = 3.0

	// maxRate caps any per-app usage probability.
	maxRate = 0.97

	// Activity reachability mixture (§4.2: RAC ≈ 76.5% at 5K events,
	// ≈ 86% at 100K, 88% of declared activities referenced).
	reachEasyFrac    = 0.74
	reachSlowFrac    = 0.12
	reachEasyRateMin = 0.8 // per 1K events
	reachEasyRateMax = 6.0
	reachSlowRateMin = 0.012
	reachSlowRateMax = 0.04
	referencedFrac   = 0.88

	// Evasion traits.
	reflectionSwapFrac = 0.60 // fraction of signal APIs a reflection evader hides
	intentSwapFrac     = 0.55 // fraction of signal APIs an intent evader delegates
	lowProfileMult     = 0.12

	// Emulator-detection prevalence (§4.2: 86.6% of apps behave
	// identically on the stock emulator => ~13.4% run probes).
	benignCheckRate  = 0.085
	malwareCheckRate = 0.60
	sensorNeedRate   = 0.014 // apps needing live sensor data

	// Gray apps: benign apps bundling aggressive ad/analytics SDKs that
	// touch sensitive surface heavily. They are the corpus's false-
	// positive pressure (the paper's production precision sits at
	// 98.5-99.0%, not 100%).
	grayAppRate  = 0.02
	grayAPIBoost = 8.0
	grayAPICap   = 0.45

	// Lightweight-engine incompatibility (§5.1: <1% of apps).
	crashBiasMax = 0.02
)

// Generator derives per-app Programs from a framework universe. It is
// immutable after construction and safe for concurrent use.
type Generator struct {
	u *framework.Universe

	// exact APIs get a per-app Bernoulli draw.
	exact []framework.APIID

	// cold APIs are bucketed by per-class rate for binomial sampling.
	benignPools []pool
	malicePools []pool

	// hidden APIs indexable as reflection targets; hiddenFor maps a
	// visible signal API to its hidden counterpart.
	hidden    []framework.APIID
	hiddenFor map[framework.APIID]framework.APIID

	systemIntents []framework.IntentID
	appIntents    []framework.IntentID
}

// pool is a set of APIs sharing one sampled usage rate.
type pool struct {
	apis []framework.APIID
	rate float64
}

// NewGenerator precomputes sampling pools for the universe. Rebuild the
// generator after Universe.Evolve to pick up new APIs.
func NewGenerator(u *framework.Universe) *Generator {
	g := &Generator{u: u, hiddenFor: make(map[framework.APIID]framework.APIID)}

	type coldAPI struct {
		id   framework.APIID
		rate float64
	}
	var coldBenign, coldMalice []coldAPI

	for i := range u.APIs() {
		a := &u.APIs()[i]
		if a.Hidden {
			g.hidden = append(g.hidden, a.ID)
			continue
		}
		restricted := a.Permission != framework.NoPermission &&
			u.Permission(a.Permission).Level.Restrictive()
		exact := a.Role == framework.RoleMaliceSignal ||
			a.Role == framework.RoleBenignCommon ||
			restricted || a.Category != framework.CategoryNone ||
			a.BenignRate >= exactRateThreshold || a.MaliceRate >= exactRateThreshold
		if exact {
			g.exact = append(g.exact, a.ID)
			continue
		}
		if a.BenignRate > 0 {
			coldBenign = append(coldBenign, coldAPI{a.ID, a.BenignRate})
		}
		if a.MaliceRate > 0 {
			coldMalice = append(coldMalice, coldAPI{a.ID, a.MaliceRate})
		}
	}

	buckets := func(cold []coldAPI) []pool {
		sort.Slice(cold, func(i, j int) bool { return cold[i].rate < cold[j].rate })
		const nBuckets = 24
		if len(cold) == 0 {
			return nil
		}
		per := (len(cold) + nBuckets - 1) / nBuckets
		var pools []pool
		for start := 0; start < len(cold); start += per {
			end := start + per
			if end > len(cold) {
				end = len(cold)
			}
			var p pool
			sum := 0.0
			for _, c := range cold[start:end] {
				p.apis = append(p.apis, c.id)
				sum += c.rate
			}
			p.rate = sum / float64(len(p.apis))
			pools = append(pools, p)
		}
		return pools
	}
	g.benignPools = buckets(coldBenign)
	g.malicePools = buckets(coldMalice)

	// Pair each signal API with a deterministic hidden counterpart that
	// requires the same kind of access: the reflection evasion target.
	if len(g.hidden) > 0 {
		for _, id := range g.exact {
			a := u.API(id)
			if a.Role == framework.RoleMaliceSignal {
				g.hiddenFor[id] = g.hidden[int(uint32(id)*2654435761)%len(g.hidden)]
			}
		}
	}

	for _, in := range u.Intents() {
		if in.System {
			g.systemIntents = append(g.systemIntents, in.ID)
		} else {
			g.appIntents = append(g.appIntents, in.ID)
		}
	}
	return g
}

// Universe returns the generator's universe.
func (g *Generator) Universe() *framework.Universe { return g.u }

// familyGroup assigns each signal API to a family-affinity group:
// 0..NumFamilies-1 are family-specific, values >= NumFamilies are
// "commodity" capability shared by all families.
func familyGroup(id framework.APIID) int {
	return int(uint32(id)*0x9e3779b9>>8) % (NumFamilies + 2)
}

// categoryGroup assigns guarded APIs to the benign category that uses them
// legitimately.
func categoryGroup(id framework.APIID) Category {
	return Category(uint32(id) * 2246822519 >> 16 % NumCategories)
}

// isGray deterministically marks grayAppRate of benign apps as carrying an
// aggressive ad/analytics SDK: heavy sensitive-API usage, hoarded
// permissions and broad broadcast registration. Grayness is a property of
// the app (its seed), so it consistently shapes APIs, permissions and
// intents.
func isGray(p *Program) bool {
	if p.Label != Benign {
		return false
	}
	h := uint64(p.Seed) * 0xff51afd7ed558ccd
	return float64(h%100000)/100000 < grayAppRate
}

// Spec identifies one app to generate.
type Spec struct {
	PackageName string
	Version     int
	Seed        int64
	Label       Label
	Family      Family   // meaningful when Label == Malicious
	Category    Category // meaningful when Label == Benign
}

// Generate builds the deterministic Program for spec.
func (g *Generator) Generate(spec Spec) *Program {
	rng := rand.New(rand.NewSource(spec.Seed))
	p := &Program{
		PackageName: spec.PackageName,
		Version:     spec.Version,
		Seed:        spec.Seed,
		Label:       spec.Label,
		Family:      spec.Family,
		Category:    spec.Category,
	}
	if spec.Label == Benign {
		p.Family = FamilyNone
	}

	used := g.sampleUsage(rng, p)
	g.buildActivities(rng, p, used)
	g.assignIntents(rng, p)
	g.derivePermissions(rng, p)
	g.assignTraits(rng, p)
	return p
}

// usedAPI is one API the app invokes, with its per-1K-events rate.
type usedAPI struct {
	id         framework.APIID
	rate       float64
	reflection bool               // invoked via reflection (hidden API)
	viaIntent  framework.IntentID // action delegated instead (intent evader); NoIntent if unused
	delegated  bool
}

// usageRate returns the per-app usage probability of an API for the spec's
// class, with family/category modulation. gray marks a benign app carrying
// an aggressive ad SDK.
func (g *Generator) usageRate(a *framework.API, p *Program, gray bool) float64 {
	if p.Label == Benign {
		r := a.BenignRate
		guarded := a.Category != framework.CategoryNone ||
			(a.Permission != framework.NoPermission && g.u.Permission(a.Permission).Level.Restrictive())
		if guarded && categoryGroup(a.ID) == p.Category {
			r = clampRate(r*categoryBoostMult, 0.35)
		}
		if gray && a.Role == framework.RoleMaliceSignal {
			r = clampRate(r*grayAPIBoost, grayAPICap)
		}
		return r
	}
	r := a.MaliceRate
	if a.Role == framework.RoleMaliceSignal {
		switch grp := familyGroup(a.ID); {
		case grp >= NumFamilies:
			// commodity capability: base rate
		case grp == int(p.Family)-1:
			r *= familyAffineMult
		default:
			r *= familyOtherMult
		}
		if p.Family == FamilyLowProfile {
			r *= lowProfileMult
		}
	}
	return clampRate(r, maxRate)
}

// sampleUsage draws the set of APIs the app uses, with rates.
func (g *Generator) sampleUsage(rng *rand.Rand, p *Program) []usedAPI {
	volume := lognorm(rng, appVolumeSigma)
	gray := isGray(p)
	var used []usedAPI
	add := func(id framework.APIID, popularity float64) {
		rate := popularity * volume * lognorm(rng, rateJitterSigma) / 5.0 // per 1K events at 5K-event calibration
		used = append(used, usedAPI{id: id, rate: rate, viaIntent: framework.IntentID(-1)})
	}

	for _, id := range g.exact {
		a := g.u.API(id)
		if rng.Float64() < g.usageRate(a, p, gray) {
			add(id, a.Popularity)
		}
	}

	pools := g.benignPools
	if p.Label == Malicious {
		pools = g.malicePools
	}
	for _, pl := range pools {
		k := binomial(rng, len(pl.apis), pl.rate)
		for _, idx := range pickDistinct(rng, len(pl.apis), k) {
			add(pl.apis[idx], g.u.API(pl.apis[idx]).Popularity)
		}
	}

	// Evasion rewriting for malicious apps: hide or delegate part of the
	// signal footprint.
	if p.Label == Malicious {
		for i := range used {
			a := g.u.API(used[i].id)
			if a.Role != framework.RoleMaliceSignal {
				continue
			}
			switch p.Family {
			case FamilyReflectionEvader:
				if h, ok := g.hiddenFor[used[i].id]; ok && rng.Float64() < reflectionSwapFrac {
					used[i].reflection = true
					used[i].id = h
				}
			case FamilyIntentEvader:
				if len(g.systemIntents) > 0 && rng.Float64() < intentSwapFrac {
					used[i].delegated = true
					used[i].viaIntent = g.systemIntents[int(uint32(used[i].id))%len(g.systemIntents)]
				}
			}
		}
	}
	return used
}

// buildActivities lays the used APIs out over a plausible activity graph.
func (g *Generator) buildActivities(rng *rand.Rand, p *Program, used []usedAPI) {
	nAct := 3 + poisson(rng, 7)
	if nAct > 40 {
		nAct = 40
	}
	acts := make([]ActivityBehavior, nAct)
	for i := range acts {
		name := fmt.Sprintf("%s.Activity%d", p.PackageName, i)
		if i == 0 {
			name = p.PackageName + ".MainActivity"
		}
		acts[i] = ActivityBehavior{Name: name}
		switch {
		case i == 0:
			acts[i].Referenced = true
			acts[i].ReachRate = reachEasyRateMax // launcher starts immediately
		case rng.Float64() >= referencedFrac:
			// declared but never referenced by code
			acts[i].Referenced = false
		default:
			acts[i].Referenced = true
			switch r := rng.Float64(); {
			case r < reachEasyFrac:
				acts[i].ReachRate = reachEasyRateMin + rng.Float64()*(reachEasyRateMax-reachEasyRateMin)
			case r < reachEasyFrac+reachSlowFrac:
				acts[i].ReachRate = reachSlowRateMin + rng.Float64()*(reachSlowRateMax-reachSlowRateMin)
			default:
				acts[i].ReachRate = 0 // login wall, unreachable by Monkey
			}
		}
	}

	// Reachable activity indexes, launcher-favoured.
	var reachable []int
	for i := range acts {
		if acts[i].Referenced && acts[i].ReachRate > 0 {
			reachable = append(reachable, i)
		}
	}
	place := func() *ActivityBehavior {
		if rng.Float64() < 0.35 {
			return &acts[0]
		}
		return &acts[reachable[rng.Intn(len(reachable))]]
	}

	// Update-attack apps move most of their signal footprint into a
	// dynamically loaded payload, invisible to the manifest and the dex.
	var payloadActs []ActivityBehavior
	usePayload := p.Label == Malicious && p.Family == FamilyUpdateAttack
	if usePayload {
		payloadActs = []ActivityBehavior{{
			Name:             p.PackageName + ".payload.Dropper",
			Referenced:       true,
			ReachRate:        reachEasyRateMax,
			MaliciousPayload: true,
		}}
	}

	for _, ua := range used {
		a := g.u.API(ua.id)
		signalish := a.Role == framework.RoleMaliceSignal || ua.reflection
		target := place()
		if p.Label == Malicious && signalish {
			if usePayload && rng.Float64() < 0.8 {
				target = &payloadActs[0]
			} else {
				// Malicious behaviour lives in reachable
				// activities and is marked for
				// emulation-detection suppression.
				target.MaliciousPayload = true
			}
		}
		switch {
		case ua.delegated:
			target.SendIntents = append(target.SendIntents, ua.viaIntent)
		case ua.reflection:
			target.Reflection = append(target.Reflection, APIRate{API: ua.id, Rate: ua.rate})
		default:
			target.Direct = append(target.Direct, APIRate{API: ua.id, Rate: ua.rate})
		}
	}

	p.Activities = acts
	if usePayload {
		p.Payload = &Payload{Activities: payloadActs}
	}
}

// assignIntents populates receiver registrations and extra runtime sends.
func (g *Generator) assignIntents(rng *rand.Rand, p *Program) {
	sysRate, appRate := 0.025, 0.10
	if isGray(p) {
		sysRate = 0.12
	}
	if p.Label == Malicious {
		sysRate = 0.20
		if p.Family == FamilyIntentEvader {
			sysRate = 0.40
		}
		if p.Family == FamilyLowProfile {
			sysRate = 0.05
		}
		appRate = 0.12
	}
	for _, id := range g.systemIntents {
		rate := sysRate
		// Malware camps on characteristic system broadcasts (SMS
		// interceptors on SMS_RECEIVED, boot persistence on
		// BOOT_COMPLETED, admin hijackers on DEVICE_ADMIN_ENABLED);
		// each broadcast group is shared by a couple of families,
		// concentrating the intent-side signal of §4.5.
		if p.Label == Malicious && int(uint32(id)*40503)%5 == (int(p.Family)-1)%5 {
			rate = clampRate(rate*8.0, 0.95)
		}
		if rng.Float64() < rate {
			p.ReceiverIntents = append(p.ReceiverIntents, id)
		}
	}
	// A few runtime intent sends on the launcher (ordinary navigation).
	for _, id := range g.appIntents {
		if rng.Float64() < appRate {
			p.Activities[0].SendIntents = append(p.Activities[0].SendIntents, id)
		}
	}
}

// derivePermissions requests everything the program's API usage needs plus
// class-dependent over-requesting.
func (g *Generator) derivePermissions(rng *rand.Rand, p *Program) {
	need := make(map[framework.PermissionID]bool)
	addAPI := func(id framework.APIID) {
		if perm := g.u.API(id).Permission; perm != framework.NoPermission {
			need[perm] = true
		}
	}
	acts := p.Activities
	if p.Payload != nil {
		acts = append(append([]ActivityBehavior{}, acts...), p.Payload.Activities...)
	}
	for i := range acts {
		for _, r := range acts[i].Direct {
			addAPI(r.API)
		}
		for _, r := range acts[i].Reflection {
			addAPI(r.API) // reflection cannot bypass the permission (§4.5)
		}
	}
	// Over-request: malware hoards dangerous permissions well beyond its
	// visible API usage (the manifest-side signal that makes "P"
	// features powerful in §4.5); benign apps over-request only
	// occasionally. Low-profile malware keeps its manifest clean too.
	overRate := 0.01
	if isGray(p) {
		overRate = 0.12
	}
	if p.Label == Malicious {
		switch p.Family {
		case FamilyIntentEvader, FamilyReflectionEvader:
			// Evaders still need the permissions backing the
			// actions they hide, and hoard extras to keep the
			// hidden payload flexible.
			overRate = 0.38
		case FamilyLowProfile:
			overRate = 0.03
		default:
			overRate = 0.24
		}
	}
	for _, perm := range g.u.Permissions() {
		if perm.Level.Restrictive() && rng.Float64() < overRate {
			need[perm.ID] = true
		}
	}
	// Everyone asks for the basics.
	if id, ok := g.u.LookupPermission("android.permission.INTERNET"); ok {
		need[id] = true
	}
	p.Permissions = make([]framework.PermissionID, 0, len(need))
	for id := range need {
		p.Permissions = append(p.Permissions, id)
	}
	sort.Slice(p.Permissions, func(i, j int) bool { return p.Permissions[i] < p.Permissions[j] })
}

// assignTraits sets emulator detection, sensor needs, native code and
// lightweight-engine crash bias.
func (g *Generator) assignTraits(rng *rand.Rand, p *Program) {
	checkRate := benignCheckRate
	if p.Label == Malicious {
		checkRate = malwareCheckRate
	}
	if rng.Float64() < checkRate {
		for _, bit := range []uint8{CheckBuildProps, CheckInputTiming, CheckSensors, CheckHookArtifacts} {
			if rng.Float64() < 0.6 {
				p.EmulatorChecks |= bit
			}
		}
		if p.EmulatorChecks == 0 {
			p.EmulatorChecks = CheckBuildProps
		}
		p.SuppressOnEmulator = p.Label == Malicious || rng.Float64() < 0.3
	}
	p.RequiresRealSensors = rng.Float64() < sensorNeedRate
	if rng.Float64() < 0.25 {
		p.NativeLibs = append(p.NativeLibs, "lib/armeabi-v7a/lib"+p.PackageName[max(0, len(p.PackageName)-6):]+".so")
	}
	if rng.Float64() < 0.4 {
		p.CrashBias = rng.Float64() * crashBiasMax
	}
}
