package behavior

import (
	"math"
	"math/rand"
)

// poisson samples a Poisson(lambda) variate. Knuth's product method for
// small lambda, a rounded normal approximation for large lambda.
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda < 30 {
		l := math.Exp(-lambda)
		k := 0
		p := 1.0
		for {
			p *= rng.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	v := lambda + math.Sqrt(lambda)*rng.NormFloat64()
	if v < 0 {
		return 0
	}
	return int(math.Round(v))
}

// binomial samples a Binomial(n, p) variate, switching between exact
// Bernoulli trials, a Poisson approximation (rare events), and a normal
// approximation (bulk regime).
func binomial(rng *rand.Rand, n int, p float64) int {
	switch {
	case n <= 0 || p <= 0:
		return 0
	case p >= 1:
		return n
	case n < 32:
		k := 0
		for i := 0; i < n; i++ {
			if rng.Float64() < p {
				k++
			}
		}
		return k
	}
	np := float64(n) * p
	nq := float64(n) * (1 - p)
	switch {
	case np < 30:
		k := poisson(rng, np)
		if k > n {
			return n
		}
		return k
	case nq < 30:
		k := n - poisson(rng, nq)
		if k < 0 {
			return 0
		}
		return k
	default:
		v := np + math.Sqrt(np*(1-p))*rng.NormFloat64()
		k := int(math.Round(v))
		if k < 0 {
			return 0
		}
		if k > n {
			return n
		}
		return k
	}
}

// pickDistinct returns k distinct integers in [0, n), unsorted. It uses
// rejection sampling when k is small relative to n and complement selection
// when k is close to n.
func pickDistinct(rng *rand.Rand, n, k int) []int {
	if k <= 0 || n <= 0 {
		return nil
	}
	if k >= n {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	if k > n/2 {
		// Choose the complement instead and invert.
		drop := make(map[int]bool, n-k)
		for len(drop) < n-k {
			drop[rng.Intn(n)] = true
		}
		out := make([]int, 0, k)
		for i := 0; i < n; i++ {
			if !drop[i] {
				out = append(out, i)
			}
		}
		return out
	}
	seen := make(map[int]bool, k)
	out := make([]int, 0, k)
	for len(out) < k {
		v := rng.Intn(n)
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// lognorm returns a lognormal multiplier with median 1 and the given sigma.
func lognorm(rng *rand.Rand, sigma float64) float64 {
	return math.Exp(rng.NormFloat64() * sigma)
}

// clamp01 clamps v into [0, hi].
func clampRate(v, hi float64) float64 {
	if v < 0 {
		return 0
	}
	if v > hi {
		return hi
	}
	return v
}
