package behavior

import (
	"fmt"

	"apichecker/internal/dex"
	"apichecker/internal/framework"
	"apichecker/internal/manifest"
)

// Manifest derives the AndroidManifest view of the program: identity,
// requested permissions, declared activities (referenced or not), and
// receiver intent filters.
func (p *Program) Manifest(u *framework.Universe) (*manifest.Manifest, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	m := manifest.New(p.PackageName, p.Version)
	m.Application.Label = p.PackageName
	for _, perm := range p.Permissions {
		m.AddPermission(u.Permission(perm).Name)
	}
	for i := range p.Activities {
		a := manifest.Activity{Name: p.Activities[i].Name}
		if i == 0 {
			a.Exported = true
			a.Filters = []manifest.IntentFilter{{Actions: []manifest.Action{
				{Name: "android.intent.action.MAIN"},
			}}}
		}
		m.Application.Activities = append(m.Application.Activities, a)
	}
	if len(p.ReceiverIntents) > 0 {
		r := manifest.Receiver{Name: p.PackageName + ".SystemReceiver"}
		var f manifest.IntentFilter
		for _, id := range p.ReceiverIntents {
			f.Actions = append(f.Actions, manifest.Action{Name: u.Intent(id).Name})
		}
		r.Filters = []manifest.IntentFilter{f}
		m.Application.Receivers = append(m.Application.Receivers, r)
	}
	return m, nil
}

// Dex derives the statically visible code view of the program. Direct API
// calls appear with their real names; reflection sites carry obfuscated
// tokens; payload behaviour is represented only by a CallLoadDex site.
func (p *Program) Dex(u *framework.Universe) (*dex.File, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	var f dex.File
	f.NativeLibs = append(f.NativeLibs, p.NativeLibs...)

	for i := range p.Activities {
		a := &p.Activities[i]
		if !a.Referenced {
			continue // declared in the manifest but absent from code paths
		}
		c := dex.Class{Name: a.Name, IsActivity: true}
		onCreate := dex.Method{Name: "onCreate"}
		for _, r := range a.Direct {
			onCreate.Calls = append(onCreate.Calls, dex.CallSite{
				Kind:   dex.CallDirect,
				Target: u.API(r.API).Name,
			})
		}
		for _, r := range a.Reflection {
			onCreate.Calls = append(onCreate.Calls, dex.CallSite{
				Kind:   dex.CallReflection,
				Target: obfuscate(r.API, p.Seed),
			})
		}
		for _, in := range a.SendIntents {
			onCreate.Calls = append(onCreate.Calls, dex.CallSite{
				Kind:   dex.CallIntentSend,
				Target: u.Intent(in).Name,
			})
		}
		// Reference the next referenced activity so the static
		// reference graph matches the Referenced flags.
		if next := p.nextReferenced(i); next >= 0 {
			onCreate.Calls = append(onCreate.Calls, dex.CallSite{
				Kind:   dex.CallStartActivity,
				Target: p.Activities[next].Name,
			})
		}
		if p.Payload != nil && i == 0 {
			onCreate.Calls = append(onCreate.Calls, dex.CallSite{
				Kind:   dex.CallLoadDex,
				Target: "assets/update.dex",
			})
		}
		c.Methods = append(c.Methods, onCreate)
		f.Classes = append(f.Classes, c)
	}
	// A helper class keeps non-activity code plausible.
	f.Classes = append(f.Classes, dex.Class{
		Name:    p.PackageName + ".Util",
		Methods: []dex.Method{{Name: "init"}},
	})
	return &f, nil
}

// nextReferenced returns the index of the next referenced activity after i
// (wrapping, excluding i itself and the launcher's self-reference), or -1.
func (p *Program) nextReferenced(i int) int {
	for step := 1; step < len(p.Activities); step++ {
		j := (i + step) % len(p.Activities)
		if j != i && p.Activities[j].Referenced {
			return j
		}
	}
	return -1
}

// obfuscate produces the opaque reflection token static analysis sees
// instead of the hidden API's real name.
func obfuscate(id framework.APIID, seed int64) string {
	h := uint64(id)*0x9e3779b97f4a7c15 ^ uint64(seed)
	return fmt.Sprintf("obf$%08x", uint32(h>>13))
}
