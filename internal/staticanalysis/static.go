// Package staticanalysis extracts features from an APK without running it:
// manifest metadata, statically visible API references, intent actions,
// and the referenced-activity scan behind the RAC metric (§4.2).
//
// It also exposes the static feature views that the baseline detectors in
// Table 1 consume (Drebin- and DroidAPIMiner-style pipelines work entirely
// from this package's output). Static analysis is blind to reflection
// targets and dynamically loaded code — the limitation that motivates the
// paper's dynamic approach.
package staticanalysis

import (
	"fmt"
	"sort"

	"apichecker/internal/apk"
	"apichecker/internal/framework"
)

// Report is the static view of one APK.
type Report struct {
	Package     string
	VersionCode int

	// DeclaredActivities and ReferencedActivities drive the RAC
	// denominator scan: referenced = declared ∩ mentioned-in-code
	// (launcher included via its MAIN intent filter).
	DeclaredActivities   []string
	ReferencedActivities []string

	// Permissions are the requested permission ids resolvable in the
	// universe; UnknownPermissions counts unresolvable names.
	Permissions        []framework.PermissionID
	UnknownPermissions int

	// DirectAPIs are the framework APIs referenced by direct call
	// sites; UnknownAPIs counts unresolvable names (obfuscated targets
	// are *not* counted here — they appear as reflection sites).
	DirectAPIs  []framework.APIID
	UnknownAPIs int

	// IntentActions is the union of receiver intent filters and static
	// intent-send sites.
	IntentActions []framework.IntentID

	// Evasion-surface indicators.
	UsesReflection   bool
	LoadsDynamicCode bool
	NativeLibCount   int
}

// ReferencedActivityRatio returns |referenced| / |declared| (§4.2 measures
// 88% on average across the corpus).
func (r *Report) ReferencedActivityRatio() float64 {
	if len(r.DeclaredActivities) == 0 {
		return 0
	}
	return float64(len(r.ReferencedActivities)) / float64(len(r.DeclaredActivities))
}

// Analyze scans a parsed APK against the universe.
func Analyze(a *apk.APK, u *framework.Universe) (*Report, error) {
	if a == nil || a.Manifest == nil || a.Dex == nil {
		return nil, fmt.Errorf("staticanalysis: incomplete APK")
	}
	r := &Report{
		Package:            a.Manifest.Package,
		VersionCode:        a.Manifest.VersionCode,
		DeclaredActivities: a.Manifest.ActivityNames(),
		UsesReflection:     a.Dex.UsesReflection(),
		LoadsDynamicCode:   a.Dex.LoadsDynamicCode(),
		NativeLibCount:     len(a.Dex.NativeLibs),
	}

	declared := make(map[string]bool, len(r.DeclaredActivities))
	for _, name := range r.DeclaredActivities {
		declared[name] = true
	}
	seen := make(map[string]bool)
	// The launcher (MAIN intent filter) is referenced by definition.
	for _, act := range a.Manifest.Application.Activities {
		for _, f := range act.Filters {
			for _, action := range f.Actions {
				if action.Name == "android.intent.action.MAIN" && !seen[act.Name] {
					seen[act.Name] = true
					r.ReferencedActivities = append(r.ReferencedActivities, act.Name)
				}
			}
		}
	}
	for _, name := range a.Dex.ReferencedActivities() {
		if declared[name] && !seen[name] {
			seen[name] = true
			r.ReferencedActivities = append(r.ReferencedActivities, name)
		}
	}
	sort.Strings(r.ReferencedActivities)

	for _, name := range a.Manifest.PermissionNames() {
		if id, ok := u.LookupPermission(name); ok {
			r.Permissions = append(r.Permissions, id)
		} else {
			r.UnknownPermissions++
		}
	}
	sort.Slice(r.Permissions, func(i, j int) bool { return r.Permissions[i] < r.Permissions[j] })

	for _, name := range a.Dex.DirectAPIRefs() {
		if id, ok := u.LookupAPI(name); ok {
			r.DirectAPIs = append(r.DirectAPIs, id)
		} else {
			r.UnknownAPIs++
		}
	}
	sort.Slice(r.DirectAPIs, func(i, j int) bool { return r.DirectAPIs[i] < r.DirectAPIs[j] })

	intentSeen := make(map[framework.IntentID]bool)
	addIntent := func(name string) {
		if id, ok := u.LookupIntent(name); ok && !intentSeen[id] {
			intentSeen[id] = true
			r.IntentActions = append(r.IntentActions, id)
		}
	}
	for _, name := range a.Manifest.ReceiverActions() {
		addIntent(name)
	}
	for _, name := range a.Dex.IntentActions() {
		addIntent(name)
	}
	sort.Slice(r.IntentActions, func(i, j int) bool { return r.IntentActions[i] < r.IntentActions[j] })
	return r, nil
}
