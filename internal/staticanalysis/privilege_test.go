package staticanalysis

import (
	"testing"

	"apichecker/internal/apk"
	"apichecker/internal/behavior"
	"apichecker/internal/framework"
)

func privilegeOf(t *testing.T, seed int64, label behavior.Label, fam behavior.Family) *PrivilegeReport {
	t.Helper()
	p := testGen.Generate(behavior.Spec{
		PackageName: "com.priv.test", Version: 1, Seed: seed,
		Label: label, Family: fam, Category: behavior.CategoryFinance,
	})
	_, parsed, err := apk.BuildAndParse(p, testU)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Analyze(parsed, testU)
	if err != nil {
		t.Fatal(err)
	}
	return AnalyzePrivilege(r, testU)
}

func TestPrivilegePartition(t *testing.T) {
	pr := privilegeOf(t, 1, behavior.Benign, behavior.FamilyNone)
	if len(pr.Justified)+len(pr.Unjustified) != len(pr.Requested) {
		t.Errorf("partition broken: %d + %d != %d",
			len(pr.Justified), len(pr.Unjustified), len(pr.Requested))
	}
	ratio := pr.OverPrivilegeRatio()
	if ratio < 0 || ratio > 1 {
		t.Errorf("ratio = %f", ratio)
	}
	seen := map[framework.PermissionID]bool{}
	for _, id := range append(append([]framework.PermissionID{}, pr.Justified...), pr.Unjustified...) {
		if seen[id] {
			t.Errorf("permission %d appears twice", id)
		}
		seen[id] = true
	}
}

func TestEvadersLookOverPrivileged(t *testing.T) {
	var benignUnjust, evaderUnjust int
	const n = 40
	for seed := int64(0); seed < n; seed++ {
		benignUnjust += privilegeOf(t, seed, behavior.Benign, behavior.FamilyNone).UnjustifiedRestrictive
		evaderUnjust += privilegeOf(t, seed, behavior.Malicious, behavior.FamilyReflectionEvader).UnjustifiedRestrictive
	}
	// Reflection evaders hide API use but cannot hide the permissions
	// backing it: their manifests look heavily over-privileged.
	if evaderUnjust <= benignUnjust*2 {
		t.Errorf("evader unjustified-restrictive %d not ≫ benign %d", evaderUnjust, benignUnjust)
	}
}

func TestEmptyPrivilegeReport(t *testing.T) {
	pr := AnalyzePrivilege(&Report{}, testU)
	if pr.OverPrivilegeRatio() != 0 || len(pr.Requested) != 0 {
		t.Errorf("empty report: %+v", pr)
	}
}
