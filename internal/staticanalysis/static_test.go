package staticanalysis

import (
	"testing"

	"apichecker/internal/apk"
	"apichecker/internal/behavior"
	"apichecker/internal/framework"
	"apichecker/internal/manifest"
)

var (
	testU   = framework.MustGenerate(framework.TestConfig(3000))
	testGen = behavior.NewGenerator(testU)
)

func analyzed(t *testing.T, seed int64, label behavior.Label, fam behavior.Family) (*behavior.Program, *Report) {
	t.Helper()
	p := testGen.Generate(behavior.Spec{
		PackageName: "com.static.test", Version: 1, Seed: seed,
		Label: label, Family: fam, Category: behavior.CategoryNews,
	})
	_, parsed, err := apk.BuildAndParse(p, testU)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Analyze(parsed, testU)
	if err != nil {
		t.Fatal(err)
	}
	return p, r
}

func TestAnalyzeBasics(t *testing.T) {
	p, r := analyzed(t, 1, behavior.Benign, behavior.FamilyNone)
	if r.Package != p.PackageName || r.VersionCode != p.Version {
		t.Errorf("identity %s/%d", r.Package, r.VersionCode)
	}
	if len(r.DeclaredActivities) != len(p.Activities) {
		t.Errorf("declared = %d, want %d", len(r.DeclaredActivities), len(p.Activities))
	}
	if got, want := len(r.ReferencedActivities), p.ReferencedActivityCount(); got != want {
		t.Errorf("referenced = %d, want %d", got, want)
	}
	if len(r.Permissions) != len(p.Permissions) || r.UnknownPermissions != 0 {
		t.Errorf("permissions = %d (unknown %d), want %d",
			len(r.Permissions), r.UnknownPermissions, len(p.Permissions))
	}
	if r.UnknownAPIs != 0 {
		t.Errorf("unknown APIs = %d, want 0", r.UnknownAPIs)
	}
	ratio := r.ReferencedActivityRatio()
	if ratio <= 0 || ratio > 1 {
		t.Errorf("referenced ratio = %f", ratio)
	}
}

func TestStaticSeesDirectAPIs(t *testing.T) {
	p, r := analyzed(t, 2, behavior.Malicious, behavior.FamilySpyware)
	want := make(map[framework.APIID]bool)
	for i := range p.Activities {
		if !p.Activities[i].Referenced {
			continue
		}
		for _, rate := range p.Activities[i].Direct {
			want[rate.API] = true
		}
	}
	got := make(map[framework.APIID]bool)
	for _, id := range r.DirectAPIs {
		got[id] = true
	}
	for id := range want {
		if !got[id] {
			t.Errorf("direct API %d missing from static report", id)
		}
	}
}

func TestStaticBlindToReflectionTargets(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		p, r := analyzed(t, seed, behavior.Malicious, behavior.FamilyReflectionEvader)
		hasReflection := false
		for i := range p.Activities {
			if len(p.Activities[i].Reflection) > 0 && p.Activities[i].Referenced {
				hasReflection = true
			}
		}
		if !hasReflection {
			continue
		}
		if !r.UsesReflection {
			t.Error("reflection sites not flagged")
		}
		// The hidden targets must not be resolvable.
		for _, id := range r.DirectAPIs {
			if testU.API(id).Hidden {
				t.Errorf("hidden API %d leaked into static view", id)
			}
		}
		return
	}
	t.Skip("no reflecting program generated")
}

func TestStaticBlindToPayload(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		p, r := analyzed(t, seed, behavior.Malicious, behavior.FamilyUpdateAttack)
		if p.Payload == nil {
			continue
		}
		if !r.LoadsDynamicCode {
			t.Error("dynamic code loading not flagged")
		}
		inStatic := make(map[framework.APIID]bool)
		for _, id := range r.DirectAPIs {
			inStatic[id] = true
		}
		for _, a := range p.Payload.Activities {
			for _, rate := range a.Direct {
				if inStatic[rate.API] {
					t.Errorf("payload API %d visible statically", rate.API)
				}
			}
		}
		return
	}
	t.Fatal("no payload program generated")
}

func TestIntentActionsUnionManifestAndCode(t *testing.T) {
	p, r := analyzed(t, 3, behavior.Malicious, behavior.FamilyIntentEvader)
	want := make(map[framework.IntentID]bool)
	for _, id := range p.ReceiverIntents {
		want[id] = true
	}
	got := make(map[framework.IntentID]bool)
	for _, id := range r.IntentActions {
		got[id] = true
	}
	for id := range want {
		if !got[id] {
			t.Errorf("receiver intent %d missing from static view", id)
		}
	}
}

// TestAnalyzeEmptyManifest: an APK whose manifest declares nothing — no
// activities, permissions, or receivers — analyzes cleanly with a zero
// (not NaN, not panicking) referenced-activity ratio and empty feature
// sets.
func TestAnalyzeEmptyManifest(t *testing.T) {
	p := testGen.Generate(behavior.Spec{
		PackageName: "com.static.empty", Version: 1, Seed: 41,
		Label: behavior.Benign, Family: behavior.FamilyNone, Category: behavior.CategoryNews,
	})
	_, parsed, err := apk.BuildAndParse(p, testU)
	if err != nil {
		t.Fatal(err)
	}
	parsed.Manifest = manifest.New("com.static.empty", 1)
	r, err := Analyze(parsed, testU)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.ReferencedActivityRatio(); got != 0 {
		t.Errorf("ReferencedActivityRatio on empty manifest = %v, want 0", got)
	}
	if len(r.DeclaredActivities) != 0 || len(r.ReferencedActivities) != 0 {
		t.Errorf("activities leaked into empty-manifest report: %v / %v",
			r.DeclaredActivities, r.ReferencedActivities)
	}
	if len(r.Permissions) != 0 || r.UnknownPermissions != 0 {
		t.Errorf("permissions leaked into empty-manifest report: %v (unknown %d)",
			r.Permissions, r.UnknownPermissions)
	}
}

// TestAnalyzeDuplicatePermissionsNotDoubleCounted: repeated
// <uses-permission> entries must not inflate the resolved permission list
// or the unknown counter — PermissionNames dedupes before universe
// resolution, so the report matches the single-entry manifest exactly.
func TestAnalyzeDuplicatePermissionsNotDoubleCounted(t *testing.T) {
	p, base := analyzed(t, 5, behavior.Malicious, behavior.FamilySpyware)
	_, parsed, err := apk.BuildAndParse(p, testU)
	if err != nil {
		t.Fatal(err)
	}
	dup := append([]manifest.UsesPerm(nil), parsed.Manifest.Permissions...)
	dup = append(dup, parsed.Manifest.Permissions...) // every entry twice
	dup = append(dup,
		manifest.UsesPerm{Name: "com.fake.permission.NOT_IN_UNIVERSE"},
		manifest.UsesPerm{Name: "com.fake.permission.NOT_IN_UNIVERSE"})
	parsed.Manifest.Permissions = dup

	r, err := Analyze(parsed, testU)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Permissions) != len(base.Permissions) {
		t.Errorf("duplicated manifest resolved %d permissions, want %d",
			len(r.Permissions), len(base.Permissions))
	}
	for i := range base.Permissions {
		if r.Permissions[i] != base.Permissions[i] {
			t.Errorf("permission[%d] = %d, want %d", i, r.Permissions[i], base.Permissions[i])
		}
	}
	if r.UnknownPermissions != 1 {
		t.Errorf("UnknownPermissions = %d, want 1 (duplicates collapsed)", r.UnknownPermissions)
	}
}

func TestAnalyzeRejectsIncomplete(t *testing.T) {
	if _, err := Analyze(nil, testU); err == nil {
		t.Error("Analyze accepted nil APK")
	}
	if _, err := Analyze(&apk.APK{}, testU); err == nil {
		t.Error("Analyze accepted empty APK")
	}
}

func TestCorpusReferencedRatioNearPaper(t *testing.T) {
	sum, n := 0.0, 0
	for seed := int64(0); seed < 150; seed++ {
		_, r := analyzed(t, seed, behavior.Benign, behavior.FamilyNone)
		sum += r.ReferencedActivityRatio()
		n++
	}
	mean := sum / float64(n)
	// §4.2: on average only 88% of specified activities are referenced.
	if mean < 0.82 || mean > 0.94 {
		t.Errorf("mean referenced ratio = %.3f, want ≈ 0.88", mean)
	}
}
