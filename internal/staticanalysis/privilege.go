package staticanalysis

import (
	"sort"

	"apichecker/internal/framework"
)

// PrivilegeReport is a Stowaway-style over-privilege analysis (the paper's
// [15]): requested permissions compared against the permissions the app's
// statically visible API references actually need. Permissions requested
// but backed by no visible API use are "unjustified" — either dead weight,
// or cover for behaviour hidden behind reflection and dynamic loading,
// which is why malware manifests skew heavily over-privileged.
type PrivilegeReport struct {
	// Requested permissions, from the manifest.
	Requested []framework.PermissionID
	// Justified: requested and needed by some statically referenced API.
	Justified []framework.PermissionID
	// Unjustified: requested with no visible API needing them.
	Unjustified []framework.PermissionID
	// UnjustifiedRestrictive counts unjustified dangerous/signature
	// permissions — the threatening kind.
	UnjustifiedRestrictive int
}

// OverPrivilegeRatio is |unjustified| / |requested| (0 for permissionless
// apps).
func (p *PrivilegeReport) OverPrivilegeRatio() float64 {
	if len(p.Requested) == 0 {
		return 0
	}
	return float64(len(p.Unjustified)) / float64(len(p.Requested))
}

// AnalyzePrivilege builds the permission map comparison for a static
// report.
func AnalyzePrivilege(r *Report, u *framework.Universe) *PrivilegeReport {
	needed := make(map[framework.PermissionID]bool)
	for _, id := range r.DirectAPIs {
		if perm := u.API(id).Permission; perm != framework.NoPermission {
			needed[perm] = true
		}
	}
	out := &PrivilegeReport{Requested: append([]framework.PermissionID(nil), r.Permissions...)}
	for _, perm := range out.Requested {
		if needed[perm] {
			out.Justified = append(out.Justified, perm)
			continue
		}
		out.Unjustified = append(out.Unjustified, perm)
		if u.Permission(perm).Level.Restrictive() {
			out.UnjustifiedRestrictive++
		}
	}
	sort.Slice(out.Justified, func(i, j int) bool { return out.Justified[i] < out.Justified[j] })
	sort.Slice(out.Unjustified, func(i, j int) bool { return out.Unjustified[i] < out.Unjustified[j] })
	return out
}
