package monkey

import (
	"math"
	"testing"
	"testing/quick"
)

func TestProductionConfigRealistic(t *testing.T) {
	c := ProductionConfig(1)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if !c.Realistic() {
		t.Error("production config not realistic")
	}
	if c.Events != 5000 {
		t.Errorf("production events = %d, want 5000", c.Events)
	}
}

func TestRealism(t *testing.T) {
	cases := []struct {
		c    Config
		want bool
	}{
		{Config{Events: 1, ThrottleMs: 500, PctTouch: 0.65}, true},
		{Config{Events: 1, ThrottleMs: 500, PctTouch: 0.5}, true},
		{Config{Events: 1, ThrottleMs: 500, PctTouch: 0.8}, true},
		{Config{Events: 1, ThrottleMs: 100, PctTouch: 0.65}, false}, // machine-gun input
		{Config{Events: 1, ThrottleMs: 500, PctTouch: 0.95}, false}, // unnatural mix
		{Config{Events: 1, ThrottleMs: 500, PctTouch: 0.2}, false},
	}
	for i, tc := range cases {
		if got := tc.c.Realistic(); got != tc.want {
			t.Errorf("case %d: Realistic() = %v, want %v", i, got, tc.want)
		}
	}
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{Events: 0, ThrottleMs: 500, PctTouch: 0.5},
		{Events: 10, ThrottleMs: -1, PctTouch: 0.5},
		{Events: 10, ThrottleMs: 500, PctTouch: 1.5},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, c)
		}
		if _, err := New(c); err == nil {
			t.Errorf("case %d: New accepted %+v", i, c)
		}
	}
}

func TestStreamLengthAndDeterminism(t *testing.T) {
	c := Config{Events: 1000, ThrottleMs: 500, PctTouch: 0.65, Seed: 7}
	e1, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	e2, _ := New(c)
	s1 := e1.Drain()
	s2 := e2.Drain()
	if len(s1) != c.Events || len(s2) != c.Events {
		t.Fatalf("stream lengths %d/%d, want %d", len(s1), len(s2), c.Events)
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("event %d differs: %v vs %v", i, s1[i], s2[i])
		}
		if s1[i].Seq != i {
			t.Fatalf("event %d has seq %d", i, s1[i].Seq)
		}
	}
	if _, ok := e1.Next(); ok {
		t.Error("drained exerciser still yields events")
	}
}

func TestTouchFractionMatchesConfig(t *testing.T) {
	for _, pct := range []float64{0.5, 0.65, 0.8} {
		e, err := New(Config{Events: 20000, ThrottleMs: 500, PctTouch: pct, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		mix := KindMix(e.Drain())
		if math.Abs(mix[EventTouch]-pct) > 0.02 {
			t.Errorf("pct=%.2f: touch fraction = %.3f", pct, mix[EventTouch])
		}
		// All kinds appear in a long stream.
		for k := EventTouch; k <= EventSystem; k++ {
			if mix[k] == 0 {
				t.Errorf("pct=%.2f: kind %v never generated", pct, k)
			}
		}
	}
}

func TestKindMixEmpty(t *testing.T) {
	if len(KindMix(nil)) != 0 {
		t.Error("KindMix(nil) not empty")
	}
}

func TestQuickStreamsAreWellFormed(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw%2000) + 1
		e, err := New(Config{Events: n, ThrottleMs: 500, PctTouch: 0.6, Seed: seed})
		if err != nil {
			return false
		}
		events := e.Drain()
		if len(events) != n {
			return false
		}
		for i, ev := range events {
			if ev.Seq != i || ev.Kind > EventSystem {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
