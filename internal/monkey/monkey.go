// Package monkey is the UI exerciser (the paper drives apps with Android's
// Monkey, §4.2): it generates pseudo-random UI event streams at a
// configured pace and touch ratio.
//
// Two properties of the exerciser matter to the detection system:
//
//   - Volume: more events reach more activities (higher RAC) but cost more
//     emulation time. The production configuration is 5,000 events,
//     trading 9.5% of RAC for 94% of the time (Fig. 1).
//   - Realism: malware fingerprints machine-generated input by timing and
//     event mix. The hardened configuration paces inputs at human-like
//     intervals (throttle ≈ 500 ms) and keeps touch events dominant
//     (50-80%), defeating input-timing probes.
package monkey

import (
	"fmt"
	"math/rand"
)

// EventKind classifies generated UI events.
type EventKind uint8

const (
	// EventTouch is a tap.
	EventTouch EventKind = iota
	// EventMotion is a drag/fling gesture.
	EventMotion
	// EventKey is a hardware/soft key press.
	EventKey
	// EventNav is back/home navigation.
	EventNav
	// EventSystem is a system-level event (rotation, trackball, ...).
	EventSystem
)

func (k EventKind) String() string {
	names := [...]string{"touch", "motion", "key", "nav", "system"}
	if int(k) < len(names) {
		return names[k]
	}
	return fmt.Sprintf("EventKind(%d)", uint8(k))
}

// Event is one generated UI event.
type Event struct {
	Seq  int
	Kind EventKind
}

// Strategy selects how the exerciser explores the UI.
type Strategy uint8

const (
	// StrategyRandom is stock Monkey: events are drawn independently of
	// what has been discovered.
	StrategyRandom Strategy = iota
	// StrategyCoverage is the fuzzing-informed exploration the paper's
	// §6 proposes: the exerciser tracks which screens it has seen and
	// biases inputs toward untouched widgets and navigation paths,
	// which mostly helps the hard-to-reach activities.
	StrategyCoverage
)

func (s Strategy) String() string {
	switch s {
	case StrategyRandom:
		return "random"
	case StrategyCoverage:
		return "coverage-guided"
	}
	return fmt.Sprintf("Strategy(%d)", uint8(s))
}

// CoverageBoost is the effective discovery-rate multiplier coverage-guided
// exploration gives slow-to-reach activities (stuck exploration re-targets
// instead of re-rolling).
const CoverageBoost = 4.0

// Config controls the exerciser (mirrors Monkey's --throttle and
// --pct-touch flags).
type Config struct {
	// Events is the number of UI events to inject (paper default 5,000).
	Events int
	// ThrottleMs is the pause between input bursts in milliseconds.
	ThrottleMs int
	// PctTouch is the fraction of touch events among all inputs.
	PctTouch float64
	// Strategy selects random (deployed) or coverage-guided (§6)
	// exploration.
	Strategy Strategy
	// Seed drives event generation.
	Seed int64
}

// ProductionConfig is the deployed configuration (§4.2): 5K events,
// human-like throttle, 50-80% touch (we fix the midpoint).
func ProductionConfig(seed int64) Config {
	return Config{Events: 5000, ThrottleMs: 500, PctTouch: 0.65, Seed: seed}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Events <= 0 {
		return fmt.Errorf("monkey: events %d must be positive", c.Events)
	}
	if c.ThrottleMs < 0 {
		return fmt.Errorf("monkey: throttle %d must be non-negative", c.ThrottleMs)
	}
	if c.PctTouch < 0 || c.PctTouch > 1 {
		return fmt.Errorf("monkey: pct-touch %f out of [0,1]", c.PctTouch)
	}
	return nil
}

// Realistic reports whether the configuration defeats input-timing probes:
// human-paced throttle and a natural touch-dominant mix.
func (c Config) Realistic() bool {
	return c.ThrottleMs >= 400 && c.PctTouch >= 0.5 && c.PctTouch <= 0.8
}

// Exerciser generates the event stream for one run.
type Exerciser struct {
	cfg Config
	rng *rand.Rand
	seq int
}

// New creates an exerciser; the config must validate.
func New(cfg Config) (*Exerciser, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Exerciser{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}, nil
}

// Config returns the exerciser's configuration.
func (e *Exerciser) Config() Config { return e.cfg }

// Next generates the next event, or false when the stream is exhausted.
func (e *Exerciser) Next() (Event, bool) {
	if e.seq >= e.cfg.Events {
		return Event{}, false
	}
	ev := Event{Seq: e.seq, Kind: e.pick()}
	e.seq++
	return ev, true
}

func (e *Exerciser) pick() EventKind {
	r := e.rng.Float64()
	if r < e.cfg.PctTouch {
		return EventTouch
	}
	// Remaining probability split over the non-touch kinds with a fixed
	// mix close to Monkey's defaults.
	switch rest := (r - e.cfg.PctTouch) / (1 - e.cfg.PctTouch); {
	case rest < 0.45:
		return EventMotion
	case rest < 0.75:
		return EventKey
	case rest < 0.92:
		return EventNav
	default:
		return EventSystem
	}
}

// Drain generates all remaining events.
func (e *Exerciser) Drain() []Event {
	var out []Event
	for {
		ev, ok := e.Next()
		if !ok {
			return out
		}
		out = append(out, ev)
	}
}

// KindMix returns the fraction of each event kind across a stream.
func KindMix(events []Event) map[EventKind]float64 {
	mix := make(map[EventKind]float64)
	if len(events) == 0 {
		return mix
	}
	for _, ev := range events {
		mix[ev.Kind]++
	}
	for k := range mix {
		mix[k] /= float64(len(events))
	}
	return mix
}
