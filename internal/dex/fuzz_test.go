package dex

import (
	"reflect"
	"testing"
)

// FuzzDecode hardens the codec against malformed archives: decoding must
// never panic, and anything that decodes must re-encode/decode to the same
// value.
func FuzzDecode(f *testing.F) {
	good, err := sample().Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	empty, err := (&File{}).Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(empty)
	f.Add([]byte{})
	f.Add(Magic[:])
	f.Add(append(append([]byte{}, Magic[:]...), 0xFF, 0xFF, 0xFF, 0xFF))

	f.Fuzz(func(t *testing.T, data []byte) {
		file, err := Decode(data)
		if err != nil {
			return
		}
		re, err := file.Encode()
		if err != nil {
			t.Fatalf("decoded file fails to re-encode: %v", err)
		}
		file2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encoded file fails to decode: %v", err)
		}
		if !reflect.DeepEqual(file, file2) {
			t.Fatal("re-encode round trip diverged")
		}
	})
}
