package dex

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func sample() *File {
	return &File{
		NativeLibs: []string{"lib/armeabi-v7a/libnative.so"},
		Classes: []Class{
			{
				Name:       "com.example.MainActivity",
				IsActivity: true,
				Methods: []Method{
					{Name: "onCreate", Calls: []CallSite{
						{Kind: CallDirect, Target: "android.app.Activity.findViewById"},
						{Kind: CallDirect, Target: "android.widget.TextView.setText"},
						{Kind: CallStartActivity, Target: "com.example.DetailActivity"},
					}},
					{Name: "onResume", Calls: []CallSite{
						{Kind: CallIntentSend, Target: "android.intent.action.VIEW"},
						{Kind: CallDirect, Target: "android.widget.TextView.setText"},
					}},
				},
			},
			{
				Name:       "com.example.DetailActivity",
				IsActivity: true,
				Methods: []Method{
					{Name: "onCreate", Calls: []CallSite{
						{Kind: CallReflection, Target: "obf$a1b2"},
						{Kind: CallLoadDex, Target: "assets/payload.dex"},
					}},
				},
			},
			{Name: "com.example.Helper", Methods: []Method{{Name: "run"}}},
		},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := sample()
	data, err := f.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(got, f) {
		t.Errorf("round trip mismatch:\ngot  %+v\nwant %+v", got, f)
	}
}

func TestDirectAPIRefs(t *testing.T) {
	got := sample().DirectAPIRefs()
	want := []string{"android.app.Activity.findViewById", "android.widget.TextView.setText"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("DirectAPIRefs = %v, want %v", got, want)
	}
}

func TestIntentActions(t *testing.T) {
	got := sample().IntentActions()
	want := []string{"android.intent.action.VIEW"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("IntentActions = %v, want %v", got, want)
	}
}

func TestReferencedActivities(t *testing.T) {
	got := sample().ReferencedActivities()
	want := []string{"com.example.DetailActivity"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ReferencedActivities = %v, want %v", got, want)
	}
}

func TestTraitDetectors(t *testing.T) {
	f := sample()
	if !f.UsesReflection() {
		t.Error("UsesReflection = false, want true")
	}
	if !f.LoadsDynamicCode() {
		t.Error("LoadsDynamicCode = false, want true")
	}
	if n := f.NumCallSites(); n != 7 {
		t.Errorf("NumCallSites = %d, want 7", n)
	}
	clean := &File{Classes: []Class{{Name: "a.B", Methods: []Method{{Name: "m"}}}}}
	if clean.UsesReflection() || clean.LoadsDynamicCode() {
		t.Error("clean file reports evasion traits")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	f := sample()
	data, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"bad magic", append([]byte("notadexx"), data[8:]...)},
		{"truncated", data[:len(data)/2]},
		{"trailing garbage", append(append([]byte{}, data...), 0xFF)},
	}
	for _, tc := range cases {
		if _, err := Decode(tc.data); err == nil {
			t.Errorf("%s: Decode accepted corrupt input", tc.name)
		}
	}
}

func TestDecodeRejectsHugeCounts(t *testing.T) {
	// magic + string count claiming 2^31 entries.
	data := append(append([]byte{}, Magic[:]...), 0xFF, 0xFF, 0xFF, 0x7F)
	if _, err := Decode(data); err == nil {
		t.Error("Decode accepted absurd string count")
	}
}

func TestEncodeRejectsInvalidKind(t *testing.T) {
	f := &File{Classes: []Class{{Name: "x.Y", Methods: []Method{
		{Name: "m", Calls: []CallSite{{Kind: CallKind(99), Target: "t"}}},
	}}}}
	if _, err := f.Encode(); err == nil {
		t.Error("Encode accepted invalid call kind")
	}
}

func TestEmptyFileRoundTrip(t *testing.T) {
	data, err := (&File{}).Encode()
	if err != nil {
		t.Fatalf("Encode empty: %v", err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode empty: %v", err)
	}
	if len(got.Classes) != 0 || len(got.NativeLibs) != 0 {
		t.Errorf("empty round trip produced %+v", got)
	}
}

// Property: random well-formed files round-trip byte-exactly.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		file := randomFile(rng)
		data, err := file.Encode()
		if err != nil {
			return false
		}
		got, err := Decode(data)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, file)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func randomFile(rng *rand.Rand) *File {
	kinds := []CallKind{CallDirect, CallReflection, CallIntentSend, CallStartActivity, CallLoadDex}
	names := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}
	var f File
	for i := 0; i < rng.Intn(5); i++ {
		f.NativeLibs = append(f.NativeLibs, "lib/"+names[rng.Intn(len(names))]+".so")
	}
	for i := 0; i < 1+rng.Intn(6); i++ {
		c := Class{Name: "pkg." + names[rng.Intn(len(names))], IsActivity: rng.Intn(2) == 0}
		for j := 0; j < rng.Intn(4); j++ {
			m := Method{Name: names[rng.Intn(len(names))]}
			for k := 0; k < rng.Intn(6); k++ {
				m.Calls = append(m.Calls, CallSite{
					Kind:   kinds[rng.Intn(len(kinds))],
					Target: names[rng.Intn(len(names))],
				})
			}
			c.Methods = append(c.Methods, m)
		}
		f.Classes = append(f.Classes, c)
	}
	return &f
}
