// Package dex models the compiled code section of an APK (classes.dex):
// classes, methods, and the call sites static analysis can see.
//
// The model intentionally captures the three mechanisms the paper cares
// about (§4.5): direct framework-API calls (visible to static analysis and
// to the runtime hook), Java-reflection calls (the target name is an
// opaque runtime-computed string, so static analysis cannot resolve it),
// and intent sends (IPC requests that make *another* process act). It also
// records dynamic code loading, which hides entire call graphs from static
// analysis.
//
// The binary codec is a simple length-prefixed format with a string pool,
// in the spirit of the real DEX layout, built on encoding/binary.
package dex

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Magic identifies the serialized form ("godex" + version).
var Magic = [8]byte{'g', 'o', 'd', 'e', 'x', '0', '3', '5'}

// CallKind distinguishes the mechanisms by which app code triggers
// framework behaviour.
type CallKind uint8

const (
	// CallDirect is an ordinary framework API invocation; static
	// analysis sees the target name.
	CallDirect CallKind = iota
	// CallReflection invokes a method via java.lang.reflect; the Target
	// is an obfuscated token, not the real API name.
	CallReflection
	// CallIntentSend passes an Intent to the system (startActivity,
	// sendBroadcast, ...); Target is the intent action.
	CallIntentSend
	// CallStartActivity references another activity class in this app;
	// Target is the activity class name. These references define which
	// declared activities are "actually referenced" (§4.2's RAC
	// denominator).
	CallStartActivity
	// CallLoadDex loads a secondary dex payload at runtime; Target is
	// the asset path. The payload's call sites are invisible statically.
	CallLoadDex
)

func (k CallKind) String() string {
	switch k {
	case CallDirect:
		return "direct"
	case CallReflection:
		return "reflection"
	case CallIntentSend:
		return "intent-send"
	case CallStartActivity:
		return "start-activity"
	case CallLoadDex:
		return "load-dex"
	}
	return fmt.Sprintf("CallKind(%d)", uint8(k))
}

// CallSite is one call instruction in a method body.
type CallSite struct {
	Kind   CallKind
	Target string
}

// Method is one method of a class.
type Method struct {
	Name  string
	Calls []CallSite
}

// Class is one class in the dex. Activity classes model Android
// activities; their names match the manifest's declared activities.
type Class struct {
	Name       string
	IsActivity bool
	Methods    []Method
}

// File is a parsed classes.dex.
type File struct {
	Classes    []Class
	NativeLibs []string // bundled .so names, e.g. "lib/armeabi-v7a/libcore.so"
}

// DirectAPIRefs returns the distinct framework API names reachable by
// static inspection (CallDirect sites only), in first-seen order. This is
// what static baseline detectors (Drebin/DroidAPIMiner style) extract.
func (f *File) DirectAPIRefs() []string {
	var out []string
	seen := make(map[string]bool)
	f.eachCall(func(cs CallSite) {
		if cs.Kind == CallDirect && !seen[cs.Target] {
			seen[cs.Target] = true
			out = append(out, cs.Target)
		}
	})
	return out
}

// IntentActions returns the distinct intent actions appearing at
// CallIntentSend sites.
func (f *File) IntentActions() []string {
	var out []string
	seen := make(map[string]bool)
	f.eachCall(func(cs CallSite) {
		if cs.Kind == CallIntentSend && !seen[cs.Target] {
			seen[cs.Target] = true
			out = append(out, cs.Target)
		}
	})
	return out
}

// ReferencedActivities returns the activity class names referenced from
// code (CallStartActivity targets), deduplicated, in first-seen order.
func (f *File) ReferencedActivities() []string {
	var out []string
	seen := make(map[string]bool)
	f.eachCall(func(cs CallSite) {
		if cs.Kind == CallStartActivity && !seen[cs.Target] {
			seen[cs.Target] = true
			out = append(out, cs.Target)
		}
	})
	return out
}

// UsesReflection reports whether any reflection call site exists.
func (f *File) UsesReflection() bool {
	found := false
	f.eachCall(func(cs CallSite) {
		if cs.Kind == CallReflection {
			found = true
		}
	})
	return found
}

// LoadsDynamicCode reports whether any dynamic-code-loading site exists.
func (f *File) LoadsDynamicCode() bool {
	found := false
	f.eachCall(func(cs CallSite) {
		if cs.Kind == CallLoadDex {
			found = true
		}
	})
	return found
}

func (f *File) eachCall(fn func(CallSite)) {
	for ci := range f.Classes {
		for mi := range f.Classes[ci].Methods {
			for _, cs := range f.Classes[ci].Methods[mi].Calls {
				fn(cs)
			}
		}
	}
}

// NumCallSites returns the total number of call sites.
func (f *File) NumCallSites() int {
	n := 0
	f.eachCall(func(CallSite) { n++ })
	return n
}

// --- binary codec ---

// Encode serializes the file. The layout is:
//
//	magic [8]byte
//	stringPool: u32 count, then per string u32 len + bytes
//	nativeLibs: u32 count, then u32 string indexes
//	classes:    u32 count, then per class:
//	    u32 name index, u8 isActivity, u32 method count, per method:
//	        u32 name index, u32 call count, per call: u8 kind, u32 target index
func (f *File) Encode() ([]byte, error) {
	pool := newStringPool()
	for _, lib := range f.NativeLibs {
		pool.intern(lib)
	}
	for _, c := range f.Classes {
		pool.intern(c.Name)
		for _, m := range c.Methods {
			pool.intern(m.Name)
			for _, cs := range m.Calls {
				if cs.Kind > CallLoadDex {
					return nil, fmt.Errorf("dex: encode: invalid call kind %d", cs.Kind)
				}
				pool.intern(cs.Target)
			}
		}
	}
	if len(pool.strings) > math.MaxUint32 {
		return nil, errors.New("dex: encode: string pool overflow")
	}

	var buf bytes.Buffer
	buf.Write(Magic[:])
	w := func(v uint32) {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		buf.Write(b[:])
	}
	w(uint32(len(pool.strings)))
	for _, s := range pool.strings {
		w(uint32(len(s)))
		buf.WriteString(s)
	}
	w(uint32(len(f.NativeLibs)))
	for _, lib := range f.NativeLibs {
		w(pool.index[lib])
	}
	w(uint32(len(f.Classes)))
	for _, c := range f.Classes {
		w(pool.index[c.Name])
		if c.IsActivity {
			buf.WriteByte(1)
		} else {
			buf.WriteByte(0)
		}
		w(uint32(len(c.Methods)))
		for _, m := range c.Methods {
			w(pool.index[m.Name])
			w(uint32(len(m.Calls)))
			for _, cs := range m.Calls {
				buf.WriteByte(byte(cs.Kind))
				w(pool.index[cs.Target])
			}
		}
	}
	return buf.Bytes(), nil
}

// maxReasonableCount bounds table sizes while decoding untrusted input.
const maxReasonableCount = 1 << 24

// Decode parses a serialized dex file.
func Decode(data []byte) (*File, error) {
	r := &reader{br: bufio.NewReader(bytes.NewReader(data))}
	var magic [8]byte
	r.bytes(magic[:])
	if r.err == nil && magic != Magic {
		return nil, fmt.Errorf("dex: decode: bad magic %q", magic[:])
	}

	nStrings := r.u32()
	if r.err == nil && nStrings > maxReasonableCount {
		return nil, fmt.Errorf("dex: decode: string pool count %d too large", nStrings)
	}
	strs := make([]string, 0, min(int(nStrings), 4096))
	for i := uint32(0); i < nStrings && r.err == nil; i++ {
		n := r.u32()
		if r.err == nil && n > maxReasonableCount {
			return nil, fmt.Errorf("dex: decode: string length %d too large", n)
		}
		b := make([]byte, n)
		r.bytes(b)
		strs = append(strs, string(b))
	}
	str := func(idx uint32) string {
		if r.err != nil {
			return ""
		}
		if int(idx) >= len(strs) {
			r.err = fmt.Errorf("dex: decode: string index %d out of range (%d strings)", idx, len(strs))
			return ""
		}
		return strs[idx]
	}

	var f File
	nLibs := r.u32()
	if r.err == nil && nLibs > maxReasonableCount {
		return nil, fmt.Errorf("dex: decode: native lib count %d too large", nLibs)
	}
	for i := uint32(0); i < nLibs && r.err == nil; i++ {
		f.NativeLibs = append(f.NativeLibs, str(r.u32()))
	}

	nClasses := r.u32()
	if r.err == nil && nClasses > maxReasonableCount {
		return nil, fmt.Errorf("dex: decode: class count %d too large", nClasses)
	}
	for i := uint32(0); i < nClasses && r.err == nil; i++ {
		var c Class
		c.Name = str(r.u32())
		c.IsActivity = r.u8() == 1
		nMethods := r.u32()
		if r.err == nil && nMethods > maxReasonableCount {
			return nil, fmt.Errorf("dex: decode: method count %d too large", nMethods)
		}
		for j := uint32(0); j < nMethods && r.err == nil; j++ {
			var m Method
			m.Name = str(r.u32())
			nCalls := r.u32()
			if r.err == nil && nCalls > maxReasonableCount {
				return nil, fmt.Errorf("dex: decode: call count %d too large", nCalls)
			}
			for k := uint32(0); k < nCalls && r.err == nil; k++ {
				kind := CallKind(r.u8())
				if r.err == nil && kind > CallLoadDex {
					return nil, fmt.Errorf("dex: decode: invalid call kind %d", kind)
				}
				m.Calls = append(m.Calls, CallSite{Kind: kind, Target: str(r.u32())})
			}
			c.Methods = append(c.Methods, m)
		}
		f.Classes = append(f.Classes, c)
	}
	if r.err != nil {
		return nil, r.err
	}
	if _, err := r.br.ReadByte(); err != io.EOF {
		return nil, errors.New("dex: decode: trailing data")
	}
	return &f, nil
}

type reader struct {
	br  *bufio.Reader
	err error
}

func (r *reader) bytes(b []byte) {
	if r.err != nil {
		return
	}
	if _, err := io.ReadFull(r.br, b); err != nil {
		r.err = fmt.Errorf("dex: decode: truncated input: %w", err)
	}
}

func (r *reader) u32() uint32 {
	var b [4]byte
	r.bytes(b[:])
	if r.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b[:])
}

func (r *reader) u8() uint8 {
	var b [1]byte
	r.bytes(b[:])
	if r.err != nil {
		return 0
	}
	return b[0]
}

type stringPool struct {
	strings []string
	index   map[string]uint32
}

func newStringPool() *stringPool {
	return &stringPool{index: make(map[string]uint32)}
}

func (p *stringPool) intern(s string) uint32 {
	if i, ok := p.index[s]; ok {
		return i
	}
	i := uint32(len(p.strings))
	p.strings = append(p.strings, s)
	p.index[s] = i
	return i
}
