// Package antivirus models the fingerprint-based commercial scanners
// T-Market composes (§2, §4.1): Symantec/Kaspersky/Norton/McAfee-style
// engines, each with its own signature database and a sub-5% false-positive
// rate, combined under an all-must-agree consensus rule so that label noise
// in the ground-truth pipeline stays below (1-95%)^4.
//
// Fingerprints key on sample identity (the stand-in for an APK hash), so a
// repackaged or updated sample evades them — which is why zero-day
// detection falls to the ML stage.
package antivirus

import (
	"fmt"
	"math/rand"
)

// Verdict is one engine's scan outcome.
type Verdict struct {
	Engine  string
	Flagged bool
	// Known reports a fingerprint hit (as opposed to a heuristic FP).
	Known bool
}

// Engine is one commercial scanner.
type Engine struct {
	name string
	// fpRate is the heuristic false-flag probability per scan.
	fpRate float64
	// coverage is the fraction of circulating malware whose fingerprint
	// the vendor's feed contains (deterministic per sample).
	coverage float64
	// salt decorrelates the vendors' feeds.
	salt uint64
	// learned holds fingerprints added after the fact (user reports,
	// market sharing).
	learned map[int64]bool
}

// NewEngine creates a scanner.
func NewEngine(name string, fpRate, coverage float64, salt uint64) *Engine {
	return &Engine{
		name:     name,
		fpRate:   fpRate,
		coverage: coverage,
		salt:     salt,
		learned:  make(map[int64]bool),
	}
}

// Name returns the vendor name.
func (e *Engine) Name() string { return e.name }

// Learn adds a fingerprint to the vendor feed.
func (e *Engine) Learn(sampleID int64) { e.learned[sampleID] = true }

// Knows reports whether the vendor's feed fingerprints the sample. Feed
// membership is a stable property of (vendor, sample) — vendors do not
// forget between scans.
func (e *Engine) Knows(sampleID int64, malicious bool) bool {
	if e.learned[sampleID] {
		return true
	}
	if !malicious {
		return false
	}
	h := (uint64(sampleID) ^ e.salt) * 0x9e3779b97f4a7c15
	return float64(h%100000)/100000 < e.coverage
}

// Scan checks one sample. rng drives the heuristic false-positive draw.
func (e *Engine) Scan(sampleID int64, malicious bool, rng *rand.Rand) Verdict {
	v := Verdict{Engine: e.name}
	if e.Knows(sampleID, malicious) {
		v.Flagged = true
		v.Known = true
		return v
	}
	if rng.Float64() < e.fpRate {
		v.Flagged = true
	}
	return v
}

// Consensus is the all-engines-must-agree combination (§4.1).
type Consensus struct {
	engines []*Engine
	rng     *rand.Rand
}

// DefaultVendors are the scanner names the paper lists.
var DefaultVendors = []string{"symantec", "kaspersky", "norton", "mcafee"}

// NewConsensus builds the default four-engine consensus.
func NewConsensus(seed int64, fpRate, coverage float64) *Consensus {
	return NewConsensusN(seed, fpRate, coverage, len(DefaultVendors))
}

// NewConsensusN builds an n-engine consensus ("at least four" in §4.1;
// extra engines get generic vendor names).
func NewConsensusN(seed int64, fpRate, coverage float64, n int) *Consensus {
	if n <= 0 {
		n = 1
	}
	c := &Consensus{rng: rand.New(rand.NewSource(seed))}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("vendor-%d", i+1)
		if i < len(DefaultVendors) {
			name = DefaultVendors[i]
		}
		c.engines = append(c.engines, NewEngine(name, fpRate, coverage, uint64(seed)+uint64(i)*0x51ed270b))
	}
	return c
}

// Engines returns the member engines.
func (c *Consensus) Engines() []*Engine { return c.engines }

// Result is a consensus scan outcome.
type Result struct {
	Verdicts []Verdict
	// Rejected: every engine flagged the sample.
	Rejected bool
	// FlaggedBy counts flagging engines.
	FlaggedBy int
}

// Scan runs every engine; the sample is rejected only on unanimity.
func (c *Consensus) Scan(sampleID int64, malicious bool) Result {
	var res Result
	res.Rejected = true
	for _, e := range c.engines {
		v := e.Scan(sampleID, malicious, c.rng)
		res.Verdicts = append(res.Verdicts, v)
		if v.Flagged {
			res.FlaggedBy++
		} else {
			res.Rejected = false
		}
	}
	return res
}

// LearnAll pushes a fingerprint to every vendor feed (the market shares
// confirmed samples back to the AV companies).
func (c *Consensus) LearnAll(sampleID int64) {
	for _, e := range c.engines {
		e.Learn(sampleID)
	}
}

// FalseLabelBound returns the §4.1 noise bound for n engines with the given
// per-engine FP rate: (fpRate)^n.
func FalseLabelBound(fpRate float64, n int) float64 {
	if n <= 0 {
		return 1
	}
	out := 1.0
	for i := 0; i < n; i++ {
		out *= fpRate
	}
	return out
}

func (r Result) String() string {
	return fmt.Sprintf("flagged %d/%d (rejected=%v)", r.FlaggedBy, len(r.Verdicts), r.Rejected)
}
