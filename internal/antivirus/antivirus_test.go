package antivirus

import (
	"math"
	"math/rand"
	"testing"
)

func TestEngineFingerprintCoverage(t *testing.T) {
	e := NewEngine("symantec", 0.04, 0.35, 7)
	known := 0
	const n = 5000
	for id := int64(0); id < n; id++ {
		if e.Knows(id, true) {
			known++
		}
	}
	frac := float64(known) / n
	if math.Abs(frac-0.35) > 0.03 {
		t.Errorf("coverage = %.3f, want ≈ 0.35", frac)
	}
	// Benign samples are never "known" without learning.
	for id := int64(0); id < n; id++ {
		if e.Knows(id, false) {
			t.Fatal("benign sample fingerprinted")
		}
	}
	// Knowledge is stable, not a coin flip.
	for id := int64(0); id < 100; id++ {
		if e.Knows(id, true) != e.Knows(id, true) {
			t.Fatal("Knows is not deterministic")
		}
	}
}

func TestEngineLearn(t *testing.T) {
	e := NewEngine("kaspersky", 0.04, 0, 9)
	if e.Knows(42, true) {
		t.Fatal("zero-coverage engine knows a sample")
	}
	e.Learn(42)
	if !e.Knows(42, true) || !e.Knows(42, false) {
		t.Error("learned fingerprint not applied")
	}
}

func TestEngineFPRate(t *testing.T) {
	e := NewEngine("norton", 0.04, 0, 3)
	rng := rand.New(rand.NewSource(1))
	flags := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if e.Scan(int64(i), false, rng).Flagged {
			flags++
		}
	}
	frac := float64(flags) / n
	if math.Abs(frac-0.04) > 0.006 {
		t.Errorf("FP rate = %.4f, want ≈ 0.04", frac)
	}
}

func TestConsensusUnanimity(t *testing.T) {
	c := NewConsensus(1, 0.04, 0.9)
	// A widely fingerprinted malware sample: find one all vendors know.
	for id := int64(0); id < 200; id++ {
		all := true
		for _, e := range c.Engines() {
			if !e.Knows(id, true) {
				all = false
			}
		}
		if all {
			res := c.Scan(id, true)
			if !res.Rejected || res.FlaggedBy != len(c.Engines()) {
				t.Errorf("known sample not rejected: %v", res)
			}
			return
		}
	}
	t.Fatal("no universally known sample at 90% coverage")
}

// The §4.1 bound: four independent sub-5% FP engines mislabel essentially
// nothing under unanimity.
func TestConsensusFalseLabelBound(t *testing.T) {
	c := NewConsensus(2, 0.05, 0.35)
	rejected := 0
	const n = 50000
	for i := 0; i < n; i++ {
		if c.Scan(int64(i), false).Rejected {
			rejected++
		}
	}
	bound := FalseLabelBound(0.05, 4) // 6.25e-6
	measured := float64(rejected) / n
	if measured > bound*40 { // generous sampling slack around a tiny rate
		t.Errorf("benign rejection rate %.6f far above bound %.6f", measured, bound)
	}
}

func TestFalseLabelBound(t *testing.T) {
	if got := FalseLabelBound(0.05, 4); math.Abs(got-6.25e-6) > 1e-12 {
		t.Errorf("bound = %v", got)
	}
	if FalseLabelBound(0.5, 0) != 1 {
		t.Error("degenerate bound")
	}
}

func TestConsensusNVendorNames(t *testing.T) {
	c := NewConsensusN(1, 0.04, 0.3, 6)
	if len(c.Engines()) != 6 {
		t.Fatalf("engines = %d", len(c.Engines()))
	}
	if c.Engines()[0].Name() != "symantec" || c.Engines()[4].Name() != "vendor-5" {
		t.Errorf("names = %s, %s", c.Engines()[0].Name(), c.Engines()[4].Name())
	}
	if NewConsensusN(1, 0, 0, 0).Engines() == nil {
		t.Error("zero-engine consensus not clamped")
	}
	if s := c.Scan(1, false).String(); s == "" {
		t.Error("empty result string")
	}
}

// Vendor feeds must be decorrelated: the union of four 35%-coverage feeds
// should know clearly more malware than any single feed.
func TestVendorFeedsDecorrelated(t *testing.T) {
	c := NewConsensus(3, 0.04, 0.35)
	single, union := 0, 0
	const n = 4000
	for id := int64(0); id < n; id++ {
		if c.Engines()[0].Knows(id, true) {
			single++
		}
		for _, e := range c.Engines() {
			if e.Knows(id, true) {
				union++
				break
			}
		}
	}
	// Independent feeds: union ≈ 1-(1-0.35)^4 ≈ 0.82.
	if union <= single+single/2 {
		t.Errorf("union %d not clearly above single feed %d — feeds correlated", union, single)
	}
}
