// Durable intake journal: an append-log of enqueue/settle records so a
// killed serving node replays every submission it accepted but never
// acknowledged. The file discipline matches vcache.PersistLog (itself the
// modelstore discipline): a header written via temp-file + rename (never
// partially visible), records appended with O_APPEND (the kernel's atomic
// append contract for single-writer logs), and a CRC per record so a torn
// final write degrades to "skip the tail", never to a resurrected corrupt
// submission.
//
// Two record kinds (little-endian), after the header line:
//
//	enqueue: u8 1 | u64 seq | u32 keyLen | key | u32 payLen | payload | u32 crc
//	settle:  u8 2 | u64 seq | u32 crc
//
// The CRC (IEEE) covers everything before it in the record. Replay folds
// the log into the set of enqueued-but-never-settled items: exactly the
// submissions a restart must re-vet. A settle for an unknown seq is
// ignored (its enqueue record was dropped by a compaction).
package workqueue

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// logFile is the journal's name inside the queue directory.
const logFile = "workqueue.log"

// logMagic versions the header; bump on layout changes.
const logMagic = "workqueuelog/1"

// maxLogRecord bounds one record's key+payload size — corrupt length
// prefixes must not drive a multi-gigabyte allocation during replay.
const maxLogRecord = 256 << 20

// Compaction bounds the journal: every settle appends rather than erasing
// its enqueue record, so a long-lived queue would otherwise accrete
// unbounded disk and ever-slower replay. Once the file grows past
// compactFactor times the size of the last compacted image (with
// compactFloor so small queues never churn), the log is rewritten to
// exactly the live (unsettled) items, via the same temp-file + rename
// discipline.
const (
	compactFactor = 4
	compactFloor  = 1 << 20
)

// ErrLogCorrupt marks a journal whose header does not parse. Torn or
// corrupt records are not errors — replay stops at the first bad record
// and keeps everything before it.
var ErrLogCorrupt = errors.New("workqueue: corrupt journal header")

// Record type tags.
const (
	recEnqueue = 1
	recSettle  = 2
)

// qlog is the journal handle. It has no lock of its own: the owning
// Queue serializes every call under its mutex (single writer).
type qlog struct {
	dir    string
	f      *os.File
	closed bool

	// size is the current file length; lastCompact the length of the last
	// compacted (or freshly opened) image — together they drive the
	// grow-past-a-multiple compaction trigger.
	size, lastCompact int64

	compactions, compactErrors uint64
}

// openLog opens (or creates) the journal in dir and replays it: items
// returns every enqueued-but-unsettled submission in seq order, maxSeq the
// highest seq the log has ever recorded (settled or not, so the caller can
// advance its seq source past numbers a previous life consumed), and
// skipped the records dropped as torn or corrupt. An unparseable header
// starts a fresh log.
func openLog(dir string) (l *qlog, items []Item, maxSeq int64, skipped int, err error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, 0, 0, fmt.Errorf("workqueue: journal dir: %w", err)
	}
	l = &qlog{dir: dir}
	path := filepath.Join(dir, logFile)

	live, maxSeq, skipped, goodBytes, replayErr := replayQueueLog(path)
	switch {
	case replayErr != nil:
		// Missing or unusable file: start from a fresh header.
		if err := l.writeHeader(); err != nil {
			return nil, nil, 0, 0, err
		}
	case skipped > 0:
		// Torn tail: cut the file back to the good prefix so new appends
		// land on a record boundary instead of extending the torn record.
		if err := os.Truncate(path, goodBytes); err != nil {
			return nil, nil, 0, 0, fmt.Errorf("workqueue: truncate torn tail: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, 0, 0, fmt.Errorf("workqueue: journal open: %w", err)
	}
	l.f = f
	if st, serr := f.Stat(); serr == nil {
		l.size, l.lastCompact = st.Size(), st.Size()
	}

	items = make([]Item, 0, len(live))
	for _, it := range live {
		items = append(items, it)
	}
	sort.Slice(items, func(i, j int) bool { return items[i].Seq < items[j].Seq })
	return l, items, maxSeq, skipped, nil
}

// writeHeader atomically replaces the journal with a fresh header-only
// file.
func (l *qlog) writeHeader() error {
	path := filepath.Join(l.dir, logFile)
	tmp, err := os.CreateTemp(l.dir, ".workqueue-*")
	if err != nil {
		return fmt.Errorf("workqueue: journal reset: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.WriteString(logMagic + "\n"); err != nil {
		tmp.Close()
		return fmt.Errorf("workqueue: journal reset: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("workqueue: journal reset: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("workqueue: journal reset: %w", err)
	}
	return nil
}

// replayQueueLog folds an existing journal into its live items. A header
// problem returns an error — the caller starts fresh; a bad record
// mid-file stops the replay, keeping the good prefix (goodBytes).
func replayQueueLog(path string) (live map[int64]Item, maxSeq int64, skipped int, goodBytes int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, 0, 0, fmt.Errorf("workqueue: no journal: %w", err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	header, err := r.ReadString('\n')
	if err != nil {
		return nil, 0, 0, 0, fmt.Errorf("%w: unreadable header", ErrLogCorrupt)
	}
	if strings.TrimSuffix(header, "\n") != logMagic {
		return nil, 0, 0, 0, fmt.Errorf("%w: bad magic", ErrLogCorrupt)
	}
	goodBytes = int64(len(header))
	live = make(map[int64]Item)
	for {
		it, settled, n, rerr := readQueueRecord(r)
		if rerr == io.EOF {
			return live, maxSeq, skipped, goodBytes, nil
		}
		if rerr != nil {
			// Torn or corrupt record: drop it and everything after — a
			// record boundary cannot be trusted past a bad CRC.
			skipped++
			return live, maxSeq, skipped, goodBytes, nil
		}
		if it.Seq > maxSeq {
			maxSeq = it.Seq
		}
		if settled {
			delete(live, it.Seq)
		} else {
			it.Replayed = true
			live[it.Seq] = it
		}
		goodBytes += n
	}
}

// readQueueRecord decodes one record. io.EOF means a clean end of log;
// any other error marks the first torn or corrupt record.
func readQueueRecord(r *bufio.Reader) (it Item, settled bool, n int64, err error) {
	kind, err := r.ReadByte()
	if err != nil {
		if err == io.EOF {
			return Item{}, false, 0, io.EOF
		}
		return Item{}, false, 0, fmt.Errorf("torn record: %w", err)
	}
	var seqBuf [8]byte
	if _, err := io.ReadFull(r, seqBuf[:]); err != nil {
		return Item{}, false, 0, fmt.Errorf("torn record: %w", err)
	}
	seq := int64(binary.LittleEndian.Uint64(seqBuf[:]))
	crc := crc32.NewIEEE()
	crc.Write([]byte{kind})
	crc.Write(seqBuf[:])
	var lenBuf [4]byte
	switch kind {
	case recSettle:
		if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
			return Item{}, false, 0, fmt.Errorf("torn record: %w", err)
		}
		if binary.LittleEndian.Uint32(lenBuf[:]) != crc.Sum32() {
			return Item{}, false, 0, fmt.Errorf("settle record CRC mismatch")
		}
		return Item{Seq: seq}, true, 13, nil
	case recEnqueue:
		if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
			return Item{}, false, 0, fmt.Errorf("torn record: %w", err)
		}
		keyLen := binary.LittleEndian.Uint32(lenBuf[:])
		if keyLen > maxLogRecord {
			return Item{}, false, 0, fmt.Errorf("absurd key length %d", keyLen)
		}
		crc.Write(lenBuf[:])
		key := make([]byte, keyLen)
		if _, err := io.ReadFull(r, key); err != nil {
			return Item{}, false, 0, fmt.Errorf("torn record: %w", err)
		}
		crc.Write(key)
		if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
			return Item{}, false, 0, fmt.Errorf("torn record: %w", err)
		}
		payLen := binary.LittleEndian.Uint32(lenBuf[:])
		if payLen > maxLogRecord {
			return Item{}, false, 0, fmt.Errorf("absurd payload length %d", payLen)
		}
		crc.Write(lenBuf[:])
		payload := make([]byte, payLen)
		if _, err := io.ReadFull(r, payload); err != nil {
			return Item{}, false, 0, fmt.Errorf("torn record: %w", err)
		}
		crc.Write(payload)
		if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
			return Item{}, false, 0, fmt.Errorf("torn record: %w", err)
		}
		if binary.LittleEndian.Uint32(lenBuf[:]) != crc.Sum32() {
			return Item{}, false, 0, fmt.Errorf("enqueue record CRC mismatch")
		}
		n = int64(1 + 8 + 4 + len(key) + 4 + len(payload) + 4)
		return Item{Seq: seq, Key: string(key), Payload: payload}, false, n, nil
	default:
		return Item{}, false, 0, fmt.Errorf("unknown record type %d", kind)
	}
}

// encodeEnqueue flattens one item into the on-disk enqueue record.
func encodeEnqueue(it Item) []byte {
	buf := make([]byte, 0, 21+len(it.Key)+len(it.Payload))
	buf = append(buf, recEnqueue)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(it.Seq))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(it.Key)))
	buf = append(buf, it.Key...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(it.Payload)))
	buf = append(buf, it.Payload...)
	crc := crc32.ChecksumIEEE(buf)
	return binary.LittleEndian.AppendUint32(buf, crc)
}

// encodeSettle flattens one settle into the on-disk record.
func encodeSettle(seq int64) []byte {
	buf := make([]byte, 0, 13)
	buf = append(buf, recSettle)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(seq))
	crc := crc32.ChecksumIEEE(buf)
	return binary.LittleEndian.AppendUint32(buf, crc)
}

// appendEnqueue journals one accepted item. One write syscall per record
// on an O_APPEND descriptor: records never interleave, and a crash tears
// at most the last one (which the CRC catches on replay).
func (l *qlog) appendEnqueue(it Item) error {
	if l.closed {
		return nil
	}
	buf := encodeEnqueue(it)
	if _, err := l.f.Write(buf); err != nil {
		return fmt.Errorf("workqueue: journal append: %w", err)
	}
	l.size += int64(len(buf))
	return nil
}

// appendSettle journals one settled (acked or dead-lettered) seq, then
// compacts if the log has outgrown its live set. live() is consulted only
// when a compaction actually triggers.
func (l *qlog) appendSettle(seq int64, live func() []Item) error {
	if l.closed {
		return nil
	}
	buf := encodeSettle(seq)
	if _, err := l.f.Write(buf); err != nil {
		return fmt.Errorf("workqueue: journal settle: %w", err)
	}
	l.size += int64(len(buf))
	if l.size > max(compactFloor, compactFactor*l.lastCompact) {
		if err := l.compact(live()); err != nil {
			l.compactErrors++
			// Back the threshold off to the current size so a persistently
			// failing rewrite does not retry on every subsequent settle.
			l.lastCompact = l.size
		}
	}
	return nil
}

// compact rewrites the journal to exactly the live items: temp file +
// rename (a crash leaves either the old log or the complete new one),
// then the append descriptor swaps to the compacted file.
func (l *qlog) compact(live []Item) error {
	tmp, err := os.CreateTemp(l.dir, ".workqueue-*")
	if err != nil {
		return fmt.Errorf("workqueue: compact: %w", err)
	}
	defer os.Remove(tmp.Name())
	w := bufio.NewWriterSize(tmp, 1<<20)
	written := int64(0)
	n, err := w.WriteString(logMagic + "\n")
	written += int64(n)
	for _, it := range live {
		if err != nil {
			break
		}
		if it.Payload == nil {
			continue // memory-only item; never journaled
		}
		var wn int
		wn, err = w.Write(encodeEnqueue(it))
		written += int64(wn)
	}
	if err == nil {
		err = w.Flush()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("workqueue: compact: %w", err)
	}
	path := filepath.Join(l.dir, logFile)
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("workqueue: compact: %w", err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("workqueue: compact reopen: %w", err)
	}
	old := l.f
	l.f = f
	old.Close()
	l.size, l.lastCompact = written, written
	l.compactions++
	return nil
}

// close releases the file descriptor; further appends are silently
// dropped (the in-memory queue remains authoritative for this life).
func (l *qlog) close() error {
	if l.closed {
		return nil
	}
	l.closed = true
	return l.f.Close()
}
