// Package workqueue is the durable intake tier of the vetting cluster
// protocol: a bounded, seq-ordered submission queue whose work is handed
// out under leases — the coordinator half of the taskcluster-worker shape
// ROADMAP targets, rehearsed in-process so a later network API can slot in
// without changing worker semantics.
//
// The contract:
//
//   - Enqueue assigns a vet sequence number (or honors a pinned one) and,
//     when the queue has a journal directory, appends the submission to a
//     CRC-framed log before admitting it — a kill-and-restart replays every
//     enqueued-but-unacked submission.
//   - Claim hands the lowest-seq pending item to a worker under a lease.
//     With a LeaseTTL configured, a lease that is neither acked, nacked,
//     nor heartbeat-extended within the TTL expires: the item is reclaimed
//     and re-issued to the next claimer without burning its seq.
//   - Heartbeat extends a lease mid-vet; Ack settles it (journaling the
//     settle so the item never replays); Nack returns the item for another
//     attempt. An item that exhausts MaxAttempts is dead-lettered through
//     the OnDead callback instead of cycling forever.
//
// Capacity bounds the *waiting* items, exactly like the channel queue this
// package replaced: admission takes a slot token (TryAcquire/Acquire),
// Claim returns it. Reclaimed and replayed items may transiently push the
// pending count past Capacity; the overflow is repaid from freed slots
// before new admissions see them.
package workqueue

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"apichecker/internal/obs"
)

// Typed queue failures.
var (
	// ErrFull: the queue is at capacity; nothing was enqueued.
	ErrFull = errors.New("workqueue: queue full")

	// ErrClosed: the queue has been closed (or shut down) and accepts no
	// new items.
	ErrClosed = errors.New("workqueue: queue closed")

	// ErrDrained: a graceful shutdown has settled every item; Claim has
	// nothing left to hand out, ever.
	ErrDrained = errors.New("workqueue: queue drained")

	// ErrLeaseLost: the lease expired and its item was reclaimed (or the
	// queue closed under it); the holder's ack/heartbeat no longer counts.
	ErrLeaseLost = errors.New("workqueue: lease lost")
)

// Item is one queued submission.
type Item struct {
	// Seq is the vet sequence number — the item's identity across claims,
	// restarts, and logs. Reclaims and replays never burn it.
	Seq int64

	// Key is an optional content identity (digest) journaled with the
	// payload.
	Key string

	// Payload is the durable body (raw archive bytes). Items with a nil
	// Payload are memory-only: they are never journaled and do not survive
	// a restart.
	Payload []byte

	// Mem is an in-process attachment (contexts, parsed forms) that rides
	// the item between enqueue and claim but is lost on replay.
	Mem any

	// Attempts counts claims issued for this item, including the current
	// one.
	Attempts int

	// EnqueuedAt is the wall-clock admission time (this life; replayed
	// items restart the clock at replay).
	EnqueuedAt time.Time

	// Replayed marks an item restored from the journal at Open.
	Replayed bool
}

// Config tunes one queue.
type Config struct {
	// Capacity bounds the waiting items (claimed items ride on top);
	// <= 0 selects 64.
	Capacity int

	// LeaseTTL is how long a claim may go without an ack, nack, or
	// heartbeat before its item is reclaimed; 0 means leases never expire.
	LeaseTTL time.Duration

	// MaxAttempts bounds claims per item before it is dead-lettered;
	// <= 0 selects 3.
	MaxAttempts int

	// Dir, when non-empty, journals durable items (Payload != nil) so a
	// restart replays everything enqueued but never acked.
	Dir string

	// NextSeq reserves n consecutive sequence numbers and returns the
	// first (the Checker's ReserveVetSeqs shape); nil uses an internal
	// counter starting at 1.
	NextSeq func(n int) int64

	// Now is the clock (tests inject a fake one); nil uses time.Now.
	Now func() time.Time

	// Obs, when set, receives the queue's gauges (svc.queue.depth,
	// svc.queue.leases), counters (svc.queue.enqueued/acked/nacked/
	// reclaimed/replayed/dead_lettered), and the svc.queue.lease_age
	// distribution (wall seconds per settled lease).
	Obs *obs.Collector

	// OnDead receives each dead-lettered item with the failure that
	// exhausted it. Called without queue locks held; the item is already
	// settled (it will not replay).
	OnDead func(Item, error)
}

// Stats is a point-in-time queue activity snapshot.
type Stats struct {
	Depth    int // items waiting for a claim
	Leased   int // items out under a live lease
	Capacity int

	Enqueued     uint64
	Acked        uint64
	Nacked       uint64
	Reclaimed    uint64 // leases expired and re-issued
	Replayed     uint64 // items restored from the journal at Open
	DeadLettered uint64

	// ReplaySkipped counts journal records dropped during replay because
	// they were torn or corrupt (a crash mid-append) — the post-crash
	// signal an operator checks before trusting a replayed backlog.
	ReplaySkipped uint64
}

// seqHeap orders pending items by seq — FIFO order equals seq order, and
// a reclaimed item re-enters ahead of everything enqueued after it.
// Hand-rolled sift-up/sift-down rather than container/heap: the interface
// boxing on heap.Push/Pop costs an allocation per item on the hot path.
type seqHeap []Item

func (h *seqHeap) push(it Item) {
	s := append(*h, it)
	*h = s
	for i := len(s) - 1; i > 0; {
		p := (i - 1) / 2
		if s[p].Seq <= s[i].Seq {
			break
		}
		s[p], s[i] = s[i], s[p]
		i = p
	}
}

func (h *seqHeap) pop() Item {
	s := *h
	n := len(s) - 1
	s[0], s[n] = s[n], s[0]
	it := s[n]
	s[n] = Item{} // release Payload/Mem references
	s = s[:n]
	*h = s
	for i := 0; ; {
		m := 2*i + 1
		if m >= n {
			break
		}
		if r := m + 1; r < n && s[r].Seq < s[m].Seq {
			m = r
		}
		if s[i].Seq <= s[m].Seq {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
	return it
}

// takeMin removes and returns the lowest-seq pending item accept allows;
// a nil accept takes the root. The filtered form scans the heap slice —
// linear, but the queue is capacity-bounded and only filtered claims
// (cluster affinity routing) pay it; plain claims pop the root.
func (h *seqHeap) takeMin(accept func(Item) bool) (Item, bool) {
	s := *h
	if len(s) == 0 {
		return Item{}, false
	}
	if accept == nil {
		return h.pop(), true
	}
	best := -1
	for i := range s {
		if !accept(s[i]) {
			continue
		}
		if best < 0 || s[i].Seq < s[best].Seq {
			best = i
		}
	}
	if best < 0 {
		return Item{}, false
	}
	return h.removeAt(best), true
}

// removeAt deletes the element at index i, restoring heap order.
func (h *seqHeap) removeAt(i int) Item {
	s := *h
	n := len(s) - 1
	it := s[i]
	s[i], s[n] = s[n], Item{}
	*h = s[:n]
	if i < n {
		h.siftDown(i)
		h.siftUp(i)
	}
	return it
}

func (h seqHeap) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if h[p].Seq <= h[i].Seq {
			return
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
}

func (h seqHeap) siftDown(i int) {
	n := len(h)
	for {
		m := 2*i + 1
		if m >= n {
			return
		}
		if r := m + 1; r < n && h[r].Seq < h[m].Seq {
			m = r
		}
		if h[i].Seq <= h[m].Seq {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// lease tracks one outstanding claim.
type leaseState struct {
	item     Item
	token    uint64
	deadline time.Time // zero when leases never expire
	leasedAt time.Time
}

// Queue is a running work queue. Construct with Open.
type Queue struct {
	cfg Config
	now func() time.Time

	// slots carries one token per free queue position; admission takes a
	// token (TryAcquire/Acquire), Claim returns it — unless debt is
	// outstanding from replayed or reclaimed items that oversubscribed
	// capacity, in which case the freed slot repays the debt first.
	slots chan struct{}

	mu       sync.Mutex
	pending  seqHeap
	leases   map[int64]leaseState // by seq (value map: one less alloc per claim)
	debt     int
	token    uint64 // lease token source
	closed   bool   // no new enqueues; Claim drains then reports ErrDrained
	released bool   // Close called: journal shut, claims report ErrClosed
	waiters  int    // Claims blocked on wake (pulses are skipped at zero)
	wake     chan struct{}
	log      *qlog
	nextSeq  int64 // internal counter when cfg.NextSeq == nil
	maxSeq   int64 // highest seq the journal had recorded at Open

	depth, leased                                      *obs.Gauge
	enqueued, acked, nacked, reclaimed, replayed, dead *obs.Counter
	replaySkipped                                      *obs.Counter
	leaseAge                                           *obs.Distribution
}

// Open builds a queue. With cfg.Dir set it opens (or creates) the journal
// there and returns the replayed items — every submission a previous life
// enqueued but never acked, in seq order, already resident in the queue
// and ready to claim.
func Open(cfg Config) (*Queue, []Item, error) {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 64
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	col := cfg.Obs
	if col == nil {
		col = obs.NewCollector()
	}
	q := &Queue{
		cfg:       cfg,
		now:       now,
		slots:     make(chan struct{}, cfg.Capacity),
		leases:    make(map[int64]leaseState),
		wake:      make(chan struct{}),
		depth:     col.Gauge("svc.queue.depth"),
		leased:    col.Gauge("svc.queue.leases"),
		enqueued:  col.Counter("svc.queue.enqueued"),
		acked:     col.Counter("svc.queue.acked"),
		nacked:    col.Counter("svc.queue.nacked"),
		reclaimed: col.Counter("svc.queue.reclaimed"),
		replayed:  col.Counter("svc.queue.replayed"),
		dead:      col.Counter("svc.queue.dead_lettered"),
		leaseAge:  col.Distribution("svc.queue.lease_age"),
		// Torn/corrupt journal records dropped at replay: previously only
		// returned from openLog (and dropped), now a first-class counter.
		replaySkipped: col.Counter("workqueue.replay_skipped"),
	}
	for i := 0; i < cfg.Capacity; i++ {
		q.slots <- struct{}{}
	}

	var replayed []Item
	if cfg.Dir != "" {
		log, items, maxSeq, skipped, err := openLog(cfg.Dir)
		if err != nil {
			return nil, nil, err
		}
		q.log = log
		q.maxSeq = maxSeq
		q.replaySkipped.Add(uint64(skipped))
		// The internal counter resumes past everything the journal ever
		// recorded; external seq sources consult ReplayMaxSeq themselves.
		q.nextSeq = maxSeq
		replayed = items
		at := now()
		for i := range replayed {
			replayed[i].EnqueuedAt = at
			// Like a reclaim, a replayed item holds no admission token:
			// consume a free slot, or run above capacity on debt.
			select {
			case <-q.slots:
			default:
				q.debt++
			}
			q.insertLocked(replayed[i])
			q.replayed.Inc()
		}
	}
	return q, replayed, nil
}

// ReplayMaxSeq returns the highest sequence number the journal had ever
// recorded when the queue opened (0 without a journal or on a fresh one).
// Callers using an external seq source advance it past this so new
// admissions never collide with numbers a previous life consumed.
func (q *Queue) ReplayMaxSeq() int64 { return q.maxSeq }

// TryAcquire takes one queue slot without blocking; false means the queue
// is at capacity. A successful acquire must be followed by Enqueue or
// Release.
func (q *Queue) TryAcquire() bool {
	select {
	case <-q.slots:
		return true
	default:
		return false
	}
}

// Acquire blocks for a queue slot until one frees or ctx ends.
func (q *Queue) Acquire(ctx context.Context) error {
	select {
	case <-q.slots:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Release returns an acquired slot unused (the admission failed
// validation or the service is draining).
func (q *Queue) Release() { q.slots <- struct{}{} }

// Enqueue admits one item, consuming a slot the caller acquired. A zero
// Seq is assigned from the seq source; the assigned seq is returned. With
// a journal, durable items are logged before they become claimable, so an
// accepted submission is crash-safe by the time Enqueue returns.
func (q *Queue) Enqueue(it Item) (int64, error) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		q.Release()
		return 0, ErrClosed
	}
	if it.Seq == 0 {
		if q.cfg.NextSeq != nil {
			it.Seq = q.cfg.NextSeq(1)
		} else {
			q.nextSeq++
			it.Seq = q.nextSeq
		}
	}
	it.Attempts = 0
	it.EnqueuedAt = q.now()
	if q.log != nil && it.Payload != nil {
		if err := q.log.appendEnqueue(it); err != nil {
			q.mu.Unlock()
			q.Release()
			return 0, err
		}
	}
	q.insertLocked(it)
	q.enqueued.Inc()
	q.pulseLocked()
	q.mu.Unlock()
	return it.Seq, nil
}

// insertLocked places an item in the pending heap without touching the
// slot tokens (the caller's token transferred in, or the item is a replay
// or reclaim riding above capacity via debt accounting on the way out).
func (q *Queue) insertLocked(it Item) {
	q.pending.push(it)
	q.depth.Set(int64(len(q.pending)))
}

// reinsertLocked returns a reclaimed or nacked item to pending. It holds
// no slot token: if one is free it is consumed, otherwise the queue runs
// above capacity and the next freed slot repays the debt.
func (q *Queue) reinsertLocked(it Item) {
	select {
	case <-q.slots:
	default:
		q.debt++
	}
	q.insertLocked(it)
	q.pulseLocked()
}

// releaseSlotLocked frees the slot a claimed item held, repaying debt
// first.
func (q *Queue) releaseSlotLocked() {
	if q.debt > 0 {
		q.debt--
		return
	}
	q.slots <- struct{}{}
}

// pulseLocked wakes every blocked Claim to rescan the queue state. With
// no claimer waiting (lanes all busy — the steady serving state) it is
// free: no channel is closed or reallocated.
func (q *Queue) pulseLocked() {
	if q.waiters == 0 {
		return
	}
	close(q.wake)
	q.wake = make(chan struct{})
}

// Claim blocks for the lowest-seq pending item and leases it to the
// caller. It returns ErrDrained once a Shutdown queue has settled
// everything, ErrClosed after Close, or ctx's error.
func (q *Queue) Claim(ctx context.Context) (*Lease, error) {
	return q.ClaimWhere(ctx, nil)
}

// ClaimWhere is Claim restricted to items accept allows: it leases the
// lowest-seq pending item for which accept reports true, waiting (like
// Claim) when nothing acceptable is pending. This is the cluster
// coordinator's affinity hook — a claim request routes around items whose
// digest belongs to another live node. accept is called under the queue
// lock: it must be fast and must not call back into the queue. A nil
// accept is plain Claim.
func (q *Queue) ClaimWhere(ctx context.Context, accept func(Item) bool) (*Lease, error) {
	for {
		q.mu.Lock()
		if q.released {
			q.mu.Unlock()
			return nil, ErrClosed
		}
		dead := q.reclaimLocked()
		if it, ok := q.pending.takeMin(accept); ok {
			q.depth.Set(int64(len(q.pending)))
			q.releaseSlotLocked()
			it.Attempts++
			q.token++
			ls := leaseState{item: it, token: q.token, leasedAt: q.now()}
			if q.cfg.LeaseTTL > 0 {
				ls.deadline = ls.leasedAt.Add(q.cfg.LeaseTTL)
			}
			q.leases[it.Seq] = ls
			q.leased.Set(int64(len(q.leases)))
			q.mu.Unlock()
			q.fireDead(dead)
			return &Lease{q: q, item: it, token: ls.token}, nil
		}
		if q.closed && len(q.pending) == 0 && len(q.leases) == 0 {
			q.mu.Unlock()
			q.fireDead(dead)
			return nil, ErrDrained
		}
		// Nothing claimable: wait for an enqueue, a nack, a shutdown — or
		// the earliest lease expiry, after which a rescan reclaims it.
		wake, expiry, timer := q.armWaitLocked()
		q.mu.Unlock()
		q.fireDead(dead)
		select {
		case <-wake:
		case <-expiry:
		case <-ctx.Done():
		}
		if timer != nil {
			timer.Stop()
		}
		q.mu.Lock()
		q.waiters--
		q.mu.Unlock()
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
}

// armWaitLocked registers the caller as a waiter and returns the wake
// channel plus a timer armed at the earliest lease expiry (nil channels
// when no lease can expire). Registering as a waiter before capturing the
// channel (both under q.mu) means no pulse between the return and the
// caller's select can be missed. Caller holds q.mu and must decrement
// q.waiters (under q.mu) after its select.
func (q *Queue) armWaitLocked() (wake <-chan struct{}, expiry <-chan time.Time, timer *time.Timer) {
	q.waiters++
	wake = q.wake
	if q.cfg.LeaseTTL > 0 && len(q.leases) > 0 {
		next := time.Time{}
		for _, ls := range q.leases {
			if next.IsZero() || ls.deadline.Before(next) {
				next = ls.deadline
			}
		}
		d := next.Sub(q.now())
		if d < time.Millisecond {
			d = time.Millisecond
		}
		timer = time.NewTimer(d)
		expiry = timer.C
	}
	return wake, expiry, timer
}

// AwaitDrained blocks until a Shutdown queue has settled every pending
// item and lease — the coordinator-mode drain primitive. A service whose
// claims all come from remote worker nodes has no local claim loop, yet
// something must keep expiring abandoned leases (and delivering their
// dead-letter callbacks) while the drain waits; AwaitDrained is that
// something. Returns nil once the queue is drained (or was abruptly
// Closed, after which nothing more can settle), or ctx's error.
func (q *Queue) AwaitDrained(ctx context.Context) error {
	for {
		q.mu.Lock()
		if q.released {
			q.mu.Unlock()
			return nil
		}
		dead := q.reclaimLocked()
		if q.closed && len(q.pending) == 0 && len(q.leases) == 0 {
			q.mu.Unlock()
			q.fireDead(dead)
			return nil
		}
		wake, expiry, timer := q.armWaitLocked()
		q.mu.Unlock()
		q.fireDead(dead)
		select {
		case <-wake:
		case <-expiry:
		case <-ctx.Done():
		}
		if timer != nil {
			timer.Stop()
		}
		q.mu.Lock()
		q.waiters--
		q.mu.Unlock()
		if err := ctx.Err(); err != nil {
			return err
		}
	}
}

// reclaimLocked expires overdue leases: their items return to pending
// (keeping their seqs) unless attempts are exhausted, in which case they
// are settled and returned for dead-letter callbacks outside the lock.
func (q *Queue) reclaimLocked() []deadItem {
	if q.cfg.LeaseTTL <= 0 || len(q.leases) == 0 {
		return nil
	}
	now := q.now()
	var dead []deadItem
	for seq, ls := range q.leases {
		if ls.deadline.After(now) {
			continue
		}
		delete(q.leases, seq)
		q.leaseAge.Observe(now.Sub(ls.leasedAt).Seconds())
		q.reclaimed.Inc()
		cause := fmt.Errorf("%w: lease expired after %d attempt(s)", ErrLeaseLost, ls.item.Attempts)
		if ls.item.Attempts >= q.cfg.MaxAttempts {
			dead = append(dead, q.settleDeadLocked(ls.item, cause))
		} else {
			q.reinsertLocked(ls.item)
		}
	}
	q.leased.Set(int64(len(q.leases)))
	if len(dead) > 0 || len(q.leases) == 0 {
		q.pulseLocked()
	}
	return dead
}

// deadItem pairs a dead-lettered item with its terminal cause for the
// OnDead callback.
type deadItem struct {
	item  Item
	cause error
}

// settleDeadLocked books one dead-lettered item: journal settle (it must
// not replay) and counters. The freed slot is NOT returned here — the
// item was leased, and the lease's slot was already released at claim.
func (q *Queue) settleDeadLocked(it Item, cause error) deadItem {
	q.dead.Inc()
	if q.log != nil && it.Payload != nil {
		q.log.appendSettle(it.Seq, q.liveLocked)
	}
	return deadItem{item: it, cause: cause}
}

// liveLocked snapshots every unsettled durable item (pending + leased)
// for journal compaction.
func (q *Queue) liveLocked() []Item {
	live := make([]Item, 0, len(q.pending)+len(q.leases))
	live = append(live, q.pending...)
	for _, ls := range q.leases {
		live = append(live, ls.item)
	}
	return live
}

// fireDead delivers dead-letter callbacks outside the queue lock.
func (q *Queue) fireDead(dead []deadItem) {
	if q.cfg.OnDead == nil {
		return
	}
	for _, d := range dead {
		q.cfg.OnDead(d.item, d.cause)
	}
}

// Stats snapshots queue activity.
func (q *Queue) Stats() Stats {
	q.mu.Lock()
	depth, leased := len(q.pending), len(q.leases)
	q.mu.Unlock()
	return Stats{
		Depth:         depth,
		Leased:        leased,
		Capacity:      q.cfg.Capacity,
		Enqueued:      q.enqueued.Load(),
		Acked:         q.acked.Load(),
		Nacked:        q.nacked.Load(),
		Reclaimed:     q.reclaimed.Load(),
		Replayed:      q.replayed.Load(),
		DeadLettered:  q.dead.Load(),
		ReplaySkipped: q.replaySkipped.Load(),
	}
}

// LeaseTTL returns the configured lease TTL (0 when leases never expire)
// — claim responses ship it so remote workers can pace heartbeats.
func (q *Queue) LeaseTTL() time.Duration { return q.cfg.LeaseTTL }

// Shutdown begins a graceful drain: no new enqueues (ErrClosed), but
// pending items remain claimable and outstanding leases can still settle.
// Once everything is settled, Claim reports ErrDrained.
func (q *Queue) Shutdown() {
	q.mu.Lock()
	q.closed = true
	q.pulseLocked()
	q.mu.Unlock()
}

// Close releases the queue abruptly: enqueues and claims fail, blocked
// claims wake, and the journal file handle closes — pending items stay
// journaled (unsettled) exactly as a crash would leave them, which is the
// point: the next Open replays them.
func (q *Queue) Close() error {
	q.mu.Lock()
	q.closed, q.released = true, true
	var err error
	if q.log != nil {
		err = q.log.close()
	}
	q.pulseLocked()
	q.mu.Unlock()
	return err
}

// Lease is one claim on one item. The holder must settle it exactly once
// with Ack or Nack; Heartbeat extends it mid-work.
type Lease struct {
	q     *Queue
	item  Item
	token uint64
}

// Item returns the leased item (Attempts counts this claim).
func (l *Lease) Item() Item { return l.item }

// Token returns the lease's claim token — the remote-lease view: a
// coordinator handing leases to worker nodes over the wire ships the
// token with the claim and matches it on every heartbeat/ack/nack, so a
// node acking a lease that was reclaimed and re-issued (new token) is
// rejected exactly like a stale in-process Lease would be.
func (l *Lease) Token() uint64 { return l.token }

// Valid reports whether the lease is still live — its item has not been
// reclaimed out from under the holder.
func (l *Lease) Valid() bool {
	l.q.mu.Lock()
	ls, ok := l.q.leases[l.item.Seq]
	l.q.mu.Unlock()
	return ok && ls.token == l.token
}

// Heartbeat extends the lease by one TTL (a no-op without a TTL). It
// fails with ErrLeaseLost if the lease has already been reclaimed.
func (l *Lease) Heartbeat() error {
	l.q.mu.Lock()
	defer l.q.mu.Unlock()
	ls, ok := l.q.leases[l.item.Seq]
	if !ok || ls.token != l.token {
		return ErrLeaseLost
	}
	if l.q.cfg.LeaseTTL > 0 {
		ls.deadline = l.q.now().Add(l.q.cfg.LeaseTTL)
		l.q.leases[l.item.Seq] = ls
	}
	return nil
}

// Ack settles the lease as done: the item is journaled settled (it will
// never replay) and leaves the queue for good. Fails with ErrLeaseLost if
// the item was reclaimed — the result now belongs to a later claim.
func (l *Lease) Ack() error {
	q := l.q
	q.mu.Lock()
	ls, ok := q.leases[l.item.Seq]
	if !ok || ls.token != l.token {
		q.mu.Unlock()
		return ErrLeaseLost
	}
	delete(q.leases, l.item.Seq)
	q.leased.Set(int64(len(q.leases)))
	q.leaseAge.Observe(q.now().Sub(ls.leasedAt).Seconds())
	q.acked.Inc()
	if q.log != nil && l.item.Payload != nil {
		q.log.appendSettle(l.item.Seq, q.liveLocked)
	}
	q.pulseLocked()
	q.mu.Unlock()
	return nil
}

// Nack returns the item for another attempt (requeued true) — unless its
// attempts are exhausted, in which case it is dead-lettered with cause
// (requeued false, OnDead fired). Fails with ErrLeaseLost if the item was
// already reclaimed.
func (l *Lease) Nack(cause error) (requeued bool, err error) {
	q := l.q
	q.mu.Lock()
	ls, ok := q.leases[l.item.Seq]
	if !ok || ls.token != l.token {
		q.mu.Unlock()
		return false, ErrLeaseLost
	}
	delete(q.leases, l.item.Seq)
	q.leased.Set(int64(len(q.leases)))
	q.leaseAge.Observe(q.now().Sub(ls.leasedAt).Seconds())
	q.nacked.Inc()
	var dead []deadItem
	if ls.item.Attempts >= q.cfg.MaxAttempts {
		if cause == nil {
			cause = fmt.Errorf("workqueue: nacked after %d attempt(s)", ls.item.Attempts)
		}
		dead = append(dead, q.settleDeadLocked(ls.item, cause))
		q.pulseLocked()
		q.mu.Unlock()
		q.fireDead(dead)
		return false, nil
	}
	q.reinsertLocked(ls.item)
	q.mu.Unlock()
	return true, nil
}
