package workqueue

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// fakeClock is an injectable queue clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// mustOpen builds a queue or fails the test.
func mustOpen(t *testing.T, cfg Config) (*Queue, []Item) {
	t.Helper()
	q, replayed, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return q, replayed
}

// enqueue admits one item through the full slot protocol.
func enqueue(t *testing.T, q *Queue, it Item) int64 {
	t.Helper()
	if !q.TryAcquire() {
		t.Fatal("enqueue: queue full")
	}
	seq, err := q.Enqueue(it)
	if err != nil {
		t.Fatalf("enqueue: %v", err)
	}
	return seq
}

// claim claims with a short deadline so a wedged queue fails the test
// instead of hanging it.
func claim(t *testing.T, q *Queue) *Lease {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	l, err := q.Claim(ctx)
	if err != nil {
		t.Fatalf("claim: %v", err)
	}
	return l
}

func TestClaimOrderIsSeqOrder(t *testing.T) {
	q, _ := mustOpen(t, Config{Capacity: 8})
	defer q.Close()
	for i := 0; i < 5; i++ {
		if seq := enqueue(t, q, Item{Key: fmt.Sprintf("k%d", i)}); seq != int64(i+1) {
			t.Fatalf("seq = %d, want %d", seq, i+1)
		}
	}
	for want := int64(1); want <= 5; want++ {
		l := claim(t, q)
		if got := l.Item().Seq; got != want {
			t.Fatalf("claimed seq %d, want %d", got, want)
		}
		if l.Item().Attempts != 1 {
			t.Fatalf("attempts = %d, want 1", l.Item().Attempts)
		}
		if err := l.Ack(); err != nil {
			t.Fatalf("ack: %v", err)
		}
	}
	q.Shutdown()
	if _, err := q.Claim(context.Background()); !errors.Is(err, ErrDrained) {
		t.Fatalf("claim after drain = %v, want ErrDrained", err)
	}
	st := q.Stats()
	if st.Enqueued != 5 || st.Acked != 5 || st.Depth != 0 || st.Leased != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCapacityBackpressure(t *testing.T) {
	q, _ := mustOpen(t, Config{Capacity: 2})
	defer q.Close()
	enqueue(t, q, Item{})
	enqueue(t, q, Item{})
	if q.TryAcquire() {
		t.Fatal("TryAcquire succeeded at capacity")
	}
	// A claim frees the admission slot.
	l := claim(t, q)
	if !q.TryAcquire() {
		t.Fatal("TryAcquire failed after claim freed a slot")
	}
	q.Release()
	if err := l.Ack(); err != nil {
		t.Fatal(err)
	}
}

func TestNackRequeuesThenDeadLetters(t *testing.T) {
	var (
		deadMu sync.Mutex
		dead   []Item
		cause  error
	)
	q, _ := mustOpen(t, Config{Capacity: 4, MaxAttempts: 2, OnDead: func(it Item, err error) {
		deadMu.Lock()
		dead = append(dead, it)
		cause = err
		deadMu.Unlock()
	}})
	defer q.Close()
	seq := enqueue(t, q, Item{Key: "poison"})

	l := claim(t, q)
	requeued, err := l.Nack(errors.New("boom 1"))
	if err != nil || !requeued {
		t.Fatalf("first nack: requeued=%v err=%v", requeued, err)
	}
	l = claim(t, q)
	if l.Item().Seq != seq || l.Item().Attempts != 2 {
		t.Fatalf("reissued claim = %+v", l.Item())
	}
	requeued, err = l.Nack(errors.New("boom 2"))
	if err != nil || requeued {
		t.Fatalf("final nack: requeued=%v err=%v", requeued, err)
	}

	deadMu.Lock()
	defer deadMu.Unlock()
	if len(dead) != 1 || dead[0].Seq != seq {
		t.Fatalf("dead letters = %+v", dead)
	}
	if cause == nil || cause.Error() != "boom 2" {
		t.Fatalf("dead cause = %v", cause)
	}
	st := q.Stats()
	if st.Nacked != 2 || st.DeadLettered != 1 || st.Depth != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLeaseExpiryReclaimsWithoutBurningSeq(t *testing.T) {
	clk := newFakeClock()
	q, _ := mustOpen(t, Config{Capacity: 4, LeaseTTL: time.Second, MaxAttempts: 3, Now: clk.Now})
	defer q.Close()
	seq := enqueue(t, q, Item{Key: "slow"})

	stale := claim(t, q)
	clk.Advance(2 * time.Second)

	// The next Claim reclaims the expired lease and re-issues the same
	// seq with a fresh lease.
	fresh := claim(t, q)
	if fresh.Item().Seq != seq || fresh.Item().Attempts != 2 {
		t.Fatalf("reissued claim = %+v, want seq %d attempt 2", fresh.Item(), seq)
	}
	if stale.Valid() {
		t.Fatal("stale lease still valid after reclaim")
	}
	if err := stale.Heartbeat(); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("stale heartbeat = %v, want ErrLeaseLost", err)
	}
	if err := stale.Ack(); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("stale ack = %v, want ErrLeaseLost", err)
	}
	if err := fresh.Ack(); err != nil {
		t.Fatalf("fresh ack: %v", err)
	}
	if st := q.Stats(); st.Reclaimed != 1 || st.Acked != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// The reclaim did not burn a sequence number.
	if next := enqueue(t, q, Item{}); next != seq+1 {
		t.Fatalf("next seq = %d, want %d", next, seq+1)
	}
}

func TestHeartbeatExtendsLease(t *testing.T) {
	clk := newFakeClock()
	q, _ := mustOpen(t, Config{Capacity: 4, LeaseTTL: time.Second, Now: clk.Now})
	defer q.Close()
	enqueue(t, q, Item{})

	l := claim(t, q)
	clk.Advance(700 * time.Millisecond)
	if err := l.Heartbeat(); err != nil {
		t.Fatalf("heartbeat: %v", err)
	}
	clk.Advance(700 * time.Millisecond) // past the original deadline, inside the extended one

	// Another claim triggers a reclaim scan; the heartbeat must have kept
	// the lease alive through it.
	enqueue(t, q, Item{})
	l2 := claim(t, q)
	if !l.Valid() {
		t.Fatal("heartbeat did not extend the lease")
	}
	if st := q.Stats(); st.Reclaimed != 0 {
		t.Fatalf("reclaimed = %d, want 0", st.Reclaimed)
	}
	if err := l2.Ack(); err != nil {
		t.Fatal(err)
	}
	if err := l.Ack(); err != nil {
		t.Fatal(err)
	}
}

func TestRestartReplaysOnlyUnacked(t *testing.T) {
	dir := t.TempDir()

	q, replayed := mustOpen(t, Config{Capacity: 8, Dir: dir})
	if len(replayed) != 0 {
		t.Fatalf("fresh journal replayed %d items", len(replayed))
	}
	for i := 1; i <= 4; i++ {
		enqueue(t, q, Item{Key: fmt.Sprintf("app%d", i), Payload: []byte(fmt.Sprintf("apk-%d", i))})
	}
	// Settle seq 1; leave seq 2 leased-but-unacked and 3..4 pending, then
	// die (Close leaves the journal exactly as a kill would).
	if l := claim(t, q); l.Item().Seq != 1 {
		t.Fatalf("claimed %d, want 1", l.Item().Seq)
	} else if err := l.Ack(); err != nil {
		t.Fatal(err)
	}
	claim(t, q) // seq 2: claimed, never acked
	q.Close()

	q2, replayed := mustOpen(t, Config{Capacity: 8, Dir: dir})
	defer q2.Close()
	if len(replayed) != 3 {
		t.Fatalf("replayed %d items, want 3", len(replayed))
	}
	for i, want := range []int64{2, 3, 4} {
		it := replayed[i]
		if it.Seq != want || !it.Replayed {
			t.Fatalf("replayed[%d] = %+v, want seq %d", i, it, want)
		}
		if string(it.Payload) != fmt.Sprintf("apk-%d", want) || it.Key != fmt.Sprintf("app%d", want) {
			t.Fatalf("replayed[%d] payload/key corrupted: %+v", i, it)
		}
	}
	if q2.ReplayMaxSeq() != 4 {
		t.Fatalf("ReplayMaxSeq = %d, want 4", q2.ReplayMaxSeq())
	}
	// Replayed items are immediately claimable, in seq order, and fresh
	// seqs continue past everything the journal recorded.
	if l := claim(t, q2); l.Item().Seq != 2 {
		t.Fatalf("first claim after replay = %d, want 2", l.Item().Seq)
	} else if err := l.Ack(); err != nil {
		t.Fatal(err)
	}
	if seq := enqueue(t, q2, Item{Payload: []byte("apk-5")}); seq != 5 {
		t.Fatalf("post-replay seq = %d, want 5", seq)
	}
	if st := q2.Stats(); st.Replayed != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestReplayAboveCapacityRunsOnDebt(t *testing.T) {
	dir := t.TempDir()
	q, _ := mustOpen(t, Config{Capacity: 4, Dir: dir})
	for i := 0; i < 4; i++ {
		enqueue(t, q, Item{Payload: []byte{byte(i)}})
	}
	q.Close()

	// Reopen with half the capacity: the replayed backlog oversubscribes
	// the queue, and admissions stay blocked until claims repay the debt.
	q2, replayed := mustOpen(t, Config{Capacity: 2, Dir: dir})
	defer q2.Close()
	if len(replayed) != 4 {
		t.Fatalf("replayed %d, want 4", len(replayed))
	}
	if q2.TryAcquire() {
		t.Fatal("admission succeeded while replay oversubscribes capacity")
	}
	// Claims 1 and 2 repay the two-item debt; claims beyond that free
	// real slots.
	var leases []*Lease
	for i := 0; i < 4; i++ {
		leases = append(leases, claim(t, q2))
	}
	if !q2.TryAcquire() {
		t.Fatal("admission still blocked after backlog claimed")
	}
	q2.Release()
	for _, l := range leases {
		if err := l.Ack(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestTornTailTruncatesToGoodPrefix(t *testing.T) {
	dir := t.TempDir()
	q, _ := mustOpen(t, Config{Capacity: 8, Dir: dir})
	for i := 1; i <= 3; i++ {
		enqueue(t, q, Item{Key: fmt.Sprintf("k%d", i), Payload: []byte("payload")})
	}
	q.Close()

	path := filepath.Join(dir, logFile)
	for name, mutate := range map[string]func([]byte) []byte{
		// A record cut off mid-write (the classic torn tail).
		"truncated-record": func(b []byte) []byte { return b[:len(b)-3] },
		// Garbage appended after the last good record.
		"trailing-garbage": func(b []byte) []byte { return append(b, 0xde, 0xad, 0xbe, 0xef) },
	} {
		t.Run(name, func(t *testing.T) {
			good, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			defer os.WriteFile(path, good, 0o644)
			if err := os.WriteFile(path, mutate(good), 0o644); err != nil {
				t.Fatal(err)
			}
			q2, replayed := mustOpen(t, Config{Capacity: 8, Dir: dir})
			defer q2.Close()
			want := 3
			if name == "truncated-record" {
				want = 2 // the torn third record is gone
			}
			if len(replayed) != want {
				t.Fatalf("replayed %d items, want %d", len(replayed), want)
			}
			// The dropped tail is visible to operators: one bad record (or
			// garbage run) counts as one skipped replay record.
			if got := q2.Stats().ReplaySkipped; got != 1 {
				t.Fatalf("ReplaySkipped = %d, want 1", got)
			}
			// The tail was truncated to the good prefix: appending works
			// and the next replay sees a consistent log.
			enqueue(t, q2, Item{Key: "after", Payload: []byte("fresh")})
			q2.Close()
			q3, replayed := mustOpen(t, Config{Capacity: 8, Dir: dir})
			defer q3.Close()
			if len(replayed) != want+1 {
				t.Fatalf("after repair: replayed %d, want %d", len(replayed), want+1)
			}
			if got := q3.Stats().ReplaySkipped; got != 0 {
				t.Fatalf("after repair: ReplaySkipped = %d, want 0", got)
			}
		})
	}
}

func TestJournalCompactionBoundsFileSize(t *testing.T) {
	dir := t.TempDir()
	q, _ := mustOpen(t, Config{Capacity: 2, Dir: dir})
	defer q.Close()
	payload := make([]byte, 128<<10)
	for i := 0; i < 24; i++ { // ~3 MiB of enqueue traffic, all settled
		enqueue(t, q, Item{Payload: payload})
		l := claim(t, q)
		if err := l.Ack(); err != nil {
			t.Fatal(err)
		}
	}
	fi, err := os.Stat(filepath.Join(dir, logFile))
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() > 2<<20 {
		t.Fatalf("journal never compacted: %d bytes after 3 MiB of settled traffic", fi.Size())
	}
}

func TestShutdownDrainsBeforeErrDrained(t *testing.T) {
	q, _ := mustOpen(t, Config{Capacity: 4})
	defer q.Close()
	enqueue(t, q, Item{})
	q.Shutdown()
	if ok := q.TryAcquire(); ok {
		// Slot tokens may remain; Enqueue itself must refuse.
		if _, err := q.Enqueue(Item{}); !errors.Is(err, ErrClosed) {
			t.Fatalf("enqueue after shutdown = %v, want ErrClosed", err)
		}
	}
	// The pending item is still claimable and must settle first.
	l := claim(t, q)
	done := make(chan error, 1)
	go func() {
		_, err := q.Claim(context.Background())
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("claim returned %v before the lease settled", err)
	case <-time.After(50 * time.Millisecond):
	}
	if err := l.Ack(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; !errors.Is(err, ErrDrained) {
		t.Fatalf("claim after drain = %v, want ErrDrained", err)
	}
}

func TestConcurrentProducersConsumers(t *testing.T) {
	const (
		producers = 4
		consumers = 4
		perProd   = 50
	)
	q, _ := mustOpen(t, Config{Capacity: 16})
	defer q.Close()

	var (
		mu   sync.Mutex
		seen = make(map[int64]int)
	)
	var consumed sync.WaitGroup
	for i := 0; i < consumers; i++ {
		consumed.Add(1)
		go func() {
			defer consumed.Done()
			for {
				l, err := q.Claim(context.Background())
				if err != nil {
					return
				}
				mu.Lock()
				seen[l.Item().Seq]++
				mu.Unlock()
				if err := l.Ack(); err != nil {
					t.Errorf("ack: %v", err)
				}
			}
		}()
	}

	var produced sync.WaitGroup
	for i := 0; i < producers; i++ {
		produced.Add(1)
		go func() {
			defer produced.Done()
			for j := 0; j < perProd; j++ {
				if err := q.Acquire(context.Background()); err != nil {
					t.Errorf("acquire: %v", err)
					return
				}
				if _, err := q.Enqueue(Item{}); err != nil {
					t.Errorf("enqueue: %v", err)
					return
				}
			}
		}()
	}
	produced.Wait()
	q.Shutdown()
	consumed.Wait()

	mu.Lock()
	defer mu.Unlock()
	if len(seen) != producers*perProd {
		t.Fatalf("claimed %d distinct seqs, want %d", len(seen), producers*perProd)
	}
	for seq, n := range seen {
		if n != 1 {
			t.Fatalf("seq %d claimed %d times", seq, n)
		}
	}
	if st := q.Stats(); st.Acked != producers*perProd {
		t.Fatalf("stats = %+v", st)
	}
}
