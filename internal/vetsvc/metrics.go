package vetsvc

import (
	"context"
	"errors"
	"sort"
	"sync"

	"apichecker/internal/core"
	"apichecker/internal/vcache"
)

// Metrics is an immutable snapshot of service activity since start. Scan
// latencies are in virtual-clock seconds (the calibrated emulation clock
// the paper reports per-app scan cost in), so quantiles are deterministic
// and host-speed independent.
type Metrics struct {
	// Admission counters.
	Accepted uint64
	Rejected uint64 // queue-full rejections (ErrQueueFull)

	// Completion counters. Completed + Timeouts + Canceled + Failed ==
	// the number of settled submissions.
	Completed uint64
	Timeouts  uint64 // deadline expiries (ErrDeadlineExceeded)
	Canceled  uint64 // caller-canceled contexts
	Failed    uint64 // any other vet error

	// Verdict-cache accounting over completed submissions. A miss paid a
	// full emulation; a hit was answered from the digest-keyed cache; a
	// coalesced completion blocked on a concurrent identical submission's
	// emulation; a bypass means the cache was disabled or the payload had
	// no digest (and therefore also paid a full emulation).
	CacheHits      uint64
	CacheMisses    uint64
	CacheCoalesced uint64
	CacheBypass    uint64

	// Reliability accounting (§5.1), aggregated from emulated completions
	// only — a cache-served verdict repeats the leader's crash/fallback
	// fields, so counting it again would invent emulator activity that
	// never happened.
	Crashes            uint64 // total transient emulator crashes restarted through
	CrashedSubmissions uint64 // submissions with at least one crash
	Fallbacks          uint64 // submissions re-run on the fallback engine

	// EngineRuns counts emulated completions by the engine that produced
	// the final log (lightweight vs the stock Google engine).
	EngineRuns map[string]uint64

	// Scan-latency distribution over all completed submissions, virtual
	// seconds. Kept for continuity; under cache traffic prefer the split
	// distributions below, since cheap cache-served completions would
	// otherwise mask emulation-path regressions.
	ScanMean float64
	ScanP50  float64
	ScanP95  float64
	ScanP99  float64

	// MissScan is the emulation-path distribution (cache misses and
	// bypasses) — the one to watch for engine regressions. HitScan covers
	// cache-served completions (hits and coalesced); it reports the
	// verdicts' recorded virtual scan time, identical to what the same
	// submissions would have cost uncached.
	MissScan ScanStats
	HitScan  ScanStats

	// Instantaneous gauges at snapshot time.
	QueueDepth int // submissions waiting for a lane
	InFlight   int // submissions being vetted right now
}

// ScanStats is one scan-latency distribution in virtual-clock seconds.
type ScanStats struct {
	Count uint64
	Mean  float64
	P50   float64
	P95   float64
	P99   float64
}

// counters is the service-internal mutable state behind Metrics.
type counters struct {
	mu sync.Mutex

	accepted, rejected                  uint64
	completed, timeouts, cancel, failed uint64
	hits, misses, coalesced, bypass     uint64
	crashes, crashedSubs, fallbacks     uint64
	engines                             map[string]uint64
	scans                               []float64 // all completions, virtual seconds
	missScans                           []float64 // emulated completions only
	hitScans                            []float64 // cache-served completions only
	inFlight                            int
}

func (c *counters) bump(field *uint64) {
	c.mu.Lock()
	*field++
	c.mu.Unlock()
}

func (c *counters) startJob() {
	c.mu.Lock()
	c.inFlight++
	c.mu.Unlock()
}

// finishJob books one settled submission.
func (c *counters) finishJob(v *core.Verdict, err error, out vcache.Outcome) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.inFlight--
	switch {
	case err == nil:
		c.completed++
		sec := v.ScanTime.Seconds()
		c.scans = append(c.scans, sec)
		switch out {
		case vcache.OutcomeHit:
			c.hits++
		case vcache.OutcomeCoalesced:
			c.coalesced++
		case vcache.OutcomeMiss:
			c.misses++
		default:
			c.bypass++
		}
		if out.Served() {
			c.hitScans = append(c.hitScans, sec)
			return // no emulation happened; reliability already booked by the leader
		}
		c.missScans = append(c.missScans, sec)
		c.crashes += uint64(v.Crashes)
		if v.Crashes > 0 {
			c.crashedSubs++
		}
		if v.FellBack {
			c.fallbacks++
		}
		if v.Engine != "" {
			c.engines[v.Engine]++
		}
	case errors.Is(err, core.ErrDeadlineExceeded) || errors.Is(err, context.DeadlineExceeded):
		c.timeouts++
	case errors.Is(err, context.Canceled):
		c.cancel++
	default:
		c.failed++
	}
}

// Metrics returns a consistent snapshot; quantiles are computed over a
// sorted copy of the completed-scan samples (nearest-rank).
func (s *Service) Metrics() Metrics {
	c := &s.m
	c.mu.Lock()
	m := Metrics{
		Accepted:           c.accepted,
		Rejected:           c.rejected,
		Completed:          c.completed,
		Timeouts:           c.timeouts,
		Canceled:           c.cancel,
		Failed:             c.failed,
		CacheHits:          c.hits,
		CacheMisses:        c.misses,
		CacheCoalesced:     c.coalesced,
		CacheBypass:        c.bypass,
		Crashes:            c.crashes,
		CrashedSubmissions: c.crashedSubs,
		Fallbacks:          c.fallbacks,
		EngineRuns:         make(map[string]uint64, len(c.engines)),
		InFlight:           c.inFlight,
	}
	for k, v := range c.engines {
		m.EngineRuns[k] = v
	}
	scans := append([]float64(nil), c.scans...)
	missScans := append([]float64(nil), c.missScans...)
	hitScans := append([]float64(nil), c.hitScans...)
	c.mu.Unlock()
	m.QueueDepth = len(s.queue)

	m.MissScan = newScanStats(missScans)
	m.HitScan = newScanStats(hitScans)
	if len(scans) > 0 {
		all := newScanStats(scans)
		m.ScanMean, m.ScanP50, m.ScanP95, m.ScanP99 = all.Mean, all.P50, all.P95, all.P99
	}
	return m
}

// newScanStats summarizes one latency sample set; samples are sorted in
// place.
func newScanStats(samples []float64) ScanStats {
	if len(samples) == 0 {
		return ScanStats{}
	}
	var sum float64
	for _, v := range samples {
		sum += v
	}
	sort.Float64s(samples)
	return ScanStats{
		Count: uint64(len(samples)),
		Mean:  sum / float64(len(samples)),
		P50:   quantile(samples, 0.50),
		P95:   quantile(samples, 0.95),
		P99:   quantile(samples, 0.99),
	}
}

// quantile is the nearest-rank quantile of a sorted sample.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(q*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}
