package vetsvc

import (
	"context"
	"errors"
	"runtime"
	"strings"

	"apichecker/internal/core"
	"apichecker/internal/obs"
	"apichecker/internal/vcache"
)

// Metrics is an immutable snapshot of service activity since start. Scan
// latencies are in virtual-clock seconds (the calibrated emulation clock
// the paper reports per-app scan cost in), so quantiles are deterministic
// and host-speed independent.
//
// The snapshot is a thin view over the service's obs.Collector: every
// counter below is an obs counter (svc.accepted, svc.timeouts,
// svc.engine.<name>, …) and every distribution an obs distribution
// (svc.scan.all/miss/hit), so attaching a Sink or reading
// Service.Obs().Counters() observes exactly the numbers reported here.
type Metrics struct {
	// Admission counters.
	Accepted uint64
	Rejected uint64 // queue-full rejections (ErrQueueFull)

	// Completion counters. Completed + Timeouts + Drained + Canceled +
	// Failed == the number of settled submissions.
	Completed uint64
	Timeouts  uint64 // deadline expiries (ErrDeadlineExceeded)
	Drained   uint64 // aborted by a hard service drain (ErrDraining)
	Canceled  uint64 // caller-canceled contexts
	Failed    uint64 // any other vet error

	// Verdict-cache accounting over completed submissions. A miss paid a
	// full emulation; a hit was answered from the digest-keyed cache; a
	// coalesced completion blocked on a concurrent identical submission's
	// emulation; a bypass means the cache was disabled or the payload had
	// no digest (and therefore also paid a full emulation).
	CacheHits      uint64
	CacheMisses    uint64
	CacheCoalesced uint64
	CacheBypass    uint64

	// Reliability accounting (§5.1), aggregated from emulated completions
	// only — a cache-served verdict repeats the leader's crash/fallback
	// fields, so counting it again would invent emulator activity that
	// never happened.
	Crashes            uint64 // total transient emulator crashes restarted through
	CrashedSubmissions uint64 // submissions with at least one crash
	Fallbacks          uint64 // submissions re-run on the fallback engine

	// EngineRuns counts emulated completions by the engine that produced
	// the final log (lightweight vs the stock Google engine).
	EngineRuns map[string]uint64

	// Scan-latency distribution over all completed submissions, virtual
	// seconds. Kept for continuity; under cache traffic prefer the split
	// distributions below, since cheap cache-served completions would
	// otherwise mask emulation-path regressions.
	ScanMean float64
	ScanP50  float64
	ScanP95  float64
	ScanP99  float64

	// MissScan is the emulation-path distribution (cache misses and
	// bypasses) — the one to watch for engine regressions. HitScan covers
	// cache-served completions (hits and coalesced); it reports the
	// verdicts' recorded virtual scan time, identical to what the same
	// submissions would have cost uncached.
	MissScan ScanStats
	HitScan  ScanStats

	// Tier accounting over completed submissions: Tier1 counts verdicts
	// answered by the static triage pre-screen (including cache-served
	// replays of tier-1 verdicts), Tier2 everything that paid the full
	// emulation path. Tier1Scan/Tier2Scan split the scan-latency
	// distribution by tier, so the triage speedup and the emulation-path
	// latency are visible separately — the flat ScanMean blends a
	// microsecond tier with a half-minute tier into a meaningless middle.
	Tier1     uint64
	Tier2     uint64
	Tier1Scan ScanStats
	Tier2Scan ScanStats

	// Instantaneous gauges at snapshot time, views over the durable work
	// queue: QueueDepth is the pending backlog, InFlight the live leases
	// (claims a lane is executing right now).
	QueueDepth int // submissions waiting for a lane
	InFlight   int // submissions being vetted right now (live leases)

	// Queue-layer accounting since start. Acked counts settled claims,
	// Nacked failed ones (panics), Reclaims leases that expired and were
	// re-issued, Replayed submissions re-admitted from the intake journal
	// after a restart, DeadLettered submissions that exhausted their claim
	// attempts (ErrPoisoned), WorkerPanics recovered vet panics. LeaseAge
	// is the wall-clock seconds a claim was held before settling or being
	// reclaimed — lease pressure, where scan stats are virtual-clock.
	QueueAcked    uint64
	QueueNacked   uint64
	Reclaims      uint64
	Replayed      uint64
	ReplaySkipped uint64 // torn/corrupt journal records dropped at replay
	DeadLettered  uint64
	WorkerPanics  uint64
	LeaseAge      ScanStats

	// Memory accounting at snapshot time. CacheEntries and CacheLiveBytes
	// come from the checker's verdict cache (flat-entry bytes, the
	// measurable live-heap contribution of memoization); HeapLiveBytes is
	// the process's live heap (runtime.MemStats.HeapAlloc), also published
	// on the service collector as the svc.heap.live_bytes gauge so sinks
	// and CI artifacts can watch it without taking a snapshot.
	CacheEntries   int
	CacheLiveBytes int64
	HeapLiveBytes  uint64

	// Persist reports the optional file-backed verdict tier (zero-valued
	// with Enabled false when none is attached). Restored/Skipped are the
	// warm-start hit/miss counters.
	Persist core.PersistStats

	// Model-lifecycle state at snapshot time, read from the serving
	// checker: the generation currently answering vets, its registry
	// digest (empty for a generation trained in-process and never
	// snapshotted), and the total hot-swaps since the checker was built.
	ModelGeneration uint64
	ModelDigest     string
	ModelSwaps      uint64
}

// ScanStats is one scan-latency distribution in virtual-clock seconds.
type ScanStats struct {
	Count uint64
	Mean  float64
	P50   float64
	P95   float64
	P99   float64
}

// enginePrefix namespaces per-engine completion counters on the service
// collector.
const enginePrefix = "svc.engine."

// counters holds the service's obs handles: monotonic counters and scan
// distributions live on the collector (shared with any attached sinks).
// Queue gauges and counters (svc.queue.*) are registered on the same
// collector by the workqueue itself; in-flight and depth are read from
// queue stats, not tracked here.
type counters struct {
	col *obs.Collector

	accepted, rejected                           *obs.Counter
	completed, timeouts, drained, cancel, failed *obs.Counter
	hits, misses, coalesced, bypass              *obs.Counter
	crashes, crashedSubs, fallbacks              *obs.Counter
	panics                                       *obs.Counter

	tier1, tier2 *obs.Counter

	scans      *obs.Distribution // all completions, virtual seconds
	missScans  *obs.Distribution // emulated completions only
	hitScans   *obs.Distribution // cache-served completions only
	tier1Scans *obs.Distribution // triage short-circuits
	tier2Scans *obs.Distribution // full emulation-path verdicts
	leaseAges  *obs.Distribution // wall seconds per settled/reclaimed lease
}

// newCounters resolves the service's counter and distribution handles on
// its collector.
func newCounters(col *obs.Collector) counters {
	return counters{
		col:         col,
		accepted:    col.Counter("svc.accepted"),
		rejected:    col.Counter("svc.rejected"),
		completed:   col.Counter("svc.completed"),
		timeouts:    col.Counter("svc.timeouts"),
		drained:     col.Counter("svc.drained"),
		cancel:      col.Counter("svc.canceled"),
		failed:      col.Counter("svc.failed"),
		hits:        col.Counter("svc.cache.hits"),
		misses:      col.Counter("svc.cache.misses"),
		coalesced:   col.Counter("svc.cache.coalesced"),
		bypass:      col.Counter("svc.cache.bypass"),
		crashes:     col.Counter("svc.crashes"),
		crashedSubs: col.Counter("svc.crashed_submissions"),
		fallbacks:   col.Counter("svc.fallbacks"),
		panics:      col.Counter("svc.worker.panics"),
		tier1:       col.Counter("svc.tier1"),
		tier2:       col.Counter("svc.tier2"),
		scans:       col.Distribution("svc.scan.all"),
		missScans:   col.Distribution("svc.scan.miss"),
		hitScans:    col.Distribution("svc.scan.hit"),
		tier1Scans:  col.Distribution("svc.scan.tier1"),
		tier2Scans:  col.Distribution("svc.scan.tier2"),
		leaseAges:   col.Distribution("svc.queue.lease_age"),
	}
}

// finishJob books one settled submission.
func (c *counters) finishJob(v *core.Verdict, err error, out vcache.Outcome) {
	switch {
	case err == nil:
		c.completed.Inc()
		sec := v.ScanTime.Seconds()
		c.scans.Observe(sec)
		if v.Tier == 1 {
			c.tier1.Inc()
			c.tier1Scans.Observe(sec)
		} else {
			c.tier2.Inc()
			c.tier2Scans.Observe(sec)
		}
		switch out {
		case vcache.OutcomeHit:
			c.hits.Inc()
		case vcache.OutcomeCoalesced:
			c.coalesced.Inc()
		case vcache.OutcomeMiss:
			c.misses.Inc()
		default:
			c.bypass.Inc()
		}
		if out.Served() {
			c.hitScans.Observe(sec)
			return // no emulation happened; reliability already booked by the leader
		}
		c.missScans.Observe(sec)
		if v.Crashes > 0 {
			c.crashes.Add(uint64(v.Crashes))
			c.crashedSubs.Inc()
		}
		if v.FellBack {
			c.fallbacks.Inc()
		}
		if v.Engine != "" {
			c.col.Counter(enginePrefix + v.Engine).Inc()
		}
	case errors.Is(err, core.ErrDeadlineExceeded) || errors.Is(err, context.DeadlineExceeded):
		c.timeouts.Inc()
	case errors.Is(err, ErrDraining):
		// Checked before the bare-cancel bucket: a drain abort wraps both
		// ErrDraining and context.Canceled.
		c.drained.Inc()
	case errors.Is(err, context.Canceled):
		c.cancel.Inc()
	default:
		c.failed.Inc()
	}
}

// Metrics returns a consistent snapshot; quantiles are computed over a
// sorted copy of the completed-scan samples (nearest-rank).
func (s *Service) Metrics() Metrics {
	c := &s.m
	m := Metrics{
		Accepted:           c.accepted.Load(),
		Rejected:           c.rejected.Load(),
		Completed:          c.completed.Load(),
		Timeouts:           c.timeouts.Load(),
		Drained:            c.drained.Load(),
		Canceled:           c.cancel.Load(),
		Failed:             c.failed.Load(),
		CacheHits:          c.hits.Load(),
		CacheMisses:        c.misses.Load(),
		CacheCoalesced:     c.coalesced.Load(),
		CacheBypass:        c.bypass.Load(),
		Crashes:            c.crashes.Load(),
		CrashedSubmissions: c.crashedSubs.Load(),
		Fallbacks:          c.fallbacks.Load(),
		Tier1:              c.tier1.Load(),
		Tier2:              c.tier2.Load(),
		WorkerPanics:       c.panics.Load(),
		EngineRuns:         make(map[string]uint64),
	}
	for name, n := range c.col.Counters() {
		if eng, ok := strings.CutPrefix(name, enginePrefix); ok {
			m.EngineRuns[eng] = n
		}
	}
	qs := s.q.Stats()
	m.QueueDepth = qs.Depth
	m.InFlight = qs.Leased
	m.QueueAcked = qs.Acked
	m.QueueNacked = qs.Nacked
	m.Reclaims = qs.Reclaimed
	m.Replayed = qs.Replayed
	m.ReplaySkipped = qs.ReplaySkipped
	m.DeadLettered = qs.DeadLettered
	m.LeaseAge = newScanStats(c.leaseAges.Snapshot())

	cs := s.ck.CacheStats()
	m.CacheEntries = cs.Entries
	m.CacheLiveBytes = cs.LiveBytes
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	m.HeapLiveBytes = ms.HeapAlloc
	c.col.Gauge("svc.heap.live_bytes").Set(int64(ms.HeapAlloc))
	m.Persist = s.ck.PersistStats()

	gen := s.ck.Generation()
	m.ModelGeneration = gen.ID
	m.ModelDigest = gen.Digest
	m.ModelSwaps = s.ck.Obs().Counter("model.swaps").Load()

	m.MissScan = newScanStats(c.missScans.Snapshot())
	m.HitScan = newScanStats(c.hitScans.Snapshot())
	m.Tier1Scan = newScanStats(c.tier1Scans.Snapshot())
	m.Tier2Scan = newScanStats(c.tier2Scans.Snapshot())
	if scans := c.scans.Snapshot(); len(scans) > 0 {
		all := newScanStats(scans)
		m.ScanMean, m.ScanP50, m.ScanP95, m.ScanP99 = all.Mean, all.P50, all.P95, all.P99
	}
	return m
}

// newScanStats summarizes one latency sample set; samples are sorted in
// place.
func newScanStats(samples []float64) ScanStats {
	d := obs.Summarize(samples)
	return ScanStats{Count: d.Count, Mean: d.Mean, P50: d.P50, P95: d.P95, P99: d.P99}
}

// quantile is the nearest-rank quantile of a sorted sample.
func quantile(sorted []float64, q float64) float64 { return obs.Quantile(sorted, q) }
