package vetsvc

import (
	"context"
	"errors"
	"sort"
	"sync"

	"apichecker/internal/core"
)

// Metrics is an immutable snapshot of service activity since start. Scan
// latencies are in virtual-clock seconds (the calibrated emulation clock
// the paper reports per-app scan cost in), so quantiles are deterministic
// and host-speed independent.
type Metrics struct {
	// Admission counters.
	Accepted uint64
	Rejected uint64 // queue-full rejections (ErrQueueFull)

	// Completion counters. Completed + Timeouts + Canceled + Failed ==
	// the number of settled submissions.
	Completed uint64
	Timeouts  uint64 // deadline expiries (ErrDeadlineExceeded)
	Canceled  uint64 // caller-canceled contexts
	Failed    uint64 // any other vet error

	// Reliability accounting, aggregated from each verdict (§5.1).
	Crashes            uint64 // total transient emulator crashes restarted through
	CrashedSubmissions uint64 // submissions with at least one crash
	Fallbacks          uint64 // submissions re-run on the fallback engine

	// EngineRuns counts completed submissions by the engine that produced
	// the final log (lightweight vs the stock Google engine).
	EngineRuns map[string]uint64

	// Scan-latency distribution over completed submissions, virtual
	// seconds.
	ScanMean float64
	ScanP50  float64
	ScanP95  float64
	ScanP99  float64

	// Instantaneous gauges at snapshot time.
	QueueDepth int // submissions waiting for a lane
	InFlight   int // submissions being vetted right now
}

// counters is the service-internal mutable state behind Metrics.
type counters struct {
	mu sync.Mutex

	accepted, rejected                  uint64
	completed, timeouts, cancel, failed uint64
	crashes, crashedSubs, fallbacks     uint64
	engines                             map[string]uint64
	scans                               []float64 // virtual seconds, completion order
	inFlight                            int
}

func (c *counters) bump(field *uint64) {
	c.mu.Lock()
	*field++
	c.mu.Unlock()
}

func (c *counters) startJob() {
	c.mu.Lock()
	c.inFlight++
	c.mu.Unlock()
}

// finishJob books one settled submission.
func (c *counters) finishJob(v *core.Verdict, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.inFlight--
	switch {
	case err == nil:
		c.completed++
		c.scans = append(c.scans, v.ScanTime.Seconds())
		c.crashes += uint64(v.Crashes)
		if v.Crashes > 0 {
			c.crashedSubs++
		}
		if v.FellBack {
			c.fallbacks++
		}
		if v.Engine != "" {
			c.engines[v.Engine]++
		}
	case errors.Is(err, core.ErrDeadlineExceeded) || errors.Is(err, context.DeadlineExceeded):
		c.timeouts++
	case errors.Is(err, context.Canceled):
		c.cancel++
	default:
		c.failed++
	}
}

// Metrics returns a consistent snapshot; quantiles are computed over a
// sorted copy of the completed-scan samples (nearest-rank).
func (s *Service) Metrics() Metrics {
	c := &s.m
	c.mu.Lock()
	m := Metrics{
		Accepted:           c.accepted,
		Rejected:           c.rejected,
		Completed:          c.completed,
		Timeouts:           c.timeouts,
		Canceled:           c.cancel,
		Failed:             c.failed,
		Crashes:            c.crashes,
		CrashedSubmissions: c.crashedSubs,
		Fallbacks:          c.fallbacks,
		EngineRuns:         make(map[string]uint64, len(c.engines)),
		InFlight:           c.inFlight,
	}
	for k, v := range c.engines {
		m.EngineRuns[k] = v
	}
	scans := append([]float64(nil), c.scans...)
	c.mu.Unlock()
	m.QueueDepth = len(s.queue)

	if len(scans) > 0 {
		var sum float64
		for _, v := range scans {
			sum += v
		}
		m.ScanMean = sum / float64(len(scans))
		sort.Float64s(scans)
		m.ScanP50 = quantile(scans, 0.50)
		m.ScanP95 = quantile(scans, 0.95)
		m.ScanP99 = quantile(scans, 0.99)
	}
	return m
}

// quantile is the nearest-rank quantile of a sorted sample.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(q*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}
