package vetsvc

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"apichecker/internal/apk"
	"apichecker/internal/core"
	"apichecker/internal/dataset"
	"apichecker/internal/emulator"
	"apichecker/internal/workqueue"
)

// trainedCheckerCfg is trainedChecker with a custom core configuration
// (cache and triage toggles for the equivalence matrix).
func trainedCheckerCfg(t *testing.T, cfg core.Config) (*core.Checker, *dataset.Corpus) {
	t.Helper()
	dcfg := dataset.DefaultConfig()
	dcfg.NumApps = 300
	corpus, err := dataset.Generate(testU, dcfg)
	if err != nil {
		t.Fatal(err)
	}
	ck, _, err := core.TrainFromCorpus(corpus, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ck, corpus
}

// TestQueueMatchesDirectService is the decomposition's equivalence proof:
// the queue/claim/execute path with N workers — durable journal on, a
// duplicate-heavy workload — produces the bit-identical verdict set a
// serial Vet loop over the same submissions does, with the verdict cache
// on and off and the triage band on and off.
func TestQueueMatchesDirectService(t *testing.T) {
	for _, tc := range []struct {
		name   string
		cache  int
		lo, hi float64
	}{
		{"cache-on/triage-off", 0, 0, 0},
		{"cache-off/triage-off", -1, 0, 0},
		{"cache-on/triage-on", 0, 0.05, 0.95},
		{"cache-off/triage-on", -1, 0.05, 0.95},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := core.DefaultConfig()
			cfg.VerdictCache = tc.cache
			cfg.TriageLo, cfg.TriageHi = tc.lo, tc.hi
			ckSerial, corpus := trainedCheckerCfg(t, cfg)
			ckQueue, _ := trainedCheckerCfg(t, cfg)

			// Duplicate-heavy: 40 submissions over 25 distinct programs.
			subs := make([]core.Submission, 40)
			for i := range subs {
				subs[i] = core.Submission{Program: corpus.Program(i % 25)}
			}

			serial := make([]*core.Verdict, len(subs))
			for i, sub := range subs {
				v, err := ckSerial.Vet(context.Background(), sub)
				if err != nil {
					t.Fatal(err)
				}
				serial[i] = v
			}

			svc, err := Open(ckQueue, Config{
				Workers:   8,
				QueueSize: 16,
				QueueDir:  t.TempDir(),
				LeaseTTL:  10 * time.Second,
			})
			if err != nil {
				t.Fatal(err)
			}
			got, err := svc.VetBatch(context.Background(), subs)
			svc.Close()
			if err != nil {
				t.Fatal(err)
			}
			for i := range serial {
				if !reflect.DeepEqual(got[i], serial[i]) {
					t.Errorf("submission %d: queue verdict diverged from serial:\n got  %+v\n want %+v",
						i, got[i], serial[i])
				}
			}
		})
	}
}

// TestLeaseExpiryRevetsExactlyOnce is the reclaim drill: a worker stalls
// mid-claim, its lease expires, and the submission is reclaimed and
// re-vetted by another lane — exactly one emulation, a bit-identical
// verdict, and no double-ack.
func TestLeaseExpiryRevetsExactlyOnce(t *testing.T) {
	ck, corpus := trainedChecker(t)
	ckRef, _ := trainedChecker(t)
	sub := core.Submission{Program: corpus.Program(3)}
	want, err := ckRef.Vet(context.Background(), sub)
	if err != nil {
		t.Fatal(err)
	}

	var (
		stallOnce sync.Once
		stalled   = make(chan struct{})
		release   = make(chan struct{})
	)
	svc := New(ck, Config{
		Workers:        2,
		QueueSize:      4,
		LeaseTTL:       100 * time.Millisecond,
		HeartbeatEvery: -1, // heartbeats off: a stalled lane must lose its lease
		MaxAttempts:    3,
		OnEvent: func(ev Event) {
			if ev.Type != EventStarted {
				return
			}
			first := false
			stallOnce.Do(func() { first = true })
			if first {
				close(stalled)
				<-release
			}
		},
	})
	defer svc.Close()

	runs0 := emulator.RunCount()
	tk, err := svc.Submit(context.Background(), sub)
	if err != nil {
		t.Fatal(err)
	}
	<-stalled
	if st := tk.State(); st != "claimed" {
		t.Errorf("ticket state while stalled = %q, want claimed", st)
	}

	// The stalled lane holds the claim past its TTL; the other lane
	// reclaims and finishes the vet while the first is still wedged.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	got, err := tk.Wait(ctx)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	close(release)
	svc.Close()

	if !reflect.DeepEqual(got, want) {
		t.Errorf("re-vetted verdict diverged:\n got  %+v\n want %+v", got, want)
	}
	if st := tk.State(); st != "done" {
		t.Errorf("ticket state = %q, want done", st)
	}
	if delta := emulator.RunCount() - runs0; delta != 1 {
		t.Errorf("emulator ran %d times, want exactly 1", delta)
	}
	m := svc.Metrics()
	if m.Completed != 1 || m.Failed != 0 {
		t.Errorf("Completed = %d, Failed = %d, want 1, 0", m.Completed, m.Failed)
	}
	if m.Reclaims < 1 {
		t.Errorf("Reclaims = %d, want >= 1", m.Reclaims)
	}
	if m.QueueAcked != 1 {
		t.Errorf("QueueAcked = %d, want exactly 1 (no double-ack)", m.QueueAcked)
	}
}

// TestPoisonedSubmissionDeadLetters: a submission whose every claim
// exhausts its lease is dead-lettered with ErrPoisoned instead of cycling
// through the queue forever — and the service keeps serving.
func TestPoisonedSubmissionDeadLetters(t *testing.T) {
	ck, corpus := trainedChecker(t)
	block := make(chan struct{})
	svc := New(ck, Config{
		Workers:        2,
		QueueSize:      4,
		LeaseTTL:       50 * time.Millisecond,
		HeartbeatEvery: -1,
		MaxAttempts:    1,
		OnEvent: func(ev Event) {
			if ev.Type == EventStarted {
				<-block
			}
		},
	})

	tk, err := svc.Submit(context.Background(), core.Submission{Program: corpus.Program(0)})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	v, err := tk.Wait(ctx)
	if v != nil || !errors.Is(err, ErrPoisoned) {
		t.Fatalf("Wait = %v, %v; want nil verdict wrapping ErrPoisoned", v, err)
	}
	if st := tk.State(); st != "failed" {
		t.Errorf("ticket state = %q, want failed", st)
	}
	close(block)
	svc.Close()

	m := svc.Metrics()
	if m.DeadLettered != 1 || m.Failed != 1 || m.Completed != 0 {
		t.Errorf("DeadLettered = %d, Failed = %d, Completed = %d; want 1, 1, 0",
			m.DeadLettered, m.Failed, m.Completed)
	}
}

// TestCrashSafeIntakeReplays is the kill-and-restart drill: submissions
// journaled by a previous life — enqueued, partially acked, then killed —
// are replayed on the next Open, vetted exactly once each, and nothing
// acked before the kill runs again.
func TestCrashSafeIntakeReplays(t *testing.T) {
	ck, corpus := trainedChecker(t)
	ckRef, _ := trainedChecker(t)
	dir := t.TempDir()

	raws := make([][]byte, 3)
	for i := range raws {
		data, err := apk.Build(corpus.Program(i), testU)
		if err != nil {
			t.Fatal(err)
		}
		raws[i] = data
	}

	// Previous life: raw archives journaled at intake; seq 1 settles, the
	// process dies with seq 2 claimed-but-unacked and seq 3 still queued.
	q, _, err := workqueue.Open(workqueue.Config{Capacity: 8, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for _, raw := range raws {
		if !q.TryAcquire() {
			t.Fatal("queue full")
		}
		if _, err := q.Enqueue(workqueue.Item{Payload: raw}); err != nil {
			t.Fatal(err)
		}
	}
	l, err := q.Claim(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if l.Item().Seq != 1 {
		t.Fatalf("claimed seq %d, want 1", l.Item().Seq)
	}
	if err := l.Ack(); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Claim(context.Background()); err != nil { // seq 2: never acked
		t.Fatal(err)
	}
	q.Close()

	// Next life: the service replays seqs 2 and 3 and vets them.
	svc, err := Open(ck, Config{Workers: 2, QueueSize: 8, QueueDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	deadline := time.Now().Add(30 * time.Second)
	for svc.Metrics().Completed < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("replayed submissions never completed: %+v", svc.Metrics())
		}
		time.Sleep(10 * time.Millisecond)
	}
	m := svc.Metrics()
	if m.Replayed != 2 || m.Accepted != 2 || m.Completed != 2 {
		t.Fatalf("Replayed = %d, Accepted = %d, Completed = %d; want 2, 2, 2", m.Replayed, m.Accepted, m.Completed)
	}

	// The replayed vets are bit-identical to direct vetting of the same
	// archives: resubmitting answers from the verdict cache (proof the
	// replay populated it) and matches an independent serial checker.
	for i := 1; i <= 2; i++ {
		tk, err := svc.Submit(context.Background(), core.Submission{Raw: raws[i]})
		if err != nil {
			t.Fatal(err)
		}
		got, err := tk.Wait(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		want, err := ckRef.Vet(context.Background(), core.Submission{Raw: raws[i]})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("replayed archive %d verdict diverged:\n got  %+v\n want %+v", i, got, want)
		}
	}
	if m := svc.Metrics(); m.CacheHits < 2 {
		t.Errorf("CacheHits = %d, want >= 2 (replay must have warmed the cache)", m.CacheHits)
	}

	// A drained shutdown acks everything: the journal replays nothing.
	svc.Close()
	q2, replayed, err := workqueue.Open(workqueue.Config{Capacity: 8, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer q2.Close()
	if len(replayed) != 0 {
		t.Fatalf("drained journal replayed %d items, want 0", len(replayed))
	}
}

// TestRetryAfterTracksQueuePressure: the drain estimate is zero when the
// queue is idle and grows with the backlog once lanes are saturated.
func TestRetryAfterTracksQueuePressure(t *testing.T) {
	ck, corpus := trainedChecker(t)
	gate := make(chan struct{})
	svc := New(ck, Config{
		Workers:   1,
		QueueSize: 4,
		OnEvent: func(ev Event) {
			if ev.Type == EventStarted {
				<-gate
			}
		},
	})
	defer svc.Close()

	if est := svc.DrainEstimate(); est != 0 {
		t.Fatalf("idle DrainEstimate = %v, want 0", est)
	}
	var tickets []*Ticket
	for i := 0; i < 4; i++ {
		tk, err := svc.Submit(context.Background(), core.Submission{Program: corpus.Program(i)})
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	if est := svc.DrainEstimate(); est < time.Second {
		t.Errorf("backlogged DrainEstimate = %v, want >= 1s", est)
	}
	close(gate)
	for _, tk := range tickets {
		if _, err := tk.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
}
