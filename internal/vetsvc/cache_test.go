package vetsvc

import (
	"context"
	"testing"

	"apichecker/internal/core"
	"apichecker/internal/emulator"
)

// TestDuplicateSubmissionsCoalesce is the serving-path dedupe contract:
// a batch of byte-identical submissions racing through concurrent lanes
// pays for exactly one emulation, every verdict is identical, and the
// metrics book one miss plus hits/coalesced for the rest. Run under
// -race in CI.
func TestDuplicateSubmissionsCoalesce(t *testing.T) {
	ck, corpus := trainedChecker(t)
	p := corpus.Program(0)
	const n = 12

	svc := New(ck, Config{Workers: 8, QueueSize: 16})
	defer svc.Close()

	subs := make([]core.Submission, n)
	for i := range subs {
		subs[i] = core.Submission{Program: p}
	}
	runs0 := emulator.RunCount()
	verdicts, err := svc.VetBatch(context.Background(), subs)
	if err != nil {
		t.Fatal(err)
	}
	if runs := emulator.RunCount() - runs0; runs != 1 {
		t.Fatalf("emulation runs = %d, want 1 for %d identical submissions", runs, n)
	}
	for i := 1; i < n; i++ {
		if *verdicts[i] != *verdicts[0] {
			t.Fatalf("verdict %d differs: %+v vs %+v", i, *verdicts[i], *verdicts[0])
		}
	}

	m := svc.Metrics()
	if m.Completed != n {
		t.Fatalf("completed = %d, want %d", m.Completed, n)
	}
	if m.CacheMisses != 1 {
		t.Fatalf("cache misses = %d, want 1", m.CacheMisses)
	}
	if m.CacheHits+m.CacheCoalesced != n-1 {
		t.Fatalf("hits %d + coalesced %d != %d", m.CacheHits, m.CacheCoalesced, n-1)
	}
	if m.CacheBypass != 0 {
		t.Fatalf("bypass = %d, want 0", m.CacheBypass)
	}
	// Reliability accounting counts the one real emulation, not phantom
	// re-runs of the cached verdict.
	var engineRuns uint64
	for _, v := range m.EngineRuns {
		engineRuns += v
	}
	if engineRuns != 1 {
		t.Fatalf("engine runs = %d, want 1", engineRuns)
	}
	if m.Crashes != uint64(verdicts[0].Crashes) {
		t.Fatalf("crashes = %d, want the leader's %d", m.Crashes, verdicts[0].Crashes)
	}
}

// TestMetricsSplitHitMiss: the latency distributions separate the
// emulation path from cache-served completions, so cheap hits cannot mask
// a slow engine.
func TestMetricsSplitHitMiss(t *testing.T) {
	ck, corpus := trainedChecker(t)
	const uniques = 6

	svc := New(ck, Config{Workers: 4, QueueSize: 8})
	defer svc.Close()

	// Prime the cache outside the service so hit/miss counts are exact
	// (no coalescing races): the service waves below are all hits.
	var subs []core.Submission
	for i := 0; i < uniques; i++ {
		if _, err := ck.Vet(context.Background(), core.Submission{Program: corpus.Program(i)}); err != nil {
			t.Fatal(err)
		}
		subs = append(subs, core.Submission{Program: corpus.Program(i)})
	}
	// Now drive two waves through the service: all cache hits.
	for round := 0; round < 2; round++ {
		if _, err := svc.VetBatch(context.Background(), subs); err != nil {
			t.Fatal(err)
		}
	}

	m := svc.Metrics()
	if m.Completed != 2*uniques {
		t.Fatalf("completed = %d, want %d", m.Completed, 2*uniques)
	}
	if m.CacheHits != 2*uniques || m.CacheMisses != 0 {
		t.Fatalf("hits = %d misses = %d, want %d and 0 (primed outside the service)",
			m.CacheHits, m.CacheMisses, 2*uniques)
	}
	if m.HitScan.Count != 2*uniques || m.MissScan.Count != 0 {
		t.Fatalf("scan split = hit %d / miss %d, want %d / 0", m.HitScan.Count, m.MissScan.Count, 2*uniques)
	}
	if m.HitScan.Mean <= 0 || m.ScanMean <= 0 {
		t.Fatalf("scan means = hit %.2f overall %.2f, want > 0", m.HitScan.Mean, m.ScanMean)
	}
	if m.HitScan.P50 > m.HitScan.P95 || m.HitScan.P95 > m.HitScan.P99 {
		t.Fatalf("hit quantiles not monotone: %+v", m.HitScan)
	}

	// A fresh service over a cache-disabled checker books the same work
	// as misses... but with the cache on and unique programs, the split
	// is all misses. Exercise that side too.
	ck2, corpus2 := trainedChecker(t)
	svc2 := New(ck2, Config{Workers: 4, QueueSize: 8})
	defer svc2.Close()
	var uniq []core.Submission
	for i := 0; i < uniques; i++ {
		uniq = append(uniq, core.Submission{Program: corpus2.Program(i)})
	}
	if _, err := svc2.VetBatch(context.Background(), uniq); err != nil {
		t.Fatal(err)
	}
	m2 := svc2.Metrics()
	if m2.CacheMisses != uniques || m2.MissScan.Count != uniques || m2.HitScan.Count != 0 {
		t.Fatalf("unique workload split = %d misses, missScan %d, hitScan %d; want %d/%d/0",
			m2.CacheMisses, m2.MissScan.Count, m2.HitScan.Count, uniques, uniques)
	}
	if m2.MissScan.Mean <= 0 || m2.MissScan.P50 > m2.MissScan.P95 || m2.MissScan.P95 > m2.MissScan.P99 {
		t.Fatalf("miss distribution malformed: %+v", m2.MissScan)
	}
}
