package vetsvc

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"apichecker/internal/core"
)

// record is the verdict record one accepted submission settles into —
// the service's unit of exactly-once delivery, keyed by seq (+ content
// digest when known). Tickets are views over it; the worker's report and
// a dead-letter both try to settle it, and the first one wins: a lease
// reclaimed mid-vet can produce two reports for one seq (the stalled
// original and the re-issued claim), and first-wins is what turns the
// queue's at-least-once execution into the service's exactly-once
// verdict accounting.
type record struct {
	seq     int64
	pkg     string
	digest  string
	claimed atomic.Bool

	mu      sync.Mutex
	settled bool
	verdict *core.Verdict
	err     error
	done    chan struct{} // lazy (doneCh): fast-path settles never allocate it

	// The in-process half of the queued submission rides the record
	// (as the queue item's Mem attachment) rather than a separate
	// allocation: the parts a replayed item must rebuild from the
	// durable payload instead. sub is read under mu (takeSub) because
	// settle clears it — a reclaim-raced late claim may observe the
	// cleared form and vet nothing, which first-wins absorbs.
	sub      core.Submission
	ctx      context.Context // caller-cancelable admission context; nil rides s.base
	deadline time.Time       // absolute per-submission deadline; zero = none
}

func newRecord(seq int64, pkg, digest string) *record {
	return &record{seq: seq, pkg: pkg, digest: digest}
}

// settle resolves the record exactly once; later calls report false and
// change nothing (duplicate suppression). The submission payload is
// released here so long-lived tickets don't pin archive bytes.
func (r *record) settle(v *core.Verdict, err error) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.settled {
		return false
	}
	r.settled = true
	r.verdict, r.err = v, err
	r.sub = core.Submission{}
	if r.done != nil {
		close(r.done)
	}
	return true
}

// doneCh returns the settlement channel, creating it on first demand —
// a record that settles before anyone waits (tier-1 verdicts, cache
// hits) never pays for one.
func (r *record) doneCh() <-chan struct{} {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.done == nil {
		r.done = make(chan struct{})
		if r.settled {
			close(r.done)
		}
	}
	return r.done
}

// isSettled reports whether the record has its verdict; once true the
// verdict/err fields are immutable and safe to read.
func (r *record) isSettled() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.settled
}

// takeSub snapshots the submission for a claim (zero after settle).
func (r *record) takeSub() core.Submission {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sub
}

// markClaimed notes that a worker has taken the submission at least once.
func (r *record) markClaimed() { r.claimed.Store(true) }

// state reports the submission's lifecycle position:
// queued → claimed → done/failed.
func (r *record) state() string {
	r.mu.Lock()
	settled, err := r.settled, r.err
	r.mu.Unlock()
	if settled {
		if err != nil {
			return "failed"
		}
		return "done"
	}
	if r.claimed.Load() {
		return "claimed"
	}
	return "queued"
}

// addRecord registers a record for an accepted submission.
func (s *Service) addRecord(r *record) {
	s.recMu.Lock()
	s.recs[r.seq] = r
	s.recMu.Unlock()
}

// recordFor resolves the live record for a seq (nil once settled).
func (s *Service) recordFor(seq int64) *record {
	s.recMu.Lock()
	r := s.recs[seq]
	s.recMu.Unlock()
	return r
}

// dropRecord forgets a settled record; outstanding tickets keep their
// view of it.
func (s *Service) dropRecord(seq int64) {
	s.recMu.Lock()
	delete(s.recs, seq)
	s.recMu.Unlock()
}
