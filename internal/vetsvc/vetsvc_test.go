package vetsvc

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"apichecker/internal/behavior"
	"apichecker/internal/core"
	"apichecker/internal/dataset"
	"apichecker/internal/framework"
)

var testU = framework.MustGenerate(framework.TestConfig(3000))

// trainedChecker builds an independent trained checker; training is
// deterministic, so two calls yield behaviourally identical checkers with
// independent vet-sequence counters.
func trainedChecker(t *testing.T) (*core.Checker, *dataset.Corpus) {
	t.Helper()
	cfg := dataset.DefaultConfig()
	cfg.NumApps = 500
	corpus, err := dataset.Generate(testU, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ck, _, err := core.TrainFromCorpus(corpus, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return ck, corpus
}

func programs(c *dataset.Corpus, n int) []*behavior.Program {
	out := make([]*behavior.Program, n)
	for i := range out {
		out[i] = c.Program(i % c.Len())
	}
	return out
}

// TestServiceMatchesSerialVet is the determinism contract: verdicts out of
// the concurrent service are bit-identical to a serial Vet loop over the
// same submission order, through both the batch and the ticket paths.
func TestServiceMatchesSerialVet(t *testing.T) {
	ckSerial, corpus := trainedChecker(t)
	ckBatch, _ := trainedChecker(t)
	ckTickets, _ := trainedChecker(t)
	apps := programs(corpus, 60)

	serial := make([]*core.Verdict, len(apps))
	for i, p := range apps {
		v, err := ckSerial.Vet(context.Background(), core.Submission{Program: p})
		if err != nil {
			t.Fatal(err)
		}
		serial[i] = v
	}

	// Batch path: small queue, so VetBatch exercises backpressure waits.
	svc := New(ckBatch, Config{Workers: 8, QueueSize: 4})
	defer svc.Close()
	subs := make([]core.Submission, len(apps))
	for i, p := range apps {
		subs[i] = core.Submission{Program: p}
	}
	batch, err := svc.VetBatch(context.Background(), subs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if *batch[i] != *serial[i] {
			t.Fatalf("batch submission %d (%s): service %+v vs serial %+v",
				i, apps[i].PackageName, *batch[i], *serial[i])
		}
	}

	// Ticket path: sequences are reserved at admission in Submit order.
	svc2 := New(ckTickets, Config{Workers: 8, QueueSize: len(apps)})
	defer svc2.Close()
	tickets := make([]*Ticket, len(apps))
	for i, p := range apps {
		tk, err := svc2.Submit(context.Background(), core.Submission{Program: p})
		if err != nil {
			t.Fatal(err)
		}
		tickets[i] = tk
	}
	for i, tk := range tickets {
		v, err := tk.Wait(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if *v != *serial[i] {
			t.Fatalf("ticket submission %d: service %+v vs serial %+v", i, *v, *serial[i])
		}
	}

	if got := svc.Metrics(); got.Completed != uint64(len(apps)) {
		t.Fatalf("batch service completed %d, want %d", got.Completed, len(apps))
	}
}

// TestBackpressureQueueFull fills the bounded queue behind a stalled
// worker, observes ErrQueueFull, then confirms the queue drains and
// accepts again.
func TestBackpressureQueueFull(t *testing.T) {
	ck, corpus := trainedChecker(t)
	gate := make(chan struct{})
	var gateOnce sync.Once
	releaseGate := func() { gateOnce.Do(func() { close(gate) }) }
	svc := New(ck, Config{
		Workers:   1,
		QueueSize: 2,
		// The hook runs synchronously in the worker: blocking it stalls
		// the lane with the queue intact.
		OnEvent: func(ev Event) {
			if ev.Type == EventStarted {
				<-gate
			}
		},
	})
	// Unwind order matters: the gate must open before Close waits for the
	// stalled lane.
	defer svc.Close()
	defer releaseGate()

	sub := func(i int) core.Submission {
		return core.Submission{Program: corpus.Program(i)}
	}
	// Head submission is dequeued by the lane, which stalls in the hook.
	var tickets []*Ticket
	tk0, err := svc.Submit(context.Background(), sub(0))
	if err != nil {
		t.Fatal(err)
	}
	tickets = append(tickets, tk0)
	deadline := time.Now().Add(10 * time.Second)
	for svc.Metrics().InFlight == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never picked up the head submission")
		}
		time.Sleep(time.Millisecond)
	}
	// Queue is now empty and the only lane is stalled: the next two fill
	// the queue deterministically.
	for i := 1; i < 3; i++ {
		tk, err := svc.Submit(context.Background(), sub(i))
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}

	if _, err := svc.Submit(context.Background(), sub(3)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("submit into full queue: err = %v, want ErrQueueFull", err)
	}

	releaseGate() // release the lane; the queue drains
	for _, tk := range tickets {
		if _, err := tk.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	tk, err := svc.Submit(context.Background(), sub(4))
	if err != nil {
		t.Fatalf("submit after drain: %v", err)
	}
	if _, err := tk.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}

	m := svc.Metrics()
	if m.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", m.Rejected)
	}
	if m.Accepted != 4 || m.Completed != 4 {
		t.Fatalf("accepted/completed = %d/%d, want 4/4", m.Accepted, m.Completed)
	}
}

// TestDeadlineTimeout: an unmeetable per-submission deadline aborts the
// emulation, surfaces as ErrDeadlineExceeded (wrapping
// context.DeadlineExceeded), and is counted in the metrics.
func TestDeadlineTimeout(t *testing.T) {
	ck, corpus := trainedChecker(t)
	svc := New(ck, Config{Workers: 2, QueueSize: 8, Deadline: time.Nanosecond})
	defer svc.Close()

	const n = 6
	subs := make([]core.Submission, n)
	for i := range subs {
		subs[i] = core.Submission{Program: corpus.Program(i)}
	}
	if _, err := svc.VetBatch(context.Background(), subs); err == nil {
		t.Fatal("batch under 1ns deadline succeeded")
	} else {
		if !errors.Is(err, core.ErrDeadlineExceeded) {
			t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
		}
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("err = %v, want context.DeadlineExceeded underneath", err)
		}
	}

	m := svc.Metrics()
	if m.Timeouts != n {
		t.Fatalf("timeouts = %d, want %d", m.Timeouts, n)
	}
	if m.Completed != 0 {
		t.Fatalf("completed = %d, want 0", m.Completed)
	}
}

// TestGracefulShutdown: Close drains the queue — every accepted submission
// completes exactly once, and nothing is accepted afterwards.
func TestGracefulShutdown(t *testing.T) {
	ck, corpus := trainedChecker(t)
	svc := New(ck, Config{Workers: 4, QueueSize: 8})

	const n = 30
	tickets := make([]*Ticket, n)
	for i := range tickets {
		tk, err := svc.SubmitWait(context.Background(), core.Submission{Program: corpus.Program(i)})
		if err != nil {
			t.Fatal(err)
		}
		tickets[i] = tk
	}
	svc.Close()

	seen := make(map[int64]bool)
	for i, tk := range tickets {
		v, err := tk.Wait(context.Background())
		if err != nil {
			t.Fatalf("submission %d lost in shutdown: %v", i, err)
		}
		if v == nil {
			t.Fatalf("submission %d: nil verdict", i)
		}
		if seen[tk.Seq()] {
			t.Fatalf("sequence %d delivered twice", tk.Seq())
		}
		seen[tk.Seq()] = true
	}

	if _, err := svc.Submit(context.Background(), core.Submission{Program: corpus.Program(0)}); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: err = %v, want ErrClosed", err)
	}
	if _, err := svc.SubmitWait(context.Background(), core.Submission{Program: corpus.Program(0)}); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit-wait after close: err = %v, want ErrClosed", err)
	}

	m := svc.Metrics()
	if m.Accepted != n || m.Completed != n {
		t.Fatalf("accepted/completed = %d/%d, want %d/%d", m.Accepted, m.Completed, n, n)
	}
	if m.QueueDepth != 0 || m.InFlight != 0 {
		t.Fatalf("queue/in-flight = %d/%d after close, want 0/0", m.QueueDepth, m.InFlight)
	}
	// Close is idempotent.
	svc.Close()
}

// TestHardDrainPropagatesReason: when the drain budget expires with a
// submission still in flight, the abort error wraps the typed ErrDraining
// (distinct from ErrClosed) on top of the context cancellation, mid-drain
// admissions fail with ErrDraining, and the drained completion is counted
// in its own metrics bucket.
func TestHardDrainPropagatesReason(t *testing.T) {
	ck, corpus := trainedChecker(t)
	gate := make(chan struct{})
	var gateOnce sync.Once
	release := func() { gateOnce.Do(func() { close(gate) }) }
	defer release()
	svc := New(ck, Config{
		Workers:   1,
		QueueSize: 2,
		OnEvent: func(ev Event) {
			if ev.Type == EventStarted {
				<-gate
			}
		},
	})

	tk, err := svc.Submit(context.Background(), core.Submission{Program: corpus.Program(0)})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for svc.Metrics().InFlight == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never picked up the submission")
		}
		time.Sleep(time.Millisecond)
	}

	drainDone := make(chan struct{})
	go func() {
		defer close(drainDone)
		ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
		defer cancel()
		svc.Drain(ctx)
	}()
	// Mid-drain admissions report the shutdown reason, not a bare close.
	for !svc.Draining() {
		time.Sleep(time.Millisecond)
	}
	if _, err := svc.Submit(context.Background(), core.Submission{Program: corpus.Program(1)}); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit mid-drain: err = %v, want ErrDraining", err)
	}
	// Let the 50ms budget expire (hard cancel fires), then release the
	// stalled lane so the canceled vet unwinds.
	time.Sleep(time.Second)
	release()
	<-drainDone

	_, err = tk.Wait(context.Background())
	if !errors.Is(err, ErrDraining) {
		t.Fatalf("in-flight error = %v, want wrapped ErrDraining", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("in-flight error = %v, want context.Canceled underneath", err)
	}
	m := svc.Metrics()
	if m.Drained != 1 || m.Canceled != 0 {
		t.Fatalf("drained/canceled = %d/%d, want 1/0", m.Drained, m.Canceled)
	}
	// After the drain resolves the service is closed, plain and simple.
	if _, err := svc.Submit(context.Background(), core.Submission{Program: corpus.Program(1)}); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after drain: err = %v, want ErrClosed", err)
	}
}

// TestMetricsAccounting checks the reliability counters and latency
// quantiles over a real batch.
func TestMetricsAccounting(t *testing.T) {
	ck, corpus := trainedChecker(t)
	svc := New(ck, Config{Workers: 8, QueueSize: 16})
	defer svc.Close()

	const n = 120
	subs := make([]core.Submission, n)
	for i := range subs {
		subs[i] = core.Submission{Program: corpus.Program(i % corpus.Len())}
	}
	verdicts, err := svc.VetBatch(context.Background(), subs)
	if err != nil {
		t.Fatal(err)
	}

	var crashes, crashedSubs, fallbacks uint64
	for _, v := range verdicts {
		crashes += uint64(v.Crashes)
		if v.Crashes > 0 {
			crashedSubs++
		}
		if v.FellBack {
			fallbacks++
		}
	}

	m := svc.Metrics()
	if m.Completed != n {
		t.Fatalf("completed = %d, want %d", m.Completed, n)
	}
	if m.Crashes != crashes || m.CrashedSubmissions != crashedSubs || m.Fallbacks != fallbacks {
		t.Fatalf("crash accounting = %d/%d/%d, want %d/%d/%d",
			m.Crashes, m.CrashedSubmissions, m.Fallbacks, crashes, crashedSubs, fallbacks)
	}
	var engineTotal uint64
	for _, c := range m.EngineRuns {
		engineTotal += c
	}
	if engineTotal != n {
		t.Fatalf("engine runs total %d, want %d", engineTotal, n)
	}
	if m.ScanMean <= 0 || m.ScanP50 <= 0 {
		t.Fatalf("latency stats empty: %+v", m)
	}
	if m.ScanP50 > m.ScanP95 || m.ScanP95 > m.ScanP99 {
		t.Fatalf("quantiles not monotone: p50=%f p95=%f p99=%f", m.ScanP50, m.ScanP95, m.ScanP99)
	}
}

// TestEventLogOrdering: the structured hook sees accepted → started → done
// for every submission, with matching sequence numbers.
func TestEventLogOrdering(t *testing.T) {
	ck, corpus := trainedChecker(t)
	var mu sync.Mutex
	state := make(map[int64]EventType)
	bad := false
	svc := New(ck, Config{
		Workers:   4,
		QueueSize: 8,
		OnEvent: func(ev Event) {
			mu.Lock()
			defer mu.Unlock()
			prev, ok := state[ev.Seq]
			switch ev.Type {
			case EventAccepted:
				if ok {
					bad = true
				}
			case EventStarted:
				if !ok || prev != EventAccepted {
					bad = true
				}
			case EventDone:
				if !ok || prev != EventStarted {
					bad = true
				}
			}
			state[ev.Seq] = ev.Type
		},
	})
	const n = 25
	subs := make([]core.Submission, n)
	for i := range subs {
		subs[i] = core.Submission{Program: corpus.Program(i)}
	}
	if _, err := svc.VetBatch(context.Background(), subs); err != nil {
		t.Fatal(err)
	}
	svc.Close()

	mu.Lock()
	defer mu.Unlock()
	if bad {
		t.Fatal("event ordering violated")
	}
	if len(state) != n {
		t.Fatalf("saw %d submission lifecycles, want %d", len(state), n)
	}
	for seq, last := range state {
		if last != EventDone {
			t.Fatalf("seq %d ended in state %v", seq, last)
		}
	}
}

// TestQuantileNearestRank pins the quantile helper.
func TestQuantileNearestRank(t *testing.T) {
	s := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	for _, tc := range []struct {
		q    float64
		want float64
	}{{0.5, 5}, {0.95, 10}, {0.99, 10}, {0, 1}, {1, 10}} {
		if got := quantile(s, tc.q); got != tc.want {
			t.Errorf("quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if got := quantile(nil, 0.5); got != 0 {
		t.Errorf("quantile(nil) = %v, want 0", got)
	}
}
