// Package vetsvc is the always-on submission-vetting service: the serving
// layer that turns the blocking, one-shot Checker.Vet call into what the
// paper actually deploys at T-Market (§5.1-§5.2) — a farm of emulator
// lanes fed by a bounded submission queue, with per-submission deadlines,
// crash/fallback accounting, and runtime metrics.
//
// Since the queue/claim/execute decomposition, the service is a thin
// composition of three layers — the in-process rehearsal of the ROADMAP
// vet-cluster protocol:
//
//   - internal/workqueue owns admission: a bounded, seq-ordered queue
//     with explicit backpressure, lease-bounded claims, and (with
//     Config.QueueDir) a CRC-framed journal that replays every accepted-
//     but-unacked submission after a kill.
//   - internal/worker owns execution: claim → vet → report → ack lanes
//     with heartbeats during long emulations and per-claim panic
//     isolation (a poisoned APK nacks its lease, it does not kill the
//     process).
//   - vetsvc itself owns meaning: tickets are views over a first-wins
//     verdict record keyed by seq (+digest), Submit is an enqueue, Drain
//     is stop-claims-then-settle-leases, and every metric is a view over
//     the queue, the records, and the obs spine.
//
// The determinism contract is unchanged: verdicts derive from submission
// content alone (Monkey seeds come from the content digest), so service
// vetting is bit-identical to a serial Vet loop over the same queue,
// whatever the worker scheduling, the lease reclaims, or the restarts.
// Vet sequence numbers are still reserved at admission in FIFO order to
// identify submissions in logs and metrics — a reclaim or a replay never
// burns one.
package vetsvc

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"apichecker/internal/core"
	"apichecker/internal/emulator"
	"apichecker/internal/obs"
	"apichecker/internal/vcache"
	"apichecker/internal/worker"
	"apichecker/internal/workqueue"
)

// Typed admission failures; the public facade re-exports them.
var (
	// ErrQueueFull: the bounded submission queue is at capacity. Callers
	// shed load or retry later; nothing was enqueued and no vet sequence
	// number was consumed.
	ErrQueueFull = errors.New("vetsvc: submission queue full")

	// ErrClosed: the service is shut down and accepts no new submissions.
	ErrClosed = errors.New("vetsvc: service closed")

	// ErrDraining: the service is shutting down gracefully — admissions
	// stopped, in-flight submissions finishing. New submissions are
	// rejected with this (the gateway maps it to 503), and an in-flight
	// vet aborted by a hard drain deadline fails with an error wrapping
	// ErrDraining rather than a bare context cancellation, so callers can
	// tell "the service shut down under me" from their own cancel.
	ErrDraining = errors.New("vetsvc: service draining")

	// ErrPoisoned: the submission exhausted its claim attempts (repeated
	// panics or expired leases) and was dead-lettered; its ticket fails
	// with an error wrapping this instead of cycling through the queue
	// forever.
	ErrPoisoned = errors.New("vetsvc: submission dead-lettered")

	// ErrRawOnly: the service runs in coordinator mode (DisableLocalLanes)
	// and the submission carries no raw archive bytes — a parsed APK or
	// behaviour program cannot ship to a remote worker node, so admission
	// rejects it up front instead of queueing it forever.
	ErrRawOnly = errors.New("vetsvc: coordinator mode accepts only raw-archive submissions")
)

// Config tunes one service instance.
type Config struct {
	// Workers is the emulator-lane count (paper: 16 per server); <= 0
	// selects emulator.ProductionLanes.
	Workers int

	// QueueSize bounds the submissions waiting for a lane (in-flight
	// submissions ride on top); <= 0 selects 4×Workers.
	QueueSize int

	// Deadline, when positive, bounds each submission's wall-clock
	// residence (queue wait + emulation) from admission; an expired
	// deadline aborts the emulation at its next crash-restart or
	// event-batch boundary and counts as a timeout.
	Deadline time.Duration

	// QueueDir, when non-empty, journals raw-archive submissions to a
	// CRC-framed log in that directory: a killed service replays every
	// enqueued-but-unacked submission on the next Open (crash-safe
	// intake). Submissions admitted as parsed APKs or behaviour programs
	// are memory-only and do not survive a restart. Use Open (not New)
	// with a QueueDir, so journal I/O errors surface.
	QueueDir string

	// LeaseTTL, when positive, bounds how long a claimed submission may go
	// without progress (ack or heartbeat) before the queue reclaims it and
	// re-issues it to another lane; 0 disables lease expiry (a lane owns
	// its claim until it settles — today's single-process behavior).
	LeaseTTL time.Duration

	// HeartbeatEvery tunes the mid-vet lease heartbeat: 0 selects
	// LeaseTTL/3 (heartbeats on whenever leases expire), a positive value
	// sets the period explicitly, and a negative value disables heartbeats
	// (lease-expiry drills: a stalled lane then loses its lease on the
	// TTL).
	HeartbeatEvery time.Duration

	// MaxAttempts bounds claims per submission before it is dead-lettered
	// with ErrPoisoned; <= 0 selects 3.
	MaxAttempts int

	// OnEvent, when set, receives a structured event per admission
	// decision and completion. Called synchronously from service
	// goroutines: keep it fast and do not call back into the service.
	// It rides the service's obs spine: the callback is registered as a
	// Sink on the service collector, so it sees exactly the events any
	// other attached sink does.
	OnEvent func(Event)

	// DisableLocalLanes runs the service in coordinator mode: no local
	// worker lanes start, and every queued submission is vetted by remote
	// worker nodes claiming it over the wire (internal/cluster), settling
	// through the same first-wins records via MarkStarted/ReportRemote.
	// Raw-archive submissions only — anything else fails with ErrRawOnly.
	DisableLocalLanes bool
}

// DefaultConfig is the production-shaped serving configuration.
func DefaultConfig() Config {
	return Config{Workers: emulator.ProductionLanes}
}

// EventType classifies service events.
type EventType uint8

const (
	// EventAccepted: a submission entered the queue.
	EventAccepted EventType = iota
	// EventRejected: the queue was full; nothing was enqueued.
	EventRejected
	// EventStarted: a worker began vetting the submission. A reclaimed
	// submission starts again under its original seq, so a lease-expiry
	// reclaim can repeat this event for one seq.
	EventStarted
	// EventDone: vetting finished (Err reports how). Exactly one per
	// accepted submission, however many claims it took.
	EventDone
)

func (t EventType) String() string {
	names := [...]string{"accepted", "rejected", "started", "done"}
	if int(t) < len(names) {
		return names[t]
	}
	return fmt.Sprintf("EventType(%d)", uint8(t))
}

// Event is one structured service-log record.
type Event struct {
	Type    EventType
	Seq     int64  // vet sequence number (0 for rejections)
	Package string // submission package, best effort
	Scan    time.Duration
	Err     error
}

// Ticket tracks one accepted submission to completion. It is a view over
// the submission's verdict record.
type Ticket struct {
	r *record
}

// Seq returns the vet sequence number reserved for this submission.
func (t *Ticket) Seq() int64 { return t.r.seq }

// Done is closed when the submission has been vetted (or failed).
func (t *Ticket) Done() <-chan struct{} { return t.r.doneCh() }

// State reports the submission's position in the serving state machine:
// "queued" (admitted, waiting for a lane) → "claimed" (a worker holds its
// lease) → "done" / "failed".
func (t *Ticket) State() string { return t.r.state() }

// Wait blocks for the verdict. The context bounds the wait only — the
// submission itself keeps running under its own deadline.
func (t *Ticket) Wait(ctx context.Context) (*core.Verdict, error) {
	if t.r.isSettled() {
		return t.r.verdict, t.r.err
	}
	select {
	case <-t.r.doneCh():
		return t.r.verdict, t.r.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Service is a running vetting service over one trained Checker.
type Service struct {
	cfg Config
	ck  *core.Checker

	q    *workqueue.Queue
	pool *worker.Pool
	hb   time.Duration // effective heartbeat period (0 = off)

	// mu serializes admissions: the sequence reservation and the enqueue
	// happen atomically, so FIFO queue order equals seq order — the
	// determinism contract. draining flips first (admissions now fail with
	// ErrDraining, the queue stops accepting); closed flips when the drain
	// has settled every accepted submission (admissions fail with
	// ErrClosed).
	mu       sync.Mutex
	draining bool
	closed   bool

	// recs is the live verdict-record registry, keyed by seq; settled
	// records drop out (their tickets keep the view).
	recMu sync.Mutex
	recs  map[int64]*record

	// base is the drainable parent for submissions whose caller context
	// carries no cancellation of its own (Done() == nil — the common
	// serving shape, context.Background from a gateway or batch driver).
	// A hard drain cancels it with cause ErrDraining, aborting every
	// in-flight vet riding it at the next emulation boundary. Submissions
	// admitted under a caller-cancelable context keep that context as
	// parent — aborting those remains the caller's prerogative.
	base       context.Context
	baseCancel context.CancelCauseFunc

	// wallEWMA smooths the wall-clock cost of recent completions
	// (nanoseconds, α=1/8) — the live signal DrainEstimate turns into a
	// Retry-After hint.
	wallEWMA atomic.Int64

	m counters
}

// New starts a service over a trained checker. Out-of-range config values
// are clamped to their defaults; the service runs until Close. New panics
// if cfg.QueueDir is set and its journal cannot be opened — durable
// deployments should use Open and handle the error.
func New(ck *core.Checker, cfg Config) *Service {
	s, err := Open(ck, cfg)
	if err != nil {
		panic(fmt.Sprintf("vetsvc: New: %v (use Open for a durable queue dir)", err))
	}
	return s
}

// Open starts a service over a trained checker. With cfg.QueueDir set it
// opens (or creates) the intake journal there and re-admits every
// submission a previous life accepted but never settled — those replayed
// submissions are vetted by the worker lanes exactly like fresh ones
// (their verdicts are bit-identical, since verdicts derive from content
// alone), visible through Metrics().Replayed.
func Open(ck *core.Checker, cfg Config) (*Service, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = emulator.ProductionLanes
	}
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = 4 * cfg.Workers
	}
	hb := cfg.HeartbeatEvery
	if hb == 0 && cfg.LeaseTTL > 0 {
		hb = cfg.LeaseTTL / 3
	}
	if hb < 0 {
		hb = 0
	}
	s := &Service{
		cfg:  cfg,
		ck:   ck,
		hb:   hb,
		recs: make(map[int64]*record),
		m:    newCounters(obs.NewCollector()),
	}
	s.base, s.baseCancel = context.WithCancelCause(context.Background())
	if cfg.OnEvent != nil {
		s.m.col.AddSink(eventSink(cfg.OnEvent))
	}

	q, replayed, err := workqueue.Open(workqueue.Config{
		Capacity:    cfg.QueueSize,
		LeaseTTL:    cfg.LeaseTTL,
		MaxAttempts: cfg.MaxAttempts,
		Dir:         cfg.QueueDir,
		NextSeq:     ck.ReserveVetSeqs,
		Obs:         s.m.col,
		OnDead:      s.deadLetter,
	})
	if err != nil {
		return nil, err
	}
	s.q = q
	if maxSeq := q.ReplayMaxSeq(); maxSeq > 0 {
		// Advance the checker's seq counter past every number the journal
		// ever recorded, so fresh admissions never collide with a seq a
		// previous life consumed.
		if first := ck.ReserveVetSeqs(1); first <= maxSeq {
			ck.ReserveVetSeqs(int(maxSeq - first + 1))
		}
	}
	// Replayed submissions get records (and accepted events) before any
	// lane can claim them.
	for _, it := range replayed {
		r := newRecord(it.Seq, core.Submission{Raw: it.Payload}.PackageName(), it.Key)
		s.addRecord(r)
		s.m.accepted.Inc()
		s.emit(Event{Type: EventAccepted, Seq: r.seq, Package: r.pkg})
	}
	if !cfg.DisableLocalLanes {
		s.pool = worker.Start(q, worker.Config{
			Lanes:          cfg.Workers,
			HeartbeatEvery: hb,
			Do:             s.vetClaim,
			OnPanic:        func(workqueue.Item, any) { s.m.panics.Inc() },
		})
	}
	return s, nil
}

// Checker returns the checker the service vets with.
func (s *Service) Checker() *core.Checker { return s.ck }

// Obs returns the service's observability collector: admission/completion
// counters (svc.*), queue gauges and counters (svc.queue.*), scan-latency
// distributions, and the service-event stream. Each service owns its
// collector — a rebuilt service starts from zero, exactly as its Metrics
// always have. Attach a Sink to stream lifecycle events.
func (s *Service) Obs() *obs.Collector { return s.m.col }

// Config returns the effective (clamped) configuration.
func (s *Service) Config() Config { return s.cfg }

// Submit offers a submission without blocking: if the queue is at
// capacity it fails with ErrQueueFull and consumes nothing. The context
// becomes the parent of the submission's own deadline-bearing context.
func (s *Service) Submit(ctx context.Context, sub core.Submission) (*Ticket, error) {
	if !s.q.TryAcquire() {
		s.m.rejected.Inc()
		s.emit(Event{Type: EventRejected, Package: pkgOf(sub), Err: ErrQueueFull})
		return nil, fmt.Errorf("vet %s: %w", pkgOf(sub), ErrQueueFull)
	}
	return s.admit(ctx, sub)
}

// SubmitWait is Submit with backpressure instead of rejection: it blocks
// until queue space frees up, the context ends, or the service closes.
func (s *Service) SubmitWait(ctx context.Context, sub core.Submission) (*Ticket, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := s.q.Acquire(ctx); err != nil {
		return nil, err
	}
	return s.admit(ctx, sub)
}

// admit enqueues a submission; the caller holds one queue slot, which
// transfers to the queue entry or is released on failure. The accepted
// event is emitted under the admission lock, before the item becomes
// claimable, so per-seq event order is strictly accepted → started.
func (s *Service) admit(ctx context.Context, sub core.Submission) (*Ticket, error) {
	if err := sub.Validate(); err != nil {
		s.q.Release()
		return nil, err
	}
	if s.cfg.DisableLocalLanes && sub.Raw == nil {
		s.q.Release()
		return nil, fmt.Errorf("vet %s: %w", pkgOf(sub), ErrRawOnly)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	s.mu.Lock()
	if s.closed || s.draining {
		err := ErrClosed
		if !s.closed {
			err = ErrDraining
		}
		s.mu.Unlock()
		s.q.Release()
		return nil, err
	}
	if sub.Seq == 0 {
		sub.Seq = s.ck.ReserveVetSeqs(1)
	}
	r := newRecord(sub.Seq, pkgOf(sub), sub.Digest)
	r.sub = sub
	// A caller context without cancellation rides the service's drainable
	// base instead, so a hard drain can abort the vet with a typed cause.
	if ctx.Done() != nil {
		r.ctx = ctx
	}
	if s.cfg.Deadline > 0 {
		r.deadline = time.Now().Add(s.cfg.Deadline)
	}
	s.addRecord(r)
	s.m.accepted.Inc()
	s.emit(Event{Type: EventAccepted, Seq: r.seq, Package: r.pkg})
	_, err := s.q.Enqueue(workqueue.Item{Seq: sub.Seq, Key: sub.Digest, Payload: sub.Raw, Mem: r})
	s.mu.Unlock()
	if err != nil {
		// Journal failure (the draining/closed races are excluded under
		// s.mu): settle the record so the accepted event still pairs with
		// a done and the books stay balanced.
		err = fmt.Errorf("vet %s: %w", r.pkg, err)
		s.settleRecord(r, nil, vcache.OutcomeBypass, err, 0)
		return nil, err
	}
	return &Ticket{r: r}, nil
}

// vetClaim is the worker pool's Do: the binding from one queue claim to
// the staged vet pipeline and the verdict record.
func (s *Service) vetClaim(claimCtx context.Context, l *workqueue.Lease) {
	it := l.Item()
	r := s.recordFor(it.Seq)
	if r == nil {
		// Already settled (dead-lettered while pending): nothing to vet.
		return
	}
	r.markClaimed()
	s.emit(Event{Type: EventStarted, Seq: r.seq, Package: r.pkg})
	if !l.Valid() {
		// The lease expired while the started hook ran: the submission has
		// been reclaimed and another lane owns it now. Vetting it here too
		// would be harmless for the verdict (content-determinism) but
		// would double-pay the emulation; skip, and let Ack's lease check
		// fall out as the no-double-ack.
		return
	}
	sub, jctx, cleanup := s.claimContext(claimCtx, it)
	t0 := time.Now()
	v, out, err := s.ck.VetOutcome(jctx, sub)
	wall := time.Since(t0)
	cleanup()
	if err != nil && errors.Is(err, context.Canceled) {
		cause := context.Cause(jctx)
		switch {
		case errors.Is(cause, workqueue.ErrLeaseLost):
			// Reclaimed mid-vet: the re-issued claim reports the verdict;
			// this half-finished one is abandoned unreported.
			return
		case errors.Is(cause, ErrDraining):
			// The cancellation was the service's hard drain, not the
			// caller's: surface the shutdown reason.
			err = fmt.Errorf("vet %s: %w: %w", r.pkg, ErrDraining, err)
		}
	}
	s.settleRecord(r, v, out, err, wall)
}

// claimContext assembles the submission and vetting context for one
// claim: the caller context (or drainable base) as parent, the admission
// deadline on top, and — when heartbeats run — the claim context's
// lease-loss cancellation folded in. Replayed items rebuild their
// submission from the durable payload and restart their deadline at
// claim.
func (s *Service) claimContext(claimCtx context.Context, it workqueue.Item) (core.Submission, context.Context, func()) {
	var (
		sub      core.Submission
		parent   = s.base
		deadline time.Time
	)
	if r, ok := it.Mem.(*record); ok {
		sub = r.takeSub()
		if r.ctx != nil {
			parent = r.ctx
		}
		deadline = r.deadline
	} else {
		sub = core.Submission{Raw: it.Payload, Seq: it.Seq, Digest: it.Key}
		if s.cfg.Deadline > 0 {
			deadline = time.Now().Add(s.cfg.Deadline)
		}
	}
	jctx, cancel := parent, context.CancelFunc(func() {})
	if !deadline.IsZero() {
		jctx, cancel = context.WithDeadline(parent, deadline)
	}
	if s.hb > 0 {
		// Only a running heartbeat can cancel the claim context (on lease
		// loss), so the merge is paid only when it matters.
		lctx, lcancel := context.WithCancelCause(jctx)
		stop := context.AfterFunc(claimCtx, func() { lcancel(context.Cause(claimCtx)) })
		prev := cancel
		return sub, lctx, func() { stop(); lcancel(nil); prev() }
	}
	return sub, jctx, func() { cancel() }
}

// settleRecord resolves one verdict record, books the completion exactly
// once (first report wins; a reclaim-raced duplicate changes nothing and
// reports false), and emits the done event.
func (s *Service) settleRecord(r *record, v *core.Verdict, out vcache.Outcome, err error, wall time.Duration) bool {
	if !r.settle(v, err) {
		return false
	}
	s.m.finishJob(v, err, out)
	s.noteWall(wall)
	s.dropRecord(r.seq)
	ev := Event{Type: EventDone, Seq: r.seq, Package: r.pkg, Err: err}
	if v != nil {
		ev.Scan = v.ScanTime
	}
	s.emit(ev)
	return true
}

// Queue exposes the service's durable work queue — the claim surface the
// cluster coordinator hands to remote worker nodes. Claims taken from it
// directly bypass the local lanes but settle through the same first-wins
// verdict records (MarkStarted / ReportRemote).
func (s *Service) Queue() *workqueue.Queue { return s.q }

// QueueStats snapshots queue activity (the healthz surface).
func (s *Service) QueueStats() workqueue.Stats { return s.q.Stats() }

// MarkStarted notes that a remote worker node has claimed seq: the record
// flips to claimed and the started event fires, mirroring the local
// lanes' claim bookkeeping. A seq whose record already settled
// (dead-lettered while pending) is ignored.
func (s *Service) MarkStarted(seq int64) {
	r := s.recordFor(seq)
	if r == nil {
		return
	}
	r.markClaimed()
	s.emit(Event{Type: EventStarted, Seq: seq, Package: r.pkg})
}

// ReportRemote settles seq's verdict record with a result a remote worker
// node produced, booking completion metrics exactly as a local lane
// would. First report wins — false means the record was unknown or
// already settled (a reclaim-raced duplicate, or an ack after a
// dead-letter), and the report changed nothing.
func (s *Service) ReportRemote(seq int64, v *core.Verdict, out vcache.Outcome, err error, wall time.Duration) bool {
	r := s.recordFor(seq)
	if r == nil {
		return false
	}
	return s.settleRecord(r, v, out, err, wall)
}

// ClaimDeadline resolves the absolute vet deadline for a claimed item
// (zero when unbounded): the admission deadline while the record still
// rides the item, or a fresh per-claim budget for replayed items — the
// same rules claimContext applies for local lanes, exported so claim
// responses can ship the deadline to remote nodes.
func (s *Service) ClaimDeadline(it workqueue.Item) time.Time {
	if r, ok := it.Mem.(*record); ok {
		return r.deadline
	}
	if s.cfg.Deadline > 0 {
		return time.Now().Add(s.cfg.Deadline)
	}
	return time.Time{}
}

// deadLetter is the queue's OnDead callback: a submission that exhausted
// its claim attempts settles as failed with ErrPoisoned instead of
// cycling forever.
func (s *Service) deadLetter(it workqueue.Item, cause error) {
	r := s.recordFor(it.Seq)
	if r == nil {
		return
	}
	err := fmt.Errorf("vet %s: %w: %w", r.pkg, ErrPoisoned, cause)
	if !r.settle(nil, err) {
		return
	}
	s.m.finishJob(nil, err, vcache.OutcomeBypass)
	s.dropRecord(r.seq)
	s.emit(Event{Type: EventDone, Seq: r.seq, Package: r.pkg, Err: err})
}

// noteWall folds one completion's wall-clock cost into the drain-estimate
// EWMA.
func (s *Service) noteWall(d time.Duration) {
	if d <= 0 {
		return
	}
	for {
		old := s.wallEWMA.Load()
		next := int64(d)
		if old != 0 {
			next = old + (int64(d)-old)/8
		}
		if s.wallEWMA.CompareAndSwap(old, next) {
			return
		}
	}
}

// DrainEstimate estimates the wall-clock time the current backlog (queued
// plus leased submissions) needs to drain through the lanes, from the
// smoothed cost of recent completions — the live queue-pressure signal
// behind the gateway's Retry-After hint. Zero means the queue is idle; an
// untrained estimate (no completions yet) assumes one second per wave,
// and the result is clamped to [1s, 5m].
func (s *Service) DrainEstimate() time.Duration {
	st := s.q.Stats()
	backlog := st.Depth + st.Leased
	if backlog == 0 {
		return 0
	}
	per := time.Duration(s.wallEWMA.Load())
	if per <= 0 {
		per = time.Second
	}
	waves := (backlog + s.cfg.Workers - 1) / s.cfg.Workers
	est := time.Duration(waves) * per
	if est < time.Second {
		est = time.Second
	}
	if est > 5*time.Minute {
		est = 5 * time.Minute
	}
	return est
}

// VetBatch drives an ordered batch through the service with backpressure
// and returns verdicts in submission order. For submissions without a
// pinned Seq it reserves one contiguous sequence block up front — exactly
// the numbers a serial Vet loop over the same slice would consume — so the
// returned verdicts are bit-identical to serial vetting. The first
// submission error is returned after the whole batch has settled.
func (s *Service) VetBatch(ctx context.Context, subs []core.Submission) ([]*core.Verdict, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cp := make([]core.Submission, len(subs))
	copy(cp, subs)
	unpinned := 0
	for i := range cp {
		if cp[i].Seq == 0 {
			unpinned++
		}
	}
	if unpinned > 0 {
		next := s.ck.ReserveVetSeqs(unpinned)
		for i := range cp {
			if cp[i].Seq == 0 {
				cp[i].Seq = next
				next++
			}
		}
	}

	tickets := make([]*Ticket, 0, len(cp))
	var submitErr error
	for i := range cp {
		t, err := s.SubmitWait(ctx, cp[i])
		if err != nil {
			submitErr = fmt.Errorf("vetsvc: batch submit %s: %w", pkgOf(cp[i]), err)
			break
		}
		tickets = append(tickets, t)
	}
	out := make([]*core.Verdict, len(cp))
	firstErr := submitErr
	for i, t := range tickets {
		if !t.r.isSettled() {
			<-t.r.doneCh()
		}
		out[i] = t.r.verdict
		if t.r.err != nil && firstErr == nil {
			firstErr = fmt.Errorf("vetsvc: %s: %w", t.r.pkg, t.r.err)
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// Close stops admissions, drains the queue, and waits for all in-flight
// vets to finish, however long that takes. Every accepted submission's
// ticket completes: nothing is lost, nothing runs twice. Close is
// idempotent. For a bounded shutdown, use Drain.
func (s *Service) Close() { s.Drain(context.Background()) }

// Drain is the graceful shutdown primitive: it stops admissions
// (subsequent submits fail with ErrDraining, then ErrClosed once the
// drain settles), stops the queue from accepting (claims continue until
// every queued and leased submission settles), and waits for the worker
// lanes. If ctx expires first, the drain hardens: every outstanding
// submission riding a service-owned context (admitted without caller
// cancellation) is cancelled with cause ErrDraining, its ticket settling
// with an error wrapping ErrDraining; submissions admitted under a
// caller-cancelable context are the caller's to abort, and Drain still
// waits for them. Idempotent and safe to call concurrently; every call
// returns only once all accepted submissions have settled. The intake
// journal closes with everything acked, so a drained shutdown replays
// nothing.
func (s *Service) Drain(ctx context.Context) {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		s.q.Shutdown()
	}
	s.mu.Unlock()
	if ctx == nil {
		ctx = context.Background()
	}
	if s.pool != nil {
		select {
		case <-s.pool.Done():
		case <-ctx.Done():
			s.baseCancel(ErrDraining)
			<-s.pool.Done()
		}
	} else if err := s.q.AwaitDrained(ctx); err != nil {
		// Coordinator mode, drain budget expired: remote nodes are beyond
		// the service's reach, so outstanding submissions cannot be
		// cancelled, only abandoned — their tickets settle with ErrDraining
		// and their journal entries stay unsettled for the next life to
		// replay. A straggler ack after this is absorbed by first-wins.
		s.baseCancel(ErrDraining)
		s.failOutstanding()
	}
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.q.Close()
}

// failOutstanding settles every live record with ErrDraining — the
// hard-drain tail of a coordinator-mode service.
func (s *Service) failOutstanding() {
	s.recMu.Lock()
	recs := make([]*record, 0, len(s.recs))
	for _, r := range s.recs {
		recs = append(recs, r)
	}
	s.recMu.Unlock()
	for _, r := range recs {
		err := fmt.Errorf("vet %s: %w", r.pkg, ErrDraining)
		s.settleRecord(r, nil, vcache.OutcomeBypass, err, 0)
	}
}

// Draining reports whether the service has begun shutting down (admissions
// rejected; queued and in-flight submissions may still be settling).
func (s *Service) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// emit routes one lifecycle event through the service's obs collector;
// registered sinks (including the OnEvent adapter) receive it from there.
func (s *Service) emit(ev Event) {
	s.m.col.Emit(obs.Event{
		Kind:    obs.KindService,
		Name:    ev.Type.String(),
		Trace:   ev.Seq,
		Package: ev.Package,
		Dur:     ev.Scan,
		Err:     ev.Err,
	})
}

// eventSink adapts a legacy OnEvent callback to the obs Sink interface,
// reconstructing the service Event from the structured record.
func eventSink(fn func(Event)) obs.Sink {
	return obs.SinkFunc(func(oe obs.Event) {
		if oe.Kind != obs.KindService {
			return
		}
		var t EventType
		switch oe.Name {
		case "accepted":
			t = EventAccepted
		case "rejected":
			t = EventRejected
		case "started":
			t = EventStarted
		case "done":
			t = EventDone
		default:
			return
		}
		fn(Event{Type: t, Seq: oe.Trace, Package: oe.Package, Scan: oe.Dur, Err: oe.Err})
	})
}

func pkgOf(sub core.Submission) string { return sub.PackageName() }
