// Package vetsvc is the always-on submission-vetting service: the serving
// layer that turns the blocking, one-shot Checker.Vet call into what the
// paper actually deploys at T-Market (§5.1-§5.2) — a farm of emulator
// lanes fed by a bounded submission queue, with per-submission deadlines,
// crash/fallback accounting, and runtime metrics.
//
// The service owns four concerns:
//
//   - admission: a bounded FIFO queue with explicit backpressure. Submit
//     rejects with ErrQueueFull when the queue is at capacity (the market
//     front-end sheds load); SubmitWait blocks for space instead (batch
//     pipelines drain at the service's pace).
//   - execution: a worker pool (one goroutine per emulator lane, run via
//     internal/parallel) vets submissions under a per-submission
//     context.Context deadline that aborts an emulation mid-run.
//   - determinism: verdicts derive from submission content alone (Monkey
//     seeds come from the content digest), so service vetting is
//     bit-identical to a serial Vet loop over the same queue, whatever
//     the worker scheduling — and the checker's digest-keyed verdict
//     cache (core.Config.VerdictCache) can answer byte-identical
//     resubmissions, or coalesce concurrent ones onto one emulation,
//     without changing a single verdict. Vet sequence numbers are still
//     reserved at admission in FIFO order to identify submissions in
//     logs and metrics.
//   - observability: Metrics snapshots (accepted/rejected/timeout/crash/
//     fallback counters, cache hit/miss/coalesced counters, scan-latency
//     quantiles in virtual-clock seconds split by emulated vs
//     cache-served path) plus an optional structured event hook.
package vetsvc

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"apichecker/internal/core"
	"apichecker/internal/emulator"
	"apichecker/internal/obs"
	"apichecker/internal/parallel"
)

// Typed admission failures; the public facade re-exports them.
var (
	// ErrQueueFull: the bounded submission queue is at capacity. Callers
	// shed load or retry later; nothing was enqueued and no vet sequence
	// number was consumed.
	ErrQueueFull = errors.New("vetsvc: submission queue full")

	// ErrClosed: the service is shut down and accepts no new submissions.
	ErrClosed = errors.New("vetsvc: service closed")

	// ErrDraining: the service is shutting down gracefully — admissions
	// stopped, in-flight submissions finishing. New submissions are
	// rejected with this (the gateway maps it to 503), and an in-flight
	// vet aborted by a hard drain deadline fails with an error wrapping
	// ErrDraining rather than a bare context cancellation, so callers can
	// tell "the service shut down under me" from their own cancel.
	ErrDraining = errors.New("vetsvc: service draining")
)

// Config tunes one service instance.
type Config struct {
	// Workers is the emulator-lane count (paper: 16 per server); <= 0
	// selects emulator.ProductionLanes.
	Workers int

	// QueueSize bounds the submissions waiting for a lane (in-flight
	// submissions ride on top); <= 0 selects 4×Workers.
	QueueSize int

	// Deadline, when positive, bounds each submission's wall-clock
	// residence (queue wait + emulation) from admission; an expired
	// deadline aborts the emulation at its next crash-restart or
	// event-batch boundary and counts as a timeout.
	Deadline time.Duration

	// OnEvent, when set, receives a structured event per admission
	// decision and completion. Called synchronously from service
	// goroutines: keep it fast and do not call back into the service.
	// It rides the service's obs spine: the callback is registered as a
	// Sink on the service collector, so it sees exactly the events any
	// other attached sink does.
	OnEvent func(Event)
}

// DefaultConfig is the production-shaped serving configuration.
func DefaultConfig() Config {
	return Config{Workers: emulator.ProductionLanes}
}

// EventType classifies service events.
type EventType uint8

const (
	// EventAccepted: a submission entered the queue.
	EventAccepted EventType = iota
	// EventRejected: the queue was full; nothing was enqueued.
	EventRejected
	// EventStarted: a worker began vetting the submission.
	EventStarted
	// EventDone: vetting finished (Err reports how).
	EventDone
)

func (t EventType) String() string {
	names := [...]string{"accepted", "rejected", "started", "done"}
	if int(t) < len(names) {
		return names[t]
	}
	return fmt.Sprintf("EventType(%d)", uint8(t))
}

// Event is one structured service-log record.
type Event struct {
	Type    EventType
	Seq     int64  // vet sequence number (0 for rejections)
	Package string // submission package, best effort
	Scan    time.Duration
	Err     error
}

// Ticket tracks one accepted submission to completion.
type Ticket struct {
	seq     int64
	pkg     string
	done    chan struct{}
	verdict *core.Verdict
	err     error
}

// Seq returns the vet sequence number reserved for this submission.
func (t *Ticket) Seq() int64 { return t.seq }

// Done is closed when the submission has been vetted (or failed).
func (t *Ticket) Done() <-chan struct{} { return t.done }

// Wait blocks for the verdict. The context bounds the wait only — the
// submission itself keeps running under its own deadline.
func (t *Ticket) Wait(ctx context.Context) (*core.Verdict, error) {
	select {
	case <-t.done:
		return t.verdict, t.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// job is one queued submission.
type job struct {
	sub    core.Submission
	ctx    context.Context
	cancel context.CancelFunc
	t      *Ticket
}

// Service is a running vetting service over one trained Checker.
type Service struct {
	cfg Config
	ck  *core.Checker

	// queue is the bounded FIFO submission queue; slots carries one token
	// per free queue position (tokens are taken at admission and returned
	// when a worker dequeues), so admission can reject without reserving
	// a vet sequence number.
	queue chan *job
	slots chan struct{}

	// mu serializes admissions: the sequence reservation and the enqueue
	// happen atomically, so FIFO queue order equals seq order — the
	// determinism contract. draining flips first (admissions now fail with
	// ErrDraining, the queue is closed); closed flips when the drain has
	// settled every accepted submission (admissions fail with ErrClosed).
	mu       sync.Mutex
	draining bool
	closed   bool

	// base is the drainable parent for submissions whose caller context
	// carries no cancellation of its own (Done() == nil — the common
	// serving shape, context.Background from a gateway or batch driver).
	// A hard drain cancels it with cause ErrDraining, aborting every
	// in-flight vet riding it at the next emulation boundary. Submissions
	// admitted under a caller-cancelable context keep that context as
	// parent — aborting those remains the caller's prerogative — at zero
	// extra allocation either way.
	base       context.Context
	baseCancel context.CancelCauseFunc

	workersDone chan struct{}

	m counters
}

// New starts a service over a trained checker. Out-of-range config values
// are clamped to their defaults; the service runs until Close.
func New(ck *core.Checker, cfg Config) *Service {
	if cfg.Workers <= 0 {
		cfg.Workers = emulator.ProductionLanes
	}
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = 4 * cfg.Workers
	}
	s := &Service{
		cfg:         cfg,
		ck:          ck,
		queue:       make(chan *job, cfg.QueueSize),
		slots:       make(chan struct{}, cfg.QueueSize),
		workersDone: make(chan struct{}),
		m:           newCounters(obs.NewCollector()),
	}
	s.base, s.baseCancel = context.WithCancelCause(context.Background())
	for i := 0; i < cfg.QueueSize; i++ {
		s.slots <- struct{}{}
	}
	if cfg.OnEvent != nil {
		s.m.col.AddSink(eventSink(cfg.OnEvent))
	}
	go func() {
		// The worker pool is internal/parallel's bounded primitive: one
		// index per lane, each looping over the shared queue until close.
		parallel.Run(cfg.Workers, cfg.Workers, func(int) { s.work() })
		close(s.workersDone)
	}()
	return s
}

// Checker returns the checker the service vets with.
func (s *Service) Checker() *core.Checker { return s.ck }

// Obs returns the service's observability collector: admission/completion
// counters (svc.*), scan-latency distributions, and the service-event
// stream. Each service owns its collector — a rebuilt service starts from
// zero, exactly as its Metrics always have. Attach a Sink to stream
// lifecycle events.
func (s *Service) Obs() *obs.Collector { return s.m.col }

// Config returns the effective (clamped) configuration.
func (s *Service) Config() Config { return s.cfg }

// Submit offers a submission without blocking: if the queue is at
// capacity it fails with ErrQueueFull and consumes nothing. The context
// becomes the parent of the submission's own deadline-bearing context.
func (s *Service) Submit(ctx context.Context, sub core.Submission) (*Ticket, error) {
	select {
	case <-s.slots:
	default:
		s.m.rejected.Inc()
		s.emit(Event{Type: EventRejected, Package: pkgOf(sub), Err: ErrQueueFull})
		return nil, fmt.Errorf("vet %s: %w", pkgOf(sub), ErrQueueFull)
	}
	return s.admit(ctx, sub)
}

// SubmitWait is Submit with backpressure instead of rejection: it blocks
// until queue space frees up, the context ends, or the service closes.
func (s *Service) SubmitWait(ctx context.Context, sub core.Submission) (*Ticket, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case <-s.slots:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return s.admit(ctx, sub)
}

// admit enqueues a submission; the caller holds one queue slot token,
// which is passed to the queue entry or returned on failure.
func (s *Service) admit(ctx context.Context, sub core.Submission) (*Ticket, error) {
	if err := sub.Validate(); err != nil {
		s.slots <- struct{}{}
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	s.mu.Lock()
	if s.closed || s.draining {
		err := ErrClosed
		if !s.closed {
			err = ErrDraining
		}
		s.mu.Unlock()
		s.slots <- struct{}{}
		return nil, err
	}
	if sub.Seq == 0 {
		sub.Seq = s.ck.ReserveVetSeqs(1)
	}
	// A caller context without cancellation rides the service's drainable
	// base instead, so a hard drain can abort the vet with a typed cause.
	parent := ctx
	if parent.Done() == nil {
		parent = s.base
	}
	// Without a per-submission deadline the job just inherits its parent
	// context: wrapping it in WithCancel bought nothing (the worker canceled
	// it only after VetOutcome returned) and cost a timerCtx-sized
	// allocation plus goroutine-visible bookkeeping per submission.
	jctx, cancel := parent, context.CancelFunc(func() {})
	if s.cfg.Deadline > 0 {
		jctx, cancel = context.WithTimeout(parent, s.cfg.Deadline)
	}
	t := &Ticket{seq: sub.Seq, pkg: pkgOf(sub), done: make(chan struct{})}
	s.queue <- &job{sub: sub, ctx: jctx, cancel: cancel, t: t}
	s.mu.Unlock()

	s.m.accepted.Inc()
	s.emit(Event{Type: EventAccepted, Seq: t.seq, Package: t.pkg})
	return t, nil
}

// work is one lane: dequeue, free the queue slot, vet, account, deliver.
// Vetting goes through VetOutcome so the metrics can tell emulated
// completions from cache-served ones.
func (s *Service) work() {
	for j := range s.queue {
		s.slots <- struct{}{}
		s.m.startJob()
		s.emit(Event{Type: EventStarted, Seq: j.t.seq, Package: j.t.pkg})
		v, out, err := s.ck.VetOutcome(j.ctx, j.sub)
		j.cancel()
		if err != nil && errors.Is(err, context.Canceled) &&
			errors.Is(context.Cause(j.ctx), ErrDraining) {
			// The cancellation was the service's hard drain, not the
			// caller's: surface the shutdown reason.
			err = fmt.Errorf("vet %s: %w: %w", j.t.pkg, ErrDraining, err)
		}
		s.m.finishJob(v, err, out)
		j.t.verdict, j.t.err = v, err
		close(j.t.done)
		ev := Event{Type: EventDone, Seq: j.t.seq, Package: j.t.pkg, Err: err}
		if v != nil {
			ev.Scan = v.ScanTime
		}
		s.emit(ev)
	}
}

// VetBatch drives an ordered batch through the service with backpressure
// and returns verdicts in submission order. For submissions without a
// pinned Seq it reserves one contiguous sequence block up front — exactly
// the numbers a serial Vet loop over the same slice would consume — so the
// returned verdicts are bit-identical to serial vetting. The first
// submission error is returned after the whole batch has settled.
func (s *Service) VetBatch(ctx context.Context, subs []core.Submission) ([]*core.Verdict, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cp := make([]core.Submission, len(subs))
	copy(cp, subs)
	unpinned := 0
	for i := range cp {
		if cp[i].Seq == 0 {
			unpinned++
		}
	}
	if unpinned > 0 {
		next := s.ck.ReserveVetSeqs(unpinned)
		for i := range cp {
			if cp[i].Seq == 0 {
				cp[i].Seq = next
				next++
			}
		}
	}

	tickets := make([]*Ticket, 0, len(cp))
	var submitErr error
	for i := range cp {
		t, err := s.SubmitWait(ctx, cp[i])
		if err != nil {
			submitErr = fmt.Errorf("vetsvc: batch submit %s: %w", pkgOf(cp[i]), err)
			break
		}
		tickets = append(tickets, t)
	}
	out := make([]*core.Verdict, len(cp))
	firstErr := submitErr
	for i, t := range tickets {
		<-t.done
		out[i] = t.verdict
		if t.err != nil && firstErr == nil {
			firstErr = fmt.Errorf("vetsvc: %s: %w", t.pkg, t.err)
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// Close stops admissions, drains the queue, and waits for all in-flight
// vets to finish, however long that takes. Every accepted submission's
// ticket completes: nothing is lost, nothing runs twice. Close is
// idempotent. For a bounded shutdown, use Drain.
func (s *Service) Close() { s.Drain(context.Background()) }

// Drain is the graceful shutdown primitive: it stops admissions
// (subsequent submits fail with ErrDraining, then ErrClosed once the
// drain settles), lets queued and in-flight submissions finish, and waits
// for the workers. If ctx expires first, the drain hardens: every
// outstanding submission riding a service-owned context (admitted without
// caller cancellation) is cancelled with cause ErrDraining, its ticket
// settling with an error wrapping ErrDraining; submissions admitted under
// a caller-cancelable context are the caller's to abort, and Drain still
// waits for them. Idempotent and safe to call concurrently; every call
// returns only once all accepted submissions have settled.
func (s *Service) Drain(ctx context.Context) {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case <-s.workersDone:
	case <-ctx.Done():
		s.baseCancel(ErrDraining)
		<-s.workersDone
	}
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
}

// Draining reports whether the service has begun shutting down (admissions
// rejected; queued and in-flight submissions may still be settling).
func (s *Service) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// emit routes one lifecycle event through the service's obs collector;
// registered sinks (including the OnEvent adapter) receive it from there.
func (s *Service) emit(ev Event) {
	s.m.col.Emit(obs.Event{
		Kind:    obs.KindService,
		Name:    ev.Type.String(),
		Trace:   ev.Seq,
		Package: ev.Package,
		Dur:     ev.Scan,
		Err:     ev.Err,
	})
}

// eventSink adapts a legacy OnEvent callback to the obs Sink interface,
// reconstructing the service Event from the structured record.
func eventSink(fn func(Event)) obs.Sink {
	return obs.SinkFunc(func(oe obs.Event) {
		if oe.Kind != obs.KindService {
			return
		}
		var t EventType
		switch oe.Name {
		case "accepted":
			t = EventAccepted
		case "rejected":
			t = EventRejected
		case "started":
			t = EventStarted
		case "done":
			t = EventDone
		default:
			return
		}
		fn(Event{Type: t, Seq: oe.Trace, Package: oe.Package, Scan: oe.Dur, Err: oe.Err})
	})
}

func pkgOf(sub core.Submission) string { return sub.PackageName() }
