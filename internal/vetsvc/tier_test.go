package vetsvc

import (
	"context"
	"testing"

	"apichecker/internal/core"
	"apichecker/internal/dataset"
)

// tieredChecker trains a checker with a non-trivial triage band.
func tieredChecker(t *testing.T) (*core.Checker, *dataset.Corpus) {
	t.Helper()
	dcfg := dataset.DefaultConfig()
	dcfg.NumApps = 200
	corpus, err := dataset.Generate(testU, dcfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.TriageLo, cfg.TriageHi = 0.05, 0.95
	ck, _, err := core.TrainFromCorpus(corpus, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ck, corpus
}

// TestTierMetricsSplit: a tiered service splits completions and scan
// latencies by verdict tier, the counts reconcile with the flat totals,
// and the tier-1 distribution shows the microsecond short-circuit cost
// while tier-2 keeps the emulation-scale cost.
func TestTierMetricsSplit(t *testing.T) {
	ck, corpus := tieredChecker(t)
	svc := New(ck, Config{Workers: 8, QueueSize: 32})
	defer svc.Close()

	const n = 120
	subs := make([]core.Submission, n)
	for i := range subs {
		subs[i] = core.Submission{Program: corpus.Program(i)}
	}
	verdicts, err := svc.VetBatch(context.Background(), subs)
	if err != nil {
		t.Fatal(err)
	}
	var want1, want2 uint64
	for _, v := range verdicts {
		if v.Tier == 1 {
			want1++
		} else {
			want2++
		}
	}
	if want1 == 0 || want2 == 0 {
		t.Fatalf("submission mix not tiered: %d tier-1, %d tier-2", want1, want2)
	}

	m := svc.Metrics()
	if m.Tier1 != want1 || m.Tier2 != want2 {
		t.Fatalf("tier counters %d/%d, want %d/%d", m.Tier1, m.Tier2, want1, want2)
	}
	if m.Tier1+m.Tier2 != m.Completed {
		t.Fatalf("tier split %d+%d does not cover %d completions", m.Tier1, m.Tier2, m.Completed)
	}
	if m.Tier1Scan.Count != want1 || m.Tier2Scan.Count != want2 {
		t.Fatalf("tier scan sample counts %d/%d, want %d/%d",
			m.Tier1Scan.Count, m.Tier2Scan.Count, want1, want2)
	}
	// Tier-1 answers cost the fixed triage scan (75µs); tier-2 answers the
	// emulation clock (tens of virtual seconds). The split distributions
	// must keep those scales apart.
	if m.Tier1Scan.Mean <= 0 || m.Tier1Scan.Mean > 0.001 {
		t.Fatalf("tier-1 mean scan %v s, want microsecond scale", m.Tier1Scan.Mean)
	}
	if m.Tier2Scan.Mean < 1 {
		t.Fatalf("tier-2 mean scan %v s, want emulation scale", m.Tier2Scan.Mean)
	}
	if m.ScanMean <= m.Tier1Scan.Mean || m.ScanMean >= m.Tier2Scan.Mean {
		t.Fatalf("flat mean %v not between tier means %v and %v",
			m.ScanMean, m.Tier1Scan.Mean, m.Tier2Scan.Mean)
	}

	// Cache-served replays keep their recorded tier: resubmitting the whole
	// batch doubles both tier counters without emulating anything new.
	if _, err := svc.VetBatch(context.Background(), subs); err != nil {
		t.Fatal(err)
	}
	m2 := svc.Metrics()
	if m2.Tier1 != 2*want1 || m2.Tier2 != 2*want2 {
		t.Fatalf("replayed tier counters %d/%d, want %d/%d", m2.Tier1, m2.Tier2, 2*want1, 2*want2)
	}
	if m2.CacheHits == 0 {
		t.Fatal("replay batch produced no cache hits")
	}

	// The split is published on the obs collector under the svc namespace,
	// so sinks see the same numbers.
	if got := svc.Obs().Counter("svc.tier1").Load(); got != m2.Tier1 {
		t.Fatalf("svc.tier1 collector counter %d, want %d", got, m2.Tier1)
	}
	if got := svc.Obs().Counter("svc.tier2").Load(); got != m2.Tier2 {
		t.Fatalf("svc.tier2 collector counter %d, want %d", got, m2.Tier2)
	}
}

// TestTierMetricsFlatService: an untiered checker books everything as
// tier 2 — the tier-1 counter and distribution stay empty.
func TestTierMetricsFlatService(t *testing.T) {
	ck, corpus := trainedChecker(t)
	svc := New(ck, Config{Workers: 4, QueueSize: 16})
	defer svc.Close()

	subs := make([]core.Submission, 20)
	for i := range subs {
		subs[i] = core.Submission{Program: corpus.Program(i)}
	}
	if _, err := svc.VetBatch(context.Background(), subs); err != nil {
		t.Fatal(err)
	}
	m := svc.Metrics()
	if m.Tier1 != 0 || m.Tier1Scan.Count != 0 {
		t.Fatalf("flat service booked tier-1 activity: %d/%d", m.Tier1, m.Tier1Scan.Count)
	}
	if m.Tier2 != m.Completed || m.Tier2Scan.Count != m.Completed {
		t.Fatalf("flat service tier-2 %d/%d, want all %d completions",
			m.Tier2, m.Tier2Scan.Count, m.Completed)
	}
}
