package market

import (
	"context"
	"testing"

	"apichecker/internal/behavior"
	"apichecker/internal/core"
	"apichecker/internal/dataset"
)

// TestOutOfSampleQuality trains on 1,100 apps and vets 500 held-out ones;
// the paper's deployment band is 98%+ precision / 96%+ recall at 500K-app
// scale, and the residual false negatives must concentrate in families
// that barely touch key APIs (§5.2).
func TestOutOfSampleQuality(t *testing.T) {
	cfg := dataset.DefaultConfig()
	cfg.NumApps = 1600
	corpus, err := dataset.Generate(testU, cfg)
	if err != nil {
		t.Fatal(err)
	}
	train := dataset.FromApps(testU, 5, corpus.Apps[:1100])
	test := corpus.Apps[1100:]
	ck, rep, err := core.TrainFromCorpus(train, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("train report: %+v", rep)
	var tp, fp, tn, fn int
	var tpKeyAPIs, fnKeyAPIs int
	missByFam := map[behavior.Family]int{}
	totByFam := map[behavior.Family]int{}
	gen := behavior.NewGenerator(ck.Universe())
	for _, app := range test {
		v, err := ck.Vet(context.Background(), core.Submission{Program: gen.Generate(app.Spec)})
		if err != nil {
			t.Fatal(err)
		}
		truth := app.Label == behavior.Malicious
		if truth {
			totByFam[app.Spec.Family]++
		}
		switch {
		case v.Malicious && truth:
			tp++
			tpKeyAPIs += v.InvokedKeyAPIs
		case v.Malicious && !truth:
			fp++
		case !v.Malicious && !truth:
			tn++
		default:
			fn++
			fnKeyAPIs += v.InvokedKeyAPIs
			missByFam[app.Spec.Family]++
		}
	}
	precision := float64(tp) / float64(tp+fp)
	recall := float64(tp) / float64(tp+fn)
	t.Logf("P=%.3f R=%.3f (tp=%d fp=%d tn=%d fn=%d)", precision, recall, tp, fp, tn, fn)
	for f, tot := range totByFam {
		t.Logf("family %v: %d/%d missed", f, missByFam[f], tot)
	}
	if precision < 0.93 {
		t.Errorf("precision = %.3f, want >= 0.93", precision)
	}
	if recall < 0.85 {
		t.Errorf("recall = %.3f, want >= 0.85", recall)
	}
	// §5.2: false negatives barely use the key APIs (87% of sampled FN
	// apps in the paper). Missed malware must show a much thinner
	// key-API footprint than caught malware.
	if fn > 0 && tp > 0 {
		meanFN := float64(fnKeyAPIs) / float64(fn)
		meanTP := float64(tpKeyAPIs) / float64(tp)
		t.Logf("mean key APIs: caught %.1f, missed %.1f", meanTP, meanFN)
		// Every app (malicious or not) trips the handful of hot
		// common key APIs, so "barely use" means clearly-below, not
		// near-zero.
		if meanFN > 0.65*meanTP {
			t.Errorf("missed malware uses %.1f key APIs vs %.1f for caught — FNs should be quiet", meanFN, meanTP)
		}
	}
}
