package market

import (
	"reflect"
	"testing"

	"apichecker/internal/core"
	"apichecker/internal/dataset"
)

// twinMarkets trains two independent but identical markets over the shared
// test universe (training is deterministic), so one can review serially and
// the other in parallel without sharing rng or vet-sequence state.
func twinMarkets(t *testing.T, nTrain int, cfg Config) (*Market, *Market) {
	t.Helper()
	mk := func() *Market {
		dcfg := dataset.DefaultConfig()
		dcfg.NumApps = nTrain
		corpus, err := dataset.Generate(testU, dcfg)
		if err != nil {
			t.Fatal(err)
		}
		ck, _, err := core.TrainFromCorpus(corpus, core.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		m := New(ck, cfg)
		m.SeedFingerprints(corpus)
		return m
	}
	return mk(), mk()
}

func monthSubmissions(t *testing.T, n int) []dataset.App {
	t.Helper()
	cfg := dataset.DefaultConfig()
	cfg.Seed = 7919
	cfg.NumApps = n
	c, err := dataset.Generate(testU, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c.Apps
}

// TestReviewBatchMatchesSerialReview is the determinism contract of the
// parallel review pool: ReviewBatch must produce bit-identical submission
// results, month stats and retraining labels to a serial Review loop over
// the same queue.
func TestReviewBatchMatchesSerialReview(t *testing.T) {
	serial, batch := twinMarkets(t, 500, DefaultConfig())
	apps := monthSubmissions(t, 250)

	var serialStats, batchStats MonthStats
	serialRes := make([]*SubmissionResult, len(apps))
	for i, app := range apps {
		res, err := serial.Review(app, &serialStats)
		if err != nil {
			t.Fatal(err)
		}
		serialRes[i] = res
	}
	batchRes, err := batch.ReviewBatch(apps, &batchStats)
	if err != nil {
		t.Fatal(err)
	}

	if len(batchRes) != len(serialRes) {
		t.Fatalf("result count %d vs %d", len(batchRes), len(serialRes))
	}
	for i := range serialRes {
		if *serialRes[i] != *batchRes[i] {
			t.Fatalf("submission %d (%s): serial %+v vs batch %+v",
				i, apps[i].Spec.PackageName, *serialRes[i], *batchRes[i])
		}
	}
	if serialStats != batchStats {
		t.Fatalf("month stats diverged:\nserial %+v\nbatch  %+v", serialStats, batchStats)
	}
	if !reflect.DeepEqual(serial.Labeled, batch.Labeled) {
		t.Fatalf("retraining labels diverged: %d vs %d entries", len(serial.Labeled), len(batch.Labeled))
	}
	if serial.checker.VetCount() != batch.checker.VetCount() {
		t.Fatalf("vet counts diverged: %d vs %d", serial.checker.VetCount(), batch.checker.VetCount())
	}
	// Both markets must agree on the published-package lineage pool too —
	// it feeds next month's update targeting in RunYear.
	if !reflect.DeepEqual(serial.PublishedPackages(), batch.PublishedPackages()) {
		t.Fatal("published package pools diverged")
	}
}

// TestReviewBatchLaneInvariant: the worker-pool width is a throughput knob,
// never a semantics knob.
func TestReviewBatchLaneInvariant(t *testing.T) {
	one := DefaultConfig()
	one.Lanes = 1
	wide := DefaultConfig()
	wide.Lanes = 8
	mOne, mWide := twinMarkets(t, 500, one)
	mWide.cfg = wide
	apps := monthSubmissions(t, 200)

	var sOne, sWide MonthStats
	rOne, err := mOne.ReviewBatch(apps, &sOne)
	if err != nil {
		t.Fatal(err)
	}
	rWide, err := mWide.ReviewBatch(apps, &sWide)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rOne {
		if *rOne[i] != *rWide[i] {
			t.Fatalf("submission %d: lanes=1 %+v vs lanes=8 %+v", i, *rOne[i], *rWide[i])
		}
	}
	if sOne != sWide {
		t.Fatalf("stats depend on lane count:\nlanes=1 %+v\nlanes=8 %+v", sOne, sWide)
	}
}
