package market

import (
	"fmt"
	"math/rand"

	"apichecker/internal/core"
	"apichecker/internal/dataset"
	"apichecker/internal/framework"
)

// YearConfig drives the 12-month deployment simulation (Figs. 12, 14).
type YearConfig struct {
	Seed int64

	// Months to simulate (paper: 12, March 2018 - February 2019).
	Months int

	// InitialApps is the ground-truth training corpus size (the §4.1
	// dataset); MonthlyApps is the submission volume per month.
	InitialApps int
	MonthlyApps int

	// SDKEveryMonths: the Android SDK gains APIs every several months
	// (§5.3); 0 disables evolution.
	SDKEveryMonths int

	// RetrainCap bounds the retraining corpus (initial data plus the
	// most recent labelled submissions) to keep monthly retraining
	// affordable.
	RetrainCap int

	Market  Config
	Checker core.Config
	Corpus  dataset.Config
}

// DefaultYearConfig returns a laptop-scale year.
func DefaultYearConfig() YearConfig {
	return YearConfig{
		Seed:           1,
		Months:         12,
		InitialApps:    900,
		MonthlyApps:    250,
		SDKEveryMonths: 4,
		RetrainCap:     2600,
		Market:         DefaultConfig(),
		Checker:        core.DefaultConfig(),
		Corpus:         dataset.DefaultConfig(),
	}
}

// YearReport is the outcome of RunYear.
type YearReport struct {
	Months []MonthStats

	// InitialKeyAPIs after the first training round.
	InitialKeyAPIs int
}

// MinMaxPrecisionRecall summarizes the monthly series the way the paper
// reports them ("min: 98.5%, max: 99.0%").
func (r *YearReport) MinMaxPrecisionRecall() (pMin, pMax, rMin, rMax float64) {
	pMin, rMin = 1, 1
	for _, m := range r.Months {
		p, rr := m.Precision(), m.Recall()
		if p < pMin {
			pMin = p
		}
		if p > pMax {
			pMax = p
		}
		if rr < rMin {
			rMin = rr
		}
		if rr > rMax {
			rMax = rr
		}
	}
	return pMin, pMax, rMin, rMax
}

// RunYear trains APICHECKER on an initial ground-truth corpus, then
// simulates monthly operation: review a month of submissions, accumulate
// market labels, evolve the SDK every few months, and retrain the model
// monthly (§5.3).
func RunYear(u *framework.Universe, cfg YearConfig) (*YearReport, error) {
	if cfg.Months <= 0 {
		return nil, fmt.Errorf("market: months must be positive")
	}
	corpusCfg := cfg.Corpus
	corpusCfg.Seed = cfg.Seed
	corpusCfg.NumApps = cfg.InitialApps
	initial, err := dataset.Generate(u, corpusCfg)
	if err != nil {
		return nil, err
	}
	checker, rep, err := core.TrainFromCorpus(initial, cfg.Checker)
	if err != nil {
		return nil, err
	}
	m := New(checker, cfg.Market)
	defer m.Close()
	m.SeedFingerprints(initial)

	report := &YearReport{InitialKeyAPIs: rep.KeyAPIs}
	for month := 1; month <= cfg.Months; month++ {
		// SDK evolution: new framework APIs appear; the corpus
		// generator and all programs must be rebuilt over the evolved
		// universe.
		if cfg.SDKEveryMonths > 0 && month%cfg.SDKEveryMonths == 0 {
			u.Evolve(cfg.Seed + int64(month))
		}

		monthCfg := cfg.Corpus
		monthCfg.Seed = cfg.Seed + int64(month)*7919
		monthCfg.NumApps = cfg.MonthlyApps
		submissions, err := dataset.Generate(u, monthCfg)
		if err != nil {
			return nil, err
		}
		// Updates (version > 1) arrive against packages the market has
		// already published — the lineage that enables fast-track
		// manual vetting of flagged updates (§1: ~90% of flagged apps
		// are updates vetted against their previous version).
		if published := m.PublishedPackages(); len(published) > 0 {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(month)*104729))
			for i := range submissions.Apps {
				spec := &submissions.Apps[i].Spec
				if spec.Version > 1 && rng.Float64() < 0.7 {
					spec.PackageName = published[rng.Intn(len(published))]
				}
			}
		}

		// Review the month with the ML scans fanned out across the
		// market's emulator lanes; the ordered merge keeps the stats
		// bit-identical to a serial review.
		stats := MonthStats{Month: month}
		if _, err := m.ReviewBatch(submissions.Apps, &stats); err != nil {
			return nil, err
		}
		if n := stats.TP + stats.FP + stats.TN + stats.FN; n > 0 {
			stats.MeanScanMinute /= float64(n)
		}

		// Monthly retraining on the original data plus the most
		// recent labelled submissions.
		apps := append(append([]dataset.App{}, initial.Apps...), m.Labeled...)
		if cfg.RetrainCap > 0 && len(apps) > cfg.RetrainCap {
			apps = apps[len(apps)-cfg.RetrainCap:]
		}
		retrainCorpus := dataset.FromApps(u, cfg.Seed+int64(month), apps)
		trainRep, err := checker.Retrain(retrainCorpus)
		if err != nil {
			return nil, err
		}
		stats.KeyAPIs = trainRep.KeyAPIs
		report.Months = append(report.Months, stats)
	}
	return report, nil
}
