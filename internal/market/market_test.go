package market

import (
	"testing"

	"apichecker/internal/behavior"
	"apichecker/internal/core"
	"apichecker/internal/dataset"
	"apichecker/internal/framework"
)

var testU = framework.MustGenerate(framework.TestConfig(3000))

func trainedMarket(t *testing.T, nApps int) (*Market, *dataset.Corpus) {
	t.Helper()
	cfg := dataset.DefaultConfig()
	cfg.NumApps = nApps
	corpus, err := dataset.Generate(testU, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ck, _, err := core.TrainFromCorpus(corpus, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	m := New(ck, DefaultConfig())
	m.SeedFingerprints(corpus)
	return m, corpus
}

func TestReviewOutcomes(t *testing.T) {
	m, corpus := trainedMarket(t, 600)
	var stats MonthStats
	outcomes := make(map[Outcome]int)
	for _, app := range corpus.Apps {
		res, err := m.Review(app, &stats)
		if err != nil {
			t.Fatal(err)
		}
		outcomes[res.Outcome]++
		if res.ManualMinutes < 0 {
			t.Fatal("negative manual minutes")
		}
	}
	if stats.Submissions != corpus.Len() {
		t.Errorf("submissions = %d, want %d", stats.Submissions, corpus.Len())
	}
	if outcomes[Published] == 0 {
		t.Error("no app published")
	}
	if outcomes[RejectedFingerprint] == 0 {
		t.Error("fingerprint stage never fired despite seeded known malware")
	}
	if outcomes[RejectedML] == 0 {
		t.Error("ML stage never rejected malware")
	}
	// The ML stage only sees apps that passed fingerprinting.
	mlSeen := stats.TP + stats.FP + stats.TN + stats.FN
	if mlSeen+stats.RejectedKnown != corpus.Len() {
		t.Errorf("ML saw %d + %d known != %d", mlSeen, stats.RejectedKnown, corpus.Len())
	}
	if stats.Precision() < 0.7 || stats.Recall() < 0.6 {
		t.Errorf("month stats: P=%.3f R=%.3f", stats.Precision(), stats.Recall())
	}
	// Every reviewed app produced a market label.
	if len(m.Labeled) != corpus.Len() {
		t.Errorf("labeled = %d, want %d", len(m.Labeled), corpus.Len())
	}
}

func TestConsensusPreventsFingerprintFPs(t *testing.T) {
	m, _ := trainedMarket(t, 200)
	// Benign app: four engines each with 4% FP rate must essentially
	// never all agree.
	app := dataset.App{Spec: behavior.Spec{
		PackageName: "com.clean.app", Version: 1, Seed: 42,
		Label: behavior.Benign, Category: behavior.CategoryTool,
	}, Label: behavior.Benign}
	rejected := 0
	for i := 0; i < 2000; i++ {
		if m.avConsensus(app) {
			rejected++
		}
	}
	if rejected > 2 {
		t.Errorf("consensus rejected a benign app %d/2000 times", rejected)
	}
}

func TestFlaggedUpdatesFastTrack(t *testing.T) {
	m, _ := trainedMarket(t, 400)
	gen := behavior.NewGenerator(testU)
	_ = gen
	// First publish version 1 of a package (benign), then submit a
	// malicious "update attack" version; if flagged it must fast-track.
	benign := dataset.App{Spec: behavior.Spec{
		PackageName: "com.lineage.app", Version: 1, Seed: 77,
		Label: behavior.Benign, Category: behavior.CategoryGame,
	}, Label: behavior.Benign}
	if _, err := m.Review(benign, nil); err != nil {
		t.Fatal(err)
	}
	fastSeen := false
	for seed := int64(100); seed < 160 && !fastSeen; seed++ {
		evil := dataset.App{Spec: behavior.Spec{
			PackageName: "com.lineage.app", Version: 2, Seed: seed,
			Label: behavior.Malicious, Family: behavior.FamilySpyware,
		}, Label: behavior.Malicious}
		res, err := m.Review(evil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Outcome == RejectedML {
			if !res.FastTracked {
				t.Error("flagged update of a published package not fast-tracked")
			}
			if res.ManualMinutes >= DefaultConfig().ManualMinutesFull {
				t.Error("fast-track cost as much as full manual analysis")
			}
			fastSeen = true
		}
	}
	if !fastSeen {
		t.Skip("no update got flagged in the seed range")
	}
}

func TestFalseNegativeUserReportWorkflow(t *testing.T) {
	m, _ := trainedMarket(t, 400)
	reported, missed := 0, 0
	for seed := int64(0); seed < 80; seed++ {
		// Low-profile malware slips past the model most often.
		app := dataset.App{Spec: behavior.Spec{
			PackageName: "com.quiet.app", Version: 1, Seed: seed + 5000,
			Label: behavior.Malicious, Family: behavior.FamilyLowProfile,
		}, Label: behavior.Malicious}
		res, err := m.Review(app, nil)
		if err != nil {
			t.Fatal(err)
		}
		switch res.Outcome {
		case QuarantinedAfterReport:
			reported++
		case Published:
			missed++
		}
	}
	if reported == 0 {
		t.Error("user-report workflow never triggered")
	}
	// Reported samples become fingerprints: resubmitting one is caught
	// at stage 1.
	if reported > 0 {
		for seed := int64(0); seed < 80; seed++ {
			app := dataset.App{Spec: behavior.Spec{
				PackageName: "com.quiet.app", Version: 1, Seed: seed + 5000,
				Label: behavior.Malicious, Family: behavior.FamilyLowProfile,
			}, Label: behavior.Malicious}
			if m.Known(app.Spec.Seed, true) {
				res, err := m.Review(app, nil)
				if err != nil {
					t.Fatal(err)
				}
				if res.Outcome != RejectedFingerprint {
					t.Errorf("known sample outcome = %v", res.Outcome)
				}
				return
			}
		}
	}
}

func TestRunYearStability(t *testing.T) {
	if testing.Short() {
		t.Skip("year simulation in -short mode")
	}
	u := framework.MustGenerate(framework.TestConfig(3000))
	cfg := DefaultYearConfig()
	cfg.Months = 4
	cfg.InitialApps = 500
	cfg.MonthlyApps = 150
	cfg.RetrainCap = 1100
	rep, err := RunYear(u, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Months) != cfg.Months {
		t.Fatalf("months = %d", len(rep.Months))
	}
	pMin, _, rMin, _ := rep.MinMaxPrecisionRecall()
	if pMin < 0.7 || rMin < 0.55 {
		t.Errorf("deployment degraded: pMin=%.3f rMin=%.3f", pMin, rMin)
	}
	for i, ms := range rep.Months {
		if ms.KeyAPIs == 0 {
			t.Errorf("month %d: no key APIs recorded", i+1)
		}
		// Key set drift stays bounded (Fig. 14's 425-432 band scaled).
		if diff := ms.KeyAPIs - rep.InitialKeyAPIs; diff < -rep.InitialKeyAPIs/3 || diff > rep.InitialKeyAPIs/3 {
			t.Errorf("month %d: key APIs %d drifted far from initial %d", i+1, ms.KeyAPIs, rep.InitialKeyAPIs)
		}
	}
}
