package market

import (
	"reflect"
	"testing"

	"apichecker/internal/behavior"
	"apichecker/internal/core"
	"apichecker/internal/dataset"
	"apichecker/internal/emulator"
	"apichecker/internal/vcache"
)

// cacheMarket trains one market whose checker runs with the given verdict
// cache capacity (negative disables memoization entirely). Training is
// deterministic, so markets built with the same nTrain are twins apart
// from the cache setting.
func cacheMarket(t *testing.T, nTrain, verdictCache int, mcfg Config) *Market {
	t.Helper()
	dcfg := dataset.DefaultConfig()
	dcfg.NumApps = nTrain
	corpus, err := dataset.Generate(testU, dcfg)
	if err != nil {
		t.Fatal(err)
	}
	ccfg := core.DefaultConfig()
	ccfg.VerdictCache = verdictCache
	ck, _, err := core.TrainFromCorpus(corpus, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	m := New(ck, mcfg)
	m.SeedFingerprints(corpus)
	return m
}

// TestDuplicateHeavyCacheMatchesSerialUncached locks the PR's acceptance
// bar: a duplicate-heavy queue reviewed through the cache-enabled batch
// pipeline is bit-identical to a cache-disabled serial Review loop over
// the same queue. Duplicates are benign resubmissions — confirmed malware
// shares fingerprints with the vendors mid-review, which makes serial and
// batch stage-1 diverge on malicious duplicates independent of the cache
// (the documented ReviewBatch caveat).
func TestDuplicateHeavyCacheMatchesSerialUncached(t *testing.T) {
	base := monthSubmissions(t, 120)
	queue := append([]dataset.App{}, base...)
	for _, app := range base {
		if app.Label == behavior.Benign {
			queue = append(queue, app)
		}
	}
	if len(queue) < len(base)+30 {
		t.Fatalf("workload not duplicate-heavy: %d apps, %d duplicates", len(base), len(queue)-len(base))
	}

	serial := cacheMarket(t, 400, -1, DefaultConfig())
	cached := cacheMarket(t, 400, vcache.DefaultCapacity, DefaultConfig())
	defer serial.Close()
	defer cached.Close()

	var serialStats, cachedStats MonthStats
	serialRuns0 := emulator.RunCount()
	serialRes := make([]*SubmissionResult, len(queue))
	for i, app := range queue {
		res, err := serial.Review(app, &serialStats)
		if err != nil {
			t.Fatal(err)
		}
		serialRes[i] = res
	}
	serialRuns := emulator.RunCount() - serialRuns0

	cachedRuns0 := emulator.RunCount()
	cachedRes, err := cached.ReviewBatch(queue, &cachedStats)
	if err != nil {
		t.Fatal(err)
	}
	cachedRuns := emulator.RunCount() - cachedRuns0

	for i := range serialRes {
		if *serialRes[i] != *cachedRes[i] {
			t.Fatalf("submission %d (%s): serial-uncached %+v vs batch-cached %+v",
				i, queue[i].Spec.PackageName, *serialRes[i], *cachedRes[i])
		}
	}
	if serialStats != cachedStats {
		t.Fatalf("month stats diverged:\nserial-uncached %+v\nbatch-cached    %+v", serialStats, cachedStats)
	}
	if !reflect.DeepEqual(serial.Labeled, cached.Labeled) {
		t.Fatalf("retraining labels diverged: %d vs %d entries", len(serial.Labeled), len(cached.Labeled))
	}
	if !reflect.DeepEqual(serial.PublishedPackages(), cached.PublishedPackages()) {
		t.Fatal("published package pools diverged")
	}

	// The cache must have actually carried the duplicate load: every
	// benign resubmission that reached the ML stage is answered without a
	// second emulation.
	st := cached.Checker().CacheStats()
	if st.Hits+st.Coalesced == 0 {
		t.Fatal("duplicate-heavy review never hit the verdict cache")
	}
	if cachedRuns >= serialRuns {
		t.Fatalf("cached batch ran %d emulations, uncached serial %d — no dedupe", cachedRuns, serialRuns)
	}
}

// TestFullDuplicateBatchCacheTransparent compares the batch pipeline
// against itself with the cache switched off, over a queue where every
// app (malicious included) is submitted twice. Same code path on both
// sides, so this isolates the cache as the only variable.
func TestFullDuplicateBatchCacheTransparent(t *testing.T) {
	base := monthSubmissions(t, 100)
	queue := append(append([]dataset.App{}, base...), base...)

	uncached := cacheMarket(t, 400, -1, DefaultConfig())
	cached := cacheMarket(t, 400, vcache.DefaultCapacity, DefaultConfig())
	defer uncached.Close()
	defer cached.Close()

	var uStats, cStats MonthStats
	uRuns0 := emulator.RunCount()
	uRes, err := uncached.ReviewBatch(queue, &uStats)
	if err != nil {
		t.Fatal(err)
	}
	uRuns := emulator.RunCount() - uRuns0
	cRuns0 := emulator.RunCount()
	cRes, err := cached.ReviewBatch(queue, &cStats)
	if err != nil {
		t.Fatal(err)
	}
	cRuns := emulator.RunCount() - cRuns0

	for i := range uRes {
		if *uRes[i] != *cRes[i] {
			t.Fatalf("submission %d (%s): uncached %+v vs cached %+v",
				i, queue[i].Spec.PackageName, *uRes[i], *cRes[i])
		}
	}
	if uStats != cStats {
		t.Fatalf("month stats diverged:\nuncached %+v\ncached   %+v", uStats, cStats)
	}
	if !reflect.DeepEqual(uncached.Labeled, cached.Labeled) {
		t.Fatal("retraining labels diverged")
	}
	if cRuns >= uRuns {
		t.Fatalf("cached batch ran %d emulations, uncached %d — no dedupe", cRuns, uRuns)
	}
	if st := uncached.Checker().CacheStats(); st != (vcache.Stats{}) {
		t.Fatalf("cache-disabled market reports cache stats %+v", st)
	}
}
