// Package market simulates T-Market's app review process around
// APICHECKER (§2, §5.2): fingerprint-based antivirus consensus for known
// malware, the ML scan for zero-day detection, fast-track manual vetting
// of flagged app updates (the false-positive workflow), and user-report
// driven manual analysis of published malware (the false-negative
// workflow). It also drives the year-long deployment simulation behind
// Figs. 12 and 14.
package market

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"apichecker/internal/antivirus"
	"apichecker/internal/behavior"
	"apichecker/internal/core"
	"apichecker/internal/dataset"
	"apichecker/internal/emulator"
	"apichecker/internal/vetsvc"
)

// Config tunes the market simulation.
type Config struct {
	Seed int64

	// KnownMalwareFraction of malicious submissions match an antivirus
	// fingerprint and never reach the ML stage.
	KnownMalwareFraction float64

	// EngineFPRate is each antivirus engine's false-positive rate
	// (§4.1: every engine claims < 5%; T-Market requires all four to
	// agree, bounding label noise by (1-95%)^4).
	EngineFPRate float64

	// Engines is the consensus size (paper: at least four).
	Engines int

	// UserReportRate is the monthly probability that a published
	// malicious app is reported by end users and manually analyzed.
	UserReportRate float64

	// ManualMinutesFull is the cost of a from-scratch manual analysis
	// (§2: a couple of days); ManualMinutesFast is the quick vet of an
	// update against its previous version (§1: ~90% of flagged apps).
	ManualMinutesFull float64
	ManualMinutesFast float64

	// Lanes bounds the parallel ML scans of ReviewBatch, mirroring the
	// production server's emulator lanes (§5.1: 16 per server). <= 0
	// defaults to emulator.ProductionLanes; 1 reviews serially.
	Lanes int
}

// DefaultConfig matches the paper's description.
func DefaultConfig() Config {
	return Config{
		Seed:                 1,
		KnownMalwareFraction: 0.35,
		EngineFPRate:         0.04,
		Engines:              4,
		UserReportRate:       0.6,
		ManualMinutesFull:    2 * 24 * 60,
		ManualMinutesFast:    15,
		Lanes:                emulator.ProductionLanes,
	}
}

// Outcome classifies a submission's fate.
type Outcome int

const (
	// Published: passed every gate.
	Published Outcome = iota
	// RejectedFingerprint: matched the antivirus consensus.
	RejectedFingerprint
	// RejectedML: flagged by APICHECKER and confirmed by manual review.
	RejectedML
	// PublishedAfterComplaint: flagged, but manual review cleared it
	// (an ML false positive resolved via the developer workflow).
	PublishedAfterComplaint
	// QuarantinedAfterReport: published, later user-reported and pulled
	// (an ML false negative resolved via the user workflow).
	QuarantinedAfterReport
)

func (o Outcome) String() string {
	names := [...]string{"published", "rejected-fingerprint", "rejected-ml",
		"published-after-complaint", "quarantined-after-report"}
	if int(o) < len(names) {
		return names[o]
	}
	return fmt.Sprintf("Outcome(%d)", int(o))
}

// SubmissionResult records one reviewed submission.
type SubmissionResult struct {
	Package string
	Outcome Outcome

	// MLMalicious is APICHECKER's raw verdict (when the ML stage ran).
	MLRan       bool
	MLMalicious bool

	// FastTracked: the manual confirmation used the previous version.
	FastTracked bool

	// ManualMinutes of human effort spent on this submission.
	ManualMinutes float64
}

// MonthStats aggregates one review month.
type MonthStats struct {
	Month       int
	Submissions int

	// ML-stage confusion against ground truth.
	TP, FP, TN, FN int

	RejectedKnown  int
	Flagged        int
	FastTracked    int
	ManualFull     int
	UserReports    int
	ManualMinutes  float64
	KeyAPIs        int // key-API set size after this month's retraining
	MeanScanMinute float64
}

// Precision of the ML stage this month.
func (m MonthStats) Precision() float64 {
	if m.TP+m.FP == 0 {
		return 0
	}
	return float64(m.TP) / float64(m.TP+m.FP)
}

// Recall of the ML stage this month.
func (m MonthStats) Recall() float64 {
	if m.TP+m.FN == 0 {
		return 0
	}
	return float64(m.TP) / float64(m.TP+m.FN)
}

// F1 of the ML stage this month.
func (m MonthStats) F1() float64 {
	p, r := m.Precision(), m.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// pastRecord tracks the market's knowledge of a package lineage.
type pastRecord struct {
	lastVersion   int
	everPublished bool
}

// Market is one running marketplace.
type Market struct {
	cfg     Config
	checker *core.Checker
	rng     *rand.Rand

	// av is the commercial-scanner consensus (stage 1 of the review
	// process); program seeds stand in for sample hashes.
	av *antivirus.Consensus

	records map[string]*pastRecord

	// Labeled accumulates the market's labelled submissions for
	// retraining. Labels are the market's belief: ground truth except
	// for unreported false negatives (§5.3: "no false positives, a
	// small number of false negatives").
	Labeled []dataset.App

	// gen regenerates programs from specs; rebuilt when the checker's
	// universe evolves.
	gen *behavior.Generator

	// svc is the market's vetting service — the always-on serving layer
	// ReviewBatch drains ML scans through (queue + emulator lanes). Built
	// lazily, rebuilt if the checker is ever swapped out.
	svc *vetsvc.Service
}

// New creates a market around a trained checker.
func New(checker *core.Checker, cfg Config) *Market {
	return &Market{
		cfg:     cfg,
		checker: checker,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		av:      antivirus.NewConsensusN(cfg.Seed^0xa7, cfg.EngineFPRate, cfg.KnownMalwareFraction, cfg.Engines),
		records: make(map[string]*pastRecord),
	}
}

// Checker returns the market's vetting pipeline.
func (m *Market) Checker() *core.Checker { return m.checker }

// SeedFingerprints pushes the market's own confirmed malware samples into
// every vendor feed (T-Market contributes its fingerprints alongside the
// commercial ones, §2).
func (m *Market) SeedFingerprints(c *dataset.Corpus) {
	for i := range c.Apps {
		if c.Apps[i].Label == behavior.Malicious && m.rng.Float64() < m.cfg.KnownMalwareFraction {
			m.av.LearnAll(c.Apps[i].Spec.Seed)
		}
	}
}

// PublishedPackages returns the package names the market has ever
// published, sorted (the lineage pool app updates arrive against).
func (m *Market) PublishedPackages() []string {
	var out []string
	for pkg, rec := range m.records {
		if rec.everPublished {
			out = append(out, pkg)
		}
	}
	sort.Strings(out)
	return out
}

// Known reports whether any vendor feed fingerprints the sample.
func (m *Market) Known(sampleID int64, malicious bool) bool {
	for _, e := range m.av.Engines() {
		if e.Knows(sampleID, malicious) {
			return true
		}
	}
	return false
}

// avConsensus runs the scanner consensus: reject only on unanimity.
func (m *Market) avConsensus(app dataset.App) bool {
	return m.av.Scan(app.Spec.Seed, app.Label == behavior.Malicious).Rejected
}

// Review processes one submission end to end and records the labelled
// outcome for retraining. stats may be nil.
func (m *Market) Review(app dataset.App, stats *MonthStats) (*SubmissionResult, error) {
	if stats != nil {
		stats.Submissions++
	}
	// Stage 1: fingerprint consensus.
	if m.avConsensus(app) {
		return m.finishRejectedKnown(app, stats), nil
	}
	// Stage 2: APICHECKER.
	verdict, err := m.checker.Vet(context.Background(), core.Submission{Program: m.programOf(app)})
	if err != nil {
		return nil, fmt.Errorf("market: review %s: %w", app.Spec.PackageName, err)
	}
	return m.finishVetted(app, verdict, stats), nil
}

// ReviewBatch reviews a queue of submissions with the expensive ML scans
// drained through the market's vetting service (internal/vetsvc): a
// bounded submission queue feeding Config.Lanes emulator lanes. The result
// is bit-identical to reviewing the queue serially with Review:
//
//   - stage 1 (fingerprint consensus) runs serially up front, consuming
//     the consensus rng in submission order;
//   - stage 2 reserves one vet sequence number per ML-bound app in
//     submission order (exactly what a serial review would assign), so
//     per-app Monkey seeds do not depend on scheduling;
//   - stages 3-4 (manual confirmation, lineage records, user reports,
//     labelling) merge serially in submission order, consuming the market
//     rng in submission order.
//
// The one observable divergence: a sample fingerprinted *during* the batch
// (confirmed malware shares its fingerprint with the vendors) cannot
// reject a same-seed resubmission later in the same batch at stage 1.
// Generated corpora have unique seeds within a month, so the deployment
// simulation never hits this.
func (m *Market) ReviewBatch(apps []dataset.App, stats *MonthStats) ([]*SubmissionResult, error) {
	rejected := make([]bool, len(apps))
	queue := make([]int, 0, len(apps))
	for i := range apps {
		if stats != nil {
			stats.Submissions++
		}
		if m.avConsensus(apps[i]) {
			rejected[i] = true
		} else {
			queue = append(queue, i)
		}
	}

	gen := m.generator() // resolve before the fan-out; Generate is pure
	subs := make([]core.Submission, len(queue))
	for k, i := range queue {
		subs[k] = core.Submission{Program: gen.Generate(apps[i].Spec)}
	}
	vetted, err := m.service().VetBatch(context.Background(), subs)
	if err != nil {
		return nil, fmt.Errorf("market: review batch: %w", err)
	}
	verdicts := make([]*core.Verdict, len(apps))
	for k, i := range queue {
		verdicts[i] = vetted[k]
	}

	out := make([]*SubmissionResult, len(apps))
	for i := range apps {
		if rejected[i] {
			out[i] = m.finishRejectedKnown(apps[i], stats)
		} else {
			out[i] = m.finishVetted(apps[i], verdicts[i], stats)
		}
	}
	return out, nil
}

// lanes resolves the effective ML worker bound.
func (m *Market) lanes() int {
	if m.cfg.Lanes > 0 {
		return m.cfg.Lanes
	}
	return emulator.ProductionLanes
}

// service resolves the market's vetting service, starting it on first use
// and restarting it if the checker instance was ever replaced. The queue
// is sized to keep every lane fed while VetBatch streams a month of
// submissions through under backpressure.
func (m *Market) service() *vetsvc.Service {
	if m.svc == nil || m.svc.Checker() != m.checker {
		if m.svc != nil {
			m.svc.Close()
		}
		m.svc = vetsvc.New(m.checker, vetsvc.Config{
			Workers:   m.lanes(),
			QueueSize: 2 * m.lanes(),
		})
	}
	return m.svc
}

// VetMetrics snapshots the vetting service's counters and scan-latency
// quantiles (zero Metrics before the first ReviewBatch).
func (m *Market) VetMetrics() vetsvc.Metrics {
	if m.svc == nil {
		return vetsvc.Metrics{}
	}
	return m.svc.Metrics()
}

// Close shuts the market's vetting service down, draining in-flight work.
// The market remains usable — the next ReviewBatch starts a fresh service.
func (m *Market) Close() {
	if m.svc != nil {
		m.svc.Close()
		m.svc = nil
	}
}

// record returns the lineage record for a package, creating it on first
// sight.
func (m *Market) record(pkg string) *pastRecord {
	rec := m.records[pkg]
	if rec == nil {
		rec = &pastRecord{}
		m.records[pkg] = rec
	}
	return rec
}

// finishRejectedKnown books a stage-1 fingerprint rejection.
func (m *Market) finishRejectedKnown(app dataset.App, stats *MonthStats) *SubmissionResult {
	m.record(app.Spec.PackageName)
	res := &SubmissionResult{Package: app.Spec.PackageName, Outcome: RejectedFingerprint}
	if stats != nil {
		stats.RejectedKnown++
	}
	m.label(app, behavior.Malicious)
	return res
}

// finishVetted books stages 3-4 for a submission the ML stage scanned.
func (m *Market) finishVetted(app dataset.App, verdict *core.Verdict, stats *MonthStats) *SubmissionResult {
	res := &SubmissionResult{Package: app.Spec.PackageName}
	truth := app.Label == behavior.Malicious
	rec := m.record(app.Spec.PackageName)
	res.MLRan = true
	res.MLMalicious = verdict.Malicious
	if stats != nil {
		stats.MeanScanMinute += verdict.ScanTime.Minutes()
		switch {
		case verdict.Malicious && truth:
			stats.TP++
		case verdict.Malicious && !truth:
			stats.FP++
		case !verdict.Malicious && !truth:
			stats.TN++
		default:
			stats.FN++
		}
	}

	if verdict.Malicious {
		// Stage 3: flagged apps are confirmed manually before any
		// developer-facing rejection (§5.2 actively avoids false
		// positives). Updates of known packages fast-track against
		// their previous version.
		if stats != nil {
			stats.Flagged++
		}
		if app.Spec.Version > 1 && rec.everPublished {
			res.FastTracked = true
			res.ManualMinutes = m.cfg.ManualMinutesFast
			if stats != nil {
				stats.FastTracked++
			}
		} else {
			res.ManualMinutes = m.cfg.ManualMinutesFull
			if stats != nil {
				stats.ManualFull++
			}
		}
		if stats != nil {
			stats.ManualMinutes += res.ManualMinutes
		}
		if truth {
			res.Outcome = RejectedML
			m.av.LearnAll(app.Spec.Seed)
			m.label(app, behavior.Malicious)
		} else {
			res.Outcome = PublishedAfterComplaint
			rec.everPublished = true
			m.label(app, behavior.Benign)
		}
		rec.lastVersion = app.Spec.Version
		return res
	}

	// Stage 4: published. Malicious apps that slipped through may be
	// user-reported; only then is manual analysis performed (§5.2
	// passively mitigates false negatives).
	rec.everPublished = true
	rec.lastVersion = app.Spec.Version
	if truth && m.rng.Float64() < m.cfg.UserReportRate {
		res.Outcome = QuarantinedAfterReport
		res.ManualMinutes = m.cfg.ManualMinutesFull
		if stats != nil {
			stats.UserReports++
			stats.ManualFull++
			stats.ManualMinutes += res.ManualMinutes
		}
		m.av.LearnAll(app.Spec.Seed)
		m.label(app, behavior.Malicious)
		return res
	}
	res.Outcome = Published
	// Unreported malware stays labelled benign in the retraining set —
	// the market does not know better yet.
	m.label(app, behavior.Benign)
	return res
}

func (m *Market) label(app dataset.App, label behavior.Label) {
	spec := app.Spec
	spec.Label = label
	if label == behavior.Benign {
		spec.Family = behavior.FamilyNone
	}
	m.Labeled = append(m.Labeled, dataset.App{Spec: spec, Label: label})
}

// generator resolves the behaviour generator, rebuilding it when the
// checker's universe has evolved. Resolve it once before fanning out:
// Generate itself derives everything from the spec and is safe to call
// concurrently, but the lazy rebuild here is not.
func (m *Market) generator() *behavior.Generator {
	if m.gen == nil || m.gen.Universe() != m.checker.Universe() {
		m.gen = behavior.NewGenerator(m.checker.Universe())
	}
	return m.gen
}

func (m *Market) programOf(app dataset.App) *behavior.Program {
	// Programs are regenerated from the spec with a generator bound to
	// the checker's current universe; the market itself only ever sees
	// the APK-equivalent artifact.
	return m.generator().Generate(app.Spec)
}
