// Persistent verdict-cache tier: an append-log of flat cache entries so a
// restarted serving node warm-starts its hit rate instead of re-emulating
// everything it had already memoized.
//
// The file discipline matches modelstore: a header written via temp-file +
// rename (never partially visible), records appended with O_APPEND (the
// kernel's atomic append contract for single-writer logs), and a CRC per
// record so a torn final write degrades to "skip the tail", never to a
// corrupt verdict. The log is keyed by a generation key (the serving model
// identity): a snapshot recorded under one model is worthless — actively
// wrong — under another, so Open discards the file wholesale on key
// mismatch and lifecycle swaps Reset it exactly like the in-memory epoch
// bump drops the live entries.
//
// Record layout (little-endian), after the header line:
//
//	u32 keyLen | key bytes | u32 valLen | val bytes | u32 crc32(IEEE, key+val)
package vcache

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// persistFile is the log's name inside the persist directory.
const persistFile = "vcache.log"

// persistMagic versions the header; bump on layout changes.
const persistMagic = "vcachelog/1 "

// maxPersistRecord bounds one record's key+value size — corrupt length
// prefixes must not drive a multi-gigabyte allocation during replay.
const maxPersistRecord = 64 << 20

// Compaction bounds the log within one model generation. Every store
// appends — including re-stores of keys the LRU evicted and re-computed —
// so a long-lived epoch would otherwise accrete unbounded disk and
// ever-slower replay. Once the file grows past compactFactor times the
// size of the last compacted image (with compactFloor so tiny caches never
// churn), the log is rewritten to exactly the live entries the snapshot
// callback emits, via the same temp-file + rename discipline as Reset.
const (
	compactFactor = 4
	compactFloor  = 1 << 20
)

// ErrPersistCorrupt marks a persist log whose header does not parse. Torn
// or corrupt records are not errors — replay stops at the first bad record
// and keeps everything before it.
var ErrPersistCorrupt = errors.New("vcache: corrupt persist log header")

// PersistLog is the file-backed warm-start tier for a Cache[[]byte].
// One writer (the serving process) appends entries as they are stored;
// OpenPersist replays them on the next start if the generation key still
// matches. Safe for concurrent use.
type PersistLog struct {
	mu     sync.Mutex
	dir    string
	genKey string
	epoch  uint64 // cache epoch appends must match (see AppendCurrent)
	f      *os.File
	closed bool

	// size is the current file length; lastCompact the length of the last
	// compacted (or freshly opened) image — together they drive the
	// grow-past-a-multiple compaction trigger.
	size, lastCompact int64
	// snapshot (EnableCompaction) emits the live entries a compaction
	// rewrites the log to; nil disables compaction and the log grows
	// unbounded within a generation.
	snapshot func(emit func(key string, val []byte))

	appends, resets, compactions, compactErrors uint64
}

// OpenPersist opens (or creates) the persist log in dir. genKey is the
// serving model's identity (artifact digest or equivalent fingerprint);
// epoch is the live cache's current epoch, which appends are gated on.
//
// When the existing log carries the same genKey, its records are replayed
// through restore (good records only, in append order) and appending
// continues where the log left off. Any mismatch — different key, missing
// file, unparseable header — starts a fresh log; restored reports how many
// entries were replayed and skipped reports records dropped as torn or
// corrupt.
func OpenPersist(dir, genKey string, epoch uint64, restore func(key string, val []byte)) (p *PersistLog, restored, skipped int, err error) {
	if genKey == "" {
		return nil, 0, 0, fmt.Errorf("vcache: persist requires a non-empty generation key")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, 0, 0, fmt.Errorf("vcache: persist dir: %w", err)
	}
	p = &PersistLog{dir: dir, genKey: genKey, epoch: epoch}
	path := filepath.Join(dir, persistFile)

	restored, skipped, goodBytes, replayErr := replayLog(path, genKey, restore)
	switch {
	case replayErr != nil:
		// Stale key or unusable file: truncate to a fresh header. The old
		// snapshot is worthless under this model, keeping it would only
		// resurrect stale verdicts on some future restart.
		if err := p.writeHeader(); err != nil {
			return nil, 0, 0, err
		}
	case skipped > 0:
		// Torn tail: cut the file back to the good prefix so new appends
		// land on a record boundary instead of extending the torn record.
		if err := os.Truncate(path, goodBytes); err != nil {
			return nil, 0, 0, fmt.Errorf("vcache: persist truncate torn tail: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("vcache: persist open: %w", err)
	}
	p.f = f
	if st, serr := f.Stat(); serr == nil {
		p.size, p.lastCompact = st.Size(), st.Size()
	}
	return p, restored, skipped, nil
}

// EnableCompaction installs the live-snapshot source compaction rewrites
// the log from — typically the owning cache's current-generation entries.
// snapshot runs with the log lock held and must not call back into this
// PersistLog. Without it the log is never compacted.
func (p *PersistLog) EnableCompaction(snapshot func(emit func(key string, val []byte))) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.snapshot = snapshot
}

// writeHeader atomically replaces the log with a fresh header-only file
// (temp file + rename, the modelstore discipline: readers and crashed
// writers never observe a half-written header).
func (p *PersistLog) writeHeader() error {
	path := filepath.Join(p.dir, persistFile)
	tmp, err := os.CreateTemp(p.dir, ".vcache-*")
	if err != nil {
		return fmt.Errorf("vcache: persist reset: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.WriteString(persistMagic + p.genKey + "\n"); err != nil {
		tmp.Close()
		return fmt.Errorf("vcache: persist reset: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("vcache: persist reset: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("vcache: persist reset: %w", err)
	}
	return nil
}

// replayLog streams good records out of an existing log, tracking the
// byte length of the good prefix (header + intact records). A header key
// mismatch (or no/garbled header) returns an error — the caller starts
// fresh; bad records mid-file stop the replay, keeping the good prefix.
func replayLog(path, genKey string, restore func(key string, val []byte)) (restored, skipped int, goodBytes int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("vcache: no persist log: %w", err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	header, err := r.ReadString('\n')
	if err != nil {
		return 0, 0, 0, fmt.Errorf("%w: unreadable header", ErrPersistCorrupt)
	}
	key, ok := strings.CutPrefix(strings.TrimSuffix(header, "\n"), persistMagic)
	if !ok {
		return 0, 0, 0, fmt.Errorf("%w: bad magic", ErrPersistCorrupt)
	}
	if key != genKey {
		return 0, 0, 0, fmt.Errorf("vcache: persist log recorded under a different model (%.12s… vs %.12s…)", key, genKey)
	}
	goodBytes = int64(len(header))
	for {
		k, v, rerr := readRecord(r)
		if rerr == io.EOF {
			return restored, skipped, goodBytes, nil
		}
		if rerr != nil {
			// Torn or corrupt record: drop it and everything after — a
			// record boundary cannot be trusted past a bad CRC.
			skipped++
			return restored, skipped, goodBytes, nil
		}
		if restore != nil {
			restore(k, v)
		}
		restored++
		goodBytes += int64(12 + len(k) + len(v))
	}
}

// readRecord decodes one record. io.EOF means a clean end of log; any
// other error marks the first torn or corrupt record (bad length, short
// read, CRC mismatch).
func readRecord(r *bufio.Reader) (key string, val []byte, err error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		if err == io.EOF {
			return "", nil, io.EOF
		}
		return "", nil, fmt.Errorf("torn record: %w", err)
	}
	keyLen := binary.LittleEndian.Uint32(lenBuf[:])
	if keyLen > maxPersistRecord {
		return "", nil, fmt.Errorf("absurd key length %d", keyLen)
	}
	keyBytes := make([]byte, keyLen)
	if _, err := io.ReadFull(r, keyBytes); err != nil {
		return "", nil, fmt.Errorf("torn record: %w", err)
	}
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return "", nil, fmt.Errorf("torn record: %w", err)
	}
	valLen := binary.LittleEndian.Uint32(lenBuf[:])
	if valLen > maxPersistRecord {
		return "", nil, fmt.Errorf("absurd value length %d", valLen)
	}
	val = make([]byte, valLen)
	if _, err := io.ReadFull(r, val); err != nil {
		return "", nil, fmt.Errorf("torn record: %w", err)
	}
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return "", nil, fmt.Errorf("torn record: %w", err)
	}
	crc := crc32.NewIEEE()
	crc.Write(keyBytes)
	crc.Write(val)
	if binary.LittleEndian.Uint32(lenBuf[:]) != crc.Sum32() {
		return "", nil, fmt.Errorf("record CRC mismatch")
	}
	return string(keyBytes), val, nil
}

// AppendCurrent appends one entry if epoch still matches the log's —
// the on-disk analogue of TryPut's epoch condition. An append racing a
// Reset (model swap) is either rejected here or lands in the old file
// before the rename replaces it; a stale entry can never reach the log
// that survives.
func (p *PersistLog) AppendCurrent(key string, val []byte, epoch uint64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed || epoch != p.epoch {
		return nil
	}
	buf := encodeRecord(key, val)
	// One write syscall per record on an O_APPEND descriptor: records from
	// this process never interleave, and a crash tears at most the last one
	// (which the CRC catches on replay).
	if _, err := p.f.Write(buf); err != nil {
		return fmt.Errorf("vcache: persist append: %w", err)
	}
	p.appends++
	p.size += int64(len(buf))
	if p.snapshot != nil && p.size > max(compactFloor, compactFactor*p.lastCompact) {
		if err := p.compactLocked(); err != nil {
			p.compactErrors++
			// Back the threshold off to the current size so a persistently
			// failing rewrite (read-only dir, full disk) does not retry on
			// every subsequent append.
			p.lastCompact = p.size
		}
	}
	return nil
}

// encodeRecord flattens one key/value into the on-disk record layout.
func encodeRecord(key string, val []byte) []byte {
	buf := make([]byte, 0, 12+len(key)+len(val))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(key)))
	buf = append(buf, key...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(val)))
	buf = append(buf, val...)
	crc := crc32.NewIEEE()
	crc.Write(buf[4 : 4+len(key)])
	crc.Write(val)
	return binary.LittleEndian.AppendUint32(buf, crc.Sum32())
}

// compactLocked rewrites the log to the snapshot's live entries under the
// current generation key: temp file + rename (a crash leaves either the
// old log or the complete new one), then the append descriptor swaps to
// the compacted file. Called with p.mu held.
func (p *PersistLog) compactLocked() error {
	tmp, err := os.CreateTemp(p.dir, ".vcache-*")
	if err != nil {
		return fmt.Errorf("vcache: persist compact: %w", err)
	}
	defer os.Remove(tmp.Name())
	w := bufio.NewWriterSize(tmp, 1<<20)
	written := int64(0)
	n, err := w.WriteString(persistMagic + p.genKey + "\n")
	written += int64(n)
	if err == nil {
		p.snapshot(func(key string, val []byte) {
			if err != nil {
				return
			}
			var wn int
			wn, err = w.Write(encodeRecord(key, val))
			written += int64(wn)
		})
	}
	if err == nil {
		err = w.Flush()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("vcache: persist compact: %w", err)
	}
	path := filepath.Join(p.dir, persistFile)
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("vcache: persist compact: %w", err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("vcache: persist compact reopen: %w", err)
	}
	old := p.f
	p.f = f
	old.Close()
	p.size, p.lastCompact = written, written
	p.compactions++
	return nil
}

// Reset discards every persisted entry and re-keys the log — the
// on-disk mirror of BumpEpoch, called by lifecycle swaps with the new
// model's key and the post-bump epoch.
func (p *PersistLog) Reset(genKey string, epoch uint64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	p.genKey, p.epoch = genKey, epoch
	p.resets++
	if err := p.writeHeader(); err != nil {
		return err
	}
	// Swap the append descriptor to the fresh file; the old one keeps
	// working for any in-flight append but its file is already unlinked.
	old := p.f
	f, err := os.OpenFile(filepath.Join(p.dir, persistFile), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("vcache: persist reopen: %w", err)
	}
	p.f = f
	old.Close()
	p.size = int64(len(persistMagic) + len(p.genKey) + 1)
	p.lastCompact = p.size
	return nil
}

// GenKey returns the generation key the log is currently recording under.
func (p *PersistLog) GenKey() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.genKey
}

// PersistCounters is the persist-tier activity snapshot Counters returns
// (the persist rows of the service metrics dump).
type PersistCounters struct {
	Appends uint64 // records written through since open
	Resets  uint64 // lifecycle re-keys
	// Compactions counts log rewrites that bounded on-disk growth;
	// CompactErrors counts failed rewrite attempts (the log keeps
	// appending, just unbounded until one succeeds).
	Compactions   uint64
	CompactErrors uint64
}

// Counters reports persist-tier activity since open.
func (p *PersistLog) Counters() PersistCounters {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PersistCounters{
		Appends:       p.appends,
		Resets:        p.resets,
		Compactions:   p.compactions,
		CompactErrors: p.compactErrors,
	}
}

// Close flushes and closes the log; further appends are silently dropped
// (the in-memory cache remains authoritative).
func (p *PersistLog) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	p.closed = true
	return p.f.Close()
}
