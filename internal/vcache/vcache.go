// Package vcache is the verdict-memoization layer of the serving path: a
// sharded LRU keyed by APK content digest, with a singleflight group so N
// concurrent submissions of the same digest pay for exactly one
// computation, and a model-generation epoch so retraining invalidates
// every verdict produced by the previous model.
//
// The cache is generic over the stored value and knows nothing about
// verdicts; core.Checker decides what to key, what to store, and when to
// bump the epoch. Policy lives here:
//
//   - capacity: least-recently-used entries are evicted per shard once the
//     shard is full; sharding keeps lock hold times short under the
//     many-lane serving load.
//   - singleflight: the first Do for an absent key becomes the leader and
//     runs the computation; concurrent Dos for the same key block on the
//     leader's result instead of recomputing (OutcomeCoalesced). A blocked
//     follower honours its own context.
//   - epochs: BumpEpoch atomically advances the generation and drops every
//     entry. A computation that straddles a bump is returned to its caller
//     but never stored — its inputs (the model) are already stale.
//   - errors are never cached: a failed computation leaves no entry, so
//     transient failures (deadlines, cancellations) do not poison a digest.
package vcache

import (
	"container/list"
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"apichecker/internal/obs"
)

// Outcome classifies how one Do call was served.
type Outcome uint8

const (
	// OutcomeBypass: the cache was not consulted (disabled, or the key was
	// empty because the payload is not digestable).
	OutcomeBypass Outcome = iota
	// OutcomeMiss: no usable entry; this call ran the computation.
	OutcomeMiss
	// OutcomeHit: served from a stored entry, no computation.
	OutcomeHit
	// OutcomeCoalesced: blocked on a concurrent leader computing the same
	// key and shared its result.
	OutcomeCoalesced
)

func (o Outcome) String() string {
	names := [...]string{"bypass", "miss", "hit", "coalesced"}
	if int(o) < len(names) {
		return names[o]
	}
	return fmt.Sprintf("Outcome(%d)", uint8(o))
}

// Served reports whether the call was answered without running its own
// computation (a hit or a coalesced follow).
func (o Outcome) Served() bool { return o == OutcomeHit || o == OutcomeCoalesced }

// DefaultCapacity is the entry bound used when New is given a
// non-positive capacity.
const DefaultCapacity = 4096

// entry is one stored value; epoch records the generation it was computed
// under.
type entry[V any] struct {
	key   string
	val   V
	epoch uint64
}

// call is one in-flight leader computation followers block on.
type call[V any] struct {
	done  chan struct{}
	val   V
	err   error
	epoch uint64
}

type shard[V any] struct {
	mu       sync.Mutex
	capacity int
	lru      *list.List               // front = most recently used
	items    map[string]*list.Element // key -> element holding *entry[V]
	inflight map[string]*call[V]
}

// Cache is a sharded, epoch-aware LRU with singleflight computation.
// The zero value is not usable; construct with New.
//
// The cache books its accounting as obs counters (vcache.hits,
// vcache.misses, vcache.coalesced, vcache.evictions,
// vcache.invalidations): Stats is a thin view over those handles, and a
// cache built with NewObserved shares them with the rest of the vetting
// system's observability spine.
type Cache[V any] struct {
	shards []shard[V]
	epoch  atomic.Uint64

	hits, misses, coalesced  *obs.Counter
	evictions, invalidations *obs.Counter

	// sizeOf measures one stored value (SetSizeOf); when set, live bytes
	// across all stored entries are tracked in live and mirrored on the
	// vcache.live_bytes gauge — the bounded-heap evidence for a cache
	// holding millions of entries.
	sizeOf    func(V) int
	live      atomic.Int64
	liveGauge *obs.Gauge

	// onStore (OnStore) observes every successful store outside the shard
	// lock — the persistence tier's write-through tap.
	onStore func(key string, v V, epoch uint64)
}

// New builds a cache bounded to roughly capacity entries (the bound is
// enforced per shard). capacity <= 0 selects DefaultCapacity.
func New[V any](capacity int) *Cache[V] {
	return NewObserved[V](capacity, nil)
}

// NewObserved is New with the cache's counters registered on a shared
// obs collector (nil keeps them private). The counters are authoritative
// — Stats reads them back — so observers and the legacy snapshot can
// never disagree.
func NewObserved[V any](capacity int, col *obs.Collector) *Cache[V] {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	if col == nil {
		col = obs.NewCollector()
	}
	n := shardCount(capacity)
	c := &Cache[V]{
		shards:        make([]shard[V], n),
		liveGauge:     col.Gauge("vcache.live_bytes"),
		hits:          col.Counter("vcache.hits"),
		misses:        col.Counter("vcache.misses"),
		coalesced:     col.Counter("vcache.coalesced"),
		evictions:     col.Counter("vcache.evictions"),
		invalidations: col.Counter("vcache.invalidations"),
	}
	per := (capacity + n - 1) / n
	for i := range c.shards {
		c.shards[i] = shard[V]{
			capacity: per,
			lru:      list.New(),
			items:    make(map[string]*list.Element),
			inflight: make(map[string]*call[V]),
		}
	}
	return c
}

// SetSizeOf installs the value-size measure enabling live-byte accounting
// (Stats.LiveBytes and the vcache.live_bytes gauge). Install before the
// cache sees traffic: entries stored earlier are not retroactively
// measured.
func (c *Cache[V]) SetSizeOf(fn func(V) int) { c.sizeOf = fn }

// OnStore installs a hook observing every successful store (leader
// completion, Put, TryPut) with the epoch the value was stored under. It
// runs outside the shard lock, so a slow hook (a file append) stalls only
// its own caller. Install before the cache sees traffic.
func (c *Cache[V]) OnStore(fn func(key string, v V, epoch uint64)) { c.onStore = fn }

// addLive books a live-byte delta and mirrors the total on the gauge.
func (c *Cache[V]) addLive(delta int64) {
	if c.sizeOf == nil || delta == 0 {
		return
	}
	c.liveGauge.Set(c.live.Add(delta))
}

// shardCount keeps small caches in one shard (exact LRU) and spreads
// large ones over up to 16 locks.
func shardCount(capacity int) int {
	n := 1
	for n < 16 && capacity >= 128*n*2 {
		n *= 2
	}
	return n
}

func (c *Cache[V]) shard(key string) *shard[V] {
	if len(c.shards) == 1 {
		return &c.shards[0]
	}
	return &c.shards[fnv64(key)%uint64(len(c.shards))]
}

// fnv64 is FNV-1a over the key (digests are uniformly distributed hex, so
// any cheap hash shards evenly).
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return h
}

// Do returns the cached value for key, or runs compute exactly once per
// concurrent wave of identical keys and caches its result. An empty key
// bypasses the cache entirely. Followers blocked on a leader honour ctx;
// the leader's computation runs under whatever context compute captured.
// Errors are returned but never cached.
func (c *Cache[V]) Do(ctx context.Context, key string, compute func() (V, error)) (V, Outcome, error) {
	if key == "" {
		v, err := compute()
		return v, OutcomeBypass, err
	}
	sh := c.shard(key)
	epoch := c.epoch.Load()

	sh.mu.Lock()
	if el, ok := sh.items[key]; ok {
		e := el.Value.(*entry[V])
		if e.epoch == epoch {
			sh.lru.MoveToFront(el)
			v := e.val
			sh.mu.Unlock()
			c.hits.Add(1)
			return v, OutcomeHit, nil
		}
		// Stale generation: drop it and fall through to recompute.
		sh.lru.Remove(el)
		delete(sh.items, key)
		if c.sizeOf != nil {
			c.addLive(-int64(c.sizeOf(e.val)))
		}
		c.invalidations.Add(1)
	}
	if cl, ok := sh.inflight[key]; ok && cl.epoch == epoch {
		sh.mu.Unlock()
		var zero V
		select {
		case <-cl.done:
			c.coalesced.Add(1)
			return cl.val, OutcomeCoalesced, cl.err
		case <-ctx.Done():
			c.coalesced.Add(1)
			return zero, OutcomeCoalesced, ctx.Err()
		}
	}
	cl := &call[V]{done: make(chan struct{}), epoch: epoch}
	sh.inflight[key] = cl
	sh.mu.Unlock()

	cl.val, cl.err = compute()
	close(cl.done)

	sh.mu.Lock()
	// A BumpEpoch or a same-key successor (after an epoch change) may have
	// replaced the registration; only clear our own.
	if sh.inflight[key] == cl {
		delete(sh.inflight, key)
	}
	stored := false
	if cl.err == nil && c.epoch.Load() == epoch {
		c.store(sh, key, cl.val, epoch)
		stored = true
	}
	sh.mu.Unlock()
	if stored && c.onStore != nil {
		c.onStore(key, cl.val, epoch)
	}
	c.misses.Add(1)
	return cl.val, OutcomeMiss, cl.err
}

// Get looks the key up without counting a hit or a miss (observability
// and tests; the serving path uses Do).
func (c *Cache[V]) Get(key string) (V, bool) {
	var zero V
	if key == "" {
		return zero, false
	}
	sh := c.shard(key)
	epoch := c.epoch.Load()
	sh.mu.Lock()
	defer sh.mu.Unlock()
	el, ok := sh.items[key]
	if !ok {
		return zero, false
	}
	e := el.Value.(*entry[V])
	if e.epoch != epoch {
		return zero, false
	}
	sh.lru.MoveToFront(el)
	return e.val, true
}

// Put stores a value computed outside Do (the write-through path: callers
// that must always run the computation can still feed the cache).
func (c *Cache[V]) Put(key string, v V) {
	if key == "" {
		return
	}
	sh := c.shard(key)
	epoch := c.epoch.Load()
	sh.mu.Lock()
	c.store(sh, key, v, epoch)
	sh.mu.Unlock()
	if c.onStore != nil {
		c.onStore(key, v, epoch)
	}
}

// TryPut is Put conditioned on the epoch the value was computed under: it
// stores only if that epoch is still current and reports whether it did.
// This is the write-through analogue of Do's straddle check — a verdict
// computed on a model generation that was swapped out mid-run must reach
// its caller but never the cache.
func (c *Cache[V]) TryPut(key string, v V, epoch uint64) bool {
	if key == "" || c.epoch.Load() != epoch {
		return false
	}
	sh := c.shard(key)
	sh.mu.Lock()
	// Re-check under the shard lock: BumpEpoch drops entries shard by
	// shard, so an unlocked check alone could store into a shard the bump
	// already cleared.
	if c.epoch.Load() != epoch {
		sh.mu.Unlock()
		return false
	}
	c.store(sh, key, v, epoch)
	sh.mu.Unlock()
	if c.onStore != nil {
		c.onStore(key, v, epoch)
	}
	return true
}

// store upserts under the shard lock, evicting the LRU entry if full.
func (c *Cache[V]) store(sh *shard[V], key string, v V, epoch uint64) {
	if el, ok := sh.items[key]; ok {
		e := el.Value.(*entry[V])
		if c.sizeOf != nil {
			c.addLive(int64(c.sizeOf(v)) - int64(c.sizeOf(e.val)))
		}
		e.val, e.epoch = v, epoch
		sh.lru.MoveToFront(el)
		return
	}
	if sh.lru.Len() >= sh.capacity {
		back := sh.lru.Back()
		if back != nil {
			dropped := back.Value.(*entry[V])
			sh.lru.Remove(back)
			delete(sh.items, dropped.key)
			if c.sizeOf != nil {
				c.addLive(-int64(c.sizeOf(dropped.val)))
			}
			c.evictions.Add(1)
		}
	}
	sh.items[key] = sh.lru.PushFront(&entry[V]{key: key, val: v, epoch: epoch})
	if c.sizeOf != nil {
		c.addLive(int64(c.sizeOf(v)))
	}
}

// Range calls fn for every current-generation entry, shard by shard, until
// fn returns false. Each shard is snapshotted under its lock and fn runs
// outside it, so a slow fn (the persist tier's compaction rewrite) never
// stalls serving lookups. Values are the stored values themselves, not
// copies — callers must treat them as immutable, the same contract hits
// already rely on.
func (c *Cache[V]) Range(fn func(key string, v V) bool) {
	epoch := c.epoch.Load()
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		snap := make([]entry[V], 0, sh.lru.Len())
		for el := sh.lru.Front(); el != nil; el = el.Next() {
			if e := el.Value.(*entry[V]); e.epoch == epoch {
				snap = append(snap, *e)
			}
		}
		sh.mu.Unlock()
		for _, e := range snap {
			if !fn(e.key, e.val) {
				return
			}
		}
	}
}

// BumpEpoch advances the model generation and drops every stored entry.
// In-flight leader computations finish but are not stored, and new Dos
// for the same keys recompute rather than coalescing onto them.
func (c *Cache[V]) BumpEpoch() {
	c.epoch.Add(1)
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n := sh.lru.Len()
		if c.sizeOf != nil {
			var bytes int64
			for el := sh.lru.Front(); el != nil; el = el.Next() {
				bytes += int64(c.sizeOf(el.Value.(*entry[V]).val))
			}
			c.addLive(-bytes)
		}
		sh.lru.Init()
		clear(sh.items)
		sh.mu.Unlock()
		c.invalidations.Add(uint64(n))
	}
}

// Epoch returns the current model generation.
func (c *Cache[V]) Epoch() uint64 { return c.epoch.Load() }

// Len returns the stored entry count across shards.
func (c *Cache[V]) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += sh.lru.Len()
		sh.mu.Unlock()
	}
	return n
}

// Stats is a point-in-time counter snapshot.
type Stats struct {
	Hits      uint64 // Dos served from a stored entry
	Misses    uint64 // Dos that ran the computation
	Coalesced uint64 // Dos that blocked on a concurrent leader

	Evictions     uint64 // entries dropped by the LRU bound
	Invalidations uint64 // entries dropped by epoch bumps

	Entries  int    // stored entries right now
	Capacity int    // configured entry bound
	Epoch    uint64 // current model generation

	// LiveBytes is the summed SizeOf of every stored entry — 0 unless the
	// owner installed a size measure (core measures flat entry length).
	LiveBytes int64
}

// Stats snapshots the cache counters.
func (c *Cache[V]) Stats() Stats {
	cap := 0
	for i := range c.shards {
		cap += c.shards[i].capacity
	}
	return Stats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Coalesced:     c.coalesced.Load(),
		Evictions:     c.evictions.Load(),
		Invalidations: c.invalidations.Load(),
		Entries:       c.Len(),
		Capacity:      cap,
		Epoch:         c.epoch.Load(),
		LiveBytes:     c.live.Load(),
	}
}
