package vcache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestDoMissThenHit(t *testing.T) {
	c := New[int](8)
	computes := 0
	get := func() (int, error) { computes++; return 42, nil }

	v, out, err := c.Do(context.Background(), "k", get)
	if err != nil || v != 42 || out != OutcomeMiss {
		t.Fatalf("first Do = (%d, %v, %v), want (42, miss, nil)", v, out, err)
	}
	v, out, err = c.Do(context.Background(), "k", get)
	if err != nil || v != 42 || out != OutcomeHit {
		t.Fatalf("second Do = (%d, %v, %v), want (42, hit, nil)", v, out, err)
	}
	if computes != 1 {
		t.Fatalf("computes = %d, want 1", computes)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Coalesced != 0 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestEmptyKeyBypasses(t *testing.T) {
	c := New[int](8)
	computes := 0
	for i := 0; i < 2; i++ {
		v, out, err := c.Do(context.Background(), "", func() (int, error) { computes++; return 7, nil })
		if err != nil || v != 7 || out != OutcomeBypass {
			t.Fatalf("Do = (%d, %v, %v), want (7, bypass, nil)", v, out, err)
		}
	}
	if computes != 2 {
		t.Fatalf("computes = %d, want 2 (no caching on empty keys)", computes)
	}
	if st := c.Stats(); st.Hits+st.Misses+st.Coalesced != 0 || st.Entries != 0 {
		t.Fatalf("bypass touched the cache: %+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New[int](3) // small capacity -> single shard, exact LRU
	if len(c.shards) != 1 {
		t.Fatalf("capacity 3 spread over %d shards; eviction test needs 1", len(c.shards))
	}
	for i := 0; i < 3; i++ {
		c.Put(fmt.Sprintf("k%d", i), i)
	}
	// Touch k0 so k1 becomes least recently used.
	if _, ok := c.Get("k0"); !ok {
		t.Fatal("k0 missing before eviction")
	}
	c.Put("k3", 3)
	if _, ok := c.Get("k1"); ok {
		t.Fatal("k1 survived eviction; LRU order not respected")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s evicted, want retained", k)
		}
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 3 {
		t.Fatalf("stats = %+v, want 1 eviction and 3 entries", st)
	}
}

func TestSingleflightCoalesces(t *testing.T) {
	c := New[int](8)
	const followers = 15
	var computes int
	started := make(chan struct{})
	release := make(chan struct{})

	var wg sync.WaitGroup
	results := make([]int, followers+1)
	outcomes := make([]Outcome, followers+1)

	// Leader blocks inside compute until every follower is queued.
	wg.Add(1)
	go func() {
		defer wg.Done()
		v, out, err := c.Do(context.Background(), "k", func() (int, error) {
			computes++ // only the leader runs; no lock needed
			close(started)
			<-release
			return 99, nil
		})
		if err != nil {
			t.Errorf("leader: %v", err)
		}
		results[0], outcomes[0] = v, out
	}()
	<-started
	for i := 1; i <= followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, out, err := c.Do(context.Background(), "k", func() (int, error) {
				t.Error("follower ran the computation")
				return 0, nil
			})
			if err != nil {
				t.Errorf("follower %d: %v", i, err)
			}
			results[i], outcomes[i] = v, out
		}(i)
	}
	// Followers register against the in-flight call asynchronously; give
	// them space to block, then release the leader. Coalesced vs hit split
	// is timing-dependent, but compute count and values are not.
	close(release)
	wg.Wait()

	if computes != 1 {
		t.Fatalf("computes = %d, want 1", computes)
	}
	for i, v := range results {
		if v != 99 {
			t.Fatalf("result[%d] = %d, want 99", i, v)
		}
	}
	if outcomes[0] != OutcomeMiss {
		t.Fatalf("leader outcome = %v, want miss", outcomes[0])
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits+st.Coalesced != followers {
		t.Fatalf("stats = %+v, want 1 miss and %d hits+coalesced", st, followers)
	}
}

func TestFollowerHonoursContext(t *testing.T) {
	c := New[int](8)
	started := make(chan struct{})
	release := make(chan struct{})
	go c.Do(context.Background(), "k", func() (int, error) {
		close(started)
		<-release
		return 1, nil
	})
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, out, err := c.Do(ctx, "k", func() (int, error) { return 2, nil })
	close(release)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if out != OutcomeCoalesced {
		t.Fatalf("outcome = %v, want coalesced", out)
	}
}

func TestErrorsNotCached(t *testing.T) {
	c := New[int](8)
	boom := errors.New("boom")
	computes := 0
	_, out, err := c.Do(context.Background(), "k", func() (int, error) { computes++; return 0, boom })
	if !errors.Is(err, boom) || out != OutcomeMiss {
		t.Fatalf("Do = (%v, %v), want (miss, boom)", out, err)
	}
	v, out, err := c.Do(context.Background(), "k", func() (int, error) { computes++; return 5, nil })
	if err != nil || v != 5 || out != OutcomeMiss {
		t.Fatalf("retry Do = (%d, %v, %v), want (5, miss, nil)", v, out, err)
	}
	if computes != 2 {
		t.Fatalf("computes = %d, want 2 (errors must not be cached)", computes)
	}
}

func TestBumpEpochInvalidates(t *testing.T) {
	c := New[int](8)
	computes := 0
	get := func() (int, error) { computes++; return computes, nil }

	if _, out, _ := c.Do(context.Background(), "k", get); out != OutcomeMiss {
		t.Fatalf("outcome = %v, want miss", out)
	}
	c.BumpEpoch()
	if _, ok := c.Get("k"); ok {
		t.Fatal("entry survived BumpEpoch")
	}
	v, out, _ := c.Do(context.Background(), "k", get)
	if out != OutcomeMiss || v != 2 {
		t.Fatalf("post-bump Do = (%d, %v), want (2, miss)", v, out)
	}
	st := c.Stats()
	if st.Invalidations != 1 || st.Epoch != 1 {
		t.Fatalf("stats = %+v, want 1 invalidation at epoch 1", st)
	}
	// The fresh entry is cached under the new epoch.
	if _, out, _ := c.Do(context.Background(), "k", get); out != OutcomeHit {
		t.Fatalf("outcome = %v, want hit under new epoch", out)
	}
}

func TestBumpEpochDuringFlightSkipsStore(t *testing.T) {
	c := New[int](8)
	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan Outcome)
	go func() {
		_, out, _ := c.Do(context.Background(), "k", func() (int, error) {
			close(started)
			<-release
			return 1, nil
		})
		done <- out
	}()
	<-started
	c.BumpEpoch() // the in-flight result is stale before it lands
	close(release)
	if out := <-done; out != OutcomeMiss {
		t.Fatalf("leader outcome = %v, want miss", out)
	}
	if _, ok := c.Get("k"); ok {
		t.Fatal("stale-epoch result was stored")
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d, want 0", c.Len())
	}
}

func TestShardCountScales(t *testing.T) {
	for _, tc := range []struct{ capacity, want int }{
		{1, 1}, {64, 1}, {255, 1}, {256, 2}, {1024, 8}, {4096, 16}, {1 << 20, 16},
	} {
		if got := shardCount(tc.capacity); got != tc.want {
			t.Errorf("shardCount(%d) = %d, want %d", tc.capacity, got, tc.want)
		}
	}
}

func TestConcurrentMixedKeys(t *testing.T) {
	c := New[int](512)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", i%32)
				v, _, err := c.Do(context.Background(), key, func() (int, error) { return i % 32, nil })
				if err != nil {
					t.Errorf("Do: %v", err)
					return
				}
				if v != i%32 {
					t.Errorf("Do(%s) = %d, want %d", key, v, i%32)
					return
				}
				if w == 0 && i%50 == 0 {
					c.BumpEpoch()
				}
			}
		}(w)
	}
	wg.Wait()
}
