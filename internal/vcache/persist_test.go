package vcache

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func openCollect(t *testing.T, dir, genKey string, epoch uint64) (*PersistLog, map[string][]byte, int, int) {
	t.Helper()
	got := map[string][]byte{}
	p, restored, skipped, err := OpenPersist(dir, genKey, epoch, func(k string, v []byte) {
		got[k] = append([]byte(nil), v...)
	})
	if err != nil {
		t.Fatal(err)
	}
	return p, got, restored, skipped
}

func TestPersistRoundTrip(t *testing.T) {
	dir := t.TempDir()
	p, _, restored, _ := openCollect(t, dir, "model:abc", 0)
	if restored != 0 {
		t.Fatalf("fresh log restored %d entries", restored)
	}
	if err := p.AppendCurrent("k1", []byte("entry-one"), 0); err != nil {
		t.Fatal(err)
	}
	if err := p.AppendCurrent("k2", []byte{}, 0); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	_, got, restored, skipped := openCollect(t, dir, "model:abc", 0)
	if restored != 2 || skipped != 0 {
		t.Fatalf("restored %d skipped %d, want 2/0", restored, skipped)
	}
	if string(got["k1"]) != "entry-one" {
		t.Fatalf("k1 = %q", got["k1"])
	}
	if v, ok := got["k2"]; !ok || len(v) != 0 {
		t.Fatalf("k2 = %q ok=%v", v, ok)
	}
}

func TestPersistGenKeyMismatchDiscards(t *testing.T) {
	dir := t.TempDir()
	p, _, _, _ := openCollect(t, dir, "model:old", 0)
	if err := p.AppendCurrent("k", []byte("stale"), 0); err != nil {
		t.Fatal(err)
	}
	p.Close()

	_, got, restored, _ := openCollect(t, dir, "model:new", 0)
	if restored != 0 || len(got) != 0 {
		t.Fatalf("stale-model snapshot replayed: restored=%d got=%v", restored, got)
	}

	// The mismatch rewrote the log under the new key: nothing old survives
	// even when reopened under the original key.
	_, got, restored, _ = openCollect(t, dir, "model:old", 0)
	if restored != 0 || len(got) != 0 {
		t.Fatal("discarded snapshot resurrected after re-keying")
	}
}

func TestPersistEpochGate(t *testing.T) {
	dir := t.TempDir()
	p, _, _, _ := openCollect(t, dir, "model:abc", 5)
	if err := p.AppendCurrent("stale", []byte("old-epoch"), 4); err != nil {
		t.Fatal(err)
	}
	if err := p.AppendCurrent("fresh", []byte("cur-epoch"), 5); err != nil {
		t.Fatal(err)
	}
	appends := p.Counters().Appends
	if appends != 1 {
		t.Fatalf("appends = %d, want 1 (stale-epoch append must be dropped)", appends)
	}
	p.Close()

	_, got, _, _ := openCollect(t, dir, "model:abc", 5)
	if _, ok := got["stale"]; ok {
		t.Fatal("stale-epoch entry reached the log")
	}
	if string(got["fresh"]) != "cur-epoch" {
		t.Fatalf("fresh entry missing: %v", got)
	}
}

func TestPersistResetDropsEntries(t *testing.T) {
	dir := t.TempDir()
	p, _, _, _ := openCollect(t, dir, "model:v1", 0)
	if err := p.AppendCurrent("k", []byte("v1-entry"), 0); err != nil {
		t.Fatal(err)
	}
	if err := p.Reset("model:v2", 1); err != nil {
		t.Fatal(err)
	}
	// Post-reset appends carry the new epoch and land in the new log.
	if err := p.AppendCurrent("k2", []byte("v2-entry"), 1); err != nil {
		t.Fatal(err)
	}
	p.Close()

	_, got, restored, _ := openCollect(t, dir, "model:v2", 0)
	if restored != 1 || string(got["k2"]) != "v2-entry" {
		t.Fatalf("post-reset replay: restored=%d got=%v", restored, got)
	}
	if _, ok := got["k"]; ok {
		t.Fatal("pre-reset entry survived the reset")
	}
}

func TestPersistTornTailSkippedAndTruncated(t *testing.T) {
	dir := t.TempDir()
	p, _, _, _ := openCollect(t, dir, "model:abc", 0)
	if err := p.AppendCurrent("good", []byte("intact"), 0); err != nil {
		t.Fatal(err)
	}
	p.Close()

	// Tear the log mid-record, as a crash during append would.
	path := filepath.Join(dir, persistFile)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{9, 0, 0, 0, 'p', 'a', 'r'}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	p2, got, restored, skipped := openCollect(t, dir, "model:abc", 0)
	if restored != 1 || skipped != 1 {
		t.Fatalf("restored=%d skipped=%d, want 1/1", restored, skipped)
	}
	if string(got["good"]) != "intact" {
		t.Fatalf("good prefix lost: %v", got)
	}
	// The torn tail was truncated away: appending then reopening must
	// yield both records cleanly.
	if err := p2.AppendCurrent("after", []byte("tear"), 0); err != nil {
		t.Fatal(err)
	}
	p2.Close()
	_, got, restored, skipped = openCollect(t, dir, "model:abc", 0)
	if restored != 2 || skipped != 0 || string(got["after"]) != "tear" {
		t.Fatalf("post-tear append: restored=%d skipped=%d got=%v", restored, skipped, got)
	}
}

func TestPersistCompactionBoundsLog(t *testing.T) {
	dir := t.TempDir()
	p, _, _, _ := openCollect(t, dir, "model:abc", 0)

	// live mimics the in-memory cache: the last value stored per key.
	live := map[string][]byte{}
	p.EnableCompaction(func(emit func(string, []byte)) {
		for k, v := range live {
			emit(k, v)
		}
	})

	// Re-store a 4-key working set far past the compaction floor — the
	// shape of a long-lived generation re-computing LRU-evicted keys.
	// Uncompacted this writes ~6.4 MiB; the bound keeps the file near the
	// 1 MiB floor.
	val := bytes.Repeat([]byte("x"), 64<<10)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("k%d", i%4)
		live[key] = val
		if err := p.AppendCurrent(key, val, 0); err != nil {
			t.Fatal(err)
		}
	}
	c := p.Counters()
	if c.Compactions == 0 {
		t.Fatal("log grew past the bound without compacting")
	}
	if c.CompactErrors != 0 {
		t.Fatalf("%d compactions failed", c.CompactErrors)
	}
	st, err := os.Stat(filepath.Join(dir, persistFile))
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() > 2<<20 {
		t.Fatalf("log size %d not bounded by compaction", st.Size())
	}
	p.Close()

	// The compacted log still replays to exactly the live working set.
	_, got, _, skipped := openCollect(t, dir, "model:abc", 0)
	if skipped != 0 {
		t.Fatalf("compacted log has %d corrupt records", skipped)
	}
	if len(got) != len(live) {
		t.Fatalf("replayed %d distinct keys, want %d", len(got), len(live))
	}
	for k, v := range live {
		if !bytes.Equal(got[k], v) {
			t.Fatalf("key %s replayed wrong after compaction", k)
		}
	}
}

func TestPersistCompactionSurvivesAppendsAfter(t *testing.T) {
	dir := t.TempDir()
	p, _, _, _ := openCollect(t, dir, "model:abc", 0)
	p.EnableCompaction(func(emit func(string, []byte)) {
		emit("live", []byte("kept"))
	})
	// Push past the floor to force one compaction, then append more: the
	// swapped descriptor must land post-compaction records on a clean
	// record boundary.
	val := bytes.Repeat([]byte("y"), 256<<10)
	for i := 0; i < 8; i++ {
		if err := p.AppendCurrent("churn", val, 0); err != nil {
			t.Fatal(err)
		}
	}
	if p.Counters().Compactions == 0 {
		t.Fatal("expected a compaction")
	}
	if err := p.AppendCurrent("after", []byte("tail"), 0); err != nil {
		t.Fatal(err)
	}
	p.Close()

	_, got, _, skipped := openCollect(t, dir, "model:abc", 0)
	if skipped != 0 {
		t.Fatalf("%d corrupt records after compaction + append", skipped)
	}
	if string(got["live"]) != "kept" {
		t.Fatal("compacted snapshot entry lost")
	}
	if string(got["after"]) != "tail" {
		t.Fatal("post-compaction append lost")
	}
}

func TestPersistCorruptHeaderStartsFresh(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, persistFile), []byte("garbage, no newline even"), 0o644); err != nil {
		t.Fatal(err)
	}
	p, got, restored, _ := openCollect(t, dir, "model:abc", 0)
	if restored != 0 || len(got) != 0 {
		t.Fatalf("garbage log replayed: %v", got)
	}
	if err := p.AppendCurrent("k", []byte("v"), 0); err != nil {
		t.Fatal(err)
	}
	p.Close()
	_, got, restored, _ = openCollect(t, dir, "model:abc", 0)
	if restored != 1 || string(got["k"]) != "v" {
		t.Fatalf("fresh log after garbage unusable: %v", got)
	}
}
