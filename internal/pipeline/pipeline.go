package pipeline

import (
	"context"
	"errors"
	"fmt"
	"time"

	"apichecker/internal/apk"
	"apichecker/internal/behavior"
	"apichecker/internal/emulator"
	"apichecker/internal/manifest"
	"apichecker/internal/ml"
	"apichecker/internal/monkey"
	"apichecker/internal/obs"
	"apichecker/internal/vcache"
)

// VetContext carries one submission through the stage chain: the bounding
// context, the submission and its identity, the per-stage products, and
// the span record the engine appends to as stages complete.
type VetContext struct {
	// Ctx bounds the vet: a deadline or cancellation aborts the run at
	// the next stage or event-batch boundary.
	Ctx context.Context

	// Sub is the submission being vetted. ContentDigest memoizes on it.
	Sub *Submission

	// Seq is the vet sequence number (assigned by the Decode stage if the
	// submission did not pin one); Digest is the content digest resolved
	// at admission.
	Seq    int64
	Digest string

	// Gen is the model generation this vet is pinned to. The Decode stage
	// sets it exactly once — inside the cache-lookup singleflight bracket —
	// and every later stage reads only through it, so a concurrent hot-swap
	// can never mix feature extraction and scoring across generations.
	Gen *ModelGen

	// Monkey is the per-submission exerciser configuration, derived from
	// the content digest by the Decode stage.
	Monkey monkey.Config

	// Stage products, populated left to right.
	Program  *behavior.Program
	Parsed   *apk.APK
	Manifest *manifest.Manifest
	MD5      string
	Run      *emulator.Result
	Vector   ml.Vector
	Verdict  *Verdict

	// Outcome reports how the verdict was served (miss/hit/coalesced/
	// bypass); the zero value is OutcomeBypass.
	Outcome vcache.Outcome

	// Spans is the per-submission span log: one obs event per completed
	// stage, in execution order.
	Spans []obs.Event

	// span scratch: the executing stage deposits its virtual duration and
	// outcome note here; the engine consumes them when recording the span.
	spanDur  time.Duration
	spanNote string
}

// Span lets the executing stage report its virtual-clock duration and an
// optional outcome note for the span the engine is about to record.
func (vc *VetContext) Span(dur time.Duration, note string) {
	vc.spanDur, vc.spanNote = dur, note
}

// PackageLabel names the submission for spans and error messages, best
// effort: the parsed/decoded identity once Decode has run, the
// submission's own naming before that.
func (vc *VetContext) PackageLabel() string {
	if vc.Program != nil {
		return vc.Program.PackageName
	}
	if vc.Parsed != nil {
		return vc.Parsed.PackageName()
	}
	return vc.Sub.PackageName()
}

// Stage is one named step of the vet pipeline. Concrete stages implement
// exactly one of Runner (a plain step) or Wrapper (a step that brackets
// the remainder of the chain, e.g. the cache-lookup singleflight).
type Stage interface {
	Name() string
}

// Runner is a plain stage: run, then continue down the chain.
type Runner interface {
	Stage
	Run(*VetContext) error
}

// Wrapper is a bracketing stage: it receives the rest of the chain as
// next and decides whether to run it (cache miss) or answer without it
// (cache hit).
type Wrapper interface {
	Stage
	Wrap(vc *VetContext, next func() error) error
}

// stageErr attributes a failure to the pipeline stage it died in. The
// innermost stage wins: a deadline that expires during emulation is
// reported as stage "emulate" even though the cache-lookup wrapper was
// bracketing it.
type stageErr struct {
	stage string
	err   error
}

func (e *stageErr) Error() string { return "stage " + e.stage + ": " + e.err.Error() }
func (e *stageErr) Unwrap() error { return e.err }

// FailedStage reports which pipeline stage an error died in, if the
// error came out of a pipeline run.
func FailedStage(err error) (string, bool) {
	var se *stageErr
	if errors.As(err, &se) {
		return se.stage, true
	}
	return "", false
}

// attribute wraps a stage failure with its stage name and normalizes
// deadline expiry (wherever the emulator noticed it) to
// ErrDeadlineExceeded. Errors already attributed deeper in the chain
// pass through untouched.
func attribute(stage string, err error) error {
	if err == nil {
		return nil
	}
	if _, ok := FailedStage(err); ok {
		return err
	}
	if errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, ErrDeadlineExceeded) {
		err = fmt.Errorf("%w (%v)", ErrDeadlineExceeded, err)
	}
	return &stageErr{stage: stage, err: err}
}

// Pipeline is an assembled stage chain over one obs collector. Safe for
// concurrent use: stages hold no per-submission state (everything rides
// on the VetContext).
type Pipeline struct {
	stages []Stage
	col    *obs.Collector
}

// New assembles a pipeline. Every stage must implement Runner or Wrapper.
func New(col *obs.Collector, stages ...Stage) *Pipeline {
	for _, st := range stages {
		switch st.(type) {
		case Runner, Wrapper:
		default:
			panic(fmt.Sprintf("pipeline: stage %s implements neither Runner nor Wrapper", st.Name()))
		}
	}
	return &Pipeline{stages: stages, col: col}
}

// Stages returns the chain's stage names in order.
func (p *Pipeline) Stages() []string {
	out := make([]string, len(p.stages))
	for i, st := range p.stages {
		out[i] = st.Name()
	}
	return out
}

// Run drives one submission through the chain. The returned error is
// attributed to the stage it died in (see FailedStage) and, for deadline
// expiries, wraps ErrDeadlineExceeded.
func (p *Pipeline) Run(vc *VetContext) error {
	if vc.Ctx == nil {
		vc.Ctx = context.Background()
	}
	return p.run(vc, 0)
}

// run executes stages[i:]; wrappers receive the tail as their next.
func (p *Pipeline) run(vc *VetContext, i int) error {
	if i >= len(p.stages) {
		return nil
	}
	st := p.stages[i]
	if w, ok := st.(Wrapper); ok {
		return p.record(vc, st, func(vc *VetContext) error {
			return w.Wrap(vc, func() error { return p.run(vc, i+1) })
		})
	}
	if err := p.record(vc, st, st.(Runner).Run); err != nil {
		return err
	}
	return p.run(vc, i+1)
}

// record runs one stage body, attributes its failure, and records the
// span (to the collector and the context's span log).
func (p *Pipeline) record(vc *VetContext, st Stage, body func(*VetContext) error) error {
	vc.spanDur, vc.spanNote = 0, ""
	err := attribute(st.Name(), body(vc))
	ev := obs.Event{
		Kind:    obs.KindSpan,
		Name:    st.Name(),
		Trace:   vc.Seq,
		Package: vc.PackageLabel(),
		Dur:     vc.spanDur,
		Note:    vc.spanNote,
		Err:     err,
	}
	// A wrapper's span must not count the inner stages' failure twice:
	// only the stage the error is attributed to books it.
	if stage, ok := FailedStage(err); ok && stage != st.Name() {
		ev.Err = nil
	}
	if p.col != nil {
		p.col.Emit(ev)
	}
	vc.Spans = append(vc.Spans, ev)
	return err
}
