package pipeline

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"

	"apichecker/internal/ml"
)

// Compact verdict-cache entries.
//
// The cache holds up to millions of memoized verdicts, so each entry is a
// single flat []byte instead of a CachedVerdict pointer graph (three
// string headers, a slice header, and the GC scanning all of them per
// cycle). The layout is a fixed field sequence, little-endian, strings and
// the vector length-prefixed:
//
//	[0]      version byte (entryVersion)
//	package  uint32 len + bytes
//	version  uint64 (two's complement of the int)
//	md5      uint32 len + bytes
//	gen      uint64
//	flags    byte (bit0 Malicious, bit1 FellBack, bit2 Tier == 1)
//	score    uint64 (IEEE 754 bits)
//	scan     uint64 (nanoseconds)
//	overall  uint64 (nanoseconds)
//	crashes  uint64
//	engine   uint32 len + bytes
//	invoked  uint64
//	vector   uint32 word count + 8 bytes per word
//
// Encoding copies out of the VetContext, decoding copies into caller-owned
// storage, so an entry never aliases pooled or per-submission memory: the
// []byte itself is immutable from the moment it is stored, which is also
// what lets the persistent tier write it to disk verbatim.
const entryVersion = 1

// ErrBadEntry marks a cache entry (typically read back from the persistent
// tier) that does not decode: wrong version, truncated, or inconsistent
// lengths. DecodeEntry returns it instead of ever panicking on corrupt
// bytes.
var ErrBadEntry = errors.New("pipeline: corrupt verdict-cache entry")

const (
	entryFlagMalicious = 1 << 0
	entryFlagFellBack  = 1 << 1
	// entryFlagTier1 marks a verdict answered by the static triage tier.
	// Entries written before the flag existed never set it and decode with
	// Tier = 2 — exactly right, since everything they memoized was fully
	// emulated — so the layout version does not bump.
	entryFlagTier1 = 1 << 2
)

// EncodeEntry packs one verdict and its feature vector into a fresh flat
// buffer, sized exactly in one allocation.
func EncodeEntry(v *Verdict, x ml.Vector) []byte {
	n := 1 + // version
		4 + len(v.Package) +
		8 + // VersionCode
		4 + len(v.MD5) +
		8 + // Generation
		1 + // flags
		8 + 8 + 8 + // Score, ScanTime, OverallTime
		8 + // Crashes
		4 + len(v.Engine) +
		8 + // InvokedKeyAPIs
		4 + 8*len(x)
	dst := make([]byte, 0, n)
	dst = append(dst, entryVersion)
	dst = appendLenPrefixed(dst, v.Package)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(int64(v.VersionCode)))
	dst = appendLenPrefixed(dst, v.MD5)
	dst = binary.LittleEndian.AppendUint64(dst, v.Generation)
	var flags byte
	if v.Malicious {
		flags |= entryFlagMalicious
	}
	if v.FellBack {
		flags |= entryFlagFellBack
	}
	if v.Tier == 1 {
		flags |= entryFlagTier1
	}
	dst = append(dst, flags)
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.Score))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(v.ScanTime.Nanoseconds()))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(v.OverallTime.Nanoseconds()))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(int64(v.Crashes)))
	dst = appendLenPrefixed(dst, v.Engine)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(int64(v.InvokedKeyAPIs)))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(x)))
	for _, w := range x {
		dst = binary.LittleEndian.AppendUint64(dst, w)
	}
	return dst
}

func appendLenPrefixed(dst []byte, s string) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(s)))
	return append(dst, s...)
}

// entryReader is a bounds-checked cursor over an encoded entry. Every read
// checks remaining length and latches failure instead of panicking, so a
// corrupt persisted record degrades to ErrBadEntry.
type entryReader struct {
	b   []byte
	off int
	bad bool
}

func (r *entryReader) take(n int) []byte {
	if r.bad || n < 0 || len(r.b)-r.off < n {
		r.bad = true
		return nil
	}
	b := r.b[r.off : r.off+n]
	r.off += n
	return b
}

func (r *entryReader) u32() uint32 {
	b := r.take(4)
	if r.bad {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *entryReader) u64() uint64 {
	b := r.take(8)
	if r.bad {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *entryReader) str() string {
	n := r.u32()
	b := r.take(int(n))
	if r.bad {
		return ""
	}
	return string(b)
}

// DecodeEntry unpacks an encoded entry into v (fully overwritten) and a
// vector that reuses vec's storage when it is wide enough — the
// caller-owned-storage discipline: nothing in the result aliases e. It
// never panics on corrupt input; any structural problem returns
// ErrBadEntry.
func DecodeEntry(e []byte, v *Verdict, vec ml.Vector) (ml.Vector, error) {
	r := entryReader{b: e}
	ver := r.take(1)
	if r.bad || ver[0] != entryVersion {
		return nil, fmt.Errorf("%w: bad version byte", ErrBadEntry)
	}
	*v = Verdict{}
	v.Package = r.str()
	v.VersionCode = int(int64(r.u64()))
	v.MD5 = r.str()
	v.Generation = r.u64()
	flags := r.take(1)
	if !r.bad {
		// Strict: unknown flag bits mark a corrupt (or future-version)
		// entry, and keep decode→encode canonical for everything accepted.
		if flags[0]&^(entryFlagMalicious|entryFlagFellBack|entryFlagTier1) != 0 {
			return nil, fmt.Errorf("%w: unknown flag bits 0x%02x", ErrBadEntry, flags[0])
		}
		v.Malicious = flags[0]&entryFlagMalicious != 0
		v.FellBack = flags[0]&entryFlagFellBack != 0
		v.Tier = 2
		if flags[0]&entryFlagTier1 != 0 {
			v.Tier = 1
		}
	}
	v.Score = math.Float64frombits(r.u64())
	v.ScanTime = time.Duration(int64(r.u64()))
	v.OverallTime = time.Duration(int64(r.u64()))
	v.Crashes = int(int64(r.u64()))
	v.Engine = r.str()
	v.InvokedKeyAPIs = int(int64(r.u64()))
	words := r.u32()
	if r.bad || int64(words) > int64(len(e))/8+1 {
		*v = Verdict{}
		return nil, fmt.Errorf("%w: truncated header or absurd vector length", ErrBadEntry)
	}
	if cap(vec) >= int(words) {
		vec = vec[:words]
	} else {
		vec = make(ml.Vector, words)
	}
	for i := range vec {
		vec[i] = r.u64()
	}
	if r.bad || r.off != len(e) {
		*v = Verdict{}
		return nil, fmt.Errorf("%w: length mismatch (decoded %d of %d bytes)", ErrBadEntry, r.off, len(e))
	}
	return vec, nil
}

// DecodeCachedVerdict is DecodeEntry into a fresh CachedVerdict — the
// convenience used by tests and offline tooling; the serving hit path
// decodes into pooled storage instead.
func DecodeCachedVerdict(e []byte) (CachedVerdict, error) {
	var cv CachedVerdict
	vec, err := DecodeEntry(e, &cv.Verdict, nil)
	if err != nil {
		return CachedVerdict{}, err
	}
	cv.Vector = vec
	return cv, nil
}
