// Package pipeline is the canonical vet path as an explicit chain of
// typed stages — the structure the paper describes (install/emulate,
// hook-log collection, A+P+I feature extraction, random-forest inference)
// made first-class:
//
//	Admit → CacheLookup → Triage → Decode/StaticParse → Emulate
//	      → ExtractFeatures → Infer → CacheStore
//
// Each stage implements a common interface over a VetContext that carries
// the submission, its content digest, the bounding context, and a
// per-stage span record; the engine records one obs span per stage with
// its virtual-clock duration, and attributes failures (in particular
// deadline expiries) to the stage they died in.
//
// The chain preserves the bit-identical-verdict guarantees of the
// monolithic path it replaced: verdicts depend on submission content
// alone (Monkey seeds derive from the content digest), the cache stages
// are semantically invisible, and stage boundaries add no randomness —
// proven by the legacy-equivalence and determinism tests in
// internal/core.
package pipeline

import (
	"context"
	"errors"
	"fmt"
	"time"

	"apichecker/internal/apk"
	"apichecker/internal/behavior"
	"apichecker/internal/ml"
)

// Typed failure modes of the vet path. internal/core aliases these (and
// the public facade re-exports them), so downstream callers branch with
// errors.Is instead of matching error strings.
var (
	// ErrBadSubmission marks a Submission that does not carry exactly one
	// payload (raw bytes, parsed APK, or behaviour program).
	ErrBadSubmission = errors.New("submission must carry exactly one of raw bytes, parsed APK, or program")

	// ErrDeadlineExceeded marks a vet abandoned because its per-submission
	// deadline expired. It wraps context.DeadlineExceeded, so both
	// errors.Is(err, ErrDeadlineExceeded) and
	// errors.Is(err, context.DeadlineExceeded) hold on a timed-out vet.
	ErrDeadlineExceeded = fmt.Errorf("vet deadline exceeded: %w", context.DeadlineExceeded)
)

// Submission is one vetting request for the canonical Vet entrypoint. It
// carries exactly one payload:
//
//   - Raw: a serialized APK archive, vetted through the full adb device
//     sequence (install → Monkey → logs → uninstall → clear, §4.2);
//   - Parsed: an already-parsed APK (skips re-parsing the archive);
//   - Program: behaviour semantics directly (the market-simulation path,
//     where building megabytes of zip per app would only slow things down).
//
// Seq optionally pins the vet sequence number (reserved up front via
// ReserveVetSeqs); 0 assigns the next one. Sequence numbers identify
// submissions in service logs and metrics; verdicts do not depend on them
// — the per-submission Monkey seed derives from the content digest, so a
// given archive exercises identically however often, in whatever order,
// and on whatever lane it is submitted. That content-determinism is what
// makes parallel service vetting bit-identical to a serial loop, and
// cached verdicts bit-identical to emulated ones.
//
// Digest optionally pins the content digest (hex sha256 of the canonical
// payload bytes); leave it empty and ContentDigest derives it.
type Submission struct {
	Raw     []byte
	Parsed  *apk.APK
	Program *behavior.Program
	Seq     int64
	Digest  string
}

// Validate checks the exactly-one-payload invariant; violations wrap
// ErrBadSubmission.
func (s Submission) Validate() error {
	n := 0
	if s.Raw != nil {
		n++
	}
	if s.Parsed != nil {
		n++
	}
	if s.Program != nil {
		n++
	}
	if n != 1 {
		return fmt.Errorf("core: %w (got %d)", ErrBadSubmission, n)
	}
	return nil
}

// ContentDigest returns the submission's content digest — the verdict-
// cache key and Monkey-seed source: hex sha256 of the raw archive bytes
// (Raw), the digest computed at parse time (Parsed), or the canonical
// encoding of the behaviour program (Program). The result is memoized in
// Digest. Empty when the payload cannot be digested; such submissions
// bypass the verdict cache.
func (s *Submission) ContentDigest() string {
	if s.Digest != "" {
		return s.Digest
	}
	switch {
	case s.Raw != nil:
		s.Digest = apk.Digest(s.Raw)
	case s.Parsed != nil:
		s.Digest = s.Parsed.SHA256
	case s.Program != nil:
		// Program.ContentDigest memoizes on the shared Program, so a
		// duplicate-heavy stream pays the gob encode once per unique app
		// rather than once per submission.
		if d, err := s.Program.ContentDigest(); err == nil {
			s.Digest = d
		}
	}
	return s.Digest
}

// PackageName names the submission for logs and error messages, best
// effort (a raw archive is unnamed until parsed).
func (s Submission) PackageName() string {
	switch {
	case s.Parsed != nil:
		return s.Parsed.PackageName()
	case s.Program != nil:
		return s.Program.PackageName
	default:
		return "(raw archive)"
	}
}

// Verdict is the outcome of vetting one submission.
type Verdict struct {
	Package     string
	VersionCode int
	MD5         string

	// Generation identifies the model generation that produced this
	// verdict (1 for a freshly assembled checker, incremented by every
	// hot-swap). The whole vet — hook registry, emulation, feature
	// extraction, and forest inference — ran on exactly this generation;
	// the pipeline pins it once per submission and never mixes parts
	// across a concurrent swap.
	Generation uint64

	Malicious bool
	// Score is the model margin (> 0 ⇒ malicious); magnitude is
	// confidence.
	Score float64

	// Tier records which tier of the triage pipeline answered: 1 for the
	// static manifest-only pre-screen (confident score outside the
	// uncertainty band, no emulation paid), 2 for the full
	// emulate→extract→infer path. Always 2 on a checker without a triage
	// model or with the trivial [0,1] band.
	Tier int

	// ScanTime is the virtual dynamic-analysis time; OverallTime adds
	// the fixed install/queue overhead (§5.2 reports 1.92 min overall,
	// 1.4 min analysis).
	ScanTime    time.Duration
	OverallTime time.Duration

	// FellBack reports the app was incompatible with the lightweight
	// engine and re-ran on the stock engine.
	FellBack bool

	// Crashes counts transient emulator crashes detected (and restarted
	// through) during this vet; Engine names the profile that produced
	// the final log. Together with FellBack these surface the §5.1
	// reliability accounting per submission.
	Crashes int
	Engine  string

	// InvokedKeyAPIs counts distinct key APIs observed; "barely uses
	// key APIs" (§5.2's false-negative analysis) shows up here.
	InvokedKeyAPIs int
}

// FixedOverhead is the non-analysis cost per submission: download,
// install, emulator recycle, result logging (§5.2: 1.92 min overall vs
// 1.4 min analysis at production load).
const FixedOverhead = 31 * time.Second

// CachedVerdict is one memoized vet: the full verdict plus the feature
// vector it was scored on, so a cached answer carries everything an
// emulated one does. The Verdict lives here by value — the driver hands
// each caller its own copy.
type CachedVerdict struct {
	Verdict Verdict
	Vector  ml.Vector
}

// DigestSeed folds a hex content digest into 64 bits (FNV-1a) — the
// content-derived Monkey seed source.
func DigestSeed(dig string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(dig); i++ {
		h = (h ^ uint64(dig[i])) * 1099511628211
	}
	return h
}
