package pipeline

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"apichecker/internal/obs"
)

// fake is a configurable Runner stage.
type fake struct {
	name string
	run  func(*VetContext) error
}

func (f fake) Name() string             { return f.name }
func (f fake) Run(vc *VetContext) error { return f.run(vc) }

// fakeWrap is a configurable Wrapper stage.
type fakeWrap struct {
	name string
	wrap func(*VetContext, func() error) error
}

func (f fakeWrap) Name() string                                 { return f.name }
func (f fakeWrap) Wrap(vc *VetContext, next func() error) error { return f.wrap(vc, next) }

// bare implements Stage but neither Runner nor Wrapper.
type bare struct{}

func (bare) Name() string { return "bare" }

func TestRunOrderAndSpans(t *testing.T) {
	col := obs.NewCollector()
	var order []string
	step := func(name string, d time.Duration) Stage {
		return fake{name: name, run: func(vc *VetContext) error {
			order = append(order, name)
			vc.Span(d, "note-"+name)
			return nil
		}}
	}
	p := New(col, step("a", time.Second), step("b", 2*time.Second), step("c", 0))
	vc := &VetContext{Sub: &Submission{}}
	if err := p.Run(vc); err != nil {
		t.Fatal(err)
	}
	if got, want := fmt.Sprint(order), "[a b c]"; got != want {
		t.Errorf("execution order = %v, want %v", got, want)
	}
	if len(vc.Spans) != 3 {
		t.Fatalf("span log has %d entries, want 3", len(vc.Spans))
	}
	for i, want := range []struct {
		name string
		dur  time.Duration
	}{{"a", time.Second}, {"b", 2 * time.Second}, {"c", 0}} {
		sp := vc.Spans[i]
		if sp.Name != want.name || sp.Dur != want.dur || sp.Note != "note-"+want.name || sp.Err != nil {
			t.Errorf("span[%d] = %+v, want name=%s dur=%v", i, sp, want.name, want.dur)
		}
	}
	stats := col.StageStats()
	if len(stats) != 3 || stats[0].Stage != "a" || stats[1].Stage != "b" || stats[2].Stage != "c" {
		t.Fatalf("StageStats order = %+v", stats)
	}
	if stats[1].Count != 1 || stats[1].Dur.P50 != 2.0 {
		t.Errorf("stage b stats = %+v, want count 1, p50 2s", stats[1])
	}
}

func TestWrapperBracketsAndShortCircuits(t *testing.T) {
	ran := false
	inner := fake{name: "inner", run: func(vc *VetContext) error { ran = true; return nil }}

	// A wrapper that answers without running the tail (the cache-hit
	// shape) must suppress the bracketed stages entirely.
	hit := fakeWrap{name: "w", wrap: func(vc *VetContext, next func() error) error { return nil }}
	if err := New(nil, hit, inner).Run(&VetContext{Sub: &Submission{}}); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Error("short-circuiting wrapper still ran the bracketed stage")
	}

	// One that calls next runs the tail exactly once.
	calls := 0
	pass := fakeWrap{name: "w", wrap: func(vc *VetContext, next func() error) error { calls++; return next() }}
	if err := New(nil, pass, inner).Run(&VetContext{Sub: &Submission{}}); err != nil {
		t.Fatal(err)
	}
	if !ran || calls != 1 {
		t.Errorf("pass-through wrapper: ran=%v calls=%d", ran, calls)
	}
}

func TestErrorAttributionInnermostStageWins(t *testing.T) {
	boom := errors.New("boom")
	col := obs.NewCollector()
	w := fakeWrap{name: "outer", wrap: func(vc *VetContext, next func() error) error { return next() }}
	bad := fake{name: "mid", run: func(vc *VetContext) error { return boom }}
	tail := fake{name: "tail", run: func(vc *VetContext) error {
		t.Error("stage after a failure still ran")
		return nil
	}}

	vc := &VetContext{Sub: &Submission{}}
	err := New(col, w, bad, tail).Run(vc)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	stage, ok := FailedStage(err)
	if !ok || stage != "mid" {
		t.Fatalf("FailedStage = %q/%v, want mid", stage, ok)
	}

	// The failing stage's span carries the error; the bracketing wrapper's
	// span does not book it a second time.
	var midErr, outerErr error
	for _, sp := range vc.Spans {
		switch sp.Name {
		case "mid":
			midErr = sp.Err
		case "outer":
			outerErr = sp.Err
		}
	}
	if midErr == nil {
		t.Error("failing stage's span has no error")
	}
	if outerErr != nil {
		t.Error("wrapper span double-books the inner stage's error")
	}
	for _, st := range col.StageStats() {
		if st.Stage == "mid" && st.Errors != 1 {
			t.Errorf("mid stage errors = %d, want 1", st.Errors)
		}
		if st.Stage == "outer" && st.Errors != 0 {
			t.Errorf("outer stage errors = %d, want 0", st.Errors)
		}
	}
}

func TestDeadlineNormalization(t *testing.T) {
	expired := fake{name: "emulate", run: func(vc *VetContext) error {
		return fmt.Errorf("engine: aborted: %w", context.DeadlineExceeded)
	}}
	err := New(nil, expired).Run(&VetContext{Sub: &Submission{}})
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v does not chain to context.DeadlineExceeded", err)
	}
	if stage, _ := FailedStage(err); stage != "emulate" {
		t.Fatalf("FailedStage = %q, want emulate", stage)
	}

	// context.Canceled passes through un-normalized: it is the caller's
	// own abort, not a deadline.
	canceled := fake{name: "emulate", run: func(vc *VetContext) error { return context.Canceled }}
	err = New(nil, canceled).Run(&VetContext{Sub: &Submission{}})
	if !errors.Is(err, context.Canceled) || errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("canceled err = %v", err)
	}
}

func TestInferHonoursContextFirst(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	<-ctx.Done()
	// Deps.Score is nil: reaching it would panic, proving the context
	// check runs before any classification work.
	s := Infer{D: &Deps{}}
	if err := s.Run(&VetContext{Ctx: ctx, Sub: &Submission{}}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Infer(expired ctx) = %v, want context.DeadlineExceeded", err)
	}
}

func TestNewRejectsBareStage(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New accepted a stage implementing neither Runner nor Wrapper")
		}
	}()
	New(nil, bare{})
}
