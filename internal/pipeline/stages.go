package pipeline

import (
	"crypto/md5"
	"encoding/hex"
	"time"

	"apichecker/internal/adb"
	"apichecker/internal/apk"
	"apichecker/internal/emulator"
	"apichecker/internal/features"
	"apichecker/internal/framework"
	"apichecker/internal/manifest"
	"apichecker/internal/ml"
	"apichecker/internal/monkey"
	"apichecker/internal/obs"
	"apichecker/internal/vcache"
)

// Stage names, in chain order. The -trace stage table and the
// stage-attributed errors use these.
const (
	StageAdmit       = "admit"
	StageCacheLookup = "cache.lookup"
	StageTriage      = "triage"
	StageDecode      = "decode"
	StageEmulate     = "emulate"
	StageExtract     = "extract"
	StageInfer       = "infer"
	StageCacheStore  = "cache.store"
)

// Deterministic virtual-clock costs for the bookkeeping stages. The
// emulate stage reports the run's calibrated VirtualTime; these cover the
// cheap CPU-bound stages so the -trace table shows where the non-analysis
// overhead sits. They feed spans only — Verdict times are computed exactly
// as before (ScanTime = emulation VirtualTime, OverallTime adds
// FixedOverhead).
const (
	// decodeBase/decodePerKiB model unpacking + static parse of a raw
	// archive.
	decodeBase   = 250 * time.Millisecond
	decodePerKiB = time.Millisecond
	// manifestCost models deriving the manifest view of a behaviour
	// program that arrived without one.
	manifestCost = 50 * time.Millisecond
	// extractPerFeature models building one A+P+I vector column.
	extractPerFeature = 2 * time.Microsecond
	// inferPerTree models one tree walk of the forest.
	inferPerTree = 20 * time.Microsecond
	// triageCost models the whole tier-1 pre-screen: manifest-only zip
	// decode, P+I vector fill, and one linear dot product — microseconds
	// against the emulate tail's tens of virtual seconds, which is the
	// entire point of the tier.
	triageCost = 75 * time.Microsecond
)

// ModelGen is one immutable model generation as the stages see it: the
// universe, the extractor built over the selected keys, the emulation
// lanes hooked for those keys, and the forest's scorer. A vet pins
// exactly one ModelGen (in the Decode stage, inside the cache-lookup
// singleflight) and drives every remaining stage through it, so a
// concurrent hot-swap can never mix feature extraction from one
// generation with scoring from another — in-flight vets finish on the
// generation they started with.
type ModelGen struct {
	// ID is the swap counter (1 for the initial generation); Digest is
	// the content digest of the generation's persisted artifact, empty
	// when the generation was never snapshotted.
	ID     uint64
	Digest string

	Universe  *framework.Universe
	Extractor *features.Extractor

	// Farm gates program/parsed emulations behind this generation's
	// emulator lanes; a cancelled VetContext returns its lane to the farm.
	Farm *emulator.Farm

	// RunRaw drives a raw archive through the adb device sequence
	// (install → Monkey → logs → uninstall → clear). The closure owns the
	// device serialization.
	RunRaw func(vc *VetContext) (*adb.VetResult, error)

	// Score classifies one feature vector (the generation's coalescing
	// batch scorer over its forest).
	Score func(ml.Vector) float64

	// Trees sizes the infer span's virtual cost.
	Trees int

	// Triage is the tier-1 manifest-only linear scorer (SigPID-style
	// ranked-permission model); nil disables the tier. TriageExtractor is
	// the P+I-mode extractor its vectors are built with — trained and
	// served on exactly the same manifest-only view.
	Triage          *ml.Linear
	TriageExtractor *features.Extractor

	// TriageLo and TriageHi bound the uncertainty band in probability
	// space: a submission whose triage probability falls strictly outside
	// [TriageLo, TriageHi] short-circuits with a tier-1 verdict; anything
	// in the band pays the full emulate→extract→infer path. The trivial
	// band [0, 1] disables the tier (nothing is ever outside it).
	TriageLo, TriageHi float64

	// Epoch is the verdict-cache epoch this generation serves under;
	// write-through stores are conditional on it so a verdict computed on
	// an old generation can never be stored into a newer epoch.
	Epoch uint64
}

// Deps wires the stages to the checker that assembled them. Gen is a func
// so a hot-swap is picked up by the next submission without rebuilding
// the chain; everything else is generation-independent.
type Deps struct {
	// Gen returns the current model generation. The Decode stage calls it
	// exactly once per submission and pins the result on the VetContext.
	Gen func() *ModelGen

	// Cache is the digest-keyed verdict cache; nil disables memoization.
	// Values are flat EncodeEntry buffers — one GC-opaque allocation per
	// memoized verdict — not CachedVerdict graphs.
	Cache func() *vcache.Cache[[]byte]

	// NextSeq reserves the next vet sequence number.
	NextSeq func() int64

	// Obs books emulator reliability counters (emu.runs, emu.crashes,
	// emu.fallbacks) per emulated completion.
	Obs *obs.Collector

	// Events and Seed shape the per-submission Monkey configuration.
	Events int
	Seed   int64
}

// MonkeyFor derives the Monkey configuration for one submission. The seed
// mixes the deployment seed with the content digest, so a given archive
// is exercised identically however often — and in whatever order — it is
// submitted. That content-determinism is what makes a cached verdict
// bit-identical to the emulation it memoizes, and parallel service lanes
// bit-identical to a serial vet loop. A submission with no digest (an
// undigestable payload) falls back to the sequence-derived seed.
func (d *Deps) MonkeyFor(dig string, seq int64) monkey.Config {
	seed := d.Seed ^ seq<<7
	if dig != "" {
		seed = d.Seed ^ int64(DigestSeed(dig))
	}
	mk := monkey.ProductionConfig(seed)
	mk.Events = d.Events
	return mk
}

// Admit validates the exactly-one-payload invariant and resolves the
// content digest. It consumes no vet sequence number, so an invalid
// submission leaves no trace in the accounting.
type Admit struct{ D *Deps }

func (Admit) Name() string { return StageAdmit }

func (s Admit) Run(vc *VetContext) error {
	if err := vc.Sub.Validate(); err != nil {
		return err
	}
	vc.Digest = vc.Sub.ContentDigest()
	vc.Seq = vc.Sub.Seq
	return nil
}

// CacheLookup brackets the expensive stages with the digest-keyed verdict
// cache: a hit answers without running them, a concurrent identical
// submission coalesces onto the in-flight leader (singleflight), a miss
// runs the rest of the chain and stores its result. With the cache
// disabled or the payload undigestable the chain runs uncached
// (OutcomeBypass).
type CacheLookup struct{ D *Deps }

func (CacheLookup) Name() string { return StageCacheLookup }

func (s CacheLookup) Wrap(vc *VetContext, next func() error) error {
	cache := s.D.Cache()
	if cache == nil || vc.Digest == "" {
		vc.Outcome = vcache.OutcomeBypass
		if err := next(); err != nil {
			vc.Span(0, vc.Outcome.String())
			return err
		}
		vc.Span(0, vc.Outcome.String())
		return nil
	}
	e, out, err := cache.Do(vc.Ctx, vc.Digest, func() ([]byte, error) {
		if err := next(); err != nil {
			return nil, err
		}
		// The stored entry is a flat copy of the leader's result, so the
		// cache never aliases the (pooled) VetContext.
		return EncodeEntry(vc.Verdict, vc.Vector), nil
	})
	vc.Outcome = out
	vc.Span(0, out.String())
	if err != nil {
		return err
	}
	if out == vcache.OutcomeMiss {
		// The leader already holds its own freshly allocated Verdict and
		// Vector from the inner chain; decoding its own entry back would
		// only add allocations.
		return nil
	}
	// Hit or coalesced: decode into caller-owned storage. The Verdict is a
	// fresh allocation per caller (no two submissions ever share a result
	// pointer); the vector reuses this context's scratch.
	v := new(Verdict)
	vec, derr := DecodeEntry(e, v, vc.Vector[:0])
	if derr != nil {
		return derr
	}
	vc.Verdict = v
	vc.Vector = vec
	return nil
}

// Triage is the tier-1 static pre-screen: a manifest-only permissions +
// intent-filter vector scored by a lightweight linear model, with no dex
// decode, no behaviour materialization, and no emulation. A probability
// outside the generation's uncertainty band answers immediately with a
// tier-1 verdict (Engine "triage.static", microsecond virtual cost); a
// probability in the band — or a disabled tier — falls through to the
// full chain unchanged, so tier-2 verdicts stay bit-identical to a
// checker without the stage.
//
// The stage sits inside the cache-lookup bracket, so tier-1 verdicts are
// memoized, coalesced, persisted, and epoch-invalidated exactly like
// tier-2 ones. It also takes over the generation pin from Decode: the pin
// still happens exactly once per leader, inside the singleflight, before
// any generation state is consulted.
type Triage struct{ D *Deps }

func (Triage) Name() string { return StageTriage }

func (s Triage) Wrap(vc *VetContext, next func() error) error {
	gen := s.D.Gen()
	vc.Gen = gen
	if gen.Triage == nil || (gen.TriageLo <= 0 && gen.TriageHi >= 1) {
		err := next()
		vc.Span(0, "off")
		s.count("triage.pass")
		return err
	}
	man, err := s.manifestOnly(vc)
	if err != nil {
		return err
	}
	x, err := gen.TriageExtractor.ManifestVectorInto(man, vc.Vector)
	if err != nil {
		return err
	}
	vc.Vector = x
	p := gen.Triage.Prob(x)
	if p >= gen.TriageLo && p <= gen.TriageHi {
		// Uncertain: pay the full pipeline. The vector scratch is handed
		// back for ExtractFeatures to refill with the A+P+I vector.
		err := next()
		vc.Span(triageCost, "band")
		s.count("triage.band")
		return err
	}
	// Confident: short-circuit with a tier-1 verdict. The submission was
	// genuinely vetted (unlike a cache hit), so it consumes a sequence
	// number exactly as the decode leader would have.
	if vc.Seq == 0 {
		vc.Seq = s.D.NextSeq()
	}
	var pkg string
	var version int
	var sum string
	switch {
	case vc.Sub.Raw != nil:
		h := md5.Sum(vc.Sub.Raw)
		sum = hex.EncodeToString(h[:])
		pkg, version = man.Package, man.VersionCode
	case vc.Sub.Parsed != nil:
		sum = vc.Sub.Parsed.MD5
		pkg, version = man.Package, man.VersionCode
	default:
		pkg, version = vc.Sub.Program.PackageName, vc.Sub.Program.Version
	}
	vc.Verdict = &Verdict{
		Package:     pkg,
		VersionCode: version,
		MD5:         sum,
		Generation:  gen.ID,
		Malicious:   p > gen.TriageHi,
		Score:       gen.Triage.Score(x),
		Tier:        1,
		ScanTime:    triageCost,
		OverallTime: triageCost + FixedOverhead,
		Engine:      "triage.static",
	}
	vc.Span(triageCost, "hit")
	s.count("triage.hit")
	return nil
}

// manifestOnly resolves the manifest view without paying the full decode:
// raw archives go through the manifest-only zip fast path, parsed APKs
// already carry theirs, and behaviour programs derive it (stashed on the
// context so a fall-through Decode does not derive it twice).
func (s Triage) manifestOnly(vc *VetContext) (*manifest.Manifest, error) {
	sub := vc.Sub
	switch {
	case sub.Raw != nil:
		return apk.ParseManifestOnly(sub.Raw)
	case sub.Parsed != nil:
		return sub.Parsed.Manifest, nil
	default:
		m, err := sub.Program.Manifest(vc.Gen.Universe)
		if err != nil {
			return nil, err
		}
		vc.Manifest = m
		return m, nil
	}
}

func (s Triage) count(name string) {
	if s.D.Obs != nil {
		s.D.Obs.Counter(name).Inc()
	}
}

// Decode is the static half of the vet: it reserves the vet sequence
// number, derives the content-seeded Monkey configuration, parses a raw
// archive, and resolves the manifest view the feature extractor will
// join the hook log against. Runs only when the cache did not answer.
type Decode struct{ D *Deps }

func (Decode) Name() string { return StageDecode }

func (s Decode) Run(vc *VetContext) error {
	// Pin the model generation for the whole remaining chain. The pin
	// happens inside the cache-lookup singleflight — by the Triage stage
	// when it is in the chain, here otherwise — so a leader that starts
	// after a hot-swap computes wholly on the new generation, and one that
	// started before finishes wholly on the old one.
	if vc.Gen == nil {
		vc.Gen = s.D.Gen()
	}
	if vc.Seq == 0 {
		vc.Seq = s.D.NextSeq()
	}
	vc.Monkey = s.D.MonkeyFor(vc.Digest, vc.Seq)

	sub := vc.Sub
	switch {
	case sub.Raw != nil:
		parsed, err := apk.Parse(sub.Raw)
		if err != nil {
			return err
		}
		vc.Parsed = parsed
		vc.Program = parsed.Program
		vc.Manifest = parsed.Manifest
		vc.MD5 = parsed.MD5
		vc.Span(decodeBase+time.Duration(len(sub.Raw)/1024)*decodePerKiB, "raw")
	case sub.Parsed != nil:
		vc.Parsed = sub.Parsed
		vc.Program = sub.Parsed.Program
		vc.Manifest = sub.Parsed.Manifest
		vc.MD5 = sub.Parsed.MD5
		vc.Span(0, "parsed")
	default:
		vc.Program = sub.Program
		if vc.Manifest == nil { // triage may have derived it already
			m, err := sub.Program.Manifest(vc.Gen.Universe)
			if err != nil {
				return err
			}
			vc.Manifest = m
		}
		vc.Span(manifestCost, "program")
	}
	return nil
}

// Emulate exercises the app and collects the hook log: raw archives run
// the full adb device sequence on the checker's device; parsed/program
// submissions run on a farm lane (and return it, even when the context
// is cancelled mid-run). The span duration is the run's calibrated
// virtual analysis time.
type Emulate struct{ D *Deps }

func (Emulate) Name() string { return StageEmulate }

func (s Emulate) Run(vc *VetContext) error {
	if vc.Sub.Raw != nil {
		vr, err := vc.Gen.RunRaw(vc)
		if err != nil {
			return err
		}
		vc.Run = vr.Run
	} else {
		res, err := vc.Gen.Farm.RunContext(vc.Ctx, vc.Program, vc.Monkey)
		if err != nil {
			return err
		}
		vc.Run = res
	}
	s.book(vc.Run)
	vc.Span(vc.Run.VirtualTime, vc.Run.Profile)
	return nil
}

// book absorbs the emulator reliability accounting (§5.1) into obs:
// crash-restarts, fallback re-runs, and completed emulations by engine.
func (s Emulate) book(res *emulator.Result) {
	if s.D.Obs == nil {
		return
	}
	s.D.Obs.Counter("emu.runs").Inc()
	s.D.Obs.Counter("emu.engine." + res.Profile).Inc()
	if res.Crashed > 0 {
		s.D.Obs.Counter("emu.crashes").Add(uint64(res.Crashed))
		s.D.Obs.Counter("emu.crashed_submissions").Inc()
	}
	if res.FellBack {
		s.D.Obs.Counter("emu.fallbacks").Inc()
	}
}

// ExtractFeatures joins the hook log against the manifest into one A+P+I
// feature vector.
type ExtractFeatures struct{ D *Deps }

func (ExtractFeatures) Name() string { return StageExtract }

func (s ExtractFeatures) Run(vc *VetContext) error {
	// The vector fills this context's recycled scratch; everything that
	// outlives the vet (cache entries, score results) copies out of it.
	x, err := vc.Gen.Extractor.VectorInto(vc.Run.Log, vc.Manifest, vc.Vector)
	if err != nil {
		return err
	}
	vc.Vector = x
	vc.Span(time.Duration(len(x))*extractPerFeature, "")
	return nil
}

// Infer classifies the feature vector through the forest's coalescing
// batch scorer and assembles the Verdict. It honours the submission
// context: a deadline that survived emulation but expired before
// classification surfaces here, attributed to this stage.
type Infer struct{ D *Deps }

func (Infer) Name() string { return StageInfer }

func (s Infer) Run(vc *VetContext) error {
	if err := vc.Ctx.Err(); err != nil {
		return err
	}
	score := vc.Gen.Score(vc.Vector)
	p, res := vc.Program, vc.Run
	pkg, version := p.PackageName, p.Version
	if vc.Sub.Raw != nil && vc.Parsed != nil {
		// Raw archives are identified by their parsed manifest, exactly as
		// the device sequence reported them before the pipeline split
		// decode from emulation.
		pkg, version = vc.Parsed.PackageName(), vc.Parsed.VersionCode()
	}
	vc.Verdict = &Verdict{
		Package:        pkg,
		VersionCode:    version,
		MD5:            vc.MD5,
		Generation:     vc.Gen.ID,
		Malicious:      score > 0,
		Score:          score,
		Tier:           2,
		ScanTime:       res.VirtualTime,
		OverallTime:    res.VirtualTime + FixedOverhead,
		FellBack:       res.FellBack,
		Crashes:        res.Crashed,
		Engine:         res.Profile,
		InvokedKeyAPIs: res.Log.DistinctInvoked(),
	}
	vc.Span(time.Duration(vc.Gen.Trees)*inferPerTree, "")
	return nil
}

// CacheStore writes a verdict computed outside the cache-lookup bracket
// through to the cache (the VetRun path, which always emulates because
// the raw run result is the point). The store is conditional on the
// pinned generation's cache epoch: a verdict computed on a generation
// that was swapped out mid-run is returned to the caller but never
// stored, so the cache can only ever serve current-generation verdicts.
type CacheStore struct{ D *Deps }

func (CacheStore) Name() string { return StageCacheStore }

func (s CacheStore) Run(vc *VetContext) error {
	cache := s.D.Cache()
	if cache == nil || vc.Digest == "" {
		vc.Span(0, "skipped")
		return nil
	}
	if !cache.TryPut(vc.Digest, EncodeEntry(vc.Verdict, vc.Vector), vc.Gen.Epoch) {
		vc.Span(0, "stale")
		return nil
	}
	vc.Span(0, "stored")
	return nil
}

// VetChain assembles the canonical serving chain: Admit → CacheLookup →
// Triage → Decode → Emulate → ExtractFeatures → Infer, with the triage
// pre-screen and the three expensive stages bracketed by the cache
// singleflight.
func VetChain(col *obs.Collector, d *Deps) *Pipeline {
	return New(col, Admit{d}, CacheLookup{d}, Triage{d}, Decode{d}, Emulate{d}, ExtractFeatures{d}, Infer{d})
}

// RunChain assembles the always-emulate chain VetRun drives: no cache
// lookup (the emulation result is the point), but the verdict still
// writes through so subsequent Vets of the same content are served
// without re-running.
func RunChain(col *obs.Collector, d *Deps) *Pipeline {
	return New(col, Admit{d}, Decode{d}, Emulate{d}, ExtractFeatures{d}, Infer{d}, CacheStore{d})
}
