package pipeline

import (
	"context"
	"sync"
	"sync/atomic"

	"apichecker/internal/obs"
)

// VetContext pooling.
//
// The serving path builds one VetContext per submission; under cache-heavy
// duplicate traffic that context (plus its span log and feature-vector
// scratch) dominated per-submission garbage. Contexts are recycled through
// a sync.Pool: AcquireContext hands out a cleared shell whose Spans and
// vector scratch keep their backing arrays, ReleaseContext scrubs every
// per-submission field and returns it.
//
// The aliasing discipline that makes recycling safe:
//
//   - the Verdict is always freshly allocated (Infer on the emulated path,
//     DecodeEntry's caller-owned copy on the hit path) — it never points
//     into the pooled context, so callers keep it after release;
//   - cache entries are flat []byte copies (EncodeEntry), so nothing the
//     cache retains aliases the pooled Vector scratch;
//   - VetTrace copies the span log before release (Spans' backing array is
//     recycled).
//
// PoisonReleased flips released storage to garbage before reuse; the
// pool-aliasing tests run the full serving path under -race with poisoning
// on and assert verdicts stay bit-identical — proof no live result reads
// recycled memory.
var ctxPool = sync.Pool{New: func() any { return new(VetContext) }}

// PoisonReleased, when enabled (tests only), scribbles sentinel garbage
// over the recycled backing arrays in ReleaseContext. Any verdict, span
// log, or cache entry still aliasing pooled storage turns visibly corrupt.
var PoisonReleased atomic.Bool

// AcquireContext returns a cleared VetContext bound to one submission.
// Pair with ReleaseContext.
func AcquireContext(ctx context.Context, sub *Submission) *VetContext {
	vc := ctxPool.Get().(*VetContext)
	vc.Ctx = ctx
	vc.Sub = sub
	return vc
}

// ReleaseContext scrubs vc and recycles it. The caller must be done with
// everything reachable through vc except the Verdict (never pooled); in
// particular vc.Spans and vc.Vector storage will be reused by a future
// submission.
func ReleaseContext(vc *VetContext) {
	spans, vec := vc.Spans, vc.Vector
	if PoisonReleased.Load() {
		for i := range spans {
			spans[i] = obs.Event{Name: "POISON", Note: "recycled span storage", Trace: -1}
		}
		for i := range vec {
			vec[i] = 0xDEADBEEFDEADBEEF
		}
	}
	*vc = VetContext{Spans: spans[:0], Vector: vec[:0]}
	ctxPool.Put(vc)
}
