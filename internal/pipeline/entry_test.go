package pipeline

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"apichecker/internal/ml"
)

// randVerdict fabricates an arbitrary verdict; strings include empty and
// non-ASCII cases, numerics include negatives and extreme values.
func randVerdict(rng *rand.Rand) Verdict {
	strs := []string{"", "a", "com.example.app", "емулятор", "x/y\x00z", "stock-google"}
	return Verdict{
		Package:        strs[rng.Intn(len(strs))],
		VersionCode:    rng.Intn(1<<20) - 1<<10,
		MD5:            strs[rng.Intn(len(strs))],
		Generation:     rng.Uint64(),
		Malicious:      rng.Intn(2) == 0,
		Score:          rng.NormFloat64() * float64(rng.Intn(100)+1),
		Tier:           rng.Intn(2) + 1,
		ScanTime:       time.Duration(rng.Int63n(1 << 40)),
		OverallTime:    time.Duration(rng.Int63n(1 << 40)),
		FellBack:       rng.Intn(2) == 0,
		Crashes:        rng.Intn(10) - 2,
		Engine:         strs[rng.Intn(len(strs))],
		InvokedKeyAPIs: rng.Intn(500),
	}
}

func randVector(rng *rand.Rand) ml.Vector {
	x := make(ml.Vector, rng.Intn(40))
	for i := range x {
		x[i] = rng.Uint64()
	}
	return x
}

// TestEntryRoundTripProperty: random verdict + vector pairs encode and
// decode bit-identically, with and without recycled decode storage.
func TestEntryRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var scratch ml.Vector
	for i := 0; i < 500; i++ {
		v, x := randVerdict(rng), randVector(rng)
		e := EncodeEntry(&v, x)

		var got Verdict
		vec, err := DecodeEntry(e, &got, scratch)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if got != v {
			t.Fatalf("case %d: verdict round trip:\n  in  %+v\n  out %+v", i, v, got)
		}
		if len(vec) != len(x) {
			t.Fatalf("case %d: vector length %d != %d", i, len(vec), len(x))
		}
		for j := range x {
			if vec[j] != x[j] {
				t.Fatalf("case %d: vector word %d differs", i, j)
			}
		}
		// A decoded entry re-encodes to identical bytes: the layout is
		// canonical, so the persisted tier can never drift on rewrite.
		if re := EncodeEntry(&got, vec); !bytes.Equal(re, e) {
			t.Fatalf("case %d: re-encode differs from original entry", i)
		}
		scratch = vec // recycle decode storage across iterations
	}
}

// TestEntryRoundTripNaN: NaN scores survive by bit pattern (x != x, so the
// struct comparison above can't cover it).
func TestEntryRoundTripNaN(t *testing.T) {
	v := Verdict{Package: "nan.app", Score: math.NaN()}
	var got Verdict
	if _, err := DecodeEntry(EncodeEntry(&v, nil), &got, nil); err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(got.Score) {
		t.Fatalf("NaN score decoded as %v", got.Score)
	}
}

// TestDecodeEntryDoesNotAlias: mutating the encoded buffer after decode
// must not change the decoded result — the caller-owned-storage contract.
func TestDecodeEntryDoesNotAlias(t *testing.T) {
	v := Verdict{Package: "com.alias.check", MD5: "abc123", Engine: "lightweight"}
	x := ml.Vector{1, 2, 3}
	e := EncodeEntry(&v, x)
	var got Verdict
	vec, err := DecodeEntry(e, &got, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range e {
		e[i] = 0xFF
	}
	if got.Package != "com.alias.check" || got.MD5 != "abc123" || got.Engine != "lightweight" {
		t.Fatalf("decoded strings alias the entry buffer: %+v", got)
	}
	if vec[0] != 1 || vec[1] != 2 || vec[2] != 3 {
		t.Fatalf("decoded vector aliases the entry buffer: %v", vec)
	}
}

// TestDecodeEntryCorrupt: systematic corruption — truncations at every
// length and random byte flips — must yield ErrBadEntry or a clean decode,
// never a panic. (Byte flips inside string payloads decode fine; flips in
// length prefixes must be caught by the bounds checks.)
func TestDecodeEntryCorrupt(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	v, x := randVerdict(rng), randVector(rng)
	e := EncodeEntry(&v, x)

	var got Verdict
	for cut := 0; cut < len(e); cut++ {
		if _, err := DecodeEntry(e[:cut], &got, nil); err == nil {
			t.Fatalf("truncation to %d bytes decoded cleanly", cut)
		} else if !errors.Is(err, ErrBadEntry) {
			t.Fatalf("truncation to %d bytes: error %v does not wrap ErrBadEntry", cut, err)
		}
	}
	for trial := 0; trial < 2000; trial++ {
		mut := append([]byte(nil), e...)
		for flips := rng.Intn(4) + 1; flips > 0; flips-- {
			mut[rng.Intn(len(mut))] ^= byte(1 << rng.Intn(8))
		}
		DecodeEntry(mut, &got, nil) // must not panic; error is fine
	}
}

// FuzzEntryDecode drives DecodeEntry with arbitrary bytes: it must never
// panic, and whatever it accepts must re-encode canonically.
func FuzzEntryDecode(f *testing.F) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 8; i++ {
		v, x := randVerdict(rng), randVector(rng)
		f.Add(EncodeEntry(&v, x))
	}
	tier1 := Verdict{
		Package: "t", Generation: 1, Malicious: true, Score: 2, Tier: 1,
		ScanTime: 75 * time.Microsecond, OverallTime: 75*time.Microsecond + FixedOverhead,
		Engine: "triage.static",
	}
	f.Add(EncodeEntry(&tier1, nil))
	f.Add([]byte{})
	f.Add([]byte{entryVersion})
	f.Add([]byte{entryVersion, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		var v Verdict
		vec, err := DecodeEntry(data, &v, nil)
		if err != nil {
			if !errors.Is(err, ErrBadEntry) {
				t.Fatalf("decode error %v does not wrap ErrBadEntry", err)
			}
			return
		}
		if re := EncodeEntry(&v, vec); !bytes.Equal(re, data) {
			t.Fatalf("accepted entry is not canonical: %x != %x", re, data)
		}
	})
}
