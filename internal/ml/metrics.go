package ml

import "fmt"

// Confusion is a binary confusion matrix ("positive" = malicious).
type Confusion struct {
	TP, FP, TN, FN int
}

// Observe records one prediction.
func (c *Confusion) Observe(predicted, actual bool) {
	switch {
	case predicted && actual:
		c.TP++
	case predicted && !actual:
		c.FP++
	case !predicted && !actual:
		c.TN++
	default:
		c.FN++
	}
}

// Add merges another matrix.
func (c *Confusion) Add(o Confusion) {
	c.TP += o.TP
	c.FP += o.FP
	c.TN += o.TN
	c.FN += o.FN
}

// Precision = TP / (TP + FP) (§4.2).
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall = TP / (TP + FN).
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 is the harmonic mean of precision and recall (§4.5).
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Accuracy = (TP + TN) / total.
func (c Confusion) Accuracy() float64 {
	total := c.TP + c.FP + c.TN + c.FN
	if total == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(total)
}

// FalsePositiveRate = FP / (FP + TN).
func (c Confusion) FalsePositiveRate() float64 {
	if c.FP+c.TN == 0 {
		return 0
	}
	return float64(c.FP) / float64(c.FP+c.TN)
}

func (c Confusion) String() string {
	return fmt.Sprintf("P=%.3f R=%.3f F1=%.3f (tp=%d fp=%d tn=%d fn=%d)",
		c.Precision(), c.Recall(), c.F1(), c.TP, c.FP, c.TN, c.FN)
}

// Evaluate runs a trained classifier over a dataset. Classifiers with a
// batch fast path (the forest's tree-major walk) are driven through it;
// results are identical either way.
func Evaluate(c Classifier, d *Dataset) Confusion {
	var m Confusion
	if bc, ok := c.(BatchClassifier); ok {
		pred := bc.PredictBatch(datasetVectors(d))
		for i := range d.Examples {
			m.Observe(pred[i], d.Examples[i].Y)
		}
		return m
	}
	for i := range d.Examples {
		m.Observe(c.Predict(d.Examples[i].X), d.Examples[i].Y)
	}
	return m
}

// datasetVectors collects the dataset's feature vectors as one block.
func datasetVectors(d *Dataset) []Vector {
	xs := make([]Vector, len(d.Examples))
	for i := range d.Examples {
		xs[i] = d.Examples[i].X
	}
	return xs
}
