package ml

import (
	"math"
	"math/rand"
)

// GBDTConfig configures gradient-boosted decision trees.
type GBDTConfig struct {
	Trees        int
	Depth        int
	LearningRate float64
	MinLeaf      int
	Seed         int64
}

// GBDT is gradient boosting with logistic loss: each round fits a shallow
// least-squares regression tree to the negative gradient (residuals).
type GBDT struct {
	cfg     GBDTConfig
	trained bool
	bias    float64
	trees   []*regTree
}

// NewGBDT returns an untrained booster.
func NewGBDT(cfg GBDTConfig) *GBDT {
	if cfg.Trees <= 0 {
		cfg.Trees = 60
	}
	if cfg.Depth <= 0 {
		cfg.Depth = 4
	}
	if cfg.LearningRate <= 0 {
		cfg.LearningRate = 0.2
	}
	if cfg.MinLeaf <= 0 {
		cfg.MinLeaf = 4
	}
	return &GBDT{cfg: cfg}
}

// Name implements Classifier.
func (g *GBDT) Name() string { return "GBDT" }

// Train implements Classifier.
func (g *GBDT) Train(d *Dataset) error {
	if err := checkTrainable(d); err != nil {
		return err
	}
	n := d.Len()
	pos := d.Positives()
	p0 := float64(pos) / float64(n)
	g.bias = math.Log(p0 / (1 - p0))

	score := make([]float64, n)
	for i := range score {
		score[i] = g.bias
	}
	residual := make([]float64, n)
	rng := rand.New(rand.NewSource(g.cfg.Seed))
	mtry := d.NumFeatures
	if mtry > 4096 {
		// Feature subsampling keeps wide (50K-feature) boosting
		// tractable without changing small-problem behaviour.
		mtry = 4096
	}

	g.trees = g.trees[:0]
	for round := 0; round < g.cfg.Trees; round++ {
		for i := range residual {
			y := 0.0
			if d.Examples[i].Y {
				y = 1
			}
			residual[i] = y - sigmoid(score[i])
		}
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		tree := &regTree{depth: g.cfg.Depth, minLeaf: g.cfg.MinLeaf, mtry: mtry}
		tree.root = tree.grow(d, idx, residual, 0, rng)
		g.trees = append(g.trees, tree)
		for i := range score {
			score[i] += g.cfg.LearningRate * tree.predict(d.Examples[i].X)
		}
	}
	g.trained = true
	return nil
}

// Score implements Scorer (boosted logit).
func (g *GBDT) Score(x Vector) float64 {
	s := g.bias
	for _, tree := range g.trees {
		s += g.cfg.LearningRate * tree.predict(x)
	}
	return s
}

// Predict implements Classifier.
func (g *GBDT) Predict(x Vector) bool {
	if !g.trained {
		return false
	}
	return g.Score(x) > 0
}

// regTree is a least-squares regression tree over binary features.
type regTree struct {
	depth   int
	minLeaf int
	mtry    int
	root    *regNode
}

type regNode struct {
	feature     int
	left, right *regNode
	value       float64
}

func (t *regTree) grow(d *Dataset, idx []int, target []float64, depth int, rng *rand.Rand) *regNode {
	n := len(idx)
	sum := 0.0
	for _, i := range idx {
		sum += target[i]
	}
	mean := sum / float64(n)
	leaf := func() *regNode { return &regNode{feature: -1, value: mean} }
	if depth >= t.depth || n < 2*t.minLeaf {
		return leaf()
	}

	// Best split by squared-error reduction; for binary splits this is
	// maximizing nL*nR/(nL+nR) * (meanL-meanR)^2.
	bestFeature := -1
	bestGain := 1e-12
	var bestSumR float64
	var bestNR int

	candidates := t.candidates(d.NumFeatures, rng)
	for _, f := range candidates {
		sumR := 0.0
		nR := 0
		for _, i := range idx {
			if d.Examples[i].X.Get(f) {
				sumR += target[i]
				nR++
			}
		}
		nL := n - nR
		if nR < t.minLeaf || nL < t.minLeaf {
			continue
		}
		sumL := sum - sumR
		meanR := sumR / float64(nR)
		meanL := sumL / float64(nL)
		gain := float64(nL) * float64(nR) / float64(n) * (meanL - meanR) * (meanL - meanR)
		if gain > bestGain {
			bestGain, bestFeature = gain, f
			bestSumR, bestNR = sumR, nR
		}
	}
	if bestFeature < 0 {
		return leaf()
	}
	_ = bestSumR
	_ = bestNR

	var leftIdx, rightIdx []int
	for _, i := range idx {
		if d.Examples[i].X.Get(bestFeature) {
			rightIdx = append(rightIdx, i)
		} else {
			leftIdx = append(leftIdx, i)
		}
	}
	return &regNode{
		feature: bestFeature,
		left:    t.grow(d, leftIdx, target, depth+1, rng),
		right:   t.grow(d, rightIdx, target, depth+1, rng),
	}
}

func (t *regTree) candidates(numFeatures int, rng *rand.Rand) []int {
	if t.mtry >= numFeatures {
		all := make([]int, numFeatures)
		for i := range all {
			all[i] = i
		}
		return all
	}
	out := make([]int, t.mtry)
	for i := range out {
		out[i] = rng.Intn(numFeatures)
	}
	return out
}

func (t *regTree) predict(x Vector) float64 {
	node := t.root
	for node.feature >= 0 {
		if x.Get(node.feature) {
			node = node.right
		} else {
			node = node.left
		}
	}
	return node.value
}
