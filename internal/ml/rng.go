package ml

// splitmix64 is a tiny deterministic rand.Source64: a counter run through
// the SplitMix64 finalizer. Seeding is O(1), where math/rand's default
// source pays a 607-word warm-up per NewSource — a cost that dominates
// forest training when every one of 120 trees seeds its own stream.
type splitmix64 struct{ state uint64 }

func newSplitMix(seed int64) *splitmix64 { return &splitmix64{state: uint64(seed)} }

func (s *splitmix64) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *splitmix64) Int63() int64 { return int64(s.Uint64() >> 1) }

func (s *splitmix64) Seed(seed int64) { s.state = uint64(seed) }
