package ml

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVectorSetGetClear(t *testing.T) {
	v := NewVector(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 129} {
		if v.Get(i) {
			t.Errorf("bit %d set in fresh vector", i)
		}
		v.Set(i)
		if !v.Get(i) {
			t.Errorf("bit %d not set after Set", i)
		}
	}
	if v.Ones() != 7 {
		t.Errorf("Ones = %d, want 7", v.Ones())
	}
	v.Clear(64)
	if v.Get(64) || v.Ones() != 6 {
		t.Errorf("Clear failed: ones=%d", v.Ones())
	}
}

func TestVectorForEachSet(t *testing.T) {
	v := NewVector(200)
	want := []int{3, 64, 65, 130, 199}
	for _, i := range want {
		v.Set(i)
	}
	var got []int
	v.ForEachSet(func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("got[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestVectorDotHamming(t *testing.T) {
	a := NewVector(128)
	b := NewVector(128)
	a.Set(1)
	a.Set(70)
	a.Set(100)
	b.Set(70)
	b.Set(100)
	b.Set(127)
	if got := a.Dot(b); got != 2 {
		t.Errorf("Dot = %d, want 2", got)
	}
	if got := a.Hamming(b); got != 2 {
		t.Errorf("Hamming = %d, want 2", got)
	}
	if a.Hamming(a) != 0 {
		t.Error("self Hamming non-zero")
	}
}

func TestVectorKeyAndClone(t *testing.T) {
	f := func(bitsRaw []uint16) bool {
		v := NewVector(256)
		for _, b := range bitsRaw {
			v.Set(int(b) % 256)
		}
		c := v.Clone()
		if v.Key() != c.Key() {
			return false
		}
		c.Set(255)
		c.Clear(255)
		// Keys equal iff same bits.
		other := NewVector(256)
		return (v.Key() == other.Key()) == (v.Ones() == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Hamming = |a| + |b| - 2*Dot for any pair.
func TestVectorIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		a, b := NewVector(300), NewVector(300)
		for i := 0; i < 300; i++ {
			if rng.Intn(3) == 0 {
				a.Set(i)
			}
			if rng.Intn(3) == 0 {
				b.Set(i)
			}
		}
		if a.Hamming(b) != a.Ones()+b.Ones()-2*a.Dot(b) {
			t.Fatal("Hamming identity violated")
		}
	}
}

func TestDatasetSplitAndFolds(t *testing.T) {
	d := NewDataset(64)
	for i := 0; i < 100; i++ {
		v := NewVector(64)
		v.Set(i % 64)
		if err := d.Add(v, i%5 == 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Add(NewVector(128), true); err == nil {
		t.Error("Add accepted wrong-width vector")
	}
	train, test := d.Split(0.8, 1)
	if train.Len()+test.Len() != d.Len() {
		t.Errorf("split sizes %d + %d != %d", train.Len(), test.Len(), d.Len())
	}
	folds := d.StratifiedFolds(10, 2)
	total, pos := 0, 0
	for _, f := range folds {
		total += len(f)
		for _, i := range f {
			if d.Examples[i].Y {
				pos++
			}
		}
	}
	if total != d.Len() || pos != d.Positives() {
		t.Errorf("folds cover %d (%d pos), want %d (%d)", total, pos, d.Len(), d.Positives())
	}
	// Stratification: each fold has at least one positive (20 positives,
	// 10 folds).
	for fi, f := range folds {
		p := 0
		for _, i := range f {
			if d.Examples[i].Y {
				p++
			}
		}
		if p == 0 {
			t.Errorf("fold %d has no positives", fi)
		}
	}
}

func TestRemoveDuplicatesOf(t *testing.T) {
	ref := NewDataset(64)
	d := NewDataset(64)
	shared := NewVector(64)
	shared.Set(3)
	unique := NewVector(64)
	unique.Set(9)
	_ = ref.Add(shared.Clone(), false)
	_ = d.Add(shared, true)
	_ = d.Add(unique, false)
	got := d.RemoveDuplicatesOf(ref)
	if got.Len() != 1 || got.Examples[0].X.Get(3) {
		t.Errorf("dedup kept %d examples", got.Len())
	}
}

func TestFeatureCounts(t *testing.T) {
	d := NewDataset(8)
	v1 := NewVector(8)
	v1.Set(0)
	v1.Set(3)
	v2 := NewVector(8)
	v2.Set(3)
	_ = d.Add(v1, true)
	_ = d.Add(v2, false)
	pos, neg := d.FeatureCounts()
	if pos[0] != 1 || pos[3] != 1 || neg[3] != 1 || neg[0] != 0 {
		t.Errorf("counts pos=%v neg=%v", pos, neg)
	}
}

func TestConfusionMetrics(t *testing.T) {
	c := Confusion{TP: 8, FP: 2, TN: 85, FN: 5}
	if got := c.Precision(); got != 0.8 {
		t.Errorf("Precision = %f", got)
	}
	if got := c.Recall(); got*13 != 8 {
		t.Errorf("Recall = %f", got)
	}
	wantF1 := 2 * 0.8 * (8.0 / 13) / (0.8 + 8.0/13)
	if got := c.F1(); got < wantF1-1e-12 || got > wantF1+1e-12 {
		t.Errorf("F1 = %f, want %f", got, wantF1)
	}
	if got := c.Accuracy(); got != 0.93 {
		t.Errorf("Accuracy = %f", got)
	}
	var zero Confusion
	if zero.Precision() != 0 || zero.Recall() != 0 || zero.F1() != 0 || zero.Accuracy() != 0 {
		t.Error("zero confusion produced NaN-ish metrics")
	}
}
