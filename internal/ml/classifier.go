package ml

import "fmt"

// Classifier is a trainable binary classifier over bitset feature vectors.
type Classifier interface {
	// Name identifies the algorithm (Table 2 row label).
	Name() string
	// Train fits the model. Implementations must be deterministic for a
	// fixed dataset and configuration.
	Train(d *Dataset) error
	// Predict classifies one vector (true = malicious). Only valid after
	// a successful Train.
	Predict(x Vector) bool
}

// Scorer is implemented by classifiers that expose a continuous malice
// score (larger = more malicious); the decision threshold is score > 0.
type Scorer interface {
	Score(x Vector) float64
}

// BatchScorer is implemented by scorers with a block-inference fast path.
// ScoreBatch must produce, row for row, exactly the value Score would —
// batching is an execution strategy, never a semantic change. out, when
// non-nil, must have len(xs) elements and is returned filled.
type BatchScorer interface {
	Scorer
	ScoreBatch(xs []Vector, out []float64) []float64
}

// BatchClassifier is implemented by classifiers with a block-prediction
// fast path; elementwise identical to Predict.
type BatchClassifier interface {
	Classifier
	PredictBatch(xs []Vector) []bool
}

// ModelKind enumerates the nine Table-2 classifiers.
type ModelKind int

const (
	ModelNaiveBayes ModelKind = iota
	ModelLogReg
	ModelSVM
	ModelGBDT
	ModelKNN
	ModelCART
	ModelANN
	ModelDNN
	ModelRandomForest
)

// AllModelKinds lists the Table-2 classifiers in the paper's row order.
var AllModelKinds = []ModelKind{
	ModelNaiveBayes, ModelLogReg, ModelSVM, ModelGBDT, ModelKNN,
	ModelCART, ModelANN, ModelDNN, ModelRandomForest,
}

func (k ModelKind) String() string {
	names := [...]string{"Naive Bayes", "Logistic Regression", "SVM", "GBDT",
		"kNN", "CART", "ANN", "DNN", "Random Forest"}
	if int(k) < len(names) {
		return names[k]
	}
	return fmt.Sprintf("ModelKind(%d)", int(k))
}

// NewClassifier builds a classifier of the given kind with the library's
// default hyperparameters (tuned once on held-out data, fixed thereafter —
// the paper configures hyperparameters from domain knowledge, §4.2).
func NewClassifier(kind ModelKind, seed int64) Classifier {
	switch kind {
	case ModelNaiveBayes:
		return NewNaiveBayes()
	case ModelLogReg:
		return NewLogReg(LogRegConfig{Epochs: 30, LearningRate: 0.3, L2: 1e-5, Seed: seed})
	case ModelSVM:
		return NewSVM(SVMConfig{C: 1.0, Epochs: 12, Seed: seed})
	case ModelGBDT:
		return NewGBDT(GBDTConfig{Trees: 60, Depth: 4, LearningRate: 0.2, MinLeaf: 4, Seed: seed})
	case ModelKNN:
		return NewKNN(KNNConfig{K: 5})
	case ModelCART:
		return NewCART(CARTConfig{MaxDepth: 22, MinLeaf: 1})
	case ModelANN:
		return NewMLP("ANN", MLPConfig{Hidden: []int{32}, Epochs: 25, LearningRate: 0.05, Seed: seed})
	case ModelDNN:
		return NewMLP("DNN", MLPConfig{Hidden: []int{64, 32, 16}, Epochs: 30, LearningRate: 0.03, Seed: seed})
	case ModelRandomForest:
		return NewRandomForest(DefaultForestConfig(seed))
	default:
		panic(fmt.Sprintf("ml: unknown model kind %d", kind))
	}
}

var errNotTrained = fmt.Errorf("ml: classifier not trained")

func checkTrainable(d *Dataset) error {
	if d == nil || d.Len() == 0 {
		return fmt.Errorf("ml: empty training set")
	}
	pos := d.Positives()
	if pos == 0 || pos == d.Len() {
		return fmt.Errorf("ml: training set has a single class (%d/%d positive)", pos, d.Len())
	}
	return nil
}
