package ml

// KNNDistance selects the dissimilarity measure.
type KNNDistance uint8

const (
	// DistanceJaccard is 1 - |a∩b| / |a∪b|: robust to the asymmetric
	// sparsity of One-Hot API vectors (a quiet app and a busy app
	// should not look alike just because both leave most bits clear).
	DistanceJaccard KNNDistance = iota
	// DistanceHamming counts differing bits.
	DistanceHamming
)

// KNNConfig configures the k-nearest-neighbour classifier.
type KNNConfig struct {
	// K is the neighbourhood size (odd values avoid vote ties).
	K int
	// Distance defaults to Jaccard.
	Distance KNNDistance
}

// KNN is a k-nearest-neighbour classifier. Training is instantaneous (it
// memorizes the set); the cost lands at prediction time, which is why its
// Table-2 "training time" (train + evaluate) is large.
type KNN struct {
	cfg     KNNConfig
	trained bool
	train   []Example
	ones    []int // cached popcounts of training vectors
}

// NewKNN returns an untrained kNN.
func NewKNN(cfg KNNConfig) *KNN {
	if cfg.K <= 0 {
		cfg.K = 5
	}
	return &KNN{cfg: cfg}
}

// Name implements Classifier.
func (k *KNN) Name() string { return "kNN" }

// Train implements Classifier.
func (k *KNN) Train(d *Dataset) error {
	if err := checkTrainable(d); err != nil {
		return err
	}
	k.train = d.Examples
	k.ones = make([]int, len(d.Examples))
	for i := range d.Examples {
		k.ones[i] = d.Examples[i].X.Ones()
	}
	k.trained = true
	return nil
}

// distance computes the configured dissimilarity to training example i.
func (k *KNN) distance(x Vector, xOnes, i int) float64 {
	if k.cfg.Distance == DistanceHamming {
		return float64(x.Hamming(k.train[i].X))
	}
	dot := x.Dot(k.train[i].X)
	union := xOnes + k.ones[i] - dot
	if union == 0 {
		return 0
	}
	return 1 - float64(dot)/float64(union)
}

// Predict implements Classifier: majority label among the K nearest
// training examples (first-seen wins ties in distance).
func (k *KNN) Predict(x Vector) bool {
	if !k.trained {
		return false
	}
	type hit struct {
		dist float64
		y    bool
	}
	xOnes := x.Ones()
	// Small insertion-sorted buffer of the current K best.
	best := make([]hit, 0, k.cfg.K)
	worst := func() float64 { return best[len(best)-1].dist }
	for i := range k.train {
		d := k.distance(x, xOnes, i)
		if len(best) == k.cfg.K && d >= worst() {
			continue
		}
		h := hit{d, k.train[i].Y}
		if len(best) < k.cfg.K {
			best = append(best, h)
		} else {
			best[len(best)-1] = h
		}
		for j := len(best) - 1; j > 0 && best[j].dist < best[j-1].dist; j-- {
			best[j], best[j-1] = best[j-1], best[j]
		}
	}
	votes := 0
	for _, h := range best {
		if h.y {
			votes++
		}
	}
	return votes*2 > len(best)
}
