package ml

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

// trainedForest builds a small trained forest over a synthetic dataset.
func trainedForest(t *testing.T, seed int64, features int) (*RandomForest, *Dataset) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	d := NewDataset(features)
	for i := 0; i < 120; i++ {
		x := NewVector(features)
		y := rng.Float64() < 0.4
		for f := 0; f < features; f++ {
			p := 0.15
			if y && f%3 == 0 {
				p = 0.7
			}
			if rng.Float64() < p {
				x.Set(f)
			}
		}
		d.Add(x, y)
	}
	rf := NewRandomForest(ForestConfig{Trees: 12, MaxDepth: 8, MinLeaf: 1, Seed: seed})
	if err := rf.Train(d); err != nil {
		t.Fatal(err)
	}
	return rf, d
}

func TestForestBinaryRoundTrip(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		rf, d := trainedForest(t, seed, 48)
		enc, err := rf.AppendBinary(nil)
		if err != nil {
			t.Fatal(err)
		}
		// Determinism: encoding the same forest twice is byte-identical.
		enc2, err := rf.AppendBinary(nil)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("seed %d: repeated encode differs", seed)
		}

		dec, n, err := DecodeForestBinary(enc)
		if err != nil {
			t.Fatal(err)
		}
		if n != len(enc) {
			t.Fatalf("seed %d: decode consumed %d of %d bytes", seed, n, len(enc))
		}
		// Canonical form: decode→encode round-trips to the same bytes.
		re, err := dec.AppendBinary(nil)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, re) {
			t.Fatalf("seed %d: decode→encode not canonical", seed)
		}

		// Scores are bit-identical, per row and batched.
		xs := datasetVectors(d)
		want := rf.ScoreBatch(xs, nil)
		got := dec.ScoreBatch(xs, nil)
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("seed %d row %d: decoded score %v != %v", seed, i, got[i], want[i])
			}
			if s := dec.Score(xs[i]); s != want[i] {
				t.Fatalf("seed %d row %d: decoded per-row score %v != %v", seed, i, s, want[i])
			}
		}
	}
}

func TestForestBinaryCorruptAndTruncated(t *testing.T) {
	rf, _ := trainedForest(t, 3, 32)
	enc, err := rf.AppendBinary(nil)
	if err != nil {
		t.Fatal(err)
	}

	// Every truncation point must fail cleanly (never panic, never
	// succeed with fewer bytes).
	for cut := 0; cut < len(enc); cut += 7 {
		if _, _, err := DecodeForestBinary(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded successfully", cut)
		} else if !errors.Is(err, ErrCorruptForest) {
			t.Fatalf("truncation at %d: error %v does not wrap ErrCorruptForest", cut, err)
		}
	}

	// Corrupting the tree count must be caught by the bounds checks.
	bad := append([]byte(nil), enc...)
	bad[0], bad[1], bad[2], bad[3] = 0xff, 0xff, 0xff, 0xff
	if _, _, err := DecodeForestBinary(bad); !errors.Is(err, ErrCorruptForest) {
		t.Fatalf("corrupt tree count: %v", err)
	}
}

func TestAUCScoresMatchesCurveAUC(t *testing.T) {
	rf, d := trainedForest(t, 9, 40)
	curve := ROC(rf, d)
	want := AUC(curve)
	scores := scoresOf(rf, d)
	labels := make([]bool, d.Len())
	for i := range d.Examples {
		labels[i] = d.Examples[i].Y
	}
	got := AUCScores(scores, labels)
	if diff := got - want; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("AUCScores = %v, curve AUC = %v", got, want)
	}
}
